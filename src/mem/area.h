/**
 * @file
 * The five KL1 storage areas (paper Section 2.2).
 *
 * Every memory reference the emulator generates is classified into one of
 * these areas; Tables 2 and 4 of the paper break references and bus cycles
 * down along this axis.
 */

#ifndef PIMCACHE_MEM_AREA_H_
#define PIMCACHE_MEM_AREA_H_

#include <cstdint>

namespace pim {

/** KL1 shared-memory storage areas. */
enum class Area : std::uint8_t {
    Instruction = 0, ///< Compiled KL1-B code.
    Heap = 1,        ///< Terms; top-allocated, reclaimed only by GC.
    Goal = 2,        ///< Goal records; free-list managed.
    Susp = 3,        ///< Suspension records; free-list managed.
    Comm = 4,        ///< Inter-PE message buffers; free-list managed.
    Unknown = 5,     ///< Outside every configured area.
};

/** Number of real areas (excluding Unknown). */
inline constexpr int kNumAreas = 5;

/** Total number of Area enumerators (including Unknown). */
inline constexpr int kNumAreaSlots = 6;

/** Short lowercase area name as used in the paper's tables. */
inline const char*
areaName(Area area)
{
    switch (area) {
      case Area::Instruction: return "inst";
      case Area::Heap:        return "heap";
      case Area::Goal:        return "goal";
      case Area::Susp:        return "susp";
      case Area::Comm:        return "comm";
      case Area::Unknown:     return "unknown";
    }
    return "?";
}

} // namespace pim

#endif // PIMCACHE_MEM_AREA_H_
