#include "mem/layout.h"

#include <sstream>

#include "common/xassert.h"

namespace pim {

namespace {

std::uint64_t
alignUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) / align * align;
}

} // namespace

Layout::Layout(const LayoutConfig& config)
    : config_(config)
{
    PIM_ASSERT(config_.numPes >= 1);

    Addr cursor = 0;
    instr_ = {cursor, alignUp(config_.instrWords, kAlign)};
    cursor = instr_.end();

    auto place = [&](Area area, std::uint64_t words_per_pe) {
        const int idx = static_cast<int>(area);
        segSize_[idx] = words_per_pe;
        segStride_[idx] = alignUp(words_per_pe, kAlign);
        areaBase_[idx] = cursor;
        cursor += segStride_[idx] * config_.numPes;
    };
    place(Area::Heap, config_.heapWordsPerPe);
    place(Area::Goal, config_.goalWordsPerPe);
    place(Area::Susp, config_.suspWordsPerPe);
    place(Area::Comm, config_.commWordsPerPe);
    total_ = cursor;
}

Range
Layout::segment(Area area, PeId pe) const
{
    const int idx = static_cast<int>(area);
    PIM_ASSERT(area != Area::Instruction && area != Area::Unknown);
    PIM_ASSERT(pe < config_.numPes);
    return {areaBase_[idx] + segStride_[idx] * pe, segSize_[idx]};
}

Area
Layout::areaOf(Addr addr) const
{
    if (instr_.contains(addr))
        return Area::Instruction;
    // Areas are placed in enum order, so scan the bases.
    for (Area area : {Area::Heap, Area::Goal, Area::Susp, Area::Comm}) {
        const int idx = static_cast<int>(area);
        const std::uint64_t span = segStride_[idx] * config_.numPes;
        if (addr - areaBase_[idx] < span) {
            // Inside the area's span; check it is not in alignment padding.
            const std::uint64_t off = (addr - areaBase_[idx]) %
                                      segStride_[idx];
            return off < segSize_[idx] ? area : Area::Unknown;
        }
    }
    return Area::Unknown;
}

PeId
Layout::peOf(Addr addr) const
{
    const Area area = areaOf(addr);
    if (area == Area::Instruction || area == Area::Unknown)
        return kNoPe;
    const int idx = static_cast<int>(area);
    return static_cast<PeId>((addr - areaBase_[idx]) / segStride_[idx]);
}

std::string
Layout::describe(Addr addr) const
{
    const Area area = areaOf(addr);
    std::ostringstream os;
    os << "0x" << std::hex << addr << std::dec << " (" << areaName(area);
    const PeId pe = peOf(addr);
    if (pe != kNoPe)
        os << " pe" << pe;
    os << ")";
    return os.str();
}

} // namespace pim
