#include "mem/free_list.h"

#include "common/xassert.h"

namespace pim {

FreeList::FreeList(Range region, std::uint32_t max_record_words)
    : region_(region),
      cursor_(region.base),
      freeBySize_(max_record_words + 1)
{
    PIM_ASSERT(max_record_words >= 1);
}

Addr
FreeList::allocate(std::uint32_t nwords)
{
    PIM_ASSERT(nwords >= 1 && nwords < freeBySize_.size(),
               "record size out of range: ", nwords);
    ++allocCount_;
    auto& list = freeBySize_[nwords];
    if (!list.empty()) {
        const Addr addr = list.back();
        list.pop_back();
        ++recycleCount_;
        liveWords_ += nwords;
        return addr;
    }
    if (cursor_ + nwords > region_.end())
        return kNoAddr;
    const Addr addr = cursor_;
    cursor_ += nwords;
    liveWords_ += nwords;
    return addr;
}

void
FreeList::free(Addr addr, std::uint32_t nwords)
{
    PIM_ASSERT(nwords >= 1 && nwords < freeBySize_.size());
    PIM_ASSERT(region_.contains(addr) && addr + nwords <= region_.end(),
               "free outside region");
    PIM_ASSERT(liveWords_ >= nwords, "double free suspected");
    liveWords_ -= nwords;
    freeBySize_[nwords].push_back(addr);
}

} // namespace pim
