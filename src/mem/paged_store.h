/**
 * @file
 * Sparse word-addressed backing store.
 *
 * Represents the contents of shared global memory. Pages (4K words) are
 * allocated on first touch so that large configured heaps cost nothing
 * until used. All words read as zero until written.
 */

#ifndef PIMCACHE_MEM_PAGED_STORE_H_
#define PIMCACHE_MEM_PAGED_STORE_H_

#include <memory>
#include <vector>

#include "common/types.h"

namespace pim {

/** Sparse flat array of simulated memory words. */
class PagedStore
{
  public:
    /** @param total_words Size of the address space in words. */
    explicit PagedStore(std::uint64_t total_words);

    /** Read one word (zero if never written). */
    Word read(Addr addr) const;

    /** Write one word. */
    void write(Addr addr, Word value);

    /**
     * Read @p count consecutive words starting at @p addr. The span must
     * not cross a page boundary (cache blocks, the only bulk unit, are
     * power-of-two sized and aligned, and pages are a multiple of every
     * legal block size). One page lookup instead of @p count — the bus
     * moves a block on every miss, so this is hot
     * (docs/PERFORMANCE.md).
     */
    void readSpan(Addr addr, std::uint32_t count, Word* out) const;

    /** Write @p count consecutive words; same alignment contract. */
    void writeSpan(Addr addr, std::uint32_t count, const Word* data);

    /** Size of the address space in words. */
    std::uint64_t totalWords() const { return totalWords_; }

    /** Number of pages materialized so far (for tests/diagnostics). */
    std::uint64_t pagesAllocated() const { return pagesAllocated_; }

    static constexpr std::uint64_t kPageWords = 4096;

  private:
    struct Page {
        Word words[kPageWords] = {};
    };

    Page& pageFor(Addr addr);

    std::uint64_t totalWords_;
    std::uint64_t pagesAllocated_ = 0;
    std::vector<std::unique_ptr<Page>> pages_;
};

} // namespace pim

#endif // PIMCACHE_MEM_PAGED_STORE_H_
