#include "mem/paged_store.h"

#include "common/xassert.h"

namespace pim {

PagedStore::PagedStore(std::uint64_t total_words)
    : totalWords_(total_words),
      pages_((total_words + kPageWords - 1) / kPageWords)
{
}

Word
PagedStore::read(Addr addr) const
{
    PIM_ASSERT(addr < totalWords_, "read past end of memory: ", addr);
    const auto& page = pages_[addr / kPageWords];
    return page ? page->words[addr % kPageWords] : 0;
}

void
PagedStore::write(Addr addr, Word value)
{
    pageFor(addr).words[addr % kPageWords] = value;
}

void
PagedStore::readSpan(Addr addr, std::uint32_t count, Word* out) const
{
    PIM_ASSERT(count != 0 && addr / kPageWords ==
                                 (addr + count - 1) / kPageWords,
               "readSpan crosses a page boundary: ", addr, "+", count);
    PIM_ASSERT(addr + count <= totalWords_,
               "read past end of memory: ", addr);
    const auto& page = pages_[addr / kPageWords];
    if (!page) {
        for (std::uint32_t w = 0; w < count; ++w)
            out[w] = 0;
        return;
    }
    const Word* words = &page->words[addr % kPageWords];
    for (std::uint32_t w = 0; w < count; ++w)
        out[w] = words[w];
}

void
PagedStore::writeSpan(Addr addr, std::uint32_t count, const Word* data)
{
    PIM_ASSERT(count != 0 && addr / kPageWords ==
                                 (addr + count - 1) / kPageWords,
               "writeSpan crosses a page boundary: ", addr, "+", count);
    Word* words = &pageFor(addr).words[addr % kPageWords];
    for (std::uint32_t w = 0; w < count; ++w)
        words[w] = data[w];
}

PagedStore::Page&
PagedStore::pageFor(Addr addr)
{
    PIM_ASSERT(addr < totalWords_, "write past end of memory: ", addr);
    auto& slot = pages_[addr / kPageWords];
    if (!slot) {
        slot = std::make_unique<Page>();
        ++pagesAllocated_;
    }
    return *slot;
}

} // namespace pim
