#include "mem/paged_store.h"

#include "common/xassert.h"

namespace pim {

PagedStore::PagedStore(std::uint64_t total_words)
    : totalWords_(total_words),
      pages_((total_words + kPageWords - 1) / kPageWords)
{
}

Word
PagedStore::read(Addr addr) const
{
    PIM_ASSERT(addr < totalWords_, "read past end of memory: ", addr);
    const auto& page = pages_[addr / kPageWords];
    return page ? page->words[addr % kPageWords] : 0;
}

void
PagedStore::write(Addr addr, Word value)
{
    pageFor(addr).words[addr % kPageWords] = value;
}

PagedStore::Page&
PagedStore::pageFor(Addr addr)
{
    PIM_ASSERT(addr < totalWords_, "write past end of memory: ", addr);
    auto& slot = pages_[addr / kPageWords];
    if (!slot) {
        slot = std::make_unique<Page>();
        ++pagesAllocated_;
    }
    return *slot;
}

} // namespace pim
