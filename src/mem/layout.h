/**
 * @file
 * Word-addressed shared address-space layout.
 *
 * The shared memory is divided into the five KL1 areas. The instruction
 * area is a single shared region; heap, goal, suspension and communication
 * areas are split into per-PE segments so that each PE allocates locally
 * (as the real KL1 system does) while all data remains globally readable.
 */

#ifndef PIMCACHE_MEM_LAYOUT_H_
#define PIMCACHE_MEM_LAYOUT_H_

#include <cstdint>
#include <string>

#include "common/types.h"
#include "mem/area.h"

namespace pim {

/** Sizing knobs for the address-space layout (all in words). */
struct LayoutConfig {
    std::uint32_t numPes = 8;
    std::uint64_t instrWords = 1u << 16;       ///< Shared code region.
    std::uint64_t heapWordsPerPe = 1u << 22;   ///< Per-PE heap segment.
    std::uint64_t goalWordsPerPe = 1u << 18;   ///< Per-PE goal segment.
    std::uint64_t suspWordsPerPe = 1u << 16;   ///< Per-PE suspension seg.
    std::uint64_t commWordsPerPe = 1u << 14;   ///< Per-PE comm segment.
};

/** One contiguous address range [base, base+size). */
struct Range {
    Addr base = 0;
    std::uint64_t size = 0;

    bool contains(Addr addr) const { return addr - base < size; }
    Addr end() const { return base + size; }
};

/**
 * Computes and answers questions about the area map.
 *
 * The layout is contiguous from address 0: instruction area first, then for
 * each area kind, the per-PE segments back to back. Segment bases are
 * aligned to 4K words so area/PE classification is cheap and no cache block
 * ever straddles two areas.
 */
class Layout
{
  public:
    explicit Layout(const LayoutConfig& config = LayoutConfig{});

    const LayoutConfig& config() const { return config_; }

    /** Total words spanned by the layout. */
    std::uint64_t totalWords() const { return total_; }

    /** The shared instruction region. */
    Range instrRange() const { return instr_; }

    /** Per-PE segment of @p area (not Instruction/Unknown). */
    Range segment(Area area, PeId pe) const;

    /** Classify an address into an area (Unknown if out of range). */
    Area areaOf(Addr addr) const;

    /** Owning PE of an address (kNoPe for instruction/unknown). */
    PeId peOf(Addr addr) const;

    /** Human-readable description of @p addr, for diagnostics. */
    std::string describe(Addr addr) const;

  private:
    static constexpr std::uint64_t kAlign = 4096;

    LayoutConfig config_;
    Range instr_;
    // areaBase_[a] is the base of area a's first PE segment; segments of
    // one area are contiguous and segStride_[a] words apart.
    Addr areaBase_[kNumAreaSlots] = {};
    std::uint64_t segStride_[kNumAreaSlots] = {};
    std::uint64_t segSize_[kNumAreaSlots] = {};
    std::uint64_t total_ = 0;
};

} // namespace pim

#endif // PIMCACHE_MEM_LAYOUT_H_
