/**
 * @file
 * Seeded, policy-driven fault injector.
 *
 * One injector is shared by the bus, every cache / lock directory and the
 * system; each component asks `fire(site)` at its injection points. Every
 * decision comes from one deterministic RNG consulted in simulation
 * order, so a (seed, plan) pair replays the exact same fault sequence —
 * the foundation of the pim_stress seed-replay workflow.
 */

#ifndef PIMCACHE_FAULT_FAULT_INJECTOR_H_
#define PIMCACHE_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/types.h"
#include "fault/fault_plan.h"

namespace pim {

/** Per-site injection accounting. */
struct FaultSiteStats {
    std::uint64_t opportunities = 0; ///< fire() calls for the site.
    std::uint64_t fires = 0;         ///< Decisions that injected.
};

/** Decides, deterministically, where and when faults strike. */
class FaultInjector
{
  public:
    FaultInjector(const FaultPlan& plan, std::uint64_t seed);

    /**
     * One injection opportunity at @p site: counts it and decides.
     * @return true if a fault must be injected now.
     */
    bool fire(FaultSite site);

    /** Flip one random bit of one of @p words[0..count) (corruptions). */
    void flipBit(Word* words, std::uint32_t count);

    const FaultPlan& plan() const { return plan_; }
    std::uint64_t seed() const { return seed_; }
    const FaultSiteStats& stats(FaultSite site) const
    {
        return stats_[static_cast<int>(site)];
    }

    /** Total fires across all sites. */
    std::uint64_t totalFires() const;

    /** One-line per-site "site=fires/opportunities" summary. */
    std::string summary() const;

  private:
    FaultPlan plan_;
    std::uint64_t seed_;
    Rng rng_;
    FaultSiteStats stats_[kNumFaultSites];
    std::uint64_t ruleFires_[64] = {}; ///< Fires per plan rule.
};

} // namespace pim

#endif // PIMCACHE_FAULT_FAULT_INJECTOR_H_
