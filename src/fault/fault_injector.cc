#include "fault/fault_injector.h"

#include <sstream>

#include "common/sim_fault.h"

namespace pim {

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t seed)
    : plan_(plan), seed_(seed), rng_(seed ^ 0xfa17ed5eedULL)
{
    if (plan_.rules.size() > 64) {
        throw PIM_SIM_FAULT(SimFaultKind::Config, "fault plan has ",
                      plan_.rules.size(), " rules; at most 64 supported");
    }
}

bool
FaultInjector::fire(FaultSite site)
{
    FaultSiteStats& stats = stats_[static_cast<int>(site)];
    stats.opportunities += 1;
    bool fired = false;
    for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
        const FaultRule& rule = plan_.rules[i];
        if (rule.site != site)
            continue;
        if (stats.opportunities <= rule.after)
            continue;
        if (ruleFires_[i] >= rule.maxFires)
            continue;
        // Pure after-rules fire unconditionally once armed; p-rules roll
        // the shared deterministic RNG.
        const bool hit =
            rule.probability > 0.0 ? rng_.uniform() < rule.probability
                                   : true;
        if (hit) {
            ruleFires_[i] += 1;
            fired = true;
        }
    }
    if (fired)
        stats.fires += 1;
    return fired;
}

void
FaultInjector::flipBit(Word* words, std::uint32_t count)
{
    const std::uint64_t word = rng_.below(count);
    const std::uint64_t bit = rng_.below(64);
    words[word] ^= Word{1} << bit;
}

std::uint64_t
FaultInjector::totalFires() const
{
    std::uint64_t total = 0;
    for (const FaultSiteStats& s : stats_)
        total += s.fires;
    return total;
}

std::string
FaultInjector::summary() const
{
    std::ostringstream os;
    bool first = true;
    for (int i = 0; i < kNumFaultSites; ++i) {
        if (stats_[i].opportunities == 0)
            continue;
        if (!first)
            os << " ";
        first = false;
        os << faultSiteName(static_cast<FaultSite>(i)) << "="
           << stats_[i].fires << "/" << stats_[i].opportunities;
    }
    if (first)
        os << "(no injection opportunities)";
    return os.str();
}

} // namespace pim
