#include "fault/fault_plan.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/sim_fault.h"
#include "common/strutil.h"

namespace pim {

namespace {

const char* const kSiteNames[kNumFaultSites] = {
    "drop_snoop",   "dup_snoop",   "corrupt_word",
    "spurious_inv", "bit_flip",    "forced_miss",
    "lost_ul",      "stuck_lwait", "spurious_wakeup",
};

bool
siteFromName(const std::string& name, FaultSite* out)
{
    for (int i = 0; i < kNumFaultSites; ++i) {
        if (name == kSiteNames[i]) {
            *out = static_cast<FaultSite>(i);
            return true;
        }
    }
    return false;
}

/** Format a probability compactly and round-trippably. */
std::string
formatProb(double p)
{
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.17g", p);
    return buffer;
}

} // namespace

const char*
faultSiteName(FaultSite site)
{
    const int index = static_cast<int>(site);
    return index >= 0 && index < kNumFaultSites ? kSiteNames[index] : "?";
}

std::string
FaultRule::toString() const
{
    std::ostringstream os;
    os << faultSiteName(site);
    if (probability > 0.0)
        os << ":p=" << formatProb(probability);
    if (after > 0)
        os << ":after=" << after;
    const std::uint64_t unlimited =
        std::numeric_limits<std::uint64_t>::max();
    const std::uint64_t implied = probability > 0.0 ? unlimited : 1;
    if (maxFires != implied)
        os << ":n=" << maxFires;
    return os.str();
}

FaultPlan
FaultPlan::parse(const std::string& spec)
{
    FaultPlan plan;
    for (const std::string& piece : splitString(spec, ',')) {
        const std::string entry = trimString(piece);
        if (entry.empty())
            continue;
        const std::vector<std::string> parts = splitString(entry, ':');
        FaultRule rule;
        if (!siteFromName(trimString(parts[0]), &rule.site)) {
            throw PIM_SIM_FAULT(SimFaultKind::Config, "unknown fault site '",
                          trimString(parts[0]), "' in plan '", spec, "'");
        }
        bool have_max_fires = false;
        for (std::size_t i = 1; i < parts.size(); ++i) {
            const std::string param = trimString(parts[i]);
            const std::size_t eq = param.find('=');
            if (eq == std::string::npos) {
                throw PIM_SIM_FAULT(SimFaultKind::Config, "fault parameter '",
                              param, "' is not key=value in plan '", spec,
                              "'");
            }
            const std::string key = trimString(param.substr(0, eq));
            const std::string value = trimString(param.substr(eq + 1));
            char* end = nullptr;
            if (key == "p") {
                rule.probability = std::strtod(value.c_str(), &end);
                if (end == value.c_str() || *end != '\0' ||
                    rule.probability < 0.0 || rule.probability > 1.0) {
                    throw PIM_SIM_FAULT(SimFaultKind::Config,
                                  "fault probability '", value,
                                  "' is not in [0, 1] in plan '", spec, "'");
                }
            } else if (key == "after") {
                rule.after = std::strtoull(value.c_str(), &end, 10);
                if (end == value.c_str() || *end != '\0') {
                    throw PIM_SIM_FAULT(SimFaultKind::Config, "fault count '",
                                  value, "' is not an integer in plan '",
                                  spec, "'");
                }
            } else if (key == "n") {
                rule.maxFires = std::strtoull(value.c_str(), &end, 10);
                if (end == value.c_str() || *end != '\0') {
                    throw PIM_SIM_FAULT(SimFaultKind::Config, "fault fire limit '",
                                  value, "' is not an integer in plan '",
                                  spec, "'");
                }
                have_max_fires = true;
            } else {
                throw PIM_SIM_FAULT(SimFaultKind::Config,
                              "unknown fault parameter '", key,
                              "' in plan '", spec, "'");
            }
        }
        if (rule.probability == 0.0 && rule.after == 0 && !have_max_fires) {
            throw PIM_SIM_FAULT(SimFaultKind::Config, "fault rule '", entry,
                          "' needs p= or after=");
        }
        // A pure after-rule is a one-shot unless n= says otherwise.
        if (rule.probability == 0.0 && !have_max_fires)
            rule.maxFires = 1;
        plan.rules.push_back(rule);
    }
    return plan;
}

std::string
FaultPlan::toString() const
{
    std::string out;
    for (const FaultRule& rule : rules) {
        if (!out.empty())
            out += ',';
        out += rule.toString();
    }
    return out;
}

} // namespace pim
