/**
 * @file
 * Seeded fault campaigns: the FaultPlan spec language.
 *
 * A plan is a comma-separated list of rules, each naming an injection
 * site with optional parameters joined by ':':
 *
 *     drop_snoop:p=0.001,corrupt_word:p=1e-4,spurious_inv:after=5000
 *
 * Parameters per rule:
 *   p=<prob>   Bernoulli firing probability per opportunity.
 *   after=<n>  The rule is armed only after the site's n-th opportunity.
 *   n=<k>      Maximum number of fires (default: 1 for pure after-rules,
 *              unlimited for p-rules).
 *
 * The taxonomy (see docs/ROBUSTNESS.md) covers the bus (dropped /
 * duplicated snoop replies, corrupted transfer words, spurious
 * invalidations), the cache (bit flips on fill, silently dropped blocks),
 * the lock directory (lost UL broadcasts, stuck LWAIT ghosts) and the
 * system (spurious wakeups of parked PEs).
 */

#ifndef PIMCACHE_FAULT_FAULT_PLAN_H_
#define PIMCACHE_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/types.h"

namespace pim {

/** Where in the memory system a fault can be injected. */
enum class FaultSite : std::uint8_t {
    DropSnoop = 0,      ///< Bus: a cache's snoop reply is lost.
    DupSnoop = 1,       ///< Bus: a snoop is delivered twice to one cache.
    CorruptWord = 2,    ///< Bus: one bit of a transferred word flips.
    SpuriousInv = 3,    ///< Bus: unrequested invalidation of the block.
    BitFlipFill = 4,    ///< Cache: one bit flips while filling a block.
    ForcedMiss = 5,     ///< Cache: a valid copy is silently dropped.
    LostUnlock = 6,     ///< Lock dir: UL broadcast lost despite LWAIT.
    StuckLwait = 7,     ///< Lock dir: entry stays LWAIT forever (ghost).
    SpuriousWakeup = 8, ///< System: parked PEs wake without a real UL.
};

/** Number of FaultSite enumerators. */
inline constexpr int kNumFaultSites = 9;

/** Spec-language name of @p site (also used in FaultPlan::toString). */
const char* faultSiteName(FaultSite site);

/** One parsed rule of a fault plan. */
struct FaultRule {
    FaultSite site = FaultSite::DropSnoop;
    double probability = 0.0; ///< 0 means "pure after-rule".
    std::uint64_t after = 0;  ///< Armed after this many opportunities.
    std::uint64_t maxFires = std::numeric_limits<std::uint64_t>::max();

    std::string toString() const;
};

/** A parsed fault campaign: an ordered list of rules. */
struct FaultPlan {
    std::vector<FaultRule> rules;

    bool empty() const { return rules.empty(); }

    /**
     * Parse a spec string (empty string -> empty plan).
     * @throws SimFault (Config) on unknown sites or malformed params.
     */
    static FaultPlan parse(const std::string& spec);

    /** Canonical spec string; parse(toString()) round-trips. */
    std::string toString() const;
};

} // namespace pim

#endif // PIMCACHE_FAULT_FAULT_PLAN_H_
