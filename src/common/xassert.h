/**
 * @file
 * Assertion and error-termination helpers.
 *
 * Follows the gem5 distinction: panic() for internal invariant violations
 * (a simulator bug), fatal() for user errors (bad configuration, malformed
 * input programs). Both are always on, independent of NDEBUG, because a
 * silently incoherent cache model is worse than a slow one.
 */

#ifndef PIMCACHE_COMMON_XASSERT_H_
#define PIMCACHE_COMMON_XASSERT_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace pim {

[[noreturn]] inline void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg.c_str());
    std::exit(1);
}

/** Build a message from stream-style arguments. */
template <typename... Args>
std::string
formatMsg(Args&&... args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace pim

/** Internal invariant violation: always-on assert. */
#define PIM_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::pim::panicImpl(__FILE__, __LINE__,                            \
                             ::pim::formatMsg("assertion failed: ", #cond,  \
                                              " ", ##__VA_ARGS__));         \
        }                                                                   \
    } while (0)

/** Unconditional internal error. */
#define PIM_PANIC(...)                                                      \
    ::pim::panicImpl(__FILE__, __LINE__, ::pim::formatMsg(__VA_ARGS__))

/** Unconditional user-facing error (bad input, bad configuration). */
#define PIM_FATAL(...)                                                      \
    ::pim::fatalImpl(__FILE__, __LINE__, ::pim::formatMsg(__VA_ARGS__))

#endif // PIMCACHE_COMMON_XASSERT_H_
