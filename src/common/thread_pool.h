/**
 * @file
 * Work-stealing thread pool for embarrassingly parallel simulation
 * batches (the sweep engine, pim_stress seed batches).
 *
 * Each worker owns a deque; submit() deals tasks round-robin and an
 * idle worker first drains its own deque, then steals from the others.
 * Tasks must be independent: the pool gives no ordering guarantee, so
 * callers that need deterministic output must write results into
 * pre-assigned slots (e.g. indexed by task number) and aggregate after
 * wait(). See DESIGN.md "Threading model".
 *
 * A task that throws is counted as finished; the first exception is
 * captured and rethrown from wait(). The destructor drains all queued
 * work before joining, so dropping a pool never loses tasks.
 */

#ifndef PIMCACHE_COMMON_THREAD_POOL_H_
#define PIMCACHE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pim {

/**
 * Rendezvous primitive for the parallel discrete-event core
 * (src/sim/parallel_core.*): a reusable all-arrive barrier that elects
 * the *last* arriver as the epoch leader.
 *
 * Each epoch, every party calls arrive(). The last arrival returns true
 * immediately — that thread is the leader and runs the serial epoch
 * phase (event execution, planning) while the others spin inside
 * arrive() on the generation counter. The leader then calls release(),
 * which publishes everything it wrote (release store) and lets the
 * waiters return false (acquire load).
 *
 * Memory ordering: worker-phase writes happen-before the worker's
 * acq_rel fetch_add in arrive(); the leader's own fetch_add in the same
 * RMW chain acquires them all, so the serial phase sees every worker
 * write. Serial-phase writes happen-before release()'s release store,
 * which the waiters' acquire loads synchronize with. No locks, no
 * condvars: epochs are short (microseconds), so spin + yield beats a
 * futex round-trip.
 */
class EpochGate
{
  public:
    explicit EpochGate(unsigned parties) : parties_(parties) {}

    EpochGate(const EpochGate&) = delete;
    EpochGate& operator=(const EpochGate&) = delete;

    /**
     * Arrive at the epoch boundary. Returns true for the leader (last
     * arriver), who must call release() after the serial phase; false
     * for everyone else, once the leader has released.
     */
    bool
    arrive()
    {
        const std::uint64_t prev =
            state_.fetch_add(1, std::memory_order_acq_rel);
        const std::uint32_t count =
            static_cast<std::uint32_t>(prev & 0xffffffffu) + 1;
        const std::uint32_t generation =
            static_cast<std::uint32_t>(prev >> 32);
        if (count == parties_)
            return true;
        while (static_cast<std::uint32_t>(
                   state_.load(std::memory_order_acquire) >> 32) ==
               generation) {
            std::this_thread::yield();
        }
        return false;
    }

    /** Leader only: open the next epoch (resets the arrival count). */
    void
    release()
    {
        const std::uint64_t generation =
            (state_.load(std::memory_order_relaxed) >> 32) + 1;
        state_.store(generation << 32, std::memory_order_release);
    }

    unsigned parties() const { return parties_; }

    /** Epochs completed so far (i.e. release() calls). */
    std::uint64_t
    generation() const
    {
        return state_.load(std::memory_order_acquire) >> 32;
    }

  private:
    /** Low 32 bits: arrivals this epoch. High 32 bits: generation. */
    std::atomic<std::uint64_t> state_{0};
    const unsigned parties_;
};

/** Fixed-size work-stealing pool of std::thread workers. */
class ThreadPool
{
  public:
    /** @param workers Worker count; 0 means defaultWorkers(). */
    explicit ThreadPool(unsigned workers = 0);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueue @p task; it runs on some worker, in no defined order. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished. If any task threw,
     * the first captured exception is rethrown here (once); remaining
     * tasks still ran to completion.
     */
    void wait();

    unsigned workerCount() const { return static_cast<unsigned>(workers_.size()); }

    /** Tasks submitted over the pool's lifetime. */
    std::uint64_t tasksSubmitted() const;

    /** std::thread::hardware_concurrency(), at least 1. */
    static unsigned defaultWorkers();

  private:
    void workerLoop(std::size_t self);

    /** Pop from own deque or steal; false when nothing runnable. */
    bool takeTask(std::size_t self, std::function<void()>& task);

    mutable std::mutex mutex_;
    std::condition_variable workReady_; ///< Signalled on submit/stop.
    std::condition_variable allDone_;   ///< Signalled when active+queued==0.
    std::vector<std::deque<std::function<void()>>> queues_;
    std::vector<std::thread> workers_;
    std::size_t nextQueue_ = 0;   ///< Round-robin submit cursor.
    std::size_t queued_ = 0;      ///< Tasks sitting in deques.
    std::size_t active_ = 0;      ///< Tasks currently running.
    std::uint64_t submitted_ = 0;
    std::exception_ptr firstError_;
    bool stop_ = false;
};

} // namespace pim

#endif // PIMCACHE_COMMON_THREAD_POOL_H_
