/**
 * @file
 * Work-stealing thread pool for embarrassingly parallel simulation
 * batches (the sweep engine, pim_stress seed batches).
 *
 * Each worker owns a deque; submit() deals tasks round-robin and an
 * idle worker first drains its own deque, then steals from the others.
 * Tasks must be independent: the pool gives no ordering guarantee, so
 * callers that need deterministic output must write results into
 * pre-assigned slots (e.g. indexed by task number) and aggregate after
 * wait(). See DESIGN.md "Threading model".
 *
 * A task that throws is counted as finished; the first exception is
 * captured and rethrown from wait(). The destructor drains all queued
 * work before joining, so dropping a pool never loses tasks.
 */

#ifndef PIMCACHE_COMMON_THREAD_POOL_H_
#define PIMCACHE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pim {

/** Fixed-size work-stealing pool of std::thread workers. */
class ThreadPool
{
  public:
    /** @param workers Worker count; 0 means defaultWorkers(). */
    explicit ThreadPool(unsigned workers = 0);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueue @p task; it runs on some worker, in no defined order. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished. If any task threw,
     * the first captured exception is rethrown here (once); remaining
     * tasks still ran to completion.
     */
    void wait();

    unsigned workerCount() const { return static_cast<unsigned>(workers_.size()); }

    /** Tasks submitted over the pool's lifetime. */
    std::uint64_t tasksSubmitted() const;

    /** std::thread::hardware_concurrency(), at least 1. */
    static unsigned defaultWorkers();

  private:
    void workerLoop(std::size_t self);

    /** Pop from own deque or steal; false when nothing runnable. */
    bool takeTask(std::size_t self, std::function<void()>& task);

    mutable std::mutex mutex_;
    std::condition_variable workReady_; ///< Signalled on submit/stop.
    std::condition_variable allDone_;   ///< Signalled when active+queued==0.
    std::vector<std::deque<std::function<void()>>> queues_;
    std::vector<std::thread> workers_;
    std::size_t nextQueue_ = 0;   ///< Round-robin submit cursor.
    std::size_t queued_ = 0;      ///< Tasks sitting in deques.
    std::size_t active_ = 0;      ///< Tasks currently running.
    std::uint64_t submitted_ = 0;
    std::exception_ptr firstError_;
    bool stop_ = false;
};

} // namespace pim

#endif // PIMCACHE_COMMON_THREAD_POOL_H_
