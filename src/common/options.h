/**
 * @file
 * Tiny command-line / environment option parser for benches, tools and
 * examples.
 *
 * Supports "--name value", "--name=value" and boolean "--name" flags, plus
 * environment-variable fallbacks so the whole bench directory can be
 * steered with REPRO_SCALE / REPRO_PES without editing command lines.
 */

#ifndef PIMCACHE_COMMON_OPTIONS_H_
#define PIMCACHE_COMMON_OPTIONS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pim {

/** Parsed command-line options with typed accessors. */
class Options
{
  public:
    Options() = default;

    /**
     * Parse argv. Unknown options are accepted (benches share a parser);
     * positional arguments are collected in order.
     */
    static Options parse(int argc, const char* const* argv);

    /** True if --name was present. */
    bool has(const std::string& name) const;

    /** String value of --name, or @p fallback. */
    std::string getString(const std::string& name,
                          const std::string& fallback = "") const;

    /** Integer value of --name, or @p fallback. */
    std::int64_t getInt(const std::string& name, std::int64_t fallback) const;

    /** Double value of --name, or @p fallback. */
    double getDouble(const std::string& name, double fallback) const;

    /** Boolean flag: present without value, or value in {1,true,yes,on}. */
    bool getBool(const std::string& name, bool fallback = false) const;

    /** Positional (non-option) arguments, in order. */
    const std::vector<std::string>& positional() const { return positional_; }

    /** Inject or override an option programmatically. */
    void set(const std::string& name, const std::string& value);

    /**
     * Environment fallback: value of --name if present, else env var
     * @p env_name, else @p fallback.
     */
    std::int64_t getIntEnv(const std::string& name, const char* env_name,
                           std::int64_t fallback) const;

    /**
     * Environment fallback: value of --name if present, else env var
     * @p env_name, else @p fallback.
     */
    std::string getStringEnv(const std::string& name, const char* env_name,
                             const std::string& fallback = "") const;

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

/** Read an integer environment variable, or @p fallback. */
std::int64_t envInt(const char* name, std::int64_t fallback);

} // namespace pim

#endif // PIMCACHE_COMMON_OPTIONS_H_
