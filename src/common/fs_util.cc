#include "common/fs_util.h"

#include <filesystem>
#include <fstream>
#include <system_error>

#include <unistd.h>

namespace pim {

namespace fs = std::filesystem;

bool
writeFileAtomic(const std::string& path, const std::string& content,
                std::string* error)
{
    const auto fail = [error](std::string message) {
        if (error != nullptr)
            *error = std::move(message);
        return false;
    };
    if (error != nullptr)
        error->clear();

    const fs::path target(path);
    const fs::path parent = target.parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        fs::create_directories(parent, ec);
        if (ec) {
            return fail("cannot create directory " + parent.string() +
                        ": " + ec.message());
        }
    }

    // The pid suffix keeps concurrent writers of the same path (e.g.
    // parallel ctest invocations sharing a scratch dir) from clobbering
    // each other's temp file; the final rename is last-writer-wins
    // either way, which is the usual atomic-replace contract.
    const fs::path temp =
        target.string() + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out) {
            return fail("cannot open " + temp.string() + " for writing");
        }
        out << content;
        out.flush();
        if (!out.good()) {
            out.close();
            std::error_code ec;
            fs::remove(temp, ec);
            return fail("short write to " + temp.string());
        }
    }

    std::error_code ec;
    fs::rename(temp, target, ec);
    if (ec) {
        std::error_code rm_ec;
        fs::remove(temp, rm_ec);
        return fail("cannot rename " + temp.string() + " to " +
                    target.string() + ": " + ec.message());
    }
    return true;
}

} // namespace pim
