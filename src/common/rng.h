/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * A small splitmix64/xoshiro256** combination so simulations are exactly
 * reproducible across hosts and standard-library versions (std::mt19937
 * would also do, but its distributions are not portable).
 */

#ifndef PIMCACHE_COMMON_RNG_H_
#define PIMCACHE_COMMON_RNG_H_

#include <cstdint>

#include "common/xassert.h"

namespace pim {

/** Portable deterministic PRNG (xoshiro256** seeded via splitmix64). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        PIM_ASSERT(bound > 0);
        // Debiased via rejection sampling.
        const std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        PIM_ASSERT(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw with probability @p num / @p den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace pim

#endif // PIMCACHE_COMMON_RNG_H_
