/**
 * @file
 * Minimal leveled logging to stderr.
 *
 * Level is process global and settable from the PIM_LOG environment
 * variable (error, warn, info, debug, trace). Defaults to warn so tests
 * and benches stay quiet.
 */

#ifndef PIMCACHE_COMMON_LOG_H_
#define PIMCACHE_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace pim {

enum class LogLevel : int {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
};

/** Current global log level. */
LogLevel logLevel();

/** Override the global log level. */
void setLogLevel(LogLevel level);

/** Emit one log line (no newline needed) if level is enabled. */
void logLine(LogLevel level, const std::string& msg);

/** True if a message at @p level would be emitted. */
inline bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <= static_cast<int>(logLevel());
}

} // namespace pim

#define PIM_LOG(level, ...)                                                 \
    do {                                                                    \
        if (::pim::logEnabled(level)) {                                     \
            std::ostringstream os_;                                         \
            os_ << __VA_ARGS__;                                             \
            ::pim::logLine(level, os_.str());                               \
        }                                                                   \
    } while (0)

#define PIM_INFO(...)  PIM_LOG(::pim::LogLevel::Info, __VA_ARGS__)
#define PIM_WARN(...)  PIM_LOG(::pim::LogLevel::Warn, __VA_ARGS__)
#define PIM_DEBUG(...) PIM_LOG(::pim::LogLevel::Debug, __VA_ARGS__)
#define PIM_TRACE(...) PIM_LOG(::pim::LogLevel::Trace, __VA_ARGS__)

#endif // PIMCACHE_COMMON_LOG_H_
