/**
 * @file
 * Minimal leveled logging to stderr.
 *
 * Level is process global and settable from the PIM_LOG environment
 * variable, parsed once at startup: the names error, warn, info, debug,
 * trace, or the equivalent numbers 0-4 (see README "Logging"). Defaults
 * to warn so tests and benches stay quiet.
 *
 * Every line carries a process-wide monotonic sequence number so
 * interleaved multi-PE debug output can be ordered after the fact, and
 * the PE-tagged variants (PIM_PE_DEBUG etc.) attribute a line to the
 * processor whose model emitted it:
 *
 *   [42 DEBUG pe3] fetch block 0x40 -> EC
 */

#ifndef PIMCACHE_COMMON_LOG_H_
#define PIMCACHE_COMMON_LOG_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace pim {

enum class LogLevel : int {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
};

/** Current global log level. */
LogLevel logLevel();

/** Override the global log level. */
void setLogLevel(LogLevel level);

/** Sequence number the next log line will carry. */
std::uint64_t logSequence();

/**
 * Emit one log line (no newline needed) if level is enabled, stamped
 * with the next sequence number. @p pe tags the line with the emitting
 * processor; pass kLogNoPe for untagged lines.
 */
void logLine(LogLevel level, const std::string& msg, int pe);

/** "No PE" tag for logLine. */
inline constexpr int kLogNoPe = -1;

/** Emit an untagged log line. */
inline void
logLine(LogLevel level, const std::string& msg)
{
    logLine(level, msg, kLogNoPe);
}

/** True if a message at @p level would be emitted. */
inline bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <= static_cast<int>(logLevel());
}

} // namespace pim

#define PIM_LOG(level, ...)                                                 \
    do {                                                                    \
        if (::pim::logEnabled(level)) {                                     \
            std::ostringstream os_;                                         \
            os_ << __VA_ARGS__;                                             \
            ::pim::logLine(level, os_.str());                               \
        }                                                                   \
    } while (0)

#define PIM_INFO(...)  PIM_LOG(::pim::LogLevel::Info, __VA_ARGS__)
#define PIM_WARN(...)  PIM_LOG(::pim::LogLevel::Warn, __VA_ARGS__)
#define PIM_DEBUG(...) PIM_LOG(::pim::LogLevel::Debug, __VA_ARGS__)
#define PIM_TRACE(...) PIM_LOG(::pim::LogLevel::Trace, __VA_ARGS__)

/** PE-tagged variants: PIM_PE_LOG(level, pe, ...). */
#define PIM_PE_LOG(level, pe, ...)                                          \
    do {                                                                    \
        if (::pim::logEnabled(level)) {                                     \
            std::ostringstream os_;                                         \
            os_ << __VA_ARGS__;                                             \
            ::pim::logLine(level, os_.str(), static_cast<int>(pe));         \
        }                                                                   \
    } while (0)

#define PIM_PE_INFO(pe, ...)                                                \
    PIM_PE_LOG(::pim::LogLevel::Info, pe, __VA_ARGS__)
#define PIM_PE_DEBUG(pe, ...)                                               \
    PIM_PE_LOG(::pim::LogLevel::Debug, pe, __VA_ARGS__)
#define PIM_PE_TRACE(pe, ...)                                               \
    PIM_PE_LOG(::pim::LogLevel::Trace, pe, __VA_ARGS__)

#endif // PIMCACHE_COMMON_LOG_H_
