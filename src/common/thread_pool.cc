#include "common/thread_pool.h"

#include <algorithm>

#include "common/log.h"

namespace pim {

unsigned
ThreadPool::defaultWorkers()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned workers)
{
    const unsigned count = workers == 0 ? defaultWorkers() : workers;
    queues_.resize(count);
    workers_.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    try {
        wait();
    } catch (const std::exception& e) {
        // A destructor must not throw; the dropped exception was the
        // caller's to collect via wait().
        PIM_WARN("ThreadPool destroyed with unobserved task error: "
                 << e.what());
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workReady_.notify_all();
    for (std::thread& worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queues_[nextQueue_].push_back(std::move(task));
        nextQueue_ = (nextQueue_ + 1) % queues_.size();
        ++queued_;
        ++submitted_;
    }
    workReady_.notify_one();
}

std::uint64_t
ThreadPool::tasksSubmitted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return submitted_;
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return queued_ == 0 && active_ == 0; });
    if (firstError_) {
        std::exception_ptr error = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(error);
    }
}

bool
ThreadPool::takeTask(std::size_t self, std::function<void()>& task)
{
    // Own deque first (front: oldest of the tasks dealt to this worker),
    // then steal round-robin from the victims after us.
    for (std::size_t i = 0; i < queues_.size(); ++i) {
        std::deque<std::function<void()>>& queue =
            queues_[(self + i) % queues_.size()];
        if (!queue.empty()) {
            task = std::move(queue.front());
            queue.pop_front();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        std::function<void()> task;
        if (takeTask(self, task)) {
            --queued_;
            ++active_;
            lock.unlock();
            try {
                task();
            } catch (...) {
                lock.lock();
                if (!firstError_)
                    firstError_ = std::current_exception();
                --active_;
                if (queued_ == 0 && active_ == 0)
                    allDone_.notify_all();
                continue;
            }
            lock.lock();
            --active_;
            if (queued_ == 0 && active_ == 0)
                allDone_.notify_all();
            continue;
        }
        if (stop_)
            return;
        workReady_.wait(lock);
    }
}

} // namespace pim
