/**
 * @file
 * Filesystem helpers for the simulator's output documents.
 *
 * Every JSON artifact the tools emit (SWEEP.json, BENCH_*.json,
 * SWEEP.ckpt.json, CAMPAIGN.json) is written via writeFileAtomic: the
 * content lands in a same-directory temp file first and is renamed over
 * the destination, so a killed process leaves either the old complete
 * file or the new complete file — never a torn half-document
 * (docs/ROBUSTNESS.md "Atomic output files").
 */

#ifndef PIMCACHE_COMMON_FS_UTIL_H_
#define PIMCACHE_COMMON_FS_UTIL_H_

#include <string>

namespace pim {

/**
 * Write @p content to @p path atomically: parent directories are
 * created as needed (like `mkdir -p`), the bytes go to a temp file in
 * the same directory (same filesystem, so the rename cannot cross a
 * mount), and std::filesystem::rename publishes the result. On any
 * failure the temp file is removed and the destination is untouched.
 *
 * @param error When non-null, receives a one-line description on
 *              failure ("" on success).
 * @return true when @p path now holds exactly @p content.
 */
bool writeFileAtomic(const std::string& path, const std::string& content,
                     std::string* error = nullptr);

} // namespace pim

#endif // PIMCACHE_COMMON_FS_UTIL_H_
