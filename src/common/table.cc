#include "common/table.h"

#include <algorithm>
#include <sstream>

#include "common/xassert.h"

namespace pim {

Table::Table(std::string title)
    : title_(std::move(title))
{
}

void
Table::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::addRow(std::vector<std::string> cells)
{
    PIM_ASSERT(header_.empty() || cells.size() == header_.size(),
               "row width ", cells.size(), " != header width ",
               header_.size());
    rows_.push_back(std::move(cells));
}

void
Table::addRule()
{
    rows_.push_back({kRuleMark});
}

void
Table::print(std::ostream& os) const
{
    const std::size_t ncols =
        header_.empty() ? (rows_.empty() ? 0 : rows_.front().size())
                        : header_.size();
    std::vector<std::size_t> width(ncols, 0);
    auto widen = [&](const std::vector<std::string>& row) {
        if (!row.empty() && row.front() == kRuleMark)
            return;
        for (std::size_t i = 0; i < row.size() && i < ncols; ++i)
            width[i] = std::max(width[i], row[i].size());
    };
    widen(header_);
    for (const auto& row : rows_)
        widen(row);

    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < ncols; ++i) {
            const std::string& cell = i < row.size() ? row[i] : "";
            os << "| ";
            // Left-align the first column (labels), right-align the rest.
            if (i == 0) {
                os << cell << std::string(width[i] - cell.size(), ' ');
            } else {
                os << std::string(width[i] - cell.size(), ' ') << cell;
            }
            os << ' ';
        }
        os << "|\n";
    };
    auto rule = [&]() {
        for (std::size_t i = 0; i < ncols; ++i)
            os << '+' << std::string(width[i] + 2, '-');
        os << "+\n";
    };

    if (!title_.empty())
        os << title_ << '\n';
    rule();
    if (!header_.empty()) {
        emit(header_);
        rule();
    }
    for (const auto& row : rows_) {
        if (!row.empty() && row.front() == kRuleMark) {
            rule();
        } else {
            emit(row);
        }
    }
    rule();
}

std::string
Table::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace pim
