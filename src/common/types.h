/**
 * @file
 * Fundamental scalar types shared by every module.
 *
 * The simulated machine is word addressed: an Addr names one machine word
 * (the paper's PIM uses 40-bit words; we model the word contents with a
 * 64-bit host word). Cycle counts are common-bus cycles unless a variable
 * name says otherwise.
 */

#ifndef PIMCACHE_COMMON_TYPES_H_
#define PIMCACHE_COMMON_TYPES_H_

#include <cstdint>

namespace pim {

/** A word address in the shared address space (word granularity). */
using Addr = std::uint64_t;

/** Contents of one simulated machine word. */
using Word = std::uint64_t;

/** A simulated time stamp or duration, in cycles. */
using Cycles = std::uint64_t;

/** Processing-element identifier (0-based). */
using PeId = std::uint32_t;

/** Sentinel for "no PE". */
inline constexpr PeId kNoPe = static_cast<PeId>(-1);

/** Sentinel for "no address". */
inline constexpr Addr kNoAddr = static_cast<Addr>(-1);

} // namespace pim

#endif // PIMCACHE_COMMON_TYPES_H_
