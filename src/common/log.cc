#include "common/log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>

namespace pim {

namespace {

/** Parse PIM_LOG once at startup: a level name or a number 0-4. */
LogLevel
initialLevel()
{
    const char* env = std::getenv("PIM_LOG");
    if (env == nullptr || env[0] == '\0')
        return LogLevel::Warn;
    if (std::strcmp(env, "error") == 0)
        return LogLevel::Error;
    if (std::strcmp(env, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "info") == 0)
        return LogLevel::Info;
    if (std::strcmp(env, "debug") == 0)
        return LogLevel::Debug;
    if (std::strcmp(env, "trace") == 0)
        return LogLevel::Trace;
    if (env[0] >= '0' && env[0] <= '4' && env[1] == '\0')
        return static_cast<LogLevel>(env[0] - '0');
    std::fprintf(stderr,
                 "[0 WARN] PIM_LOG='%s' not recognized (want error, "
                 "warn, info, debug, trace or 0-4); using warn\n",
                 env);
    return LogLevel::Warn;
}

// Atomic so concurrent simulations on a thread pool can log without a
// data race; sequence numbers stay globally unique and monotonic, but
// lines from different workers may interleave in any order.
std::atomic<LogLevel> gLevel{initialLevel()};
std::atomic<std::uint64_t> gSequence{0}; ///< Next line's sequence number.

const char*
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Error: return "ERROR";
      case LogLevel::Warn:  return "WARN";
      case LogLevel::Info:  return "INFO";
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Trace: return "TRACE";
    }
    return "?";
}

} // namespace

LogLevel
logLevel()
{
    return gLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    gLevel.store(level, std::memory_order_relaxed);
}

std::uint64_t
logSequence()
{
    return gSequence.load(std::memory_order_relaxed);
}

void
logLine(LogLevel level, const std::string& msg, int pe)
{
    const std::uint64_t seq =
        gSequence.fetch_add(1, std::memory_order_relaxed);
    if (pe >= 0) {
        std::fprintf(stderr, "[%llu %s pe%d] %s\n",
                     static_cast<unsigned long long>(seq),
                     levelName(level), pe, msg.c_str());
    } else {
        std::fprintf(stderr, "[%llu %s] %s\n",
                     static_cast<unsigned long long>(seq),
                     levelName(level), msg.c_str());
    }
}

} // namespace pim
