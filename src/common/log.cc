#include "common/log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pim {

namespace {

LogLevel
initialLevel()
{
    const char* env = std::getenv("PIM_LOG");
    if (env == nullptr)
        return LogLevel::Warn;
    if (std::strcmp(env, "error") == 0)
        return LogLevel::Error;
    if (std::strcmp(env, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "info") == 0)
        return LogLevel::Info;
    if (std::strcmp(env, "debug") == 0)
        return LogLevel::Debug;
    if (std::strcmp(env, "trace") == 0)
        return LogLevel::Trace;
    return LogLevel::Warn;
}

LogLevel gLevel = initialLevel();

const char*
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Error: return "ERROR";
      case LogLevel::Warn:  return "WARN";
      case LogLevel::Info:  return "INFO";
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Trace: return "TRACE";
    }
    return "?";
}

} // namespace

LogLevel
logLevel()
{
    return gLevel;
}

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

void
logLine(LogLevel level, const std::string& msg)
{
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

} // namespace pim
