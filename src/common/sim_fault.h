/**
 * @file
 * Structured simulator fault: the error type raised by configuration
 * validation, the KL1 front end, the coherence auditor and the lock
 * watchdog.
 *
 * Unlike PIM_PANIC / PIM_FATAL (which terminate the process), a SimFault
 * is a recoverable, catchable error: the stress harness catches it, turns
 * it into a replay line, and keeps the process alive to report. The kind
 * classifies the failure so tests and tooling can distinguish, say, a
 * detected coherence corruption from a lock deadlock.
 */

#ifndef PIMCACHE_COMMON_SIM_FAULT_H_
#define PIMCACHE_COMMON_SIM_FAULT_H_

#include <stdexcept>
#include <string>
#include <utility>

#include "common/xassert.h"

namespace pim {

/** Classification of a structured simulator fault. */
enum class SimFaultKind : std::uint8_t {
    Config = 0,     ///< Invalid construction parameters.
    Parse = 1,      ///< Malformed input program text.
    Corruption = 2, ///< Coherent-memory contents diverged (auditor).
    Protocol = 3,   ///< Cache-state invariant violated (auditor).
    Deadlock = 4,   ///< Every PE parked with no UL in flight (watchdog).
    Livelock = 5,   ///< Same access retried without commit (watchdog).
    Starvation = 6, ///< A parked PE aged past the LWAIT bound (watchdog).
    Timeout = 7,    ///< Wall-clock deadline exceeded (RunGuard).
    Cancelled = 8,  ///< Run cancelled cooperatively (CancelToken).
};

/** Number of SimFaultKind enumerators. */
inline constexpr int kNumSimFaultKinds = 9;

/** Stable lowercase name, used in replay lines and test assertions. */
inline const char*
simFaultKindName(SimFaultKind kind)
{
    switch (kind) {
      case SimFaultKind::Config:     return "config";
      case SimFaultKind::Parse:      return "parse";
      case SimFaultKind::Corruption: return "corruption";
      case SimFaultKind::Protocol:   return "protocol";
      case SimFaultKind::Deadlock:   return "deadlock";
      case SimFaultKind::Livelock:   return "livelock";
      case SimFaultKind::Starvation: return "starvation";
      case SimFaultKind::Timeout:    return "timeout";
      case SimFaultKind::Cancelled:  return "cancelled";
    }
    return "?";
}

/**
 * True for fault kinds a task runner may retry: the failure is a
 * property of the *execution* (a wall-clock budget on a loaded
 * machine), not of the deterministic simulation itself. Everything the
 * auditor/watchdog detects is a pure function of (config, seed), so
 * retrying it would only reproduce the same fault.
 */
inline bool
simFaultKindTransient(SimFaultKind kind)
{
    return kind == SimFaultKind::Timeout;
}

/**
 * Process exit code for a SimFault caught at a tool's main(), one per
 * kind family so scripts can classify failures without parsing stderr
 * (docs/ROBUSTNESS.md "Structured error exits"):
 *
 *   10 config, 11 parse, 12 detection (corruption/protocol),
 *   13 liveness (deadlock/livelock/starvation),
 *   14 execution bound (timeout/cancelled).
 */
inline int
simFaultExitCode(SimFaultKind kind)
{
    switch (kind) {
      case SimFaultKind::Config:     return 10;
      case SimFaultKind::Parse:      return 11;
      case SimFaultKind::Corruption:
      case SimFaultKind::Protocol:   return 12;
      case SimFaultKind::Deadlock:
      case SimFaultKind::Livelock:
      case SimFaultKind::Starvation: return 13;
      case SimFaultKind::Timeout:
      case SimFaultKind::Cancelled:  return 14;
    }
    return 15;
}

/** A recoverable, classified simulator error. */
class SimFault : public std::runtime_error
{
  public:
    SimFault(SimFaultKind kind, std::string message)
        : std::runtime_error(std::string(simFaultKindName(kind)) + ": " +
                             message),
          kind_(kind),
          message_(std::move(message))
    {
    }

    SimFaultKind kind() const { return kind_; }

    /** The message without the kind prefix. */
    const std::string& message() const { return message_; }

  private:
    SimFaultKind kind_;
    std::string message_;
};

} // namespace pim

/**
 * Construct a SimFault of @p kind with stream-style message arguments.
 * Use as `throw PIM_SIM_FAULT(kind, ...)`.
 */
#define PIM_SIM_FAULT(kind, ...)                                            \
    ::pim::SimFault((kind), ::pim::formatMsg(__VA_ARGS__))

#endif // PIMCACHE_COMMON_SIM_FAULT_H_
