/**
 * @file
 * Cooperative cancellation and wall-clock deadlines for long-running
 * simulations (docs/ROBUSTNESS.md "Deadlines and cancellation").
 *
 * A simulation point that livelocks — or just takes pathologically long
 * on some parameter corner — used to wedge its ThreadPool worker
 * forever. The resilient execution plane bounds every point instead: a
 * RunGuard is polled from the hot loops (System::access, the stress
 * driver, the KL1 step loop) and raises SimFault(Timeout) when its
 * Deadline passes or SimFault(Cancelled) when its CancelToken trips.
 *
 * The poll is designed for hot paths: it samples the wall clock only
 * once every `stride` polls (a counter increment and mask otherwise),
 * so the per-reference cost is a couple of ALU ops. Timeouts are
 * wall-clock and therefore *not* part of a run's deterministic inputs:
 * replay lines and SWEEP documents never include them, and a timed-out
 * point re-run without the deadline reproduces the full simulation.
 */

#ifndef PIMCACHE_COMMON_DEADLINE_H_
#define PIMCACHE_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace pim {

/**
 * A cooperative cancellation flag, safe to trip from any thread. The
 * holder of the token cancels; every RunGuard observing it raises
 * SimFault(Cancelled) at its next strided check.
 */
class CancelToken
{
  public:
    void
    cancel() noexcept
    {
        cancelled_.store(true, std::memory_order_relaxed);
    }

    bool
    cancelled() const noexcept
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> cancelled_{false};
};

/** A wall-clock budget: unlimited by default, or a steady-clock cutoff. */
class Deadline
{
  public:
    /** No deadline: never expires. */
    Deadline() = default;

    /** Explicit never-expiring deadline (same as the default). */
    static Deadline never() { return Deadline(); }

    /**
     * Expires @p seconds of wall-clock time from now. Non-positive
     * budgets expire immediately (useful in tests).
     */
    static Deadline afterSeconds(double seconds);

    bool unlimited() const { return unlimited_; }

    /** True once the cutoff has passed (never true when unlimited). */
    bool expired() const;

    /** The budget this deadline was created with (0 when unlimited). */
    double limitSeconds() const { return limitSeconds_; }

    /** Wall-clock seconds already consumed (0 when unlimited). */
    double elapsedSeconds() const;

  private:
    using Clock = std::chrono::steady_clock;

    bool unlimited_ = true;
    double limitSeconds_ = 0;
    Clock::time_point start_{};
    Clock::time_point cutoff_{};
};

/**
 * The hot-path poll point combining a Deadline and an optional
 * CancelToken. Embed one per run and call poll() once per reference /
 * step; every `stride`-th poll samples the clock and the token and
 * throws SimFault(Timeout) / SimFault(Cancelled). A RunGuard is
 * single-threaded (one per simulation stack), but the CancelToken it
 * watches may be tripped from any thread.
 */
class RunGuard
{
  public:
    /**
     * @param stride Polls per clock sample; rounded up to a power of
     *               two, minimum 1. The default (1024) bounds detection
     *               latency to ~a thousand references while keeping the
     *               fast path to a counter increment.
     */
    explicit RunGuard(Deadline deadline,
                      const CancelToken* cancel = nullptr,
                      std::uint32_t stride = 1024);

    /** Cheap check; throws SimFault(Timeout/Cancelled) when tripped. */
    void
    poll()
    {
        if ((++polls_ & mask_) == 0)
            check();
    }

    /** Polls observed so far (timeout messages report progress). */
    std::uint64_t polls() const { return polls_; }

    const Deadline& deadline() const { return deadline_; }

    /** True if either limit has tripped (non-throwing probe). */
    bool tripped() const;

  private:
    /** Strided slow path: samples clock + token, throws on violation. */
    void check();

    Deadline deadline_;
    const CancelToken* cancel_;
    std::uint64_t mask_;
    std::uint64_t polls_ = 0;
};

} // namespace pim

#endif // PIMCACHE_COMMON_DEADLINE_H_
