#include "common/options.h"

#include <cstdlib>

#include "common/strutil.h"
#include "common/xassert.h"

namespace pim {

Options
Options::parse(int argc, const char* const* argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (!startsWith(arg, "--")) {
            opts.positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            opts.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && !startsWith(argv[i + 1], "--")) {
            opts.values_[arg] = argv[++i];
        } else {
            opts.values_[arg] = "";
        }
    }
    return opts;
}

bool
Options::has(const std::string& name) const
{
    return values_.count(name) != 0;
}

std::string
Options::getString(const std::string& name, const std::string& fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t
Options::getInt(const std::string& name, std::int64_t fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end() || it->second.empty())
        return fallback;
    return std::strtoll(it->second.c_str(), nullptr, 0);
}

double
Options::getDouble(const std::string& name, double fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end() || it->second.empty())
        return fallback;
    return std::strtod(it->second.c_str(), nullptr);
}

bool
Options::getBool(const std::string& name, bool fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    const std::string& v = it->second;
    return v.empty() || v == "1" || v == "true" || v == "yes" || v == "on";
}

void
Options::set(const std::string& name, const std::string& value)
{
    values_[name] = value;
}

std::int64_t
Options::getIntEnv(const std::string& name, const char* env_name,
                   std::int64_t fallback) const
{
    if (has(name))
        return getInt(name, fallback);
    return envInt(env_name, fallback);
}

std::string
Options::getStringEnv(const std::string& name, const char* env_name,
                      const std::string& fallback) const
{
    if (has(name))
        return getString(name, fallback);
    const char* value = std::getenv(env_name);
    if (value == nullptr || value[0] == '\0')
        return fallback;
    return value;
}

std::int64_t
envInt(const char* name, std::int64_t fallback)
{
    const char* value = std::getenv(name);
    if (value == nullptr || value[0] == '\0')
        return fallback;
    return std::strtoll(value, nullptr, 0);
}

} // namespace pim
