/**
 * @file
 * Small string formatting helpers used by tables, logs and CLIs.
 */

#ifndef PIMCACHE_COMMON_STRUTIL_H_
#define PIMCACHE_COMMON_STRUTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pim {

/** Format with fixed decimal places, e.g. fmtFixed(3.14159, 2) == "3.14". */
std::string fmtFixed(double value, int places);

/** Format a percentage with @p places decimals, e.g. "42.87". */
std::string fmtPct(double fraction, int places = 2);

/** Group thousands with commas, e.g. 1234567 -> "1,234,567". */
std::string fmtCount(std::uint64_t value);

/** Compact engineering format, e.g. 13000000 -> "13.0M". */
std::string fmtEng(double value, int places = 1);

/** Split on a delimiter character; empty fields preserved. */
std::vector<std::string> splitString(const std::string& text, char delim);

/** Strip ASCII whitespace from both ends. */
std::string trimString(const std::string& text);

/** True if @p text starts with @p prefix. */
bool startsWith(const std::string& text, const std::string& prefix);

} // namespace pim

#endif // PIMCACHE_COMMON_STRUTIL_H_
