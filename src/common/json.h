/**
 * @file
 * Minimal JSON support for the simulator's machine-readable outputs.
 *
 * JsonWriter is a streaming writer (objects, arrays, scalar values) used
 * by the metrics registry, the timeline recorder, reportAllJson and the
 * bench binaries' --json output. JsonValue is a small recursive-descent
 * parser used by tests and the json_check schema validator to read those
 * files back. Neither aims at full spec coverage: strings are escaped to
 * ASCII, numbers round-trip through double (exact below 2^53), and the
 * parser rejects anything malformed with SimFault(Parse).
 */

#ifndef PIMCACHE_COMMON_JSON_H_
#define PIMCACHE_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace pim {

/** Streaming JSON writer with automatic commas and indentation. */
class JsonWriter
{
  public:
    /** @param pretty Two-space indentation and newlines when true. */
    explicit JsonWriter(std::ostream& os, bool pretty = true);

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; the next value/begin* call is its value. */
    void key(const std::string& name);

    void value(const std::string& text);
    void value(const char* text);
    void value(double number);
    void value(std::uint64_t number);
    void value(std::int64_t number);
    void value(int number) { value(static_cast<std::int64_t>(number)); }
    void value(bool flag);
    void valueNull();

    /**
     * Emit @p literal verbatim as the next value. The caller guarantees
     * it is well-formed JSON (e.g. pre-rendered by another JsonWriter);
     * commas and keys around it are still managed by this writer.
     */
    void rawValue(const std::string& literal);

    /** key() + value() in one call. */
    template <typename T>
    void
    field(const std::string& name, T&& v)
    {
        key(name);
        value(std::forward<T>(v));
    }

    /** Escape and quote @p text as a JSON string literal. */
    static std::string quote(const std::string& text);

  private:
    enum class Scope : std::uint8_t { Object, Array };

    void separate(); ///< Comma/newline/indent before the next element.
    void indent();

    std::ostream& os_;
    bool pretty_;
    bool pendingKey_ = false; ///< A key was emitted, value comes next.
    std::vector<Scope> stack_;
    std::vector<bool> hasElement_; ///< Per scope: something emitted yet.
};

/** A parsed JSON document (tree of values). */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t {
        Null, Bool, Number, String, Array, Object,
    };

    /** Parse @p text. @throws SimFault (Parse) with offset on error. */
    static JsonValue parse(const std::string& text);

    /** Read and parse a whole file. @throws SimFault (Parse). */
    static JsonValue parseFile(const std::string& path);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Value accessors; fatal if the kind does not match. */
    bool asBool() const;
    double asNumber() const;
    const std::string& asString() const;
    const std::vector<JsonValue>& asArray() const;

    /** Object member by key (insertion order preserved), or nullptr. */
    const JsonValue* find(const std::string& name) const;

    /** Object member by key; fatal if absent or not an object. */
    const JsonValue& at(const std::string& name) const;

    /** Object member presence. */
    bool has(const std::string& name) const { return find(name) != nullptr; }

    /** Array element count (0 for non-arrays/objects). */
    std::size_t size() const;

    /** Array element by index; fatal if out of range. */
    const JsonValue& at(std::size_t index) const;

    /** Object members in document order. */
    const std::vector<std::pair<std::string, JsonValue>>& members() const
    {
        return members_;
    }

    /**
     * Resolve a dotted path, e.g. "rows.0.measured.cycles" (numeric
     * segments index arrays). @return nullptr when any hop is missing.
     */
    const JsonValue* findPath(const std::string& path) const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0;
    std::string string_;
    std::vector<JsonValue> elements_;
    std::vector<std::pair<std::string, JsonValue>> members_;

    friend class JsonParser;
};

} // namespace pim

#endif // PIMCACHE_COMMON_JSON_H_
