#include "common/deadline.h"

#include "common/sim_fault.h"

namespace pim {

Deadline
Deadline::afterSeconds(double seconds)
{
    Deadline deadline;
    deadline.unlimited_ = false;
    deadline.limitSeconds_ = seconds < 0 ? 0 : seconds;
    deadline.start_ = Clock::now();
    deadline.cutoff_ =
        deadline.start_ +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(deadline.limitSeconds_));
    return deadline;
}

bool
Deadline::expired() const
{
    return !unlimited_ && Clock::now() >= cutoff_;
}

double
Deadline::elapsedSeconds() const
{
    if (unlimited_)
        return 0;
    return std::chrono::duration<double>(Clock::now() - start_).count();
}

namespace {

/** Smallest power of two >= v (v clamped to [1, 2^31]). */
std::uint64_t
roundUpPow2(std::uint64_t v)
{
    if (v <= 1)
        return 1;
    std::uint64_t p = 1;
    while (p < v && p < (1ull << 31))
        p <<= 1;
    return p;
}

} // namespace

RunGuard::RunGuard(Deadline deadline, const CancelToken* cancel,
                   std::uint32_t stride)
    : deadline_(deadline),
      cancel_(cancel),
      mask_(roundUpPow2(stride) - 1)
{
}

bool
RunGuard::tripped() const
{
    return (cancel_ != nullptr && cancel_->cancelled()) ||
           deadline_.expired();
}

void
RunGuard::check()
{
    if (cancel_ != nullptr && cancel_->cancelled()) {
        throw PIM_SIM_FAULT(SimFaultKind::Cancelled,
                            "run cancelled after ", polls_,
                            " polled references");
    }
    if (deadline_.expired()) {
        throw PIM_SIM_FAULT(SimFaultKind::Timeout, "wall-clock deadline (",
                            deadline_.limitSeconds(), "s) exceeded after ",
                            polls_, " polled references");
    }
}

} // namespace pim
