/**
 * @file
 * ASCII table builder for bench output.
 *
 * The bench binaries print paper-style tables; this keeps the column
 * alignment logic in one place.
 */

#ifndef PIMCACHE_COMMON_TABLE_H_
#define PIMCACHE_COMMON_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace pim {

/** A simple right-aligned-numbers ASCII table. */
class Table
{
  public:
    /** @param title Caption printed above the table (may be empty). */
    explicit Table(std::string title = "");

    /** Set the header row. Resets column count. */
    void setHeader(std::vector<std::string> cells);

    /** Append one data row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addRule();

    /** Render to a stream. */
    void print(std::ostream& os) const;

    /** Render to a string. */
    std::string toString() const;

  private:
    static constexpr const char* kRuleMark = "\x01rule";

    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pim

#endif // PIMCACHE_COMMON_TABLE_H_
