#include "common/strutil.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace pim {

std::string
fmtFixed(double value, int places)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", places, value);
    return buf;
}

std::string
fmtPct(double fraction, int places)
{
    return fmtFixed(fraction * 100.0, places);
}

std::string
fmtCount(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count != 0 && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return std::string(out.rbegin(), out.rend());
}

std::string
fmtEng(double value, int places)
{
    const char* suffix = "";
    double scaled = value;
    if (std::fabs(value) >= 1e9) {
        scaled = value / 1e9;
        suffix = "G";
    } else if (std::fabs(value) >= 1e6) {
        scaled = value / 1e6;
        suffix = "M";
    } else if (std::fabs(value) >= 1e3) {
        scaled = value / 1e3;
        suffix = "K";
    }
    return fmtFixed(scaled, places) + suffix;
}

std::vector<std::string>
splitString(const std::string& text, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (c == delim) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trimString(const std::string& text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

bool
startsWith(const std::string& text, const std::string& prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

} // namespace pim
