#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/sim_fault.h"
#include "common/xassert.h"

namespace pim {

// ---------------------------------------------------------------- writer

JsonWriter::JsonWriter(std::ostream& os, bool pretty)
    : os_(os), pretty_(pretty)
{
}

std::string
JsonWriter::quote(const std::string& text)
{
    std::string out = "\"";
    for (unsigned char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
    return out;
}

void
JsonWriter::indent()
{
    if (!pretty_)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::separate()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // the key already positioned us
    }
    if (stack_.empty())
        return;
    if (hasElement_.back())
        os_ << ',';
    hasElement_.back() = true;
    indent();
}

void
JsonWriter::beginObject()
{
    separate();
    os_ << '{';
    stack_.push_back(Scope::Object);
    hasElement_.push_back(false);
}

void
JsonWriter::endObject()
{
    PIM_ASSERT(!stack_.empty() && stack_.back() == Scope::Object,
               "endObject outside an object");
    const bool had = hasElement_.back();
    stack_.pop_back();
    hasElement_.pop_back();
    if (had)
        indent();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    separate();
    os_ << '[';
    stack_.push_back(Scope::Array);
    hasElement_.push_back(false);
}

void
JsonWriter::endArray()
{
    PIM_ASSERT(!stack_.empty() && stack_.back() == Scope::Array,
               "endArray outside an array");
    const bool had = hasElement_.back();
    stack_.pop_back();
    hasElement_.pop_back();
    if (had)
        indent();
    os_ << ']';
}

void
JsonWriter::key(const std::string& name)
{
    PIM_ASSERT(!stack_.empty() && stack_.back() == Scope::Object,
               "key outside an object");
    separate();
    os_ << quote(name) << (pretty_ ? ": " : ":");
    pendingKey_ = true;
}

void
JsonWriter::value(const std::string& text)
{
    separate();
    os_ << quote(text);
}

void
JsonWriter::value(const char* text)
{
    value(std::string(text));
}

void
JsonWriter::value(double number)
{
    separate();
    if (!std::isfinite(number)) {
        // JSON has no inf/nan; emit null so the document stays parseable.
        os_ << "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", number);
    os_ << buf;
}

void
JsonWriter::value(std::uint64_t number)
{
    separate();
    os_ << number;
}

void
JsonWriter::value(std::int64_t number)
{
    separate();
    os_ << number;
}

void
JsonWriter::value(bool flag)
{
    separate();
    os_ << (flag ? "true" : "false");
}

void
JsonWriter::valueNull()
{
    separate();
    os_ << "null";
}

void
JsonWriter::rawValue(const std::string& literal)
{
    separate();
    os_ << literal;
}

// ---------------------------------------------------------------- parser

class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue value = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters after the document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string& what)
    {
        throw PIM_SIM_FAULT(SimFaultKind::Parse, "json: ", what,
                            " at offset ", pos_);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeWord(const char* word)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        skipSpace();
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': {
            JsonValue v;
            v.kind_ = JsonValue::Kind::String;
            v.string_ = parseString();
            return v;
          }
          case 't':
          case 'f': {
            JsonValue v;
            v.kind_ = JsonValue::Kind::Bool;
            if (consumeWord("true"))
                v.bool_ = true;
            else if (consumeWord("false"))
                v.bool_ = false;
            else
                fail("bad literal");
            return v;
          }
          case 'n': {
            if (!consumeWord("null"))
                fail("bad literal");
            return JsonValue{};
          }
          default:
            return parseNumber();
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            c = text_[pos_++];
            switch (c) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // ASCII only; anything above is replaced (the writer
                // never produces non-ASCII escapes).
                out += code < 0x80 ? static_cast<char>(code) : '?';
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool any = false;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+')) {
            ++pos_;
            any = true;
        }
        if (!any)
            fail("expected a value");
        JsonValue v;
        v.kind_ = JsonValue::Kind::Number;
        try {
            v.number_ = std::stod(text_.substr(start, pos_ - start));
        } catch (const std::exception&) {
            fail("bad number");
        }
        return v;
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind_ = JsonValue::Kind::Object;
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipSpace();
            std::string name = parseString();
            skipSpace();
            expect(':');
            v.members_.emplace_back(std::move(name), parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind_ = JsonValue::Kind::Array;
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.elements_.push_back(parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

JsonValue
JsonValue::parse(const std::string& text)
{
    return JsonParser(text).parseDocument();
}

JsonValue
JsonValue::parseFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw PIM_SIM_FAULT(SimFaultKind::Parse, "json: cannot open '",
                            path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

bool
JsonValue::asBool() const
{
    PIM_ASSERT(kind_ == Kind::Bool, "JSON value is not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    PIM_ASSERT(kind_ == Kind::Number, "JSON value is not a number");
    return number_;
}

const std::string&
JsonValue::asString() const
{
    PIM_ASSERT(kind_ == Kind::String, "JSON value is not a string");
    return string_;
}

const std::vector<JsonValue>&
JsonValue::asArray() const
{
    PIM_ASSERT(kind_ == Kind::Array, "JSON value is not an array");
    return elements_;
}

const JsonValue*
JsonValue::find(const std::string& name) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto& [key, value] : members_) {
        if (key == name)
            return &value;
    }
    return nullptr;
}

const JsonValue&
JsonValue::at(const std::string& name) const
{
    const JsonValue* v = find(name);
    PIM_ASSERT(v != nullptr, "JSON object has no member '", name, "'");
    return *v;
}

std::size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return elements_.size();
    if (kind_ == Kind::Object)
        return members_.size();
    return 0;
}

const JsonValue&
JsonValue::at(std::size_t index) const
{
    PIM_ASSERT(kind_ == Kind::Array, "JSON value is not an array");
    PIM_ASSERT(index < elements_.size(), "JSON array index out of range");
    return elements_[index];
}

const JsonValue*
JsonValue::findPath(const std::string& path) const
{
    const JsonValue* node = this;
    std::size_t start = 0;
    while (start <= path.size()) {
        const std::size_t dot = path.find('.', start);
        const std::string seg =
            path.substr(start, dot == std::string::npos ? std::string::npos
                                                        : dot - start);
        if (!seg.empty()) {
            if (node->isArray()) {
                std::size_t index = 0;
                try {
                    index = std::stoul(seg);
                } catch (const std::exception&) {
                    return nullptr;
                }
                if (index >= node->elements_.size())
                    return nullptr;
                node = &node->elements_[index];
            } else {
                node = node->find(seg);
                if (node == nullptr)
                    return nullptr;
            }
        }
        if (dot == std::string::npos)
            break;
        start = dot + 1;
    }
    return node;
}

} // namespace pim
