/**
 * @file
 * Multi-word PE set (docs/ARCHITECTURE.md).
 *
 * A dynamically sized bitset over PE ids, used wherever the machine
 * reasons about "which PEs" — the residency filter's per-block copy and
 * lock masks, test ground truth, and introspection. One 64-bit word
 * covers the paper's whole design space; the multi-word form is what
 * lets the exact snoop filter scale past 64 PEs without degrading to
 * broadcast.
 *
 * Iteration is the same ctz walk the bus uses on raw mask words:
 * ascending PE order, one count-trailing-zeros per set bit, so walking
 * a sparse 1024-PE set costs its population, not its width.
 */

#ifndef PIMCACHE_COMMON_PE_BITSET_H_
#define PIMCACHE_COMMON_PE_BITSET_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace pim {

/** Dynamically sized set of PE ids (bit i of word w = PE w*64+i). */
class PeBitset
{
  public:
    PeBitset() = default;

    /** An empty set sized for @p num_words mask words. */
    explicit PeBitset(std::uint32_t num_words) : words_(num_words, 0) {}

    /** Adopt @p count raw mask words (word 0 = PEs 0..63). */
    static PeBitset
    fromWords(const std::uint64_t* words, std::uint32_t count)
    {
        PeBitset set;
        set.words_.assign(words, words + count);
        return set;
    }

    /** Add @p pe (the set grows to cover it). */
    void
    set(PeId pe)
    {
        const std::size_t word = pe >> 6;
        if (word >= words_.size())
            words_.resize(word + 1, 0);
        words_[word] |= 1ull << (pe & 63);
    }

    /** Remove @p pe (no-op when beyond the set's width). */
    void
    clear(PeId pe)
    {
        const std::size_t word = pe >> 6;
        if (word < words_.size())
            words_[word] &= ~(1ull << (pe & 63));
    }

    /** True if @p pe is in the set. */
    bool
    test(PeId pe) const
    {
        const std::size_t word = pe >> 6;
        return word < words_.size() &&
               (words_[word] & (1ull << (pe & 63))) != 0;
    }

    /** True if any PE is in the set. */
    bool
    any() const
    {
        for (std::uint64_t word : words_) {
            if (word != 0)
                return true;
        }
        return false;
    }

    bool none() const { return !any(); }

    /** Number of PEs in the set. */
    std::uint32_t
    count() const
    {
        std::uint32_t total = 0;
        for (std::uint64_t word : words_)
            total += static_cast<std::uint32_t>(__builtin_popcountll(word));
        return total;
    }

    /** Mask words held (trailing zero words are not trimmed). */
    std::uint32_t
    words() const
    {
        return static_cast<std::uint32_t>(words_.size());
    }

    /** Raw mask word @p index (zero beyond the held words). */
    std::uint64_t
    word(std::uint32_t index) const
    {
        return index < words_.size() ? words_[index] : 0;
    }

    /** Call @p fn(PeId) for every member in ascending PE order. */
    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t mask = words_[w];
            while (mask != 0) {
                fn(static_cast<PeId>(
                    (w << 6) + __builtin_ctzll(mask)));
                mask &= mask - 1;
            }
        }
    }

    /** Set equality ignores width: trailing zero words do not count. */
    bool
    operator==(const PeBitset& other) const
    {
        const std::size_t n = words_.size() > other.words_.size()
                                  ? words_.size()
                                  : other.words_.size();
        for (std::size_t w = 0; w < n; ++w) {
            if (word(static_cast<std::uint32_t>(w)) !=
                other.word(static_cast<std::uint32_t>(w)))
                return false;
        }
        return true;
    }

    bool operator!=(const PeBitset& other) const { return !(*this == other); }

    /** Compare against a single-word mask (PEs 0..63 only). */
    bool
    operator==(std::uint64_t mask) const
    {
        if (word(0) != mask)
            return false;
        for (std::size_t w = 1; w < words_.size(); ++w) {
            if (words_[w] != 0)
                return false;
        }
        return true;
    }

    bool operator!=(std::uint64_t mask) const { return !(*this == mask); }

  private:
    std::vector<std::uint64_t> words_;
};

} // namespace pim

#endif // PIMCACHE_COMMON_PE_BITSET_H_
