/**
 * @file
 * Benchmark runner: executes one of the four KL1 benchmarks on a given
 * machine configuration and collects every statistic the paper's tables
 * and figures report.
 */

#ifndef PIMCACHE_BENCH_KL1_WORKLOAD_H_
#define PIMCACHE_BENCH_KL1_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "bench_kl1/programs.h"
#include "kl1/emulator.h"

namespace pim::kl1::bench {

/** Everything measured in one benchmark run. */
struct BenchResult {
    std::string name;
    std::string query;
    std::string answer;       ///< Binding of R.
    std::string expected;     ///< Host-side mirror computation.
    RunStats run;
    RefStats refs;
    BusStats bus;
    CacheStats cache;
    std::uint32_t numPes = 0;
    std::uint64_t sourceLines = 0;
};

/**
 * The paper's base machine: 8 PEs, four-Kword four-way set-associative
 * caches with four-word blocks, one-word bus, eight-cycle memory.
 */
Kl1Config paperConfig(std::uint32_t num_pes = 8,
                      OptPolicy policy = OptPolicy::all());

/** Run @p bench at @p scale on @p config and collect the metrics. */
BenchResult runBenchmark(const BenchProgram& bench, std::uint32_t scale,
                         const Kl1Config& config);

/** Scale taken from --scale or the REPRO_SCALE environment variable. */
std::uint32_t defaultScale();

/** PE count from --pes or the REPRO_PES environment variable. */
std::uint32_t defaultPes();

} // namespace pim::kl1::bench

#endif // PIMCACHE_BENCH_KL1_WORKLOAD_H_
