/**
 * @file
 * The four KL1 benchmark programs of the paper's evaluation (Table 1),
 * synthesized in pure FGHC (see DESIGN.md Section 2 for the
 * substitutions):
 *
 *  - Tri: triangle (15-hole peg solitaire) exhaustive search — a wide,
 *    irregular search tree (the paper: height 12, branch factor 36)
 *    that stresses on-demand load balancing.
 *  - Semi: semigroup closure under x*y+1 mod M with a stream-merge
 *    manager — read-mostly membership scans over a small working set and
 *    very many suspensions.
 *  - Puzzle: exhaustive N-queens placement counting — dynamic structure
 *    creation (fresh occupancy lists per node), heap-write heavy.
 *  - Pascal: Pascal's-triangle rows as a pipeline of stream processes —
 *    producer/consumer chains with frequent suspension.
 */

#ifndef PIMCACHE_BENCH_KL1_PROGRAMS_H_
#define PIMCACHE_BENCH_KL1_PROGRAMS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pim::kl1::bench {

/** One benchmark: source text plus a scale-dependent query. */
struct BenchProgram {
    std::string name;   ///< "Tri", "Semi", "Puzzle", "Pascal".
    std::string source; ///< FGHC program text.
    /** Query for a given scale (1 = bench default, larger = longer). */
    std::string (*query)(std::uint32_t scale);
    /** Expected binding of R at the given scale (empty = unchecked). */
    std::string (*expected)(std::uint32_t scale);
};

/** FGHC source of the Tri benchmark (move table generated). */
std::string triSource();

/** FGHC source of the Semi benchmark. */
std::string semiSource();

/** FGHC source of the Puzzle benchmark. */
std::string puzzleSource();

/** FGHC source of the Pascal benchmark. */
std::string pascalSource();

/** All four benchmarks, in the paper's order. */
const std::vector<BenchProgram>& allBenchmarks();

/** Find a benchmark by (case-sensitive) name; fatal if unknown. */
const BenchProgram& benchmarkByName(const std::string& name);

} // namespace pim::kl1::bench

#endif // PIMCACHE_BENCH_KL1_PROGRAMS_H_
