#include "bench_kl1/workload.h"

#include "common/options.h"
#include "common/xassert.h"
#include "kl1/compiler.h"
#include "kl1/parser.h"

namespace pim::kl1::bench {

Kl1Config
paperConfig(std::uint32_t num_pes, OptPolicy policy)
{
    Kl1Config config;
    config.numPes = num_pes;
    config.cache.geometry = {4, 4, 256}; // four Kwords
    config.cache.lockEntries = 2;
    config.timing = BusTiming{};         // 1-word bus, 8-cycle memory
    config.policy = policy;
    config.layout.instrWords = 1 << 16;
    config.layout.heapWordsPerPe = 1 << 23;
    config.layout.goalWordsPerPe = 1 << 19;
    config.layout.suspWordsPerPe = 1 << 17;
    config.layout.commWordsPerPe = 1 << 12;
    config.maxSteps = 4'000'000'000ull;
    return config;
}

BenchResult
runBenchmark(const BenchProgram& bench, std::uint32_t scale,
             const Kl1Config& config)
{
    BenchResult result;
    result.name = bench.name;
    result.query = bench.query(scale);
    result.expected = bench.expected(scale);
    result.numPes = config.numPes;
    for (char c : bench.source)
        result.sourceLines += c == '\n';

    Module module = compileProgram(parseProgram(bench.source));
    Emulator emu(std::move(module), config);
    result.run = emu.run(result.query);
    for (const auto& [name, value] : emu.queryBindings()) {
        if (name == "R")
            result.answer = value;
    }
    if (!result.expected.empty() && result.answer != result.expected) {
        PIM_FATAL("benchmark ", bench.name, " computed ", result.answer,
                  " but the host-side mirror expected ", result.expected);
    }
    result.refs = emu.system().refStats();
    result.bus = emu.system().bus().stats();
    result.cache = emu.system().totalCacheStats();
    return result;
}

std::uint32_t
defaultScale()
{
    return static_cast<std::uint32_t>(
        std::max<std::int64_t>(1, envInt("REPRO_SCALE", 2)));
}

std::uint32_t
defaultPes()
{
    return static_cast<std::uint32_t>(
        std::max<std::int64_t>(1, envInt("REPRO_PES", 8)));
}

} // namespace pim::kl1::bench
