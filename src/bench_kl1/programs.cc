#include "bench_kl1/programs.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <set>
#include <sstream>
#include <vector>

#include "common/xassert.h"

namespace pim::kl1::bench {

namespace {

// ------------------------------------------------------------------ Tri --

/** Jump triples (from, over, to) of 15-hole triangle peg solitaire. */
std::vector<std::array<int, 3>>
triMoves()
{
    auto valid = [](int r, int i) { return r >= 0 && r <= 4 && i >= 0 &&
                                           i <= r; };
    auto pos = [](int r, int i) { return r * (r + 1) / 2 + i; };
    static const int kDirs[6][2] = {{1, 0},  {1, 1},  {0, 1},
                                    {-1, 0}, {-1, -1}, {0, -1}};
    std::vector<std::array<int, 3>> moves;
    for (int r = 0; r <= 4; ++r) {
        for (int i = 0; i <= r; ++i) {
            for (const auto& dir : kDirs) {
                const int rb = r + dir[0];
                const int ib = i + dir[1];
                const int rc = r + 2 * dir[0];
                const int ic = i + 2 * dir[1];
                if (valid(rb, ib) && valid(rc, ic))
                    moves.push_back({pos(r, i), pos(rb, ib), pos(rc, ic)});
            }
        }
    }
    PIM_ASSERT(moves.size() == 36, "triangle move table must have 36 "
                                   "entries, got ", moves.size());
    return moves;
}

/** Initial board: all 15 pegs except position 4 (a middle hole). */
constexpr std::int64_t kTriBoard = 32767 - 16;

std::uint32_t
triDepth(std::uint32_t scale)
{
    return std::min<std::uint32_t>(4 + scale, 13);
}

std::string
triQuery(std::uint32_t scale)
{
    std::ostringstream os;
    os << "tri(" << kTriBoard << ", " << triDepth(scale) << ", R).";
    return os.str();
}

/** Host-side mirror of the search: number of legal move sequences of
 *  exactly the given depth (dead ends count zero). */
std::int64_t
triCount(std::int64_t board, int depth,
         const std::vector<std::array<int, 3>>& moves)
{
    if (depth == 0)
        return 1;
    std::int64_t total = 0;
    for (const auto& move : moves) {
        const std::int64_t pa = 1ll << move[0];
        const std::int64_t pb = 1ll << move[1];
        const std::int64_t pc = 1ll << move[2];
        if ((board & pa) && (board & pb) && !(board & pc))
            total += triCount(board - pa - pb + pc, depth - 1, moves);
    }
    return total;
}

std::string
triExpected(std::uint32_t scale)
{
    return std::to_string(
        triCount(kTriBoard, static_cast<int>(triDepth(scale)),
                 triMoves()));
}

// ----------------------------------------------------------------- Semi --

std::uint32_t
semiModulus(std::uint32_t scale)
{
    // Moduli chosen so the closure (seed 2 under x*y+x mod M) grows
    // with scale — closure sizes 23, 46, 74, 115, 161, 199, 251, 391,
    // 529, 713; cost is roughly cubic in the closure size.
    static const std::uint32_t kModuli[] = {23, 69, 111, 115, 161,
                                            199, 251, 391, 529, 713};
    const std::uint32_t index =
        scale == 0 ? 0 : std::min<std::uint32_t>(scale - 1, 9);
    return kModuli[index];
}

std::string
semiQuery(std::uint32_t scale)
{
    std::ostringstream os;
    os << "semi(" << semiModulus(scale) << ", 2, R).";
    return os.str();
}

std::string
semiExpected(std::uint32_t scale)
{
    // Host-side closure of {2} under the non-commutative x@y = x*y+x mod M.
    const std::uint64_t m = semiModulus(scale);
    std::set<std::uint64_t> closed;
    std::vector<std::uint64_t> todo{2 % m};
    closed.insert(2 % m);
    while (!todo.empty()) {
        const std::uint64_t x = todo.back();
        todo.pop_back();
        std::vector<std::uint64_t> snapshot(closed.begin(), closed.end());
        for (std::uint64_t y : snapshot) {
            for (std::uint64_t p : {(x * y + x) % m, (y * x + y) % m}) {
                if (closed.insert(p).second)
                    todo.push_back(p);
            }
        }
    }
    return std::to_string(closed.size());
}

// --------------------------------------------------------------- Puzzle --

constexpr int kPuzzleWidth = 4;

std::uint32_t
puzzleHeight(std::uint32_t scale)
{
    return std::min<std::uint32_t>(4 + scale, 12);
}

std::string
puzzleQuery(std::uint32_t scale)
{
    return "puzzle(" + std::to_string(kPuzzleWidth) + ", " +
           std::to_string(puzzleHeight(scale)) + ", R).";
}

/** Host mirror: domino tilings of a W x H board, first-empty search. */
std::int64_t
dominoTilings(int width, int size, std::uint64_t occupied)
{
    int pos = 0;
    while (pos < size && (occupied & (1ull << pos)))
        ++pos;
    if (pos == size)
        return 1;
    std::int64_t total = 0;
    // Horizontal: pos and pos+1 on the same row.
    if (pos % width < width - 1 && !(occupied & (1ull << (pos + 1)))) {
        total += dominoTilings(width, size,
                               occupied | (1ull << pos) |
                                   (1ull << (pos + 1)));
    }
    // Vertical: pos and pos+width.
    if (pos + width < size && !(occupied & (1ull << (pos + width)))) {
        total += dominoTilings(width, size,
                               occupied | (1ull << pos) |
                                   (1ull << (pos + width)));
    }
    return total;
}

std::string
puzzleExpected(std::uint32_t scale)
{
    const int size =
        kPuzzleWidth * static_cast<int>(puzzleHeight(scale));
    return std::to_string(dominoTilings(kPuzzleWidth, size, 0));
}

// --------------------------------------------------------------- Pascal --

constexpr std::int64_t kPascalMod = 1000003;

std::uint32_t
pascalRows(std::uint32_t scale)
{
    // Cost grows a bit faster than quadratically in the row count
    // (bignum digits lengthen); 35 rows per scale step keeps Pascal
    // comparable to the other three benchmarks.
    return 50 * scale;
}

std::string
pascalQuery(std::uint32_t scale)
{
    return "pascal(" + std::to_string(pascalRows(scale)) + ", R).";
}

std::string
pascalExpected(std::uint32_t scale)
{
    // Sum of row N of Pascal's triangle is 2^N (mod kPascalMod).
    std::int64_t value = 1;
    for (std::uint32_t i = 0; i < pascalRows(scale); ++i)
        value = value * 2 % kPascalMod;
    return std::to_string(value);
}

} // namespace

std::string
triSource()
{
    std::ostringstream os;
    os << "% Tri: exhaustive triangle (peg solitaire) search.\n"
          "% tri(Board, Depth, Count): count legal move sequences of\n"
          "% exactly Depth jumps from the bitboard Board.\n"
          "tri(B, D, C) :- true | solve(B, D, C).\n"
          "solve(_, 0, C) :- true | C = 1.\n"
          "solve(B, D, C) :- D > 0 | lsum(Cs, 0, C), loop(B, D, 0, Cs).\n"
          "loop(_, _, 36, Cs) :- true | Cs = [].\n"
          "loop(B, D, M, Cs) :- M < 36 | Cs = [C|Cs1],\n"
          "    try_move(B, D, M, C), M1 := M + 1, loop(B, D, M1, Cs1).\n"
          "lsum([], A, R) :- true | R = A.\n"
          "lsum([X|Xs], A, R) :- integer(X) | A1 := A + X,\n"
          "    lsum(Xs, A1, R).\n"
          "try(B, D, Pa, Pb, Pc, C) :- B // Pa mod 2 =:= 1,\n"
          "    B // Pb mod 2 =:= 1, B // Pc mod 2 =:= 0 |\n"
          "    NB := B - Pa - Pb + Pc, D1 := D - 1, solve(NB, D1, C).\n"
          "try(_, _, _, _, _, C) :- otherwise | C = 0.\n";
    const auto moves = triMoves();
    for (std::size_t m = 0; m < moves.size(); ++m) {
        os << "try_move(B, D, " << m << ", C) :- true | try(B, D, "
           << (1ll << moves[m][0]) << ", " << (1ll << moves[m][1]) << ", "
           << (1ll << moves[m][2]) << ", C).\n";
    }
    return os.str();
}

std::string
semiSource()
{
    // A chain of filter processes, one per accepted element, dedups the
    // candidate stream in pipeline parallelism; product rows run as
    // independent processes and a merge tree feeds the chain head.
    // Duplicates are replaced by the atom `dup` (not dropped) so the
    // sink can count in-flight candidates exactly and close the feedback
    // loop when the count reaches zero — the classic short-circuit
    // termination of concurrent logic programs.
    return
        "% Semi: closure of {Seed} under the non-commutative operation\n"
        "% x@y = x*y+x (mod M), computed by a parallel filter chain.\n"
        "semi(M, Seed, C) :- true |\n"
        "    row(Seed, [Seed], M, P0),\n"
        "    mergeall([P0|NewPs], Head),\n"
        "    filt(Seed, Head, In),\n"
        "    sink(In, [Seed], 1, M, C, NewPs, 2).\n"
        "% sink(In, Set, N, M, Count, NewProductStreams, InFlight)\n"
        "sink(_, _, N, _, C, NewPs, 0) :- true | C = N, NewPs = [].\n"
        "sink([dup|In], Set, N, M, C, NewPs, K) :- K > 0 |\n"
        "    K1 := K - 1, sink(In, Set, N, M, C, NewPs, K1).\n"
        "sink([X|In], Set, N, M, C, NewPs, K) :- integer(X), K > 0 |\n"
        "    N1 := N + 1, K1 := K + 2 * N1 - 1,\n"
        "    row(X, [X|Set], M, P), NewPs = [P|NewPs1],\n"
        "    filt(X, In, Out),\n"
        "    sink(Out, [X|Set], N1, M, C, NewPs1, K1).\n"
        "% filt(E, In, Out): replace occurrences of E by dup.\n"
        "filt(_, [], Out) :- true | Out = [].\n"
        "filt(E, [dup|In], Out) :- true | Out = [dup|Out1],\n"
        "    filt(E, In, Out1).\n"
        "filt(E, [X|In], Out) :- integer(X), X =:= E |\n"
        "    Out = [dup|Out1], filt(E, In, Out1).\n"
        "filt(E, [X|In], Out) :- integer(X), X =\\= E |\n"
        "    Out = [X|Out1], filt(E, In, Out1).\n"
        "row(_, [], _, Out) :- true | Out = [].\n"
        "row(X, [Y|T], M, Out) :- true |\n"
        "    P1 := (X * Y + X) mod M, P2 := (Y * X + Y) mod M,\n"
        "    Out = [P1, P2|Out1], row(X, T, M, Out1).\n"
        "merge([], B, C) :- true | C = B.\n"
        "merge(A, [], C) :- true | C = A.\n"
        "merge([X|A], B, C) :- true | C = [X|C1], merge(A, B, C1).\n"
        "merge(A, [X|B], C) :- true | C = [X|C1], merge(A, B, C1).\n"
        "mergeall([], Out) :- true | Out = [].\n"
        "mergeall([S|Ss], Out) :- true | merge(S, Mid, Out),\n"
        "    mergeall(Ss, Mid).\n";
}

std::string
puzzleSource()
{
    // The character of Forest Baskett's Puzzle (exhaustive packing with
    // array state): the board is a KL1 vector, every placement copies it
    // through the pure set_vector_element/4 — large dynamic structures
    // and heavy heap writes, exactly the paper's Puzzle profile.
    return
        "% Puzzle: count domino tilings of a W x H board held in a\n"
        "% vector; each placement copies the board (single assignment).\n"
        "puzzle(W, H, C) :- true | S := W * H,\n"
        "    new_vector(S, 0, B), solve(B, W, S, C).\n"
        "solve(B, W, S, C) :- true | scan(B, 0, S, Pos),\n"
        "    branch(Pos, B, W, S, C).\n"
        "% scan: index of the first empty cell, or -1 when full.\n"
        "scan(_, S, S, Pos) :- true | Pos = -1.\n"
        "scan(B, I, S, Pos) :- I < S | vector_element(B, I, X),\n"
        "    scan2(X, B, I, S, Pos).\n"
        "scan2(1, B, I, S, Pos) :- true | I1 := I + 1,\n"
        "    scan(B, I1, S, Pos).\n"
        "scan2(0, _, I, _, Pos) :- true | Pos = I.\n"
        "branch(-1, _, _, _, C) :- true | C = 1.\n"
        "branch(P, B, W, S, C) :- P >= 0 |\n"
        "    tryh(P, B, W, S, C1), tryv(P, B, W, S, C2),\n"
        "    add2(C1, C2, C).\n"
        "add2(A, B, C) :- integer(A), integer(B) | C := A + B.\n"
        "% Horizontal domino at P, P+1 (same row).\n"
        "tryh(P, B, W, S, C) :- P mod W < W - 1 | P1 := P + 1,\n"
        "    vector_element(B, P1, X), place(X, P, P1, B, W, S, C).\n"
        "tryh(P, _, W, _, C) :- P mod W >= W - 1 | C = 0.\n"
        "% Vertical domino at P, P+W.\n"
        "tryv(P, B, W, S, C) :- P + W < S | PW := P + W,\n"
        "    vector_element(B, PW, X), place(X, P, PW, B, W, S, C).\n"
        "tryv(P, _, W, S, C) :- P + W >= S | C = 0.\n"
        "place(1, _, _, _, _, _, C) :- true | C = 0.\n"
        "place(0, P, Q, B, W, S, C) :- true |\n"
        "    set_vector_element(B, P, 1, B1),\n"
        "    set_vector_element(B1, Q, 1, B2),\n"
        "    solve(B2, W, S, C).\n";
}

std::string
pascalSource()
{
    // Bignums are little-endian base-10000 digit lists, as in ICOT's
    // original list-based bignum Pascal. Each pair-sum of a row is an
    // independent badd/4 process, so rows exhibit wide AND-parallelism
    // while consuming the previous row's bignums as streams.
    return
        "% Pascal: rows of Pascal's triangle with list bignums; row i+1\n"
        "% is computed by parallel bignum adders consuming row i.\n"
        "pascal(N, C) :- true | rows(0, N, [[1]], Last),\n"
        "    csuml(Last, 0, C).\n"
        "rows(N, N, Row, Last) :- true | Last = Row.\n"
        "rows(I, N, Row, Last) :- I < N | nextrow(Row, Row1),\n"
        "    I1 := I + 1, rows(I1, N, Row1, Last).\n"
        "nextrow(Row, Out) :- true | Out = [[1]|T], addp(Row, T).\n"
        "addp([A], T) :- true | T = [A].\n"
        "addp([A, B|R], T) :- true | T = [S|T1], badd(A, B, 0, S),\n"
        "    addp([B|R], T1).\n"
        "% badd(A, B, Carry, Sum): little-endian base-10000 addition.\n"
        "badd([], [], 0, S) :- true | S = [].\n"
        "badd([], [], Cy, S) :- Cy > 0 | S = [Cy].\n"
        "badd([D|T], [], Cy, S) :- true | X := D + Cy,\n"
        "    Lo := X mod 10000, Hi := X // 10000, S = [Lo|S1],\n"
        "    badd(T, [], Hi, S1).\n"
        "badd([], [D|T], Cy, S) :- true | X := D + Cy,\n"
        "    Lo := X mod 10000, Hi := X // 10000, S = [Lo|S1],\n"
        "    badd([], T, Hi, S1).\n"
        "badd([DA|TA], [DB|TB], Cy, S) :- true | X := DA + DB + Cy,\n"
        "    Lo := X mod 10000, Hi := X // 10000, S = [Lo|S1],\n"
        "    badd(TA, TB, Hi, S1).\n"
        "% csuml: sum the values (mod 1000003) of a list of bignums.\n"
        "csuml([], A, C) :- true | C = A.\n"
        "csuml([B|Bs], A, C) :- true | bval(B, 1, 0, V),\n"
        "    csacc(V, Bs, A, C).\n"
        "csacc(V, Bs, A, C) :- integer(V) | A1 := (A + V) mod 1000003,\n"
        "    csuml(Bs, A1, C).\n"
        "bval([], _, Acc, V) :- true | V = Acc.\n"
        "bval([D|T], Mult, Acc, V) :- integer(D) |\n"
        "    Acc1 := (Acc + D * Mult) mod 1000003,\n"
        "    Mult1 := Mult * 10000 mod 1000003, bval(T, Mult1, Acc1, V).\n";
}

const std::vector<BenchProgram>&
allBenchmarks()
{
    static const std::vector<BenchProgram> kBenchmarks = {
        {"Tri", triSource(), &triQuery, &triExpected},
        {"Semi", semiSource(), &semiQuery, &semiExpected},
        {"Puzzle", puzzleSource(), &puzzleQuery, &puzzleExpected},
        {"Pascal", pascalSource(), &pascalQuery, &pascalExpected},
    };
    return kBenchmarks;
}

const BenchProgram&
benchmarkByName(const std::string& name)
{
    for (const BenchProgram& bench : allBenchmarks()) {
        if (bench.name == name)
            return bench;
    }
    PIM_FATAL("unknown benchmark: ", name,
              " (expected Tri, Semi, Puzzle or Pascal)");
}

} // namespace pim::kl1::bench
