/**
 * @file
 * Exhaustive state-space exploration of the conformance harness.
 *
 * Breadth-first search over canonical protocol states: from each
 * reached state, every enabled command is tried; the successor's
 * canonical snapshot (ConformanceHarness::snapshot) merges runs that
 * arrive at the same protocol situation along different schedules, so
 * the search terminates even though the raw interleaving tree is
 * exponential. Every edge executes the harness's full cross-check
 * battery; the first divergence stops the search with the exact command
 * trace that reached it.
 *
 * The System is deliberately not copyable (it owns caches wired to a
 * bus), so successor states are reconstructed by replaying the command
 * prefix on a fresh harness — O(depth) per edge, which small
 * configurations (2-3 PEs, 1-2 blocks) afford easily.
 */

#ifndef PIMCACHE_MODEL_EXPLORER_H_
#define PIMCACHE_MODEL_EXPLORER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/harness.h"

namespace pim {

/** Exploration parameters. */
struct ExploreConfig {
    HarnessConfig harness;
    std::uint32_t depth = 8;          ///< Maximum trace length.
    std::uint64_t maxStates = 500000; ///< Safety cap on distinct states.
};

/** Outcome of one exploration. */
struct ExploreResult {
    std::uint64_t states = 0; ///< Distinct canonical states reached.
    std::uint64_t edges = 0;  ///< Commands executed (with full checks).
    std::uint64_t checks = 0; ///< Cross-check groups run.
    bool truncated = false;   ///< maxStates hit before the depth bound.
    bool divergence = false;
    std::string divergenceMessage;
    std::vector<ProtoCmd> divergenceTrace; ///< Commands reaching it.
};

/** Run the exhaustive search. */
ExploreResult explore(const ExploreConfig& config);

} // namespace pim

#endif // PIMCACHE_MODEL_EXPLORER_H_
