#include "model/harness.h"

#include <algorithm>

#include "cache/state.h"
#include "common/sim_fault.h"
#include "common/xassert.h"
#include "verify/invariants.h"

namespace pim {

namespace {

SystemConfig
makeSystemConfig(const HarnessConfig& config)
{
    SystemConfig sys;
    sys.numPes = config.numPes;
    sys.cache.geometry.blockWords = config.blockWords;
    sys.cache.geometry.ways = config.ways;
    sys.cache.geometry.sets = config.sets;
    sys.cache.lockEntries = config.lockEntries;
    sys.cache.protocol = config.protocol;
    sys.cache.replacement = config.replacement;
    sys.memoryWords =
        std::max<std::uint64_t>(config.spanWords(), config.blockWords);
    sys.snoopFilter = config.snoopFilter;
    sys.cluster.clusterSize = config.clusterSize;
    sys.cluster.hopCycles = config.hopCycles;
    sys.validate();
    return sys;
}

} // namespace

ConformanceHarness::ConformanceHarness(const HarnessConfig& config)
    : config_(config),
      golden_(protocolGoldenTable(config.protocol)),
      ref_(config.numPes, config.blockWords,
           std::max<std::uint64_t>(config.spanWords(), config.blockWords),
           config.lockEntries),
      sys_(makeSystemConfig(config)),
      attribution_(config.numPes, sys_.config().timing, config.blockWords,
                   config.ways * config.sets),
      pending_(config.numPes),
      hasPending_(config.numPes, false)
{
    for (PeId pe = 0; pe < config_.numPes; ++pe)
        sys_.cache(pe).setProtocolMutation(config.mutation);
    sys_.addEventSink(&attribution_);
}

ConformanceHarness::~ConformanceHarness()
{
    // Divergences throw out of step() mid-protocol; waiters the trace
    // never got to retry are expected, not a driver leak.
    sys_.abandonParkedWaiters();
}

bool
ConformanceHarness::lockWaitSafe(const ProtoCmd& cmd) const
{
    if (!ref_.wouldLockWait(cmd.pe, cmd.addr))
        return true;
    const PeId owner = ref_.lockOwnerOnBlock(cmd.addr);
    // Never park on a PE that cannot currently progress: while the owner
    // is itself parked (or was woken but has not retried yet), adding
    // this wait edge could close a busy-wait deadlock cycle — a software
    // bug, not a protocol behavior worth exploring.
    return owner != kNoPe && !sys_.parked(owner) && !hasPending_[owner];
}

bool
ConformanceHarness::enabled(const ProtoCmd& cmd) const
{
    if (cmd.pe >= config_.numPes || cmd.addr >= config_.spanWords())
        return false;
    if (sys_.parked(cmd.pe))
        return false;
    if (hasPending_[cmd.pe]) {
        // A woken PE must retry its parked command before anything else.
        return cmd == pending_[cmd.pe];
    }

    const Addr base = blockBaseOf(cmd.addr);
    switch (cmd.op) {
      case MemOp::UW:
      case MemOp::U:
        return ref_.holdsLock(cmd.pe, cmd.addr);

      case MemOp::LR:
        if (ref_.holdsLock(cmd.pe, cmd.addr))
            return false; // re-locking a held word aborts
        if (ref_.heldCount(cmd.pe) >= config_.lockEntries)
            return false; // directory full aborts
        return lockWaitSafe(cmd);

      case MemOp::DW:
      case MemOp::DWD: {
        const bool boundary =
            cmd.op == MemOp::DWD
                ? cmd.addr == base + config_.blockWords - 1
                : cmd.addr == base;
        if (boundary && !sys_.cache(cmd.pe).present(cmd.addr)) {
            // Allocate-without-fetch bypasses the bus entirely, so the
            // software contract must hold: no other PE may have a copy
            // of, or a lock on, the block.
            const PeId owner = ref_.lockOwnerOnBlock(cmd.addr);
            if (owner != kNoPe && owner != cmd.pe)
                return false;
            for (PeId q = 0; q < config_.numPes; ++q) {
                if (q != cmd.pe && sys_.cache(q).present(cmd.addr))
                    return false;
            }
            return true;
        }
        return lockWaitSafe(cmd); // demotes to a plain W
      }

      default:
        return lockWaitSafe(cmd);
    }
}

std::vector<ProtoCmd>
ConformanceHarness::enabledCommands() const
{
    std::vector<ProtoCmd> out;
    const Addr span = config_.spanWords();
    for (PeId pe = 0; pe < config_.numPes; ++pe) {
        if (sys_.parked(pe))
            continue;
        if (hasPending_[pe]) {
            out.push_back(pending_[pe]);
            continue;
        }
        // Deterministic write values — a small alphabet keyed by (PE,
        // op) keeps the reachable data-state space finite.
        const Word w_val = pe + 1;
        const Word uw_val = config_.numPes + pe + 1;
        const Word dw_val = 2 * config_.numPes + pe + 1;

        std::vector<ProtoCmd> candidates;
        for (Addr addr = 0; addr < span; ++addr) {
            candidates.push_back({pe, MemOp::R, addr, 0});
            candidates.push_back({pe, MemOp::W, addr, w_val});
            candidates.push_back({pe, MemOp::LR, addr, 0});
            candidates.push_back({pe, MemOp::ER, addr, 0});
            candidates.push_back({pe, MemOp::RP, addr, 0});
            candidates.push_back({pe, MemOp::RI, addr, 0});
            candidates.push_back({pe, MemOp::UW, addr, uw_val});
            candidates.push_back({pe, MemOp::U, addr, 0});
        }
        for (Addr base = 0; base < span; base += config_.blockWords) {
            candidates.push_back({pe, MemOp::DW, base, dw_val});
            candidates.push_back(
                {pe, MemOp::DWD, base + config_.blockWords - 1, dw_val});
        }
        for (const ProtoCmd& cmd : candidates) {
            if (enabled(cmd))
                out.push_back(cmd);
        }
    }
    return out;
}

void
ConformanceHarness::step(const ProtoCmd& cmd)
{
    PIM_ASSERT(enabled(cmd), "stepping a disabled conformance command: ",
               cmdToString(cmd));
    const Addr base = blockBaseOf(cmd.addr);
    const Addr span = config_.spanWords();
    const std::uint32_t bw = config_.blockWords;
    const bool last_word = cmd.addr == base + bw - 1;
    const PimCache& own = sys_.cache(cmd.pe);
    const std::string ctx = "step " + cmdToString(cmd);

    // Contract facts from the System's pre-state: does this DW allocate
    // without a fetch, does this ER/RP drop the only dirty copy?
    RefPreFacts pre;
    if (cmd.op == MemOp::DW || cmd.op == MemOp::DWD) {
        const bool boundary =
            cmd.op == MemOp::DWD ? last_word : cmd.addr == base;
        pre.freshAlloc = boundary && !own.present(cmd.addr);
    } else if (cmd.op == MemOp::ER) {
        pre.purgesDirty = own.present(cmd.addr) && last_word &&
                          cacheStateDirty(own.stateOf(cmd.addr));
    } else if (cmd.op == MemOp::RP) {
        if (own.present(cmd.addr)) {
            pre.purgesDirty = cacheStateDirty(own.stateOf(cmd.addr));
        } else {
            for (PeId q = 0; q < config_.numPes; ++q) {
                if (q != cmd.pe &&
                    cacheStateDirty(sys_.cache(q).stateOf(cmd.addr))) {
                    pre.purgesDirty = true;
                }
            }
        }
    }

    // Pre-state for the op-specific checks.
    std::vector<CacheState> pre_state(config_.numPes);
    for (PeId q = 0; q < config_.numPes; ++q)
        pre_state[q] = sys_.cache(q).stateOf(base);
    const BusStats pre_bus = sys_.bus().stats();
    const std::uint64_t pre_swapouts = own.stats().swapOuts;

    // Both machines take the step.
    const RefOutcome golden = ref_.apply(cmd, pre);
    const System::Access access =
        sys_.access(cmd.pe, cmd.op, cmd.addr, Area::Heap, cmd.value);
    checks_ += 1;

    // Divergence 1: lock-wait decisions must agree.
    if (access.lockWait != golden.lockWait) {
        throw PIM_SIM_FAULT(
            SimFaultKind::Protocol, ctx, ": the system ",
            access.lockWait ? "lock-waited" : "completed",
            " but the reference machine says the command must ",
            golden.lockWait ? "lock-wait" : "complete", "; ",
            describeBlockState(sys_, base));
    }
    if (access.lockWait) {
        pending_[cmd.pe] = cmd;
        hasPending_[cmd.pe] = true;
    } else {
        hasPending_[cmd.pe] = false;
        // Divergence 2: a defined read must return the golden value.
        if (golden.checked && memOpReads(cmd.op) &&
            access.data != golden.value) {
            throw PIM_SIM_FAULT(
                SimFaultKind::Corruption, ctx, ": read ", access.data,
                " but the reference value is ", golden.value, "; ",
                describeBlockState(sys_, base));
        }
    }

    // Divergence 3: the shared protocol invariants on every block.
    for (Addr b = 0; b < span; b += bw)
        checkBlockInvariants(sys_, b, ctx);

    // Divergence 4: exact per-pattern bus-cycle accounting.
    checkBusAccounting(pre_bus, sys_.bus().stats(), sys_.config().timing,
                       ctx);

    // Divergence 5: the paper's op-specific claims.
    if (!access.lockWait) {
        const Cycles bus_delta =
            sys_.bus().stats().totalCycles - pre_bus.totalCycles;
        if (cmd.op == MemOp::LR &&
            cacheStateExclusive(pre_state[cmd.pe]) && bus_delta != 0) {
            throw PIM_SIM_FAULT(
                SimFaultKind::Protocol, ctx, ": an LR hitting an "
                "exclusive (EM/EC) copy must cost zero bus cycles but "
                "charged ", bus_delta, "; ",
                describeBlockState(sys_, base));
        }
        if (cmd.op == MemOp::R && pre_state[cmd.pe] == CacheState::INV) {
            PeId holder = kNoPe;
            std::uint32_t holders = 0;
            for (PeId q = 0; q < config_.numPes; ++q) {
                if (q != cmd.pe && pre_state[q] != CacheState::INV) {
                    holders += 1;
                    holder = q;
                }
            }
            if (holders == 0 &&
                own.stateOf(base) != golden_.readMissFromMemory) {
                throw PIM_SIM_FAULT(
                    SimFaultKind::Protocol, ctx, ": a read miss served "
                    "by memory must install ",
                    cacheStateName(golden_.readMissFromMemory), " under ",
                    protocolKindName(golden_.kind), " (got ",
                    cacheStateName(own.stateOf(base)), "); ",
                    describeBlockState(sys_, base));
            }
            if (holders == 1 && cacheStateDirty(pre_state[holder])) {
                if (own.stateOf(base) != golden_.readMissDirtySupplied) {
                    throw PIM_SIM_FAULT(
                        SimFaultKind::Protocol, ctx, ": a read miss "
                        "supplied by the single dirty copy must install ",
                        cacheStateName(golden_.readMissDirtySupplied),
                        " under ", protocolKindName(golden_.kind),
                        " (got ", cacheStateName(own.stateOf(base)),
                        "); ", describeBlockState(sys_, base));
                }
                if (sys_.cache(holder).stateOf(base) !=
                    golden_.dirtySupplierAfterShare) {
                    throw PIM_SIM_FAULT(
                        SimFaultKind::Protocol, ctx, ": the dirty "
                        "supplier must be left in ",
                        cacheStateName(golden_.dirtySupplierAfterShare),
                        " under ", protocolKindName(golden_.kind),
                        " (got ",
                        cacheStateName(sys_.cache(holder).stateOf(base)),
                        "); ", describeBlockState(sys_, base));
                }
                const std::uint64_t mem_writes =
                    sys_.bus().stats().memoryWrites - pre_bus.memoryWrites;
                const std::uint64_t swapouts =
                    own.stats().swapOuts - pre_swapouts;
                if (mem_writes != swapouts + golden_.dirtySupplyMemWrites) {
                    throw PIM_SIM_FAULT(
                        SimFaultKind::Protocol, ctx, ": a dirty "
                        "cache-to-cache supply must add exactly ",
                        golden_.dirtySupplyMemWrites,
                        " memory write(s) under ",
                        protocolKindName(golden_.kind), " but added ",
                        mem_writes - swapouts, "; ",
                        describeBlockState(sys_, base));
                }
            }
        }
        if (cmd.op == MemOp::W &&
            (pre_state[cmd.pe] == CacheState::S ||
             pre_state[cmd.pe] == CacheState::SM)) {
            std::uint32_t pre_holders = 0;
            for (PeId q = 0; q < config_.numPes; ++q) {
                if (q != cmd.pe && pre_state[q] != CacheState::INV)
                    pre_holders += 1;
            }
            const std::uint64_t inv_delta =
                sys_.bus().stats().transByPattern[static_cast<int>(
                    BusPattern::Invalidate)] -
                pre_bus.transByPattern[static_cast<int>(
                    BusPattern::Invalidate)];
            const std::uint64_t upd_delta =
                sys_.bus().stats().transByPattern[static_cast<int>(
                    BusPattern::WordUpdate)] -
                pre_bus.transByPattern[static_cast<int>(
                    BusPattern::WordUpdate)];
            if (golden_.updateOnSharedWrite) {
                // Dragon: one word-update broadcast, no invalidation,
                // sharers survive, writer owns (Sm with sharers, M alone).
                if (upd_delta != 1 || inv_delta != 0) {
                    throw PIM_SIM_FAULT(
                        SimFaultKind::Protocol, ctx, ": a shared-hit "
                        "write under dragon must cost exactly one "
                        "word-update and no invalidation (got ",
                        upd_delta, " update(s), ", inv_delta,
                        " invalidation(s)); ",
                        describeBlockState(sys_, base));
                }
                for (PeId q = 0; q < config_.numPes; ++q) {
                    if (q != cmd.pe && pre_state[q] != CacheState::INV &&
                        sys_.cache(q).stateOf(base) != CacheState::S) {
                        throw PIM_SIM_FAULT(
                            SimFaultKind::Protocol, ctx, ": pe", q,
                            " must survive a dragon shared write as a "
                            "clean sharer (got ",
                            cacheStateName(sys_.cache(q).stateOf(base)),
                            "); ", describeBlockState(sys_, base));
                    }
                }
                const CacheState want = pre_holders > 0 ? CacheState::SM
                                                        : CacheState::EM;
                if (own.stateOf(base) != want) {
                    throw PIM_SIM_FAULT(
                        SimFaultKind::Protocol, ctx, ": a dragon shared "
                        "write must leave the writer in ",
                        cacheStateName(want), " (got ",
                        cacheStateName(own.stateOf(base)), "); ",
                        describeBlockState(sys_, base));
                }
            } else {
                // Invalidation protocols: one I broadcast, remote copies
                // drop, writer lands in EM.
                if (inv_delta != 1 || upd_delta != 0) {
                    throw PIM_SIM_FAULT(
                        SimFaultKind::Protocol, ctx, ": a shared-hit "
                        "write under ", protocolKindName(golden_.kind),
                        " must cost exactly one invalidation (got ",
                        inv_delta, " invalidation(s), ", upd_delta,
                        " update(s)); ", describeBlockState(sys_, base));
                }
                for (PeId q = 0; q < config_.numPes; ++q) {
                    if (q != cmd.pe &&
                        sys_.cache(q).stateOf(base) != CacheState::INV) {
                        throw PIM_SIM_FAULT(
                            SimFaultKind::Protocol, ctx, ": pe", q,
                            " must lose its copy on a remote shared "
                            "write (got ",
                            cacheStateName(sys_.cache(q).stateOf(base)),
                            "); ", describeBlockState(sys_, base));
                    }
                }
                if (own.stateOf(base) != CacheState::EM) {
                    throw PIM_SIM_FAULT(
                        SimFaultKind::Protocol, ctx, ": a shared-hit "
                        "write must leave the writer in EM (got ",
                        cacheStateName(own.stateOf(base)), "); ",
                        describeBlockState(sys_, base));
                }
            }
        }
        if (cmd.op == MemOp::ER && pre_state[cmd.pe] == CacheState::INV &&
            !last_word) {
            for (PeId q = 0; q < config_.numPes; ++q) {
                if (q != cmd.pe &&
                    sys_.cache(q).stateOf(base) != CacheState::INV) {
                    throw PIM_SIM_FAULT(
                        SimFaultKind::Protocol, ctx, ": ER must "
                        "read-invalidate every other copy but pe", q,
                        " still holds the block; ",
                        describeBlockState(sys_, base));
                }
            }
        }
        if ((cmd.op == MemOp::ER && pre_state[cmd.pe] != CacheState::INV &&
             last_word) ||
            cmd.op == MemOp::RP) {
            if (own.stateOf(base) != CacheState::INV) {
                throw PIM_SIM_FAULT(
                    SimFaultKind::Protocol, ctx, ": ",
                    memOpName(cmd.op), " must leave the reader without "
                    "a copy (read-once contract) but it holds ",
                    cacheStateName(own.stateOf(base)), "; ",
                    describeBlockState(sys_, base));
            }
        }
    }

    // Divergence 6: every parked PE must be waiting on a lock some other
    // PE actually holds (a parked PE with no lock to wait on sleeps
    // forever — the lost-UL failure mode).
    for (PeId q = 0; q < config_.numPes; ++q) {
        if (!sys_.parked(q))
            continue;
        if (!hasPending_[q]) {
            throw PIM_SIM_FAULT(
                SimFaultKind::Protocol, ctx, ": pe", q,
                " is parked without a pending retry");
        }
        const Addr block = sys_.parkedOnBlock(q);
        const PeId owner = ref_.lockOwnerOnBlock(block);
        if (owner == kNoPe || owner == q) {
            throw PIM_SIM_FAULT(
                SimFaultKind::Protocol, ctx, ": pe", q,
                " is parked on block ", block,
                " but no other PE holds a lock there — the UL broadcast "
                "that should have woken it never arrived; ",
                describeBlockState(sys_, block));
        }
    }

    // Divergence 7: full differential sweep — the coherent value of
    // every defined word must equal the golden memory.
    for (Addr addr = 0; addr < span; ++addr) {
        if (!ref_.isDefined(addr))
            continue;
        Word value = 0;
        bool found = false;
        for (PeId q = 0; q < config_.numPes && !found; ++q) {
            if (sys_.cache(q).stateOf(addr) != CacheState::INV) {
                value = sys_.cache(q).loadValue(addr);
                found = true;
            }
        }
        if (!found)
            value = sys_.memory().read(addr);
        if (value != ref_.valueOf(addr)) {
            throw PIM_SIM_FAULT(
                SimFaultKind::Corruption, ctx, ": word ", addr,
                " holds ", value, " but the reference memory says ",
                ref_.valueOf(addr), "; ",
                describeBlockState(sys_, blockBaseOf(addr)));
        }
    }

    // Divergence 8: the attribution engine's bucket sums must mirror
    // the bus statistics exactly. Last on purpose: a seeded protocol
    // mutation should surface as the protocol divergence it causes
    // (checks 1-7), not as an attribution artifact.
    const std::string attr_error = attribution_.crossCheck(sys_.bus().stats());
    if (!attr_error.empty()) {
        throw PIM_SIM_FAULT(SimFaultKind::Protocol, ctx,
                            ": attribution cross-check: ", attr_error);
    }
}

void
ConformanceHarness::replay(const std::vector<ProtoCmd>& trace)
{
    for (const ProtoCmd& cmd : trace)
        step(cmd);
}

std::size_t
ConformanceHarness::replayLenient(const std::vector<ProtoCmd>& trace)
{
    std::size_t executed = 0;
    for (const ProtoCmd& cmd : trace) {
        if (!enabled(cmd))
            continue;
        step(cmd);
        executed += 1;
    }
    return executed;
}

std::vector<std::uint64_t>
ConformanceHarness::snapshot() const
{
    std::vector<std::uint64_t> out =
        sys_.protocolSnapshot(0, config_.spanWords());
    for (PeId pe = 0; pe < config_.numPes; ++pe) {
        if (!hasPending_[pe]) {
            out.push_back(0);
            continue;
        }
        out.push_back(1);
        out.push_back(static_cast<std::uint64_t>(pending_[pe].op));
        out.push_back(pending_[pe].addr);
        out.push_back(pending_[pe].value);
    }
    ref_.snapshotState(out);
    return out;
}

std::uint64_t
ConformanceHarness::snapshotHash() const
{
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::uint64_t v : snapshot()) {
        std::uint64_t z =
            h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        h = z ^ (z >> 31);
    }
    return h;
}

bool
ConformanceHarness::anyParked() const
{
    for (PeId pe = 0; pe < config_.numPes; ++pe) {
        if (sys_.parked(pe))
            return true;
    }
    return false;
}

} // namespace pim
