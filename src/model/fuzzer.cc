#include "model/fuzzer.h"

#include <algorithm>

#include "common/rng.h"
#include "common/sim_fault.h"

namespace pim {

namespace {

/** splitmix64 finalizer — derives independent per-trace seeds. */
std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    std::uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr const char* kDeadlockMessage =
    "deadlock: no command is enabled but PEs are parked";

/**
 * Does @p trace still reproduce a divergence under lenient replay?
 * (Commands orphaned by the removal of their prerequisites skip.)
 */
bool
diverges(const HarnessConfig& config, const std::vector<ProtoCmd>& trace,
         std::string* message_out)
{
    ConformanceHarness harness(config);
    try {
        harness.replayLenient(trace);
    } catch (const SimFault& fault) {
        *message_out = fault.message();
        return true;
    }
    if (harness.enabledCommands().empty() && harness.anyParked()) {
        *message_out = kDeadlockMessage;
        return true;
    }
    return false;
}

} // namespace

std::vector<ProtoCmd>
shrinkTrace(const HarnessConfig& harness_config,
            const std::vector<ProtoCmd>& trace, std::string* message_out)
{
    std::vector<ProtoCmd> current = trace;
    std::string message;

    // Delta-debugging: try to delete chunks, halving the chunk size
    // down to single commands; restart a pass after every successful
    // deletion so earlier chunks are reconsidered.
    for (std::size_t chunk = std::max<std::size_t>(current.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
        bool removed = true;
        while (removed) {
            removed = false;
            for (std::size_t i = 0; i + chunk <= current.size();) {
                std::vector<ProtoCmd> candidate;
                candidate.reserve(current.size() - chunk);
                candidate.insert(candidate.end(), current.begin(),
                                 current.begin() + i);
                candidate.insert(candidate.end(),
                                 current.begin() + i + chunk,
                                 current.end());
                if (diverges(harness_config, candidate, &message)) {
                    current = std::move(candidate);
                    removed = true;
                    // Stay at the same index: the next chunk slid here.
                } else {
                    i += 1;
                }
            }
        }
        if (chunk == 1)
            break;
    }

    // The survivors still diverge; report their divergence message.
    if (message_out != nullptr) {
        if (message.empty())
            diverges(harness_config, current, &message);
        *message_out = message;
    }
    return current;
}

FuzzResult
fuzz(const FuzzConfig& config)
{
    FuzzResult result;
    for (std::uint32_t t = 0; t < config.traces; ++t) {
        const std::uint64_t trace_seed = mix(config.seed, t);
        Rng rng(trace_seed);
        ConformanceHarness harness(config.harness);
        std::vector<ProtoCmd> trace;
        result.tracesRun += 1;

        for (std::uint32_t i = 0; i < config.len; ++i) {
            const std::vector<ProtoCmd> commands =
                harness.enabledCommands();
            if (commands.empty()) {
                if (harness.anyParked()) {
                    result.divergence = true;
                    result.divergenceMessage = kDeadlockMessage;
                }
                break;
            }
            ProtoCmd cmd = commands[rng.below(commands.size())];
            if (memOpWrites(cmd.op)) {
                // Randomize the written value when the command allows it
                // (a forced retry must replay verbatim and stays put).
                ProtoCmd alt = cmd;
                alt.value = rng.below(16) + 1;
                if (harness.enabled(alt))
                    cmd = alt;
            }
            trace.push_back(cmd);
            result.commandsRun += 1;
            try {
                harness.step(cmd);
            } catch (const SimFault& fault) {
                result.divergence = true;
                result.divergenceMessage = fault.message();
            }
            if (result.divergence)
                break;
        }

        if (result.divergence) {
            result.failingSeed = trace_seed;
            result.trace = trace;
            if (config.shrink) {
                result.shrunk = shrinkTrace(config.harness, trace,
                                            &result.shrunkMessage);
            } else {
                result.shrunk = trace;
                result.shrunkMessage = result.divergenceMessage;
            }
            return result;
        }
    }
    return result;
}

} // namespace pim
