#include "model/ref_machine.h"

#include "common/xassert.h"

namespace pim {

RefMachine::RefMachine(std::uint32_t num_pes, std::uint32_t block_words,
                       std::uint64_t memory_words,
                       std::uint32_t lock_entries)
    : numPes_(num_pes),
      blockWords_(block_words),
      lockEntries_(lock_entries),
      memory_(memory_words, 0),
      defined_(memory_words, true),
      ledger_(memory_words, kNoPe)
{
    PIM_ASSERT(block_words >= 1 && memory_words % block_words == 0);
}

bool
RefMachine::wouldLockWait(PeId pe, Addr addr) const
{
    // The lock directory answers LH at block granularity and the
    // requester's own directory is never consulted (Bus::lockCheck).
    const Addr base = blockBaseOf(addr);
    for (std::uint32_t w = 0; w < blockWords_; ++w) {
        const PeId owner = ledger_[base + w];
        if (owner != kNoPe && owner != pe)
            return true;
    }
    return false;
}

bool
RefMachine::holdsLock(PeId pe, Addr addr) const
{
    return ledger_[addr] == pe;
}

std::uint32_t
RefMachine::heldCount(PeId pe) const
{
    std::uint32_t count = 0;
    for (PeId owner : ledger_) {
        if (owner == pe)
            count += 1;
    }
    return count;
}

PeId
RefMachine::lockOwnerOnBlock(Addr addr) const
{
    const Addr base = blockBaseOf(addr);
    for (std::uint32_t w = 0; w < blockWords_; ++w) {
        if (ledger_[base + w] != kNoPe)
            return ledger_[base + w];
    }
    return kNoPe;
}

RefOutcome
RefMachine::apply(const ProtoCmd& cmd, const RefPreFacts& pre)
{
    RefOutcome outcome;
    const Addr base = blockBaseOf(cmd.addr);

    // Lock-wait gate: UW/U operate on a lock this PE already holds and
    // never wait; everything else is inhibited (LH) while another PE
    // holds a lock on a word of the target block. A lock-waiting command
    // must leave every piece of state untouched — the PE retries it
    // verbatim after the UL.
    if (cmd.op != MemOp::UW && cmd.op != MemOp::U &&
        wouldLockWait(cmd.pe, cmd.addr)) {
        outcome.lockWait = true;
        return outcome;
    }

    switch (cmd.op) {
      case MemOp::R:
      case MemOp::RI:
        outcome.checked = defined_[cmd.addr];
        outcome.value = memory_[cmd.addr];
        break;

      case MemOp::ER:
      case MemOp::RP:
        outcome.checked = defined_[cmd.addr];
        outcome.value = memory_[cmd.addr];
        if (pre.purgesDirty) {
            // The only copy of the block's latest values was dropped
            // without copy-back: by the single-use contract the block is
            // dead, so its words stop being checkable.
            for (std::uint32_t w = 0; w < blockWords_; ++w)
                defined_[base + w] = false;
        }
        break;

      case MemOp::W:
        memory_[cmd.addr] = cmd.value;
        defined_[cmd.addr] = true;
        break;

      case MemOp::DW:
      case MemOp::DWD:
        if (pre.freshAlloc) {
            // Allocate-without-fetch zero-fills the whole block.
            for (std::uint32_t w = 0; w < blockWords_; ++w) {
                memory_[base + w] = 0;
                defined_[base + w] = true;
            }
        }
        memory_[cmd.addr] = cmd.value;
        defined_[cmd.addr] = true;
        break;

      case MemOp::LR:
        PIM_ASSERT(ledger_[cmd.addr] == kNoPe,
                   "reference LR on an already-locked word");
        PIM_ASSERT(heldCount(cmd.pe) < lockEntries_,
                   "reference LR beyond the directory capacity");
        ledger_[cmd.addr] = cmd.pe;
        outcome.checked = defined_[cmd.addr];
        outcome.value = memory_[cmd.addr];
        break;

      case MemOp::UW:
        PIM_ASSERT(ledger_[cmd.addr] == cmd.pe,
                   "reference UW on a word this PE does not hold");
        memory_[cmd.addr] = cmd.value;
        defined_[cmd.addr] = true;
        ledger_[cmd.addr] = kNoPe;
        break;

      case MemOp::U:
        PIM_ASSERT(ledger_[cmd.addr] == cmd.pe,
                   "reference U on a word this PE does not hold");
        ledger_[cmd.addr] = kNoPe;
        break;
    }
    return outcome;
}

void
RefMachine::snapshotState(std::vector<std::uint64_t>& out) const
{
    for (std::size_t addr = 0; addr < memory_.size(); ++addr) {
        out.push_back(defined_[addr] ? 1 : 0);
        out.push_back(defined_[addr] ? memory_[addr] : 0);
        out.push_back(ledger_[addr] == kNoPe
                          ? ~std::uint64_t{0}
                          : static_cast<std::uint64_t>(ledger_[addr]));
    }
}

} // namespace pim
