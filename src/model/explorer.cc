#include "model/explorer.h"

#include <deque>
#include <memory>
#include <set>

#include "common/sim_fault.h"

namespace pim {

ExploreResult
explore(const ExploreConfig& config)
{
    ExploreResult result;
    std::set<std::vector<std::uint64_t>> visited;
    std::deque<std::vector<ProtoCmd>> frontier;

    {
        ConformanceHarness root(config.harness);
        visited.insert(root.snapshot());
        frontier.push_back({});
        result.states = 1;
    }

    while (!frontier.empty()) {
        const std::vector<ProtoCmd> trace = std::move(frontier.front());
        frontier.pop_front();

        // Rebuild the node and enumerate its enabled commands.
        ConformanceHarness node(config.harness);
        node.replay(trace); // validated prefix; cannot diverge
        const std::vector<ProtoCmd> commands = node.enabledCommands();

        if (commands.empty() && node.anyParked()) {
            // Nobody can move but PEs are still parked: a busy-wait
            // deadlock the generation rules should have made unreachable.
            result.divergence = true;
            result.divergenceMessage =
                "deadlock: no command is enabled but PEs are parked";
            result.divergenceTrace = trace;
            return result;
        }
        if (trace.size() >= config.depth)
            continue;

        for (const ProtoCmd& cmd : commands) {
            // Successors are rebuilt by prefix replay: the System is not
            // copyable, and a bounded-depth replay is cheap.
            ConformanceHarness child(config.harness);
            child.replay(trace);
            result.edges += 1;
            result.checks += trace.size() + 1;
            try {
                child.step(cmd);
            } catch (const SimFault& fault) {
                result.divergence = true;
                result.divergenceMessage = fault.message();
                result.divergenceTrace = trace;
                result.divergenceTrace.push_back(cmd);
                return result;
            }
            if (visited.insert(child.snapshot()).second) {
                result.states += 1;
                std::vector<ProtoCmd> extended = trace;
                extended.push_back(cmd);
                frontier.push_back(std::move(extended));
                if (result.states >= config.maxStates) {
                    result.truncated = true;
                    return result;
                }
            }
        }
    }
    return result;
}

} // namespace pim
