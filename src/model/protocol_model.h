/**
 * @file
 * Per-variant golden semantics for the protocol zoo (docs/TESTING.md).
 *
 * The RefMachine checks *architectural* semantics (values, locks,
 * defined-ness) and is deliberately protocol-independent: every variant
 * must produce the same program results. What differs per variant is the
 * *coherence shape* of each transition — which state a miss installs,
 * what a dirty supplier does — and the lock-step harness claims
 * (Divergence 5) check those against this table, mirroring the
 * controller-side CoherenceProtocol (src/cache/protocol.h) from an
 * independently written spec so a bug in one is caught by the other.
 *
 *   kind    R miss from memory   R miss from dirty supplier   supplier after   mem writes
 *   pim     EC                   SM (dirtiness migrates)      S                0
 *   msi     S  (no EC state)     S  (supplier wrote back)     S                1
 *   mesi    EC                   S  (supplier wrote back)     S                1
 *   moesi   EC                   S  (supplier keeps O)        SM               0
 *   dragon  EC                   S  (supplier keeps Sm)       SM               0
 *
 * Dragon additionally replaces the shared-write I broadcast with a
 * word-update broadcast (updateOnSharedWrite): sharers survive a remote
 * write and snarf the word, and the writer lands in SM while sharers
 * remain (EM once alone).
 */

#ifndef PIMCACHE_MODEL_PROTOCOL_MODEL_H_
#define PIMCACHE_MODEL_PROTOCOL_MODEL_H_

#include <cstdint>

#include "cache/protocol.h"
#include "cache/state.h"

namespace pim {

/** The harness-side golden claims for one protocol variant. */
struct ProtocolGoldenTable {
    ProtocolKind kind = ProtocolKind::PIM;
    /** State a plain read miss served by memory must install. */
    CacheState readMissFromMemory = CacheState::EC;
    /** State a plain read miss served by a dirty supplier must install. */
    CacheState readMissDirtySupplied = CacheState::SM;
    /** State the dirty supplier must be left in after the share. */
    CacheState dirtySupplierAfterShare = CacheState::S;
    /** Memory writes the dirty share itself must add (the MSI/MESI
     *  write-back; PIM/MOESI/Dragon never touch memory on a share). */
    std::uint64_t dirtySupplyMemWrites = 0;
    /** Shared writes broadcast the word instead of invalidating. */
    bool updateOnSharedWrite = false;
};

/** The golden table for @p kind. */
inline ProtocolGoldenTable
protocolGoldenTable(ProtocolKind kind)
{
    ProtocolGoldenTable table;
    table.kind = kind;
    switch (kind) {
      case ProtocolKind::PIM:
        break;
      case ProtocolKind::MSI:
        table.readMissFromMemory = CacheState::S;
        table.readMissDirtySupplied = CacheState::S;
        table.dirtySupplyMemWrites = 1;
        break;
      case ProtocolKind::MESI:
        table.readMissDirtySupplied = CacheState::S;
        table.dirtySupplyMemWrites = 1;
        break;
      case ProtocolKind::MOESI:
        table.readMissDirtySupplied = CacheState::S;
        table.dirtySupplierAfterShare = CacheState::SM;
        break;
      case ProtocolKind::Dragon:
        table.readMissDirtySupplied = CacheState::S;
        table.dirtySupplierAfterShare = CacheState::SM;
        table.updateOnSharedWrite = true;
        break;
    }
    return table;
}

} // namespace pim

#endif // PIMCACHE_MODEL_PROTOCOL_MODEL_H_
