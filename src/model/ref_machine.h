/**
 * @file
 * The golden reference machine: what the memory system *should* do.
 *
 * A flat word-addressed memory plus a per-word lock ledger — no caches,
 * no bus, no states. It defines the architectural semantics of every
 * operation (R/W/DW/DWD/ER/RP/RI read or write the flat memory; LR/UW/U
 * maintain the ledger) against which the full System is differentially
 * checked by the explorer and fuzzer (src/model/harness.h).
 *
 * Two deliberate refinements keep the reference honest about the
 * paper's software contracts instead of hiding them:
 *
 *  - Lock semantics: LR by PE p on word w succeeds iff no *other* PE
 *    holds a lock on any word of w's block (the lock directory answers
 *    LH at block granularity, and the requester's own directory is not
 *    consulted). An operation predicted to lock-wait must leave all
 *    state unchanged.
 *
 *  - Purge semantics: ER (present, last word) and RP drop a dirty block
 *    without copy-back, so the *words of that block become undefined* —
 *    the contract says they were single-use. The reference tracks a
 *    per-word defined bit; reads of undefined words are not value-checked
 *    (the System's stale-fetch accounting covers contract violations).
 */

#ifndef PIMCACHE_MODEL_REF_MACHINE_H_
#define PIMCACHE_MODEL_REF_MACHINE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "model/command.h"

namespace pim {

/** Golden outcome of one command. */
struct RefOutcome {
    bool lockWait = false; ///< Must park; no state may change.
    bool checked = false;  ///< Read value is defined and must match.
    Word value = 0;        ///< Golden read value (when checked).
};

/**
 * Facts about the System's state *before* the command runs, computed by
 * the harness, that select between architecturally-equal-but-contractually
 * -different behaviors (whether a DW takes the fresh-allocation path,
 * whether an ER/RP drops dirty data).
 */
struct RefPreFacts {
    bool freshAlloc = false;  ///< DW/DWD allocates without fetching.
    bool purgesDirty = false; ///< ER/RP drops a dirty copy (block dies).
};

/** Flat golden memory + lock ledger. */
class RefMachine
{
  public:
    RefMachine(std::uint32_t num_pes, std::uint32_t block_words,
               std::uint64_t memory_words, std::uint32_t lock_entries);

    /** Apply @p cmd; @p pre selects contract-dependent behavior. */
    RefOutcome apply(const ProtoCmd& cmd, const RefPreFacts& pre);

    /** Would @p cmd lock-wait right now? (True iff another PE holds a
     *  lock on a word of the target block.) */
    bool wouldLockWait(PeId pe, Addr addr) const;

    /** True if @p pe holds the lock on word @p addr. */
    bool holdsLock(PeId pe, Addr addr) const;

    /** Locks currently held by @p pe. */
    std::uint32_t heldCount(PeId pe) const;

    /** PE holding a lock on any word of @p addr's block (kNoPe if none). */
    PeId lockOwnerOnBlock(Addr addr) const;

    /** True if word @p addr holds a defined (checkable) value. */
    bool isDefined(Addr addr) const { return defined_[addr]; }

    /** Golden value of word @p addr (meaningful when defined). */
    Word valueOf(Addr addr) const { return memory_[addr]; }

    /** Canonical (defined-bit, value) pairs, for state hashing. */
    void snapshotState(std::vector<std::uint64_t>& out) const;

    std::uint32_t blockWords() const { return blockWords_; }

  private:
    Addr blockBaseOf(Addr addr) const { return addr - addr % blockWords_; }

    std::uint32_t numPes_;
    std::uint32_t blockWords_;
    std::uint32_t lockEntries_;
    std::vector<Word> memory_;
    std::vector<bool> defined_;
    /** ledger_[addr] = PE holding the lock on that word, or kNoPe. */
    std::vector<PeId> ledger_;
};

} // namespace pim

#endif // PIMCACHE_MODEL_REF_MACHINE_H_
