/**
 * @file
 * The conformance engine's command vocabulary.
 *
 * A ProtoCmd is one processor-side memory operation by one PE — the unit
 * the exhaustive explorer interleaves and the trace fuzzer mutates. The
 * textual form ("P0:W@5=3", joined with ';') is the replay language:
 * every divergence the engine reports prints as such a script, and
 * `pim_conform --replay=...` runs it back under full checking
 * (docs/TESTING.md).
 */

#ifndef PIMCACHE_MODEL_COMMAND_H_
#define PIMCACHE_MODEL_COMMAND_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "trace/ref.h"

namespace pim {

/** One command of a conformance trace. */
struct ProtoCmd {
    PeId pe = 0;
    MemOp op = MemOp::R;
    Addr addr = 0;
    Word value = 0; ///< Data for writing operations (W, UW, DW, DWD).

    bool
    operator==(const ProtoCmd& other) const
    {
        return pe == other.pe && op == other.op && addr == other.addr &&
               value == other.value;
    }
};

/** "P0:W@5=3" (writing operations) or "P1:R@2" (the rest). */
std::string cmdToString(const ProtoCmd& cmd);

/** Commands joined with ';' — the replayable script form. */
std::string traceToString(const std::vector<ProtoCmd>& trace);

/**
 * Parse a script produced by traceToString (whitespace around commands
 * is ignored; empty commands are skipped).
 * @throws SimFault (Parse) with the offending command text.
 */
std::vector<ProtoCmd> parseTrace(const std::string& text);

} // namespace pim

#endif // PIMCACHE_MODEL_COMMAND_H_
