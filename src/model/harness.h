/**
 * @file
 * The conformance harness: one full System lock-stepped against the
 * golden RefMachine, with every divergence turned into a SimFault.
 *
 * Per step the harness (1) computes the contract facts the reference
 * needs (fresh allocation, dirty purge) from the System's pre-state,
 * (2) applies the command to both machines, (3) cross-checks lock-wait
 * decisions, read values, the shared block invariants
 * (verify/invariants.h), exact per-pattern bus-cycle accounting, the
 * paper's op-specific claims (zero bus cycles for an exclusive LR hit,
 * SM on a dirty cache-to-cache supply with no memory write, ER purging
 * the supplier and the reader-after-last-word), a full sweep of every
 * defined word against the golden memory, and that every parked PE is
 * actually waiting on a held remote lock.
 *
 * Command generation (enabledCommands) only produces commands whose
 * preconditions hold — locks released by their holder, directory
 * capacity respected, DW only on unlocked unshared blocks, and no
 * command that would close a busy-wait deadlock cycle — so the
 * exhaustive explorer can interleave them freely without tripping
 * driver-contract aborts.
 */

#ifndef PIMCACHE_MODEL_HARNESS_H_
#define PIMCACHE_MODEL_HARNESS_H_

#include <cstdint>
#include <vector>

#include "cache/mutation.h"
#include "cache/protocol.h"
#include "cache/replacement.h"
#include "model/command.h"
#include "model/protocol_model.h"
#include "model/ref_machine.h"
#include "obs/attribution.h"
#include "sim/system.h"

namespace pim {

/** Shape of the explored configuration. */
struct HarnessConfig {
    std::uint32_t numPes = 2;
    std::uint32_t blocks = 1;     ///< Blocks in the explored span.
    std::uint32_t blockWords = 2; ///< Words per block.
    std::uint32_t ways = 1;
    std::uint32_t sets = 1;
    std::uint32_t lockEntries = 2;
    /** Seeded protocol bug to arm (None = faithful protocol). */
    ProtocolMutation mutation = ProtocolMutation::None;
    /**
     * Exact bus-side snoop filter (docs/PERFORMANCE.md). The conform
     * suite fuzzes with it on and off: both must match the RefMachine,
     * which pins the filter's exactness.
     */
    bool snoopFilter = true;
    /**
     * Clustered snooping-bus topology (docs/ARCHITECTURE.md): PEs per
     * cluster (0 = single bus) and the interconnect hop cost. Clustering
     * is a pure timing feature, so every divergence check — including
     * the exact bus accounting and attribution cross-checks — must hold
     * with it on, which the conform suite fuzzes.
     */
    std::uint32_t clusterSize = 0;
    std::uint32_t hopCycles = 4;
    /**
     * Protocol variant under conformance (the zoo, cache/protocol.h).
     * The RefMachine's architectural semantics are protocol-independent;
     * the per-variant golden claims come from protocolGoldenTable().
     */
    ProtocolKind protocol = ProtocolKind::PIM;
    /** Replacement policy under conformance. */
    ReplacementKind replacement = ReplacementKind::LRU;

    /** The explored address span is [0, spanWords()). */
    Addr
    spanWords() const
    {
        return static_cast<Addr>(blocks) * blockWords;
    }
};

/** System + RefMachine in lock-step; throws SimFault on divergence. */
class ConformanceHarness
{
  public:
    explicit ConformanceHarness(const HarnessConfig& config);
    ~ConformanceHarness();

    ConformanceHarness(const ConformanceHarness&) = delete;
    ConformanceHarness& operator=(const ConformanceHarness&) = delete;

    /**
     * Execute @p cmd on both machines and run every cross-check.
     * @p cmd must be enabled (asserted).
     * @throws SimFault (Protocol/Corruption) on the first divergence,
     * with the divergent condition and both machines' views.
     */
    void step(const ProtoCmd& cmd);

    /** True if @p cmd can be stepped right now (preconditions hold). */
    bool enabled(const ProtoCmd& cmd) const;

    /**
     * Every enabled command, deterministically ordered: for each PE its
     * forced retry (if parked-and-woken) or the generated alphabet over
     * the span with per-(PE, op) write values.
     */
    std::vector<ProtoCmd> enabledCommands() const;

    /** step() every command of @p trace in order (all must be enabled). */
    void replay(const std::vector<ProtoCmd>& trace);

    /**
     * step() the enabled commands of @p trace, silently skipping
     * disabled ones — the trace shrinker's replay mode, where removing
     * a chunk can orphan later commands (an unlock whose lock-read was
     * removed, a retry whose park never happened).
     * @return Number of commands actually executed.
     */
    std::size_t replayLenient(const std::vector<ProtoCmd>& trace);

    /**
     * Canonical state of the whole lock-stepped pair: the System's
     * protocol snapshot over the span, each PE's pending retry, and the
     * reference machine. Two harnesses with equal snapshots behave
     * identically on every future command — the explorer's merge key.
     */
    std::vector<std::uint64_t> snapshot() const;

    /** splitmix64-style hash of snapshot(). */
    std::uint64_t snapshotHash() const;

    /** Cross-check groups executed so far (one per step). */
    std::uint64_t checksRun() const { return checks_; }

    /** True while any PE is parked on a lock. */
    bool anyParked() const;

    const HarnessConfig& config() const { return config_; }
    System& system() { return sys_; }
    const RefMachine& ref() const { return ref_; }

  private:
    Addr blockBaseOf(Addr addr) const
    {
        return addr - addr % config_.blockWords;
    }

    /** Deadlock gate: would @p cmd wait on a PE that cannot progress? */
    bool lockWaitSafe(const ProtoCmd& cmd) const;

    HarnessConfig config_;
    /** Golden per-variant claims for the Divergence-5 checks. */
    ProtocolGoldenTable golden_;
    RefMachine ref_;
    System sys_;
    AttributionEngine attribution_; ///< Always-on bucket-sum cross-check.
    std::vector<ProtoCmd> pending_;  ///< Per-PE retry command.
    std::vector<bool> hasPending_;   ///< Retry valid (parked or woken).
    std::uint64_t checks_ = 0;
};

} // namespace pim

#endif // PIMCACHE_MODEL_HARNESS_H_
