/**
 * @file
 * Differential trace fuzzing with automatic shrinking.
 *
 * Drives the conformance harness with seeded random traces (uniform
 * choice among the enabled commands, randomized write values) — the
 * probabilistic complement to the exhaustive explorer, reaching depths
 * and configurations BFS cannot. On divergence the failing trace is
 * shrunk ddmin-style: ever-smaller chunks are removed and the candidate
 * replayed leniently (disabled commands skip), keeping any candidate
 * that still diverges, until no single command can be dropped. The
 * result prints as a replayable script for `pim_conform --replay=...`.
 */

#ifndef PIMCACHE_MODEL_FUZZER_H_
#define PIMCACHE_MODEL_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/harness.h"

namespace pim {

/** Fuzzing parameters. */
struct FuzzConfig {
    HarnessConfig harness;
    std::uint64_t seed = 1;
    std::uint32_t traces = 20; ///< Independent traces to run.
    std::uint32_t len = 200;   ///< Commands per trace.
    bool shrink = true;        ///< Minimize the first failing trace.
};

/** Outcome of one fuzzing campaign. */
struct FuzzResult {
    std::uint64_t tracesRun = 0;
    std::uint64_t commandsRun = 0;
    bool divergence = false;
    std::uint64_t failingSeed = 0;       ///< Derived seed of the trace.
    std::string divergenceMessage;       ///< From the original failure.
    std::vector<ProtoCmd> trace;         ///< Original failing trace.
    std::vector<ProtoCmd> shrunk;        ///< Minimal reproducer.
    std::string shrunkMessage;           ///< Divergence it reproduces.
};

/** Run the campaign; stops at the first divergent trace. */
FuzzResult fuzz(const FuzzConfig& config);

/**
 * Shrink @p trace (known to diverge under @p harness_config) to a
 * locally-minimal reproducer: no single command can be removed without
 * losing the divergence. @p message_out receives the divergence message
 * of the minimal trace.
 */
std::vector<ProtoCmd> shrinkTrace(const HarnessConfig& harness_config,
                                  const std::vector<ProtoCmd>& trace,
                                  std::string* message_out);

} // namespace pim

#endif // PIMCACHE_MODEL_FUZZER_H_
