#include "model/command.h"

#include <cctype>
#include <sstream>

#include "common/sim_fault.h"
#include "common/strutil.h"

namespace pim {

namespace {

bool
parseOpName(const std::string& name, MemOp* out)
{
    for (int i = 0; i < kNumMemOps; ++i) {
        const auto op = static_cast<MemOp>(i);
        if (name == memOpName(op)) {
            *out = op;
            return true;
        }
    }
    return false;
}

[[noreturn]] void
badCommand(const std::string& text, const char* why)
{
    throw PIM_SIM_FAULT(SimFaultKind::Parse, "bad conformance command '",
                        text, "': ", why,
                        " (expected P<pe>:<OP>@<addr>[=<value>])");
}

std::uint64_t
parseNumber(const std::string& text, const std::string& digits)
{
    if (digits.empty())
        badCommand(text, "missing number");
    for (char c : digits) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            badCommand(text, "malformed number");
    }
    try {
        return std::stoull(digits);
    } catch (const std::exception&) {
        badCommand(text, "number out of range");
    }
}

} // namespace

std::string
cmdToString(const ProtoCmd& cmd)
{
    std::ostringstream out;
    out << "P" << cmd.pe << ":" << memOpName(cmd.op) << "@" << cmd.addr;
    if (memOpWrites(cmd.op))
        out << "=" << cmd.value;
    return out.str();
}

std::string
traceToString(const std::vector<ProtoCmd>& trace)
{
    std::ostringstream out;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (i != 0)
            out << ";";
        out << cmdToString(trace[i]);
    }
    return out.str();
}

std::vector<ProtoCmd>
parseTrace(const std::string& text)
{
    std::vector<ProtoCmd> trace;
    for (std::string part : splitString(text, ';')) {
        // Strip whitespace so scripts can be written one command per line.
        std::string compact;
        for (char c : part) {
            if (!std::isspace(static_cast<unsigned char>(c)))
                compact += c;
        }
        if (compact.empty())
            continue;

        if (compact[0] != 'P')
            badCommand(compact, "missing 'P' prefix");
        const std::size_t colon = compact.find(':');
        if (colon == std::string::npos)
            badCommand(compact, "missing ':'");
        const std::size_t at = compact.find('@', colon);
        if (at == std::string::npos)
            badCommand(compact, "missing '@'");
        const std::size_t eq = compact.find('=', at);

        ProtoCmd cmd;
        cmd.pe = static_cast<PeId>(
            parseNumber(compact, compact.substr(1, colon - 1)));
        const std::string op_name = compact.substr(colon + 1, at - colon - 1);
        if (!parseOpName(op_name, &cmd.op))
            badCommand(compact, "unknown operation");
        const std::size_t addr_end =
            eq == std::string::npos ? compact.size() : eq;
        cmd.addr = parseNumber(compact,
                               compact.substr(at + 1, addr_end - at - 1));
        if (eq != std::string::npos) {
            if (!memOpWrites(cmd.op))
                badCommand(compact, "'=' on a non-writing operation");
            cmd.value = parseNumber(compact, compact.substr(eq + 1));
        }
        trace.push_back(cmd);
    }
    return trace;
}

} // namespace pim
