#include "cache/lock_directory.h"

#include <algorithm>

#include "common/xassert.h"
#include "obs/event_sink.h"

namespace pim {

LockDirectory::LockDirectory(PeId owner, std::uint32_t entries, Bus* bus,
                             std::uint32_t block_words)
    : owner_(owner),
      entries_(entries),
      bus_(bus),
      blockWords_(block_words),
      slots_(entries)
{
    PIM_ASSERT(entries >= 1);
    PIM_ASSERT(bus == nullptr || block_words >= 1,
               "a bus-connected lock directory needs the block size to "
               "maintain block-granular lock residency");
}

void
LockDirectory::refreshResidency(Addr word_addr)
{
    if (bus_ == nullptr)
        return;
    const Addr block = word_addr - word_addr % blockWords_;
    bool resident = false;
    for (const Entry& slot : slots_) {
        if (slot.state != LockState::EMP && slot.addr >= block &&
            slot.addr < block + blockWords_) {
            resident = true;
            break;
        }
    }
    if (!resident) {
        for (Addr ghost : ghosts_) {
            if (ghost >= block && ghost < block + blockWords_) {
                resident = true;
                break;
            }
        }
    }
    bus_->noteLockResidency(owner_, block, resident);
}

void
LockDirectory::acquire(Addr word_addr, Cycles when)
{
    PIM_ASSERT(!holds(word_addr), "pe", owner_,
               " re-locking an address it already holds: ", word_addr);
    for (Entry& slot : slots_) {
        if (slot.state == LockState::EMP) {
            slot.addr = word_addr;
            slot.state = LockState::LCK;
            refreshResidency(word_addr);
            if (sink_ != nullptr)
                sink_->onLockTransition(owner_, word_addr, LockState::EMP,
                                        LockState::LCK, when);
            return;
        }
    }
    PIM_FATAL("lock directory of pe", owner_, " is full (", entries_,
              " entries); the program nests more locks than the hardware "
              "supports");
}

bool
LockDirectory::holds(Addr word_addr) const
{
    for (const Entry& slot : slots_) {
        if (slot.state != LockState::EMP && slot.addr == word_addr)
            return true;
    }
    return false;
}

LockState
LockDirectory::stateOf(Addr word_addr) const
{
    for (const Entry& slot : slots_) {
        if (slot.state != LockState::EMP && slot.addr == word_addr)
            return slot.state;
    }
    return LockState::EMP;
}

bool
LockDirectory::release(Addr word_addr, Cycles when)
{
    for (Entry& slot : slots_) {
        if (slot.state != LockState::EMP && slot.addr == word_addr) {
            const LockState from = slot.state;
            bool had_waiter = slot.state == LockState::LWAIT;
            if (had_waiter && injector_ != nullptr) {
                // Injected fault: the entry never leaves LWAIT — a ghost
                // stays behind that answers LH forever, while the UL
                // still goes out and wakes the (doomed) waiters.
                if (injector_->fire(FaultSite::StuckLwait))
                    ghosts_.push_back(word_addr);
                // Injected fault: the LWAIT state is misread as LCK, so
                // the controller skips the UL broadcast and every parked
                // PE sleeps forever.
                if (injector_->fire(FaultSite::LostUnlock))
                    had_waiter = false;
            }
            slot.state = LockState::EMP;
            slot.addr = kNoAddr;
            // After both the slot clear and a possible ghost insertion:
            // a ghost in the same block keeps the block lock-resident.
            refreshResidency(word_addr);
            if (sink_ != nullptr)
                sink_->onLockTransition(owner_, word_addr, from,
                                        LockState::EMP, when);
            return had_waiter;
        }
    }
    PIM_PANIC("pe", owner_, " unlocking an address it does not hold: ",
              word_addr);
}

std::uint32_t
LockDirectory::heldCount() const
{
    std::uint32_t count = 0;
    for (const Entry& slot : slots_) {
        if (slot.state != LockState::EMP)
            ++count;
    }
    return count;
}

bool
LockDirectory::snoopLockCheck(Addr block_addr, std::uint32_t block_words,
                              Cycles when)
{
    bool hit = false;
    for (Entry& slot : slots_) {
        if (slot.state != LockState::EMP &&
            slot.addr >= block_addr &&
            slot.addr < block_addr + block_words) {
            if (sink_ != nullptr && slot.state == LockState::LCK)
                sink_->onLockTransition(owner_, slot.addr, LockState::LCK,
                                        LockState::LWAIT, when);
            slot.state = LockState::LWAIT;
            hit = true;
        }
    }
    // Ghost entries from injected StuckLwait faults answer LH forever.
    for (Addr ghost : ghosts_) {
        if (ghost >= block_addr && ghost < block_addr + block_words)
            hit = true;
    }
    return hit;
}

std::vector<std::pair<Addr, LockState>>
LockDirectory::entries() const
{
    std::vector<std::pair<Addr, LockState>> out;
    for (const Entry& slot : slots_) {
        if (slot.state != LockState::EMP)
            out.emplace_back(slot.addr, slot.state);
    }
    return out;
}

void
LockDirectory::snapshotState(std::vector<std::uint64_t>& out) const
{
    std::vector<std::pair<Addr, LockState>> held = entries();
    std::sort(held.begin(), held.end());
    out.push_back(held.size());
    for (const auto& [addr, state] : held) {
        out.push_back(addr);
        out.push_back(static_cast<std::uint64_t>(state));
    }
    std::vector<Addr> ghosts = ghosts_;
    std::sort(ghosts.begin(), ghosts.end());
    out.push_back(ghosts.size());
    for (Addr ghost : ghosts)
        out.push_back(ghost);
}

} // namespace pim
