/**
 * @file
 * Per-cache statistics.
 *
 * Feeds the miss-ratio curves (Figures 1 and 2), the lock-protocol hit
 * ratios (Table 5) and the per-command effectiveness numbers quoted in
 * Section 4.6 of the paper.
 */

#ifndef PIMCACHE_CACHE_CACHE_STATS_H_
#define PIMCACHE_CACHE_CACHE_STATS_H_

#include <cstdint>

#include "mem/area.h"
#include "trace/ref.h"

namespace pim {

/** Counters kept by one PE's cache controller. */
struct CacheStats {
    // -- Generic hit/miss ------------------------------------------------
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t accessesByArea[kNumAreaSlots] = {};
    std::uint64_t missesByArea[kNumAreaSlots] = {};

    // -- Replacement -----------------------------------------------------
    std::uint64_t evictions = 0;
    std::uint64_t swapOuts = 0; ///< Dirty victims copied back.

    // -- Lock protocol (Table 5) ------------------------------------------
    std::uint64_t lrCount = 0;
    std::uint64_t lrHit = 0;          ///< LR found the block in cache.
    std::uint64_t lrHitExclusive = 0; ///< ...in EM/EC: zero bus cycles.
    std::uint64_t lrLockWaits = 0;    ///< LR inhibited by LH.
    std::uint64_t unlockCount = 0;    ///< UW + U operations.
    std::uint64_t unlockNoWaiter = 0; ///< ...with LCK state: zero bus.

    // -- Optimized commands (Section 4.6) ---------------------------------
    std::uint64_t dwAllocNoFetch = 0; ///< DW allocated without fetch.
    std::uint64_t dwDemoted = 0;      ///< DW executed as plain W.
    std::uint64_t dwSwapOutOnly = 0;  ///< DW displacing a dirty victim.
    std::uint64_t erAsRi = 0;         ///< ER case (i): read-invalidate.
    std::uint64_t erAsRp = 0;         ///< ER case (ii): read-purge.
    std::uint64_t erAsR = 0;          ///< ER case (iii): plain read.
    std::uint64_t rpCount = 0;
    std::uint64_t riCount = 0;
    std::uint64_t riExclusive = 0;    ///< RI that took the block via FI.
    std::uint64_t purges = 0;         ///< Own-copy purges (ER/RP).
    std::uint64_t purgedDirty = 0;    ///< ...that skipped a swap-out.

    // -- Contract checking -------------------------------------------------
    /** Reads that hit a block previously purged while dirty (the
     *  write-once/read-once contract was violated by the software). */
    std::uint64_t staleReads = 0;

    /** Fold another PE's counters into this one. */
    void merge(const CacheStats& other);

    /** Overall miss ratio (0 when no accesses). */
    double
    missRatio() const
    {
        return accesses == 0 ? 0.0
                             : static_cast<double>(misses) /
                                   static_cast<double>(accesses);
    }
};

} // namespace pim

#endif // PIMCACHE_CACHE_CACHE_STATS_H_
