/**
 * @file
 * Seeded protocol mutations for the conformance engine (src/model).
 *
 * Each mutation flips one deliberate wrong decision in the cache
 * controller — the kind of off-by-one-state bug a real implementation
 * could ship with. The exhaustive explorer and the differential trace
 * fuzzer must detect every one of them (tests/model_test.cc); a mutation
 * that survives means the checker has a blind spot.
 *
 * The hook is a plain runtime switch (default None = faithful protocol)
 * so production code paths stay intact; only the conformance tests ever
 * set it.
 */

#ifndef PIMCACHE_CACHE_MUTATION_H_
#define PIMCACHE_CACHE_MUTATION_H_

#include <cstdint>
#include <string>

namespace pim {

/** One seeded protocol bug (None = the faithful protocol). */
enum class ProtocolMutation : std::uint8_t {
    None = 0,
    /** A dirty supplier answering F reports its data as clean (SM/EM
     *  treated as EC on the share path): the receiver installs S instead
     *  of SM, so nobody remembers that shared memory is stale. */
    SmSharedAsClean = 1,
    /** A write hitting a shared (S/SM) block skips the I broadcast:
     *  remote copies survive a local write and diverge. */
    WriteSharedSkipsInv = 2,
    /** ER's read-invalidate case issues F instead of FI: the supplier
     *  keeps its copy alongside the receiver's exclusive one. */
    ErKeepsSupplier = 3,
    /** An unlock with waiters skips the UL broadcast: parked PEs spin on
     *  a lock that is already free. */
    UnlockDropsUl = 4,
    /** MSI: a read miss served by memory installs exclusive-clean — the
     *  PIM/MESI rule leaking into a protocol that has no EC state, so a
     *  later silent write skips the invalidation the S state forces. */
    MsiMissAsExclusive = 5,
    /** MESI: a dirty supplier skips the memory write-back on a share and
     *  migrates its dirtiness PIM-style; MESI has no SM state to record
     *  it, so everyone ends up clean over stale memory. */
    MesiShareSkipsWriteback = 6,
    /** MOESI: the owner answering F downgrades to clean S instead of
     *  keeping ownership in SM; the dirty data is dropped without a
     *  write-back and memory stays stale with no owner to account. */
    MoesiOwnerDropsDirty = 7,
    /** Dragon: a write to a shared copy skips the word-update broadcast
     *  and takes the block exclusive; remote sharers survive with stale
     *  data. */
    DragonUpdateSkipsSharers = 8,
};

inline constexpr int kNumProtocolMutations = 9;

/** Stable CLI name ("none", "sm_shared_as_clean", ...). */
inline const char*
protocolMutationName(ProtocolMutation mutation)
{
    switch (mutation) {
      case ProtocolMutation::None:                return "none";
      case ProtocolMutation::SmSharedAsClean:     return "sm_shared_as_clean";
      case ProtocolMutation::WriteSharedSkipsInv: return "write_shared_skips_inv";
      case ProtocolMutation::ErKeepsSupplier:     return "er_keeps_supplier";
      case ProtocolMutation::UnlockDropsUl:       return "unlock_drops_ul";
      case ProtocolMutation::MsiMissAsExclusive:
        return "msi_miss_as_exclusive";
      case ProtocolMutation::MesiShareSkipsWriteback:
        return "mesi_share_skips_writeback";
      case ProtocolMutation::MoesiOwnerDropsDirty:
        return "moesi_owner_drops_dirty";
      case ProtocolMutation::DragonUpdateSkipsSharers:
        return "dragon_update_skips_sharers";
    }
    return "?";
}

/** Parse a CLI name; returns false if @p name is unknown. */
inline bool
parseProtocolMutation(const std::string& name, ProtocolMutation* out)
{
    for (int i = 0; i < kNumProtocolMutations; ++i) {
        const auto mutation = static_cast<ProtocolMutation>(i);
        if (name == protocolMutationName(mutation)) {
            *out = mutation;
            return true;
        }
    }
    return false;
}

} // namespace pim

#endif // PIMCACHE_CACHE_MUTATION_H_
