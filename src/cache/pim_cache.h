/**
 * @file
 * The PIM cache controller (paper Sections 3.1-3.3).
 *
 * A copy-back, write-allocate, invalidation-based snooping cache with the
 * five states EM / EC / SM / S / INV, the software-controlled commands
 * DW / ER / RP / RI, and a separate word-granularity lock directory
 * implementing LR / UW / U busy-wait locks.
 *
 * The cache stores real data words: processor reads return the value the
 * coherent memory system currently holds, so the KL1 emulator literally
 * computes through this cache and a protocol bug breaks program results.
 */

#ifndef PIMCACHE_CACHE_PIM_CACHE_H_
#define PIMCACHE_CACHE_PIM_CACHE_H_

#include <cstdint>
#include <vector>

#include "bus/bus.h"
#include "cache/cache_stats.h"
#include "cache/config.h"
#include "cache/lock_directory.h"
#include "cache/mutation.h"
#include "cache/protocol.h"
#include "cache/replacement.h"
#include "cache/state.h"
#include "common/types.h"
#include "trace/ref.h"

namespace pim {

/** One PE's cache controller + lock directory. */
class PimCache : public BusSnooper
{
  public:
    /** Outcome of one processor-side memory operation. */
    struct AccessResult {
        Cycles doneAt = 0;   ///< Local time when the operation completes.
        bool lockWait = false; ///< Inhibited by LH; retry after UL.
        Addr waitAddr = 0;   ///< Block address to park on when lockWait.
        Word data = 0;       ///< Value read (for reading operations).
    };

    PimCache(PeId pe, const CacheConfig& config, Bus& bus);

    PimCache(const PimCache&) = delete;
    PimCache& operator=(const PimCache&) = delete;

    /**
     * Execute one memory operation at local time @p now.
     * @param ref Operation, address and area (ref.pe must equal this PE).
     * @param wdata Data for writing operations (W, UW, DW).
     */
    AccessResult access(const MemRef& ref, Word wdata, Cycles now);

    /**
     * Write back every dirty block and invalidate the whole cache without
     * charging bus cycles. Used around stop-and-copy GC, whose references
     * the paper's measurements exclude.
     */
    void flushAll();

    // -- Introspection (tests, checkers) ----------------------------------

    /**
     * True iff executing @p op at @p addr *now* would complete entirely
     * inside this cache — no bus transaction, no lock-directory change,
     * no residency-filter change — and finish at exactly now +
     * hitCycles. This is the parallel core's epoch classifier
     * (src/sim/parallel_core.*): operations that satisfy it may run
     * concurrently with other PEs' private hits.
     *
     * The predicate is conservative and *monotone under remote snoops*:
     * snoops never fill a cache, so a concurrent snoopInvalidate /
     * snoopFetch / snoopUpdate can demote a private hit to a bus
     * operation but never the reverse. Executing a private hit never
     * changes which blocks are resident, so a run of private hits
     * classified together stays privately executable. @p op must be the
     * post-OptPolicy operation (System::accessIsLocal applies it).
     */
    bool opIsPrivateHit(MemOp op, Addr addr) const;

    /**
     * Bumped whenever a remote snoop (or flushAll) changes this cache's
     * contents, invalidating earlier opIsPrivateHit answers. The
     * parallel core re-classifies a PE's probed run when the version it
     * recorded at probe time no longer matches.
     */
    std::uint64_t snoopVersion() const { return snoopVersion_; }

    /** State of the block containing @p addr (INV when absent). */
    CacheState stateOf(Addr addr) const;

    /** True if the block containing @p addr is valid in this cache. */
    bool present(Addr addr) const;

    /** Read a word from the cache if present, else from shared memory. */
    Word loadValue(Addr addr) const;

    /**
     * Attach a fault injector (nullptr to detach). The cache consults it
     * at BitFlipFill and ForcedMiss; the lock directory at LostUnlock and
     * StuckLwait.
     */
    void
    setFaultInjector(FaultInjector* injector)
    {
        injector_ = injector;
        locks_.setFaultInjector(injector);
    }

    /**
     * Attach an observability sink (nullptr to detach), shared with the
     * lock directory. Reports block state transitions, fills (with the
     * cache-to-cache vs memory distinction), swap-outs and purges.
     */
    void
    setEventSink(EventSink* sink)
    {
        sink_ = sink;
        locks_.setEventSink(sink);
    }

    /**
     * Arm one seeded protocol bug (conformance tests only; see
     * cache/mutation.h). ProtocolMutation::None restores the faithful
     * protocol.
     */
    void
    setProtocolMutation(ProtocolMutation mutation)
    {
        mutation_ = mutation;
    }

    /**
     * Append a canonical description of this cache's protocol state to
     * @p out: every valid block with base in [@p lo, @p hi) in address
     * order (base, state, LRU rank within its set, data words), then the
     * lock directory. Local clocks and absolute LRU ticks are excluded
     * so that runs reaching the same protocol state hash equal — the
     * state-space explorer's canonicalization (src/model).
     */
    void snapshotState(Addr lo, Addr hi,
                       std::vector<std::uint64_t>& out) const;

    LockDirectory& lockDirectory() { return locks_; }
    const LockDirectory& lockDirectory() const { return locks_; }
    CacheStats& stats() { return stats_; }
    const CacheStats& stats() const { return stats_; }
    const CacheConfig& config() const { return config_; }
    PeId pe() const { return pe_; }

    // -- BusSnooper interface ---------------------------------------------
    FetchReply snoopFetch(Addr block_addr, bool invalidate, Word* data_out,
                          Cycles when) override;
    bool snoopInvalidate(Addr block_addr, Cycles when) override;
    bool snoopUpdate(Addr word_addr, Word value, Cycles when) override;

  private:
    struct Block {
        Addr base = kNoAddr;
        CacheState state = CacheState::INV;
        std::uint64_t lru = 0;
    };

    /** Outcome of a block fetch over the bus. */
    struct FetchOutcome {
        bool lockWait = false;
        bool supplied = false;
        bool supplierDirty = false;
        Block* block = nullptr; ///< Installed block (when installing).
        Cycles doneAt = 0;
    };

    std::uint32_t setIndexOf(Addr block_base) const;
    Addr blockBaseOf(Addr addr) const;
    Block* findBlock(Addr block_base);
    const Block* findBlock(Addr block_base) const;
    Word* blockData(const Block& block);
    const Word* blockData(const Block& block) const;
    void touchLru(Block& block);

    /** Recency update on a hit: a no-op under FIFO (install-order only),
     *  a touchLru under every other policy. */
    void touchOnHit(Block& block);

    /** Pick the victim way in @p set (an INV way if any, else LRU). */
    Block& victimIn(std::uint32_t set);

    /**
     * Fetch @p block_base over the bus (F, or FI when @p invalidate).
     * When @p install, a victim is chosen and evicted (dirty victims are
     * copied back with the transfer-time already folded into the bus
     * pattern) and the block is installed with state INV for the caller
     * to set. When not installing, data lands in @p scratch.
     */
    FetchOutcome fetchBlock(Addr block_base, bool invalidate, bool with_lock,
                            Addr lock_word, bool install, Word* scratch,
                            Cycles now, Area area);

    /** Purge our own copy without copy-back (the ER/RP path). */
    void purgeBlock(Block& block, Cycles when);

    /** Assign @p block's state, reporting the transition to the sink. */
    void setState(Block& block, CacheState to, Cycles when);

    AccessResult doRead(const MemRef& ref, Cycles now);
    AccessResult doWrite(const MemRef& ref, Word wdata, Cycles now);
    AccessResult doLockRead(const MemRef& ref, Cycles now);
    AccessResult doUnlock(const MemRef& ref, bool write, Word wdata,
                          Cycles now);
    AccessResult doDirectWrite(const MemRef& ref, Word wdata, bool downward,
                               Cycles now);
    AccessResult doExclusiveRead(const MemRef& ref, Cycles now);
    AccessResult doReadPurge(const MemRef& ref, Cycles now);
    AccessResult doReadInvalidate(const MemRef& ref, Cycles now);

    void countAccess(const MemRef& ref, bool miss);

    PeId pe_;
    CacheConfig config_;
    /**
     * Shift/mask forms of the validated power-of-two geometry, so the
     * per-access address math (block base, set index) is two ALU ops
     * instead of integer divisions (docs/PERFORMANCE.md).
     */
    std::uint32_t blockShift_ = 0; ///< log2(geometry.blockWords).
    std::uint32_t setMask_ = 0;    ///< geometry.sets - 1.
    Bus& bus_;
    /** The protocol variant's policy table (cache/protocol.h). */
    CoherenceProtocol proto_;
    /** Random-replacement RNG state (advances once per random victim). */
    std::uint64_t rngState_ = 1;
    ProtocolMutation mutation_ = ProtocolMutation::None;
    FaultInjector* injector_ = nullptr;
    EventSink* sink_ = nullptr;
    LockDirectory locks_;
    CacheStats stats_;
    std::uint64_t snoopVersion_ = 0; ///< See snoopVersion().
    std::uint64_t lruTick_ = 0;
    std::vector<Block> blocks_;  ///< sets x ways.
    std::vector<Word> data_;     ///< sets x ways x blockWords.
};

} // namespace pim

#endif // PIMCACHE_CACHE_PIM_CACHE_H_
