#include "cache/pim_cache.h"

#include <algorithm>

#include "common/xassert.h"
#include "obs/event_sink.h"

namespace pim {

PimCache::PimCache(PeId pe, const CacheConfig& config, Bus& bus)
    : pe_(pe),
      config_(config),
      bus_(bus),
      proto_(CoherenceProtocol::make(config.protocol)),
      rngState_(config.replacementSeed ^
                (0x9e3779b97f4a7c15ull * (pe + 1))),
      locks_(pe, config.lockEntries, &bus, config.geometry.blockWords),
      blocks_(static_cast<std::size_t>(config.geometry.sets) *
              config.geometry.ways),
      data_(static_cast<std::size_t>(config.geometry.sets) *
            config.geometry.ways * config.geometry.blockWords)
{
    config_.geometry.validate();
    PIM_ASSERT(config_.geometry.blockWords == bus.timing().blockWords,
               "cache block size must match the bus timing block size");
    while ((1u << blockShift_) != config_.geometry.blockWords)
        ++blockShift_;
    setMask_ = config_.geometry.sets - 1;
    if (rngState_ == 0)
        rngState_ = 1; // xorshift64 must not start at zero
    // The Illinois-style ablation predates the protocol zoo and keeps
    // its CLI: it is exactly the PIM protocol with MESI's dirty-share
    // behavior.
    if (config_.copybackOnShare)
        proto_.dirtyShare = DirtyShare::WritebackToMemory;
    bus_.attach(pe_, this, &locks_);
}

std::uint32_t
PimCache::setIndexOf(Addr block_base) const
{
    return static_cast<std::uint32_t>(block_base >> blockShift_) & setMask_;
}

Addr
PimCache::blockBaseOf(Addr addr) const
{
    return addr & ~static_cast<Addr>(config_.geometry.blockWords - 1);
}

PimCache::Block*
PimCache::findBlock(Addr block_base)
{
    const std::uint32_t set = setIndexOf(block_base);
    Block* begin = &blocks_[static_cast<std::size_t>(set) *
                            config_.geometry.ways];
    for (std::uint32_t way = 0; way < config_.geometry.ways; ++way) {
        Block& block = begin[way];
        if (block.state != CacheState::INV && block.base == block_base)
            return &block;
    }
    return nullptr;
}

const PimCache::Block*
PimCache::findBlock(Addr block_base) const
{
    return const_cast<PimCache*>(this)->findBlock(block_base);
}

Word*
PimCache::blockData(const Block& block)
{
    const std::size_t index = &block - blocks_.data();
    return &data_[index * config_.geometry.blockWords];
}

const Word*
PimCache::blockData(const Block& block) const
{
    const std::size_t index = &block - blocks_.data();
    return &data_[index * config_.geometry.blockWords];
}

void
PimCache::touchLru(Block& block)
{
    block.lru = ++lruTick_;
}

void
PimCache::touchOnHit(Block& block)
{
    if (config_.replacement != ReplacementKind::FIFO)
        touchLru(block);
}

PimCache::Block&
PimCache::victimIn(std::uint32_t set)
{
    Block* begin = &blocks_[static_cast<std::size_t>(set) *
                            config_.geometry.ways];
    Block* victim = begin;
    for (std::uint32_t way = 0; way < config_.geometry.ways; ++way) {
        Block& block = begin[way];
        if (block.state == CacheState::INV)
            return block;
        if (block.lru < victim->lru)
            victim = &block;
    }
    // All ways valid: LRU and FIFO both evict the oldest tick (FIFO just
    // never refreshed it on hits); random draws one xorshift step.
    if (config_.replacement == ReplacementKind::Random) {
        rngState_ = replacementRngNext(rngState_);
        return begin[rngState_ % config_.geometry.ways];
    }
    return *victim;
}

PimCache::FetchOutcome
PimCache::fetchBlock(Addr block_base, bool invalidate, bool with_lock,
                     Addr lock_word, bool install, Word* scratch, Cycles now,
                     Area area)
{
    FetchOutcome outcome;
    Block* victim = nullptr;
    bool dirty_victim = false;
    if (install) {
        victim = &victimIn(setIndexOf(block_base));
        dirty_victim = victim->state != CacheState::INV &&
                       cacheStateDirty(victim->state);
    }

    // Fetch into a bounce buffer; only commit the eviction on success.
    Word buffer[64];
    PIM_ASSERT(config_.geometry.blockWords <= 64);
    const FetchResult result =
        bus_.fetch(pe_, block_base, invalidate, with_lock, lock_word,
                   dirty_victim, buffer, now, area);
    if (result.lockHit) {
        outcome.lockWait = true;
        outcome.doneAt = result.completeAt;
        return outcome;
    }

    outcome.supplied = result.supplied;
    outcome.supplierDirty = result.supplierDirty;
    outcome.doneAt = result.completeAt;

    // Injected fault: one bit flips while the fill buffer drains into the
    // data array.
    if (injector_ != nullptr && injector_->fire(FaultSite::BitFlipFill))
        injector_->flipBit(buffer, config_.geometry.blockWords);

    if (install) {
        if (victim->state != CacheState::INV) {
            stats_.evictions += 1;
            if (cacheStateDirty(victim->state)) {
                stats_.swapOuts += 1;
                bus_.writeBackData(victim->base, blockData(*victim));
                if (sink_ != nullptr)
                    sink_->onSwapOut(pe_, victim->base, outcome.doneAt);
            }
            setState(*victim, CacheState::INV, outcome.doneAt);
        }
        victim->base = block_base;
        victim->state = CacheState::INV; // caller sets the final state
        touchLru(*victim);
        std::copy(buffer, buffer + config_.geometry.blockWords,
                  blockData(*victim));
        outcome.block = victim;
    } else if (scratch != nullptr) {
        std::copy(buffer, buffer + config_.geometry.blockWords, scratch);
    }
    if (sink_ != nullptr)
        sink_->onCacheFill(pe_, block_base, outcome.supplied,
                           outcome.supplied && outcome.supplierDirty,
                           outcome.doneAt);
    return outcome;
}

void
PimCache::purgeBlock(Block& block, Cycles when)
{
    stats_.purges += 1;
    const bool was_dirty = cacheStateDirty(block.state);
    if (was_dirty) {
        stats_.purgedDirty += 1;
        bus_.markPurgedDirty(block.base);
    }
    if (sink_ != nullptr)
        sink_->onPurge(pe_, block.base, was_dirty, when);
    setState(block, CacheState::INV, when);
    block.base = kNoAddr;
}

void
PimCache::setState(Block& block, CacheState to, Cycles when)
{
    if (sink_ != nullptr && block.state != to)
        sink_->onCacheTransition(pe_, block.base, block.state, to, when);
    // Keep the bus residency filter exact: every INV <-> valid edge of
    // any block funnels through here (the few direct state writes below
    // notify the bus themselves).
    if (block.state == CacheState::INV && to != CacheState::INV)
        bus_.noteBlockPresent(pe_, block.base);
    else if (block.state != CacheState::INV && to == CacheState::INV)
        bus_.noteBlockAbsent(pe_, block.base);
    block.state = to;
}

void
PimCache::countAccess(const MemRef& ref, bool miss)
{
    stats_.accesses += 1;
    stats_.accessesByArea[static_cast<int>(ref.area)] += 1;
    if (miss) {
        stats_.misses += 1;
        stats_.missesByArea[static_cast<int>(ref.area)] += 1;
    }
}

PimCache::AccessResult
PimCache::access(const MemRef& ref, Word wdata, Cycles now)
{
    PIM_ASSERT(ref.pe == pe_, "reference routed to the wrong PE cache");
    if (config_.writeThrough && demoteMemOp(ref.op) != ref.op) {
        // The optimized commands presuppose copy-back; the write-through
        // baseline executes their plain equivalents.
        MemRef plain = ref;
        plain.op = demoteMemOp(ref.op);
        return access(plain, wdata, now);
    }
    switch (ref.op) {
      case MemOp::R:  return doRead(ref, now);
      case MemOp::W:  return doWrite(ref, wdata, now);
      case MemOp::LR: return doLockRead(ref, now);
      case MemOp::UW: return doUnlock(ref, true, wdata, now);
      case MemOp::U:  return doUnlock(ref, false, 0, now);
      case MemOp::DW: return doDirectWrite(ref, wdata, false, now);
      case MemOp::DWD: return doDirectWrite(ref, wdata, true, now);
      case MemOp::ER: return doExclusiveRead(ref, now);
      case MemOp::RP: return doReadPurge(ref, now);
      case MemOp::RI: return doReadInvalidate(ref, now);
    }
    PIM_PANIC("unknown memory operation");
}

PimCache::AccessResult
PimCache::doRead(const MemRef& ref, Cycles now)
{
    AccessResult result;
    const Addr base = blockBaseOf(ref.addr);
    // Injected fault: the tag match is silently dropped — the copy (dirty
    // or not) vanishes without copy-back and the read refetches.
    if (injector_ != nullptr && injector_->fire(FaultSite::ForcedMiss)) {
        if (Block* block = findBlock(base)) {
            bus_.noteBlockAbsent(pe_, block->base);
            block->state = CacheState::INV;
            block->base = kNoAddr;
        }
    }
    if (Block* block = findBlock(base)) {
        touchOnHit(*block);
        result.data = blockData(*block)[ref.addr - base];
        result.doneAt = now + config_.hitCycles;
        countAccess(ref, false);
        return result;
    }
    const FetchOutcome outcome =
        fetchBlock(base, false, false, 0, true, nullptr, now, ref.area);
    if (outcome.lockWait) {
        result.lockWait = true;
        result.waitAddr = base;
        result.doneAt = outcome.doneAt;
        return result;
    }
    Block& block = *outcome.block;
    CacheState install =
        proto_.installOnReadMiss(outcome.supplied, outcome.supplierDirty);
    // Seeded bug MsiMissAsExclusive: the EC install of the EC-bearing
    // protocols leaks into MSI, enabling a later silent write.
    if (mutation_ == ProtocolMutation::MsiMissAsExclusive &&
        !outcome.supplied) {
        install = CacheState::EC;
    }
    setState(block, install, outcome.doneAt);
    result.data = blockData(block)[ref.addr - base];
    result.doneAt = outcome.doneAt;
    countAccess(ref, true);
    return result;
}

PimCache::AccessResult
PimCache::doWrite(const MemRef& ref, Word wdata, Cycles now)
{
    AccessResult result;
    const Addr base = blockBaseOf(ref.addr);
    if (config_.writeThrough) {
        // Every write goes on the bus; no allocation on a write miss;
        // our copy (if any) stays valid and is now the only one.
        if (Block* block = findBlock(base)) {
            blockData(*block)[ref.addr - base] = wdata;
            setState(*block, CacheState::EC, now);
            touchOnHit(*block);
        }
        result.doneAt =
            bus_.writeWordThrough(pe_, ref.addr, wdata, now, ref.area);
        countAccess(ref, false);
        return result;
    }
    if (Block* block = findBlock(base)) {
        touchOnHit(*block);
        const bool shared =
            block->state == CacheState::S || block->state == CacheState::SM;
        if (shared && proto_.updateOnSharedWrite) {
            // Dragon: keep the sharers, broadcast the written word. Our
            // copy becomes the dirty owner (Sm while sharers remain, M
            // once we are alone). Seeded bug DragonUpdateSkipsSharers
            // takes the block exclusive without the broadcast.
            blockData(*block)[ref.addr - base] = wdata;
            if (mutation_ == ProtocolMutation::DragonUpdateSkipsSharers) {
                setState(*block, CacheState::EM, now + config_.hitCycles);
                result.doneAt = now + config_.hitCycles;
            } else {
                const UpdateResult upd =
                    bus_.updateWord(pe_, ref.addr, wdata, now, ref.area);
                setState(*block,
                         upd.sharerPresent ? CacheState::SM : CacheState::EM,
                         upd.completeAt);
                result.doneAt = upd.completeAt;
            }
            countAccess(ref, false);
            return result;
        }
        // Seeded bug WriteSharedSkipsInv: write the shared copy in place
        // without the I broadcast, leaving remote copies to diverge.
        if (shared &&
            mutation_ != ProtocolMutation::WriteSharedSkipsInv) {
            const InvalidateResult inv =
                bus_.invalidate(pe_, base, false, 0, now, ref.area);
            result.doneAt = inv.completeAt;
        } else {
            result.doneAt = now + config_.hitCycles;
        }
        setState(*block, CacheState::EM, result.doneAt);
        blockData(*block)[ref.addr - base] = wdata;
        countAccess(ref, false);
        return result;
    }
    // Write miss: fetch-on-write with invalidation (FI). Dragon instead
    // fetches with plain F and, if another cache supplied (so sharers
    // survive), broadcasts the written word to them.
    const bool update_miss = proto_.updateOnSharedWrite;
    const FetchOutcome outcome =
        fetchBlock(base, !update_miss, false, 0, true, nullptr, now,
                   ref.area);
    if (outcome.lockWait) {
        result.lockWait = true;
        result.waitAddr = base;
        result.doneAt = outcome.doneAt;
        return result;
    }
    Block& block = *outcome.block;
    if (update_miss && outcome.supplied &&
        mutation_ != ProtocolMutation::DragonUpdateSkipsSharers) {
        blockData(block)[ref.addr - base] = wdata;
        const UpdateResult upd =
            bus_.updateWord(pe_, ref.addr, wdata, outcome.doneAt, ref.area);
        setState(block,
                 upd.sharerPresent ? CacheState::SM : CacheState::EM,
                 upd.completeAt);
        result.doneAt = upd.completeAt;
    } else {
        setState(block, CacheState::EM, outcome.doneAt);
        blockData(block)[ref.addr - base] = wdata;
        result.doneAt = outcome.doneAt;
    }
    countAccess(ref, true);
    return result;
}

PimCache::AccessResult
PimCache::doLockRead(const MemRef& ref, Cycles now)
{
    AccessResult result;
    const Addr base = blockBaseOf(ref.addr);
    Block* block = findBlock(base);

    if (block != nullptr && cacheStateExclusive(block->state)) {
        // Zero-bus-cycle lock: the paper's key lock optimization.
        locks_.acquire(ref.addr, now + config_.hitCycles);
        touchOnHit(*block);
        result.data = blockData(*block)[ref.addr - base];
        result.doneAt = now + config_.hitCycles;
        countAccess(ref, false);
        stats_.lrCount += 1;
        stats_.lrHit += 1;
        stats_.lrHitExclusive += 1;
        return result;
    }

    if (block != nullptr) {
        // Shared hit: LK rides with an I command to gain exclusiveness.
        const InvalidateResult inv =
            bus_.invalidate(pe_, base, true, ref.addr, now, ref.area);
        if (inv.lockHit) {
            stats_.lrLockWaits += 1;
            result.lockWait = true;
            result.waitAddr = base;
            result.doneAt = inv.completeAt;
            return result;
        }
        // If the invalidation dropped a dirty remote copy, its dirtiness
        // migrates here; otherwise keep our own cleanliness (MSI, with no
        // EC state, always lands in EM).
        setState(*block,
                 proto_.upgradeToExclusive(cacheStateDirty(block->state),
                                           inv.droppedDirty),
                 inv.completeAt);
        locks_.acquire(ref.addr, inv.completeAt);
        touchOnHit(*block);
        result.data = blockData(*block)[ref.addr - base];
        result.doneAt = inv.completeAt;
        countAccess(ref, false);
        stats_.lrCount += 1;
        stats_.lrHit += 1;
        return result;
    }

    // Miss: LK rides with FI.
    const FetchOutcome outcome =
        fetchBlock(base, true, true, ref.addr, true, nullptr, now, ref.area);
    if (outcome.lockWait) {
        stats_.lrLockWaits += 1;
        result.lockWait = true;
        result.waitAddr = base;
        result.doneAt = outcome.doneAt;
        return result;
    }
    Block& fetched = *outcome.block;
    setState(fetched, proto_.installOnExclusiveFetch(outcome.supplierDirty),
             outcome.doneAt);
    locks_.acquire(ref.addr, outcome.doneAt);
    result.data = blockData(fetched)[ref.addr - base];
    result.doneAt = outcome.doneAt;
    countAccess(ref, true);
    stats_.lrCount += 1;
    return result;
}

PimCache::AccessResult
PimCache::doUnlock(const MemRef& ref, bool write, Word wdata, Cycles now)
{
    PIM_ASSERT(locks_.holds(ref.addr), "pe", pe_,
               " unlocking an address it did not lock: ", ref.addr);
    AccessResult result;
    const Addr base = blockBaseOf(ref.addr);
    Block* block = findBlock(base);
    bool miss = false;
    Cycles when = now;

    if (write && config_.writeThrough) {
        if (block != nullptr) {
            blockData(*block)[ref.addr - base] = wdata;
            setState(*block, CacheState::EC, now);
            touchOnHit(*block);
        }
        when = bus_.writeWordThrough(pe_, ref.addr, wdata, now, ref.area);
    } else if (write) {
        if (block == nullptr) {
            // The locked block was swapped out while locked; refetch.
            // Remote lock directories cannot answer LH here: while we
            // hold a lock in this block, no other PE can acquire one.
            const FetchOutcome outcome = fetchBlock(
                base, true, false, 0, true, nullptr, now, ref.area);
            PIM_ASSERT(!outcome.lockWait,
                       "UW inhibited by a foreign lock in a block this PE "
                       "holds locked");
            block = outcome.block;
            setState(*block,
                     proto_.installOnExclusiveFetch(outcome.supplierDirty),
                     outcome.doneAt);
            when = outcome.doneAt;
            miss = true;
        }
        if (!cacheStateExclusive(block->state)) {
            // MSI only: with no EC state, a plain read that refetched
            // the locked block installs S even though the lock
            // inhibition guarantees we are the sole holder. Pay the
            // upgrade broadcast a real MSI controller issues before
            // the unlocking write.
            PIM_ASSERT(!proto_.hasExclusiveClean,
                       "locked block unexpectedly shared on UW");
            const InvalidateResult inv =
                bus_.invalidate(pe_, base, false, 0, when, ref.area);
            when = inv.completeAt;
        }
        setState(*block, CacheState::EM, when);
        blockData(*block)[ref.addr - base] = wdata;
        touchOnHit(*block);
    }

    bool had_waiter = locks_.release(ref.addr, when);
    // Seeded bug UnlockDropsUl: skip the UL broadcast, so parked PEs
    // busy-wait on a lock that is already free.
    if (mutation_ == ProtocolMutation::UnlockDropsUl)
        had_waiter = false;
    stats_.unlockCount += 1;
    if (had_waiter) {
        result.doneAt = bus_.unlockBroadcast(pe_, ref.addr, when, ref.area);
    } else {
        stats_.unlockNoWaiter += 1;
        result.doneAt = std::max(when, now + config_.hitCycles);
    }
    countAccess(ref, miss);
    return result;
}

PimCache::AccessResult
PimCache::doDirectWrite(const MemRef& ref, Word wdata, bool downward,
                        Cycles now)
{
    const Addr base = blockBaseOf(ref.addr);
    // DW allocates at the first word of a block (upward-growing areas);
    // DWD at the last word (downward-growing stacks) — the "two
    // commands" of paper Section 3.2.
    const bool boundary =
        downward ? ref.addr == base + config_.geometry.blockWords - 1
                 : ref.addr == base;
    if (!boundary || findBlock(base) != nullptr) {
        // Rule (ii): the controller automatically replaces DW with W.
        stats_.dwDemoted += 1;
        return doWrite(ref, wdata, now);
    }

    // Rule (i): allocate without fetching from shared memory. Software
    // guarantees no remote cache holds this block.
    AccessResult result;
    Block& victim = victimIn(setIndexOf(base));
    Cycles done = now + config_.hitCycles;
    if (victim.state != CacheState::INV) {
        stats_.evictions += 1;
        if (cacheStateDirty(victim.state)) {
            stats_.swapOuts += 1;
            stats_.dwSwapOutOnly += 1;
            done = bus_.swapOutOnly(pe_, victim.base, blockData(victim), now,
                                    ref.area);
            if (sink_ != nullptr)
                sink_->onSwapOut(pe_, victim.base, done);
        }
        setState(victim, CacheState::INV, done);
    }
    victim.base = base;
    setState(victim, CacheState::EM, done);
    touchLru(victim);
    Word* words = blockData(victim);
    std::fill(words, words + config_.geometry.blockWords, Word{0});
    words[ref.addr - base] = wdata;
    bus_.noteFreshAllocation(base);
    stats_.dwAllocNoFetch += 1;
    result.doneAt = done;
    countAccess(ref, false);
    return result;
}

PimCache::AccessResult
PimCache::doExclusiveRead(const MemRef& ref, Cycles now)
{
    const Addr base = blockBaseOf(ref.addr);
    const bool last_word =
        ref.addr - base == config_.geometry.blockWords - 1;
    Block* block = findBlock(base);

    if (block != nullptr && last_word) {
        // Case (ii): read the last word, then purge our own copy.
        AccessResult result;
        result.data = blockData(*block)[ref.addr - base];
        stats_.erAsRp += 1;
        purgeBlock(*block, now + config_.hitCycles);
        result.doneAt = now + config_.hitCycles;
        countAccess(ref, false);
        return result;
    }

    if (block == nullptr && !last_word) {
        // Case (i): read-invalidate the supplier (FI fetch). Seeded bug
        // ErKeepsSupplier fetches with plain F instead, leaving the
        // supplier's copy alive next to our exclusive one.
        AccessResult result;
        const bool invalidate =
            mutation_ != ProtocolMutation::ErKeepsSupplier;
        const FetchOutcome outcome = fetchBlock(base, invalidate, false, 0,
                                                true, nullptr, now, ref.area);
        if (outcome.lockWait) {
            result.lockWait = true;
            result.waitAddr = base;
            result.doneAt = outcome.doneAt;
            return result;
        }
        Block& fetched = *outcome.block;
        setState(fetched,
                 proto_.installOnExclusiveFetch(outcome.supplierDirty),
                 outcome.doneAt);
        result.data = blockData(fetched)[ref.addr - base];
        result.doneAt = outcome.doneAt;
        stats_.erAsRi += 1;
        countAccess(ref, true);
        return result;
    }

    // Case (iii): plain read.
    stats_.erAsR += 1;
    return doRead(ref, now);
}

PimCache::AccessResult
PimCache::doReadPurge(const MemRef& ref, Cycles now)
{
    AccessResult result;
    const Addr base = blockBaseOf(ref.addr);
    stats_.rpCount += 1;
    if (Block* block = findBlock(base)) {
        // Case (i): read, then purge our own copy.
        result.data = blockData(*block)[ref.addr - base];
        purgeBlock(*block, now + config_.hitCycles);
        result.doneAt = now + config_.hitCycles;
        countAccess(ref, false);
        return result;
    }
    // Case (ii): fetch (invalidating any supplier), read, do not keep.
    Word scratch[64];
    PIM_ASSERT(config_.geometry.blockWords <= 64);
    const FetchOutcome outcome =
        fetchBlock(base, true, false, 0, false, scratch, now, ref.area);
    if (outcome.lockWait) {
        result.lockWait = true;
        result.waitAddr = base;
        result.doneAt = outcome.doneAt;
        return result;
    }
    if (outcome.supplied && outcome.supplierDirty) {
        // The dirty contents are dead by contract; dropping them without
        // copy-back is the swap-out this command exists to avoid.
        bus_.markPurgedDirty(base);
    }
    result.data = scratch[ref.addr - base];
    result.doneAt = outcome.doneAt;
    countAccess(ref, true);
    return result;
}

PimCache::AccessResult
PimCache::doReadInvalidate(const MemRef& ref, Cycles now)
{
    const Addr base = blockBaseOf(ref.addr);
    stats_.riCount += 1;
    if (findBlock(base) != nullptr)
        return doRead(ref, now);

    // Miss: fetch with invalidation so the imminent rewrite needs no I.
    AccessResult result;
    const FetchOutcome outcome =
        fetchBlock(base, true, false, 0, true, nullptr, now, ref.area);
    if (outcome.lockWait) {
        result.lockWait = true;
        result.waitAddr = base;
        result.doneAt = outcome.doneAt;
        return result;
    }
    Block& block = *outcome.block;
    setState(block, proto_.installOnExclusiveFetch(outcome.supplierDirty),
             outcome.doneAt);
    result.data = blockData(block)[ref.addr - base];
    result.doneAt = outcome.doneAt;
    stats_.riExclusive += 1;
    countAccess(ref, true);
    return result;
}

void
PimCache::flushAll()
{
    // One flush event for the whole cache: the raw state writes below
    // bypass setState, so residency-mirroring sinks reset on this
    // instead of per-block transitions.
    if (sink_ != nullptr)
        sink_->onCacheFlush(pe_);
    snoopVersion_ += 1;
    for (Block& block : blocks_) {
        if (block.state == CacheState::INV)
            continue;
        if (cacheStateDirty(block.state))
            bus_.writeMemoryBlock(block.base, blockData(block));
        bus_.noteBlockAbsent(pe_, block.base);
        block.state = CacheState::INV;
        block.base = kNoAddr;
    }
}

bool
PimCache::opIsPrivateHit(MemOp op, Addr addr) const
{
    // The write-through baseline executes the plain equivalents of the
    // optimized commands (see access()), and puts every write on the
    // bus, so only reads can be private there.
    if (config_.writeThrough && demoteMemOp(op) != op)
        op = demoteMemOp(op);
    const Addr base = blockBaseOf(addr);
    const Block* block = findBlock(base);
    const bool writable_hit =
        !config_.writeThrough && block != nullptr &&
        block->state != CacheState::S && block->state != CacheState::SM;
    switch (op) {
      case MemOp::R:
        // doRead hit: data + hitCycles, no bus.
        return block != nullptr;
      case MemOp::W:
        // doWrite on an exclusive copy: in-place write, EC -> EM needs
        // no residency change. A shared copy invalidates (or Dragon-
        // updates) over the bus; a miss fetches.
        return writable_hit;
      case MemOp::LR:
      case MemOp::UW:
      case MemOp::U:
        // Every lock operation touches the lock directory, whose
        // residency the bus filter mirrors, and U/UW may broadcast UL.
        return false;
      case MemOp::DW:
      case MemOp::DWD: {
        const bool boundary =
            op == MemOp::DWD
                ? addr == base + config_.geometry.blockWords - 1
                : addr == base;
        // Rule (ii) demotes to W; rule (i) allocates, which changes
        // residency (and may swap out a victim over the bus).
        if (!boundary || block != nullptr)
            return writable_hit;
        return false;
      }
      case MemOp::ER:
        // Case (iii) — present and not the last word — is a plain read
        // hit. Case (ii) purges (residency change); case (i) fetches.
        return block != nullptr &&
               addr - base != config_.geometry.blockWords - 1;
      case MemOp::RP:
        // Both RP cases purge or fetch.
        return false;
      case MemOp::RI:
        // Present: doRead hit. Absent: FI fetch.
        return block != nullptr;
    }
    return false;
}

CacheState
PimCache::stateOf(Addr addr) const
{
    const Block* block = findBlock(blockBaseOf(addr));
    return block == nullptr ? CacheState::INV : block->state;
}

bool
PimCache::present(Addr addr) const
{
    return findBlock(blockBaseOf(addr)) != nullptr;
}

Word
PimCache::loadValue(Addr addr) const
{
    const Addr base = blockBaseOf(addr);
    if (const Block* block = findBlock(base))
        return blockData(*block)[addr - base];
    return bus_.memory().read(addr);
}

void
PimCache::snapshotState(Addr lo, Addr hi,
                        std::vector<std::uint64_t>& out) const
{
    // Valid blocks in range, in address order (the set/way layout is an
    // implementation detail; two caches holding the same blocks in the
    // same states must snapshot equal).
    std::vector<const Block*> valid;
    for (const Block& block : blocks_) {
        if (block.state != CacheState::INV && block.base >= lo &&
            block.base < hi) {
            valid.push_back(&block);
        }
    }
    std::sort(valid.begin(), valid.end(),
              [](const Block* a, const Block* b) { return a->base < b->base; });
    out.push_back(valid.size());
    for (const Block* block : valid) {
        out.push_back(block->base);
        out.push_back(static_cast<std::uint64_t>(block->state));
        // Replacement order matters to future behavior, absolute LRU
        // ticks do not: record the rank of this block among the valid
        // blocks of its set.
        const std::uint32_t set = setIndexOf(block->base);
        const Block* begin =
            &blocks_[static_cast<std::size_t>(set) * config_.geometry.ways];
        std::uint64_t rank = 0;
        for (std::uint32_t way = 0; way < config_.geometry.ways; ++way) {
            const Block& other = begin[way];
            if (other.state != CacheState::INV && other.lru < block->lru)
                rank += 1;
        }
        out.push_back(rank);
        const Word* words = blockData(*block);
        for (std::uint32_t w = 0; w < config_.geometry.blockWords; ++w)
            out.push_back(words[w]);
    }
    locks_.snapshotState(out);
    // The random policy's RNG decides future victims, so states that
    // differ only in it must not merge. Appended only for that policy to
    // keep the default snapshot (and protocol hashes) byte-identical.
    if (config_.replacement == ReplacementKind::Random)
        out.push_back(rngState_);
}

BusSnooper::FetchReply
PimCache::snoopFetch(Addr block_addr, bool invalidate, Word* data_out,
                     Cycles when)
{
    Block* block = findBlock(block_addr);
    if (block == nullptr)
        return {false, false};
    snoopVersion_ += 1;

    std::copy(blockData(*block),
              blockData(*block) + config_.geometry.blockWords, data_out);
    const bool was_dirty = cacheStateDirty(block->state);

    if (invalidate) {
        setState(*block, CacheState::INV, when);
        block->base = kNoAddr;
        return {true, was_dirty};
    }

    if (was_dirty) {
        switch (proto_.dirtyShare) {
          case DirtyShare::WritebackToMemory:
            // MSI/MESI (and the Illinois-style copybackOnShare
            // baseline): shared memory snarfs the transfer, the block
            // becomes clean everywhere. Seeded bug
            // MesiShareSkipsWriteback drops the snarf but still reports
            // clean: everyone clean over stale memory.
            if (mutation_ != ProtocolMutation::MesiShareSkipsWriteback)
                bus_.writeBackData(block_addr, blockData(*block));
            setState(*block, CacheState::S, when);
            return {true, false};
          case DirtyShare::KeepOwnership:
            // MOESI/Dragon: stay the dirty owner (SM as O/Sm); the
            // receiver installs clean S. Seeded bug MoesiOwnerDropsDirty
            // downgrades to clean S instead, losing the only record that
            // memory is stale.
            if (mutation_ == ProtocolMutation::MoesiOwnerDropsDirty) {
                setState(*block, CacheState::S, when);
            } else {
                setState(*block, CacheState::SM, when);
            }
            return {true, false};
          case DirtyShare::MigrateToReceiver:
            break; // PIM: fall through to the SM-migration share.
        }
    }

    setState(*block, CacheState::S, when);
    // Seeded bug SmSharedAsClean: a dirty supplier reports its data as
    // clean, so the receiver installs S instead of SM and nobody
    // remembers that shared memory is stale.
    if (mutation_ == ProtocolMutation::SmSharedAsClean)
        return {true, false};
    return {true, was_dirty};
}

bool
PimCache::snoopUpdate(Addr word_addr, Word value, Cycles when)
{
    const Addr base = blockBaseOf(word_addr);
    Block* block = findBlock(base);
    if (block == nullptr)
        return false;
    snoopVersion_ += 1;
    blockData(*block)[word_addr - base] = value;
    // Dirty ownership migrates to the writer; every snarfing copy is
    // clean shared (Dragon Sc) afterwards.
    if (block->state != CacheState::S)
        setState(*block, CacheState::S, when);
    return true;
}

bool
PimCache::snoopInvalidate(Addr block_addr, Cycles when)
{
    Block* block = findBlock(block_addr);
    if (block == nullptr)
        return false;
    snoopVersion_ += 1;
    const bool was_dirty = cacheStateDirty(block->state);
    setState(*block, CacheState::INV, when);
    block->base = kNoAddr;
    return was_dirty;
}

} // namespace pim
