/**
 * @file
 * Cache geometry and controller configuration.
 */

#ifndef PIMCACHE_CACHE_CONFIG_H_
#define PIMCACHE_CACHE_CONFIG_H_

#include <cstdint>

#include "cache/protocol.h"
#include "cache/replacement.h"
#include "common/xassert.h"

namespace pim {

/**
 * Set-associative cache geometry. The paper's base configuration is a
 * four-Kword, four-way, 256-column cache with four-word blocks.
 */
struct CacheGeometry {
    std::uint32_t blockWords = 4;
    std::uint32_t ways = 4;
    std::uint32_t sets = 256;

    /** Data capacity in words. */
    std::uint64_t
    capacityWords() const
    {
        return static_cast<std::uint64_t>(blockWords) * ways * sets;
    }

    /** Derive the set count from a target capacity. */
    static CacheGeometry
    forCapacity(std::uint64_t capacity_words, std::uint32_t block_words,
                std::uint32_t ways)
    {
        CacheGeometry geom;
        geom.blockWords = block_words;
        geom.ways = ways;
        PIM_ASSERT(capacity_words %
                       (static_cast<std::uint64_t>(block_words) * ways) == 0,
                   "capacity not divisible by block*ways");
        geom.sets = static_cast<std::uint32_t>(
            capacity_words / (static_cast<std::uint64_t>(block_words) *
                              ways));
        geom.validate();
        return geom;
    }

    /** Sanity-check: power-of-two sets and block size. */
    void
    validate() const
    {
        PIM_ASSERT(blockWords >= 1 && (blockWords & (blockWords - 1)) == 0,
                   "block size must be a power of two");
        PIM_ASSERT(sets >= 1 && (sets & (sets - 1)) == 0,
                   "set count must be a power of two");
        PIM_ASSERT(ways >= 1);
    }

    /**
     * Total storage bits including the directory, as plotted on the
     * x-axis of the paper's Figure 2 (5-byte = 40-bit data words; a
     * "four-Kword cache" is about 190000 bits).
     */
    std::uint64_t
    storageBits(std::uint32_t word_bits = 40,
                std::uint32_t addr_bits = 32) const
    {
        const std::uint64_t data_bits = capacityWords() * word_bits;
        std::uint32_t index_bits = 0;
        for (std::uint32_t v = sets * blockWords; v > 1; v >>= 1)
            ++index_bits;
        const std::uint32_t tag_bits =
            addr_bits > index_bits ? addr_bits - index_bits : 1;
        // Tag + 3 state bits + 2 LRU bits per block.
        const std::uint64_t dir_bits =
            static_cast<std::uint64_t>(sets) * ways * (tag_bits + 3 + 2);
        return data_bits + dir_bits;
    }
};

/** Full per-PE cache controller configuration. */
struct CacheConfig {
    CacheGeometry geometry;

    /** Lock-directory entries (the paper suggests one or two suffice). */
    std::uint32_t lockEntries = 2;

    /**
     * Illinois-style baseline: copy dirty blocks back to shared memory
     * on cache-to-cache transfer (no SM state). Used by the SM-state
     * ablation bench.
     */
    bool copybackOnShare = false;

    /**
     * Write-through baseline (Goodman's motivation for copy-back):
     * every write is a bus transaction updating shared memory and
     * invalidating remote copies; blocks are never dirty; write misses
     * do not allocate; the optimized commands demote to plain R/W.
     */
    bool writeThrough = false;

    /** Processor-visible latency of a cache hit, in cycles. */
    std::uint32_t hitCycles = 1;

    /**
     * Coherence protocol variant (docs/ARCHITECTURE.md "Protocol
     * matrix"). The default PIM table reproduces the paper's 5-state
     * protocol byte-identically; copybackOnShare above still overrides
     * the dirty-share behavior for the SM-state ablation.
     */
    ProtocolKind protocol = ProtocolKind::PIM;

    /** Replacement policy (LRU = the pre-refactor behavior). */
    ReplacementKind replacement = ReplacementKind::LRU;

    /** Seed for the random replacement policy's xorshift64. */
    std::uint64_t replacementSeed = 1;
};

} // namespace pim

#endif // PIMCACHE_CACHE_CONFIG_H_
