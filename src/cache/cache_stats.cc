#include "cache/cache_stats.h"

namespace pim {

void
CacheStats::merge(const CacheStats& other)
{
    accesses += other.accesses;
    misses += other.misses;
    for (int a = 0; a < kNumAreaSlots; ++a) {
        accessesByArea[a] += other.accessesByArea[a];
        missesByArea[a] += other.missesByArea[a];
    }
    evictions += other.evictions;
    swapOuts += other.swapOuts;
    lrCount += other.lrCount;
    lrHit += other.lrHit;
    lrHitExclusive += other.lrHitExclusive;
    lrLockWaits += other.lrLockWaits;
    unlockCount += other.unlockCount;
    unlockNoWaiter += other.unlockNoWaiter;
    dwAllocNoFetch += other.dwAllocNoFetch;
    dwDemoted += other.dwDemoted;
    dwSwapOutOnly += other.dwSwapOutOnly;
    erAsRi += other.erAsRi;
    erAsRp += other.erAsRp;
    erAsR += other.erAsR;
    rpCount += other.rpCount;
    riCount += other.riCount;
    riExclusive += other.riExclusive;
    purges += other.purges;
    purgedDirty += other.purgedDirty;
    staleReads += other.staleReads;
}

} // namespace pim
