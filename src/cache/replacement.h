/**
 * @file
 * Pluggable replacement policy for the set-associative cache.
 *
 * The victim choice is INV-way-first in every policy (an empty way is
 * always free); the policies differ in which *valid* way they evict:
 *
 *   lru    — least-recently-used: the per-block tick is refreshed on
 *            every hit and install. This is the pre-refactor behavior
 *            and the default (byte-identical).
 *   fifo   — oldest-installed: the tick is written only at install, so
 *            hits do not rejuvenate a block.
 *   random — a seeded xorshift64 picks the way; deterministic for a
 *            given seed, and the RNG state joins the protocol snapshot
 *            so the conformance explorer never merges states that would
 *            diverge on a future eviction.
 */

#ifndef PIMCACHE_CACHE_REPLACEMENT_H_
#define PIMCACHE_CACHE_REPLACEMENT_H_

#include <cstdint>
#include <string>

namespace pim {

/** Which valid way a full set evicts. */
enum class ReplacementKind : std::uint8_t {
    LRU = 0,    ///< Default; byte-identical to the pre-refactor cache.
    FIFO = 1,   ///< Install-order eviction.
    Random = 2, ///< Seeded xorshift64 way choice.
};

inline constexpr int kNumReplacementKinds = 3;

/** Stable CLI name ("lru", "fifo", "random"). */
inline const char*
replacementKindName(ReplacementKind kind)
{
    switch (kind) {
      case ReplacementKind::LRU:    return "lru";
      case ReplacementKind::FIFO:   return "fifo";
      case ReplacementKind::Random: return "random";
    }
    return "?";
}

/** Parse a CLI name; returns false if @p name is unknown. */
inline bool
parseReplacementKind(const std::string& name, ReplacementKind* out)
{
    for (int i = 0; i < kNumReplacementKinds; ++i) {
        const auto kind = static_cast<ReplacementKind>(i);
        if (name == replacementKindName(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

/** One xorshift64 step (the random policy's generator). */
inline std::uint64_t
replacementRngNext(std::uint64_t state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

} // namespace pim

#endif // PIMCACHE_CACHE_REPLACEMENT_H_
