/**
 * @file
 * Cache-block and lock-directory states (paper Section 3.1).
 */

#ifndef PIMCACHE_CACHE_STATE_H_
#define PIMCACHE_CACHE_STATE_H_

#include <cstdint>

namespace pim {

/**
 * The five PIM cache states. This is the Illinois protocol plus SM: a
 * block received dirty via cache-to-cache transfer stays dirty in the
 * receiver (no copy-back to shared memory during the transfer), but may
 * be shared with the supplier's (clean) copy.
 */
enum class CacheState : std::uint8_t {
    INV = 0, ///< Invalid.
    S = 1,   ///< Shared (perhaps), unmodified: no swap-out needed.
    SM = 2,  ///< Shared (perhaps), modified: swap-out needed.
    EC = 3,  ///< Exclusive clean: no swap-out needed.
    EM = 4,  ///< Exclusive modified: swap-out needed.
};

/** Mnemonic as used in the paper. */
inline const char*
cacheStateName(CacheState state)
{
    switch (state) {
      case CacheState::INV: return "INV";
      case CacheState::S:   return "S";
      case CacheState::SM:  return "SM";
      case CacheState::EC:  return "EC";
      case CacheState::EM:  return "EM";
    }
    return "?";
}

/** The block's data differs from shared memory (swap-out needed). */
inline bool
cacheStateDirty(CacheState state)
{
    return state == CacheState::EM || state == CacheState::SM;
}

/** No other cache may hold the block. */
inline bool
cacheStateExclusive(CacheState state)
{
    return state == CacheState::EM || state == CacheState::EC;
}

/** Lock-directory entry states (paper Section 3.1). */
enum class LockState : std::uint8_t {
    EMP = 0,   ///< Empty entry.
    LCK = 1,   ///< Locked; no other PE is waiting.
    LWAIT = 2, ///< Locked; one or more PEs are busy-waiting.
};

/** Mnemonic as used in the paper. */
inline const char*
lockStateName(LockState state)
{
    switch (state) {
      case LockState::EMP:   return "EMP";
      case LockState::LCK:   return "LCK";
      case LockState::LWAIT: return "LWAIT";
    }
    return "?";
}

} // namespace pim

#endif // PIMCACHE_CACHE_STATE_H_
