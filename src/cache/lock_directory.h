/**
 * @file
 * The per-PE hardware lock directory (paper Section 3.1).
 *
 * Separate from the cache directory so that (a) individual words of one
 * block can be locked independently, (b) locks survive the swap-out of
 * the block holding the locked word, and (c) cache tags carry no lock
 * state. The directory snoops the bus: any remote F/FI/LK touching a
 * block that contains a locked word is answered with LH and the entry
 * moves LCK -> LWAIT, guaranteeing the eventual UL broadcast.
 */

#ifndef PIMCACHE_CACHE_LOCK_DIRECTORY_H_
#define PIMCACHE_CACHE_LOCK_DIRECTORY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "bus/bus.h"
#include "cache/state.h"
#include "common/types.h"
#include "fault/fault_injector.h"

namespace pim {

/** Word-granularity busy-wait lock directory for one PE. */
class LockDirectory : public LockSnooper
{
  public:
    /**
     * @param owner PE owning this directory.
     * @param entries Number of simultaneously held locks supported.
     * @param bus Bus whose residency filter to keep exact (nullptr for
     *        a standalone directory, e.g. unit tests).
     * @param block_words Block size used to map lock words to the
     *        block-granular residency masks (required when @p bus set).
     */
    LockDirectory(PeId owner, std::uint32_t entries, Bus* bus = nullptr,
                  std::uint32_t block_words = 0);

    /**
     * Register a lock on @p word_addr in the LCK state at local time
     * @p when. Fatal if the directory is full or the word is already
     * locked by this PE (the KL1 engine locks at most `entries` words,
     * in address order).
     */
    void acquire(Addr word_addr, Cycles when = 0);

    /** True if this PE currently holds a lock on @p word_addr. */
    bool holds(Addr word_addr) const;

    /** State of the entry for @p word_addr (EMP if absent). */
    LockState stateOf(Addr word_addr) const;

    /**
     * Drop the lock on @p word_addr at local time @p when.
     * @return true if the entry was in LWAIT, i.e. a UL broadcast is
     * required.
     */
    bool release(Addr word_addr, Cycles when = 0);

    /** Number of currently held locks. */
    std::uint32_t heldCount() const;

    /** Entries supported. */
    std::uint32_t capacity() const { return entries_; }

    /** All occupied entries as (word address, state), for diagnostics. */
    std::vector<std::pair<Addr, LockState>> entries() const;

    /**
     * Append a canonical description of the directory to @p out:
     * occupied entries in address order (slot assignment is an
     * implementation detail), then ghost words. Part of the protocol
     * state snapshot used by the conformance engine (src/model).
     */
    void snapshotState(std::vector<std::uint64_t>& out) const;

    /**
     * Attach a fault injector (nullptr to detach). Sites: LostUnlock (a
     * release with waiters returns "no UL needed", so parked PEs never
     * wake) and StuckLwait (a released LWAIT entry leaves a ghost that
     * answers LH forever).
     */
    void
    setFaultInjector(FaultInjector* injector)
    {
        injector_ = injector;
    }

    /**
     * Attach an observability sink (nullptr to detach): every entry state
     * change (EMP->LCK on acquire, LCK/LWAIT->EMP on release, LCK->LWAIT
     * on a remote lock-hit snoop) is reported with this PE as the owner.
     */
    void setEventSink(EventSink* sink) { sink_ = sink; }

    /** Ghost LWAIT words left behind by injected StuckLwait faults. */
    std::uint32_t ghostCount() const
    {
        return static_cast<std::uint32_t>(ghosts_.size());
    }

    /** The ghost words themselves (diagnostics). */
    const std::vector<Addr>& ghostWords() const { return ghosts_; }

    // LockSnooper interface -----------------------------------------------
    bool snoopLockCheck(Addr block_addr, std::uint32_t block_words,
                        Cycles when) override;

  private:
    struct Entry {
        Addr addr = kNoAddr;
        LockState state = LockState::EMP;
    };

    /**
     * Re-derive whether any entry or ghost falls in the block of
     * @p word_addr and push the answer into the bus residency filter
     * (no-op for a standalone directory).
     */
    void refreshResidency(Addr word_addr);

    PeId owner_;
    std::uint32_t entries_;
    Bus* bus_ = nullptr;          ///< Residency filter target (optional).
    std::uint32_t blockWords_ = 0; ///< Block size for residency mapping.
    std::vector<Entry> slots_;
    FaultInjector* injector_ = nullptr;
    EventSink* sink_ = nullptr;
    std::vector<Addr> ghosts_; ///< Stuck-LWAIT words (injected faults).
};

} // namespace pim

#endif // PIMCACHE_CACHE_LOCK_DIRECTORY_H_
