/**
 * @file
 * Pluggable coherence-protocol policy tables (docs/ARCHITECTURE.md,
 * "Protocol matrix").
 *
 * PimCache executes the mechanism — tag lookup, bus transactions, data
 * movement — and consults a CoherenceProtocol table for every policy
 * decision: which state a fill installs, what a dirty supplier does on a
 * share, whether a write to a shared block invalidates or broadcasts a
 * word update. The paper's 5-state protocol (PIM) is the default and is
 * byte-identical to the pre-refactor behavior; the classic comparison
 * set (MSI, MESI, MOESI, update-based Dragon) reuses the same five
 * state encodings:
 *
 *   EC = exclusive-clean (MESI/MOESI/Dragon E; never entered by MSI)
 *   EM = exclusive-dirty (M)
 *   S  = shared-clean    (MSI/MESI S, Dragon Sc)
 *   SM = shared-dirty    (PIM SM, MOESI O, Dragon Sm; never MSI/MESI)
 *
 * Every variant keeps the paper's software commands (DW/ER/RP/RI) and
 * lock protocol verbatim — locks need exclusivity, so LR/UW ride on
 * FI/I in all variants — which is what makes the variants differentially
 * comparable on the same workloads (bench/fig_zoo) and against the same
 * RefMachine architectural semantics (src/model/protocol_model.h).
 */

#ifndef PIMCACHE_CACHE_PROTOCOL_H_
#define PIMCACHE_CACHE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "cache/state.h"

namespace pim {

/** The protocol variants of the zoo (PIM = the paper's, default). */
enum class ProtocolKind : std::uint8_t {
    PIM = 0,    ///< Paper's 5-state: SM migrates dirtiness to the reader.
    MSI = 1,    ///< No exclusive-clean state; dirty share writes back.
    MESI = 2,   ///< PIM minus SM: dirty share writes back to memory.
    MOESI = 3,  ///< Dirty supplier keeps ownership (SM as O).
    Dragon = 4, ///< Update-based: shared writes broadcast the word.
};

inline constexpr int kNumProtocolKinds = 5;

/** Stable CLI name ("pim", "msi", ...). */
inline const char*
protocolKindName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::PIM:    return "pim";
      case ProtocolKind::MSI:    return "msi";
      case ProtocolKind::MESI:   return "mesi";
      case ProtocolKind::MOESI:  return "moesi";
      case ProtocolKind::Dragon: return "dragon";
    }
    return "?";
}

/** Parse a CLI name; returns false if @p name is unknown. */
inline bool
parseProtocolKind(const std::string& name, ProtocolKind* out)
{
    for (int i = 0; i < kNumProtocolKinds; ++i) {
        const auto kind = static_cast<ProtocolKind>(i);
        if (name == protocolKindName(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

/** What a dirty supplier does when another cache fetches with plain F. */
enum class DirtyShare : std::uint8_t {
    /** PIM: the receiver installs SM and becomes the dirty owner; the
     *  supplier downgrades to clean S; shared memory stays stale and is
     *  never written — the point of the SM state. */
    MigrateToReceiver = 0,
    /** MSI/MESI (and the Illinois-style copybackOnShare ablation):
     *  shared memory snarfs the transfer; everyone ends up clean. */
    WritebackToMemory = 1,
    /** MOESI/Dragon: the supplier keeps the dirty data (SM as the owned
     *  state); the receiver installs clean S; no memory write. */
    KeepOwnership = 2,
};

/**
 * One protocol variant's policy table. Pure data + pure functions: the
 * cache controller consults it, the conformance layer mirrors it
 * (src/model/protocol_model.h), and bench/fig_zoo sweeps it.
 */
struct CoherenceProtocol {
    ProtocolKind kind = ProtocolKind::PIM;
    /** Install EC on a miss served by memory (false only for MSI). */
    bool hasExclusiveClean = true;
    /** Writes to shared copies broadcast the word instead of
     *  invalidating (true only for Dragon). */
    bool updateOnSharedWrite = false;
    DirtyShare dirtyShare = DirtyShare::MigrateToReceiver;

    /** State installed by a plain-F read miss. */
    CacheState
    installOnReadMiss(bool supplied, bool supplier_dirty) const
    {
        if (!supplied)
            return hasExclusiveClean ? CacheState::EC : CacheState::S;
        // A dirty supplier only *reports* dirty under MigrateToReceiver
        // (PIM); the other variants either cleaned the data on the way
        // (writeback) or kept the dirtiness themselves (ownership).
        return supplier_dirty ? CacheState::SM : CacheState::S;
    }

    /** State installed by an exclusive (FI) fetch: LR/UW miss, W miss,
     *  ER case (i), RI miss. Dirtiness dropped by the invalidation
     *  migrates to the requester in every variant. */
    CacheState
    installOnExclusiveFetch(bool supplier_dirty) const
    {
        if (!hasExclusiveClean)
            return CacheState::EM; // MSI: no EC to install.
        return supplier_dirty ? CacheState::EM : CacheState::EC;
    }

    /** State after upgrading a valid copy to exclusive via I (the LR
     *  shared-hit path). */
    CacheState
    upgradeToExclusive(bool own_dirty, bool dropped_dirty) const
    {
        if (!hasExclusiveClean)
            return CacheState::EM;
        return own_dirty || dropped_dirty ? CacheState::EM
                                          : CacheState::EC;
    }

    /** The table for @p kind. */
    static CoherenceProtocol
    make(ProtocolKind kind)
    {
        CoherenceProtocol proto;
        proto.kind = kind;
        switch (kind) {
          case ProtocolKind::PIM:
            break;
          case ProtocolKind::MSI:
            proto.hasExclusiveClean = false;
            proto.dirtyShare = DirtyShare::WritebackToMemory;
            break;
          case ProtocolKind::MESI:
            proto.dirtyShare = DirtyShare::WritebackToMemory;
            break;
          case ProtocolKind::MOESI:
            proto.dirtyShare = DirtyShare::KeepOwnership;
            break;
          case ProtocolKind::Dragon:
            proto.updateOnSharedWrite = true;
            proto.dirtyShare = DirtyShare::KeepOwnership;
            break;
        }
        return proto;
    }
};

} // namespace pim

#endif // PIMCACHE_CACHE_PROTOCOL_H_
