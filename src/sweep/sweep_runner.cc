#include "sweep/sweep_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <thread>

#include "bench_kl1/programs.h"
#include "bench_kl1/workload.h"
#include "common/fs_util.h"
#include "common/json.h"
#include "common/sim_fault.h"
#include "common/thread_pool.h"
#include "sim/stress.h"

namespace pim::sweep {

namespace {

namespace bench = pim::kl1::bench;

/**
 * Per-task cost in CPU seconds of the calling thread, not wall time:
 * when workers outnumber cores a descheduled task accrues no cost, so
 * the serial-time estimate (the sum of task costs) stays honest.
 */
double
threadSeconds()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return static_cast<double>(ts.tv_sec) + ts.tv_nsec * 1e-9;
#endif
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               Clock::now().time_since_epoch()).count();
}

/** Fingerprint mixer (splitmix64 finalizer over a running hash). */
std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    std::uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
mixString(std::uint64_t h, const std::string& text)
{
    for (char c : text)
        h = mix(h, static_cast<unsigned char>(c));
    return h;
}

std::string
hex16(std::uint64_t value)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

OptPolicy
parsePolicy(const std::string& name)
{
    if (name == "All")
        return OptPolicy::all();
    if (name == "None")
        return OptPolicy::none();
    if (name == "Heap")
        return OptPolicy::heapOnly();
    if (name == "Goal")
        return OptPolicy::goalOnly();
    if (name == "Comm")
        return OptPolicy::commOnly();
    throw PIM_SIM_FAULT(SimFaultKind::Config, "sweep: unknown policy '",
                        name, "' (want None/Heap/Goal/Comm/All)");
}

void
metric(SweepRow& row, const std::string& name, double value)
{
    row.metrics.emplace_back(name, ParamValue::ofNumber(value));
}

void
metricText(SweepRow& row, const std::string& name, std::string value)
{
    row.metrics.emplace_back(name, ParamValue::ofText(std::move(value)));
}

/** Run one KL1 benchmark point and fill the row's metrics. */
void
runKl1Task(SweepRow& row, double timeout_seconds)
{
    const SweepPoint& point = row.params;
    const std::string bench_name = point.text("benchmark", "");
    if (bench_name.empty()) {
        throw PIM_SIM_FAULT(SimFaultKind::Config,
                            "sweep: kl1 task needs a 'benchmark' param");
    }
    const std::uint32_t scale =
        static_cast<std::uint32_t>(point.number("scale", 1));
    const std::uint32_t pes =
        static_cast<std::uint32_t>(point.number("pes", 8));

    kl1::Kl1Config config = bench::paperConfig(
        pes, parsePolicy(point.text("policy", "All")));
    const std::uint32_t block_words =
        static_cast<std::uint32_t>(point.number("blockWords", 4));
    const std::uint32_t ways =
        static_cast<std::uint32_t>(point.number("ways", 4));
    if (point.has("capacityWords")) {
        config.cache.geometry = CacheGeometry::forCapacity(
            static_cast<std::uint64_t>(point.number("capacityWords", 0)),
            block_words, ways);
    } else {
        config.cache.geometry.blockWords = block_words;
        config.cache.geometry.ways = ways;
        config.cache.geometry.sets =
            static_cast<std::uint32_t>(point.number("sets", 256));
    }
    config.cache.lockEntries =
        static_cast<std::uint32_t>(point.number("lockEntries", 2));
    config.timing.widthWords =
        static_cast<std::uint32_t>(point.number("busWidthWords", 1));
    config.cluster.clusterSize =
        static_cast<std::uint32_t>(point.number("clusterSize", 0));
    config.cluster.hopCycles =
        static_cast<std::uint32_t>(point.number("hopCycles", 4));
    config.enableGc = point.number("enableGc", 0) != 0;
    config.timeoutSeconds = timeout_seconds;

    const bench::BenchResult result = bench::runBenchmark(
        bench::benchmarkByName(bench_name), scale, config);

    metric(row, "makespan", static_cast<double>(result.run.makespan));
    metric(row, "bus_cycles", static_cast<double>(result.bus.totalCycles));
    metric(row, "miss_pct", result.cache.missRatio() * 100);
    metric(row, "reductions", static_cast<double>(result.run.reductions));
    metric(row, "suspensions",
           static_cast<double>(result.run.suspensions));
    metric(row, "instructions",
           static_cast<double>(result.run.instructions));
    metric(row, "memory_refs", static_cast<double>(result.refs.total()));
    metric(row, "steals", static_cast<double>(result.run.steals));
    // Emitted only on clustered points so single-bus sweep outputs stay
    // byte-identical to the pre-cluster simulator.
    if (config.cluster.clustered()) {
        metric(row, "inter_cluster_cycles",
               static_cast<double>(result.bus.interClusterCycles));
    }
}

/** Run one stress point; a detected fault becomes a failed row. */
void
runStressTask(SweepRow& row, std::uint64_t derived_seed,
              double timeout_seconds)
{
    const SweepPoint& point = row.params;
    StressConfig config;
    config.seed = point.has("seed")
                      ? static_cast<std::uint64_t>(point.number("seed", 0))
                      : derived_seed;
    config.numPes = static_cast<std::uint32_t>(point.number("pes", 4));
    config.blockWords =
        static_cast<std::uint32_t>(point.number("blockWords", 4));
    config.ways = static_cast<std::uint32_t>(point.number("ways", 2));
    config.sets = static_cast<std::uint32_t>(point.number("sets", 64));
    config.steps =
        static_cast<std::uint64_t>(point.number("steps", 20000));
    config.spanWords =
        static_cast<std::uint64_t>(point.number("spanWords", 4096));
    config.writePct =
        static_cast<std::uint32_t>(point.number("writePct", 30));
    config.lockPct =
        static_cast<std::uint32_t>(point.number("lockPct", 10));
    config.optPct =
        static_cast<std::uint32_t>(point.number("optPct", 15));
    config.planSpec = point.text("plan", "");
    config.clusterSize =
        static_cast<std::uint32_t>(point.number("clusterSize", 0));
    config.hopCycles =
        static_cast<std::uint32_t>(point.number("hopCycles", 4));
    config.timeoutSeconds = timeout_seconds;
    // Drive-loop jobs for the parallel core; a stress System always
    // degrades to the serialized-epoch mode, so any value is
    // bit-identical (stress.h). Set only when the point carries it so
    // default sweep rows stay byte-identical.
    config.parJobs =
        static_cast<std::uint32_t>(point.number("parJobs", 0));
    if (point.has("starvationBound")) {
        config.watchdog.starvationBound = static_cast<std::uint64_t>(
            point.number("starvationBound", 100000));
    }
    if (point.has("livelockRetries")) {
        config.watchdog.livelockRetries = static_cast<std::uint32_t>(
            point.number("livelockRetries", 1000));
    }

    const StressResult result = runStress(config);
    metric(row, "seed", static_cast<double>(config.seed));
    metric(row, "completed_refs",
           static_cast<double>(result.completedRefs));
    metric(row, "audit_checks", static_cast<double>(result.auditChecks));
    metric(row, "injector_fires",
           static_cast<double>(result.injectorFires));
    metric(row, "makespan", static_cast<double>(result.makespan));
    metricText(row, "fingerprint", hex16(result.fingerprint));
    if (result.failed) {
        row.failed = true;
        row.faultKind = simFaultKindName(result.kind);
        row.message = result.message;
    }
}

void
writeParamValue(JsonWriter& json, const ParamValue& value)
{
    if (value.isNumber)
        json.value(value.number);
    else
        json.value(value.text);
}

/** The flat key/value body shared by SWEEP rows and BENCH rows. */
void
writeRowFields(JsonWriter& json, const SweepRow& row)
{
    json.field("task", static_cast<std::uint64_t>(row.taskIndex));
    for (const auto& [name, value] : row.params.params) {
        json.key(name);
        writeParamValue(json, value);
    }
    for (const auto& [name, value] : row.metrics) {
        json.key(name);
        writeParamValue(json, value);
    }
    json.field("failed", row.failed);
    if (row.failed) {
        json.field("fault_kind", row.faultKind);
        json.field("message", row.message);
    }
}

/** Per-experiment aggregate: mean/min/max per numeric metric, paper deltas. */
void
writeAggregate(JsonWriter& json, const SweepExperiment& experiment,
               const std::vector<const SweepRow*>& rows)
{
    // Metric names in first-appearance order.
    std::vector<std::string> names;
    for (const SweepRow* row : rows) {
        for (const auto& [name, value] : row->metrics) {
            if (!value.isNumber)
                continue;
            bool known = false;
            for (const std::string& existing : names)
                known = known || existing == name;
            if (!known)
                names.push_back(name);
        }
    }

    json.key("aggregate");
    json.beginObject();
    for (const std::string& name : names) {
        double sum = 0, lo = 0, hi = 0;
        std::uint64_t count = 0;
        for (const SweepRow* row : rows) {
            if (row->failed)
                continue;
            for (const auto& [metric_name, value] : row->metrics) {
                if (metric_name != name || !value.isNumber)
                    continue;
                if (count == 0) {
                    lo = hi = value.number;
                } else {
                    lo = std::min(lo, value.number);
                    hi = std::max(hi, value.number);
                }
                sum += value.number;
                ++count;
            }
        }
        if (count == 0)
            continue;
        json.key(name);
        json.beginObject();
        const double mean = sum / static_cast<double>(count);
        json.field("mean", mean);
        json.field("min", lo);
        json.field("max", hi);
        for (const auto& [paper_name, paper_value] : experiment.paper) {
            if (paper_name != name || paper_value == 0)
                continue;
            json.field("paper", paper_value);
            json.field("delta_pct",
                       100.0 * (mean - paper_value) / paper_value);
        }
        json.endObject();
    }
    json.endObject();
}

std::string
renderSweepJson(const SweepSpec& spec, const SweepOutcome& outcome,
                const SweepOptions& options)
{
    std::ostringstream os;
    JsonWriter json(os, /*pretty=*/true);
    json.beginObject();
    json.field("name", spec.name);
    json.field("spec_seed", spec.seed);
    json.field("tasks", static_cast<std::uint64_t>(outcome.rows.size()));
    json.field("failed_rows",
               static_cast<std::uint64_t>(outcome.failedRows));
    json.key("experiments");
    json.beginArray();
    for (std::size_t e = 0; e < spec.experiments.size(); ++e) {
        const SweepExperiment& experiment = spec.experiments[e];
        std::vector<const SweepRow*> rows;
        for (const SweepRow& row : outcome.rows) {
            if (row.experiment == e)
                rows.push_back(&row);
        }
        json.beginObject();
        json.field("id", experiment.id);
        json.field("kind", taskKindName(experiment.kind));
        json.key("rows");
        json.beginArray();
        for (const SweepRow* row : rows) {
            json.beginObject();
            writeRowFields(json, *row);
            json.endObject();
        }
        json.endArray();
        writeAggregate(json, experiment, rows);
        json.endObject();
    }
    json.endArray();
    json.field("fingerprint", hex16(outcome.fingerprint));
    if (options.perfInline) {
        // Wall-clock data varies run to run; embedding it forfeits the
        // cross---jobs byte-identity guarantee (docs/EXPERIMENTS.md).
        json.key("perf");
        json.rawValue(renderPerfJson(outcome));
    }
    json.endObject();
    os << "\n";
    return os.str();
}

/** Double bits as 16 hex digits (bit-exact checkpoint round-trip). */
std::string
doubleBitsHex(double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof bits);
    return hex16(bits);
}

double
doubleFromBitsHex(const std::string& hex)
{
    std::uint64_t bits = 0;
    for (char c : hex) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            throw PIM_SIM_FAULT(SimFaultKind::Parse,
                                "checkpoint: bad double bits '", hex, "'");
        bits = (bits << 4) | static_cast<std::uint64_t>(digit);
    }
    double value;
    std::memcpy(&value, &bits, sizeof value);
    return value;
}

/**
 * Serialize every completed slot. Numbers are stored twice: "b" carries
 * the exact IEEE bits (authoritative — a resumed SWEEP.json must be
 * *byte*-identical, so the doubles must be bit-identical), "n" the
 * human-readable value for people inspecting the checkpoint.
 */
std::string
renderCheckpoint(const SweepOutcome& outcome, const std::string& hash)
{
    std::ostringstream os;
    JsonWriter json(os, /*pretty=*/true);
    json.beginObject();
    json.field("config_hash", hash);
    json.field("tasks", static_cast<std::uint64_t>(outcome.rows.size()));
    json.key("completed");
    json.beginArray();
    for (const SweepRow& row : outcome.rows) {
        if (!row.done)
            continue;
        json.beginObject();
        json.field("task", static_cast<std::uint64_t>(row.taskIndex));
        json.field("attempts", static_cast<std::uint64_t>(row.attempts));
        json.field("failed", row.failed);
        if (row.failed) {
            json.field("fault_kind", row.faultKind);
            json.field("message", row.message);
        }
        json.key("metrics");
        json.beginArray();
        for (const auto& [name, value] : row.metrics) {
            json.beginObject();
            json.field("k", name);
            if (value.isNumber) {
                json.field("b", doubleBitsHex(value.number));
                json.field("n", value.number);
            } else {
                json.field("s", value.text);
            }
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    os << "\n";
    return os.str();
}

/**
 * Restore checkpointed slots into @p outcome. Missing file -> nothing
 * to resume (fresh run). A present-but-foreign checkpoint (different
 * config hash or task count) is a Config fault: silently re-running a
 * different grid over it would corrupt both runs' outputs.
 */
std::size_t
loadCheckpoint(const std::string& path, const std::string& hash,
               SweepOutcome* outcome)
{
    if (!std::filesystem::exists(path))
        return 0;
    const JsonValue doc = JsonValue::parseFile(path);
    const std::string doc_hash =
        doc.has("config_hash") ? doc.at("config_hash").asString() : "";
    if (doc_hash != hash) {
        throw PIM_SIM_FAULT(SimFaultKind::Config, "checkpoint ", path,
                            " belongs to config ", doc_hash,
                            " but this sweep hashes to ", hash,
                            "; delete it or rerun the original spec");
    }
    const auto tasks =
        static_cast<std::size_t>(doc.at("tasks").asNumber());
    if (tasks != outcome->rows.size()) {
        throw PIM_SIM_FAULT(SimFaultKind::Config, "checkpoint ", path,
                            " covers ", tasks, " tasks but the grid has ",
                            outcome->rows.size());
    }
    std::size_t restored = 0;
    for (const JsonValue& entry : doc.at("completed").asArray()) {
        const auto index =
            static_cast<std::size_t>(entry.at("task").asNumber());
        if (index >= outcome->rows.size()) {
            throw PIM_SIM_FAULT(SimFaultKind::Config, "checkpoint ", path,
                                " references task ", index,
                                " outside the grid");
        }
        SweepRow& row = outcome->rows[index];
        row.metrics.clear();
        for (const JsonValue& m : entry.at("metrics").asArray()) {
            const std::string& name = m.at("k").asString();
            if (m.has("b")) {
                row.metrics.emplace_back(
                    name, ParamValue::ofNumber(
                              doubleFromBitsHex(m.at("b").asString())));
            } else {
                row.metrics.emplace_back(
                    name, ParamValue::ofText(m.at("s").asString()));
            }
        }
        row.failed = entry.at("failed").asBool();
        row.faultKind =
            row.failed ? entry.at("fault_kind").asString() : "";
        row.message = row.failed ? entry.at("message").asString() : "";
        row.attempts = entry.has("attempts")
                           ? static_cast<std::uint32_t>(
                                 entry.at("attempts").asNumber())
                           : 1;
        row.done = true;
        row.resumed = true;
        ++restored;
    }
    return restored;
}

} // namespace

std::uint32_t
retryBackoffMs(const RetryPolicy& policy, std::uint32_t retry_index)
{
    if (retry_index == 0)
        return 0;
    std::uint64_t ms = policy.backoffBaseMs;
    for (std::uint32_t i = 1;
         i < retry_index && ms < policy.backoffCapMs; ++i)
        ms *= 2;
    return static_cast<std::uint32_t>(
        std::min<std::uint64_t>(ms, policy.backoffCapMs));
}

void
runWithRetry(const RetryPolicy& policy,
             const std::function<bool()>& attempt,
             RetryAccounting* accounting,
             const std::function<void(std::uint32_t)>& sleep_ms)
{
    for (std::uint32_t i = 0;; ++i) {
        if (accounting != nullptr)
            ++accounting->attempts;
        const bool transient_failure = attempt();
        if (!transient_failure || i >= policy.retries)
            return;
        const std::uint32_t backoff = retryBackoffMs(policy, i + 1);
        if (accounting != nullptr)
            accounting->backoffsMs.push_back(backoff);
        if (sleep_ms)
            sleep_ms(backoff);
    }
}

std::string
sweepConfigHash(const SweepSpec& spec, const SweepOptions& options)
{
    std::uint64_t h = mixString(mix(0, spec.seed), spec.name);
    for (std::size_t e = 0; e < spec.experiments.size(); ++e) {
        const SweepExperiment& experiment = spec.experiments[e];
        h = mixString(h, experiment.id);
        h = mixString(h, taskKindName(experiment.kind));
        for (SweepPoint& point : experiment.expand()) {
            if (options.scale != 0 && experiment.kind == TaskKind::Kl1)
                point.set("scale", ParamValue::ofNumber(options.scale));
            h = mixString(h, point.toString());
        }
    }
    return hex16(h);
}

SweepOutcome
runSweep(const SweepSpec& spec, const SweepOptions& options)
{
    using Clock = std::chrono::steady_clock;

    SweepOutcome outcome;
    outcome.jobs = options.jobs == 0 ? ThreadPool::defaultWorkers()
                                     : options.jobs;

    // Expand the grid up front: rows[i] is task i's pre-assigned slot,
    // so workers never contend and completion order cannot matter.
    for (std::size_t e = 0; e < spec.experiments.size(); ++e) {
        const SweepExperiment& experiment = spec.experiments[e];
        for (SweepPoint& point : experiment.expand()) {
            SweepRow row;
            row.taskIndex = outcome.rows.size();
            row.experiment = e;
            row.params = std::move(point);
            if (options.scale != 0 && experiment.kind == TaskKind::Kl1) {
                row.params.set("scale", ParamValue::ofNumber(
                                            options.scale));
            }
            outcome.rows.push_back(std::move(row));
        }
    }

    const std::string config_hash = sweepConfigHash(spec, options);
    const std::string ckpt_path =
        options.outDir.empty()
            ? ""
            : (std::filesystem::path(options.outDir) /
               sweepCheckpointName()).string();

    if (options.resume && !ckpt_path.empty())
        outcome.resumedRows = loadCheckpoint(ckpt_path, config_hash,
                                             &outcome);

    // Pending tasks in index order; --max-tasks caps how many this
    // invocation runs (the deterministic "interrupt" used by the
    // resume ctest).
    std::vector<SweepRow*> pending;
    for (SweepRow& row : outcome.rows) {
        if (!row.done)
            pending.push_back(&row);
    }
    if (options.maxTasks != 0 && pending.size() > options.maxTasks)
        pending.resize(options.maxTasks);

    // Checkpoint plumbing: done flags flip only under the mutex, so the
    // serializer (also under it) never reads a half-filled row.
    std::mutex done_mutex;
    std::size_t completed_this_run = 0;
    const auto write_checkpoint_locked = [&] {
        if (ckpt_path.empty())
            return;
        std::string error;
        if (!writeFileAtomic(ckpt_path,
                             renderCheckpoint(outcome, config_hash),
                             &error)) {
            std::fprintf(stderr, "pim_sweep: checkpoint: %s\n",
                         error.c_str());
        }
    };

    const Clock::time_point wall_start = Clock::now();
    {
        ThreadPool pool(outcome.jobs);
        for (SweepRow* row_ptr : pending) {
            SweepRow& row = *row_ptr;
            const TaskKind kind = spec.experiments[row.experiment].kind;
            const std::uint64_t derived_seed =
                deriveSeed(spec.seed, row.taskIndex);
            pool.submit([&row, &options, &done_mutex, &completed_this_run,
                         &write_checkpoint_locked, kind, derived_seed] {
                RetryAccounting accounting;
                runWithRetry(
                    options.retry,
                    [&] {
                        // One attempt: reset the slot, run, classify. A
                        // faulting point is a result, not a crash — only
                        // transient kinds (timeouts) are worth retrying.
                        row.metrics.clear();
                        row.failed = false;
                        row.faultKind.clear();
                        row.message.clear();
                        const double start = threadSeconds();
                        try {
                            if (kind == TaskKind::Kl1)
                                runKl1Task(row, options.timeoutSeconds);
                            else
                                runStressTask(row, derived_seed,
                                              options.timeoutSeconds);
                        } catch (const SimFault& fault) {
                            row.failed = true;
                            row.faultKind = simFaultKindName(fault.kind());
                            row.message = fault.message();
                        }
                        row.seconds += threadSeconds() - start;
                        const bool transient =
                            row.failed &&
                            (row.faultKind ==
                                 simFaultKindName(SimFaultKind::Timeout));
                        if (transient)
                            row.retriedKinds.push_back(row.faultKind);
                        return transient;
                    },
                    &accounting,
                    [](std::uint32_t ms) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(ms));
                    });
                row.attempts = accounting.attempts;
                // The final attempt was not retried; its kind is not a
                // "retried" one unless a later attempt actually ran.
                if (row.retriedKinds.size() == accounting.attempts &&
                    !row.retriedKinds.empty())
                    row.retriedKinds.pop_back();

                std::lock_guard<std::mutex> lock(done_mutex);
                row.done = true;
                ++completed_this_run;
                if (options.checkpointEvery != 0 &&
                    completed_this_run % options.checkpointEvery == 0)
                    write_checkpoint_locked();
            });
        }
        pool.wait();
    }
    outcome.wallSeconds =
        std::chrono::duration<double>(Clock::now() - wall_start).count();

    // Single-threaded aggregation in task order (determinism barrier).
    outcome.complete = true;
    for (const SweepRow& row : outcome.rows) {
        if (!row.done) {
            outcome.complete = false;
            continue;
        }
        ++outcome.completedRows;
        outcome.taskSecondsSum += row.seconds;
        if (row.failed)
            ++outcome.failedRows;
        if (row.attempts > 1)
            ++outcome.retriedRows;
    }

    if (outcome.complete) {
        for (const SweepRow& row : outcome.rows) {
            std::uint64_t h = mix(0, row.taskIndex);
            h = mixString(h, row.params.toString());
            for (const auto& [name, value] : row.metrics) {
                h = mixString(h, name);
                h = mixString(h, value.toString());
            }
            h = mix(h, row.failed ? 1 : 0);
            outcome.fingerprint = mix(outcome.fingerprint, h);
        }
        outcome.sweepJson = renderSweepJson(spec, outcome, options);
    } else {
        // Partial run (--max-tasks): the checkpoint is the product; a
        // half-grid SWEEP document would masquerade as a full one.
        std::lock_guard<std::mutex> lock(done_mutex);
        write_checkpoint_locked();
    }
    return outcome;
}

std::string
renderPerfJson(const SweepOutcome& outcome)
{
    std::ostringstream os;
    JsonWriter json(os, /*pretty=*/true);
    json.beginObject();
    json.field("jobs", static_cast<std::uint64_t>(outcome.jobs));
    json.field("tasks", static_cast<std::uint64_t>(outcome.rows.size()));
    json.field("completed_rows",
               static_cast<std::uint64_t>(outcome.completedRows));
    json.field("resumed_rows",
               static_cast<std::uint64_t>(outcome.resumedRows));
    json.field("wall_seconds", outcome.wallSeconds);
    json.field("task_seconds_sum", outcome.taskSecondsSum);
    json.field("sims_per_sec",
               outcome.wallSeconds == 0
                   ? 0.0
                   : static_cast<double>(outcome.rows.size()) /
                         outcome.wallSeconds);
    // Speedup vs --jobs=1, estimated as serial time (the sum of task
    // times) over wall time; exact when tasks dominate the run.
    json.field("speedup_vs_serial",
               outcome.wallSeconds == 0
                   ? 1.0
                   : outcome.taskSecondsSum / outcome.wallSeconds);
    // Retry history lives here, NOT in SWEEP.json: attempt counts
    // depend on wall-clock behavior, and the SWEEP document must be
    // byte-identical for any retry history (docs/ROBUSTNESS.md).
    json.field("retried_rows",
               static_cast<std::uint64_t>(outcome.retriedRows));
    json.key("retries");
    json.beginArray();
    for (const SweepRow& row : outcome.rows) {
        if (row.attempts <= 1)
            continue;
        json.beginObject();
        json.field("task", static_cast<std::uint64_t>(row.taskIndex));
        json.field("attempts", static_cast<std::uint64_t>(row.attempts));
        json.key("retried_kinds");
        json.beginArray();
        for (const std::string& kind : row.retriedKinds)
            json.value(kind);
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return os.str();
}

bool
writeSweepFiles(const SweepSpec& spec, const SweepOutcome& outcome,
                const SweepOptions& options)
{
    namespace fs = std::filesystem;
    if (options.outDir.empty())
        return true;

    bool ok = true;
    const auto write_file = [&ok](const fs::path& path,
                                  const std::string& content) {
        // Atomic publish (temp + rename): a killed process leaves the
        // previous complete document, never a torn half-written one.
        std::string error;
        if (!writeFileAtomic(path.string(), content, &error)) {
            std::fprintf(stderr, "pim_sweep: %s\n", error.c_str());
            ok = false;
        }
    };

    if (!outcome.complete) {
        // Partial run: the checkpoint (already on disk, written by
        // runSweep) is the only valid artifact. Refresh the perf
        // sidecar so operators can see slice throughput, but never
        // publish a partial SWEEP.json.
        write_file(fs::path(options.outDir) / "SWEEP.perf.json",
                   renderPerfJson(outcome) + "\n");
        return ok;
    }

    write_file(fs::path(options.outDir) / "SWEEP.json", outcome.sweepJson);
    write_file(fs::path(options.outDir) / "SWEEP.perf.json",
               renderPerfJson(outcome) + "\n");

    // Per-experiment row files in the bench --json shape (flat rows;
    // docs/OBSERVABILITY.md), named BENCH_sweep_<id>.json.
    for (std::size_t e = 0; e < spec.experiments.size(); ++e) {
        std::ostringstream os;
        JsonWriter json(os, /*pretty=*/true);
        json.beginObject();
        json.field("name", "sweep_" + spec.experiments[e].id);
        json.field("kind", taskKindName(spec.experiments[e].kind));
        json.key("rows");
        json.beginArray();
        for (const SweepRow& row : outcome.rows) {
            if (row.experiment != e)
                continue;
            json.beginObject();
            writeRowFields(json, row);
            json.endObject();
        }
        json.endArray();
        json.endObject();
        os << "\n";
        write_file(fs::path(options.outDir) /
                       ("BENCH_sweep_" + spec.experiments[e].id + ".json"),
                   os.str());
    }

    // The grid is fully drained and published; the checkpoint would
    // only confuse a later --resume of a different grid in the same
    // directory.
    std::error_code ec;
    fs::remove(fs::path(options.outDir) / sweepCheckpointName(), ec);
    return ok;
}

} // namespace pim::sweep
