#include "sweep/sweep_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "bench_kl1/programs.h"
#include "bench_kl1/workload.h"
#include "common/json.h"
#include "common/sim_fault.h"
#include "common/thread_pool.h"
#include "sim/stress.h"

namespace pim::sweep {

namespace {

namespace bench = pim::kl1::bench;

/**
 * Per-task cost in CPU seconds of the calling thread, not wall time:
 * when workers outnumber cores a descheduled task accrues no cost, so
 * the serial-time estimate (the sum of task costs) stays honest.
 */
double
threadSeconds()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return static_cast<double>(ts.tv_sec) + ts.tv_nsec * 1e-9;
#endif
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               Clock::now().time_since_epoch()).count();
}

/** Fingerprint mixer (splitmix64 finalizer over a running hash). */
std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    std::uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
mixString(std::uint64_t h, const std::string& text)
{
    for (char c : text)
        h = mix(h, static_cast<unsigned char>(c));
    return h;
}

std::string
hex16(std::uint64_t value)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

OptPolicy
parsePolicy(const std::string& name)
{
    if (name == "All")
        return OptPolicy::all();
    if (name == "None")
        return OptPolicy::none();
    if (name == "Heap")
        return OptPolicy::heapOnly();
    if (name == "Goal")
        return OptPolicy::goalOnly();
    if (name == "Comm")
        return OptPolicy::commOnly();
    throw PIM_SIM_FAULT(SimFaultKind::Config, "sweep: unknown policy '",
                        name, "' (want None/Heap/Goal/Comm/All)");
}

void
metric(SweepRow& row, const std::string& name, double value)
{
    row.metrics.emplace_back(name, ParamValue::ofNumber(value));
}

void
metricText(SweepRow& row, const std::string& name, std::string value)
{
    row.metrics.emplace_back(name, ParamValue::ofText(std::move(value)));
}

/** Run one KL1 benchmark point and fill the row's metrics. */
void
runKl1Task(SweepRow& row)
{
    const SweepPoint& point = row.params;
    const std::string bench_name = point.text("benchmark", "");
    if (bench_name.empty()) {
        throw PIM_SIM_FAULT(SimFaultKind::Config,
                            "sweep: kl1 task needs a 'benchmark' param");
    }
    const std::uint32_t scale =
        static_cast<std::uint32_t>(point.number("scale", 1));
    const std::uint32_t pes =
        static_cast<std::uint32_t>(point.number("pes", 8));

    kl1::Kl1Config config = bench::paperConfig(
        pes, parsePolicy(point.text("policy", "All")));
    const std::uint32_t block_words =
        static_cast<std::uint32_t>(point.number("blockWords", 4));
    const std::uint32_t ways =
        static_cast<std::uint32_t>(point.number("ways", 4));
    if (point.has("capacityWords")) {
        config.cache.geometry = CacheGeometry::forCapacity(
            static_cast<std::uint64_t>(point.number("capacityWords", 0)),
            block_words, ways);
    } else {
        config.cache.geometry.blockWords = block_words;
        config.cache.geometry.ways = ways;
        config.cache.geometry.sets =
            static_cast<std::uint32_t>(point.number("sets", 256));
    }
    config.cache.lockEntries =
        static_cast<std::uint32_t>(point.number("lockEntries", 2));
    config.timing.widthWords =
        static_cast<std::uint32_t>(point.number("busWidthWords", 1));
    config.enableGc = point.number("enableGc", 0) != 0;

    const bench::BenchResult result = bench::runBenchmark(
        bench::benchmarkByName(bench_name), scale, config);

    metric(row, "makespan", static_cast<double>(result.run.makespan));
    metric(row, "bus_cycles", static_cast<double>(result.bus.totalCycles));
    metric(row, "miss_pct", result.cache.missRatio() * 100);
    metric(row, "reductions", static_cast<double>(result.run.reductions));
    metric(row, "suspensions",
           static_cast<double>(result.run.suspensions));
    metric(row, "instructions",
           static_cast<double>(result.run.instructions));
    metric(row, "memory_refs", static_cast<double>(result.refs.total()));
    metric(row, "steals", static_cast<double>(result.run.steals));
}

/** Run one stress point; a detected fault becomes a failed row. */
void
runStressTask(SweepRow& row, std::uint64_t derived_seed)
{
    const SweepPoint& point = row.params;
    StressConfig config;
    config.seed = point.has("seed")
                      ? static_cast<std::uint64_t>(point.number("seed", 0))
                      : derived_seed;
    config.numPes = static_cast<std::uint32_t>(point.number("pes", 4));
    config.blockWords =
        static_cast<std::uint32_t>(point.number("blockWords", 4));
    config.ways = static_cast<std::uint32_t>(point.number("ways", 2));
    config.sets = static_cast<std::uint32_t>(point.number("sets", 64));
    config.steps =
        static_cast<std::uint64_t>(point.number("steps", 20000));
    config.spanWords =
        static_cast<std::uint64_t>(point.number("spanWords", 4096));
    config.writePct =
        static_cast<std::uint32_t>(point.number("writePct", 30));
    config.lockPct =
        static_cast<std::uint32_t>(point.number("lockPct", 10));
    config.optPct =
        static_cast<std::uint32_t>(point.number("optPct", 15));
    config.planSpec = point.text("plan", "");

    const StressResult result = runStress(config);
    metric(row, "seed", static_cast<double>(config.seed));
    metric(row, "completed_refs",
           static_cast<double>(result.completedRefs));
    metric(row, "audit_checks", static_cast<double>(result.auditChecks));
    metric(row, "makespan", static_cast<double>(result.makespan));
    metricText(row, "fingerprint", hex16(result.fingerprint));
    if (result.failed) {
        row.failed = true;
        row.faultKind = simFaultKindName(result.kind);
        row.message = result.message;
    }
}

void
writeParamValue(JsonWriter& json, const ParamValue& value)
{
    if (value.isNumber)
        json.value(value.number);
    else
        json.value(value.text);
}

/** The flat key/value body shared by SWEEP rows and BENCH rows. */
void
writeRowFields(JsonWriter& json, const SweepRow& row)
{
    json.field("task", static_cast<std::uint64_t>(row.taskIndex));
    for (const auto& [name, value] : row.params.params) {
        json.key(name);
        writeParamValue(json, value);
    }
    for (const auto& [name, value] : row.metrics) {
        json.key(name);
        writeParamValue(json, value);
    }
    json.field("failed", row.failed);
    if (row.failed) {
        json.field("fault_kind", row.faultKind);
        json.field("message", row.message);
    }
}

/** Per-experiment aggregate: mean/min/max per numeric metric, paper deltas. */
void
writeAggregate(JsonWriter& json, const SweepExperiment& experiment,
               const std::vector<const SweepRow*>& rows)
{
    // Metric names in first-appearance order.
    std::vector<std::string> names;
    for (const SweepRow* row : rows) {
        for (const auto& [name, value] : row->metrics) {
            if (!value.isNumber)
                continue;
            bool known = false;
            for (const std::string& existing : names)
                known = known || existing == name;
            if (!known)
                names.push_back(name);
        }
    }

    json.key("aggregate");
    json.beginObject();
    for (const std::string& name : names) {
        double sum = 0, lo = 0, hi = 0;
        std::uint64_t count = 0;
        for (const SweepRow* row : rows) {
            if (row->failed)
                continue;
            for (const auto& [metric_name, value] : row->metrics) {
                if (metric_name != name || !value.isNumber)
                    continue;
                if (count == 0) {
                    lo = hi = value.number;
                } else {
                    lo = std::min(lo, value.number);
                    hi = std::max(hi, value.number);
                }
                sum += value.number;
                ++count;
            }
        }
        if (count == 0)
            continue;
        json.key(name);
        json.beginObject();
        const double mean = sum / static_cast<double>(count);
        json.field("mean", mean);
        json.field("min", lo);
        json.field("max", hi);
        for (const auto& [paper_name, paper_value] : experiment.paper) {
            if (paper_name != name || paper_value == 0)
                continue;
            json.field("paper", paper_value);
            json.field("delta_pct",
                       100.0 * (mean - paper_value) / paper_value);
        }
        json.endObject();
    }
    json.endObject();
}

std::string
renderSweepJson(const SweepSpec& spec, const SweepOutcome& outcome,
                const SweepOptions& options)
{
    std::ostringstream os;
    JsonWriter json(os, /*pretty=*/true);
    json.beginObject();
    json.field("name", spec.name);
    json.field("spec_seed", spec.seed);
    json.field("tasks", static_cast<std::uint64_t>(outcome.rows.size()));
    json.field("failed_rows",
               static_cast<std::uint64_t>(outcome.failedRows));
    json.key("experiments");
    json.beginArray();
    for (std::size_t e = 0; e < spec.experiments.size(); ++e) {
        const SweepExperiment& experiment = spec.experiments[e];
        std::vector<const SweepRow*> rows;
        for (const SweepRow& row : outcome.rows) {
            if (row.experiment == e)
                rows.push_back(&row);
        }
        json.beginObject();
        json.field("id", experiment.id);
        json.field("kind", taskKindName(experiment.kind));
        json.key("rows");
        json.beginArray();
        for (const SweepRow* row : rows) {
            json.beginObject();
            writeRowFields(json, *row);
            json.endObject();
        }
        json.endArray();
        writeAggregate(json, experiment, rows);
        json.endObject();
    }
    json.endArray();
    json.field("fingerprint", hex16(outcome.fingerprint));
    if (options.perfInline) {
        // Wall-clock data varies run to run; embedding it forfeits the
        // cross---jobs byte-identity guarantee (docs/EXPERIMENTS.md).
        json.key("perf");
        json.rawValue(renderPerfJson(outcome));
    }
    json.endObject();
    os << "\n";
    return os.str();
}

} // namespace

SweepOutcome
runSweep(const SweepSpec& spec, const SweepOptions& options)
{
    using Clock = std::chrono::steady_clock;

    SweepOutcome outcome;
    outcome.jobs = options.jobs == 0 ? ThreadPool::defaultWorkers()
                                     : options.jobs;

    // Expand the grid up front: rows[i] is task i's pre-assigned slot,
    // so workers never contend and completion order cannot matter.
    for (std::size_t e = 0; e < spec.experiments.size(); ++e) {
        const SweepExperiment& experiment = spec.experiments[e];
        for (SweepPoint& point : experiment.expand()) {
            SweepRow row;
            row.taskIndex = outcome.rows.size();
            row.experiment = e;
            row.params = std::move(point);
            if (options.scale != 0 && experiment.kind == TaskKind::Kl1) {
                row.params.set("scale", ParamValue::ofNumber(
                                            options.scale));
            }
            outcome.rows.push_back(std::move(row));
        }
    }

    const Clock::time_point wall_start = Clock::now();
    {
        ThreadPool pool(outcome.jobs);
        for (SweepRow& row : outcome.rows) {
            const TaskKind kind = spec.experiments[row.experiment].kind;
            const std::uint64_t derived_seed =
                deriveSeed(spec.seed, row.taskIndex);
            pool.submit([&row, kind, derived_seed] {
                const double start = threadSeconds();
                try {
                    if (kind == TaskKind::Kl1)
                        runKl1Task(row);
                    else
                        runStressTask(row, derived_seed);
                } catch (const SimFault& fault) {
                    // A faulting point is a result, not a crash: record
                    // it and keep the pool draining the rest of the grid.
                    row.failed = true;
                    row.faultKind = simFaultKindName(fault.kind());
                    row.message = fault.message();
                }
                row.seconds = threadSeconds() - start;
            });
        }
        pool.wait();
    }
    outcome.wallSeconds =
        std::chrono::duration<double>(Clock::now() - wall_start).count();

    // Single-threaded aggregation in task order (determinism barrier).
    for (const SweepRow& row : outcome.rows) {
        outcome.taskSecondsSum += row.seconds;
        if (row.failed)
            ++outcome.failedRows;
        std::uint64_t h = mix(0, row.taskIndex);
        h = mixString(h, row.params.toString());
        for (const auto& [name, value] : row.metrics) {
            h = mixString(h, name);
            h = mixString(h, value.toString());
        }
        h = mix(h, row.failed ? 1 : 0);
        outcome.fingerprint = mix(outcome.fingerprint, h);
    }

    outcome.sweepJson = renderSweepJson(spec, outcome, options);
    return outcome;
}

std::string
renderPerfJson(const SweepOutcome& outcome)
{
    std::ostringstream os;
    JsonWriter json(os, /*pretty=*/true);
    json.beginObject();
    json.field("jobs", static_cast<std::uint64_t>(outcome.jobs));
    json.field("tasks", static_cast<std::uint64_t>(outcome.rows.size()));
    json.field("wall_seconds", outcome.wallSeconds);
    json.field("task_seconds_sum", outcome.taskSecondsSum);
    json.field("sims_per_sec",
               outcome.wallSeconds == 0
                   ? 0.0
                   : static_cast<double>(outcome.rows.size()) /
                         outcome.wallSeconds);
    // Speedup vs --jobs=1, estimated as serial time (the sum of task
    // times) over wall time; exact when tasks dominate the run.
    json.field("speedup_vs_serial",
               outcome.wallSeconds == 0
                   ? 1.0
                   : outcome.taskSecondsSum / outcome.wallSeconds);
    json.endObject();
    return os.str();
}

bool
writeSweepFiles(const SweepSpec& spec, const SweepOutcome& outcome,
                const SweepOptions& options)
{
    namespace fs = std::filesystem;
    if (options.outDir.empty())
        return true;

    std::error_code ec;
    fs::create_directories(fs::path(options.outDir), ec);
    if (ec) {
        std::fprintf(stderr, "pim_sweep: cannot create %s: %s\n",
                     options.outDir.c_str(), ec.message().c_str());
        return false;
    }

    bool ok = true;
    const auto write_file = [&ok](const fs::path& path,
                                  const std::string& content) {
        std::ofstream out(path, std::ios::binary);
        out << content;
        if (!out.good()) {
            std::fprintf(stderr, "pim_sweep: cannot write %s\n",
                         path.string().c_str());
            ok = false;
        }
    };

    write_file(fs::path(options.outDir) / "SWEEP.json", outcome.sweepJson);
    write_file(fs::path(options.outDir) / "SWEEP.perf.json",
               renderPerfJson(outcome) + "\n");

    // Per-experiment row files in the bench --json shape (flat rows;
    // docs/OBSERVABILITY.md), named BENCH_sweep_<id>.json.
    for (std::size_t e = 0; e < spec.experiments.size(); ++e) {
        std::ostringstream os;
        JsonWriter json(os, /*pretty=*/true);
        json.beginObject();
        json.field("name", "sweep_" + spec.experiments[e].id);
        json.field("kind", taskKindName(spec.experiments[e].kind));
        json.key("rows");
        json.beginArray();
        for (const SweepRow& row : outcome.rows) {
            if (row.experiment != e)
                continue;
            json.beginObject();
            writeRowFields(json, row);
            json.endObject();
        }
        json.endArray();
        json.endObject();
        os << "\n";
        write_file(fs::path(options.outDir) /
                       ("BENCH_sweep_" + spec.experiments[e].id + ".json"),
                   os.str());
    }
    return ok;
}

} // namespace pim::sweep
