#include "sweep/sweep_spec.h"

#include <cmath>
#include <set>
#include <sstream>

#include "common/json.h"
#include "common/sim_fault.h"

namespace pim::sweep {

// -------------------------------------------------------------- ParamValue

ParamValue
ParamValue::ofNumber(double v)
{
    ParamValue value;
    value.isNumber = true;
    value.number = v;
    return value;
}

ParamValue
ParamValue::ofText(std::string v)
{
    ParamValue value;
    value.text = std::move(v);
    return value;
}

std::string
ParamValue::toString() const
{
    if (!isNumber)
        return text;
    // Integers render without a decimal point so "4" never becomes "4.0"
    // (row keys and fingerprints depend on a canonical form).
    if (number == std::floor(number) && std::abs(number) < 1e15) {
        std::ostringstream os;
        os << static_cast<std::int64_t>(number);
        return os.str();
    }
    std::ostringstream os;
    os << number;
    return os.str();
}

std::uint64_t
ParamValue::asU64() const
{
    if (!isNumber || number < 0 || number != std::floor(number)) {
        throw PIM_SIM_FAULT(SimFaultKind::Config, "sweep parameter '",
                            toString(), "' is not a non-negative integer");
    }
    return static_cast<std::uint64_t>(number);
}

std::uint32_t
ParamValue::asU32() const
{
    return static_cast<std::uint32_t>(asU64());
}

// -------------------------------------------------------------- SweepPoint

const ParamValue*
SweepPoint::find(const std::string& name) const
{
    for (const auto& [key, value] : params) {
        if (key == name)
            return &value;
    }
    return nullptr;
}

void
SweepPoint::set(const std::string& name, ParamValue value)
{
    for (auto& [key, existing] : params) {
        if (key == name) {
            existing = std::move(value);
            return;
        }
    }
    params.emplace_back(name, std::move(value));
}

double
SweepPoint::number(const std::string& name, double fallback) const
{
    const ParamValue* value = find(name);
    if (value == nullptr)
        return fallback;
    if (!value->isNumber) {
        throw PIM_SIM_FAULT(SimFaultKind::Config, "sweep parameter '", name,
                            "' must be a number, got '", value->text, "'");
    }
    return value->number;
}

std::string
SweepPoint::text(const std::string& name, const std::string& fallback) const
{
    const ParamValue* value = find(name);
    if (value == nullptr)
        return fallback;
    return value->toString();
}

std::string
SweepPoint::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (i != 0)
            os << " ";
        os << params[i].first << "=" << params[i].second.toString();
    }
    return os.str();
}

// --------------------------------------------------------- SweepExperiment

const char*
taskKindName(TaskKind kind)
{
    switch (kind) {
      case TaskKind::Kl1:    return "kl1";
      case TaskKind::Stress: return "stress";
    }
    return "?";
}

std::size_t
SweepExperiment::pointCount() const
{
    std::size_t count = seeds == 0 ? 1 : seeds;
    for (const auto& [name, values] : axes)
        count *= values.size();
    return count;
}

std::vector<SweepPoint>
SweepExperiment::expand() const
{
    // First axis slowest, last fastest; the implicit stress seed axis
    // (when present) is the slowest of all. Points are decoded from a
    // linear index so the order is obviously stable.
    std::vector<SweepPoint> points;
    points.reserve(pointCount());
    const std::size_t seed_count = seeds == 0 ? 1 : seeds;
    std::size_t per_seed = 1;
    for (const auto& [name, values] : axes)
        per_seed *= values.size();
    std::vector<std::size_t> digit(axes.size(), 0);
    for (std::size_t s = 0; s < seed_count; ++s) {
        for (std::size_t index = 0; index < per_seed; ++index) {
            std::size_t rem = index;
            for (std::size_t a = axes.size(); a-- > 0;) {
                digit[a] = rem % axes[a].second.size();
                rem /= axes[a].second.size();
            }
            SweepPoint point = base;
            if (seeds != 0)
                point.set("seed_slot", ParamValue::ofNumber(
                                           static_cast<double>(s)));
            for (std::size_t a = 0; a < axes.size(); ++a)
                point.set(axes[a].first, axes[a].second[digit[a]]);
            points.push_back(std::move(point));
        }
    }
    return points;
}

// --------------------------------------------------------------- SweepSpec

std::size_t
SweepSpec::totalTasks() const
{
    std::size_t count = 0;
    for (const SweepExperiment& experiment : experiments)
        count += experiment.pointCount();
    return count;
}

namespace {

ParamValue
paramFromJson(const std::string& where, const JsonValue& value)
{
    if (value.isNumber())
        return ParamValue::ofNumber(value.asNumber());
    if (value.isString())
        return ParamValue::ofText(value.asString());
    if (value.isBool())
        return ParamValue::ofNumber(value.asBool() ? 1 : 0);
    throw PIM_SIM_FAULT(SimFaultKind::Parse, "sweep spec: ", where,
                        " must be a number, string or bool");
}

SweepPoint
pointFromJson(const std::string& where, const JsonValue& object)
{
    if (!object.isObject()) {
        throw PIM_SIM_FAULT(SimFaultKind::Parse, "sweep spec: ", where,
                            " must be an object");
    }
    SweepPoint point;
    for (const auto& [key, value] : object.members())
        point.set(key, paramFromJson(where + "." + key, value));
    return point;
}

} // namespace

SweepSpec
SweepSpec::parse(const JsonValue& doc)
{
    if (!doc.isObject()) {
        throw PIM_SIM_FAULT(SimFaultKind::Parse,
                            "sweep spec: top level must be an object");
    }
    SweepSpec spec;
    if (const JsonValue* name = doc.find("name"))
        spec.name = name->asString();
    if (const JsonValue* seed = doc.find("seed"))
        spec.seed = static_cast<std::uint64_t>(seed->asNumber());

    const JsonValue* experiments = doc.find("experiments");
    if (experiments == nullptr || !experiments->isArray() ||
        experiments->size() == 0) {
        throw PIM_SIM_FAULT(SimFaultKind::Parse, "sweep spec: requires a "
                            "non-empty 'experiments' array");
    }

    std::set<std::string> ids;
    for (std::size_t i = 0; i < experiments->size(); ++i) {
        const JsonValue& doc_exp = experiments->at(i);
        const std::string where = "experiments." + std::to_string(i);
        SweepExperiment experiment;

        const JsonValue* id = doc_exp.find("id");
        if (id == nullptr || !id->isString() || id->asString().empty()) {
            throw PIM_SIM_FAULT(SimFaultKind::Parse, "sweep spec: ", where,
                                " needs a non-empty string 'id'");
        }
        experiment.id = id->asString();
        if (!ids.insert(experiment.id).second) {
            throw PIM_SIM_FAULT(SimFaultKind::Parse,
                                "sweep spec: duplicate experiment id '",
                                experiment.id, "'");
        }

        const std::string kind =
            doc_exp.find("kind") ? doc_exp.at("kind").asString() : "kl1";
        if (kind == "kl1") {
            experiment.kind = TaskKind::Kl1;
        } else if (kind == "stress") {
            experiment.kind = TaskKind::Stress;
        } else {
            throw PIM_SIM_FAULT(SimFaultKind::Parse, "sweep spec: ", where,
                                ".kind '", kind,
                                "' (want 'kl1' or 'stress')");
        }

        if (const JsonValue* base = doc_exp.find("base"))
            experiment.base = pointFromJson(where + ".base", *base);

        if (const JsonValue* axes = doc_exp.find("axes")) {
            if (!axes->isObject()) {
                throw PIM_SIM_FAULT(SimFaultKind::Parse, "sweep spec: ",
                                    where, ".axes must be an object");
            }
            for (const auto& [axis, values] : axes->members()) {
                if (!values.isArray() || values.size() == 0) {
                    throw PIM_SIM_FAULT(SimFaultKind::Parse, "sweep spec: ",
                                        where, ".axes.", axis,
                                        " must be a non-empty array");
                }
                std::vector<ParamValue> axis_values;
                for (std::size_t v = 0; v < values.size(); ++v) {
                    axis_values.push_back(paramFromJson(
                        where + ".axes." + axis, values.at(v)));
                }
                experiment.axes.emplace_back(axis, std::move(axis_values));
            }
        }

        if (const JsonValue* seeds = doc_exp.find("seeds")) {
            if (experiment.kind != TaskKind::Stress) {
                throw PIM_SIM_FAULT(SimFaultKind::Parse, "sweep spec: ",
                                    where, ".seeds is only valid for "
                                    "stress experiments");
            }
            experiment.seeds =
                static_cast<std::uint32_t>(seeds->asNumber());
        }

        if (const JsonValue* paper = doc_exp.find("paper")) {
            if (!paper->isObject()) {
                throw PIM_SIM_FAULT(SimFaultKind::Parse, "sweep spec: ",
                                    where, ".paper must be an object");
            }
            for (const auto& [metric, value] : paper->members())
                experiment.paper.emplace_back(metric, value.asNumber());
        }

        if (experiment.pointCount() == 0) {
            throw PIM_SIM_FAULT(SimFaultKind::Parse, "sweep spec: ", where,
                                " expands to zero points");
        }
        spec.experiments.push_back(std::move(experiment));
    }
    return spec;
}

SweepSpec
SweepSpec::parseFile(const std::string& path)
{
    return parse(JsonValue::parseFile(path));
}

std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t task_index)
{
    // One splitmix64 step over a mix of base and index: adjacent task
    // indices land on statistically independent streams. Folded to 32
    // bits so a derived seed survives the JSON number path (exact in
    // double, and short enough for the writer's %.10g) and can be fed
    // back to `pim_stress --seed=` verbatim.
    std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (task_index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return (z >> 32) ^ (z & 0xffffffffULL);
}

// ---------------------------------------------------------- built-in specs

namespace {

std::vector<ParamValue>
numbers(std::initializer_list<double> values)
{
    std::vector<ParamValue> out;
    for (double v : values)
        out.push_back(ParamValue::ofNumber(v));
    return out;
}

std::vector<ParamValue>
texts(std::initializer_list<const char*> values)
{
    std::vector<ParamValue> out;
    for (const char* v : values)
        out.push_back(ParamValue::ofText(v));
    return out;
}

std::vector<ParamValue>
allBenchmarkNames()
{
    return texts({"Tri", "Semi", "Puzzle", "Pascal"});
}

} // namespace

SweepSpec
SweepSpec::paperGrid()
{
    // DESIGN.md section 5: one experiment per paper table/figure, the
    // dedicated bench binaries remain the detail view (per-area and
    // per-operation splits). All kl1 experiments default to scale 1 so
    // the full grid stays minutes, not hours; pim_sweep --scale scales
    // every experiment up.
    SweepSpec spec;
    spec.name = "paper_grid";
    spec.seed = 1;

    SweepExperiment table1;
    table1.id = "table1_benchmarks";
    table1.base.set("scale", ParamValue::ofNumber(1));
    table1.axes.emplace_back("benchmark", allBenchmarkNames());
    table1.paper = {{"reductions", (666233.0 + 268820 + 849539 + 302432) / 4},
                    {"suspensions", (1.0 + 23487 + 3069 + 17681) / 4}};
    spec.experiments.push_back(std::move(table1));

    // Tables 2 and 3 measure the same runs (area and operation splits of
    // the unoptimized-command machine); the grid holds the runs once.
    SweepExperiment table23;
    table23.id = "table2_3_no_opt";
    table23.base.set("scale", ParamValue::ofNumber(1));
    table23.base.set("policy", ParamValue::ofText("None"));
    table23.axes.emplace_back("benchmark", allBenchmarkNames());
    spec.experiments.push_back(std::move(table23));

    SweepExperiment table4;
    table4.id = "table4_optimizations";
    table4.base.set("scale", ParamValue::ofNumber(1));
    table4.axes.emplace_back(
        "policy", texts({"None", "Heap", "Goal", "Comm", "All"}));
    table4.axes.emplace_back("benchmark", allBenchmarkNames());
    spec.experiments.push_back(std::move(table4));

    SweepExperiment table5;
    table5.id = "table5_locks";
    table5.base.set("scale", ParamValue::ofNumber(1));
    table5.axes.emplace_back("benchmark", allBenchmarkNames());
    spec.experiments.push_back(std::move(table5));

    SweepExperiment fig1;
    fig1.id = "fig1_block_size";
    fig1.base.set("scale", ParamValue::ofNumber(1));
    fig1.base.set("capacityWords", ParamValue::ofNumber(4096));
    fig1.axes.emplace_back("blockWords", numbers({1, 2, 4, 8, 16}));
    fig1.axes.emplace_back("benchmark", allBenchmarkNames());
    spec.experiments.push_back(std::move(fig1));

    SweepExperiment fig2;
    fig2.id = "fig2_capacity";
    fig2.base.set("scale", ParamValue::ofNumber(1));
    fig2.axes.emplace_back(
        "capacityWords", numbers({512, 1024, 2048, 4096, 8192, 16384}));
    fig2.axes.emplace_back("benchmark", allBenchmarkNames());
    spec.experiments.push_back(std::move(fig2));

    SweepExperiment fig2_bus;
    fig2_bus.id = "fig2_bus_width";
    fig2_bus.base.set("scale", ParamValue::ofNumber(1));
    fig2_bus.axes.emplace_back("busWidthWords", numbers({1, 2}));
    fig2_bus.axes.emplace_back("benchmark", allBenchmarkNames());
    spec.experiments.push_back(std::move(fig2_bus));

    SweepExperiment fig3;
    fig3.id = "fig3_pes";
    fig3.base.set("scale", ParamValue::ofNumber(1));
    fig3.axes.emplace_back("pes", numbers({1, 2, 4, 8}));
    fig3.axes.emplace_back("benchmark", allBenchmarkNames());
    spec.experiments.push_back(std::move(fig3));

    // A randomized coherence/lock batch rides along so every full-grid
    // run also exercises the auditor (docs/ROBUSTNESS.md).
    SweepExperiment stress;
    stress.id = "stress_batch";
    stress.kind = TaskKind::Stress;
    stress.seeds = 8;
    stress.base.set("steps", ParamValue::ofNumber(20000));
    stress.base.set("pes", ParamValue::ofNumber(4));
    spec.experiments.push_back(std::move(stress));

    return spec;
}

SweepSpec
SweepSpec::clustersGrid()
{
    // Beyond-the-paper scaling grid (docs/ARCHITECTURE.md,
    // docs/EXPERIMENTS.md "Beyond the paper"): a clustered stress
    // batch so the auditor sees the wide multi-word masks, the single
    // bus measured up to its saturation point, and the clustered
    // topology (16 PEs per snooping bus, 2-cycle hops) from 128 to
    // 1024 PEs. The single-bus branch deliberately stops at 128 PEs:
    // the bus is already ~99% busy there, and past saturation the
    // emulator's idle-PE poll traffic feeds back into the one global
    // queue, so each further doubling multiplies *simulation* cost
    // ~40x to measure a machine whose behavior is already known
    // (every added PE just queues). The wide clustered points are
    // minutes each — this grid is the experiment record, not the CI
    // smoke.
    SweepSpec spec;
    spec.name = "clusters";
    spec.seed = 1;

    // First so a `--max-tasks=4` run validates the stress batch alone.
    SweepExperiment stress;
    stress.id = "clustered_stress";
    stress.kind = TaskKind::Stress;
    stress.seeds = 4;
    stress.base.set("steps", ParamValue::ofNumber(20000));
    stress.base.set("pes", ParamValue::ofNumber(96));
    stress.base.set("clusterSize", ParamValue::ofNumber(8));
    stress.base.set("hopCycles", ParamValue::ofNumber(2));
    // No lock traffic: the generator acquires locks in random order
    // (hold-and-wait), and at 96 uncoordinated PEs that builds a
    // genuine deadlock cycle for any nonzero share — every PE parked,
    // watchdog correctly reporting it. This batch's job is the wide
    // multi-word masks and inter-cluster routing under the auditor;
    // clustered *lock* coverage lives at tractable PE counts in the
    // ctest `cluster` label (stress smoke, conformance fuzz,
    // attribution cross-check).
    stress.base.set("lockPct", ParamValue::ofNumber(0));
    spec.experiments.push_back(std::move(stress));

    SweepExperiment single;
    single.id = "single_bus_saturation";
    single.base.set("scale", ParamValue::ofNumber(1));
    single.base.set("benchmark", ParamValue::ofText("Pascal"));
    single.axes.emplace_back("pes", numbers({64, 96, 128}));
    spec.experiments.push_back(std::move(single));

    SweepExperiment clustered;
    clustered.id = "clustered_scaling";
    clustered.base.set("scale", ParamValue::ofNumber(1));
    clustered.base.set("benchmark", ParamValue::ofText("Pascal"));
    clustered.base.set("clusterSize", ParamValue::ofNumber(16));
    clustered.base.set("hopCycles", ParamValue::ofNumber(2));
    clustered.axes.emplace_back("pes", numbers({128, 256, 512, 1024}));
    spec.experiments.push_back(std::move(clustered));

    return spec;
}

SweepSpec
SweepSpec::smokeGrid()
{
    // Tiny 4-point grid for CI (tier-1 `sweep` label): two KL1 runs and
    // two stress seeds, seconds on one core.
    SweepSpec spec;
    spec.name = "smoke";
    spec.seed = 1;

    SweepExperiment kl1;
    kl1.id = "kl1_smoke";
    kl1.base.set("scale", ParamValue::ofNumber(1));
    kl1.base.set("pes", ParamValue::ofNumber(2));
    kl1.axes.emplace_back("benchmark", texts({"Tri", "Pascal"}));
    spec.experiments.push_back(std::move(kl1));

    SweepExperiment stress;
    stress.id = "stress_smoke";
    stress.kind = TaskKind::Stress;
    stress.seeds = 2;
    stress.base.set("steps", ParamValue::ofNumber(5000));
    stress.base.set("pes", ParamValue::ofNumber(4));
    spec.experiments.push_back(std::move(stress));

    return spec;
}

} // namespace pim::sweep
