/**
 * @file
 * Declarative sweep specification: a parameter grid over System/KL1
 * configurations and stress seed batches, parsed from JSON
 * (docs/EXPERIMENTS.md has the schema and a worked example).
 *
 * A spec is a list of experiments; each experiment is a base parameter
 * set plus axes whose cartesian product (axes in document order, the
 * last axis varying fastest) yields one simulation task per point. The
 * expansion assigns every task a stable index, and all randomness is
 * derived from (spec seed, task index), so a sweep's results are a pure
 * function of the spec — independent of worker count and scheduling
 * order (see DESIGN.md "Threading model").
 */

#ifndef PIMCACHE_SWEEP_SWEEP_SPEC_H_
#define PIMCACHE_SWEEP_SWEEP_SPEC_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pim {

class JsonValue;

namespace sweep {

/** One scalar parameter value: a number or a piece of text. */
struct ParamValue {
    bool isNumber = false;
    double number = 0;
    std::string text;

    static ParamValue ofNumber(double v);
    static ParamValue ofText(std::string v);

    /** Canonical rendering ("4", "2.5", "Tri") used in rows and keys. */
    std::string toString() const;

    std::uint64_t asU64() const;
    std::uint32_t asU32() const;
};

/** An ordered parameter assignment (one grid point, or a base set). */
struct SweepPoint {
    std::vector<std::pair<std::string, ParamValue>> params;

    const ParamValue* find(const std::string& name) const;
    bool has(const std::string& name) const { return find(name) != nullptr; }

    /** Set or overwrite @p name (overwrite keeps the original position). */
    void set(const std::string& name, ParamValue value);

    double number(const std::string& name, double fallback) const;
    std::string text(const std::string& name,
                     const std::string& fallback) const;

    /** "a=1 b=Tri ..." (replay/debug rendering). */
    std::string toString() const;
};

/** What a task simulates. */
enum class TaskKind : std::uint8_t {
    Kl1,    ///< One KL1 benchmark run (runBenchmark).
    Stress, ///< One randomized stress run (runStress).
};

const char* taskKindName(TaskKind kind);

/** One experiment: base parameters x axes, plus paper reference values. */
struct SweepExperiment {
    std::string id;
    TaskKind kind = TaskKind::Kl1;
    SweepPoint base;
    /** Axes in document order; each axis is a name and its values. */
    std::vector<std::pair<std::string, std::vector<ParamValue>>> axes;
    /**
     * Stress only: adds an implicit leading "seed" axis of this many
     * per-task derived seeds (deriveSeed of the spec seed and the task
     * index). 0 = no implicit axis.
     */
    std::uint32_t seeds = 0;
    /** Paper reference values: metric name -> expected mean over rows. */
    std::vector<std::pair<std::string, double>> paper;

    /** Cartesian product of the axes over the base point. */
    std::vector<SweepPoint> expand() const;

    /** Number of grid points without materializing them. */
    std::size_t pointCount() const;
};

/** A whole sweep: named list of experiments with a base seed. */
struct SweepSpec {
    std::string name = "sweep";
    std::uint64_t seed = 1;
    std::vector<SweepExperiment> experiments;

    /** Total task count across experiments. */
    std::size_t totalTasks() const;

    /** Parse a spec document. @throws SimFault (Parse/Config). */
    static SweepSpec parse(const JsonValue& doc);

    /** Read, parse and validate @p path. @throws SimFault. */
    static SweepSpec parseFile(const std::string& path);

    /**
     * The built-in full paper grid: every Table 1-5 and Figure 1-3
     * parameter point (DESIGN.md section 5) as one sweep
     * (`pim_sweep --spec=paper`).
     */
    static SweepSpec paperGrid();

    /** Built-in tiny 4-point spec for CI smokes (`--spec=smoke`). */
    static SweepSpec smokeGrid();

    /**
     * Built-in beyond-the-paper scaling grid (`--spec=clusters`,
     * docs/ARCHITECTURE.md): a clustered stress batch, the single bus
     * up to its 128-PE saturation point, and the clustered topology
     * from 128 to 1024 PEs.
     */
    static SweepSpec clustersGrid();
};

/**
 * Stable per-task seed: a splitmix64 step over (base, task_index),
 * folded to 32 bits so it round-trips exactly through JSON rows and
 * `pim_stress --seed=`. Tasks derive their RNG stream from their grid
 * index, never from a worker id or submission order, which is what
 * makes sweep results bit-identical across --jobs values.
 */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t task_index);

} // namespace sweep
} // namespace pim

#endif // PIMCACHE_SWEEP_SWEEP_SPEC_H_
