/**
 * @file
 * Parallel sweep execution: fans the independent simulation tasks of a
 * SweepSpec out across a work-stealing ThreadPool and aggregates the
 * per-task rows into one deterministic SWEEP document
 * (docs/EXPERIMENTS.md).
 *
 * Determinism contract: every task owns its whole simulation stack
 * (System/Emulator, MetricsRegistry, RNG derived from the task's grid
 * index), results land in a slot pre-assigned by task index, and all
 * aggregation runs single-threaded after the pool joins — so the SWEEP
 * document is byte-identical for any --jobs value. Wall-clock
 * measurements are intentionally kept out of it (SWEEP.perf.json).
 */

#ifndef PIMCACHE_SWEEP_SWEEP_RUNNER_H_
#define PIMCACHE_SWEEP_SWEEP_RUNNER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sweep/sweep_spec.h"

namespace pim::sweep {

/** Result of one grid point (one simulation task). */
struct SweepRow {
    std::size_t taskIndex = 0;  ///< Stable index in the expanded grid.
    std::size_t experiment = 0; ///< Index into SweepSpec::experiments.
    SweepPoint params;          ///< The grid point (post-expansion).
    /** Measured values, in emission order (numbers and text). */
    std::vector<std::pair<std::string, ParamValue>> metrics;
    bool failed = false;        ///< Task threw / detected a SimFault.
    std::string faultKind;      ///< simFaultKindName when failed.
    std::string message;        ///< Fault message when failed.
    double seconds = 0;         ///< Thread CPU time (perf only, not in SWEEP).
    // Execution bookkeeping (perf sidecar / checkpoint only — never in
    // SWEEP.json, which must be byte-identical for any retry history).
    bool done = false;          ///< The slot holds a final result.
    bool resumed = false;       ///< Result restored from SWEEP.ckpt.json.
    std::uint32_t attempts = 0; ///< Executions of the task (>= 1 when run).
    /** Fault kind of each failed-then-retried attempt, in order. */
    std::vector<std::string> retriedKinds;
};

/**
 * Retry policy for transient task faults (simFaultKindTransient —
 * today: Timeout). Deterministic fault kinds are never retried: the
 * simulation is a pure function of its config, so re-running could only
 * reproduce the same fault.
 */
struct RetryPolicy {
    std::uint32_t retries = 2;      ///< Extra attempts after the first.
    std::uint32_t backoffBaseMs = 100; ///< First backoff; doubles per retry.
    std::uint32_t backoffCapMs = 5000; ///< Ceiling for one backoff sleep.
};

/** Backoff before retry @p retry_index (1-based): base * 2^(i-1), capped. */
std::uint32_t retryBackoffMs(const RetryPolicy& policy,
                             std::uint32_t retry_index);

/** One task's retry history (perf sidecar, tests). */
struct RetryAccounting {
    std::uint32_t attempts = 0;           ///< Executions performed.
    std::vector<std::uint32_t> backoffsMs; ///< Sleep before each retry.
};

/**
 * Run @p attempt up to policy.retries+1 times. @p attempt returns true
 * when its failure was transient and worth retrying; any other outcome
 * (success, or a deterministic fault recorded by the attempt itself)
 * stops the loop. @p sleep_ms receives each backoff — the runner passes
 * a real sleep, tests a recorder.
 */
void runWithRetry(const RetryPolicy& policy,
                  const std::function<bool()>& attempt,
                  RetryAccounting* accounting,
                  const std::function<void(std::uint32_t)>& sleep_ms);

/** Execution options (the pim_sweep CLI surface). */
struct SweepOptions {
    unsigned jobs = 1;       ///< Worker threads (0 = hardware).
    std::string outDir;      ///< Output directory ("" = don't write files).
    std::uint32_t scale = 0; ///< Override every kl1 task's scale (0 = spec).
    bool perfInline = false; ///< Embed the perf block in SWEEP.json
                             ///< (breaks cross-jobs byte-identity).
    RetryPolicy retry;       ///< Transient-fault retry policy.
    /**
     * Per-task wall-clock budget in seconds (0 = none). A point that
     * exceeds it fails with SimFault(Timeout) — a result row, retried
     * per the policy — while the rest of the grid keeps draining.
     */
    double timeoutSeconds = 0;
    /**
     * Resume from outDir/SWEEP.ckpt.json: slots whose results were
     * checkpointed by an earlier (interrupted) run of the *same*
     * spec+options (verified by config hash) are restored, not re-run.
     * The final SWEEP.json is byte-identical to an uninterrupted run.
     */
    bool resume = false;
    /**
     * Stop after this many tasks have completed this invocation,
     * leaving the checkpoint behind (0 = run everything). The
     * deterministic way to "interrupt" a sweep — the resume ctest and
     * operators draining a grid in slices both use it.
     */
    std::size_t maxTasks = 0;
    /**
     * Completed tasks between checkpoint writes when outDir is set
     * (0 = no periodic checkpointing). Every write is atomic
     * (temp + rename), so a kill leaves a valid previous checkpoint.
     */
    std::uint32_t checkpointEvery = 1;
};

/** Everything a sweep run produced. */
struct SweepOutcome {
    std::vector<SweepRow> rows; ///< Task-index order.
    std::size_t failedRows = 0;
    std::size_t completedRows = 0; ///< Slots holding final results.
    std::size_t resumedRows = 0;   ///< Restored from the checkpoint.
    std::size_t retriedRows = 0;   ///< Rows that needed > 1 attempt.
    bool complete = false;      ///< Every slot is done (SWEEP.json valid).
    double wallSeconds = 0;     ///< Whole-grid wall time.
    double taskSecondsSum = 0;  ///< Serial-time estimate (sum of per-task
                                ///< thread CPU times).
    unsigned jobs = 1;          ///< Workers actually used.
    std::uint64_t fingerprint = 0; ///< Hash of all deterministic rows.
    std::string sweepJson;      ///< Rendered SWEEP document ("" if partial).
};

/** Expand @p spec and run every task on @p options.jobs workers. */
SweepOutcome runSweep(const SweepSpec& spec, const SweepOptions& options);

/**
 * Hash identifying the deterministic inputs of a sweep: the spec (name,
 * seed, every expanded task's experiment/kind/params, post scale
 * override) — and nothing execution-related (jobs, retries, timeouts,
 * output paths). A checkpoint is only resumable into a run with the
 * same hash. Rendered as 16 hex digits.
 */
std::string sweepConfigHash(const SweepSpec& spec,
                            const SweepOptions& options);

/** Checkpoint file name inside SweepOptions::outDir. */
inline const char* sweepCheckpointName() { return "SWEEP.ckpt.json"; }

/**
 * Render the perf sidecar (jobs, wall seconds, sims/sec, speedup
 * estimate = task-seconds-sum / wall). Lives outside SWEEP.json so the
 * deterministic document stays byte-identical across --jobs values.
 */
std::string renderPerfJson(const SweepOutcome& outcome);

/**
 * Write SWEEP.json, SWEEP.perf.json and one BENCH_sweep_<id>.json per
 * experiment into options.outDir (created, parents included, when
 * missing). @return false if any file cannot be written.
 */
bool writeSweepFiles(const SweepSpec& spec, const SweepOutcome& outcome,
                     const SweepOptions& options);

} // namespace pim::sweep

#endif // PIMCACHE_SWEEP_SWEEP_RUNNER_H_
