/**
 * @file
 * Parallel sweep execution: fans the independent simulation tasks of a
 * SweepSpec out across a work-stealing ThreadPool and aggregates the
 * per-task rows into one deterministic SWEEP document
 * (docs/EXPERIMENTS.md).
 *
 * Determinism contract: every task owns its whole simulation stack
 * (System/Emulator, MetricsRegistry, RNG derived from the task's grid
 * index), results land in a slot pre-assigned by task index, and all
 * aggregation runs single-threaded after the pool joins — so the SWEEP
 * document is byte-identical for any --jobs value. Wall-clock
 * measurements are intentionally kept out of it (SWEEP.perf.json).
 */

#ifndef PIMCACHE_SWEEP_SWEEP_RUNNER_H_
#define PIMCACHE_SWEEP_SWEEP_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/sweep_spec.h"

namespace pim::sweep {

/** Result of one grid point (one simulation task). */
struct SweepRow {
    std::size_t taskIndex = 0;  ///< Stable index in the expanded grid.
    std::size_t experiment = 0; ///< Index into SweepSpec::experiments.
    SweepPoint params;          ///< The grid point (post-expansion).
    /** Measured values, in emission order (numbers and text). */
    std::vector<std::pair<std::string, ParamValue>> metrics;
    bool failed = false;        ///< Task threw / detected a SimFault.
    std::string faultKind;      ///< simFaultKindName when failed.
    std::string message;        ///< Fault message when failed.
    double seconds = 0;         ///< Thread CPU time (perf only, not in SWEEP).
};

/** Execution options (the pim_sweep CLI surface). */
struct SweepOptions {
    unsigned jobs = 1;       ///< Worker threads (0 = hardware).
    std::string outDir;      ///< Output directory ("" = don't write files).
    std::uint32_t scale = 0; ///< Override every kl1 task's scale (0 = spec).
    bool perfInline = false; ///< Embed the perf block in SWEEP.json
                             ///< (breaks cross-jobs byte-identity).
};

/** Everything a sweep run produced. */
struct SweepOutcome {
    std::vector<SweepRow> rows; ///< Task-index order.
    std::size_t failedRows = 0;
    double wallSeconds = 0;     ///< Whole-grid wall time.
    double taskSecondsSum = 0;  ///< Serial-time estimate (sum of per-task
                                ///< thread CPU times).
    unsigned jobs = 1;          ///< Workers actually used.
    std::uint64_t fingerprint = 0; ///< Hash of all deterministic rows.
    std::string sweepJson;      ///< Rendered SWEEP document.
};

/** Expand @p spec and run every task on @p options.jobs workers. */
SweepOutcome runSweep(const SweepSpec& spec, const SweepOptions& options);

/**
 * Render the perf sidecar (jobs, wall seconds, sims/sec, speedup
 * estimate = task-seconds-sum / wall). Lives outside SWEEP.json so the
 * deterministic document stays byte-identical across --jobs values.
 */
std::string renderPerfJson(const SweepOutcome& outcome);

/**
 * Write SWEEP.json, SWEEP.perf.json and one BENCH_sweep_<id>.json per
 * experiment into options.outDir (created, parents included, when
 * missing). @return false if any file cannot be written.
 */
bool writeSweepFiles(const SweepSpec& spec, const SweepOutcome& outcome,
                     const SweepOptions& options);

} // namespace pim::sweep

#endif // PIMCACHE_SWEEP_SWEEP_RUNNER_H_
