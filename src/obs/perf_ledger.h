/**
 * @file
 * Cross-run performance regression ledger (docs/OBSERVABILITY.md).
 *
 * The bench binaries emit BENCH_*.json / SWEEP.json documents per run,
 * but nothing compared them across runs — a throughput regression or a
 * silent bus-cycle drift had no guard. This library turns those
 * documents into ledger records, appends them to an append-only
 * BENCH_HISTORY.jsonl file (one JSON record per line), and gates the
 * newest record against the previous one:
 *
 *  - *throughput* metrics (refs/sec, sims/sec, speedups) are wall-clock
 *    noise, so only a drop beyond GateConfig::maxDropPct fails;
 *  - *exact* metrics (simulated cycles, bus transactions, makespans,
 *    failure counts) are pure functions of the seed, so any drift
 *    beyond GateConfig::exactTolPct (default 0) fails unless the run
 *    explicitly updates the golden (updateGolden).
 *
 * The bench/pim_report CLI is a thin wrapper over these functions; the
 * logic lives here so tests can drive every gate path directly.
 */

#ifndef PIMCACHE_OBS_PERF_LEDGER_H_
#define PIMCACHE_OBS_PERF_LEDGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pim {

class JsonValue;

/** One tracked number. Exact metrics golden-gate; others drop-gate. */
struct LedgerMetric {
    double value = 0;
    bool exact = false;
};

/** One ledger line: a run's metrics plus provenance. */
struct LedgerRecord {
    std::uint64_t seq = 0;   ///< 1-based position in the ledger.
    std::string stamp;       ///< Timestamp or caller-chosen tag.
    std::string label;       ///< Run label (e.g. "ci", "local").
    std::vector<std::string> inputs; ///< Source document paths.
    std::map<std::string, LedgerMetric> metrics;
};

/** Gate thresholds. */
struct GateConfig {
    double maxDropPct = 20.0; ///< Allowed throughput drop, percent.
    double exactTolPct = 0.0; ///< Allowed exact-metric drift, percent.
    bool updateGolden = false; ///< Accept exact drift as the new golden.
};

/** One metric that failed the gate. */
struct GateFinding {
    std::string metric;
    double baseline = 0;
    double current = 0;
    double deltaPct = 0;
    bool exact = false;
};

/** Gate outcome: regressions fail, notes inform. */
struct GateResult {
    std::vector<GateFinding> regressions;
    std::vector<std::string> notes;
    std::uint64_t compared = 0; ///< Metrics present in both records.

    bool failed() const { return !regressions.empty(); }
};

/**
 * Extract the tracked metrics from one parsed simulator document.
 * Recognized shapes: pim_perf's BENCH_perf.json (refs/sec throughput +
 * exact cycles/transactions per PE point), generic BENCH_*.json table
 * reports (every "measured*" row field, exact), SWEEP.json (per
 * experiment: exact makespan mean and bus-cycle total, plus
 * failed_rows), SWEEP.perf.json (sims/sec throughput), attribution
 * documents (exact bucket cycles and miss-class counts) and
 * CAMPAIGN.json (exact escape count). Unknown documents yield an empty
 * map — pim_report reports them as a note, not an error.
 */
std::map<std::string, LedgerMetric>
extractLedgerMetrics(const JsonValue& doc);

/** Serialize @p record as one compact JSONL line (no trailing \n). */
std::string ledgerRecordLine(const LedgerRecord& record);

/** Parse one JSONL line back into a record. @throws SimFault(Parse). */
LedgerRecord parseLedgerRecord(const std::string& line);

/**
 * Load every record of the JSONL ledger at @p path (missing file =>
 * empty history). Blank lines are skipped. @throws SimFault(Parse) on
 * a malformed line (with its line number).
 */
std::vector<LedgerRecord> loadLedger(const std::string& path);

/**
 * Append @p record to the ledger at @p path, creating parents as
 * needed. The whole file is re-published atomically (temp + rename) so
 * a crash never leaves a torn line. @throws SimFault(Config) on I/O
 * failure.
 */
void appendLedger(const std::string& path, const LedgerRecord& record);

/** Gate @p current against @p baseline under @p config. */
GateResult gateRecords(const LedgerRecord& baseline,
                       const LedgerRecord& current,
                       const GateConfig& config);

/**
 * Markdown trend report over the ledger: one section per throughput
 * metric of the newest record (last @p last_n values with deltas), and
 * a summary of the exact metrics under golden guard.
 */
std::string trendMarkdown(const std::vector<LedgerRecord>& history,
                          std::size_t last_n = 10);

} // namespace pim

#endif // PIMCACHE_OBS_PERF_LEDGER_H_
