#include "obs/perf_ledger.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/fs_util.h"
#include "common/json.h"
#include "common/sim_fault.h"

namespace pim {

namespace {

void
putMetric(std::map<std::string, LedgerMetric>* out, const std::string& key,
          double value, bool exact)
{
    LedgerMetric metric;
    metric.value = value;
    metric.exact = exact;
    (*out)[key] = metric;
}

/** Number at @p path under @p doc, or false. */
bool
numberAt(const JsonValue& doc, const std::string& path, double* out)
{
    const JsonValue* v = doc.findPath(path);
    if (v == nullptr || !v->isNumber())
        return false;
    *out = v->asNumber();
    return true;
}

void
extractPerf(const JsonValue& doc, std::map<std::string, LedgerMetric>* out)
{
    const JsonValue* rows = doc.find("rows");
    if (rows == nullptr || !rows->isArray())
        return;
    for (const JsonValue& row : rows->asArray()) {
        const JsonValue* mode = row.find("mode");
        const JsonValue* pes = row.find("pes_point");
        if (mode == nullptr || pes == nullptr || !mode->isString() ||
            !pes->isNumber()) {
            continue;
        }
        const std::string pe_tag =
            "p" +
            std::to_string(static_cast<std::uint64_t>(pes->asNumber()));
        if (mode->asString() == "filtered") {
            const std::string prefix = "perf." + pe_tag;
            const JsonValue* v = row.find("refs_per_sec");
            if (v != nullptr && v->isNumber()) {
                putMetric(out, prefix + ".refs_per_sec", v->asNumber(),
                          false);
            }
            v = row.find("cycles_per_ref");
            if (v != nullptr && v->isNumber()) {
                putMetric(out, prefix + ".cycles_per_ref", v->asNumber(),
                          true);
            }
            v = row.find("bus_transactions");
            if (v != nullptr && v->isNumber()) {
                putMetric(out, prefix + ".bus_transactions",
                          v->asNumber(), true);
            }
        } else if (mode->asString() == "par-core") {
            // Parallel discrete-event core rows (pim_perf --par-jobs).
            // Throughput and wall-clock speedup are inexact (host
            // noise); the local fraction and epoch count are pure
            // functions of the workload, so drifts there are real
            // scheduling regressions.
            const std::string prefix = "par." + pe_tag;
            const JsonValue* v = row.find("refs_per_sec");
            if (v != nullptr && v->isNumber()) {
                putMetric(out, prefix + ".refs_per_sec", v->asNumber(),
                          false);
            }
            v = row.find("speedup_vs_seq");
            if (v != nullptr && v->isNumber()) {
                putMetric(out, prefix + ".speedup_vs_seq", v->asNumber(),
                          false);
            }
            v = row.find("local_frac");
            if (v != nullptr && v->isNumber()) {
                putMetric(out, prefix + ".local_frac", v->asNumber(),
                          true);
            }
            v = row.find("epochs");
            if (v != nullptr && v->isNumber())
                putMetric(out, prefix + ".epochs", v->asNumber(), true);
        }
    }
}

void
extractBenchRows(const JsonValue& doc, const std::string& name,
                 std::map<std::string, LedgerMetric>* out)
{
    const JsonValue* rows = doc.find("rows");
    if (rows == nullptr || !rows->isArray())
        return;
    std::size_t i = 0;
    for (const JsonValue& row : rows->asArray()) {
        if (row.isObject()) {
            for (const auto& [key, value] : row.members()) {
                if (key.rfind("measured", 0) == 0 && value.isNumber()) {
                    putMetric(out,
                              name + ".r" + std::to_string(i) + "." + key,
                              value.asNumber(), true);
                }
            }
        }
        ++i;
    }
}

void
extractSweep(const JsonValue& doc, std::map<std::string, LedgerMetric>* out)
{
    double failed = 0;
    if (numberAt(doc, "failed_rows", &failed))
        putMetric(out, "sweep.failed_rows", failed, true);
    const JsonValue* experiments = doc.find("experiments");
    if (experiments == nullptr || !experiments->isArray())
        return;
    for (const JsonValue& exp : experiments->asArray()) {
        const JsonValue* id = exp.find("id");
        if (id == nullptr || !id->isString())
            continue;
        const std::string prefix = "sweep." + id->asString();
        double mean = 0;
        if (numberAt(exp, "aggregate.makespan.mean", &mean))
            putMetric(out, prefix + ".makespan_mean", mean, true);
        const JsonValue* rows = exp.find("rows");
        if (rows != nullptr && rows->isArray()) {
            double bus_total = 0;
            bool any = false;
            for (const JsonValue& row : rows->asArray()) {
                const JsonValue* cycles = row.find("bus_cycles");
                if (cycles != nullptr && cycles->isNumber()) {
                    bus_total += cycles->asNumber();
                    any = true;
                }
            }
            if (any)
                putMetric(out, prefix + ".bus_cycles", bus_total, true);
        }
    }
}

void
extractAttribution(const JsonValue& doc,
                   std::map<std::string, LedgerMetric>* out)
{
    const JsonValue* classes = doc.find("miss_classes");
    if (classes != nullptr && classes->isObject()) {
        for (const auto& [key, value] : classes->members()) {
            if (value.isNumber())
                putMetric(out, "attr.miss." + key, value.asNumber(), true);
        }
    }
    const JsonValue* buckets = doc.find("buckets");
    if (buckets != nullptr && buckets->isArray()) {
        for (const JsonValue& bucket : buckets->asArray()) {
            const JsonValue* name = bucket.find("bucket");
            const JsonValue* cycles = bucket.find("cycles");
            if (name != nullptr && name->isString() && cycles != nullptr &&
                cycles->isNumber()) {
                putMetric(out, "attr.bucket." + name->asString(),
                          cycles->asNumber(), true);
            }
        }
    }
}

} // namespace

std::map<std::string, LedgerMetric>
extractLedgerMetrics(const JsonValue& doc)
{
    std::map<std::string, LedgerMetric> out;
    if (!doc.isObject())
        return out;

    const JsonValue* name = doc.find("name");
    const std::string doc_name =
        name != nullptr && name->isString() ? name->asString() : "";

    if (doc_name == "perf") {
        extractPerf(doc, &out);
    } else if (doc_name == "attribution") {
        extractAttribution(doc, &out);
    } else if (doc.has("experiments")) {
        extractSweep(doc, &out);
    } else if (doc.has("sims_per_sec")) {
        double v = 0;
        if (numberAt(doc, "sims_per_sec", &v))
            putMetric(&out, "sweep_perf.sims_per_sec", v, false);
        if (numberAt(doc, "speedup_vs_serial", &v))
            putMetric(&out, "sweep_perf.speedup_vs_serial", v, false);
    } else if (doc.has("totals")) {
        double v = 0;
        if (numberAt(doc, "totals.escaped", &v))
            putMetric(&out, "campaign.escaped", v, true);
    } else if (!doc_name.empty()) {
        extractBenchRows(doc, doc_name, &out);
    }
    return out;
}

std::string
ledgerRecordLine(const LedgerRecord& record)
{
    std::ostringstream os;
    JsonWriter json(os, /*pretty=*/false);
    json.beginObject();
    json.field("seq", record.seq);
    json.field("stamp", record.stamp);
    json.field("label", record.label);
    json.key("inputs");
    json.beginArray();
    for (const std::string& input : record.inputs)
        json.value(input);
    json.endArray();
    json.key("metrics");
    json.beginObject();
    for (const auto& [key, metric] : record.metrics) {
        json.key(key);
        json.beginObject();
        json.field("v", metric.value);
        json.field("exact", metric.exact);
        json.endObject();
    }
    json.endObject();
    json.endObject();
    return os.str();
}

LedgerRecord
parseLedgerRecord(const std::string& line)
{
    const JsonValue doc = JsonValue::parse(line);
    LedgerRecord record;
    const JsonValue* seq = doc.find("seq");
    if (seq == nullptr || !seq->isNumber()) {
        throw PIM_SIM_FAULT(SimFaultKind::Parse,
                            "ledger record without a numeric 'seq'");
    }
    record.seq = static_cast<std::uint64_t>(seq->asNumber());
    const JsonValue* stamp = doc.find("stamp");
    if (stamp != nullptr && stamp->isString())
        record.stamp = stamp->asString();
    const JsonValue* label = doc.find("label");
    if (label != nullptr && label->isString())
        record.label = label->asString();
    const JsonValue* inputs = doc.find("inputs");
    if (inputs != nullptr && inputs->isArray()) {
        for (const JsonValue& input : inputs->asArray()) {
            if (input.isString())
                record.inputs.push_back(input.asString());
        }
    }
    const JsonValue* metrics = doc.find("metrics");
    if (metrics == nullptr || !metrics->isObject()) {
        throw PIM_SIM_FAULT(SimFaultKind::Parse,
                            "ledger record without a 'metrics' object");
    }
    for (const auto& [key, value] : metrics->members()) {
        const JsonValue* v = value.find("v");
        const JsonValue* exact = value.find("exact");
        if (v == nullptr || !v->isNumber()) {
            throw PIM_SIM_FAULT(SimFaultKind::Parse, "ledger metric '",
                                key, "' without a numeric 'v'");
        }
        LedgerMetric metric;
        metric.value = v->asNumber();
        metric.exact = exact != nullptr && exact->isBool() &&
                       exact->asBool();
        record.metrics[key] = metric;
    }
    return record;
}

std::vector<LedgerRecord>
loadLedger(const std::string& path)
{
    std::vector<LedgerRecord> history;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return history; // No ledger yet: empty history.
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        try {
            history.push_back(parseLedgerRecord(line));
        } catch (const SimFault& fault) {
            throw PIM_SIM_FAULT(SimFaultKind::Parse, path, ":", line_no,
                                ": ", fault.message());
        }
    }
    return history;
}

void
appendLedger(const std::string& path, const LedgerRecord& record)
{
    // Read-modify-publish: the rewritten file is the old content plus
    // one line, landed atomically so a crash never tears the ledger.
    std::string content;
    {
        std::ifstream in(path, std::ios::binary);
        if (in) {
            std::ostringstream os;
            os << in.rdbuf();
            content = os.str();
        }
    }
    if (!content.empty() && content.back() != '\n')
        content += '\n';
    content += ledgerRecordLine(record);
    content += '\n';
    std::string error;
    if (!writeFileAtomic(path, content, &error)) {
        throw PIM_SIM_FAULT(SimFaultKind::Config,
                            "cannot append to ledger: ", error);
    }
}

GateResult
gateRecords(const LedgerRecord& baseline, const LedgerRecord& current,
            const GateConfig& config)
{
    GateResult result;
    for (const auto& [key, cur] : current.metrics) {
        const auto base_it = baseline.metrics.find(key);
        if (base_it == baseline.metrics.end()) {
            result.notes.push_back("new metric: " + key);
            continue;
        }
        const LedgerMetric& base = base_it->second;
        result.compared += 1;

        double delta_pct = 0;
        if (base.value != 0) {
            delta_pct = 100.0 * (cur.value - base.value) / base.value;
        } else if (cur.value != 0) {
            delta_pct = cur.value > 0 ? 100.0 : -100.0;
        }

        GateFinding finding;
        finding.metric = key;
        finding.baseline = base.value;
        finding.current = cur.value;
        finding.deltaPct = delta_pct;
        finding.exact = cur.exact;

        if (cur.exact) {
            if (std::fabs(delta_pct) > config.exactTolPct) {
                if (config.updateGolden) {
                    result.notes.push_back("golden updated: " + key);
                } else {
                    result.regressions.push_back(finding);
                }
            }
        } else if (delta_pct < -config.maxDropPct) {
            result.regressions.push_back(finding);
        } else if (delta_pct > config.maxDropPct) {
            result.notes.push_back("improved: " + key);
        }
    }
    for (const auto& [key, base] : baseline.metrics) {
        (void)base;
        if (current.metrics.find(key) == current.metrics.end())
            result.notes.push_back("metric disappeared: " + key);
    }
    // Most-severe first: exact drift before throughput drops, then by
    // magnitude.
    std::sort(result.regressions.begin(), result.regressions.end(),
              [](const GateFinding& a, const GateFinding& b) {
                  if (a.exact != b.exact)
                      return a.exact;
                  return std::fabs(a.deltaPct) > std::fabs(b.deltaPct);
              });
    return result;
}

std::string
trendMarkdown(const std::vector<LedgerRecord>& history, std::size_t last_n)
{
    std::ostringstream out;
    out << "# Performance trend\n\n";
    if (history.empty()) {
        out << "The ledger is empty.\n";
        return out.str();
    }
    const LedgerRecord& latest = history.back();
    out << history.size() << " ledger record(s); latest: seq "
        << latest.seq;
    if (!latest.stamp.empty())
        out << ", " << latest.stamp;
    if (!latest.label.empty())
        out << ", label `" << latest.label << "`";
    out << ".\n";

    const std::size_t first =
        history.size() > last_n ? history.size() - last_n : 0;

    // One section per throughput metric of the newest record.
    for (const auto& [key, metric] : latest.metrics) {
        if (metric.exact)
            continue;
        out << "\n## " << key << "\n\n";
        out << "| seq | stamp | value | delta |\n";
        out << "|----:|:------|------:|------:|\n";
        double prev = 0;
        bool has_prev = false;
        for (std::size_t i = first; i < history.size(); ++i) {
            const LedgerRecord& rec = history[i];
            const auto it = rec.metrics.find(key);
            if (it == rec.metrics.end())
                continue;
            char value_buf[32];
            std::snprintf(value_buf, sizeof value_buf, "%.6g",
                          it->second.value);
            out << "| " << rec.seq << " | " << rec.stamp << " | "
                << value_buf << " | ";
            if (has_prev && prev != 0) {
                char delta_buf[32];
                std::snprintf(delta_buf, sizeof delta_buf, "%+.1f%%",
                              100.0 * (it->second.value - prev) / prev);
                out << delta_buf;
            } else {
                out << "-";
            }
            out << " |\n";
            prev = it->second.value;
            has_prev = true;
        }
    }

    std::size_t exact_count = 0;
    for (const auto& [key, metric] : latest.metrics) {
        (void)key;
        if (metric.exact)
            ++exact_count;
    }
    out << "\n## Golden guard\n\n"
        << exact_count << " exact metric(s) under drift guard "
        << "(simulated cycles, bus totals, failure counts); any change "
        << "without `--update-golden` fails the gate.\n";
    return out.str();
}

} // namespace pim
