/**
 * @file
 * The observability event interface (docs/OBSERVABILITY.md).
 *
 * EventSink is the sibling of AccessObserver for *mechanism-level* events:
 * where AccessObserver sees one completed memory operation, an EventSink
 * sees the machinery underneath it — bus transactions (arbitration wait,
 * snoop round, H/LH response, data beats), cache block state transitions,
 * fills, purges and swap-outs, lock-directory LCK/LWAIT/EMP transitions,
 * and the park/wake lifecycle of busy-waiting PEs.
 *
 * Hooks are guarded at every emission site (`if (sink_ != nullptr)`), so
 * an unobserved simulation pays one pointer compare per site and nothing
 * else. Every hook defaults to a no-op; sinks override what they need.
 * This header is intentionally header-only so the model libraries (bus,
 * cache, sim) depend on no observability code — concrete sinks
 * (TimelineRecorder, MetricsRegistry) live in the pim_obs library.
 */

#ifndef PIMCACHE_OBS_EVENT_SINK_H_
#define PIMCACHE_OBS_EVENT_SINK_H_

#include <cstdint>
#include <vector>

#include "bus/timing.h"
#include "cache/state.h"
#include "common/types.h"
#include "mem/area.h"
#include "trace/ref.h"

namespace pim {

/**
 * One completed bus transaction, including LH-rejected attempts.
 * `startedAt - requestedAt` is the arbitration wait (the bus was busy);
 * `completedAt - startedAt` is the cycles the transaction held the bus.
 */
struct BusTxnEvent {
    PeId requester = 0;
    BusPattern pattern = BusPattern::MemFetch;
    Area area = Area::Unknown;
    Addr blockAddr = 0;
    Cycles requestedAt = 0; ///< When the requester asked for the bus.
    Cycles startedAt = 0;   ///< When arbitration granted it.
    Cycles completedAt = 0; ///< When the bus was released.
    BusCmd cmd = BusCmd::F;
    bool hasCmd = false;    ///< False for swap-out-only / word-write.
    bool withLock = false;  ///< An LK rode along.
    bool lockHit = false;   ///< Answered LH; the transaction aborted.
    bool supplied = false;  ///< H response: data came cache-to-cache.
    bool supplierDirty = false;
    std::uint32_t dataBeats = 0; ///< Data-carrying bus cycles.
    /** Interconnect hop cycles (clustered topology; 0 on one bus). */
    Cycles interClusterCycles = 0;
};

/** Observer of mechanism-level simulator events. All hooks default to
 *  no-ops; implementations must not throw. */
class EventSink
{
  public:
    virtual ~EventSink() = default;

    // -- Bus ---------------------------------------------------------------

    /** A bus transaction completed (or aborted with LH). */
    virtual void
    onBusTransaction(const BusTxnEvent& event)
    {
        (void)event;
    }

    // -- Cache -------------------------------------------------------------

    /** A cache block changed state (from != to; INV means absent). */
    virtual void
    onCacheTransition(PeId pe, Addr block_addr, CacheState from,
                      CacheState to, Cycles when)
    {
        (void)pe; (void)block_addr; (void)from; (void)to; (void)when;
    }

    /** A block was installed. @p from_cache: supplied cache-to-cache. */
    virtual void
    onCacheFill(PeId pe, Addr block_addr, bool from_cache, bool dirty,
                Cycles when)
    {
        (void)pe; (void)block_addr; (void)from_cache; (void)dirty;
        (void)when;
    }

    /** A dirty victim was copied back to shared memory. */
    virtual void
    onSwapOut(PeId pe, Addr block_addr, Cycles when)
    {
        (void)pe; (void)block_addr; (void)when;
    }

    /** An own copy was purged without copy-back (ER/RP). */
    virtual void
    onPurge(PeId pe, Addr block_addr, bool was_dirty, Cycles when)
    {
        (void)pe; (void)block_addr; (void)was_dirty; (void)when;
    }

    /**
     * The whole cache of @p pe was flushed (GC barrier): every resident
     * block was written back if dirty and dropped. flushAll bypasses the
     * per-block transition path, so sinks that mirror residency must
     * clear it here instead of waiting for onCacheTransition events.
     */
    virtual void
    onCacheFlush(PeId pe)
    {
        (void)pe;
    }

    // -- Lock directory ----------------------------------------------------

    /** A lock-directory entry changed state (acquire, release, LH). */
    virtual void
    onLockTransition(PeId owner, Addr word_addr, LockState from,
                     LockState to, Cycles when)
    {
        (void)owner; (void)word_addr; (void)from; (void)to; (void)when;
    }

    // -- System ------------------------------------------------------------

    /** A PE parked to busy-wait on a remotely locked block. */
    virtual void
    onPark(PeId pe, Addr block_addr, Cycles when)
    {
        (void)pe; (void)block_addr; (void)when;
    }

    /** A parked PE was woken (UL broadcast or injected glitch). */
    virtual void
    onWake(PeId pe, Addr block_addr, Cycles when)
    {
        (void)pe; (void)block_addr; (void)when;
    }

    /** A memory operation starts at the PE's local clock. */
    virtual void
    onAccessBegin(PeId pe, MemOp op, Addr addr, Area area, Cycles when)
    {
        (void)pe; (void)op; (void)addr; (void)area; (void)when;
    }

    /** The operation finished (or lock-waited) at @p end. */
    virtual void
    onAccessEnd(PeId pe, MemOp op, Addr addr, Area area, Cycles start,
                Cycles end, bool lock_wait)
    {
        (void)pe; (void)op; (void)addr; (void)area; (void)start;
        (void)end; (void)lock_wait;
    }
};

/**
 * Fan-out sink: forwards every event to all registered sinks, in
 * registration order. The System owns one and wires the components to it
 * so a timeline recorder and a metrics registry can observe one run
 * simultaneously. Registered sinks stay attached for the mux's lifetime;
 * callers keep ownership.
 */
class MultiSink final : public EventSink
{
  public:
    void add(EventSink* sink) { sinks_.push_back(sink); }
    bool empty() const { return sinks_.empty(); }

    void
    onBusTransaction(const BusTxnEvent& event) override
    {
        for (EventSink* sink : sinks_)
            sink->onBusTransaction(event);
    }

    void
    onCacheTransition(PeId pe, Addr block_addr, CacheState from,
                      CacheState to, Cycles when) override
    {
        for (EventSink* sink : sinks_)
            sink->onCacheTransition(pe, block_addr, from, to, when);
    }

    void
    onCacheFill(PeId pe, Addr block_addr, bool from_cache, bool dirty,
                Cycles when) override
    {
        for (EventSink* sink : sinks_)
            sink->onCacheFill(pe, block_addr, from_cache, dirty, when);
    }

    void
    onSwapOut(PeId pe, Addr block_addr, Cycles when) override
    {
        for (EventSink* sink : sinks_)
            sink->onSwapOut(pe, block_addr, when);
    }

    void
    onPurge(PeId pe, Addr block_addr, bool was_dirty, Cycles when) override
    {
        for (EventSink* sink : sinks_)
            sink->onPurge(pe, block_addr, was_dirty, when);
    }

    void
    onCacheFlush(PeId pe) override
    {
        for (EventSink* sink : sinks_)
            sink->onCacheFlush(pe);
    }

    void
    onLockTransition(PeId owner, Addr word_addr, LockState from,
                     LockState to, Cycles when) override
    {
        for (EventSink* sink : sinks_)
            sink->onLockTransition(owner, word_addr, from, to, when);
    }

    void
    onPark(PeId pe, Addr block_addr, Cycles when) override
    {
        for (EventSink* sink : sinks_)
            sink->onPark(pe, block_addr, when);
    }

    void
    onWake(PeId pe, Addr block_addr, Cycles when) override
    {
        for (EventSink* sink : sinks_)
            sink->onWake(pe, block_addr, when);
    }

    void
    onAccessBegin(PeId pe, MemOp op, Addr addr, Area area,
                  Cycles when) override
    {
        for (EventSink* sink : sinks_)
            sink->onAccessBegin(pe, op, addr, area, when);
    }

    void
    onAccessEnd(PeId pe, MemOp op, Addr addr, Area area, Cycles start,
                Cycles end, bool lock_wait) override
    {
        for (EventSink* sink : sinks_)
            sink->onAccessEnd(pe, op, addr, area, start, end, lock_wait);
    }

  private:
    std::vector<EventSink*> sinks_;
};

} // namespace pim

#endif // PIMCACHE_OBS_EVENT_SINK_H_
