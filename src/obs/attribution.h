/**
 * @file
 * Cycle and miss attribution engine (docs/OBSERVABILITY.md).
 *
 * The standard reports say *how many* bus cycles and misses a run cost;
 * this sink says *why*. It consumes the EventSink stream and maintains:
 *
 *  - Per-PE shadow tag state that classifies every miss as cold (block
 *    never held before), capacity (would also miss in a fully
 *    associative cache of the same total size), conflict (set mapping
 *    alone evicted it), coherence invalidation (a remote PE's bus
 *    command removed it), lock-purge (the PE's own ER/RP read-once
 *    purge dropped it) or flush (a GC cache flush dropped it).
 *  - A bus-cycle attribution that charges every transaction's occupancy
 *    to a cause bucket — memory fill, cache-to-cache supply, copy-back,
 *    invalidation, lock traffic (UL broadcasts and LH rejects), word
 *    writes — split per PE and per in-flight memory operation. The
 *    victim patterns are split between fill and copy-back using the
 *    clean-victim base cost, so a dirty victim whose transfer hides
 *    entirely under the memory wait (the paper's default timing)
 *    contributes zero visible copy-back cycles.
 *  - Per-block heat analytics: hottest blocks by bus occupancy,
 *    invalidation ping-pong chains (consecutive invalidation-class
 *    misses on one block), and lock/wait contention tables.
 *
 * The attribution is exact by construction: bucket cycles sum to
 * BusStats::totalCycles and per-pattern cycles/transactions match the
 * BusStats breakdown. crossCheck() verifies this against a live
 * BusStats and is enforced always-on by the stress harness and the
 * conformance harness (the PR 2 event-count check's sibling).
 *
 * The engine observes only; it never perturbs the simulation, so
 * attaching it cannot change any simulated observable.
 */

#ifndef PIMCACHE_OBS_ATTRIBUTION_H_
#define PIMCACHE_OBS_ATTRIBUTION_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bus/bus.h"
#include "obs/event_sink.h"

namespace pim {

class JsonWriter;

/** Why a miss happened, from the shadow tag state. */
enum class MissClass : std::uint8_t {
    Cold = 0,         ///< First time this PE ever held the block.
    Capacity = 1,     ///< Fully associative shadow also evicted it.
    Conflict = 2,     ///< Only the set mapping evicted it.
    Invalidation = 3, ///< A remote PE's bus command removed it.
    LockPurge = 4,    ///< Own ER/RP read-once purge dropped it.
    Flush = 5,        ///< A GC cache flush dropped it.
};

inline constexpr int kNumMissClasses = 6;

/** Short lowercase miss-class name. */
const char* missClassName(MissClass cls);

/** What a bus transaction's cycles bought. */
enum class BusBucket : std::uint8_t {
    MemoryFill = 0,   ///< Block transfer from shared memory.
    CacheSupply = 1,  ///< Cache-to-cache block supply.
    CopyBack = 2,     ///< Dirty-victim transfer (visible share only).
    Invalidation = 3, ///< I commands.
    LockTraffic = 4,  ///< UL broadcasts and LH-rejected attempts.
    WordWrite = 5,    ///< Write-through word writes (DW/ER baseline).
    /**
     * Interconnect hop cycles on the clustered topology. Cycles-only
     * bucket: the hops ride on transactions already counted in their
     * base bucket, so it contributes no transaction count.
     */
    InterCluster = 6,
    /** Dragon word-update broadcasts (shared-write update traffic). */
    UpdateTraffic = 7,
};

inline constexpr int kNumBusBuckets = 8;

/** Short lowercase bucket name. */
const char* busBucketName(BusBucket bucket);

/** One row of the hottest-blocks analytics. */
struct BlockHeat {
    Addr block = 0;
    Cycles busCycles = 0;          ///< Bus occupancy charged to it.
    std::uint64_t transactions = 0;
    std::uint64_t fills = 0;
    std::uint64_t invMisses = 0;   ///< Invalidation-classified misses.
    std::uint32_t maxPingPong = 0; ///< Longest invalidation-miss chain.
};

/** One row of the lock-word contention table. */
struct LockHeat {
    Addr word = 0;
    std::uint64_t acquires = 0;  ///< EMP -> LCK transitions.
    std::uint64_t contended = 0; ///< Transitions into LWAIT.
};

/** One row of the busy-wait table (per parked-on block). */
struct WaitHeat {
    Addr block = 0;
    std::uint64_t parks = 0;
    std::uint64_t wakes = 0;
    Cycles totalWait = 0;
    Cycles maxWait = 0;
};

/** EventSink that attributes misses and bus cycles to causes. */
class AttributionEngine final : public EventSink
{
  public:
    /**
     * @param num_pes         PEs in the observed System.
     * @param timing          The System's (validated) bus timing; used
     *                        to split victim patterns into fill vs
     *                        copy-back shares.
     * @param block_words     Cache block size in words.
     * @param capacity_blocks Total per-PE capacity (ways x sets), the
     *                        fully associative shadow's size.
     */
    AttributionEngine(std::uint32_t num_pes, const BusTiming& timing,
                      std::uint32_t block_words,
                      std::uint32_t capacity_blocks);

    // -- EventSink ---------------------------------------------------------

    void onBusTransaction(const BusTxnEvent& event) override;
    void onCacheTransition(PeId pe, Addr block_addr, CacheState from,
                           CacheState to, Cycles when) override;
    void onCacheFill(PeId pe, Addr block_addr, bool from_cache, bool dirty,
                     Cycles when) override;
    void onPurge(PeId pe, Addr block_addr, bool was_dirty,
                 Cycles when) override;
    void onCacheFlush(PeId pe) override;
    void onLockTransition(PeId owner, Addr word_addr, LockState from,
                          LockState to, Cycles when) override;
    void onPark(PeId pe, Addr block_addr, Cycles when) override;
    void onWake(PeId pe, Addr block_addr, Cycles when) override;
    void onAccessBegin(PeId pe, MemOp op, Addr addr, Area area,
                       Cycles when) override;
    void onAccessEnd(PeId pe, MemOp op, Addr addr, Area area, Cycles start,
                     Cycles end, bool lock_wait) override;

    // -- Results -----------------------------------------------------------

    std::uint64_t missCount(MissClass cls) const;
    std::uint64_t classifiedMisses() const; ///< Sum over all classes.

    Cycles bucketCycles(BusBucket bucket) const;
    std::uint64_t bucketTransactions(BusBucket bucket) const;
    Cycles attributedCycles() const;         ///< Sum over all buckets.
    std::uint64_t attributedTransactions() const;
    Cycles patternCycles(BusPattern pattern) const;

    /** Cycles charged to @p bucket by in-flight operation @p op. */
    Cycles opBucketCycles(MemOp op, BusBucket bucket) const;
    /** Cycles charged to @p bucket by requester @p pe. */
    Cycles peBucketCycles(PeId pe, BusBucket bucket) const;

    /** Top-N tables, sorted hottest first (ties by address). */
    std::vector<BlockHeat> hottestBlocks(std::size_t top_n) const;
    std::vector<LockHeat> hottestLocks(std::size_t top_n) const;
    std::vector<WaitHeat> longestWaits(std::size_t top_n) const;

    /**
     * Verify the attribution against the live BusStats: bucket cycles
     * must sum exactly to totalCycles and the per-pattern mirror must
     * match cyclesByPattern/transByPattern entry for entry.
     * @return "" on an exact match, else a one-line description of the
     * first discrepancy (callers raise SimFault(Protocol) on it).
     */
    std::string crossCheck(const BusStats& stats) const;

    /** The attribution report as ASCII tables. */
    std::string report(std::size_t top_n = 8) const;

    /** The attribution section as a JSON object (schema `attribution`). */
    void writeJson(JsonWriter& json, const BusStats& stats,
                   std::size_t top_n = 16) const;

    /** writeJson as a standalone pretty document string. */
    std::string jsonDocument(const BusStats& stats,
                             std::size_t top_n = 16) const;

    /** jsonDocument to @p path (atomic). @return false on I/O failure. */
    bool writeFile(const std::string& path, const BusStats& stats,
                   std::size_t top_n = 16) const;

  private:
    /** Fully associative LRU shadow of one PE's total capacity. */
    struct FaShadow {
        std::list<Addr> lru; ///< Front = MRU.
        std::unordered_map<Addr, std::list<Addr>::iterator> index;

        bool contains(Addr block) const { return index.count(block) != 0; }
        void touch(Addr block, std::uint32_t capacity);
    };

    /** Why a block last left a PE's cache. */
    enum class Departure : std::uint8_t {
        Evicted, Invalidated, Purged, Flushed,
    };

    struct PeShadow {
        std::unordered_set<Addr> everHeld; ///< Blocks ever installed.
        std::unordered_set<Addr> resident; ///< Current shadow tags.
        std::unordered_map<Addr, Departure> departure;
        FaShadow fa;
        bool purgePending = false; ///< onPurge seen, transition next.
        Addr purgeBlock = 0;
        bool fillPending = false;  ///< Fill seen, no arrival (yet).
        Addr fillBlock = 0;
        bool inFlight = false;     ///< An access is executing.
        MemOp op = MemOp::R;
        bool parked = false;
        Addr parkedBlock = 0;
        Cycles parkedAt = 0;
    };

    struct BlockTally {
        Cycles busCycles = 0;
        std::uint64_t transactions = 0;
        std::uint64_t fills = 0;
        std::uint64_t invMisses = 0;
        std::uint32_t chain = 0;    ///< Current invalidation-miss run.
        std::uint32_t maxChain = 0;
        PeId lastFillPe = kNoPe;
    };

    struct LockTally {
        std::uint64_t acquires = 0;
        std::uint64_t contended = 0;
    };

    struct WaitTally {
        std::uint64_t parks = 0;
        std::uint64_t wakes = 0;
        Cycles totalWait = 0;
        Cycles maxWait = 0;
    };

    MissClass classify(PeShadow& shadow, Addr block) const;
    void charge(const BusTxnEvent& event, BusBucket bucket, Cycles cycles);
    void settleNonInstallFill(PeShadow& shadow);

    std::uint32_t numPes_;
    BusTiming timing_;
    std::uint32_t blockWords_;
    std::uint32_t capacityBlocks_;

    std::vector<PeShadow> shadows_;
    PeId curPe_ = 0;        ///< PE with the access in flight.
    bool curValid_ = false; ///< An access is in flight right now.
    std::uint64_t missByClass_[kNumMissClasses] = {};

    Cycles cyclesByBucket_[kNumBusBuckets] = {};
    std::uint64_t transByBucket_[kNumBusBuckets] = {};
    Cycles patternCycles_[kNumBusPatterns] = {};
    std::uint64_t patternTrans_[kNumBusPatterns] = {};
    /** [op][bucket]; row kNumMemOps = no access in flight (e.g. wakes). */
    Cycles opCycles_[kNumMemOps + 1][kNumBusBuckets] = {};
    std::vector<std::vector<Cycles>> peCycles_; ///< [pe][bucket].

    std::unordered_map<Addr, BlockTally> blocks_;
    std::unordered_map<Addr, LockTally> locks_;
    std::unordered_map<Addr, WaitTally> waits_;
};

} // namespace pim

#endif // PIMCACHE_OBS_ATTRIBUTION_H_
