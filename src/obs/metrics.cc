#include "obs/metrics.h"

#include <fstream>

#include "common/json.h"

namespace pim {

// -------------------------------------------------------------- Histogram

void
Histogram::record(std::uint64_t value)
{
    int bucket = 0;
    if (value > 0) {
        bucket = 1;
        while (bucket < kNumBuckets - 1 &&
               value >= (std::uint64_t{1} << bucket))
            ++bucket;
    }
    ++buckets_[bucket];
    ++count_;
    sum_ += value;
    max_ = std::max(max_, value);
}

std::uint64_t
Histogram::bucketLow(int i)
{
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

void
Histogram::merge(const Histogram& other)
{
    for (int i = 0; i < kNumBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
}

void
Histogram::writeJson(JsonWriter& json) const
{
    json.beginObject();
    json.field("count", count_);
    json.field("sum", sum_);
    json.field("max", max_);
    json.field("mean", mean());
    json.key("buckets");
    json.beginArray();
    // Trailing all-zero buckets are elided to keep the files short.
    int last = kNumBuckets - 1;
    while (last > 0 && buckets_[last] == 0)
        --last;
    for (int i = 0; i <= last; ++i) {
        json.beginObject();
        json.field("ge", bucketLow(i));
        json.field("n", buckets_[i]);
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

// -------------------------------------------------------- MetricsRegistry

std::uint64_t
MetricsRegistry::counter(const std::string& name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

const Histogram*
MetricsRegistry::histogram(const std::string& name) const
{
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
MetricsRegistry::merge(const MetricsRegistry& other)
{
    for (const auto& [name, value] : other.counters_)
        counters_[name] += value;
    for (const auto& [name, histogram] : other.histograms_)
        histograms_[name].merge(histogram);
}

void
MetricsRegistry::clear()
{
    counters_.clear();
    histograms_.clear();
    parkedAt_.clear();
    fillSeen_.clear();
}

void
MetricsRegistry::onBusTransaction(const BusTxnEvent& event)
{
    bump("bus.transactions");
    bump(std::string("bus.pattern.") + busPatternName(event.pattern));
    bump("bus.cycles", event.completedAt - event.startedAt);
    bump("bus.data_beats", event.dataBeats);
    if (event.lockHit)
        bump("bus.lock_rejects");
    histograms_["bus.acquire_wait_cycles"].record(event.startedAt -
                                                  event.requestedAt);
}

void
MetricsRegistry::onCacheTransition(PeId pe, Addr block_addr, CacheState from,
                                   CacheState to, Cycles when)
{
    (void)pe;
    (void)block_addr;
    (void)when;
    bump(std::string("cache.transition.") + cacheStateName(from) + "->" +
         cacheStateName(to));
}

void
MetricsRegistry::onCacheFill(PeId pe, Addr block_addr, bool from_cache,
                             bool dirty, Cycles when)
{
    (void)block_addr;
    (void)dirty;
    (void)when;
    bump(from_cache ? "fills.cache_to_cache" : "fills.memory");
    fillSeen_[pe] = true;
}

void
MetricsRegistry::onSwapOut(PeId pe, Addr block_addr, Cycles when)
{
    (void)pe;
    (void)block_addr;
    (void)when;
    bump("cache.swap_outs");
}

void
MetricsRegistry::onPurge(PeId pe, Addr block_addr, bool was_dirty,
                         Cycles when)
{
    (void)pe;
    (void)block_addr;
    (void)when;
    bump(was_dirty ? "cache.purges.dirty" : "cache.purges.clean");
}

void
MetricsRegistry::onLockTransition(PeId owner, Addr word_addr, LockState from,
                                  LockState to, Cycles when)
{
    (void)owner;
    (void)word_addr;
    (void)when;
    if (from == LockState::EMP && to == LockState::LCK)
        bump("locks.acquired");
    else if (to == LockState::EMP)
        bump("locks.released");
    else if (from == LockState::LCK && to == LockState::LWAIT)
        bump("locks.contended");
}

void
MetricsRegistry::onPark(PeId pe, Addr block_addr, Cycles when)
{
    (void)block_addr;
    bump("locks.parks");
    parkedAt_[pe] = when;
}

void
MetricsRegistry::onWake(PeId pe, Addr block_addr, Cycles when)
{
    (void)block_addr;
    bump("locks.wakes");
    const auto it = parkedAt_.find(pe);
    if (it != parkedAt_.end()) {
        histograms_["locks.wait_cycles"].record(when - it->second);
        parkedAt_.erase(it);
    }
}

void
MetricsRegistry::onAccessBegin(PeId pe, MemOp op, Addr addr, Area area,
                               Cycles when)
{
    (void)addr;
    (void)area;
    (void)when;
    bump("access.total");
    bump(std::string("access.op.") + memOpName(op));
    fillSeen_[pe] = false;
}

void
MetricsRegistry::onAccessEnd(PeId pe, MemOp op, Addr addr, Area area,
                             Cycles start, Cycles end, bool lock_wait)
{
    (void)op;
    (void)addr;
    if (lock_wait) {
        bump("access.lock_waited");
        return; // the retry after wake completes the operation
    }
    if (fillSeen_[pe]) {
        bump("access.misses");
        histograms_[std::string("miss.latency.") + areaName(area)]
            .record(end - start);
    }
}

void
MetricsRegistry::writeJson(JsonWriter& json) const
{
    json.beginObject();
    json.key("counters");
    json.beginObject();
    for (const auto& [name, value] : counters_)
        json.field(name, value);
    json.endObject();
    json.key("histograms");
    json.beginObject();
    for (const auto& [name, histogram] : histograms_) {
        json.key(name);
        histogram.writeJson(json);
    }
    json.endObject();
    json.endObject();
}

void
MetricsRegistry::write(std::ostream& os) const
{
    JsonWriter json(os, /*pretty=*/true);
    writeJson(json);
    os << "\n";
}

bool
MetricsRegistry::writeFile(const std::string& path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    write(out);
    return out.good();
}

} // namespace pim
