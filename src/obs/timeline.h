/**
 * @file
 * Chrome trace-event timeline recorder (docs/OBSERVABILITY.md).
 *
 * Records every EventSink event as a Chrome trace-event JSON document
 * loadable in Perfetto (ui.perfetto.dev) or chrome://tracing: one track
 * (tid) per PE carrying the memory-operation durations, lock-wait
 * durations and instant markers (state transitions, fills, purges, lock
 * transitions), plus a dedicated bus track (tid 0) carrying one duration
 * event per bus transaction. Timestamps are simulated cycles, written as
 * the trace's microsecond field (1 cycle == 1 us tick).
 *
 * write() emits events in non-decreasing timestamp order (duration
 * events are recorded that way already — PE clocks and the bus's free
 * time are monotonic — and snoop instants, which carry bus time, are
 * stable-sorted into place), and every "B" begin has a matching "E"
 * end: write() closes any durations left open by an aborted run (e.g. a
 * PE still parked when a fault unwound the system).
 */

#ifndef PIMCACHE_OBS_TIMELINE_H_
#define PIMCACHE_OBS_TIMELINE_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/event_sink.h"

namespace pim {

/** EventSink that renders the run as a Perfetto-loadable timeline. */
class TimelineRecorder final : public EventSink
{
  public:
    TimelineRecorder() = default;

    /** Events recorded so far (duration pairs count twice). */
    std::size_t eventCount() const { return events_.size(); }

    /** Serialize the timeline as Chrome trace-event JSON. */
    void write(std::ostream& os);

    /** write() to @p path. @return false if the file cannot be opened. */
    bool writeFile(const std::string& path);

    /** Drop all recorded events (e.g. between measurement phases). */
    void clear();

    // -- EventSink ---------------------------------------------------------
    void onBusTransaction(const BusTxnEvent& event) override;
    void onCacheTransition(PeId pe, Addr block_addr, CacheState from,
                           CacheState to, Cycles when) override;
    void onCacheFill(PeId pe, Addr block_addr, bool from_cache, bool dirty,
                     Cycles when) override;
    void onSwapOut(PeId pe, Addr block_addr, Cycles when) override;
    void onPurge(PeId pe, Addr block_addr, bool was_dirty,
                 Cycles when) override;
    void onLockTransition(PeId owner, Addr word_addr, LockState from,
                          LockState to, Cycles when) override;
    void onPark(PeId pe, Addr block_addr, Cycles when) override;
    void onWake(PeId pe, Addr block_addr, Cycles when) override;
    void onAccessBegin(PeId pe, MemOp op, Addr addr, Area area,
                       Cycles when) override;
    void onAccessEnd(PeId pe, MemOp op, Addr addr, Area area, Cycles start,
                     Cycles end, bool lock_wait) override;

  private:
    /** The bus track; PE p maps to tid p + 1. */
    static constexpr std::uint32_t kBusTid = 0;

    struct Event {
        char phase = 'i';     ///< 'B', 'E' or 'i'.
        std::uint32_t tid = 0;
        Cycles ts = 0;
        std::string name;
        std::string cat;
        /** Pre-rendered JSON args object ("" = none). */
        std::string args;
    };

    static std::uint32_t peTid(PeId pe) { return pe + 1; }

    void push(char phase, std::uint32_t tid, Cycles ts, std::string name,
              const char* cat, std::string args = "");

    std::vector<Event> events_;
    std::uint32_t maxPe_ = 0;
    bool sawPe_ = false;
    /** Open duration-event names per track, for auto-close on write(). */
    std::map<std::uint32_t, std::vector<std::string>> open_;
    /** Last timestamp seen per track (auto-close position). */
    std::map<std::uint32_t, Cycles> lastTs_;
};

} // namespace pim

#endif // PIMCACHE_OBS_TIMELINE_H_
