#include "obs/timeline.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/json.h"

namespace pim {

namespace {

/** Render a small args object from key/value pairs already formatted. */
std::string
argsObject(std::initializer_list<std::pair<const char*, std::string>> kvs)
{
    std::ostringstream os;
    JsonWriter json(os, /*pretty=*/false);
    json.beginObject();
    for (const auto& [key, value] : kvs) {
        json.key(key);
        json.rawValue(value); // pre-rendered JSON scalar
    }
    json.endObject();
    return os.str();
}

std::string
num(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
str(const char* v)
{
    return JsonWriter::quote(v);
}

} // namespace

void
TimelineRecorder::push(char phase, std::uint32_t tid, Cycles ts,
                       std::string name, const char* cat, std::string args)
{
    if (phase == 'B') {
        open_[tid].push_back(name);
    } else if (phase == 'E') {
        auto& stack = open_[tid];
        if (stack.empty())
            return; // end without begin (e.g. wake of an unseen park)
        stack.pop_back();
    }
    lastTs_[tid] = std::max(lastTs_[tid], ts);
    events_.push_back(Event{phase, tid, ts, std::move(name), cat,
                            std::move(args)});
}

void
TimelineRecorder::onBusTransaction(const BusTxnEvent& event)
{
    std::string args = argsObject({
        {"pe", num(event.requester)},
        {"block", num(event.blockAddr)},
        {"area", str(areaName(event.area))},
        {"cmd", str(event.hasCmd ? busCmdName(event.cmd) : "-")},
        {"requested", num(event.requestedAt)},
        {"wait", num(event.startedAt - event.requestedAt)},
        {"beats", num(event.dataBeats)},
        {"lock_hit", event.lockHit ? "true" : "false"},
        {"c2c", event.supplied ? "true" : "false"},
    });
    push('B', kBusTid, event.startedAt, busPatternName(event.pattern),
         "bus", std::move(args));
    push('E', kBusTid, event.completedAt, busPatternName(event.pattern),
         "bus");
}

void
TimelineRecorder::onCacheTransition(PeId pe, Addr block_addr,
                                    CacheState from, CacheState to,
                                    Cycles when)
{
    maxPe_ = std::max(maxPe_, pe);
    sawPe_ = true;
    push('i', peTid(pe), when,
         std::string(cacheStateName(from)) + "->" + cacheStateName(to),
         "state", argsObject({{"block", num(block_addr)}}));
}

void
TimelineRecorder::onCacheFill(PeId pe, Addr block_addr, bool from_cache,
                              bool dirty, Cycles when)
{
    maxPe_ = std::max(maxPe_, pe);
    sawPe_ = true;
    push('i', peTid(pe), when, "fill", "cache",
         argsObject({{"block", num(block_addr)},
                     {"src", str(from_cache ? "c2c" : "mem")},
                     {"dirty", dirty ? "true" : "false"}}));
}

void
TimelineRecorder::onSwapOut(PeId pe, Addr block_addr, Cycles when)
{
    maxPe_ = std::max(maxPe_, pe);
    sawPe_ = true;
    push('i', peTid(pe), when, "swap-out", "cache",
         argsObject({{"block", num(block_addr)}}));
}

void
TimelineRecorder::onPurge(PeId pe, Addr block_addr, bool was_dirty,
                          Cycles when)
{
    maxPe_ = std::max(maxPe_, pe);
    sawPe_ = true;
    push('i', peTid(pe), when, "purge", "cache",
         argsObject({{"block", num(block_addr)},
                     {"dirty", was_dirty ? "true" : "false"}}));
}

void
TimelineRecorder::onLockTransition(PeId owner, Addr word_addr,
                                   LockState from, LockState to,
                                   Cycles when)
{
    maxPe_ = std::max(maxPe_, owner);
    sawPe_ = true;
    push('i', peTid(owner), when,
         std::string(lockStateName(from)) + "->" + lockStateName(to),
         "lockdir", argsObject({{"word", num(word_addr)}}));
}

void
TimelineRecorder::onPark(PeId pe, Addr block_addr, Cycles when)
{
    maxPe_ = std::max(maxPe_, pe);
    sawPe_ = true;
    push('B', peTid(pe), when, "lock-wait", "lock",
         argsObject({{"block", num(block_addr)}}));
}

void
TimelineRecorder::onWake(PeId pe, Addr block_addr, Cycles when)
{
    (void)block_addr;
    maxPe_ = std::max(maxPe_, pe);
    sawPe_ = true;
    push('E', peTid(pe), when, "lock-wait", "lock");
}

void
TimelineRecorder::onAccessBegin(PeId pe, MemOp op, Addr addr, Area area,
                                Cycles when)
{
    maxPe_ = std::max(maxPe_, pe);
    sawPe_ = true;
    push('B', peTid(pe), when, memOpName(op), "access",
         argsObject({{"addr", num(addr)},
                     {"area", str(areaName(area))}}));
}

void
TimelineRecorder::onAccessEnd(PeId pe, MemOp op, Addr addr, Area area,
                              Cycles start, Cycles end, bool lock_wait)
{
    (void)addr;
    (void)area;
    (void)start;
    push('E', peTid(pe), end, memOpName(op), "access",
         argsObject({{"lock_wait", lock_wait ? "true" : "false"}}));
}

void
TimelineRecorder::clear()
{
    events_.clear();
    open_.clear();
    lastTs_.clear();
    maxPe_ = 0;
    sawPe_ = false;
}

void
TimelineRecorder::write(std::ostream& os)
{
    // Close anything a fault left open so every B has a matching E.
    for (auto& [tid, stack] : open_) {
        while (!stack.empty()) {
            events_.push_back(Event{'E', tid, lastTs_[tid], stack.back(),
                                    "aborted", ""});
            stack.pop_back();
        }
    }

    // Durations are recorded in non-decreasing timestamp order per track
    // (PE clocks and the bus's free time are monotonic), but snoop-induced
    // instants land on the victim PE's track stamped with bus time, which
    // can run ahead of that PE's local clock. A stable sort by timestamp
    // restores global order without disturbing B/E pairing.
    std::stable_sort(events_.begin(), events_.end(),
                     [](const Event& a, const Event& b) {
                         return a.ts < b.ts;
                     });

    JsonWriter json(os, /*pretty=*/false);
    json.beginObject();
    json.key("traceEvents");
    json.beginArray();

    auto meta = [&](std::uint32_t tid, const std::string& name) {
        json.beginObject();
        json.field("name", "thread_name");
        json.field("ph", "M");
        json.field("pid", std::uint64_t{0});
        json.field("tid", static_cast<std::uint64_t>(tid));
        json.key("args");
        json.beginObject();
        json.field("name", name);
        json.endObject();
        json.endObject();
    };
    meta(kBusTid, "bus");
    if (sawPe_) {
        for (std::uint32_t pe = 0; pe <= maxPe_; ++pe)
            meta(peTid(pe), "pe" + std::to_string(pe));
    }

    for (const Event& event : events_) {
        json.beginObject();
        json.field("name", event.name);
        json.field("cat", event.cat);
        json.field("ph", std::string(1, event.phase));
        json.field("ts", static_cast<std::uint64_t>(event.ts));
        json.field("pid", std::uint64_t{0});
        json.field("tid", static_cast<std::uint64_t>(event.tid));
        if (event.phase == 'i')
            json.field("s", "t"); // thread-scoped instant
        if (!event.args.empty()) {
            json.key("args");
            json.rawValue(event.args);
        }
        json.endObject();
    }

    json.endArray();
    json.field("displayTimeUnit", "ns");
    json.key("otherData");
    json.beginObject();
    json.field("tool", "pimcache");
    json.field("time_unit", "bus cycles (1 cycle = 1us tick)");
    json.endObject();
    json.endObject();
    os << "\n";
}

bool
TimelineRecorder::writeFile(const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    write(out);
    return out.good();
}

} // namespace pim
