/**
 * @file
 * Counter/histogram metrics registry (docs/OBSERVABILITY.md).
 *
 * MetricsRegistry is an EventSink that aggregates mechanism-level events
 * into named counters and fixed-bucket histograms instead of recording
 * them individually: bus-acquisition latency, lock-wait durations, the
 * cache-to-cache vs memory fill share, and per-area miss latency. It is
 * cheap enough to stay attached for whole stress runs (the histograms are
 * fixed arrays; nothing grows with simulated time except the counters'
 * values), and writeJson() serializes everything for offline analysis.
 */

#ifndef PIMCACHE_OBS_METRICS_H_
#define PIMCACHE_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "obs/event_sink.h"

namespace pim {

class JsonWriter;

/**
 * Power-of-two-bucket histogram of cycle counts. Bucket 0 holds exact
 * zeros; bucket i (1..17) holds values in [2^(i-1), 2^i); the final
 * bucket is the >= 2^17 overflow. Tracks count, sum and max exactly.
 */
class Histogram
{
  public:
    static constexpr int kNumBuckets = 19;

    void record(std::uint64_t value);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t max() const { return max_; }
    double mean() const { return count_ == 0 ? 0.0 : double(sum_) / count_; }
    std::uint64_t bucket(int i) const { return buckets_[i]; }

    /** Inclusive lower bound of bucket @p i (0, 1, 2, 4, ...). */
    static std::uint64_t bucketLow(int i);

    /** Fold @p other into this histogram (exact: buckets align). */
    void merge(const Histogram& other);

    /** Serialize as {count, sum, max, mean, buckets: [...]}. */
    void writeJson(JsonWriter& json) const;

  private:
    std::array<std::uint64_t, kNumBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

/** EventSink aggregating events into counters and histograms. */
class MetricsRegistry final : public EventSink
{
  public:
    // -- Programmatic access ---------------------------------------------

    /** Counter value by name (0 if never incremented). */
    std::uint64_t counter(const std::string& name) const;

    /** Histogram by name (nullptr if never recorded to). */
    const Histogram* histogram(const std::string& name) const;

    const std::map<std::string, std::uint64_t>& counters() const
    {
        return counters_;
    }

    /**
     * Fold @p other's counters and histograms into this registry.
     *
     * This is the sweep engine's aggregation model ("thread-safe by
     * isolation", DESIGN.md "Threading model"): every parallel task owns
     * a private registry, and the runner merges them single-threaded
     * after the pool joins, in task order — so the merged totals are
     * independent of worker count and scheduling. The registry itself
     * is deliberately not locked. Transient per-access state (park
     * timestamps, fill flags) is not merged; merge completed runs only.
     */
    void merge(const MetricsRegistry& other);

    /** Serialize all counters and histograms as one JSON object. */
    void writeJson(JsonWriter& json) const;

    /** writeJson() wrapped in a document, to @p os. */
    void write(std::ostream& os) const;

    /** write() to @p path. @return false if the file cannot be opened. */
    bool writeFile(const std::string& path) const;

    /** Forget everything recorded so far. */
    void clear();

    // -- EventSink ---------------------------------------------------------
    void onBusTransaction(const BusTxnEvent& event) override;
    void onCacheTransition(PeId pe, Addr block_addr, CacheState from,
                           CacheState to, Cycles when) override;
    void onCacheFill(PeId pe, Addr block_addr, bool from_cache, bool dirty,
                     Cycles when) override;
    void onSwapOut(PeId pe, Addr block_addr, Cycles when) override;
    void onPurge(PeId pe, Addr block_addr, bool was_dirty,
                 Cycles when) override;
    void onLockTransition(PeId owner, Addr word_addr, LockState from,
                          LockState to, Cycles when) override;
    void onPark(PeId pe, Addr block_addr, Cycles when) override;
    void onWake(PeId pe, Addr block_addr, Cycles when) override;
    void onAccessBegin(PeId pe, MemOp op, Addr addr, Area area,
                       Cycles when) override;
    void onAccessEnd(PeId pe, MemOp op, Addr addr, Area area, Cycles start,
                     Cycles end, bool lock_wait) override;

  private:
    void bump(const std::string& name, std::uint64_t by = 1)
    {
        counters_[name] += by;
    }

    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, Histogram> histograms_;

    /** Per-PE park timestamp, to size locks.wait_cycles (~0 = not parked). */
    std::map<PeId, Cycles> parkedAt_;
    /** Per-PE flag: a fill happened inside the current access => miss. */
    std::map<PeId, bool> fillSeen_;
};

} // namespace pim

#endif // PIMCACHE_OBS_METRICS_H_
