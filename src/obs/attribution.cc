#include "obs/attribution.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/fs_util.h"
#include "common/json.h"
#include "common/table.h"

namespace pim {

namespace {

/** Percentage string with one decimal, "0.0" when whole is zero. */
std::string
pctString(double part, double whole)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f",
                  whole == 0.0 ? 0.0 : 100.0 * part / whole);
    return buf;
}

std::string
u64(std::uint64_t v)
{
    return std::to_string(v);
}

} // namespace

const char*
missClassName(MissClass cls)
{
    switch (cls) {
      case MissClass::Cold:         return "cold";
      case MissClass::Capacity:     return "capacity";
      case MissClass::Conflict:     return "conflict";
      case MissClass::Invalidation: return "invalidation";
      case MissClass::LockPurge:    return "lock-purge";
      case MissClass::Flush:        return "flush";
    }
    return "?";
}

const char*
busBucketName(BusBucket bucket)
{
    switch (bucket) {
      case BusBucket::MemoryFill:   return "memory-fill";
      case BusBucket::CacheSupply:  return "cache-supply";
      case BusBucket::CopyBack:     return "copy-back";
      case BusBucket::Invalidation: return "invalidation";
      case BusBucket::LockTraffic:  return "lock-traffic";
      case BusBucket::WordWrite:    return "word-write";
      case BusBucket::InterCluster: return "inter-cluster";
      case BusBucket::UpdateTraffic: return "update";
    }
    return "?";
}

void
AttributionEngine::FaShadow::touch(Addr block, std::uint32_t capacity)
{
    const auto it = index.find(block);
    if (it != index.end()) {
        lru.erase(it->second);
    } else if (lru.size() >= capacity && !lru.empty()) {
        index.erase(lru.back());
        lru.pop_back();
    }
    lru.push_front(block);
    index[block] = lru.begin();
}

AttributionEngine::AttributionEngine(std::uint32_t num_pes,
                                     const BusTiming& timing,
                                     std::uint32_t block_words,
                                     std::uint32_t capacity_blocks)
    : numPes_(num_pes),
      timing_(timing),
      blockWords_(std::max<std::uint32_t>(1, block_words)),
      capacityBlocks_(std::max<std::uint32_t>(1, capacity_blocks)),
      shadows_(num_pes),
      peCycles_(num_pes, std::vector<Cycles>(kNumBusBuckets, 0))
{
}

void
AttributionEngine::charge(const BusTxnEvent& event, BusBucket bucket,
                          Cycles cycles)
{
    if (cycles == 0)
        return;
    cyclesByBucket_[static_cast<int>(bucket)] += cycles;
    if (event.requester < numPes_)
        peCycles_[event.requester][static_cast<int>(bucket)] += cycles;
    int op_row = kNumMemOps; // No access in flight (teardown wakes).
    if (event.requester < numPes_ && shadows_[event.requester].inFlight)
        op_row = static_cast<int>(shadows_[event.requester].op);
    opCycles_[op_row][static_cast<int>(bucket)] += cycles;
}

void
AttributionEngine::onBusTransaction(const BusTxnEvent& event)
{
    // Occupancy is exactly the cycles BusStats charged for this
    // transaction (bus.cc sets completedAt = startedAt + cost + hops).
    // The interconnect hops are peeled off first — BusStats keeps them
    // out of cyclesByPattern too — which is what makes the bucket and
    // pattern attribution exact, not approximate.
    const Cycles occupancy = event.completedAt - event.startedAt;
    const Cycles hop = std::min<Cycles>(event.interClusterCycles, occupancy);
    const Cycles local = occupancy - hop;
    const int p = static_cast<int>(event.pattern);
    patternCycles_[p] += local;
    patternTrans_[p] += 1;
    // Cycles-only bucket: the hop rides on a transaction counted in its
    // base bucket below, so transByBucket_ is untouched.
    charge(event, BusBucket::InterCluster, hop);

    // Primary bucket plus the dirty-victim split: a victim pattern costs
    // the clean-pattern base, with any excess being the visible share of
    // the copy-back transfer (zero under the paper's timing, where the
    // victim hides under the memory wait).
    BusBucket bucket = BusBucket::MemoryFill;
    Cycles base = local;
    switch (event.pattern) {
      case BusPattern::MemFetch:
        bucket = BusBucket::MemoryFill;
        break;
      case BusPattern::MemFetchVictim:
        bucket = BusBucket::MemoryFill;
        base = std::min<Cycles>(local, timing_.swapInCycles(false));
        break;
      case BusPattern::C2C:
        bucket = BusBucket::CacheSupply;
        break;
      case BusPattern::C2CVictim:
        bucket = BusBucket::CacheSupply;
        base = std::min<Cycles>(local,
                                timing_.cacheToCacheCycles(false));
        break;
      case BusPattern::SwapOutOnly:
        bucket = BusBucket::CopyBack;
        break;
      case BusPattern::Invalidate:
        bucket = BusBucket::Invalidation;
        break;
      case BusPattern::Unlock:
      case BusPattern::LockReject:
        bucket = BusBucket::LockTraffic;
        break;
      case BusPattern::WordWrite:
        bucket = BusBucket::WordWrite;
        break;
      case BusPattern::WordUpdate:
        bucket = BusBucket::UpdateTraffic;
        break;
    }
    transByBucket_[static_cast<int>(bucket)] += 1;
    charge(event, bucket, base);
    if (local > base)
        charge(event, BusBucket::CopyBack, local - base);

    BlockTally& heat = blocks_[event.blockAddr];
    heat.busCycles += occupancy;
    heat.transactions += 1;
}

MissClass
AttributionEngine::classify(PeShadow& shadow, Addr block) const
{
    if (shadow.everHeld.count(block) == 0)
        return MissClass::Cold;
    const auto it = shadow.departure.find(block);
    if (it != shadow.departure.end()) {
        switch (it->second) {
          case Departure::Invalidated: return MissClass::Invalidation;
          case Departure::Purged:      return MissClass::LockPurge;
          case Departure::Flushed:     return MissClass::Flush;
          case Departure::Evicted:     break;
        }
    }
    // Evicted by replacement: conflict if a fully associative cache of
    // the same capacity would still hold it, else a true capacity miss.
    return shadow.fa.contains(block) ? MissClass::Conflict
                                     : MissClass::Capacity;
}

void
AttributionEngine::settleNonInstallFill(PeShadow& shadow)
{
    if (!shadow.fillPending)
        return;
    // The fill never installed (RP's fetch-read-discard): the next miss
    // on this block is a read-once re-read, i.e. a purge-class miss.
    shadow.departure[shadow.fillBlock] = Departure::Purged;
    shadow.fillPending = false;
}

void
AttributionEngine::onCacheFill(PeId pe, Addr block_addr, bool from_cache,
                               bool dirty, Cycles when)
{
    (void)from_cache;
    (void)dirty;
    (void)when;
    if (pe >= numPes_)
        return;
    PeShadow& shadow = shadows_[pe];
    settleNonInstallFill(shadow);

    const MissClass cls = classify(shadow, block_addr);
    missByClass_[static_cast<int>(cls)] += 1;
    shadow.everHeld.insert(block_addr);
    shadow.departure.erase(block_addr);
    // Until the arrival transition lands, treat this as a possible
    // non-install fill (settled at access end or the next fill).
    shadow.fillPending = true;
    shadow.fillBlock = block_addr;

    BlockTally& heat = blocks_[block_addr];
    heat.fills += 1;
    if (cls == MissClass::Invalidation) {
        heat.invMisses += 1;
        heat.chain += 1;
        heat.maxChain = std::max(heat.maxChain, heat.chain);
    } else {
        heat.chain = 0;
    }
    heat.lastFillPe = pe;
}

void
AttributionEngine::onCacheTransition(PeId pe, Addr block_addr,
                                     CacheState from, CacheState to,
                                     Cycles when)
{
    (void)when;
    if (pe >= numPes_)
        return;
    PeShadow& shadow = shadows_[pe];
    if (from == CacheState::INV && to != CacheState::INV) {
        // Arrival: a fill installing, or a DW allocation with no fetch.
        shadow.everHeld.insert(block_addr);
        shadow.resident.insert(block_addr);
        if (shadow.fillPending && shadow.fillBlock == block_addr)
            shadow.fillPending = false;
        return;
    }
    if (from != CacheState::INV && to == CacheState::INV) {
        // Departure: record why, for the next miss's classification.
        shadow.resident.erase(block_addr);
        Departure reason = Departure::Evicted;
        if (shadow.purgePending && shadow.purgeBlock == block_addr) {
            reason = Departure::Purged;
            shadow.purgePending = false;
        } else if (curValid_ && curPe_ != pe) {
            // The simulator handles one access at a time, so a departure
            // on a PE other than the one executing is a remote bus
            // command (FI/I/ER/RP) — a coherence invalidation.
            reason = Departure::Invalidated;
        }
        shadow.departure[block_addr] = reason;
    }
}

void
AttributionEngine::onPurge(PeId pe, Addr block_addr, bool was_dirty,
                           Cycles when)
{
    (void)was_dirty;
    (void)when;
    if (pe >= numPes_)
        return;
    // The INV transition that follows inside purgeBlock consumes this.
    shadows_[pe].purgePending = true;
    shadows_[pe].purgeBlock = block_addr;
}

void
AttributionEngine::onCacheFlush(PeId pe)
{
    if (pe >= numPes_)
        return;
    PeShadow& shadow = shadows_[pe];
    for (const Addr block : shadow.resident)
        shadow.departure[block] = Departure::Flushed;
    shadow.resident.clear();
}

void
AttributionEngine::onLockTransition(PeId owner, Addr word_addr,
                                    LockState from, LockState to,
                                    Cycles when)
{
    (void)owner;
    (void)when;
    LockTally& lock = locks_[word_addr];
    if (from == LockState::EMP && to == LockState::LCK)
        lock.acquires += 1;
    if (to == LockState::LWAIT)
        lock.contended += 1;
}

void
AttributionEngine::onPark(PeId pe, Addr block_addr, Cycles when)
{
    if (pe >= numPes_)
        return;
    PeShadow& shadow = shadows_[pe];
    shadow.parked = true;
    shadow.parkedBlock = block_addr;
    shadow.parkedAt = when;
    waits_[block_addr].parks += 1;
}

void
AttributionEngine::onWake(PeId pe, Addr block_addr, Cycles when)
{
    if (pe >= numPes_)
        return;
    PeShadow& shadow = shadows_[pe];
    if (!shadow.parked)
        return;
    shadow.parked = false;
    WaitTally& wait = waits_[block_addr];
    wait.wakes += 1;
    const Cycles dur = when >= shadow.parkedAt ? when - shadow.parkedAt : 0;
    wait.totalWait += dur;
    wait.maxWait = std::max(wait.maxWait, dur);
}

void
AttributionEngine::onAccessBegin(PeId pe, MemOp op, Addr addr, Area area,
                                 Cycles when)
{
    (void)addr;
    (void)area;
    (void)when;
    if (pe >= numPes_)
        return;
    curPe_ = pe;
    curValid_ = true;
    shadows_[pe].inFlight = true;
    shadows_[pe].op = op;
}

void
AttributionEngine::onAccessEnd(PeId pe, MemOp op, Addr addr, Area area,
                               Cycles start, Cycles end, bool lock_wait)
{
    (void)op;
    (void)area;
    (void)start;
    (void)end;
    if (pe >= numPes_)
        return;
    PeShadow& shadow = shadows_[pe];
    settleNonInstallFill(shadow);
    shadow.inFlight = false;
    curValid_ = false;
    // The fully associative shadow sees the reuse stream of *completed*
    // accesses, hits included — the conflict/capacity oracle.
    if (!lock_wait)
        shadow.fa.touch(addr - addr % blockWords_, capacityBlocks_);
}

std::uint64_t
AttributionEngine::missCount(MissClass cls) const
{
    return missByClass_[static_cast<int>(cls)];
}

std::uint64_t
AttributionEngine::classifiedMisses() const
{
    std::uint64_t total = 0;
    for (int c = 0; c < kNumMissClasses; ++c)
        total += missByClass_[c];
    return total;
}

Cycles
AttributionEngine::bucketCycles(BusBucket bucket) const
{
    return cyclesByBucket_[static_cast<int>(bucket)];
}

std::uint64_t
AttributionEngine::bucketTransactions(BusBucket bucket) const
{
    return transByBucket_[static_cast<int>(bucket)];
}

Cycles
AttributionEngine::attributedCycles() const
{
    Cycles total = 0;
    for (int b = 0; b < kNumBusBuckets; ++b)
        total += cyclesByBucket_[b];
    return total;
}

std::uint64_t
AttributionEngine::attributedTransactions() const
{
    std::uint64_t total = 0;
    for (int b = 0; b < kNumBusBuckets; ++b)
        total += transByBucket_[b];
    return total;
}

Cycles
AttributionEngine::patternCycles(BusPattern pattern) const
{
    return patternCycles_[static_cast<int>(pattern)];
}

Cycles
AttributionEngine::opBucketCycles(MemOp op, BusBucket bucket) const
{
    return opCycles_[static_cast<int>(op)][static_cast<int>(bucket)];
}

Cycles
AttributionEngine::peBucketCycles(PeId pe, BusBucket bucket) const
{
    if (pe >= numPes_)
        return 0;
    return peCycles_[pe][static_cast<int>(bucket)];
}

std::vector<BlockHeat>
AttributionEngine::hottestBlocks(std::size_t top_n) const
{
    std::vector<BlockHeat> rows;
    rows.reserve(blocks_.size());
    for (const auto& [block, tally] : blocks_) {
        BlockHeat row;
        row.block = block;
        row.busCycles = tally.busCycles;
        row.transactions = tally.transactions;
        row.fills = tally.fills;
        row.invMisses = tally.invMisses;
        row.maxPingPong = tally.maxChain;
        rows.push_back(row);
    }
    std::sort(rows.begin(), rows.end(),
              [](const BlockHeat& a, const BlockHeat& b) {
                  if (a.busCycles != b.busCycles)
                      return a.busCycles > b.busCycles;
                  return a.block < b.block;
              });
    if (rows.size() > top_n)
        rows.resize(top_n);
    return rows;
}

std::vector<LockHeat>
AttributionEngine::hottestLocks(std::size_t top_n) const
{
    std::vector<LockHeat> rows;
    rows.reserve(locks_.size());
    for (const auto& [word, tally] : locks_) {
        LockHeat row;
        row.word = word;
        row.acquires = tally.acquires;
        row.contended = tally.contended;
        rows.push_back(row);
    }
    std::sort(rows.begin(), rows.end(),
              [](const LockHeat& a, const LockHeat& b) {
                  if (a.contended != b.contended)
                      return a.contended > b.contended;
                  if (a.acquires != b.acquires)
                      return a.acquires > b.acquires;
                  return a.word < b.word;
              });
    if (rows.size() > top_n)
        rows.resize(top_n);
    return rows;
}

std::vector<WaitHeat>
AttributionEngine::longestWaits(std::size_t top_n) const
{
    std::vector<WaitHeat> rows;
    rows.reserve(waits_.size());
    for (const auto& [block, tally] : waits_) {
        WaitHeat row;
        row.block = block;
        row.parks = tally.parks;
        row.wakes = tally.wakes;
        row.totalWait = tally.totalWait;
        row.maxWait = tally.maxWait;
        rows.push_back(row);
    }
    std::sort(rows.begin(), rows.end(),
              [](const WaitHeat& a, const WaitHeat& b) {
                  if (a.maxWait != b.maxWait)
                      return a.maxWait > b.maxWait;
                  if (a.totalWait != b.totalWait)
                      return a.totalWait > b.totalWait;
                  return a.block < b.block;
              });
    if (rows.size() > top_n)
        rows.resize(top_n);
    return rows;
}

std::string
AttributionEngine::crossCheck(const BusStats& stats) const
{
    std::ostringstream out;
    if (attributedCycles() != stats.totalCycles) {
        out << "attributed bucket cycles " << attributedCycles()
            << " != BusStats.totalCycles " << stats.totalCycles;
        return out.str();
    }
    if (bucketCycles(BusBucket::InterCluster) != stats.interClusterCycles) {
        out << "attributed inter-cluster cycles "
            << bucketCycles(BusBucket::InterCluster)
            << " != BusStats.interClusterCycles "
            << stats.interClusterCycles;
        return out.str();
    }
    std::uint64_t trans_by_stats = 0;
    for (int p = 0; p < kNumBusPatterns; ++p) {
        trans_by_stats += stats.transByPattern[p];
        if (patternCycles_[p] != stats.cyclesByPattern[p]) {
            out << "pattern " << busPatternName(static_cast<BusPattern>(p))
                << ": attributed " << patternCycles_[p]
                << " cycles != BusStats " << stats.cyclesByPattern[p];
            return out.str();
        }
        if (patternTrans_[p] != stats.transByPattern[p]) {
            out << "pattern " << busPatternName(static_cast<BusPattern>(p))
                << ": attributed " << patternTrans_[p]
                << " transactions != BusStats " << stats.transByPattern[p];
            return out.str();
        }
    }
    if (attributedTransactions() != trans_by_stats) {
        out << "attributed bucket transactions "
            << attributedTransactions() << " != BusStats total "
            << trans_by_stats;
        return out.str();
    }
    return "";
}

std::string
AttributionEngine::report(std::size_t top_n) const
{
    std::ostringstream out;
    const double total_cycles = static_cast<double>(attributedCycles());
    const double total_misses = static_cast<double>(classifiedMisses());

    Table misses("miss classification (shadow tags)");
    misses.setHeader({"class", "misses", "%"});
    for (int c = 0; c < kNumMissClasses; ++c) {
        const std::uint64_t count = missByClass_[c];
        misses.addRow({missClassName(static_cast<MissClass>(c)),
                       u64(count),
                       pctString(static_cast<double>(count), total_misses)});
    }
    misses.addRule();
    misses.addRow({"total", u64(classifiedMisses()), "100.0"});
    out << misses.toString() << "\n";

    Table buckets("bus cycles by cause (sums exactly to BusStats)");
    buckets.setHeader({"bucket", "cycles", "trans", "%"});
    for (int b = 0; b < kNumBusBuckets; ++b) {
        buckets.addRow(
            {busBucketName(static_cast<BusBucket>(b)),
             u64(cyclesByBucket_[b]), u64(transByBucket_[b]),
             pctString(static_cast<double>(cyclesByBucket_[b]),
                       total_cycles)});
    }
    buckets.addRule();
    buckets.addRow({"total", u64(attributedCycles()),
                    u64(attributedTransactions()), "100.0"});
    out << buckets.toString() << "\n";

    Table by_op("bus cycles by in-flight operation");
    by_op.setHeader({"op", "fill", "c2c", "copyback", "inval", "lock",
                     "word-wr", "x-clu", "update", "total"});
    for (int o = 0; o <= kNumMemOps; ++o) {
        Cycles row_total = 0;
        for (int b = 0; b < kNumBusBuckets; ++b)
            row_total += opCycles_[o][b];
        if (row_total == 0)
            continue;
        by_op.addRow({o == kNumMemOps
                          ? "(none)"
                          : memOpName(static_cast<MemOp>(o)),
                      u64(opCycles_[o][0]), u64(opCycles_[o][1]),
                      u64(opCycles_[o][2]), u64(opCycles_[o][3]),
                      u64(opCycles_[o][4]), u64(opCycles_[o][5]),
                      u64(opCycles_[o][6]), u64(opCycles_[o][7]),
                      u64(row_total)});
    }
    out << by_op.toString() << "\n";

    Table hot("hottest blocks by bus occupancy");
    hot.setHeader({"block", "cycles", "trans", "fills", "inv-miss",
                   "ping-pong"});
    for (const BlockHeat& row : hottestBlocks(top_n)) {
        hot.addRow({u64(row.block), u64(row.busCycles),
                    u64(row.transactions), u64(row.fills),
                    u64(row.invMisses), u64(row.maxPingPong)});
    }
    out << hot.toString() << "\n";

    Table lock_table("most contended lock words");
    lock_table.setHeader({"word", "acquires", "contended"});
    for (const LockHeat& row : hottestLocks(top_n))
        lock_table.addRow({u64(row.word), u64(row.acquires),
                           u64(row.contended)});
    out << lock_table.toString() << "\n";

    Table wait_table("longest busy-waits (per parked-on block)");
    wait_table.setHeader({"block", "parks", "wakes", "total wait",
                          "max wait"});
    for (const WaitHeat& row : longestWaits(top_n))
        wait_table.addRow({u64(row.block), u64(row.parks), u64(row.wakes),
                           u64(row.totalWait), u64(row.maxWait)});
    out << wait_table.toString();
    return out.str();
}

void
AttributionEngine::writeJson(JsonWriter& json, const BusStats& stats,
                             std::size_t top_n) const
{
    json.beginObject();
    json.field("name", "attribution");
    json.field("pes", static_cast<std::uint64_t>(numPes_));

    json.key("miss_classes");
    json.beginObject();
    json.field("total", classifiedMisses());
    json.field("cold", missCount(MissClass::Cold));
    json.field("capacity", missCount(MissClass::Capacity));
    json.field("conflict", missCount(MissClass::Conflict));
    json.field("invalidation", missCount(MissClass::Invalidation));
    json.field("lock_purge", missCount(MissClass::LockPurge));
    json.field("flush", missCount(MissClass::Flush));
    json.endObject();

    json.key("buckets");
    json.beginArray();
    for (int b = 0; b < kNumBusBuckets; ++b) {
        json.beginObject();
        json.field("bucket", busBucketName(static_cast<BusBucket>(b)));
        json.field("cycles", static_cast<std::uint64_t>(cyclesByBucket_[b]));
        json.field("transactions", transByBucket_[b]);
        json.endObject();
    }
    json.endArray();

    json.key("by_op");
    json.beginArray();
    for (int o = 0; o <= kNumMemOps; ++o) {
        Cycles row_total = 0;
        for (int b = 0; b < kNumBusBuckets; ++b)
            row_total += opCycles_[o][b];
        if (row_total == 0)
            continue;
        json.beginObject();
        json.field("op", o == kNumMemOps
                             ? "(none)"
                             : memOpName(static_cast<MemOp>(o)));
        for (int b = 0; b < kNumBusBuckets; ++b) {
            json.field(busBucketName(static_cast<BusBucket>(b)),
                       static_cast<std::uint64_t>(opCycles_[o][b]));
        }
        json.field("total", static_cast<std::uint64_t>(row_total));
        json.endObject();
    }
    json.endArray();

    json.key("by_pe");
    json.beginArray();
    for (PeId pe = 0; pe < numPes_; ++pe) {
        Cycles pe_total = 0;
        for (int b = 0; b < kNumBusBuckets; ++b)
            pe_total += peCycles_[pe][b];
        json.beginObject();
        json.field("pe", static_cast<std::uint64_t>(pe));
        for (int b = 0; b < kNumBusBuckets; ++b) {
            json.field(busBucketName(static_cast<BusBucket>(b)),
                       static_cast<std::uint64_t>(peCycles_[pe][b]));
        }
        json.field("total", static_cast<std::uint64_t>(pe_total));
        json.endObject();
    }
    json.endArray();

    json.key("hot_blocks");
    json.beginArray();
    for (const BlockHeat& row : hottestBlocks(top_n)) {
        json.beginObject();
        json.field("block", static_cast<std::uint64_t>(row.block));
        json.field("cycles", static_cast<std::uint64_t>(row.busCycles));
        json.field("transactions", row.transactions);
        json.field("fills", row.fills);
        json.field("inv_misses", row.invMisses);
        json.field("max_ping_pong",
                   static_cast<std::uint64_t>(row.maxPingPong));
        json.endObject();
    }
    json.endArray();

    json.key("locks");
    json.beginArray();
    for (const LockHeat& row : hottestLocks(top_n)) {
        json.beginObject();
        json.field("word", static_cast<std::uint64_t>(row.word));
        json.field("acquires", row.acquires);
        json.field("contended", row.contended);
        json.endObject();
    }
    json.endArray();

    json.key("waits");
    json.beginArray();
    for (const WaitHeat& row : longestWaits(top_n)) {
        json.beginObject();
        json.field("block", static_cast<std::uint64_t>(row.block));
        json.field("parks", row.parks);
        json.field("wakes", row.wakes);
        json.field("total_wait", static_cast<std::uint64_t>(row.totalWait));
        json.field("max_wait", static_cast<std::uint64_t>(row.maxWait));
        json.endObject();
    }
    json.endArray();

    json.key("cross_check");
    json.beginObject();
    json.field("bus_total_cycles",
               static_cast<std::uint64_t>(stats.totalCycles));
    json.field("attributed_cycles",
               static_cast<std::uint64_t>(attributedCycles()));
    json.field("match", crossCheck(stats).empty());
    json.endObject();

    json.endObject();
}

std::string
AttributionEngine::jsonDocument(const BusStats& stats,
                                std::size_t top_n) const
{
    std::ostringstream os;
    JsonWriter json(os, /*pretty=*/true);
    writeJson(json, stats, top_n);
    os << "\n";
    return os.str();
}

bool
AttributionEngine::writeFile(const std::string& path, const BusStats& stats,
                             std::size_t top_n) const
{
    std::string error;
    return writeFileAtomic(path, jsonDocument(stats, top_n), &error);
}

} // namespace pim
