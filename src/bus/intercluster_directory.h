/**
 * @file
 * Inter-cluster residency directory (docs/ARCHITECTURE.md).
 *
 * The clustered topology's routing oracle: for every cache block it
 * records the set of clusters with at least one cached copy and the set
 * of clusters with at least one lock-directory entry, each as one
 * 64-bit cluster mask (whence the <= 64-cluster limit). The Bus
 * consults it before every transaction to reserve — and charge hop
 * cycles for — only the cluster buses that can possibly respond, in the
 * spirit of BlackParrot BedRock's directory-tracked invalidation sets.
 *
 * A directory entry is a pure summary of the residency filter's exact
 * per-PE masks: cluster c is in a block's copy set iff some PE of
 * cluster c holds a copy. Maintenance rides on the same eager
 * notifications that keep the filter exact (every fill, eviction, purge
 * and lock acquire/release); on a removal the directory re-checks the
 * departing PE's cluster range in the filter and clears the cluster bit
 * only when the last copy left. The summary is therefore exact — not a
 * conservative superset — and independent of whether the snoop filter's
 * query path is enabled, so filter-on and filter-off runs route (and
 * time) identically.
 *
 * Storage is paged like the filter's: two words per block, pages
 * materialized on first touch.
 */

#ifndef PIMCACHE_BUS_INTERCLUSTER_DIRECTORY_H_
#define PIMCACHE_BUS_INTERCLUSTER_DIRECTORY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "bus/cluster_bus.h"
#include "bus/residency_filter.h"
#include "common/types.h"

namespace pim {

/** Per-block cluster-residency sets (copy clusters, lock clusters). */
class InterClusterDirectory
{
  public:
    /** Block entries per storage page (entry = 2 words). */
    static constexpr std::size_t kPageBlocks = 2048;

    /**
     * Configure for @p config's partition and the bus's dispatch block
     * size. Tracking is active only on a clustered topology; on the
     * single bus every note is a no-op and queries return "cluster 0".
     */
    void
    configure(const ClusterConfig& config, std::uint32_t block_words)
    {
        config_ = config;
        blockWords_ = block_words == 0 ? 1 : block_words;
        shift_ = -1;
        if ((blockWords_ & (blockWords_ - 1)) == 0) {
            shift_ = 0;
            while ((1u << shift_) != blockWords_)
                ++shift_;
        }
    }

    /** True when cluster sets are being maintained. */
    bool tracking() const { return config_.clustered(); }

    /**
     * @p pe's cache gained (@p present) or dropped a copy of @p block.
     * Called *after* the residency filter was updated: the departing
     * side re-checks the cluster's PE range there to detect a last-copy
     * departure.
     */
    void noteCopy(PeId pe, Addr block, bool present,
                  const ResidencyFilter& filter);

    /** Lock-residency counterpart of noteCopy. */
    void noteLock(PeId pe, Addr block, bool resident,
                  const ResidencyFilter& filter);

    /** Clusters holding at least one cached copy of @p block. */
    std::uint64_t
    copyClusters(Addr block) const
    {
        const std::uint64_t* words = entryIfPresent(indexOf(block));
        return words != nullptr ? words[0] : 0;
    }

    /** Clusters with at least one lock entry on a word of @p block. */
    std::uint64_t
    lockClusters(Addr block) const
    {
        const std::uint64_t* words = entryIfPresent(indexOf(block));
        return words != nullptr ? words[1] : 0;
    }

    /** Blocks with a non-empty copy or lock cluster set. */
    std::size_t trackedBlocks() const;

  private:
    std::size_t
    indexOf(Addr block) const
    {
        return static_cast<std::size_t>(
            shift_ >= 0 ? block >> shift_ : block / blockWords_);
    }

    /** [lo, hi) PE range of @p cluster. */
    void
    clusterRange(std::uint32_t cluster, PeId* lo, PeId* hi) const
    {
        *lo = cluster * config_.clusterSize;
        *hi = *lo + config_.clusterSize;
    }

    std::uint64_t* entry(std::size_t index);
    const std::uint64_t* entryIfPresent(std::size_t index) const;

    ClusterConfig config_;
    std::uint32_t blockWords_ = 1;
    int shift_ = 0;
    /** Pages of kPageBlocks {copyClusters, lockClusters} entries. */
    std::vector<std::unique_ptr<std::uint64_t[]>> pages_;
};

} // namespace pim

#endif // PIMCACHE_BUS_INTERCLUSTER_DIRECTORY_H_
