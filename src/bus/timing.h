/**
 * @file
 * Common-bus timing model (paper Section 4.2).
 *
 * The bus is @c widthWords wide, carries tag+data, cannot send address and
 * data in the same cycle, and is held until one memory operation completes.
 * Shared memory takes @c memAccessCycles to access, but the *latency* of a
 * swap-out write at the memory module is hidden by the next operation;
 * only the victim's address+data transfer costs bus cycles, and that
 * transfer itself hides under the memory-access wait of a swap-in.
 *
 * With the paper's defaults (one-word bus, 8-cycle memory, 4-word blocks)
 * the six access patterns cost exactly the paper's numbers:
 * 13 (swap-in with or without swap-out), 7 (cache-to-cache), 10
 * (cache-to-cache with swap-out), 5 (swap-out only, DW), 2 (invalidate).
 */

#ifndef PIMCACHE_BUS_TIMING_H_
#define PIMCACHE_BUS_TIMING_H_

#include <algorithm>
#include <cstdint>

#include "common/types.h"
#include "common/xassert.h"

namespace pim {

/** Bus/memory timing parameters. */
struct BusTiming {
    std::uint32_t widthWords = 1;      ///< Bus width in words.
    std::uint32_t memAccessCycles = 8; ///< Shared-memory access time.
    std::uint32_t blockWords = 4;      ///< Cache block size in words.

    /** Cycles to move one block over the bus. */
    std::uint32_t
    blockTransferCycles() const
    {
        PIM_ASSERT(widthWords >= 1 && blockWords >= 1);
        return (blockWords + widthWords - 1) / widthWords;
    }

    /** Victim address + data transfer cycles. */
    std::uint32_t
    victimTransferCycles() const
    {
        return 1 + blockTransferCycles();
    }

    /**
     * Swap-in from shared memory; the victim transfer (if any) hides
     * under the memory-access wait.
     */
    Cycles
    swapInCycles(bool dirty_victim) const
    {
        const std::uint32_t wait =
            std::max(memAccessCycles,
                     dirty_victim ? victimTransferCycles() : 0u);
        return 1 + wait + blockTransferCycles();
    }

    /**
     * Cache-to-cache transfer; the snoop/response window (2 cycles) can
     * hide the start of a victim transfer but not all of it.
     */
    Cycles
    cacheToCacheCycles(bool dirty_victim) const
    {
        Cycles cycles = 1 + 2 + blockTransferCycles();
        if (dirty_victim) {
            const std::uint32_t victim = victimTransferCycles();
            cycles += victim > 2 ? victim - 2 : 0;
        }
        return cycles;
    }

    /** Swap-out only (appears only in DW block allocation). */
    Cycles
    swapOutOnlyCycles() const
    {
        return victimTransferCycles();
    }

    /** Invalidation of other PEs' blocks (bus command I). */
    Cycles invalidateCycles() const { return 2; }

    /** Unlock broadcast (bus command UL). */
    Cycles unlockCycles() const { return 2; }

    /** A fetch attempt rejected by a lock-hit (LH) response. */
    Cycles lockRejectCycles() const { return 2; }

    /** One word written through to memory (write-through baseline):
     *  address + data on the bus; memory write latency hidden. */
    Cycles
    wordWriteCycles() const
    {
        return 1 + (1 + widthWords - 1) / widthWords;
    }

    /** A Dragon word-update broadcast: address + one data beat on the
     *  wire, same as a word write; snarfing caches absorb it in place
     *  and no memory operation is started. */
    Cycles
    wordUpdateCycles() const
    {
        return 1 + (1 + widthWords - 1) / widthWords;
    }
};

/** Bus transaction categories, for accounting. */
enum class BusPattern : std::uint8_t {
    MemFetch = 0,       ///< Swap-in from memory, clean victim.
    MemFetchVictim = 1, ///< Swap-in from memory, dirty victim.
    C2C = 2,            ///< Cache-to-cache, clean victim.
    C2CVictim = 3,      ///< Cache-to-cache, dirty victim.
    SwapOutOnly = 4,    ///< DW allocation displacing a dirty victim.
    Invalidate = 5,     ///< I command.
    Unlock = 6,         ///< UL broadcast.
    LockReject = 7,     ///< Attempt answered by LH.
    WordWrite = 8,      ///< Write-through word write (baseline only).
    WordUpdate = 9,     ///< Dragon shared-write word broadcast.
};

inline constexpr int kNumBusPatterns = 10;

/** Human-readable pattern name. */
inline const char*
busPatternName(BusPattern pattern)
{
    switch (pattern) {
      case BusPattern::MemFetch:       return "mem-fetch";
      case BusPattern::MemFetchVictim: return "mem-fetch+swapout";
      case BusPattern::C2C:            return "c2c";
      case BusPattern::C2CVictim:      return "c2c+swapout";
      case BusPattern::SwapOutOnly:    return "swapout-only";
      case BusPattern::Invalidate:     return "invalidate";
      case BusPattern::Unlock:         return "unlock";
      case BusPattern::LockReject:     return "lock-reject";
      case BusPattern::WordWrite:      return "word-write";
      case BusPattern::WordUpdate:     return "word-update";
    }
    return "?";
}

/** Bus command kinds, counted for the RI-effectiveness statistic. */
enum class BusCmd : std::uint8_t {
    F = 0,  ///< Fetch.
    FI = 1, ///< Fetch and invalidate.
    I = 2,  ///< Invalidate.
    LK = 3, ///< Lock broadcast (rides with FI or I).
    UL = 4, ///< Unlock broadcast.
};

inline constexpr int kNumBusCmds = 5;

/** Mnemonic as used in the paper. */
inline const char*
busCmdName(BusCmd cmd)
{
    switch (cmd) {
      case BusCmd::F:  return "F";
      case BusCmd::FI: return "FI";
      case BusCmd::I:  return "I";
      case BusCmd::LK: return "LK";
      case BusCmd::UL: return "UL";
    }
    return "?";
}

} // namespace pim

#endif // PIMCACHE_BUS_TIMING_H_
