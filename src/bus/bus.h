/**
 * @file
 * The common bus: arbitration, snoop dispatch, data movement, accounting.
 *
 * Implements the bus commands of paper Section 3.3: F (fetch), FI (fetch
 * and invalidate), I (invalidate), LK (lock, riding with FI or I), UL
 * (unlock), and the responses H (hit, i.e. a cache supplies the block)
 * and LH (lock hit, the access is inhibited by a remote lock directory).
 *
 * The bus carries real data words between caches and the shared memory,
 * and charges cycles according to BusTiming. Protocol policy (state
 * transitions) lives in the caches; the bus only dispatches snoops.
 */

#ifndef PIMCACHE_BUS_BUS_H_
#define PIMCACHE_BUS_BUS_H_

#include <cstdint>
#include <vector>

#include "bus/cluster_bus.h"
#include "bus/intercluster_directory.h"
#include "bus/residency_filter.h"
#include "bus/timing.h"
#include "common/types.h"
#include "fault/fault_injector.h"
#include "mem/area.h"
#include "mem/paged_store.h"

namespace pim {

class EventSink;
struct BusTxnEvent;

/** Cache-side snoop interface. */
class BusSnooper
{
  public:
    virtual ~BusSnooper() = default;

    /** Reply to a fetch snoop. */
    struct FetchReply {
        bool present = false; ///< H response: this cache supplies data.
        bool dirty = false;   ///< Block was EM/SM before the snoop.
    };

    /**
     * F or FI observed for @p block_addr at bus time @p when. If this
     * cache holds the block it must copy it into @p data_out, then
     * downgrade to shared (F) or invalidate (FI) its copy, and report
     * whether the copy was dirty. Dirty data is *not* copied back to
     * shared memory here — that is the point of the SM state (the
     * Illinois-style baseline overrides this).
     */
    virtual FetchReply snoopFetch(Addr block_addr, bool invalidate,
                                  Word* data_out, Cycles when) = 0;

    /**
     * I (or the invalidation half of FI) observed for @p block_addr at
     * bus time @p when: drop any copy. @return true if the dropped copy
     * was dirty (EM/SM), so that dirty ownership can migrate to the
     * requester instead of being silently lost.
     */
    virtual bool snoopInvalidate(Addr block_addr, Cycles when) = 0;

    /**
     * Dragon word-update broadcast observed for @p word_addr at bus time
     * @p when: a cache holding the word's block must snarf @p value into
     * it (and, if it was the dirty owner, downgrade to clean S — dirty
     * ownership migrates to the writer). @return true iff this cache
     * holds a copy. Default: no copy (invalidation-based protocols never
     * see updates).
     */
    virtual bool
    snoopUpdate(Addr word_addr, Word value, Cycles when)
    {
        (void)word_addr;
        (void)value;
        (void)when;
        return false;
    }
};

/** Lock-directory-side snoop interface. */
class LockSnooper
{
  public:
    virtual ~LockSnooper() = default;

    /**
     * F, FI or LK observed at bus time @p when for the block
     * [block_addr, block_addr + block_words). If this directory holds a
     * lock on any word in that block it must move the entry to LWAIT and
     * return true (LH).
     */
    virtual bool snoopLockCheck(Addr block_addr, std::uint32_t block_words,
                                Cycles when) = 0;
};

/** Observer of UL broadcasts (the system uses it to wake parked PEs). */
class UnlockListener
{
  public:
    virtual ~UnlockListener() = default;

    /** UL observed for @p word_addr at bus time @p when. */
    virtual void onUnlockBroadcast(Addr word_addr, Cycles when) = 0;
};

/** Aggregate bus accounting. */
struct BusStats {
    Cycles cyclesByPattern[kNumBusPatterns] = {};
    std::uint64_t transByPattern[kNumBusPatterns] = {};
    Cycles cyclesByArea[kNumAreaSlots] = {};
    Cycles cyclesByPe[64] = {};
    std::uint64_t cmdCounts[kNumBusCmds] = {};
    Cycles totalCycles = 0;
    /** Shared-memory module busy time (fetches + copy-backs). */
    Cycles memoryBusyCycles = 0;
    std::uint64_t memoryReads = 0;
    std::uint64_t memoryWrites = 0;
    /**
     * Fetches from shared memory of a block whose last dirty copy was
     * purged (ER/RP) and never written back: the software violated the
     * write-once/read-once contract and read stale data.
     */
    std::uint64_t staleFetches = 0;
    /**
     * Interconnect hop cycles on the clustered topology
     * (docs/ARCHITECTURE.md): charged on top of the pattern's fixed
     * cost, so cyclesByPattern keeps its transactions-times-cost
     * invariant and totalCycles = sum(cyclesByPattern) +
     * interClusterCycles. Always zero on a single bus.
     */
    Cycles interClusterCycles = 0;
    /** Transactions whose route crossed the interconnect. */
    std::uint64_t interClusterHops = 0;

    void
    account(BusPattern pattern, Cycles cycles, Area area, PeId pe,
            Cycles hop_cycles = 0)
    {
        cyclesByPattern[static_cast<int>(pattern)] += cycles;
        transByPattern[static_cast<int>(pattern)] += 1;
        cyclesByArea[static_cast<int>(area)] += cycles + hop_cycles;
        if (pe < 64)
            cyclesByPe[pe] += cycles + hop_cycles;
        totalCycles += cycles + hop_cycles;
        interClusterCycles += hop_cycles;
        if (hop_cycles != 0)
            interClusterHops += 1;
    }

    void clear() { *this = BusStats{}; }
};

/** Result of an F/FI transaction. */
struct FetchResult {
    bool lockHit = false;       ///< LH: inhibited; retry after UL.
    bool supplied = false;      ///< H: data came from another cache.
    bool supplierDirty = false; ///< Supplier copy was EM/SM.
    Cycles completeAt = 0;      ///< Bus time when the transaction ends.
};

/** Result of an I transaction. */
struct InvalidateResult {
    bool lockHit = false;
    /** Some invalidated remote copy was dirty; the requester must take
     *  over dirty ownership (install EM/SM, not EC/S). */
    bool droppedDirty = false;
    Cycles completeAt = 0;
};

/** Result of a word-update broadcast (Dragon shared write). */
struct UpdateResult {
    /** Some remote cache snarfed the word: the writer must stay in a
     *  shared state (SM). False: the writer is the sole holder (EM). */
    bool sharerPresent = false;
    Cycles completeAt = 0;
};

/**
 * The common bus shared by all PEs and the memory modules.
 *
 * Single-owner resource: a transaction requested at time T starts at
 * max(T, freeAt) and holds the bus for its full pattern cost (paper
 * assumption 3: the bus is not freed until the operation completes).
 *
 * On a clustered topology (ClusterConfig.clusterSize > 0 with 2+
 * clusters) the single resource splits into per-cluster buses joined by
 * a contention-free crossbar (ClusterTopology); a transaction reserves
 * only the buses on its route — directed by the InterClusterDirectory —
 * and pays the route's hop cycles on top of its pattern cost. Snoop
 * semantics are identical on every topology.
 */
class Bus
{
  public:
    Bus(const BusTiming& timing, PagedStore& memory,
        const ClusterConfig& cluster = ClusterConfig{});

    /**
     * Attach one PE's cache and lock directory snoopers. Each PE may be
     * attached at most once; the PE id doubles as the port's bit in the
     * residency filter masks.
     */
    void attach(PeId pe, BusSnooper* cache, LockSnooper* locks);

    /** Register the UL observer (at most one; typically the System). */
    void setUnlockListener(UnlockListener* listener);

    /**
     * Attach a fault injector (nullptr to detach). The bus consults it at
     * its injection sites: DropSnoop, DupSnoop, CorruptWord, SpuriousInv.
     */
    void setFaultInjector(FaultInjector* injector)
    {
        injector_ = injector;
    }

    /**
     * Attach an observability sink (nullptr to detach). Every completed
     * transaction — including LH-rejected attempts — is reported with its
     * arbitration wait, bus occupancy and response flags. An unobserved
     * bus pays one null compare per transaction.
     */
    void setEventSink(EventSink* sink) { sink_ = sink; }

    /**
     * Issue F (or FI when @p invalidate). Lock directories are checked
     * first; on LH the transaction aborts (lock-reject cycles). Otherwise
     * the block is supplied cache-to-cache or from memory into
     * @p data_out, and @p dirty_victim selects the with-swap-out timing.
     * When @p with_lock, an LK for @p lock_word rides along.
     */
    FetchResult fetch(PeId requester, Addr block_addr, bool invalidate,
                      bool with_lock, Addr lock_word, bool dirty_victim,
                      Word* data_out, Cycles when, Area area);

    /** Issue I (optionally with LK riding along). */
    InvalidateResult invalidate(PeId requester, Addr block_addr,
                                bool with_lock, Addr lock_word, Cycles when,
                                Area area);

    /**
     * Move a victim block's data to shared memory. No bus cycles are
     * charged here: the caller folds the transfer into the pattern of the
     * operation that displaced the victim (fetch / swapOutOnly).
     */
    void writeBackData(Addr block_addr, const Word* data);

    /**
     * Swap-out-only pattern: a DW allocation displaced a dirty victim and
     * no fetch follows. Charges bus cycles and writes the data back.
     */
    Cycles swapOutOnly(PeId requester, Addr victim_addr, const Word* data,
                       Cycles when, Area area);

    /** Broadcast UL for @p word_addr. */
    Cycles unlockBroadcast(PeId requester, Addr word_addr, Cycles when,
                           Area area);

    /**
     * Write one word straight to shared memory, invalidating every
     * remote copy of its block (the write-through baseline's per-write
     * bus transaction). Costs wordWriteCycles().
     */
    Cycles writeWordThrough(PeId requester, Addr word_addr, Word value,
                            Cycles when, Area area);

    /**
     * Broadcast one written word to every remote copy of its block
     * (Dragon's shared-write transaction). Unlike writeWordThrough,
     * shared memory is *not* updated — sharers snarf the word in place
     * and the writer keeps dirty ownership. Costs wordUpdateCycles().
     * No lock check: the writer already holds a valid copy, which the
     * lock protocol guarantees cannot coexist with a remote lock.
     */
    UpdateResult updateWord(PeId requester, Addr word_addr, Word value,
                            Cycles when, Area area);

    /**
     * Contract checker: note that a dirty block was purged without
     * copy-back. A later fetch of the block from memory (before a fresh
     * allocation or write-back overwrites it) counts as a stale fetch.
     */
    void markPurgedDirty(Addr block_addr);

    /** Contract checker: a DW freshly allocated this block. */
    void noteFreshAllocation(Addr block_addr);

    /** Contract checker: forget all purge marks (used around GC). */
    void clearPurgedMarks();

    /**
     * True if the last dirty copy of @p block_addr was purged without
     * copy-back (shared memory is stale by software contract). Used by
     * the coherence auditor to excuse clean-copy/memory mismatches that
     * the RP/ER contract deliberately creates.
     */
    bool
    purgedDirtyMarked(Addr block_addr) const
    {
        const std::size_t index = blockIndexOf(block_addr);
        return (index >> 6) < purgedDirty_.size() &&
               (purgedDirty_[index >> 6] & (1ull << (index & 63))) != 0;
    }

    /**
     * Append the purge marks in [@p lo, @p hi) to @p out in address
     * order. Part of the protocol state snapshot used by the
     * conformance engine (src/model): a purge mark changes how later
     * invariant checks and stale-fetch accounting behave, so states
     * differing only in marks must not be merged.
     */
    void snapshotPurgeMarks(Addr lo, Addr hi,
                            std::vector<std::uint64_t>& out) const;

    /** Read a block from shared memory without bus involvement (init). */
    void readMemoryBlock(Addr block_addr, Word* data_out) const;

    /** Write a block to shared memory without bus involvement (init). */
    void writeMemoryBlock(Addr block_addr, const Word* data);

    // -- Residency filter (docs/PERFORMANCE.md) ---------------------------

    /**
     * Enable / disable the snoop filter's *query* path (maintenance is
     * always on, so the filter can be re-enabled mid-run). Disabled, the
     * bus broadcasts every snoop to all ports — the pre-filter behavior
     * pim_perf measures against and pim_conform fuzzes differentially.
     */
    void setSnoopFilterEnabled(bool enabled) { filterEnabled_ = enabled; }
    bool snoopFilterEnabled() const { return filterEnabled_; }

    /** @p pe's cache gained a valid copy of @p block_addr. */
    void
    noteBlockPresent(PeId pe, Addr block_addr)
    {
        residency_.addCopy(pe, block_addr);
        directory_.noteCopy(pe, block_addr, true, residency_);
    }

    /** @p pe's cache dropped its copy of @p block_addr. */
    void
    noteBlockAbsent(PeId pe, Addr block_addr)
    {
        residency_.removeCopy(pe, block_addr);
        directory_.noteCopy(pe, block_addr, false, residency_);
    }

    /** @p pe's lock directory residency in @p block_addr changed. */
    void
    noteLockResidency(PeId pe, Addr block_addr, bool resident)
    {
        residency_.setLockResident(pe, block_addr, resident);
        directory_.noteLock(pe, block_addr, resident, residency_);
    }

    const ResidencyFilter& residency() const { return residency_; }

    /** The per-block cluster-residency sets (clustered topology). */
    const InterClusterDirectory& directory() const { return directory_; }

    /** The cluster partition and per-cluster bus occupancy. */
    const ClusterTopology& clusters() const { return clusters_; }

    const BusTiming& timing() const { return timing_; }
    BusStats& stats() { return stats_; }
    const BusStats& stats() const { return stats_; }
    Cycles freeAt() const { return freeAt_; }
    PagedStore& memory() { return memory_; }

  private:
    struct Port {
        PeId pe = 0;
        BusSnooper* cache = nullptr;
        LockSnooper* locks = nullptr;
    };

    /**
     * The cluster resources a transaction reserves and the hop cycles
     * it pays. Trivial (hop 0, nothing reserved beyond the legacy
     * freeAt_) on the single-bus topology.
     */
    struct Route {
        std::uint32_t local = 0;    ///< Requester's cluster.
        std::uint64_t remote = 0;   ///< Remote clusters consulted.
        Cycles hop = 0;             ///< Interconnect cycles charged.
    };

    /**
     * Route for an F/FI/I/LK transaction on @p block_addr, from the
     * pre-transaction directory state: the remote clusters holding
     * copies (@p snoops_copies) and/or locks (@p checks_locks). Memory
     * is banked per cluster (each cluster bus has its own port into the
     * shared-memory modules), so memory crossings never ride the
     * interconnect. Computed before any snoop runs, so the reservation
     * is independent of snoop outcomes.
     */
    Route routeFor(PeId requester, Addr block_addr, bool snoops_copies,
                   bool checks_locks) const;

    /** Earliest start of a transaction over @p route. */
    Cycles arbitrate(const Route& route, Cycles when) const;

    /** Hold @p route's resources until @p until. */
    void release(const Route& route, Cycles until);

    /** LH check across all directories except the requester's. */
    bool lockCheck(PeId requester, Addr block_addr, Cycles when);

    /** Report one transaction to the sink (no-op when none attached). */
    void emitTxn(const BusTxnEvent& event);

    /**
     * True when snoops may be directed by the residency masks. Requires
     * the filter to be exact and no fault injector: the injector draws
     * one RNG decision per *visited* port, so a filtered walk would
     * shift the fault sequence and break seed replay.
     */
    bool
    filterActive() const
    {
        return filterEnabled_ && residency_.exact() && injector_ == nullptr;
    }

    /** The port attached for @p pe (never null on the filtered path). */
    const Port*
    portOf(PeId pe) const
    {
        return pe < portIndexByPe_.size() && portIndexByPe_[pe] >= 0
                   ? &ports_[static_cast<std::size_t>(portIndexByPe_[pe])]
                   : nullptr;
    }

    /** Block number of @p block_addr (purge-mark bitmap index). */
    std::size_t
    blockIndexOf(Addr block_addr) const
    {
        return static_cast<std::size_t>(
            blockShift_ >= 0 ? block_addr >> blockShift_
                             : block_addr / timing_.blockWords);
    }

    void setPurgeMark(Addr block_addr, bool marked);

    BusTiming timing_;
    PagedStore& memory_;
    std::vector<Port> ports_;
    std::vector<std::int32_t> portIndexByPe_; ///< PE id -> ports_ index.
    ResidencyFilter residency_;
    ClusterTopology clusters_;
    InterClusterDirectory directory_;
    bool filterEnabled_ = true;
    UnlockListener* unlockListener_ = nullptr;
    FaultInjector* injector_ = nullptr;
    EventSink* sink_ = nullptr;
    Cycles freeAt_ = 0;
    BusStats stats_;
    int blockShift_ = -1; ///< log2(blockWords) when a power of two.
    /**
     * Bit per block number, set while the block's last dirty copy was
     * purged without copy-back. Index-ordered, so snapshotPurgeMarks
     * walks a range in address order without any per-call sort, and the
     * per-fetch membership test is one load.
     */
    std::vector<std::uint64_t> purgedDirty_;
};

} // namespace pim

#endif // PIMCACHE_BUS_BUS_H_
