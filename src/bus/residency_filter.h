/**
 * @file
 * Exact bus-side residency filter (docs/PERFORMANCE.md,
 * docs/ARCHITECTURE.md).
 *
 * Tracks, per cache block, (a) the set of PEs whose cache holds a valid
 * copy and (b) the set of PEs whose lock directory has an entry (or an
 * injected ghost) on a word of the block. Both sets are maintained
 * eagerly by the components that own the state — PimCache on every
 * INV<->valid transition, LockDirectory on every acquire/release — so
 * the bus can direct snoops, invalidations and lock checks to exactly
 * the PEs that can respond instead of broadcasting to all P ports.
 *
 * The filter is *exact*, not approximate: a PE is in a block's copy set
 * if and only if its cache holds the block, so skipping the other PEs
 * is observationally identical to snooping them (an absent copy neither
 * supplies data nor changes state, and an empty lock directory never
 * answers LH). Protocol outcomes, statistics and timing are bit-for-bit
 * unchanged — which the conformance engine (src/model) verifies by
 * fuzzing with the filter on and off.
 *
 * Masks are multi-word PE bitsets: an entry is ceil(P/64) consecutive
 * 64-bit words, so the filter is exact at *any* PE count — there is no
 * 64-PE ceiling and no broadcast fallback for wide machines. With 64 or
 * fewer PEs an entry is a single word and the maintenance/query cost is
 * identical to the single-word design this replaces. The per-block
 * cluster summaries the inter-cluster directory keeps
 * (src/bus/intercluster_directory.h) are derived from these masks.
 *
 * Entries live in pages allocated on first touch (the PagedStore idiom):
 * a lookup is one shift, one page-pointer load and one indexed load, and
 * a 1024-PE machine with a sparse multi-gigaword address space costs
 * memory proportional to the blocks it actually caches, not to its
 * address-space size.
 */

#ifndef PIMCACHE_BUS_RESIDENCY_FILTER_H_
#define PIMCACHE_BUS_RESIDENCY_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/pe_bitset.h"
#include "common/types.h"
#include "common/xassert.h"

namespace pim {

/** Per-block PE presence masks for copies and lock entries. */
class ResidencyFilter
{
  public:
    /** Block entries per storage page (entry = maskWords() words). */
    static constexpr std::size_t kPageBlocks = 1024;

    /**
     * Widest supported mask in words; bounds the stack buffers the bus
     * walks copy entries into (64 words = 4096 PEs, far past the
     * clustered design space).
     */
    static constexpr std::uint32_t kMaxMaskWords = 64;

    /**
     * Set the block size the bus dispatches at; block addresses passed
     * to the mask updaters are multiples of this. Must be called before
     * any residency note (the Bus constructor does).
     */
    void
    setBlockWords(std::uint32_t block_words)
    {
        blockWords_ = block_words == 0 ? 1 : block_words;
        shift_ = -1;
        if ((blockWords_ & (blockWords_ - 1)) == 0) {
            shift_ = 0;
            while ((1u << shift_) != blockWords_)
                ++shift_;
        }
    }

    /**
     * Note that @p pe participates in the system, growing the per-block
     * entry to cover it. Registration happens at attach time — before
     * any traffic — but growth re-lays existing pages out correctly
     * regardless.
     */
    void
    registerPe(PeId pe)
    {
        const std::uint32_t needed = (pe >> 6) + 1;
        PIM_ASSERT(needed <= kMaxMaskWords, "pe", pe,
                   " exceeds the residency filter's ", kMaxMaskWords * 64,
                   "-PE mask limit");
        if (needed > maskWords_) {
            regrow(copies_, needed);
            regrow(locks_, needed);
            maskWords_ = needed;
        }
    }

    /** Mask words per block entry (1 for machines of up to 64 PEs). */
    std::uint32_t maskWords() const { return maskWords_; }

    /**
     * True while the filtered walk's ascending-PE order matches the
     * bus's port order. The bus consults masks only while exact; mask
     * *contents* are exact regardless.
     */
    bool exact() const { return exact_; }

    /**
     * Permanently disable mask queries (e.g. the bus detected a port
     * layout the masks cannot reproduce faithfully).
     */
    void markInexact() { exact_ = false; }

    /** @p pe's cache now holds a valid copy of @p block. */
    void
    addCopy(PeId pe, Addr block)
    {
        entry(copies_, indexOf(block))[pe >> 6] |= bit(pe);
    }

    /** @p pe's cache no longer holds @p block. */
    void
    removeCopy(PeId pe, Addr block)
    {
        std::uint64_t* words = entryIfPresent(copies_, indexOf(block));
        if (words != nullptr)
            words[pe >> 6] &= ~bit(pe);
    }

    /**
     * @p pe's lock directory now does / does not contain an entry (or a
     * ghost) on a word of @p block. Idempotent: directories re-assert
     * the block's residency after every change.
     */
    void
    setLockResident(PeId pe, Addr block, bool resident)
    {
        if (resident) {
            entry(locks_, indexOf(block))[pe >> 6] |= bit(pe);
        } else {
            std::uint64_t* words = entryIfPresent(locks_, indexOf(block));
            if (words != nullptr)
                words[pe >> 6] &= ~bit(pe);
        }
    }

    /** PEs holding a valid copy of @p block. */
    PeBitset
    copyMask(Addr block) const
    {
        return maskOf(copies_, block);
    }

    /** PEs with a lock entry or ghost on a word of @p block. */
    PeBitset
    lockMask(Addr block) const
    {
        return maskOf(locks_, block);
    }

    /** Raw copy-mask word @p word of @p block (bus hot path). */
    std::uint64_t
    copyWord(Addr block, std::uint32_t word) const
    {
        const std::uint64_t* words =
            entryIfPresent(copies_, indexOf(block));
        return words != nullptr ? words[word] : 0;
    }

    /** Raw lock-mask word @p word of @p block (bus hot path). */
    std::uint64_t
    lockWord(Addr block, std::uint32_t word) const
    {
        const std::uint64_t* words = entryIfPresent(locks_, indexOf(block));
        return words != nullptr ? words[word] : 0;
    }

    /** True if any PE other than @p except holds a copy of @p block. */
    bool
    anyCopyExcept(Addr block, PeId except) const
    {
        const std::uint64_t* words =
            entryIfPresent(copies_, indexOf(block));
        if (words == nullptr)
            return false;
        for (std::uint32_t w = 0; w < maskWords_; ++w) {
            std::uint64_t mask = words[w];
            if (w == (except >> 6))
                mask &= ~bit(except);
            if (mask != 0)
                return true;
        }
        return false;
    }

    /** True if any PE in [@p lo, @p hi) holds a copy of @p block. */
    bool
    anyCopyInRange(Addr block, PeId lo, PeId hi) const
    {
        return anyInRange(copies_, block, lo, hi);
    }

    /** True if any PE in [@p lo, @p hi) has lock residency in @p block. */
    bool
    anyLockInRange(Addr block, PeId lo, PeId hi) const
    {
        return anyInRange(locks_, block, lo, hi);
    }

    /**
     * Call @p fn(PeId) for every copy holder of @p block except
     * @p skip, in ascending PE order. The entry is copied out first, so
     * @p fn may change residency (an FI snoop drops the snooped copy)
     * without perturbing the walk — exactly the snapshot semantics of
     * the broadcast scan it replaces.
     */
    template <typename Fn>
    void
    forEachCopyHolder(Addr block, PeId skip, Fn&& fn) const
    {
        walk(copies_, block, skip, fn);
    }

    /** forEachCopyHolder, over the lock-residency masks. */
    template <typename Fn>
    void
    forEachLockHolder(Addr block, PeId skip, Fn&& fn) const
    {
        walk(locks_, block, skip, fn);
    }

    /** Blocks with at least one cached copy (introspection). */
    std::size_t trackedCopyBlocks() const { return nonZero(copies_); }

    /** Blocks with at least one lock entry (introspection). */
    std::size_t trackedLockBlocks() const { return nonZero(locks_); }

  private:
    /** Pages of kPageBlocks entries, maskWords_ words each. */
    struct MaskStore {
        std::vector<std::unique_ptr<std::uint64_t[]>> pages;
    };

    static std::uint64_t bit(PeId pe) { return 1ull << (pe & 63); }

    std::size_t
    indexOf(Addr block) const
    {
        return static_cast<std::size_t>(
            shift_ >= 0 ? block >> shift_ : block / blockWords_);
    }

    /** Entry for @p index, materializing its page on first touch. */
    std::uint64_t*
    entry(MaskStore& store, std::size_t index)
    {
        const std::size_t page = index / kPageBlocks;
        if (page >= store.pages.size())
            store.pages.resize(page + 1);
        if (store.pages[page] == nullptr) {
            store.pages[page] = std::make_unique<std::uint64_t[]>(
                kPageBlocks * maskWords_);
            for (std::size_t i = 0; i < kPageBlocks * maskWords_; ++i)
                store.pages[page][i] = 0;
        }
        return &store.pages[page][(index % kPageBlocks) * maskWords_];
    }

    /** Entry for @p index, or nullptr when its page never materialized. */
    const std::uint64_t*
    entryIfPresent(const MaskStore& store, std::size_t index) const
    {
        const std::size_t page = index / kPageBlocks;
        if (page >= store.pages.size() || store.pages[page] == nullptr)
            return nullptr;
        return &store.pages[page][(index % kPageBlocks) * maskWords_];
    }

    std::uint64_t*
    entryIfPresent(MaskStore& store, std::size_t index)
    {
        return const_cast<std::uint64_t*>(
            static_cast<const ResidencyFilter*>(this)->entryIfPresent(
                store, index));
    }

    PeBitset
    maskOf(const MaskStore& store, Addr block) const
    {
        const std::uint64_t* words = entryIfPresent(store, indexOf(block));
        if (words == nullptr)
            return PeBitset(maskWords_);
        return PeBitset::fromWords(words, maskWords_);
    }

    bool
    anyInRange(const MaskStore& store, Addr block, PeId lo, PeId hi) const
    {
        const std::uint64_t* words = entryIfPresent(store, indexOf(block));
        if (words == nullptr || lo >= hi)
            return false;
        const std::uint32_t lo_word = lo >> 6;
        const std::uint32_t hi_word = (hi - 1) >> 6;
        for (std::uint32_t w = lo_word;
             w <= hi_word && w < maskWords_; ++w) {
            std::uint64_t mask = words[w];
            if (w == lo_word)
                mask &= ~0ull << (lo & 63);
            if (w == hi_word && (hi & 63) != 0)
                mask &= (1ull << (hi & 63)) - 1;
            if (mask != 0)
                return true;
        }
        return false;
    }

    template <typename Fn>
    void
    walk(const MaskStore& store, Addr block, PeId skip, Fn&& fn) const
    {
        const std::uint64_t* words = entryIfPresent(store, indexOf(block));
        if (words == nullptr)
            return;
        // Snapshot the entry so fn's residency updates cannot shift the
        // walk (the single-word design got this for free by copying the
        // mask into a register).
        std::uint64_t local[kMaxMaskWords];
        for (std::uint32_t w = 0; w < maskWords_; ++w)
            local[w] = words[w];
        if ((skip >> 6) < maskWords_)
            local[skip >> 6] &= ~bit(skip);
        for (std::uint32_t w = 0; w < maskWords_; ++w) {
            std::uint64_t mask = local[w];
            while (mask != 0) {
                fn(static_cast<PeId>((static_cast<std::uint64_t>(w) << 6) +
                                     __builtin_ctzll(mask)));
                mask &= mask - 1;
            }
        }
    }

    std::size_t
    nonZero(const MaskStore& store) const
    {
        std::size_t count = 0;
        for (const auto& page : store.pages) {
            if (page == nullptr)
                continue;
            for (std::size_t i = 0; i < kPageBlocks; ++i) {
                for (std::uint32_t w = 0; w < maskWords_; ++w) {
                    if (page[i * maskWords_ + w] != 0) {
                        count += 1;
                        break;
                    }
                }
            }
        }
        return count;
    }

    /** Re-lay @p store out for @p new_words-wide entries. */
    void
    regrow(MaskStore& store, std::uint32_t new_words)
    {
        if (store.pages.empty() || new_words == maskWords_)
            return;
        MaskStore wider;
        wider.pages.resize(store.pages.size());
        for (std::size_t p = 0; p < store.pages.size(); ++p) {
            if (store.pages[p] == nullptr)
                continue;
            wider.pages[p] = std::make_unique<std::uint64_t[]>(
                kPageBlocks * new_words);
            for (std::size_t i = 0; i < kPageBlocks * new_words; ++i)
                wider.pages[p][i] = 0;
            for (std::size_t i = 0; i < kPageBlocks; ++i) {
                for (std::uint32_t w = 0; w < maskWords_; ++w) {
                    wider.pages[p][i * new_words + w] =
                        store.pages[p][i * maskWords_ + w];
                }
            }
        }
        store.pages = std::move(wider.pages);
    }

    bool exact_ = true;
    std::uint32_t blockWords_ = 1;
    std::uint32_t maskWords_ = 1; ///< ceil(maxPe+1 / 64), grown by registerPe.
    int shift_ = 0; ///< log2(blockWords_) when a power of two, else -1.
    MaskStore copies_; ///< Block index -> PE copy mask entry.
    MaskStore locks_;  ///< Block index -> lock-residency mask entry.
};

} // namespace pim

#endif // PIMCACHE_BUS_RESIDENCY_FILTER_H_
