/**
 * @file
 * Exact bus-side residency filter (docs/PERFORMANCE.md).
 *
 * Tracks, per cache block, (a) the set of PEs whose cache holds a valid
 * copy and (b) the set of PEs whose lock directory has an entry (or an
 * injected ghost) on a word of the block. Both sets are maintained
 * eagerly by the components that own the state — PimCache on every
 * INV<->valid transition, LockDirectory on every acquire/release — so
 * the bus can direct snoops, invalidations and lock checks to exactly
 * the PEs that can respond instead of broadcasting to all P ports.
 *
 * The filter is *exact*, not approximate: a PE is in a block's copy set
 * if and only if its cache holds the block, so skipping the other PEs
 * is observationally identical to snooping them (an absent copy neither
 * supplies data nor changes state, and an empty lock directory never
 * answers LH). Protocol outcomes, statistics and timing are bit-for-bit
 * unchanged — which the conformance engine (src/model) verifies by
 * fuzzing with the filter on and off.
 *
 * The masks live in dense arrays indexed by block number (the filter
 * maintenance rides on every fill and eviction, so it must be a couple
 * of loads, not a hash probe). Pages of the array materialize as the
 * address space is touched, like PagedStore.
 *
 * PEs are tracked as bits of a 64-bit mask. A system with more than 64
 * PEs degrades gracefully: the filter marks itself inexact and the bus
 * falls back to the full broadcast scan.
 */

#ifndef PIMCACHE_BUS_RESIDENCY_FILTER_H_
#define PIMCACHE_BUS_RESIDENCY_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace pim {

/** Per-block PE presence masks for copies and lock entries. */
class ResidencyFilter
{
  public:
    /** Widest PE set a mask can represent. */
    static constexpr std::uint32_t kMaxPes = 64;

    /**
     * Set the block size the bus dispatches at; block addresses passed
     * to the mask updaters are multiples of this. Must be called before
     * any residency note (the Bus constructor does).
     */
    void
    setBlockWords(std::uint32_t block_words)
    {
        blockWords_ = block_words == 0 ? 1 : block_words;
        shift_ = -1;
        if ((blockWords_ & (blockWords_ - 1)) == 0) {
            shift_ = 0;
            while ((1u << shift_) != blockWords_)
                ++shift_;
        }
    }

    /**
     * Note that @p pe participates in the system. A PE beyond the mask
     * width makes the filter inexact (the bus then broadcasts).
     */
    void
    registerPe(PeId pe)
    {
        if (pe >= kMaxPes)
            exact_ = false;
    }

    /**
     * True while every residency change has been representable. The bus
     * consults masks only while exact.
     */
    bool exact() const { return exact_; }

    /**
     * Permanently disable mask queries (e.g. the bus detected a port
     * layout the masks cannot reproduce faithfully).
     */
    void markInexact() { exact_ = false; }

    /** @p pe's cache now holds a valid copy of @p block. */
    void
    addCopy(PeId pe, Addr block)
    {
        if (pe >= kMaxPes) {
            exact_ = false;
            return;
        }
        slot(copies_, indexOf(block)) |= bit(pe);
    }

    /** @p pe's cache no longer holds @p block. */
    void
    removeCopy(PeId pe, Addr block)
    {
        if (pe >= kMaxPes)
            return;
        const std::size_t index = indexOf(block);
        if (index < copies_.size())
            copies_[index] &= ~bit(pe);
    }

    /**
     * @p pe's lock directory now does / does not contain an entry (or a
     * ghost) on a word of @p block. Idempotent: directories re-assert
     * the block's residency after every change.
     */
    void
    setLockResident(PeId pe, Addr block, bool resident)
    {
        if (pe >= kMaxPes) {
            if (resident)
                exact_ = false;
            return;
        }
        const std::size_t index = indexOf(block);
        if (resident) {
            slot(locks_, index) |= bit(pe);
        } else if (index < locks_.size()) {
            locks_[index] &= ~bit(pe);
        }
    }

    /** PEs holding a valid copy of @p block (bit i = PE i). */
    std::uint64_t
    copyMask(Addr block) const
    {
        const std::size_t index = indexOf(block);
        return index < copies_.size() ? copies_[index] : 0;
    }

    /** PEs with a lock entry or ghost on a word of @p block. */
    std::uint64_t
    lockMask(Addr block) const
    {
        const std::size_t index = indexOf(block);
        return index < locks_.size() ? locks_[index] : 0;
    }

    /** Blocks with at least one cached copy (introspection). */
    std::size_t trackedCopyBlocks() const { return nonZero(copies_); }

    /** Blocks with at least one lock entry (introspection). */
    std::size_t trackedLockBlocks() const { return nonZero(locks_); }

  private:
    static std::uint64_t bit(PeId pe) { return 1ull << pe; }

    std::size_t
    indexOf(Addr block) const
    {
        return static_cast<std::size_t>(
            shift_ >= 0 ? block >> shift_ : block / blockWords_);
    }

    /** The mask cell for @p index, growing the array on first touch. */
    static std::uint64_t&
    slot(std::vector<std::uint64_t>& masks, std::size_t index)
    {
        if (index >= masks.size()) {
            std::size_t size = masks.empty() ? 1024 : masks.size();
            while (size <= index)
                size *= 2;
            masks.resize(size, 0);
        }
        return masks[index];
    }

    static std::size_t
    nonZero(const std::vector<std::uint64_t>& masks)
    {
        std::size_t count = 0;
        for (std::uint64_t mask : masks)
            count += mask != 0 ? 1 : 0;
        return count;
    }

    bool exact_ = true;
    std::uint32_t blockWords_ = 1;
    int shift_ = 0; ///< log2(blockWords_) when a power of two, else -1.
    std::vector<std::uint64_t> copies_; ///< Block index -> PE copy mask.
    std::vector<std::uint64_t> locks_;  ///< Block index -> lock mask.
};

} // namespace pim

#endif // PIMCACHE_BUS_RESIDENCY_FILTER_H_
