/**
 * @file
 * Clustered snooping-bus topology (docs/ARCHITECTURE.md).
 *
 * The paper's machine hangs every PE off one snooping bus; past a few
 * dozen PEs that bus saturates (fig3's extension measures where). The
 * clustered topology partitions the PEs into fixed-size clusters, each
 * with its own snooping bus and its own port into the banked shared
 * memory, joined by a contention-free point-to-point interconnect (a
 * crossbar: only the buses serialize, crossings between disjoint
 * cluster pairs overlap freely). The inter-cluster directory
 * (src/bus/intercluster_directory.h) records which clusters can hold
 * copies or locks of each block, so a transaction reserves — and pays
 * hop cycles for — only the cluster buses that must actually be
 * consulted. Transactions whose routes touch disjoint buses overlap
 * in time; that overlap is the whole scaling win.
 *
 * Timing model (circuit-switched reservation): arbitration starts a
 * transaction at max(request time, free time of every reserved bus) —
 * the local cluster bus plus each routed remote cluster bus. All
 * reserved buses stay busy until the transaction completes, matching
 * the paper's assumption 3 (the bus is not freed until the operation
 * completes) per bus. Crossing costs are charged by the Bus into
 * BusStats::interClusterCycles: a round trip (2 x hopCycles) per remote
 * cluster consulted, one flood (hopCycles) for broadcasts. Memory never
 * pays hops — each cluster reaches its bank through its own port.
 *
 * Snoop *semantics* are untouched: the PE-level walk still visits
 * exactly the residency filter's copy/lock holders in ascending PE
 * order, so every topology lock-steps to identical protocol outcomes —
 * which pim_conform proves against the RefMachine with clustering on.
 */

#ifndef PIMCACHE_BUS_CLUSTER_BUS_H_
#define PIMCACHE_BUS_CLUSTER_BUS_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace pim {

/** How the PEs are partitioned into snooping-bus clusters. */
struct ClusterConfig {
    /**
     * PEs per cluster; 0 keeps the paper's single shared bus. PE p
     * belongs to cluster p / clusterSize, so a machine of P PEs has
     * ceil(P / clusterSize) clusters (at most 64: cluster sets are one
     * mask word in the inter-cluster directory).
     */
    std::uint32_t clusterSize = 0;

    /** One-way interconnect crossing cost in bus cycles. */
    std::uint32_t hopCycles = 4;

    /** True when a clustered topology is configured at all. */
    bool clustered() const { return clusterSize > 0; }

    /** Cluster of @p pe (0 on the single-bus topology). */
    std::uint32_t
    clusterOf(PeId pe) const
    {
        return clusterSize > 0 ? pe / clusterSize : 0;
    }

    /** Clusters a machine of @p num_pes PEs partitions into. */
    std::uint32_t
    clustersFor(std::uint32_t num_pes) const
    {
        if (clusterSize == 0 || num_pes == 0)
            return 1;
        return (num_pes + clusterSize - 1) / clusterSize;
    }
};

/**
 * Per-cluster bus and interconnect occupancy. Owned by the Bus; a
 * single-bus topology (clusterSize 0, or every PE in one cluster) is
 * disabled() and the Bus keeps its legacy single freeAt path, byte
 * identical to the pre-cluster simulator.
 */
class ClusterTopology
{
  public:
    explicit ClusterTopology(const ClusterConfig& config = ClusterConfig{})
        : config_(config)
    {
    }

    /** Note that @p pe participates (grows the cluster count). */
    void
    registerPe(PeId pe)
    {
        const std::uint32_t cluster = config_.clusterOf(pe);
        if (cluster >= numClusters_)
            numClusters_ = cluster + 1;
        if (freeAt_.size() < numClusters_)
            freeAt_.resize(numClusters_, 0);
    }

    /** True when transactions arbitrate per cluster (2+ clusters). */
    bool
    enabled() const
    {
        return config_.clusterSize > 0 && numClusters_ > 1;
    }

    const ClusterConfig& config() const { return config_; }
    std::uint32_t numClusters() const { return numClusters_; }
    Cycles hopCycles() const { return config_.hopCycles; }

    std::uint32_t clusterOf(PeId pe) const { return config_.clusterOf(pe); }

    /** Bit mask of every cluster except @p local. */
    std::uint64_t
    allRemote(std::uint32_t local) const
    {
        const std::uint64_t all = numClusters_ >= 64
                                      ? ~0ull
                                      : (1ull << numClusters_) - 1;
        return all & ~(1ull << local);
    }

    /**
     * Earliest start for a transaction from cluster @p local routed to
     * the @p remote cluster set (the crossbar itself never blocks, so
     * only the routed buses constrain the start).
     */
    Cycles
    arbitrate(std::uint32_t local, std::uint64_t remote, Cycles when) const
    {
        Cycles start = when;
        if (local < freeAt_.size() && freeAt_[local] > start)
            start = freeAt_[local];
        std::uint64_t mask = remote;
        while (mask != 0) {
            const std::uint32_t cluster =
                static_cast<std::uint32_t>(__builtin_ctzll(mask));
            mask &= mask - 1;
            if (cluster < freeAt_.size() && freeAt_[cluster] > start)
                start = freeAt_[cluster];
        }
        return start;
    }

    /** Hold every routed bus busy until @p until. */
    void
    occupy(std::uint32_t local, std::uint64_t remote, Cycles until)
    {
        if (local < freeAt_.size())
            freeAt_[local] = until;
        std::uint64_t mask = remote;
        while (mask != 0) {
            const std::uint32_t cluster =
                static_cast<std::uint32_t>(__builtin_ctzll(mask));
            mask &= mask - 1;
            if (cluster < freeAt_.size())
                freeAt_[cluster] = until;
        }
    }

    /** Free time of cluster @p cluster's bus (introspection). */
    Cycles
    clusterFreeAt(std::uint32_t cluster) const
    {
        return cluster < freeAt_.size() ? freeAt_[cluster] : 0;
    }

  private:
    ClusterConfig config_;
    std::uint32_t numClusters_ = 1;
    std::vector<Cycles> freeAt_; ///< Per-cluster bus busy-until.
};

} // namespace pim

#endif // PIMCACHE_BUS_CLUSTER_BUS_H_
