#include "bus/intercluster_directory.h"

namespace pim {

std::uint64_t*
InterClusterDirectory::entry(std::size_t index)
{
    const std::size_t page = index / kPageBlocks;
    if (page >= pages_.size())
        pages_.resize(page + 1);
    if (pages_[page] == nullptr) {
        pages_[page] = std::make_unique<std::uint64_t[]>(kPageBlocks * 2);
        for (std::size_t i = 0; i < kPageBlocks * 2; ++i)
            pages_[page][i] = 0;
    }
    return &pages_[page][(index % kPageBlocks) * 2];
}

const std::uint64_t*
InterClusterDirectory::entryIfPresent(std::size_t index) const
{
    const std::size_t page = index / kPageBlocks;
    if (page >= pages_.size() || pages_[page] == nullptr)
        return nullptr;
    return &pages_[page][(index % kPageBlocks) * 2];
}

void
InterClusterDirectory::noteCopy(PeId pe, Addr block, bool present,
                                const ResidencyFilter& filter)
{
    if (!tracking())
        return;
    const std::uint32_t cluster = config_.clusterOf(pe);
    const std::uint64_t bit = 1ull << cluster;
    if (present) {
        entry(indexOf(block))[0] |= bit;
        return;
    }
    std::uint64_t* words =
        const_cast<std::uint64_t*>(entryIfPresent(indexOf(block)));
    if (words == nullptr || (words[0] & bit) == 0)
        return;
    // Last-copy check: the filter was already updated for this removal,
    // so an empty cluster range means the cluster left the sharer set.
    PeId lo = 0;
    PeId hi = 0;
    clusterRange(cluster, &lo, &hi);
    if (!filter.anyCopyInRange(block, lo, hi))
        words[0] &= ~bit;
}

void
InterClusterDirectory::noteLock(PeId pe, Addr block, bool resident,
                                const ResidencyFilter& filter)
{
    if (!tracking())
        return;
    const std::uint32_t cluster = config_.clusterOf(pe);
    const std::uint64_t bit = 1ull << cluster;
    if (resident) {
        entry(indexOf(block))[1] |= bit;
        return;
    }
    std::uint64_t* words =
        const_cast<std::uint64_t*>(entryIfPresent(indexOf(block)));
    if (words == nullptr || (words[1] & bit) == 0)
        return;
    PeId lo = 0;
    PeId hi = 0;
    clusterRange(cluster, &lo, &hi);
    if (!filter.anyLockInRange(block, lo, hi))
        words[1] &= ~bit;
}

std::size_t
InterClusterDirectory::trackedBlocks() const
{
    std::size_t count = 0;
    for (const auto& page : pages_) {
        if (page == nullptr)
            continue;
        for (std::size_t i = 0; i < kPageBlocks; ++i) {
            if (page[i * 2] != 0 || page[i * 2 + 1] != 0)
                count += 1;
        }
    }
    return count;
}

} // namespace pim
