#include "bus/bus.h"

#include <algorithm>

#include "common/xassert.h"
#include "obs/event_sink.h"

namespace pim {

Bus::Bus(const BusTiming& timing, PagedStore& memory,
         const ClusterConfig& cluster)
    : timing_(timing), memory_(memory), clusters_(cluster)
{
    residency_.setBlockWords(timing_.blockWords);
    directory_.configure(cluster, timing_.blockWords);
    if (timing_.blockWords != 0 &&
        (timing_.blockWords & (timing_.blockWords - 1)) == 0) {
        blockShift_ = 0;
        while ((1u << blockShift_) != timing_.blockWords)
            ++blockShift_;
    }
}

void
Bus::attach(PeId pe, BusSnooper* cache, LockSnooper* locks)
{
    PIM_ASSERT(portOf(pe) == nullptr, "pe", pe, " attached twice");
    // The filtered walk visits PEs in ascending id order; it may only
    // replace the legacy walk (attach order) when the two orders agree,
    // which every real System guarantees by constructing PE 0..N-1.
    if (!ports_.empty() && pe < ports_.back().pe)
        residency_.markInexact();
    ports_.push_back({pe, cache, locks});
    if (portIndexByPe_.size() <= pe)
        portIndexByPe_.resize(pe + 1, -1);
    portIndexByPe_[pe] = static_cast<std::int32_t>(ports_.size() - 1);
    residency_.registerPe(pe);
    clusters_.registerPe(pe);
}

void
Bus::setUnlockListener(UnlockListener* listener)
{
    unlockListener_ = listener;
}

Bus::Route
Bus::routeFor(PeId requester, Addr block_addr, bool snoops_copies,
              bool checks_locks) const
{
    Route route;
    if (!clusters_.enabled())
        return route;
    route.local = clusters_.clusterOf(requester);
    std::uint64_t remote = 0;
    if (snoops_copies)
        remote |= directory_.copyClusters(block_addr);
    if (checks_locks)
        remote |= directory_.lockClusters(block_addr);
    remote &= ~(1ull << route.local);
    route.remote = remote;
    // One round trip covers every remote cluster consulted: the
    // crossbar multicasts the command and the routed buses snoop in
    // parallel, mirroring the paper's fixed snoop cost on one bus.
    // Memory is banked — every cluster bus fronts its own port into
    // the shared-memory modules — so a miss whose copies and locks all
    // sit in the requester's cluster (the common case: each PE's
    // heap/goal areas are private until stolen) pays no hops at all.
    // Only genuinely shared blocks cross, which is what lets clustered
    // topologies keep scaling where the single bus saturates.
    route.hop = remote != 0 ? 2 * clusters_.hopCycles() : 0;
    return route;
}

Cycles
Bus::arbitrate(const Route& route, Cycles when) const
{
    if (!clusters_.enabled())
        return std::max(when, freeAt_);
    return clusters_.arbitrate(route.local, route.remote, when);
}

void
Bus::release(const Route& route, Cycles until)
{
    if (clusters_.enabled())
        clusters_.occupy(route.local, route.remote, until);
    // freeAt_ remains the whole-system high-water mark; on the single
    // bus it is the one shared resource itself.
    if (until > freeAt_)
        freeAt_ = until;
}

bool
Bus::lockCheck(PeId requester, Addr block_addr, Cycles when)
{
    bool lock_hit = false;
    if (filterActive()) {
        // Only directories with an entry in the block can answer LH or
        // need the LCK -> LWAIT transition; all others are no-ops.
        residency_.forEachLockHolder(
            block_addr, requester, [&](PeId pe) {
                const Port* port = portOf(pe);
                if (port->locks->snoopLockCheck(block_addr,
                                                timing_.blockWords, when))
                    lock_hit = true;
            });
        return lock_hit;
    }
    for (const Port& port : ports_) {
        if (port.pe == requester || port.locks == nullptr)
            continue;
        // All remote directories snoop (each may move LCK -> LWAIT), so
        // do not short-circuit.
        if (port.locks->snoopLockCheck(block_addr, timing_.blockWords,
                                       when))
            lock_hit = true;
    }
    return lock_hit;
}

void
Bus::emitTxn(const BusTxnEvent& event)
{
    if (sink_ != nullptr)
        sink_->onBusTransaction(event);
}

FetchResult
Bus::fetch(PeId requester, Addr block_addr, bool invalidate, bool with_lock,
           Addr lock_word, bool dirty_victim, Word* data_out, Cycles when,
           Area area)
{
    PIM_ASSERT(block_addr % timing_.blockWords == 0,
               "fetch of unaligned block address");
    // Route from the pre-transaction residency: remote copy and lock
    // clusters must be consulted; memory (including a dirty victim's
    // writeback) is reached through the local cluster's bank port.
    const Route route = routeFor(requester, block_addr, true, true);
    const Cycles start = arbitrate(route, when);
    FetchResult result;

    stats_.cmdCounts[static_cast<int>(invalidate ? BusCmd::FI : BusCmd::F)]
        += 1;
    if (with_lock) {
        (void)lock_word; // LK rides along; word identity matters to snoop
                         // directories only at block granularity.
        stats_.cmdCounts[static_cast<int>(BusCmd::LK)] += 1;
    }

    if (lockCheck(requester, block_addr, start)) {
        // The reject pays only the lock clusters' hops, but the whole
        // reserved circuit stays held until the abort completes.
        const Cycles hop =
            routeFor(requester, block_addr, false, true).hop;
        const Cycles cost = timing_.lockRejectCycles();
        stats_.account(BusPattern::LockReject, cost, area, requester, hop);
        release(route, start + cost + hop);
        result.lockHit = true;
        result.completeAt = start + cost + hop;
        if (sink_ != nullptr) {
            BusTxnEvent event;
            event.requester = requester;
            event.pattern = BusPattern::LockReject;
            event.area = area;
            event.blockAddr = block_addr;
            event.requestedAt = when;
            event.startedAt = start;
            event.completedAt = result.completeAt;
            event.cmd = invalidate ? BusCmd::FI : BusCmd::F;
            event.hasCmd = true;
            event.withLock = with_lock;
            event.lockHit = true;
            event.interClusterCycles = hop;
            emitTxn(event);
        }
        return result;
    }

    // Injected fault: an unrequested invalidation races ahead of the
    // fetch, silently nuking every remote copy (dirty data is lost).
    if (injector_ != nullptr && injector_->fire(FaultSite::SpuriousInv)) {
        for (const Port& port : ports_) {
            if (port.pe != requester && port.cache != nullptr)
                port.cache->snoopInvalidate(block_addr, start);
        }
    }

    // Snoop the caches; the first holder supplies the data (H response).
    if (filterActive()) {
        // Only actual copy-holders are snooped (filter exactness: a PE
        // outside the mask would reply {absent} and change no state).
        // Bit order equals port order, so the same holder supplies.
        residency_.forEachCopyHolder(
            block_addr, requester, [&](PeId pe) {
                const Port* port = portOf(pe);
                if (!result.supplied) {
                    const BusSnooper::FetchReply reply =
                        port->cache->snoopFetch(block_addr, invalidate,
                                                data_out, start);
                    if (reply.present) {
                        result.supplied = true;
                        result.supplierDirty = reply.dirty;
                    }
                } else if (invalidate) {
                    if (port->cache->snoopInvalidate(block_addr, start))
                        result.supplierDirty = true;
                }
                // For plain F, non-supplier sharers keep their copies.
            });
    } else {
        for (const Port& port : ports_) {
            if (port.pe == requester || port.cache == nullptr)
                continue;
            if (!result.supplied) {
                // Injected fault: this cache's snoop reply is lost — it
                // never sees the command, so its copy neither supplies
                // nor degrades.
                if (injector_ != nullptr &&
                    injector_->fire(FaultSite::DropSnoop)) {
                    continue;
                }
                BusSnooper::FetchReply reply = port.cache->snoopFetch(
                    block_addr, invalidate, data_out, start);
                if (reply.present && injector_ != nullptr &&
                    injector_->fire(FaultSite::DupSnoop)) {
                    // Injected fault: the snoop is delivered twice; the
                    // second reply (now from a downgraded copy) wins, so
                    // a dirty bit can silently vanish.
                    reply = port.cache->snoopFetch(block_addr, invalidate,
                                                   data_out, start);
                }
                if (reply.present) {
                    result.supplied = true;
                    result.supplierDirty = reply.dirty;
                }
            } else if (invalidate) {
                // A non-supplier copy may be the dirty (SM) owner; its
                // dirtiness migrates to the requester rather than
                // vanishing.
                if (port.cache->snoopInvalidate(block_addr, start))
                    result.supplierDirty = true;
            }
            // For plain F, non-supplier sharers keep their copies.
        }
    }

    Cycles cost = 0;
    BusPattern pattern;
    if (result.supplied) {
        pattern = dirty_victim ? BusPattern::C2CVictim : BusPattern::C2C;
        cost = timing_.cacheToCacheCycles(dirty_victim);
    } else {
        memory_.readSpan(block_addr, timing_.blockWords, data_out);
        if (purgedDirtyMarked(block_addr))
            stats_.staleFetches += 1;
        stats_.memoryBusyCycles += timing_.memAccessCycles;
        stats_.memoryReads += 1;
        pattern = dirty_victim ? BusPattern::MemFetchVictim
                               : BusPattern::MemFetch;
        cost = timing_.swapInCycles(dirty_victim);
    }
    stats_.account(pattern, cost, area, requester, route.hop);
    // Injected fault: one bit of the transferred block flips on the bus.
    if (injector_ != nullptr && injector_->fire(FaultSite::CorruptWord))
        injector_->flipBit(data_out, timing_.blockWords);
    release(route, start + cost + route.hop);
    result.completeAt = start + cost + route.hop;
    if (sink_ != nullptr) {
        BusTxnEvent event;
        event.requester = requester;
        event.pattern = pattern;
        event.area = area;
        event.blockAddr = block_addr;
        event.requestedAt = when;
        event.startedAt = start;
        event.completedAt = result.completeAt;
        event.cmd = invalidate ? BusCmd::FI : BusCmd::F;
        event.hasCmd = true;
        event.withLock = with_lock;
        event.supplied = result.supplied;
        event.supplierDirty = result.supplierDirty;
        event.dataBeats =
            timing_.blockTransferCycles() +
            (dirty_victim ? timing_.blockTransferCycles() : 0);
        event.interClusterCycles = route.hop;
        emitTxn(event);
    }
    return result;
}

InvalidateResult
Bus::invalidate(PeId requester, Addr block_addr, bool with_lock,
                Addr lock_word, Cycles when, Area area)
{
    PIM_ASSERT(block_addr % timing_.blockWords == 0,
               "invalidate of unaligned block address");
    const Route route =
        routeFor(requester, block_addr, true, with_lock);
    const Cycles start = arbitrate(route, when);
    InvalidateResult result;

    stats_.cmdCounts[static_cast<int>(BusCmd::I)] += 1;
    if (with_lock) {
        (void)lock_word;
        stats_.cmdCounts[static_cast<int>(BusCmd::LK)] += 1;
        // Only lock-carrying invalidations are answered by LH (the plain
        // I command is not in the paper's LH response list).
        if (lockCheck(requester, block_addr, start)) {
            const Cycles hop =
                routeFor(requester, block_addr, false, true).hop;
            const Cycles cost = timing_.lockRejectCycles();
            stats_.account(BusPattern::LockReject, cost, area, requester,
                           hop);
            release(route, start + cost + hop);
            result.lockHit = true;
            result.completeAt = start + cost + hop;
            if (sink_ != nullptr) {
                BusTxnEvent event;
                event.requester = requester;
                event.pattern = BusPattern::LockReject;
                event.area = area;
                event.blockAddr = block_addr;
                event.requestedAt = when;
                event.startedAt = start;
                event.completedAt = result.completeAt;
                event.cmd = BusCmd::I;
                event.hasCmd = true;
                event.withLock = true;
                event.lockHit = true;
                event.interClusterCycles = hop;
                emitTxn(event);
            }
            return result;
        }
    }

    if (filterActive()) {
        residency_.forEachCopyHolder(
            block_addr, requester, [&](PeId pe) {
                const Port* port = portOf(pe);
                if (port->cache->snoopInvalidate(block_addr, start))
                    result.droppedDirty = true;
            });
    } else {
        for (const Port& port : ports_) {
            if (port.pe == requester || port.cache == nullptr)
                continue;
            if (port.cache->snoopInvalidate(block_addr, start))
                result.droppedDirty = true;
        }
    }
    const Cycles cost = timing_.invalidateCycles();
    stats_.account(BusPattern::Invalidate, cost, area, requester,
                   route.hop);
    release(route, start + cost + route.hop);
    result.completeAt = start + cost + route.hop;
    if (sink_ != nullptr) {
        BusTxnEvent event;
        event.requester = requester;
        event.pattern = BusPattern::Invalidate;
        event.area = area;
        event.blockAddr = block_addr;
        event.requestedAt = when;
        event.startedAt = start;
        event.completedAt = result.completeAt;
        event.cmd = BusCmd::I;
        event.hasCmd = true;
        event.withLock = with_lock;
        event.supplierDirty = result.droppedDirty;
        event.interClusterCycles = route.hop;
        emitTxn(event);
    }
    return result;
}

void
Bus::setPurgeMark(Addr block_addr, bool marked)
{
    const std::size_t index = blockIndexOf(block_addr);
    const std::size_t word = index >> 6;
    if (word >= purgedDirty_.size()) {
        if (!marked)
            return;
        std::size_t size = purgedDirty_.empty() ? 64 : purgedDirty_.size();
        while (size <= word)
            size *= 2;
        purgedDirty_.resize(size, 0);
    }
    if (marked)
        purgedDirty_[word] |= 1ull << (index & 63);
    else
        purgedDirty_[word] &= ~(1ull << (index & 63));
}

void
Bus::writeBackData(Addr block_addr, const Word* data)
{
    memory_.writeSpan(block_addr, timing_.blockWords, data);
    setPurgeMark(block_addr, false);
    stats_.memoryBusyCycles += timing_.memAccessCycles;
    stats_.memoryWrites += 1;
}

void
Bus::markPurgedDirty(Addr block_addr)
{
    setPurgeMark(block_addr, true);
}

void
Bus::noteFreshAllocation(Addr block_addr)
{
    setPurgeMark(block_addr, false);
}

void
Bus::clearPurgedMarks()
{
    purgedDirty_.assign(purgedDirty_.size(), 0);
}

Cycles
Bus::swapOutOnly(PeId requester, Addr victim_addr, const Word* data,
                 Cycles when, Area area)
{
    // Pure memory crossing: no cluster is snooped.
    const Route route = routeFor(requester, victim_addr, false, false);
    const Cycles start = arbitrate(route, when);
    writeBackData(victim_addr, data);
    const Cycles cost = timing_.swapOutOnlyCycles();
    stats_.account(BusPattern::SwapOutOnly, cost, area, requester,
                   route.hop);
    release(route, start + cost + route.hop);
    const Cycles complete = start + cost + route.hop;
    if (sink_ != nullptr) {
        BusTxnEvent event;
        event.requester = requester;
        event.pattern = BusPattern::SwapOutOnly;
        event.area = area;
        event.blockAddr = victim_addr;
        event.requestedAt = when;
        event.startedAt = start;
        event.completedAt = complete;
        event.dataBeats = timing_.blockTransferCycles();
        event.interClusterCycles = route.hop;
        emitTxn(event);
    }
    return complete;
}

Cycles
Bus::unlockBroadcast(PeId requester, Addr word_addr, Cycles when, Area area)
{
    // UL floods every cluster: parked PEs anywhere may be waiting on the
    // word. One-way hop cost — no replies are collected.
    Route route;
    if (clusters_.enabled()) {
        route.local = clusters_.clusterOf(requester);
        route.remote = clusters_.allRemote(route.local);
        route.hop = clusters_.hopCycles();
    }
    const Cycles start = arbitrate(route, when);
    stats_.cmdCounts[static_cast<int>(BusCmd::UL)] += 1;
    const Cycles cost = timing_.unlockCycles();
    stats_.account(BusPattern::Unlock, cost, area, requester, route.hop);
    release(route, start + cost + route.hop);
    const Cycles complete = start + cost + route.hop;
    if (sink_ != nullptr) {
        BusTxnEvent event;
        event.requester = requester;
        event.pattern = BusPattern::Unlock;
        event.area = area;
        event.blockAddr = word_addr;
        event.requestedAt = when;
        event.startedAt = start;
        event.completedAt = complete;
        event.cmd = BusCmd::UL;
        event.hasCmd = true;
        event.interClusterCycles = route.hop;
        emitTxn(event);
    }
    if (unlockListener_ != nullptr)
        unlockListener_->onUnlockBroadcast(word_addr, complete);
    return complete;
}

Cycles
Bus::writeWordThrough(PeId requester, Addr word_addr, Word value,
                      Cycles when, Area area)
{
    const Addr block_addr = word_addr - word_addr % timing_.blockWords;
    // Copy clusters are invalidated and the word crosses to memory.
    const Route route = routeFor(requester, block_addr, true, false);
    const Cycles start = arbitrate(route, when);
    memory_.write(word_addr, value);
    setPurgeMark(block_addr, false);
    stats_.memoryBusyCycles += timing_.memAccessCycles;
    stats_.memoryWrites += 1;
    if (filterActive()) {
        residency_.forEachCopyHolder(
            block_addr, requester, [&](PeId pe) {
                portOf(pe)->cache->snoopInvalidate(block_addr, start);
            });
    } else {
        for (const Port& port : ports_) {
            if (port.pe == requester || port.cache == nullptr)
                continue;
            port.cache->snoopInvalidate(block_addr, start);
        }
    }
    const Cycles cost = timing_.wordWriteCycles();
    stats_.account(BusPattern::WordWrite, cost, area, requester, route.hop);
    release(route, start + cost + route.hop);
    const Cycles complete = start + cost + route.hop;
    if (sink_ != nullptr) {
        BusTxnEvent event;
        event.requester = requester;
        event.pattern = BusPattern::WordWrite;
        event.area = area;
        event.blockAddr = block_addr;
        event.requestedAt = when;
        event.startedAt = start;
        event.completedAt = complete;
        event.dataBeats = 1;
        event.interClusterCycles = route.hop;
        emitTxn(event);
    }
    return complete;
}

UpdateResult
Bus::updateWord(PeId requester, Addr word_addr, Word value, Cycles when,
                Area area)
{
    const Addr block_addr = word_addr - word_addr % timing_.blockWords;
    const Route route = routeFor(requester, block_addr, true, false);
    const Cycles start = arbitrate(route, when);
    UpdateResult result;
    if (filterActive()) {
        residency_.forEachCopyHolder(
            block_addr, requester, [&](PeId pe) {
                if (portOf(pe)->cache->snoopUpdate(word_addr, value, start))
                    result.sharerPresent = true;
            });
    } else {
        for (const Port& port : ports_) {
            if (port.pe == requester || port.cache == nullptr)
                continue;
            if (port.cache->snoopUpdate(word_addr, value, start))
                result.sharerPresent = true;
        }
    }
    const Cycles cost = timing_.wordUpdateCycles();
    stats_.account(BusPattern::WordUpdate, cost, area, requester, route.hop);
    release(route, start + cost + route.hop);
    result.completeAt = start + cost + route.hop;
    if (sink_ != nullptr) {
        BusTxnEvent event;
        event.requester = requester;
        event.pattern = BusPattern::WordUpdate;
        event.area = area;
        event.blockAddr = block_addr;
        event.requestedAt = when;
        event.startedAt = start;
        event.completedAt = result.completeAt;
        event.dataBeats = 1;
        event.interClusterCycles = route.hop;
        emitTxn(event);
    }
    return result;
}

void
Bus::readMemoryBlock(Addr block_addr, Word* data_out) const
{
    memory_.readSpan(block_addr, timing_.blockWords, data_out);
}

void
Bus::writeMemoryBlock(Addr block_addr, const Word* data)
{
    memory_.writeSpan(block_addr, timing_.blockWords, data);
}

void
Bus::snapshotPurgeMarks(Addr lo, Addr hi,
                        std::vector<std::uint64_t>& out) const
{
    // The bitmap is block-index-ordered, so the range walk is already in
    // address order — no per-call vector rebuild and sort, which the
    // BFS explorer used to pay on every canonicalization.
    const std::size_t count_slot = out.size();
    out.push_back(0);
    std::uint64_t count = 0;
    const std::uint32_t block = timing_.blockWords;
    std::size_t index = blockIndexOf(lo + block - 1); // First base >= lo.
    for (; index * block < hi; ++index) {
        const std::size_t word = index >> 6;
        if (word >= purgedDirty_.size())
            break;
        if (purgedDirty_[word] == 0) {
            // Skip the rest of an empty 64-block run in one step.
            index = (word + 1) * 64 - 1;
            continue;
        }
        if ((purgedDirty_[word] & (1ull << (index & 63))) != 0) {
            out.push_back(static_cast<std::uint64_t>(index) * block);
            ++count;
        }
    }
    out[count_slot] = count;
}

} // namespace pim
