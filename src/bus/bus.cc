#include "bus/bus.h"

#include <algorithm>

#include "common/xassert.h"
#include "obs/event_sink.h"

namespace pim {

Bus::Bus(const BusTiming& timing, PagedStore& memory)
    : timing_(timing), memory_(memory)
{
}

void
Bus::attach(PeId pe, BusSnooper* cache, LockSnooper* locks)
{
    ports_.push_back({pe, cache, locks});
}

void
Bus::setUnlockListener(UnlockListener* listener)
{
    unlockListener_ = listener;
}

bool
Bus::lockCheck(PeId requester, Addr block_addr, Cycles when)
{
    bool lock_hit = false;
    for (const Port& port : ports_) {
        if (port.pe == requester || port.locks == nullptr)
            continue;
        // All remote directories snoop (each may move LCK -> LWAIT), so
        // do not short-circuit.
        if (port.locks->snoopLockCheck(block_addr, timing_.blockWords,
                                       when))
            lock_hit = true;
    }
    return lock_hit;
}

void
Bus::emitTxn(const BusTxnEvent& event)
{
    if (sink_ != nullptr)
        sink_->onBusTransaction(event);
}

FetchResult
Bus::fetch(PeId requester, Addr block_addr, bool invalidate, bool with_lock,
           Addr lock_word, bool dirty_victim, Word* data_out, Cycles when,
           Area area)
{
    PIM_ASSERT(block_addr % timing_.blockWords == 0,
               "fetch of unaligned block address");
    const Cycles start = std::max(when, freeAt_);
    FetchResult result;

    stats_.cmdCounts[static_cast<int>(invalidate ? BusCmd::FI : BusCmd::F)]
        += 1;
    if (with_lock) {
        (void)lock_word; // LK rides along; word identity matters to snoop
                         // directories only at block granularity.
        stats_.cmdCounts[static_cast<int>(BusCmd::LK)] += 1;
    }

    if (lockCheck(requester, block_addr, start)) {
        const Cycles cost = timing_.lockRejectCycles();
        stats_.account(BusPattern::LockReject, cost, area, requester);
        freeAt_ = start + cost;
        result.lockHit = true;
        result.completeAt = freeAt_;
        if (sink_ != nullptr) {
            BusTxnEvent event;
            event.requester = requester;
            event.pattern = BusPattern::LockReject;
            event.area = area;
            event.blockAddr = block_addr;
            event.requestedAt = when;
            event.startedAt = start;
            event.completedAt = freeAt_;
            event.cmd = invalidate ? BusCmd::FI : BusCmd::F;
            event.hasCmd = true;
            event.withLock = with_lock;
            event.lockHit = true;
            emitTxn(event);
        }
        return result;
    }

    // Injected fault: an unrequested invalidation races ahead of the
    // fetch, silently nuking every remote copy (dirty data is lost).
    if (injector_ != nullptr && injector_->fire(FaultSite::SpuriousInv)) {
        for (const Port& port : ports_) {
            if (port.pe != requester && port.cache != nullptr)
                port.cache->snoopInvalidate(block_addr, start);
        }
    }

    // Snoop the caches; the first holder supplies the data (H response).
    for (const Port& port : ports_) {
        if (port.pe == requester || port.cache == nullptr)
            continue;
        if (!result.supplied) {
            // Injected fault: this cache's snoop reply is lost — it never
            // sees the command, so its copy neither supplies nor degrades.
            if (injector_ != nullptr &&
                injector_->fire(FaultSite::DropSnoop)) {
                continue;
            }
            BusSnooper::FetchReply reply =
                port.cache->snoopFetch(block_addr, invalidate, data_out,
                                       start);
            if (reply.present && injector_ != nullptr &&
                injector_->fire(FaultSite::DupSnoop)) {
                // Injected fault: the snoop is delivered twice; the second
                // reply (now from a downgraded copy) wins, so a dirty bit
                // can silently vanish.
                reply = port.cache->snoopFetch(block_addr, invalidate,
                                               data_out, start);
            }
            if (reply.present) {
                result.supplied = true;
                result.supplierDirty = reply.dirty;
            }
        } else if (invalidate) {
            // A non-supplier copy may be the dirty (SM) owner; its
            // dirtiness migrates to the requester rather than vanishing.
            if (port.cache->snoopInvalidate(block_addr, start))
                result.supplierDirty = true;
        }
        // For plain F, non-supplier sharers keep their copies.
    }

    Cycles cost = 0;
    BusPattern pattern;
    if (result.supplied) {
        pattern = dirty_victim ? BusPattern::C2CVictim : BusPattern::C2C;
        cost = timing_.cacheToCacheCycles(dirty_victim);
    } else {
        for (std::uint32_t w = 0; w < timing_.blockWords; ++w)
            data_out[w] = memory_.read(block_addr + w);
        if (purgedDirty_.count(block_addr) != 0)
            stats_.staleFetches += 1;
        stats_.memoryBusyCycles += timing_.memAccessCycles;
        stats_.memoryReads += 1;
        pattern = dirty_victim ? BusPattern::MemFetchVictim
                               : BusPattern::MemFetch;
        cost = timing_.swapInCycles(dirty_victim);
    }
    stats_.account(pattern, cost, area, requester);
    // Injected fault: one bit of the transferred block flips on the bus.
    if (injector_ != nullptr && injector_->fire(FaultSite::CorruptWord))
        injector_->flipBit(data_out, timing_.blockWords);
    freeAt_ = start + cost;
    result.completeAt = freeAt_;
    if (sink_ != nullptr) {
        BusTxnEvent event;
        event.requester = requester;
        event.pattern = pattern;
        event.area = area;
        event.blockAddr = block_addr;
        event.requestedAt = when;
        event.startedAt = start;
        event.completedAt = freeAt_;
        event.cmd = invalidate ? BusCmd::FI : BusCmd::F;
        event.hasCmd = true;
        event.withLock = with_lock;
        event.supplied = result.supplied;
        event.supplierDirty = result.supplierDirty;
        event.dataBeats =
            timing_.blockTransferCycles() +
            (dirty_victim ? timing_.blockTransferCycles() : 0);
        emitTxn(event);
    }
    return result;
}

InvalidateResult
Bus::invalidate(PeId requester, Addr block_addr, bool with_lock,
                Addr lock_word, Cycles when, Area area)
{
    PIM_ASSERT(block_addr % timing_.blockWords == 0,
               "invalidate of unaligned block address");
    const Cycles start = std::max(when, freeAt_);
    InvalidateResult result;

    stats_.cmdCounts[static_cast<int>(BusCmd::I)] += 1;
    if (with_lock) {
        (void)lock_word;
        stats_.cmdCounts[static_cast<int>(BusCmd::LK)] += 1;
        // Only lock-carrying invalidations are answered by LH (the plain
        // I command is not in the paper's LH response list).
        if (lockCheck(requester, block_addr, start)) {
            const Cycles cost = timing_.lockRejectCycles();
            stats_.account(BusPattern::LockReject, cost, area, requester);
            freeAt_ = start + cost;
            result.lockHit = true;
            result.completeAt = freeAt_;
            if (sink_ != nullptr) {
                BusTxnEvent event;
                event.requester = requester;
                event.pattern = BusPattern::LockReject;
                event.area = area;
                event.blockAddr = block_addr;
                event.requestedAt = when;
                event.startedAt = start;
                event.completedAt = freeAt_;
                event.cmd = BusCmd::I;
                event.hasCmd = true;
                event.withLock = true;
                event.lockHit = true;
                emitTxn(event);
            }
            return result;
        }
    }

    for (const Port& port : ports_) {
        if (port.pe == requester || port.cache == nullptr)
            continue;
        if (port.cache->snoopInvalidate(block_addr, start))
            result.droppedDirty = true;
    }
    const Cycles cost = timing_.invalidateCycles();
    stats_.account(BusPattern::Invalidate, cost, area, requester);
    freeAt_ = start + cost;
    result.completeAt = freeAt_;
    if (sink_ != nullptr) {
        BusTxnEvent event;
        event.requester = requester;
        event.pattern = BusPattern::Invalidate;
        event.area = area;
        event.blockAddr = block_addr;
        event.requestedAt = when;
        event.startedAt = start;
        event.completedAt = freeAt_;
        event.cmd = BusCmd::I;
        event.hasCmd = true;
        event.withLock = with_lock;
        event.supplierDirty = result.droppedDirty;
        emitTxn(event);
    }
    return result;
}

void
Bus::writeBackData(Addr block_addr, const Word* data)
{
    for (std::uint32_t w = 0; w < timing_.blockWords; ++w)
        memory_.write(block_addr + w, data[w]);
    purgedDirty_.erase(block_addr);
    stats_.memoryBusyCycles += timing_.memAccessCycles;
    stats_.memoryWrites += 1;
}

void
Bus::markPurgedDirty(Addr block_addr)
{
    purgedDirty_.insert(block_addr);
}

void
Bus::noteFreshAllocation(Addr block_addr)
{
    purgedDirty_.erase(block_addr);
}

void
Bus::clearPurgedMarks()
{
    purgedDirty_.clear();
}

Cycles
Bus::swapOutOnly(PeId requester, Addr victim_addr, const Word* data,
                 Cycles when, Area area)
{
    const Cycles start = std::max(when, freeAt_);
    writeBackData(victim_addr, data);
    const Cycles cost = timing_.swapOutOnlyCycles();
    stats_.account(BusPattern::SwapOutOnly, cost, area, requester);
    freeAt_ = start + cost;
    if (sink_ != nullptr) {
        BusTxnEvent event;
        event.requester = requester;
        event.pattern = BusPattern::SwapOutOnly;
        event.area = area;
        event.blockAddr = victim_addr;
        event.requestedAt = when;
        event.startedAt = start;
        event.completedAt = freeAt_;
        event.dataBeats = timing_.blockTransferCycles();
        emitTxn(event);
    }
    return freeAt_;
}

Cycles
Bus::unlockBroadcast(PeId requester, Addr word_addr, Cycles when, Area area)
{
    const Cycles start = std::max(when, freeAt_);
    stats_.cmdCounts[static_cast<int>(BusCmd::UL)] += 1;
    const Cycles cost = timing_.unlockCycles();
    stats_.account(BusPattern::Unlock, cost, area, requester);
    freeAt_ = start + cost;
    if (sink_ != nullptr) {
        BusTxnEvent event;
        event.requester = requester;
        event.pattern = BusPattern::Unlock;
        event.area = area;
        event.blockAddr = word_addr;
        event.requestedAt = when;
        event.startedAt = start;
        event.completedAt = freeAt_;
        event.cmd = BusCmd::UL;
        event.hasCmd = true;
        emitTxn(event);
    }
    if (unlockListener_ != nullptr)
        unlockListener_->onUnlockBroadcast(word_addr, freeAt_);
    return freeAt_;
}

Cycles
Bus::writeWordThrough(PeId requester, Addr word_addr, Word value,
                      Cycles when, Area area)
{
    const Cycles start = std::max(when, freeAt_);
    const Addr block_addr = word_addr - word_addr % timing_.blockWords;
    memory_.write(word_addr, value);
    purgedDirty_.erase(block_addr);
    stats_.memoryBusyCycles += timing_.memAccessCycles;
    stats_.memoryWrites += 1;
    for (const Port& port : ports_) {
        if (port.pe == requester || port.cache == nullptr)
            continue;
        port.cache->snoopInvalidate(block_addr, start);
    }
    const Cycles cost = timing_.wordWriteCycles();
    stats_.account(BusPattern::WordWrite, cost, area, requester);
    freeAt_ = start + cost;
    if (sink_ != nullptr) {
        BusTxnEvent event;
        event.requester = requester;
        event.pattern = BusPattern::WordWrite;
        event.area = area;
        event.blockAddr = block_addr;
        event.requestedAt = when;
        event.startedAt = start;
        event.completedAt = freeAt_;
        event.dataBeats = 1;
        emitTxn(event);
    }
    return freeAt_;
}

void
Bus::readMemoryBlock(Addr block_addr, Word* data_out) const
{
    for (std::uint32_t w = 0; w < timing_.blockWords; ++w)
        data_out[w] = memory_.read(block_addr + w);
}

void
Bus::writeMemoryBlock(Addr block_addr, const Word* data)
{
    for (std::uint32_t w = 0; w < timing_.blockWords; ++w)
        memory_.write(block_addr + w, data[w]);
}

void
Bus::snapshotPurgeMarks(Addr lo, Addr hi,
                        std::vector<std::uint64_t>& out) const
{
    std::vector<Addr> marks;
    for (Addr mark : purgedDirty_) {
        if (mark >= lo && mark < hi)
            marks.push_back(mark);
    }
    std::sort(marks.begin(), marks.end());
    out.push_back(marks.size());
    for (Addr mark : marks)
        out.push_back(mark);
}

} // namespace pim
