#include "verify/coherence_auditor.h"

#include <set>
#include <sstream>

#include "cache/state.h"
#include "common/sim_fault.h"
#include "verify/invariants.h"

namespace pim {

CoherenceAuditor::CoherenceAuditor(System& system)
    : system_(system),
      blockWords_(system.config().cache.geometry.blockWords)
{
}

Addr
CoherenceAuditor::blockBaseOf(Addr addr) const
{
    return addr - addr % blockWords_;
}

std::string
CoherenceAuditor::describeBlock(Addr block_base) const
{
    return describeBlockState(system_, block_base);
}

void
CoherenceAuditor::beforeAccess(PeId pe, MemOp op, Addr addr, Area area)
{
    (void)area;
    // Predict whether a DW/DWD will take the allocate-without-fetch path
    // (boundary word, block absent): that path zero-fills the block, so
    // the shadow must forget stale values for its other words.
    pendingFreshAlloc_ = false;
    if ((op == MemOp::DW || op == MemOp::DWD) &&
        !system_.config().cache.writeThrough) {
        const Addr base = blockBaseOf(addr);
        const bool boundary = op == MemOp::DWD
                                  ? addr == base + blockWords_ - 1
                                  : addr == base;
        pendingFreshAlloc_ = boundary && !system_.cache(pe).present(addr);
    }
}

void
CoherenceAuditor::checkReadValue(PeId pe, MemOp op, Addr addr, Word data)
{
    const auto it = shadow_.find(addr);
    if (it == shadow_.end())
        return;
    if (data != it->second) {
        throw PIM_SIM_FAULT(
            SimFaultKind::Corruption, "pe", pe, " ", memOpName(op),
            " at address ", addr, " read ", data,
            " but the last value written there was ", it->second, "; ",
            describeBlock(blockBaseOf(addr)));
    }
}

void
CoherenceAuditor::afterAccess(PeId pe, MemOp op, Addr addr, Area area,
                              Word data, Word wdata, bool lock_wait)
{
    (void)area;
    if (lock_wait)
        return;

    const Addr base = blockBaseOf(addr);
    if (memOpWrites(op)) {
        if (pendingFreshAlloc_) {
            for (std::uint32_t w = 0; w < blockWords_; ++w)
                shadow_[base + w] = 0;
        }
        shadow_[addr] = wdata;
    } else if (memOpReads(op)) {
        checkReadValue(pe, op, addr, data);
        if (op == MemOp::ER || op == MemOp::RP) {
            // The purge contract deliberately leaves shared memory stale
            // for single-use data; stop tracking the block rather than
            // flagging reuse-after-purge (Bus::staleFetches counts that).
            for (std::uint32_t w = 0; w < blockWords_; ++w)
                shadow_.erase(base + w);
        }
    }

    std::ostringstream context;
    context << "after pe" << pe << " " << memOpName(op) << " at address "
            << addr;
    auditBlock(base, context.str());
}

void
CoherenceAuditor::auditBlock(Addr block_base, const std::string& context)
{
    checksRun_ += 1;
    // The invariant logic itself is shared with the offline conformance
    // engine (src/model) — see verify/invariants.h.
    checkBlockInvariants(system_, block_base, context);
}

void
CoherenceAuditor::auditFull()
{
    // Per-block invariants for every block the shadow knows about (every
    // written word; read-only blocks were checked per-access).
    std::set<Addr> bases;
    for (const auto& entry : shadow_)
        bases.insert(blockBaseOf(entry.first));
    for (Addr base : bases)
        auditBlock(base, "full audit");

    // Shadow sweep: the coherent value of every tracked word must equal
    // the last value written.
    for (const auto& entry : shadow_) {
        const Addr addr = entry.first;
        const Addr base = blockBaseOf(addr);
        Word value = 0;
        bool found = false;
        for (PeId pe = 0; pe < system_.numPes(); ++pe) {
            if (system_.cache(pe).stateOf(base) != CacheState::INV) {
                value = system_.cache(pe).loadValue(addr);
                found = true;
                break;
            }
        }
        if (!found)
            value = system_.memory().read(addr);
        if (value != entry.second) {
            throw PIM_SIM_FAULT(
                SimFaultKind::Corruption, "full audit: word ", addr,
                " holds ", value, " but the last value written there was ",
                entry.second, "; ", describeBlock(base));
        }
    }
}

} // namespace pim
