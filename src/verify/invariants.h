/**
 * @file
 * The paper's protocol invariants as a shared, reusable library.
 *
 * Both runtime checkers (the CoherenceAuditor attached to live Systems)
 * and offline checkers (the src/model conformance engine: exhaustive
 * explorer and differential trace fuzzer) enforce the same conditions,
 * so a new invariant added here strengthens every tier of testing at
 * once (docs/TESTING.md).
 *
 * Per-block state invariants (paper Section 3, states EM/EC/SM/S/INV):
 *  1. At most one cache holds the block dirty (EM or SM).
 *  2. If any cache holds it exclusive (EM or EC), no other copy exists.
 *  3. All valid copies agree word-for-word (SM supplies S copies without
 *     updating memory, so copies must agree even while memory is stale).
 *  4. With no dirty copy anywhere, valid copies match shared memory —
 *     unless the block is purge-marked (ER/RP dropped the last dirty
 *     copy by software contract; Bus::purgedDirtyMarked).
 *  5. While a PE holds a lock on any word of the block, no *other*
 *     cache holds a valid copy: lock acquisition gains exclusiveness
 *     (I/FI + LK) and the LH response inhibits remote fetches until UL.
 *
 * Per-transaction bus-accounting invariant: every BusStats delta must
 * decompose into whole transactions, each charged exactly its paper
 * Section 4.2 pattern cost (13/7/10/5/2 cycles with the default
 * timing) — checked by comparing per-pattern cycle and transaction
 * deltas against BusTiming.
 */

#ifndef PIMCACHE_VERIFY_INVARIANTS_H_
#define PIMCACHE_VERIFY_INVARIANTS_H_

#include <string>

#include "bus/bus.h"
#include "common/types.h"

namespace pim {

class System;

/**
 * "block N [pe0=EM pe1=INV ...] memory: ..." — the per-cache states and
 * memory words of the block, for violation messages.
 */
std::string describeBlockState(const System& system, Addr block_base);

/**
 * Check invariants 1-5 for the block containing @p block_base.
 * @param context Prefix for the violation message (who/what/when).
 * @throws SimFault (Protocol) on the first violation.
 */
void checkBlockInvariants(const System& system, Addr block_base,
                          const std::string& context);

/**
 * Check the bus-accounting invariant over the delta from @p before to
 * @p after: for every BusPattern, the cycle delta must equal the
 * transaction delta times the pattern's BusTiming cost, and the total
 * must equal the per-pattern sum.
 * @throws SimFault (Protocol) on a mismatch.
 */
void checkBusAccounting(const BusStats& before, const BusStats& after,
                        const BusTiming& timing, const std::string& context);

/** The fixed BusTiming cost of one transaction of @p pattern. */
Cycles busPatternCost(BusPattern pattern, const BusTiming& timing);

} // namespace pim

#endif // PIMCACHE_VERIFY_INVARIANTS_H_
