/**
 * @file
 * Runtime checker of the paper's coherence invariants (Section 3).
 *
 * Attached to a System as an AccessObserver, the auditor re-checks the
 * protocol's correctness conditions on the touched block after every
 * memory operation, and maintains a shadow copy of every written word so
 * that data corruption (from injected faults or real protocol bugs) is
 * caught at the first read that returns a wrong value.
 *
 * The invariants themselves live in verify/invariants.h (shared with the
 * offline conformance engine in src/model): at most one dirty copy, no
 * exclusive copy coexisting with others, all copies agree word-for-word,
 * clean copies match memory unless purge-marked, and a held lock implies
 * no remote copy of the locked block.
 *
 * The first violation throws a SimFault (Protocol for state/copy
 * violations, Corruption for shadow-value mismatches) with full context:
 * PE, operation, address, per-cache block states and the differing words.
 */

#ifndef PIMCACHE_VERIFY_COHERENCE_AUDITOR_H_
#define PIMCACHE_VERIFY_COHERENCE_AUDITOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/types.h"
#include "sim/system.h"

namespace pim {

/** Per-access coherence invariant checker + shadow memory. */
class CoherenceAuditor : public AccessObserver
{
  public:
    /** Observes @p system; call system.addAccessObserver(&auditor). */
    explicit CoherenceAuditor(System& system);

    /**
     * Check every valid block in every cache plus the whole shadow
     * memory (end-of-run sweep; per-access checks only cover the block
     * being touched). Throws SimFault on the first violation.
     */
    void auditFull();

    /** Per-access invariant checks executed so far. */
    std::uint64_t checksRun() const { return checksRun_; }

    /** Words currently tracked by the shadow memory. */
    std::uint64_t shadowWords() const
    {
        return static_cast<std::uint64_t>(shadow_.size());
    }

    // AccessObserver ------------------------------------------------------
    void beforeAccess(PeId pe, MemOp op, Addr addr, Area area) override;
    void afterAccess(PeId pe, MemOp op, Addr addr, Area area, Word data,
                     Word wdata, bool lock_wait) override;

  private:
    Addr blockBaseOf(Addr addr) const;

    /** Shared block invariants for the block containing @p addr. */
    void auditBlock(Addr block_base, const std::string& context);

    /** Shadow check for one read. */
    void checkReadValue(PeId pe, MemOp op, Addr addr, Word data);

    /** "pe0=EM pe1=INV ..." for the block, for violation messages. */
    std::string describeBlock(Addr block_base) const;

    System& system_;
    std::uint32_t blockWords_;
    /** Last value written per word (only words some PE wrote). */
    std::unordered_map<Addr, Word> shadow_;
    /** beforeAccess: would this DW/DWD zero-fill a fresh block? */
    bool pendingFreshAlloc_ = false;
    std::uint64_t checksRun_ = 0;
};

} // namespace pim

#endif // PIMCACHE_VERIFY_COHERENCE_AUDITOR_H_
