#include "verify/lock_watchdog.h"

#include <sstream>

#include "cache/state.h"
#include "common/sim_fault.h"

namespace pim {

LockWatchdog::LockWatchdog(System& system, const WatchdogConfig& config)
    : system_(system),
      config_(config),
      parkedAge_(system.numPes(), 0),
      retryBlock_(system.numPes(), kNoAddr),
      retryCount_(system.numPes(), 0)
{
}

std::string
LockWatchdog::describeLocks() const
{
    std::ostringstream out;
    for (PeId pe = 0; pe < system_.numPes(); ++pe) {
        out << "\n  pe" << pe;
        if (system_.parked(pe))
            out << " parked";
        out << " @" << system_.clock(pe) << " locks:";
        const auto entries = system_.cache(pe).lockDirectory().entries();
        if (entries.empty())
            out << " none";
        for (const auto& entry : entries) {
            out << " " << entry.first << "("
                << lockStateName(entry.second) << ")";
        }
        for (Addr ghost : system_.cache(pe).lockDirectory().ghostWords())
            out << " " << ghost << "(ghost)";
    }
    return out.str();
}

void
LockWatchdog::reportStall()
{
    throw PIM_SIM_FAULT(
        SimFaultKind::Deadlock,
        "no PE can make progress: every PE with work left is parked on a "
        "lock and no UL is in flight to wake it; lock state:",
        describeLocks());
}

void
LockWatchdog::afterAccess(PeId pe, MemOp op, Addr addr, Area area,
                          Word data, Word wdata, bool lock_wait)
{
    (void)area; (void)data; (void)wdata;
    const std::uint32_t block_words =
        system_.config().cache.geometry.blockWords;
    const Addr base = addr - addr % block_words;

    if (lock_wait) {
        if (retryBlock_[pe] == base) {
            retryCount_[pe] += 1;
        } else {
            retryBlock_[pe] = base;
            retryCount_[pe] = 1;
        }
        parkedAge_[pe] = 0;
        if (retryCount_[pe] > config_.livelockRetries) {
            throw PIM_SIM_FAULT(
                SimFaultKind::Livelock, "pe", pe, " ", memOpName(op),
                " at address ", addr, " was lock-rejected ",
                retryCount_[pe],
                " consecutive times without completing anything (bound ",
                config_.livelockRetries, "); lock state:", describeLocks());
        }
        if (system_.pendingWaiters().size() == system_.numPes()) {
            throw PIM_SIM_FAULT(
                SimFaultKind::Deadlock, "pe", pe, " ", memOpName(op),
                " at address ", addr,
                " parked the last runnable PE: all ", system_.numPes(),
                " PEs now busy-wait and no UL can ever be broadcast; "
                "lock state:", describeLocks());
        }
        return;
    }

    retryBlock_[pe] = kNoAddr;
    retryCount_[pe] = 0;
    parkedAge_[pe] = 0;
    for (PeId waiter = 0; waiter < system_.numPes(); ++waiter) {
        if (!system_.parked(waiter))
            continue;
        parkedAge_[waiter] += 1;
        if (parkedAge_[waiter] > config_.starvationBound) {
            throw PIM_SIM_FAULT(
                SimFaultKind::Starvation, "pe", waiter,
                " has stayed parked while the other PEs completed ",
                parkedAge_[waiter], " references (bound ",
                config_.starvationBound,
                "); its UL was probably lost; lock state:",
                describeLocks());
        }
    }
}

} // namespace pim
