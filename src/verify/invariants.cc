#include "verify/invariants.h"

#include <sstream>

#include "cache/state.h"
#include "common/sim_fault.h"
#include "sim/system.h"

namespace pim {

namespace {

Addr
blockBaseOf(const System& system, Addr addr)
{
    const std::uint32_t words = system.config().cache.geometry.blockWords;
    return addr - addr % words;
}

} // namespace

std::string
describeBlockState(const System& system, Addr block_base)
{
    const std::uint32_t words = system.config().cache.geometry.blockWords;
    std::ostringstream out;
    out << "block " << block_base << " [";
    for (PeId pe = 0; pe < system.numPes(); ++pe) {
        if (pe != 0)
            out << " ";
        out << "pe" << pe << "="
            << cacheStateName(system.cache(pe).stateOf(block_base));
    }
    out << "] memory:";
    for (std::uint32_t w = 0; w < words; ++w)
        out << " " << system.memory().read(block_base + w);
    if (system.bus().purgedDirtyMarked(block_base))
        out << " (purge-marked)";
    return out.str();
}

void
checkBlockInvariants(const System& system, Addr block_base,
                     const std::string& context)
{
    const std::uint32_t words = system.config().cache.geometry.blockWords;
    block_base = blockBaseOf(system, block_base);

    std::uint32_t copies = 0;
    std::uint32_t dirty_copies = 0;
    std::uint32_t exclusive_copies = 0;
    PeId reference_pe = kNoPe; ///< A dirty holder if any, else any holder.
    for (PeId pe = 0; pe < system.numPes(); ++pe) {
        const CacheState state = system.cache(pe).stateOf(block_base);
        if (state == CacheState::INV)
            continue;
        copies += 1;
        if (cacheStateDirty(state)) {
            dirty_copies += 1;
            reference_pe = pe;
        } else if (reference_pe == kNoPe) {
            reference_pe = pe;
        }
        if (cacheStateExclusive(state))
            exclusive_copies += 1;
    }

    if (dirty_copies > 1) {
        throw PIM_SIM_FAULT(SimFaultKind::Protocol, context, ": ",
                            dirty_copies,
                            " caches hold the block dirty (EM/SM); at most "
                            "one writer may exist; ",
                            describeBlockState(system, block_base));
    }
    if (exclusive_copies > 0 && copies > 1) {
        throw PIM_SIM_FAULT(SimFaultKind::Protocol, context,
                            ": an exclusive (EM/EC) copy coexists with ",
                            copies - 1, " other cop",
                            copies - 1 == 1 ? "y" : "ies", "; ",
                            describeBlockState(system, block_base));
    }

    if (copies > 0) {
        // All copies agree word-for-word; a dirty copy, if any, is truth.
        for (std::uint32_t w = 0; w < words; ++w) {
            const Addr addr = block_base + w;
            const Word truth = system.cache(reference_pe).loadValue(addr);
            for (PeId pe = 0; pe < system.numPes(); ++pe) {
                if (pe == reference_pe ||
                    system.cache(pe).stateOf(block_base) ==
                        CacheState::INV) {
                    continue;
                }
                const Word copy = system.cache(pe).loadValue(addr);
                if (copy != truth) {
                    throw PIM_SIM_FAULT(
                        SimFaultKind::Protocol, context,
                        ": copies of word ", addr, " disagree (pe",
                        reference_pe, " has ", truth, ", pe", pe, " has ",
                        copy, "); ", describeBlockState(system, block_base));
                }
            }
            // With no dirty copy, memory must match (unless purge-marked).
            if (dirty_copies == 0 &&
                !system.bus().purgedDirtyMarked(block_base)) {
                const Word mem = system.memory().read(addr);
                if (mem != truth) {
                    throw PIM_SIM_FAULT(
                        SimFaultKind::Protocol, context,
                        ": clean copy of word ", addr, " (", truth,
                        ") differs from shared memory (", mem,
                        ") with no dirty copy to account for it; ",
                        describeBlockState(system, block_base));
                }
            }
        }
    }

    // Invariant 5: a held lock on any word of the block implies no other
    // cache has a valid copy. LR gains exclusiveness (I or FI with LK
    // riding along) and the LH response inhibits every remote F/FI until
    // the UL broadcast, so no copy can appear elsewhere while locked.
    for (PeId holder = 0; holder < system.numPes(); ++holder) {
        bool locked = false;
        const auto& dir = system.cache(holder).lockDirectory();
        for (const auto& [addr, state] : dir.entries()) {
            (void)state;
            if (blockBaseOf(system, addr) == block_base) {
                locked = true;
                break;
            }
        }
        if (!locked)
            continue;
        for (PeId pe = 0; pe < system.numPes(); ++pe) {
            if (pe == holder)
                continue;
            if (system.cache(pe).stateOf(block_base) != CacheState::INV) {
                throw PIM_SIM_FAULT(
                    SimFaultKind::Protocol, context, ": pe", holder,
                    " holds a lock on a word of the block but pe", pe,
                    " has a valid copy; lock acquisition must gain "
                    "exclusiveness and LH must inhibit remote fetches; ",
                    describeBlockState(system, block_base));
            }
        }
    }
}

Cycles
busPatternCost(BusPattern pattern, const BusTiming& timing)
{
    switch (pattern) {
      case BusPattern::MemFetch:       return timing.swapInCycles(false);
      case BusPattern::MemFetchVictim: return timing.swapInCycles(true);
      case BusPattern::C2C:            return timing.cacheToCacheCycles(false);
      case BusPattern::C2CVictim:      return timing.cacheToCacheCycles(true);
      case BusPattern::SwapOutOnly:    return timing.swapOutOnlyCycles();
      case BusPattern::Invalidate:     return timing.invalidateCycles();
      case BusPattern::Unlock:         return timing.unlockCycles();
      case BusPattern::LockReject:     return timing.lockRejectCycles();
      case BusPattern::WordWrite:      return timing.wordWriteCycles();
      case BusPattern::WordUpdate:     return timing.wordUpdateCycles();
    }
    return 0;
}

void
checkBusAccounting(const BusStats& before, const BusStats& after,
                   const BusTiming& timing, const std::string& context)
{
    Cycles pattern_sum = 0;
    for (int i = 0; i < kNumBusPatterns; ++i) {
        const auto pattern = static_cast<BusPattern>(i);
        const Cycles d_cycles =
            after.cyclesByPattern[i] - before.cyclesByPattern[i];
        const std::uint64_t d_trans =
            after.transByPattern[i] - before.transByPattern[i];
        const Cycles expected = d_trans * busPatternCost(pattern, timing);
        if (d_cycles != expected) {
            throw PIM_SIM_FAULT(
                SimFaultKind::Protocol, context, ": bus pattern ",
                busPatternName(pattern), " charged ", d_cycles,
                " cycles over ", d_trans, " transaction",
                d_trans == 1 ? "" : "s", " but the pattern costs ",
                busPatternCost(pattern, timing),
                " cycles each (expected ", expected, ")");
        }
        pattern_sum += d_cycles;
    }
    const Cycles d_total = after.totalCycles - before.totalCycles;
    const Cycles d_inter =
        after.interClusterCycles - before.interClusterCycles;
    if (d_total != pattern_sum + d_inter) {
        throw PIM_SIM_FAULT(
            SimFaultKind::Protocol, context, ": total bus cycle delta ",
            d_total, " does not equal the per-pattern sum ", pattern_sum,
            " plus the inter-cluster hop delta ", d_inter);
    }
}

} // namespace pim
