/**
 * @file
 * Watchdog over the busy-wait lock protocol (paper Section 3.1).
 *
 * The LR / UW / U protocol relies on every LWAIT entry eventually
 * producing a UL broadcast. A lost UL (hardware fault, injected or real)
 * leaves parked PEs asleep forever; a stuck LWAIT entry answers LH
 * forever and turns retries into livelock. The watchdog observes every
 * access and raises a structured SimFault when progress stops:
 *
 *  - Deadlock: every PE is parked, so no access can ever complete and no
 *    UL is in flight (the bus only carries transactions synchronously
 *    with accesses). Also reachable by the driver via reportStall().
 *  - Starvation: one PE stays parked while the others complete more than
 *    starvationBound references.
 *  - Livelock: the same PE re-parks on the same block livelockRetries
 *    times in a row without completing anything in between.
 *
 * Fault messages include the full lock picture (every directory's
 * LCK/LWAIT entries, plus injected ghosts) so a replay is actionable.
 */

#ifndef PIMCACHE_VERIFY_LOCK_WATCHDOG_H_
#define PIMCACHE_VERIFY_LOCK_WATCHDOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/system.h"

namespace pim {

/** Progress bounds for the lock watchdog. */
struct WatchdogConfig {
    /** References other PEs may complete while one PE stays parked. */
    std::uint64_t starvationBound = 100000;
    /** Consecutive re-parks of one PE on one block before livelock. */
    std::uint32_t livelockRetries = 1000;
};

/** Deadlock / starvation / livelock detector for the lock protocol. */
class LockWatchdog : public AccessObserver
{
  public:
    LockWatchdog(System& system, const WatchdogConfig& config);

    /**
     * For the driver loop: call when earliestRunnable() returns kNoPe
     * while work remains. Throws SimFault (Deadlock) with full context.
     */
    [[noreturn]] void reportStall();

    // AccessObserver ------------------------------------------------------
    void afterAccess(PeId pe, MemOp op, Addr addr, Area area, Word data,
                     Word wdata, bool lock_wait) override;

  private:
    /** Every PE's parked block + lock directory entries, one per line. */
    std::string describeLocks() const;

    System& system_;
    WatchdogConfig config_;
    /** References completed by others since this PE parked (parked only). */
    std::vector<std::uint64_t> parkedAge_;
    /** Block of this PE's latest run of consecutive lock waits. */
    std::vector<Addr> retryBlock_;
    /** Length of that run. */
    std::vector<std::uint32_t> retryCount_;
};

} // namespace pim

#endif // PIMCACHE_VERIFY_LOCK_WATCHDOG_H_
