#include "trace/synth.h"

#include "common/xassert.h"

namespace pim {

std::vector<MemRef>
makeRandomTraffic(const RandomTrafficConfig& config)
{
    Rng rng(config.seed);
    std::vector<MemRef> out;
    out.reserve(config.numPes * config.refsPerPe);
    // Round-robin across PEs so the trace is interleaved.
    std::vector<std::uint64_t> remaining(config.numPes, config.refsPerPe);
    bool work = true;
    while (work) {
        work = false;
        for (PeId pe = 0; pe < config.numPes; ++pe) {
            if (remaining[pe] == 0)
                continue;
            work = true;
            --remaining[pe];
            const Addr addr = config.base + rng.below(config.spanWords);
            const std::uint64_t dice = rng.below(10000);
            if (dice < config.lockPctX100 && remaining[pe] > 0) {
                --remaining[pe];
                out.push_back({addr, MemOp::LR, Area::Heap, pe});
                out.push_back({addr, MemOp::UW, Area::Heap, pe});
            } else if (dice < config.lockPctX100 + config.writePctX100) {
                out.push_back({addr, MemOp::W, Area::Heap, pe});
            } else {
                out.push_back({addr, MemOp::R, Area::Heap, pe});
            }
        }
    }
    return out;
}

std::vector<MemRef>
makeProducerConsumer(PeId producer, PeId consumer, std::uint32_t num_pes,
                     Addr base, std::uint64_t pool_words,
                     std::uint32_t message_words, std::uint64_t num_messages,
                     bool optimized)
{
    PIM_ASSERT(producer < num_pes && consumer < num_pes);
    PIM_ASSERT(message_words >= 1 && pool_words >= message_words);
    std::vector<MemRef> out;
    out.reserve(num_messages * message_words * 2);
    Addr cursor = 0;
    for (std::uint64_t m = 0; m < num_messages; ++m) {
        if (cursor + message_words > pool_words)
            cursor = 0;
        const Addr rec = base + cursor;
        cursor += message_words;
        for (std::uint32_t w = 0; w < message_words; ++w) {
            out.push_back({rec + w, optimized ? MemOp::DW : MemOp::W,
                           Area::Comm, producer});
        }
        for (std::uint32_t w = 0; w < message_words; ++w) {
            MemOp op = MemOp::R;
            if (optimized) {
                op = (w + 1 == message_words) ? MemOp::RP : MemOp::ER;
            }
            out.push_back({rec + w, op, Area::Comm, consumer});
        }
    }
    return out;
}

std::vector<MemRef>
makeMigratory(std::uint32_t num_pes, Addr base, std::uint64_t num_blocks,
              std::uint32_t block_words, std::uint32_t rounds)
{
    std::vector<MemRef> out;
    out.reserve(static_cast<std::size_t>(rounds) * num_pes * num_blocks * 2);
    for (std::uint32_t round = 0; round < rounds; ++round) {
        for (PeId pe = 0; pe < num_pes; ++pe) {
            for (std::uint64_t b = 0; b < num_blocks; ++b) {
                const Addr addr = base + b * block_words;
                out.push_back({addr, MemOp::R, Area::Heap, pe});
                out.push_back({addr, MemOp::W, Area::Heap, pe});
            }
        }
    }
    return out;
}

std::vector<MemRef>
makeLockTraffic(std::uint32_t num_pes, Addr hot, Addr private_base,
                std::uint64_t rounds, std::uint32_t conflict_pct_x100,
                std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<MemRef> out;
    out.reserve(rounds * num_pes * 2);
    std::vector<Addr> target(num_pes);
    for (std::uint64_t round = 0; round < rounds; ++round) {
        // All PEs lock before any unlocks, so contended rounds really
        // exercise the LWAIT / UL path during replay.
        for (PeId pe = 0; pe < num_pes; ++pe) {
            const bool contended = rng.below(10000) < conflict_pct_x100;
            // Private words sit in distinct cache blocks: lock snooping
            // is block-granular, so packing them together would make
            // even "uncontended" locks conflict.
            target[pe] = contended ? hot : private_base + pe * 16;
            out.push_back({target[pe], MemOp::LR, Area::Heap, pe});
        }
        for (PeId pe = 0; pe < num_pes; ++pe)
            out.push_back({target[pe], MemOp::UW, Area::Heap, pe});
    }
    return out;
}

std::vector<MemRef>
makeOrParallel(std::uint32_t num_pes, Addr shared_base,
               std::uint64_t shared_words, Addr private_base,
               std::uint64_t private_stride, std::uint64_t refs_per_pe,
               std::uint32_t task_grab_pct_x100, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<MemRef> out;
    out.reserve(num_pes * refs_per_pe);
    // Private binding-array cursor and a small task board per PE (the
    // first 64 words of each private region act as its task pool).
    std::vector<Addr> binding_top(num_pes);
    for (PeId pe = 0; pe < num_pes; ++pe)
        binding_top[pe] = private_base + pe * private_stride + 64;
    std::vector<std::uint64_t> remaining(num_pes, refs_per_pe);
    bool work = true;
    while (work) {
        work = false;
        for (PeId pe = 0; pe < num_pes; ++pe) {
            if (remaining[pe] == 0)
                continue;
            work = true;
            --remaining[pe];
            const std::uint64_t dice = rng.below(10000);
            if (dice < task_grab_pct_x100 && num_pes > 1) {
                // Task grab: write a descriptor into a victim's task
                // board, then read one back (write-once/read-once).
                PeId victim = static_cast<PeId>(rng.below(num_pes));
                if (victim == pe)
                    victim = (victim + 1) % num_pes;
                const Addr slot = private_base +
                                  victim * private_stride +
                                  rng.below(64);
                out.push_back({slot, MemOp::W, Area::Comm, pe});
                out.push_back({slot, MemOp::RI, Area::Comm, pe});
            } else if (dice < task_grab_pct_x100 + 4500) {
                // Clause/program lookup: shared, read-only.
                out.push_back({shared_base + rng.below(shared_words),
                               MemOp::R, Area::Instruction, pe});
            } else {
                // Binding-array write (trail-like: mostly fresh, private).
                out.push_back({binding_top[pe]++, MemOp::DW, Area::Heap,
                               pe});
                if (rng.chance(1, 4)) {
                    // Re-read a recent binding.
                    const std::uint64_t span =
                        binding_top[pe] -
                        (private_base + pe * private_stride + 64);
                    out.push_back({binding_top[pe] - 1 -
                                       rng.below(std::min<std::uint64_t>(
                                           span, 256)),
                                   MemOp::R, Area::Heap, pe});
                }
            }
        }
    }
    return out;
}

std::vector<MemRef>
makeHeapGrowth(std::uint32_t num_pes, Addr base, std::uint64_t seg_stride,
               std::uint64_t structs_per_pe, std::uint32_t struct_words,
               bool optimized, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<MemRef> out;
    out.reserve(num_pes * structs_per_pe * (struct_words + 1));
    std::vector<Addr> top(num_pes);
    for (PeId pe = 0; pe < num_pes; ++pe)
        top[pe] = base + pe * seg_stride;
    for (std::uint64_t s = 0; s < structs_per_pe; ++s) {
        for (PeId pe = 0; pe < num_pes; ++pe) {
            const Addr rec = top[pe];
            top[pe] += struct_words;
            for (std::uint32_t w = 0; w < struct_words; ++w) {
                out.push_back({rec + w, optimized ? MemOp::DW : MemOp::W,
                               Area::Heap, pe});
            }
            // Re-read one word of a random structure written so far.
            const std::uint64_t back = rng.below(s + 1);
            const Addr old = base + pe * seg_stride +
                             back * struct_words +
                             rng.below(struct_words);
            out.push_back({old, MemOp::R, Area::Heap, pe});
        }
    }
    return out;
}

} // namespace pim
