/**
 * @file
 * Binary memory-trace file writer and reader.
 *
 * Lets users capture an emulator run and replay it through different cache
 * configurations (trace-driven simulation) without re-running the
 * emulator. Format: a 16-byte header ("PIMTRACE", version, PE count) then
 * fixed 12-byte little-endian records {addr:u64, op:u8, area:u8, pe:u16}.
 */

#ifndef PIMCACHE_TRACE_TRACE_FILE_H_
#define PIMCACHE_TRACE_TRACE_FILE_H_

#include <cstdio>
#include <string>

#include "trace/ref.h"

namespace pim {

/** Streaming writer for the PIMTRACE format. */
class TraceWriter
{
  public:
    /** Open @p path for writing; fatal on failure. */
    TraceWriter(const std::string& path, std::uint32_t num_pes);
    ~TraceWriter();

    TraceWriter(const TraceWriter&) = delete;
    TraceWriter& operator=(const TraceWriter&) = delete;

    /** Append one reference. */
    void append(const MemRef& ref);

    /** Flush and close; called by the destructor if not already done. */
    void close();

    std::uint64_t recordsWritten() const { return records_; }

  private:
    std::FILE* file_;
    std::uint64_t records_ = 0;
};

/** Streaming reader for the PIMTRACE format. */
class TraceReader
{
  public:
    /** Open @p path; fatal on failure or bad magic. */
    explicit TraceReader(const std::string& path);
    ~TraceReader();

    TraceReader(const TraceReader&) = delete;
    TraceReader& operator=(const TraceReader&) = delete;

    /** Read the next record. @return false at end of file. */
    bool next(MemRef& ref);

    std::uint32_t numPes() const { return numPes_; }

  private:
    std::FILE* file_;
    std::uint32_t numPes_ = 0;
};

} // namespace pim

#endif // PIMCACHE_TRACE_TRACE_FILE_H_
