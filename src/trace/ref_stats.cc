#include "trace/ref_stats.h"

#include <cstring>

namespace pim {

std::uint64_t
RefStats::areaTotal(Area area) const
{
    std::uint64_t sum = 0;
    for (int op = 0; op < kNumMemOps; ++op)
        sum += counts_[static_cast<int>(area)][op];
    return sum;
}

std::uint64_t
RefStats::opTotal(MemOp op) const
{
    std::uint64_t sum = 0;
    for (int area = 0; area < kNumAreaSlots; ++area)
        sum += counts_[area][static_cast<int>(op)];
    return sum;
}

std::uint64_t
RefStats::opTotalDemoted(MemOp op) const
{
    std::uint64_t sum = 0;
    for (int raw = 0; raw < kNumMemOps; ++raw) {
        if (demoteMemOp(static_cast<MemOp>(raw)) == op)
            sum += opTotal(static_cast<MemOp>(raw));
    }
    return sum;
}

std::uint64_t
RefStats::opTotalDemoted(Area area, MemOp op) const
{
    std::uint64_t sum = 0;
    for (int raw = 0; raw < kNumMemOps; ++raw) {
        if (demoteMemOp(static_cast<MemOp>(raw)) == op)
            sum += count(area, static_cast<MemOp>(raw));
    }
    return sum;
}

std::uint64_t
RefStats::total() const
{
    std::uint64_t sum = 0;
    for (int area = 0; area < kNumAreaSlots; ++area)
        for (int op = 0; op < kNumMemOps; ++op)
            sum += counts_[area][op];
    return sum;
}

std::uint64_t
RefStats::dataTotal() const
{
    return total() - areaTotal(Area::Instruction);
}

void
RefStats::merge(const RefStats& other)
{
    for (int area = 0; area < kNumAreaSlots; ++area)
        for (int op = 0; op < kNumMemOps; ++op)
            counts_[area][op] += other.counts_[area][op];
}

void
RefStats::clear()
{
    std::memset(counts_, 0, sizeof(counts_));
}

} // namespace pim
