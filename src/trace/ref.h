/**
 * @file
 * Memory operations and memory-reference records.
 *
 * These are the nine memory operations of the paper: the ordinary R and W,
 * the three lock operations LR / UW / U (Section 3.1), and the four
 * software-controlled optimized commands DW / ER / RP / RI (Section 3.2).
 */

#ifndef PIMCACHE_TRACE_REF_H_
#define PIMCACHE_TRACE_REF_H_

#include <cstdint>

#include "common/types.h"
#include "mem/area.h"

namespace pim {

/** Processor-side memory operations accepted by the PIM cache. */
enum class MemOp : std::uint8_t {
    R = 0,  ///< Read.
    W = 1,  ///< Write (fetch-on-write allocation).
    LR = 2, ///< Lock and read.
    UW = 3, ///< Write and unlock.
    U = 4,  ///< Unlock (no data).
    DW = 5, ///< Direct write: write-allocate without fetch.
    ER = 6, ///< Exclusive read: invalidate supplier / purge own last word.
    RP = 7, ///< Read purge: read then purge own copy.
    RI = 8, ///< Read invalidate: read taking exclusive ownership.
    DWD = 9, ///< Direct write for downward-growing stacks: allocates
             ///< without fetch when the address is the *last* word of a
             ///< block (paper Section 3.2: "to optimize both, two
             ///< commands are necessary").
};

/** Number of MemOp enumerators. */
inline constexpr int kNumMemOps = 10;

/** Mnemonic as used in the paper. */
inline const char*
memOpName(MemOp op)
{
    switch (op) {
      case MemOp::R:  return "R";
      case MemOp::W:  return "W";
      case MemOp::LR: return "LR";
      case MemOp::UW: return "UW";
      case MemOp::U:  return "U";
      case MemOp::DW: return "DW";
      case MemOp::ER: return "ER";
      case MemOp::RP: return "RP";
      case MemOp::RI: return "RI";
      case MemOp::DWD: return "DWD";
    }
    return "?";
}

/** True for operations that read data into the processor. */
inline bool
memOpReads(MemOp op)
{
    switch (op) {
      case MemOp::R:
      case MemOp::LR:
      case MemOp::ER:
      case MemOp::RP:
      case MemOp::RI:
        return true;
      default:
        return false;
    }
}

/** True for operations that write processor data to memory. */
inline bool
memOpWrites(MemOp op)
{
    return op == MemOp::W || op == MemOp::UW || op == MemOp::DW ||
           op == MemOp::DWD;
}

/** True for the lock-protocol operations. */
inline bool
memOpLocks(MemOp op)
{
    return op == MemOp::LR || op == MemOp::UW || op == MemOp::U;
}

/**
 * The unoptimized equivalent of an operation: what a cache without the
 * Section 3.2 commands executes instead (DW -> W; ER/RP/RI -> R).
 */
inline MemOp
demoteMemOp(MemOp op)
{
    switch (op) {
      case MemOp::DW:
      case MemOp::DWD:
        return MemOp::W;
      case MemOp::ER:
      case MemOp::RP:
      case MemOp::RI:
        return MemOp::R;
      default:
        return op;
    }
}

/** One memory reference as emitted by a PE. */
struct MemRef {
    Addr addr = 0;
    MemOp op = MemOp::R;
    Area area = Area::Unknown;
    PeId pe = 0;
};

} // namespace pim

#endif // PIMCACHE_TRACE_REF_H_
