/**
 * @file
 * Reference counters broken down by area and operation.
 *
 * Feeds Table 2 (references by area) and Table 3 (references by
 * operation) of the paper.
 */

#ifndef PIMCACHE_TRACE_REF_STATS_H_
#define PIMCACHE_TRACE_REF_STATS_H_

#include <cstdint>

#include "mem/area.h"
#include "trace/ref.h"

namespace pim {

/** Counts of memory references by (area, operation). */
class RefStats
{
  public:
    /** Record one reference. */
    void
    record(const MemRef& ref)
    {
        counts_[static_cast<int>(ref.area)][static_cast<int>(ref.op)] += 1;
    }

    /** Count for one (area, op) pair. */
    std::uint64_t
    count(Area area, MemOp op) const
    {
        return counts_[static_cast<int>(area)][static_cast<int>(op)];
    }

    /** All references to @p area. */
    std::uint64_t areaTotal(Area area) const;

    /** All references with operation @p op (any area). */
    std::uint64_t opTotal(MemOp op) const;

    /**
     * Operation total counting optimized commands as their unoptimized
     * equivalent (DW counts as W; ER/RP/RI count as R), which is how the
     * paper's Table 3 reports operations.
     */
    std::uint64_t opTotalDemoted(MemOp op) const;

    /** Like opTotalDemoted but restricted to one area. */
    std::uint64_t opTotalDemoted(Area area, MemOp op) const;

    /** Grand total of references. */
    std::uint64_t total() const;

    /** Total of data references (everything except Instruction area). */
    std::uint64_t dataTotal() const;

    /** Merge another RefStats into this one. */
    void merge(const RefStats& other);

    /** Reset all counters. */
    void clear();

  private:
    std::uint64_t counts_[kNumAreaSlots][kNumMemOps] = {};
};

} // namespace pim

#endif // PIMCACHE_TRACE_REF_STATS_H_
