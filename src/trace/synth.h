/**
 * @file
 * Synthetic multi-PE reference-stream generators.
 *
 * Used by unit tests, property tests, the cache_explorer example and the
 * microbenchmarks. Each builder returns a fully interleaved trace
 * (vector of MemRef) that can be replayed through sim::TraceReplay.
 */

#ifndef PIMCACHE_TRACE_SYNTH_H_
#define PIMCACHE_TRACE_SYNTH_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "trace/ref.h"

namespace pim {

/** Parameters for the random-traffic generator. */
struct RandomTrafficConfig {
    std::uint32_t numPes = 4;
    std::uint64_t refsPerPe = 10000;
    Addr base = 0;
    std::uint64_t spanWords = 1 << 14;  ///< Shared working set span.
    std::uint32_t writePctX100 = 3000;  ///< Write fraction, basis points.
    std::uint32_t lockPctX100 = 0;      ///< LR..UW pair fraction, bp.
    std::uint64_t seed = 1;
};

/**
 * Uniform random reads/writes (optionally lock pairs) over one shared
 * region, round-robin across PEs.
 */
std::vector<MemRef> makeRandomTraffic(const RandomTrafficConfig& config);

/**
 * Strict write-once/read-once message traffic: the producer PE fills
 * @p message_words with DW (or W when @p optimized is false), then the
 * consumer PE reads them with ER and a final RP (or plain R). Buffers
 * advance through @p num_messages distinct records starting at @p base,
 * recycling over @p pool_words.
 */
std::vector<MemRef> makeProducerConsumer(PeId producer, PeId consumer,
                                         std::uint32_t num_pes, Addr base,
                                         std::uint64_t pool_words,
                                         std::uint32_t message_words,
                                         std::uint64_t num_messages,
                                         bool optimized);

/**
 * Migratory sharing: each block is read-modified-written by PE 0, then
 * PE 1, ... round-robin. The pattern where the SM state (no copy-back on
 * cache-to-cache transfer) saves the most memory-module traffic.
 */
std::vector<MemRef> makeMigratory(std::uint32_t num_pes, Addr base,
                                  std::uint64_t num_blocks,
                                  std::uint32_t block_words,
                                  std::uint32_t rounds);

/**
 * Lock contention: @p num_pes PEs repeatedly LR/UW the same word
 * (@p hot) with probability @p conflict_pct_x100 / 10000, otherwise a
 * PE-private word. Models the paper's claim that KL1 locks are frequent
 * but rarely conflicting.
 */
std::vector<MemRef> makeLockTraffic(std::uint32_t num_pes, Addr hot,
                                    Addr private_base, std::uint64_t rounds,
                                    std::uint32_t conflict_pct_x100,
                                    std::uint64_t seed);

/**
 * OR-parallel Prolog (Aurora-style) access pattern, per the paper's
 * Section 5 claim that the PIM cache also suits non-committed-choice
 * architectures: workers read a shared read-only program/clause region,
 * write mostly to private binding-array regions (high write frequency,
 * no sharing), and occasionally grab a task from another worker's
 * region (write-once/read-once task descriptors).
 */
std::vector<MemRef> makeOrParallel(std::uint32_t num_pes, Addr shared_base,
                                   std::uint64_t shared_words,
                                   Addr private_base,
                                   std::uint64_t private_stride,
                                   std::uint64_t refs_per_pe,
                                   std::uint32_t task_grab_pct_x100,
                                   std::uint64_t seed);

/**
 * Heap-growth pattern: each PE appends fresh structures to its own heap
 * segment (DW when @p optimized), then re-reads a random recent
 * structure. Approximates KL1 heap allocation behaviour.
 */
std::vector<MemRef> makeHeapGrowth(std::uint32_t num_pes, Addr base,
                                   std::uint64_t seg_stride,
                                   std::uint64_t structs_per_pe,
                                   std::uint32_t struct_words,
                                   bool optimized, std::uint64_t seed);

} // namespace pim

#endif // PIMCACHE_TRACE_SYNTH_H_
