#include "trace/trace_file.h"

#include <cstring>

#include "common/xassert.h"

namespace pim {

namespace {

constexpr char kMagic[8] = {'P', 'I', 'M', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t kVersion = 1;

#pragma pack(push, 1)
struct Record {
    std::uint64_t addr;
    std::uint8_t op;
    std::uint8_t area;
    std::uint16_t pe;
};
#pragma pack(pop)
static_assert(sizeof(Record) == 12);

} // namespace

TraceWriter::TraceWriter(const std::string& path, std::uint32_t num_pes)
    : file_(std::fopen(path.c_str(), "wb"))
{
    if (file_ == nullptr)
        PIM_FATAL("cannot open trace file for writing: ", path);
    std::fwrite(kMagic, 1, sizeof(kMagic), file_);
    std::fwrite(&kVersion, sizeof(kVersion), 1, file_);
    std::fwrite(&num_pes, sizeof(num_pes), 1, file_);
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const MemRef& ref)
{
    PIM_ASSERT(file_ != nullptr, "trace writer already closed");
    Record rec{ref.addr, static_cast<std::uint8_t>(ref.op),
               static_cast<std::uint8_t>(ref.area),
               static_cast<std::uint16_t>(ref.pe)};
    std::fwrite(&rec, sizeof(rec), 1, file_);
    ++records_;
}

void
TraceWriter::close()
{
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

TraceReader::TraceReader(const std::string& path)
    : file_(std::fopen(path.c_str(), "rb"))
{
    if (file_ == nullptr)
        PIM_FATAL("cannot open trace file: ", path);
    char magic[8];
    std::uint32_t version = 0;
    if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        PIM_FATAL("not a PIMTRACE file: ", path);
    }
    if (std::fread(&version, sizeof(version), 1, file_) != 1 ||
        version != kVersion) {
        PIM_FATAL("unsupported PIMTRACE version in ", path);
    }
    if (std::fread(&numPes_, sizeof(numPes_), 1, file_) != 1)
        PIM_FATAL("truncated PIMTRACE header in ", path);
}

TraceReader::~TraceReader()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

bool
TraceReader::next(MemRef& ref)
{
    Record rec;
    if (std::fread(&rec, sizeof(rec), 1, file_) != 1)
        return false;
    ref.addr = rec.addr;
    ref.op = static_cast<MemOp>(rec.op);
    ref.area = static_cast<Area>(rec.area);
    ref.pe = rec.pe;
    return true;
}

} // namespace pim
