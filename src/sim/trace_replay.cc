#include "sim/trace_replay.h"

#include "common/xassert.h"

namespace pim {

TraceReplay::TraceReplay(System& system, const std::vector<MemRef>& trace)
    : system_(system), trace_(trace)
{
}

void
TraceReplay::run()
{
    const std::uint32_t num_pes = system_.numPes();
    // Per-PE queues of trace indices, preserving trace order per PE.
    std::vector<std::deque<std::uint64_t>> queue(num_pes);
    for (std::uint64_t i = 0; i < trace_.size(); ++i) {
        PIM_ASSERT(trace_[i].pe < num_pes,
                   "trace references pe", trace_[i].pe,
                   " but the system has ", num_pes, " PEs");
        queue[trace_[i].pe].push_back(i);
    }

    std::uint64_t remaining = trace_.size();
    while (remaining > 0) {
        // Issue the globally earliest pending reference whose PE is not
        // busy-waiting on a remote lock.
        PeId pick = kNoPe;
        std::uint64_t pick_index = 0;
        for (PeId pe = 0; pe < num_pes; ++pe) {
            if (queue[pe].empty() || system_.parked(pe))
                continue;
            if (pick == kNoPe || queue[pe].front() < pick_index) {
                pick = pe;
                pick_index = queue[pe].front();
            }
        }
        if (pick == kNoPe) {
            PIM_FATAL("trace replay deadlock: every PE with pending "
                      "references is busy-waiting on a lock that is never "
                      "released");
        }

        const MemRef& ref = trace_[pick_index];
        const System::Access result =
            system_.access(ref.pe, ref.op, ref.addr, ref.area, 0);
        if (result.lockWait) {
            ++lockRejects_;
            continue; // The reference stays queued; the PE is parked.
        }
        queue[pick].pop_front();
        --remaining;
        ++completed_;
    }
}

} // namespace pim
