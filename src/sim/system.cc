#include "sim/system.h"

#include <algorithm>

#include "common/xassert.h"

namespace pim {

namespace {

/** The bus moves whole cache blocks: its block size follows the cache. */
SystemConfig
withSyncedTiming(SystemConfig config)
{
    config.timing.blockWords = config.cache.geometry.blockWords;
    return config;
}

} // namespace

System::System(const SystemConfig& config)
    : config_(withSyncedTiming(config)),
      memory_(config.memoryWords),
      bus_(std::make_unique<Bus>(config_.timing, memory_)),
      clock_(config.numPes, 0),
      parkedOn_(config.numPes, kNoAddr)
{
    PIM_ASSERT(config_.numPes >= 1);
    caches_.reserve(config_.numPes);
    for (PeId pe = 0; pe < config_.numPes; ++pe) {
        caches_.push_back(
            std::make_unique<PimCache>(pe, config_.cache, *bus_));
    }
    bus_->setUnlockListener(this);
}

System::Access
System::access(PeId pe, MemOp op, Addr addr, Area area, Word wdata)
{
    PIM_ASSERT(pe < config_.numPes);
    PIM_ASSERT(!parked(pe), "pe", pe, " stepped while busy-waiting");

    MemRef ref;
    ref.pe = pe;
    ref.addr = addr;
    ref.area = area;
    ref.op = config_.policy.apply(area, op);

    const PimCache::AccessResult result =
        caches_[pe]->access(ref, wdata, clock_[pe]);
    clock_[pe] = result.doneAt;

    Access out;
    if (result.lockWait) {
        parkedOn_[pe] = result.waitAddr;
        out.lockWait = true;
        return out;
    }
    refStats_.record(ref);
    if (refObserver_)
        refObserver_(ref);
    out.data = result.data;
    return out;
}

PeId
System::earliestRunnable() const
{
    PeId best = kNoPe;
    for (PeId pe = 0; pe < config_.numPes; ++pe) {
        if (parked(pe))
            continue;
        if (best == kNoPe || clock_[pe] < clock_[best])
            best = pe;
    }
    return best;
}

Cycles
System::makespan() const
{
    Cycles max = 0;
    for (Cycles c : clock_)
        max = std::max(max, c);
    return max;
}

void
System::flushAllCaches()
{
    for (auto& cache : caches_)
        cache->flushAll();
    bus_->clearPurgedMarks();
}

CacheStats
System::totalCacheStats() const
{
    CacheStats total;
    for (const auto& cache : caches_)
        total.merge(cache->stats());
    return total;
}

void
System::onUnlockBroadcast(Addr word_addr, Cycles when)
{
    const Addr block = word_addr - word_addr % config_.timing.blockWords;
    for (PeId pe = 0; pe < config_.numPes; ++pe) {
        if (parkedOn_[pe] == block) {
            parkedOn_[pe] = kNoAddr;
            clock_[pe] = std::max(clock_[pe], when);
        }
    }
}

} // namespace pim
