#include "sim/system.h"

#include <algorithm>
#include <exception>

#include "common/sim_fault.h"
#include "common/xassert.h"

namespace pim {

namespace {

bool
isPowerOfTwo(std::uint64_t v)
{
    return v >= 1 && (v & (v - 1)) == 0;
}

/** The bus moves whole cache blocks: its block size follows the cache. */
SystemConfig
withSyncedTiming(SystemConfig config)
{
    config.timing.blockWords = config.cache.geometry.blockWords;
    return config;
}

/** validate() at construction, so a bad config never reaches the model. */
SystemConfig
validated(SystemConfig config)
{
    config.validate();
    return config;
}

} // namespace

void
SystemConfig::validate() const
{
    if (numPes < 1)
        throw PIM_SIM_FAULT(SimFaultKind::Config,
                            "numPes must be >= 1 (got ", numPes, ")");
    const CacheGeometry& geom = cache.geometry;
    if (!isPowerOfTwo(geom.blockWords))
        throw PIM_SIM_FAULT(SimFaultKind::Config,
                            "cache blockWords must be a power of two (got ",
                            geom.blockWords, ")");
    if (geom.blockWords > 64)
        throw PIM_SIM_FAULT(SimFaultKind::Config,
                            "cache blockWords must be <= 64 (got ",
                            geom.blockWords,
                            "); the bus moves whole blocks");
    if (!isPowerOfTwo(geom.sets))
        throw PIM_SIM_FAULT(SimFaultKind::Config,
                            "cache sets must be a power of two (got ",
                            geom.sets, ")");
    if (geom.ways < 1)
        throw PIM_SIM_FAULT(SimFaultKind::Config, "cache ways must be >= 1");
    if (cache.lockEntries < 1)
        throw PIM_SIM_FAULT(SimFaultKind::Config,
                            "lockEntries must be >= 1; the KL1 engine "
                            "needs at least one busy-wait lock");
    if (memoryWords == 0)
        throw PIM_SIM_FAULT(SimFaultKind::Config, "memoryWords must be > 0");
    if (memoryWords % geom.blockWords != 0)
        throw PIM_SIM_FAULT(SimFaultKind::Config, "memoryWords (",
                            memoryWords,
                            ") must be a multiple of the cache block size (",
                            geom.blockWords, " words)");
    if (numPes > ResidencyFilter::kMaxMaskWords * 64)
        throw PIM_SIM_FAULT(SimFaultKind::Config, "numPes (", numPes,
                            ") exceeds the residency filter's ",
                            ResidencyFilter::kMaxMaskWords * 64,
                            "-PE mask limit");
    if (cluster.clustered() && cluster.clustersFor(numPes) > 64)
        throw PIM_SIM_FAULT(
            SimFaultKind::Config, "clusterSize ", cluster.clusterSize,
            " partitions ", numPes, " PEs into ",
            cluster.clustersFor(numPes),
            " clusters; the inter-cluster directory supports at most 64");
}

void
SystemConfig::validate(std::uint64_t required_words) const
{
    validate();
    if (memoryWords < required_words)
        throw PIM_SIM_FAULT(SimFaultKind::Config, "memoryWords (",
                            memoryWords, ") does not cover the ",
                            required_words,
                            " words required by the address-space layout");
}

System::System(const SystemConfig& config)
    : config_(validated(withSyncedTiming(config))),
      memory_(config.memoryWords),
      bus_(std::make_unique<Bus>(config_.timing, memory_, config_.cluster)),
      clock_(config.numPes, 0),
      parkedOn_(config.numPes, kNoAddr)
{
    caches_.reserve(config_.numPes);
    for (PeId pe = 0; pe < config_.numPes; ++pe) {
        caches_.push_back(
            std::make_unique<PimCache>(pe, config_.cache, *bus_));
    }
    bus_->setUnlockListener(this);
    bus_->setSnoopFilterEnabled(config_.snoopFilter);
}

System::~System()
{
    // A parked PE at teardown means a driver dropped a lockWait=true
    // access without retrying it — the busy-wait never resolved and the
    // run's statistics silently miss the reference. Skip the check while
    // an exception unwinds (e.g. a SimFault thrown out of access()).
    if (std::uncaught_exceptions() == 0) {
        for (PeId pe = 0; pe < config_.numPes; ++pe) {
            PIM_ASSERT(parkedOn_[pe] == kNoAddr, "pe", pe,
                       " still parked on block ", parkedOn_[pe],
                       " at System teardown; the driver leaked a lock "
                       "wait (see System::pendingWaiters)");
        }
    }
}

System::Access
System::access(PeId pe, MemOp op, Addr addr, Area area, Word wdata)
{
    PIM_ASSERT(pe < config_.numPes);
    PIM_ASSERT(!parked(pe), "pe", pe, " stepped while busy-waiting");

    // Cooperative deadline/cancellation: polled before any state
    // changes, so a Timeout/Cancelled fault never leaves a half-done
    // access behind. The poll is a counter increment except on every
    // stride-th reference (common/deadline.h).
    if (guard_ != nullptr)
        guard_->poll();

    MemRef ref;
    ref.pe = pe;
    ref.addr = addr;
    ref.area = area;
    ref.op = config_.policy.apply(area, op);

    // Observer/sink hooks pay one emptiness/null test when detached —
    // the common case on the measured hot path (docs/PERFORMANCE.md).
    if (!observers_.empty()) {
        for (AccessObserver* obs : observers_)
            obs->beforeAccess(pe, ref.op, addr, area);
    }

    const Cycles startedAt = clock_[pe];
    if (sink_ != nullptr)
        sink_->onAccessBegin(pe, ref.op, addr, area, startedAt);

    const PimCache::AccessResult result =
        caches_[pe]->access(ref, wdata, startedAt);
    clock_[pe] = result.doneAt;

    // Close the operation before the observers run: an auditor throwing
    // SimFault out of afterAccess must not leave the event dangling.
    if (sink_ != nullptr)
        sink_->onAccessEnd(pe, ref.op, addr, area, startedAt, result.doneAt,
                           result.lockWait);

    Access out;
    if (result.lockWait) {
        park(pe, result.waitAddr, result.doneAt);
        out.lockWait = true;
    } else {
        refStats_.record(ref);
        if (refObserver_)
            refObserver_(ref);
        out.data = result.data;
    }

    if (!observers_.empty()) {
        for (AccessObserver* obs : observers_) {
            obs->afterAccess(pe, ref.op, addr, area, out.data, wdata,
                             out.lockWait);
        }
    }

    // Injected fault: a glitch on the UL line wakes every parked PE with
    // no lock actually released; they retry, hit LH again and re-park.
    // Combined with StuckLwait ghosts this produces genuine livelock.
    if (injector_ != nullptr &&
        injector_->fire(FaultSite::SpuriousWakeup)) {
        for (PeId waiter = 0; waiter < config_.numPes; ++waiter) {
            if (parkedOn_[waiter] != kNoAddr)
                wake(waiter, parkedOn_[waiter], clock_[pe]);
        }
        waitersByBlock_.clear();
    }
    return out;
}

System::Access
System::accessLocalHit(PeId pe, MemOp op, Addr addr, Area area, Word wdata,
                       RefStats& ref_shard)
{
    MemRef ref;
    ref.pe = pe;
    ref.addr = addr;
    ref.area = area;
    ref.op = config_.policy.apply(area, op);

    const Cycles startedAt = clock_[pe];
    const PimCache::AccessResult result =
        caches_[pe]->access(ref, wdata, startedAt);
    PIM_ASSERT(!result.lockWait,
               "accessLocalHit executed an operation that lock-waited; "
               "the epoch classifier mislabeled a bus operation");
    PIM_ASSERT(result.doneAt == startedAt + config_.cache.hitCycles,
               "accessLocalHit operation did not complete in hitCycles; "
               "the epoch classifier mislabeled a bus operation");
    clock_[pe] = result.doneAt;
    ref_shard.record(ref);

    Access out;
    out.data = result.data;
    return out;
}

void
System::park(PeId pe, Addr block, Cycles when)
{
    parkedOn_[pe] = block;
    std::vector<PeId>& waiters = waitersByBlock_[block];
    waiters.insert(std::upper_bound(waiters.begin(), waiters.end(), pe),
                   pe);
    if (sink_ != nullptr)
        sink_->onPark(pe, block, when);
}

void
System::wake(PeId pe, Addr block, Cycles at_least)
{
    parkedOn_[pe] = kNoAddr;
    clock_[pe] = std::max(clock_[pe], at_least);
    if (sink_ != nullptr)
        sink_->onWake(pe, block, clock_[pe]);
}

void
System::setFaultInjector(FaultInjector* injector)
{
    injector_ = injector;
    bus_->setFaultInjector(injector);
    for (auto& cache : caches_)
        cache->setFaultInjector(injector);
}

void
System::addEventSink(EventSink* sink)
{
    sinkMux_.add(sink);
    if (sink_ == nullptr) {
        // First registration: wire every component to the mux.
        sink_ = &sinkMux_;
        bus_->setEventSink(&sinkMux_);
        for (auto& cache : caches_)
            cache->setEventSink(&sinkMux_);
    }
}

std::vector<PeId>
System::pendingWaiters() const
{
    std::vector<PeId> waiters;
    for (PeId pe = 0; pe < config_.numPes; ++pe) {
        if (parkedOn_[pe] != kNoAddr)
            waiters.push_back(pe);
    }
    return waiters;
}

void
System::abandonParkedWaiters()
{
    for (PeId pe = 0; pe < config_.numPes; ++pe)
        parkedOn_[pe] = kNoAddr;
    waitersByBlock_.clear();
}

std::vector<std::uint64_t>
System::protocolSnapshot(Addr lo, Addr hi) const
{
    std::vector<std::uint64_t> out;
    out.push_back(hi - lo);
    for (Addr addr = lo; addr < hi; ++addr)
        out.push_back(memory_.read(addr));
    for (PeId pe = 0; pe < config_.numPes; ++pe)
        caches_[pe]->snapshotState(lo, hi, out);
    bus_->snapshotPurgeMarks(lo, hi, out);
    for (PeId pe = 0; pe < config_.numPes; ++pe)
        out.push_back(parkedOn_[pe]);
    return out;
}

std::uint64_t
System::protocolHash(Addr lo, Addr hi) const
{
    // splitmix64 finalizer folded over the snapshot words.
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::uint64_t v : protocolSnapshot(lo, hi)) {
        std::uint64_t z =
            h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        h = z ^ (z >> 31);
    }
    return h;
}

PeId
System::earliestRunnable() const
{
    PeId best = kNoPe;
    for (PeId pe = 0; pe < config_.numPes; ++pe) {
        if (parked(pe))
            continue;
        if (best == kNoPe || clock_[pe] < clock_[best])
            best = pe;
    }
    return best;
}

Cycles
System::makespan() const
{
    Cycles max = 0;
    for (Cycles c : clock_)
        max = std::max(max, c);
    return max;
}

void
System::flushAllCaches()
{
    for (auto& cache : caches_)
        cache->flushAll();
    bus_->clearPurgedMarks();
}

CacheStats
System::totalCacheStats() const
{
    CacheStats total;
    for (const auto& cache : caches_)
        total.merge(cache->stats());
    return total;
}

void
System::onUnlockBroadcast(Addr word_addr, Cycles when)
{
    const Addr block = word_addr - word_addr % config_.timing.blockWords;
    // O(waiters) wakeup via the block -> waiters index (the old code
    // scanned every PE per UL). The vector is ascending, preserving the
    // PE-order wakeup of the scan it replaces.
    const auto it = waitersByBlock_.find(block);
    if (it == waitersByBlock_.end())
        return;
    for (PeId pe : it->second)
        wake(pe, block, when);
    waitersByBlock_.erase(it);
}

} // namespace pim
