/**
 * @file
 * Randomized multi-PE stress harness with seed-replay reproduction.
 *
 * Drives a System with synthetic traffic — shared reads/writes, busy-wait
 * lock sequences, and producer/consumer DW/ER/RP record flows — under an
 * optional FaultPlan, with the CoherenceAuditor and LockWatchdog
 * attached. Every random decision comes from one seeded Rng drawn in
 * global simulation order, so a run is a pure function of its
 * StressConfig: any detected fault reproduces from the one-line replay
 * (`pim_stress --replay --seed=S --plan=... --pes=N --geometry=BxWxS ...`)
 * the harness prints on failure.
 */

#ifndef PIMCACHE_SIM_STRESS_H_
#define PIMCACHE_SIM_STRESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/sim_fault.h"
#include "trace/ref.h"
#include "verify/lock_watchdog.h"

namespace pim {

/** Full parameterization of one stress run (the replay line's content). */
struct StressConfig {
    std::uint64_t seed = 1;
    std::uint32_t numPes = 4;
    std::uint32_t blockWords = 4; ///< Geometry "BxWxS": block words, ...
    std::uint32_t ways = 2;       ///< ... associativity, ...
    std::uint32_t sets = 64;      ///< ... sets.
    std::uint64_t steps = 20000;  ///< References to complete.
    std::uint64_t spanWords = 4096; ///< Shared read/write region size.
    std::uint32_t writePct = 30; ///< Writes among plain references.
    std::uint32_t lockPct = 10;  ///< Lock-protocol share of references.
    std::uint32_t optPct = 15;   ///< DW/ER/RP producer-consumer share.
    std::string planSpec;        ///< FaultPlan::parse spec ("" = none).
    std::string traceOut;        ///< Trace dump path on failure ("" = off).
    /**
     * Timeline dump path (docs/OBSERVABILITY.md). When set, the Chrome
     * trace-event timeline of the run is written here — always, not only
     * on failure. When unset but traceOut is set, a failing run still
     * dumps its timeline next to the PIMTRACE as
     * "<traceOut>.timeline.json". Does not affect the simulation, so it
     * is not part of the replay line.
     */
    std::string timelineOut;
    /**
     * Attribution dump path (docs/OBSERVABILITY.md). When set, the
     * miss/cycle attribution report of the run is written here as JSON
     * (schema `attribution`) — always, not only on failure. The engine
     * itself rides along on every run regardless (its bucket-sum
     * cross-check is always-on); like timelineOut this never affects
     * the simulation, so it is not part of the replay line.
     */
    std::string attributionOut;
    bool audit = true;           ///< Attach the CoherenceAuditor.
    /**
     * Exact bus-side snoop filter (docs/PERFORMANCE.md). Outcomes are
     * identical either way; off reproduces the pre-filter broadcast
     * (pim_perf's A/B baseline, pim_conform's differential fuzz).
     */
    bool snoopFilter = true;
    /**
     * Clustered bus topology (docs/ARCHITECTURE.md): PEs per cluster
     * (0 = single bus) and the interconnect hop cost. Timing-only, but
     * part of the replay line: cluster timing changes arbitration order
     * visible through makespans and the fingerprint.
     */
    std::uint32_t clusterSize = 0;
    std::uint32_t hopCycles = 4;
    /**
     * Wall-clock budget in seconds (0 = unlimited). A run that exceeds
     * it fails with SimFault(Timeout) via the RunGuard polled in
     * System::access — bounded execution instead of a wedged worker.
     * Wall-clock, so not part of the replay line: replaying a timed-out
     * run without the budget reproduces the full simulation.
     */
    double timeoutSeconds = 0;
    /**
     * Parallel-core jobs for the drive loop (0 or 1 = serialized). The
     * stress harness drives its System through runParallelCore, but a
     * stress System always has order-sensitive hooks attached (the
     * watchdog, usually the auditor, the metrics/attribution sinks) and
     * its source draws from one shared RNG, so the core degrades to the
     * serialized-epoch mode: results are bit-identical for ANY value —
     * fault sites fire at epoch boundaries deterministically and seed
     * replay is exact (docs/ROBUSTNESS.md). Not part of the replay line
     * for that reason.
     */
    std::uint32_t parJobs = 0;
    /** Optional cooperative cancel (not owned; may be tripped remotely). */
    const CancelToken* cancel = nullptr;
    WatchdogConfig watchdog;

    /** Geometry as "BxWxS" (e.g. "4x2x64"). */
    std::string geometryString() const;

    /** Parse "BxWxS" into blockWords/ways/sets. @throws SimFault. */
    void setGeometry(const std::string& spec);

    /** The `pim_stress` flags reproducing this exact run. */
    std::string replayLine() const;
};

/** Outcome of one stress run. */
struct StressResult {
    bool failed = false;            ///< A SimFault was detected.
    SimFaultKind kind = SimFaultKind::Config; ///< Valid when failed.
    std::string message;            ///< Fault message when failed.
    std::string replayLine;         ///< Reproduction flags when failed.
    std::uint64_t completedRefs = 0;
    /**
     * True when the drive loop ran on the parallel core's serialized-
     * epoch path (always, today: see StressConfig::parJobs).
     */
    bool coreSerialized = true;
    std::uint64_t auditChecks = 0;  ///< Auditor invariant checks run.
    std::uint64_t fingerprint = 0;  ///< Hash of every completed access.
    Cycles makespan = 0;
    std::string injectorSummary;    ///< Per-site fires/opportunities.
    std::uint64_t injectorFires = 0; ///< Faults actually injected.
    std::uint64_t traceRecords = 0; ///< Records dumped (failure + traceOut).
    std::uint64_t timelineEvents = 0; ///< Timeline events recorded.
    std::string timelinePath;       ///< Where the timeline landed ("").
    std::uint64_t classifiedMisses = 0; ///< Misses the attribution saw.
    std::string attributionPath;    ///< Where the attribution landed ("").
};

/**
 * Run the stress workload described by @p config. Detected faults are
 * caught and reported in the result (the process stays alive); on
 * failure with config.traceOut set, the completed-reference trace is
 * dumped in PIMTRACE format.
 */
StressResult runStress(const StressConfig& config);

/**
 * Run @p count independent stress runs — seeds base.seed ..
 * base.seed+count-1 — fanned out over @p jobs ThreadPool workers
 * (0 = hardware). Each run owns its whole simulation stack, so results
 * are the same as running the seeds one by one: the returned vector is
 * in seed order and every entry's replay line reproduces that run
 * alone. Per-run traceOut/timelineOut paths get a ".seed<N>" suffix so
 * parallel runs never write the same file.
 */
std::vector<StressResult> runStressBatch(const StressConfig& base,
                                         std::uint32_t count,
                                         unsigned jobs);

} // namespace pim

#endif // PIMCACHE_SIM_STRESS_H_
