/**
 * @file
 * Parallel discrete-event core: concurrent PEs with deterministic
 * bus-epoch rendezvous (docs/ARCHITECTURE.md, "Threading model").
 *
 * The sequential drivers step one PE at a time in (clock, pe) order, so
 * a single simulation is capped by one host core even though PEs only
 * interact at bus transactions. This core exploits that independence:
 * between bus transactions, PEs advance concurrently through their
 * private cache hits (System::accessLocalHit), and rendezvous at *bus
 * epochs* — an EpochGate barrier whose last arriver becomes the epoch
 * leader, executes every due bus transaction in exact (clock, pe)
 * lexicographic order, and publishes the next epoch's key limit: the
 * smallest key at which any PE could issue its next bus transaction.
 * Private hits with keys below the limit cannot be affected by (or
 * affect) any future bus transaction, so running them concurrently is
 * indistinguishable from the sequential interleaving.
 *
 * Determinism: for any jobs count the core executes the exact same
 * operation sequence per PE and the exact same global order of bus
 * transactions as the sequential loop, so fingerprint, makespan,
 * busTransactions and protocolHash are all byte-identical — enforced by
 * pim_perf --par-jobs, pim_conform --par-fuzz and the `par` test label.
 *
 * When the run must be observed in global order (access observers,
 * event sinks, a reference observer or a fault injector attached), when
 * the source's streams are not PE-independent, or when jobs <= 1, the
 * core degrades to a serialized-epoch mode: a single inline loop that
 * reproduces the legacy driver order bit-for-bit (every operation is
 * its own epoch). Fault-injection campaigns therefore compose with any
 * --par-jobs setting without perturbing seed replay
 * (docs/ROBUSTNESS.md).
 */

#ifndef PIMCACHE_SIM_PARALLEL_CORE_H_
#define PIMCACHE_SIM_PARALLEL_CORE_H_

#include <cstdint>

#include "sim/system.h"
#include "trace/ref.h"

namespace pim {

/** One operation pulled from a RefSource. */
struct ParOp {
    MemOp op = MemOp::R;
    Addr addr = 0;
    Area area = Area::Unknown;
    Word wdata = 0;
};

/**
 * Per-PE operation stream consumed by the parallel core.
 *
 * Contract for independent() == true sources (the concurrent mode):
 *  - next()/complete() for one PE are never called concurrently with
 *    each other, but different PEs' calls may run on different threads;
 *    per-PE generation state must not be shared across PEs.
 *  - next(pe) may be called a bounded number of operations ahead of the
 *    corresponding complete(pe) calls (prefetch into the epoch buffer),
 *    so generation must not depend on the completion data of in-flight
 *    operations. The core never pulls past a pending lock operation
 *    (LR/UW/U), so lock-dependent generation state (what this PE
 *    currently holds) may be consulted freely.
 *
 * independent() == false sources (e.g. the stress driver's single
 * shared RNG) run on the serialized-epoch path, which pulls exactly one
 * operation at a time, always for the (clock, pe)-minimal PE, after
 * selecting it — the legacy driver order, bit for bit.
 */
class RefSource
{
  public:
    virtual ~RefSource() = default;

    /**
     * Produce @p pe's next operation. Returning false ends @p pe's
     * stream permanently (the core never asks again). A lock-rejected
     * operation is retried by the core without a new pull.
     */
    virtual bool next(PeId pe, ParOp* out) = 0;

    /** @p op completed for @p pe with read data @p data. */
    virtual void
    complete(PeId pe, const ParOp& op, Word data)
    {
        (void)pe; (void)op; (void)data;
    }

    /** True when per-PE streams are generation-independent (see above). */
    virtual bool independent() const { return true; }

    /**
     * Every unfinished PE is parked on a lock: the workload deadlocked.
     * The default panics; harnesses with a lock watchdog override this
     * to report the stall (and throw their own diagnosis).
     */
    virtual void onStall();
};

/** Tuning/selection knobs for runParallelCore. */
struct ParallelCoreOptions {
    /** Worker threads (including the calling thread). <= 1: serialized. */
    unsigned jobs = 1;
    /** Per-PE operation prefetch depth (concurrent mode only). */
    std::uint32_t pullDepth = 64;
};

/** Outcome of a parallel-core run. */
struct ParallelRunResult {
    /** Completed references, summed over PEs. */
    std::uint64_t completedRefs = 0;
    /** References executed on the concurrent private-hit path. */
    std::uint64_t localRefs = 0;
    /** Epoch-gate rendezvous completed (0 in serialized mode). */
    std::uint64_t epochs = 0;
    /** Bus transactions + retries executed in leader serial phases. */
    std::uint64_t serialActions = 0;
    /**
     * Jobs-invariant run fingerprint: per-PE splitmix64 chains over
     * (op, addr, data) in program order, folded in PE order. Identical
     * for any jobs count and for the serialized mode.
     */
    std::uint64_t fingerprint = 0;
    /** True when the run used the serialized-epoch mode. */
    bool serialized = false;
};

/**
 * True when runParallelCore would use the serialized-epoch mode for
 * this system/source/options combination (see file comment).
 */
bool parallelCoreSerialized(const System& system, const RefSource& source,
                            const ParallelCoreOptions& options);

/**
 * Drive @p system with @p source until every PE's stream ends. Lock
 * waits are retried transparently. On return the per-PE RefStats
 * shards are merged into system.refStats(), so reports see exactly the
 * sequential counters.
 */
ParallelRunResult runParallelCore(System& system, RefSource& source,
                                  const ParallelCoreOptions& options);

} // namespace pim

#endif // PIMCACHE_SIM_PARALLEL_CORE_H_
