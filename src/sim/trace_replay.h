/**
 * @file
 * Trace-driven simulation: replay a recorded or synthetic reference
 * stream through a System.
 *
 * References are issued in trace order (which preserves the producer /
 * consumer dependencies the trace was generated with); each reference
 * runs at its PE's local clock. A PE parked on a remote lock is skipped
 * until the UL broadcast wakes it, at which point its pending reference
 * is retried before the trace proceeds for that PE.
 */

#ifndef PIMCACHE_SIM_TRACE_REPLAY_H_
#define PIMCACHE_SIM_TRACE_REPLAY_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/system.h"
#include "trace/ref.h"

namespace pim {

/** Drives a vector of references through a System. */
class TraceReplay
{
  public:
    /** @param system Target system; @param trace interleaved references. */
    TraceReplay(System& system, const std::vector<MemRef>& trace);

    /**
     * Replay the whole trace. Fatal if every remaining PE is parked on a
     * lock that no remaining reference will release (a malformed trace).
     */
    void run();

    /** References successfully completed. */
    std::uint64_t completed() const { return completed_; }

    /** Lock-rejected attempts encountered during the replay. */
    std::uint64_t lockRejects() const { return lockRejects_; }

  private:
    System& system_;
    const std::vector<MemRef>& trace_;
    std::uint64_t completed_ = 0;
    std::uint64_t lockRejects_ = 0;
};

} // namespace pim

#endif // PIMCACHE_SIM_TRACE_REPLAY_H_
