#include "sim/parallel_core.h"

#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"
#include "common/xassert.h"

namespace pim {

namespace {

/** splitmix64 finalizer (the repo's canonical 64-bit mixer). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Fold one completed reference into a per-PE fingerprint chain. */
std::uint64_t
fpMix(std::uint64_t h, PeId pe, const ParOp& op, Word data)
{
    h = mix64(h ^ ((static_cast<std::uint64_t>(pe) << 8) |
                   static_cast<std::uint64_t>(op.op)));
    h = mix64(h ^ op.addr);
    h = mix64(h ^ data);
    return h;
}

/**
 * Lexicographic (clock, pe) order packed into one comparable word: the
 * sequential drivers' global step order. 12 PE bits leave 52 clock
 * bits — systems with >= 4096 PEs fall back to the serialized mode.
 */
constexpr std::uint64_t kInfKey = ~0ULL;
constexpr unsigned kPeKeyBits = 12;

std::uint64_t
packKey(Cycles clock, PeId pe)
{
    PIM_ASSERT(clock < (1ULL << (64 - kPeKeyBits)),
               "clock overflows the epoch key");
    return (static_cast<std::uint64_t>(clock) << kPeKeyBits) | pe;
}

/**
 * Per-PE run state. Fields are touched either by the owning worker
 * during the parallel phase or by the epoch leader during the serial
 * phase, never concurrently; the EpochGate's acquire/release chain
 * orders the handoffs.
 */
struct PeRun {
    std::deque<ParOp> buf;          ///< Pulled, not yet executed ops.
    std::uint32_t localsAhead = 0;  ///< Leading private-hit prefix of buf.
    bool probed = false;            ///< Classification of buf is current.
    bool nextBusValid = false;      ///< buf[localsAhead] is a bus op.
    bool streamEnd = false;         ///< Source exhausted for this PE.
    bool done = false;              ///< streamEnd and buf drained.
    std::uint64_t probeVersion = 0; ///< Cache snoop version at classify.
    std::uint64_t fp = 0;           ///< Fingerprint shard.
    std::uint64_t completed = 0;
    std::uint64_t localRefs = 0;
    RefStats refShard;              ///< Merged into System at the end.
};

/** The concurrent (SPMD) engine; see the header's file comment. */
class SpmdEngine
{
  public:
    SpmdEngine(System& system, RefSource& source,
               const ParallelCoreOptions& options)
        : sys_(system),
          src_(source),
          jobs_(options.jobs),
          pullDepth_(options.pullDepth < 2 ? 2 : options.pullDepth),
          hit_(system.config().cache.hitCycles),
          pes_(system.numPes()),
          pe_(system.numPes()),
          gate_(options.jobs)
    {
        PIM_ASSERT(jobs_ >= 2);
        PIM_ASSERT(hit_ > 0);
        PIM_ASSERT(pes_ < (1u << kPeKeyBits));
    }

    ParallelRunResult
    run()
    {
        {
            // The gate needs exactly `jobs_` parties, so the engine owns
            // its pool: parking gate participants on a shared pool with
            // fewer free workers would deadlock the rendezvous.
            ThreadPool pool(jobs_ - 1);
            for (unsigned w = 1; w < jobs_; ++w)
                pool.submit([this, w] { workerMain(w); });
            workerMain(0);
            pool.wait();
        }
        if (firstError_)
            std::rethrow_exception(firstError_);

        ParallelRunResult out;
        out.epochs = epochs_;
        out.serialActions = serialActions_;
        for (PeId p = 0; p < pes_; ++p) {
            out.fingerprint = mix64(out.fingerprint ^ pe_[p].fp);
            out.completedRefs += pe_[p].completed;
            out.localRefs += pe_[p].localRefs;
            sys_.refStats().merge(pe_[p].refShard);
        }
        return out;
    }

  private:
    enum class Phase : std::uint8_t { Run, Done };

    void
    workerMain(unsigned w)
    {
        for (;;) {
            if (gate_.arrive()) {
                try {
                    leaderPhase();
                } catch (...) {
                    noteError();
                    phase_ = Phase::Done;
                }
                ++epochs_;
                gate_.release();
            }
            if (phase_ == Phase::Done)
                return;
            try {
                for (PeId p = w; p < pes_; p += jobs_)
                    runPe(p);
            } catch (...) {
                noteError();
                abort_.store(true, std::memory_order_relaxed);
            }
        }
    }

    void
    noteError()
    {
        std::lock_guard<std::mutex> lock(errMutex_);
        if (!firstError_)
            firstError_ = std::current_exception();
    }

    /**
     * Pull operations into @p p's buffer, up to the prefetch depth,
     * the stream end, or a pending lock operation (generation state may
     * depend on lock outcomes, so the core never pulls past one).
     */
    void
    topUp(PeId p)
    {
        PeRun& r = pe_[p];
        bool appended = false;
        while (!r.streamEnd && r.buf.size() < pullDepth_ &&
               (r.buf.empty() || !memOpLocks(r.buf.back().op))) {
            ParOp op;
            if (!src_.next(p, &op)) {
                r.streamEnd = true;
                break;
            }
            r.buf.push_back(op);
            appended = true;
        }
        // An all-local classification (nextBusValid false) covered the
        // whole buffer; appended operations fall outside it, so the
        // claim no longer holds. A classification that stopped at a bus
        // operation is unaffected by appends behind it.
        if (appended && r.probed && !r.nextBusValid)
            r.probed = false;
    }

    /**
     * (Re)classify @p p's buffer against the cache's current state:
     * count the leading private-hit prefix, stop at the first bus
     * operation. Valid until the next snoop of @p p's cache (version
     * check) or until @p p executes a bus operation of its own.
     */
    void
    classify(PeId p)
    {
        PeRun& r = pe_[p];
        r.probeVersion = sys_.cacheSnoopVersion(p);
        r.localsAhead = 0;
        r.nextBusValid = false;
        for (const ParOp& op : r.buf) {
            if (!sys_.accessIsLocal(p, op.op, op.addr, op.area)) {
                r.nextBusValid = true;
                break;
            }
            r.localsAhead += 1;
        }
        r.probed = true;
    }

    /**
     * Parallel phase for one owned PE: execute the classified
     * private-hit prefix while its keys stay below the published epoch
     * limit, then prefetch the next operations for the coming epochs.
     */
    void
    runPe(PeId p)
    {
        PeRun& r = pe_[p];
        if (r.done || sys_.parked(p))
            return;
        for (;;) {
            if (!r.probed) {
                topUp(p);
                classify(p);
            }
            while (r.localsAhead > 0 &&
                   packKey(sys_.clock(p), p) < limit_) {
                const ParOp& op = r.buf.front();
                const System::Access acc = sys_.accessLocalHit(
                    p, op.op, op.addr, op.area, op.wdata, r.refShard);
                r.fp = fpMix(r.fp, p, op, acc.data);
                r.completed += 1;
                r.localRefs += 1;
                src_.complete(p, op, acc.data);
                r.buf.pop_front();
                r.localsAhead -= 1;
            }
            if (r.localsAhead > 0 || r.nextBusValid)
                break;
            if (r.streamEnd) {
                if (r.buf.empty())
                    r.done = true;
                break;
            }
            if (packKey(sys_.clock(p), p) >= limit_)
                break;
            r.probed = false; // classified prefix drained: pull more
        }
        topUp(p); // prefetch so the leader's classify pays no pulls
    }

    /**
     * Key at which @p p next needs the serial phase: its next bus
     * operation (or re-classification point) after its known private
     * prefix. kInfKey when none is pending (done, parked, or only tail
     * locals remain).
     */
    std::uint64_t
    boundKey(PeId p) const
    {
        const PeRun& r = pe_[p];
        if (r.done || sys_.parked(p))
            return kInfKey;
        if (r.nextBusValid || !r.streamEnd) {
            return packKey(sys_.clock(p) + r.localsAhead * hit_, p);
        }
        return kInfKey; // stream ended: only private tail locals left
    }

    /**
     * Serial phase, run by the epoch leader with every other worker
     * held at the gate. Executes due bus transactions in exact
     * (clock, pe) order, inlines private runs when only one PE has
     * parallel work, and returns once at least two PEs can run
     * concurrently (publishing the epoch limit) or the run is over.
     */
    void
    leaderPhase()
    {
        if (abort_.load(std::memory_order_relaxed)) {
            phase_ = Phase::Done;
            return;
        }
        for (;;) {
            for (PeId p = 0; p < pes_; ++p) {
                PeRun& r = pe_[p];
                if (!r.done && !sys_.parked(p) && !r.probed) {
                    topUp(p);
                    classify(p);
                    if (r.streamEnd && r.buf.empty())
                        r.done = true;
                }
            }

            std::uint64_t minKey = kInfKey;
            PeId minPe = kNoPe;
            for (PeId p = 0; p < pes_; ++p) {
                const std::uint64_t k = boundKey(p);
                if (k < minKey) {
                    minKey = k;
                    minPe = p;
                }
            }

            unsigned active = 0;
            PeId soloPe = kNoPe;
            for (PeId p = 0; p < pes_; ++p) {
                const PeRun& r = pe_[p];
                if (!r.done && !sys_.parked(p) && r.localsAhead > 0 &&
                    packKey(sys_.clock(p), p) < minKey) {
                    active += 1;
                    soloPe = p;
                }
            }

            if (active >= 2) {
                limit_ = minKey;
                phase_ = Phase::Run;
                return;
            }
            if (active == 1) {
                // One runnable PE: a rendezvous would buy nothing, so
                // inline its private run. Bus-saturated stretches thus
                // never release the gate at all.
                limit_ = minKey;
                runPe(soloPe);
                continue;
            }

            if (minPe == kNoPe) {
                bool anyLeft = false;
                for (PeId p = 0; p < pes_; ++p)
                    anyLeft = anyLeft || !pe_[p].done;
                if (!anyLeft) {
                    phase_ = Phase::Done;
                    return;
                }
                src_.onStall(); // every unfinished PE is parked
                continue;
            }

            PeRun& r = pe_[minPe];
            if (!r.nextBusValid) {
                // Drained classification with pulls still possible.
                r.probed = false;
                continue;
            }
            executeEvent(minPe);
        }
    }

    /** Execute @p p's pending bus operation (leader serial phase). */
    void
    executeEvent(PeId p)
    {
        PeRun& r = pe_[p];
        PIM_ASSERT(r.localsAhead == 0 && !r.buf.empty());
        const ParOp op = r.buf.front();
        const System::Access acc =
            sys_.access(p, op.op, op.addr, op.area, op.wdata);
        serialActions_ += 1;
        if (acc.lockWait) {
            // Parked; the op stays at the buffer front for the retry
            // after the UL wakeup (no re-pull, like the legacy loop).
        } else {
            r.fp = fpMix(r.fp, p, op, acc.data);
            r.completed += 1;
            src_.complete(p, op, acc.data);
            r.buf.pop_front();
            // The transaction changed this PE's own cache (fill,
            // eviction, purge): reclassify its remaining buffer.
            r.probed = false;
        }
        // Snoops may have demoted other PEs' classified private hits
        // (never the reverse: snoops cannot fill a cache), and a UL
        // broadcast may have woken parked PEs at a new clock.
        for (PeId q = 0; q < pes_; ++q) {
            if (q != p && pe_[q].probed &&
                sys_.cacheSnoopVersion(q) != pe_[q].probeVersion) {
                pe_[q].probed = false;
            }
        }
    }

    System& sys_;
    RefSource& src_;
    const unsigned jobs_;
    const std::uint32_t pullDepth_;
    const Cycles hit_;
    const PeId pes_;
    std::vector<PeRun> pe_;
    EpochGate gate_;
    // Published by the leader before release(), read by workers after
    // arrive(): the gate's acquire/release chain orders them.
    Phase phase_ = Phase::Run;
    std::uint64_t limit_ = 0;
    std::uint64_t epochs_ = 0;
    std::uint64_t serialActions_ = 0;
    std::atomic<bool> abort_{false};
    std::mutex errMutex_;
    std::exception_ptr firstError_;
};

/**
 * Serialized-epoch mode: one inline loop in exact (clock, pe) order,
 * selecting the minimal PE *before* pulling its operation so shared-RNG
 * sources draw in precisely the legacy driver order. Bit-identical to
 * the sequential drivers for any jobs count.
 */
ParallelRunResult
runSerialized(System& sys, RefSource& src)
{
    const PeId pes = sys.numPes();
    std::vector<PeRun> pe(pes);
    std::vector<ParOp> retry(pes);
    std::vector<char> hasRetry(pes, 0);

    for (;;) {
        PeId best = kNoPe;
        bool anyLeft = false;
        for (PeId p = 0; p < pes; ++p) {
            if (pe[p].done)
                continue;
            anyLeft = true;
            if (sys.parked(p))
                continue;
            if (best == kNoPe || sys.clock(p) < sys.clock(best))
                best = p;
        }
        if (!anyLeft)
            break;
        if (best == kNoPe) {
            src.onStall();
            continue;
        }
        ParOp op;
        if (hasRetry[best]) {
            op = retry[best];
        } else if (!src.next(best, &op)) {
            pe[best].done = true;
            continue;
        }
        const System::Access acc =
            sys.access(best, op.op, op.addr, op.area, op.wdata);
        if (acc.lockWait) {
            retry[best] = op;
            hasRetry[best] = 1;
            continue;
        }
        hasRetry[best] = 0;
        pe[best].fp = fpMix(pe[best].fp, best, op, acc.data);
        pe[best].completed += 1;
        src.complete(best, op, acc.data);
    }

    ParallelRunResult out;
    out.serialized = true;
    for (PeId p = 0; p < pes; ++p) {
        out.fingerprint = mix64(out.fingerprint ^ pe[p].fp);
        out.completedRefs += pe[p].completed;
        out.serialActions += pe[p].completed;
    }
    return out;
}

} // namespace

void
RefSource::onStall()
{
    PIM_PANIC("parallel core: every unfinished PE is parked on a lock "
              "(workload deadlock)");
}

bool
parallelCoreSerialized(const System& system, const RefSource& source,
                       const ParallelCoreOptions& options)
{
    return options.jobs <= 1 || !source.independent() ||
           system.observed() || system.config().cache.hitCycles == 0 ||
           system.numPes() >= (1u << kPeKeyBits);
}

ParallelRunResult
runParallelCore(System& system, RefSource& source,
                const ParallelCoreOptions& options)
{
    if (parallelCoreSerialized(system, source, options))
        return runSerialized(system, source);
    SpmdEngine engine(system, source, options);
    return engine.run();
}

} // namespace pim
