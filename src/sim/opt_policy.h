/**
 * @file
 * Software optimization policy: which storage areas use the optimized
 * memory commands.
 *
 * The paper's Table 4 evaluates five configurations: None (no optimized
 * commands), Heap (DW in the heap area only), Goal (ER, RP and DW in the
 * goal area only), Comm (RI in the communication area only), and All.
 * The emulator always *emits* the optimized command it would like; this
 * policy demotes commands that the evaluated configuration does not
 * enable (DW -> W, ER/RP -> R, RI -> R), exactly as an unoptimized
 * compiler would have emitted plain loads and stores.
 */

#ifndef PIMCACHE_SIM_OPT_POLICY_H_
#define PIMCACHE_SIM_OPT_POLICY_H_

#include <string>

#include "trace/ref.h"

namespace pim {

/** Per-area enablement of the optimized commands. */
struct OptPolicy {
    bool heapDw = true;  ///< DW in the heap area.
    bool goalOpt = true; ///< ER, RP and DW in the goal area.
    bool commRi = true;  ///< RI in the communication area.

    /** Demote @p op as the policy requires for @p area. */
    MemOp
    apply(Area area, MemOp op) const
    {
        switch (area) {
          case Area::Heap:
            if ((op == MemOp::DW || op == MemOp::DWD) && !heapDw)
                return MemOp::W;
            return op;
          case Area::Goal:
            if (!goalOpt)
                return demoteMemOp(op);
            return op;
          case Area::Comm:
            if (op == MemOp::RI && !commRi)
                return MemOp::R;
            return op;
          default:
            // No optimized commands are defined for the other areas.
            return demoteMemOp(op);
        }
    }

    static OptPolicy none() { return {false, false, false}; }
    static OptPolicy heapOnly() { return {true, false, false}; }
    static OptPolicy goalOnly() { return {false, true, false}; }
    static OptPolicy commOnly() { return {false, false, true}; }
    static OptPolicy all() { return {true, true, true}; }

    /** The paper's column label for this policy. */
    std::string
    name() const
    {
        if (heapDw && goalOpt && commRi)
            return "All";
        if (!heapDw && !goalOpt && !commRi)
            return "None";
        if (heapDw && !goalOpt && !commRi)
            return "Heap";
        if (!heapDw && goalOpt && !commRi)
            return "Goal";
        if (!heapDw && !goalOpt && commRi)
            return "Comm";
        std::string out;
        if (heapDw)
            out += "Heap+";
        if (goalOpt)
            out += "Goal+";
        if (commRi)
            out += "Comm+";
        if (!out.empty())
            out.pop_back();
        return out;
    }
};

} // namespace pim

#endif // PIMCACHE_SIM_OPT_POLICY_H_
