#include "sim/report_json.h"

#include <fstream>
#include <sstream>

#include "common/json.h"
#include "obs/attribution.h"

namespace pim {

namespace {

double
ratio(double part, double whole)
{
    return whole == 0.0 ? 0.0 : part / whole;
}

void
writeAreas(const System& system, JsonWriter& json)
{
    const RefStats& refs = system.refStats();
    const BusStats& bus = system.bus().stats();
    json.beginObject();
    json.key("by_area");
    json.beginArray();
    for (int a = 0; a < kNumAreas; ++a) {
        const Area area = static_cast<Area>(a);
        json.beginObject();
        json.field("area", areaName(area));
        json.field("refs", refs.areaTotal(area));
        json.field("bus_cycles",
                   static_cast<std::uint64_t>(bus.cyclesByArea[a]));
        json.endObject();
    }
    json.endArray();
    json.field("total_refs", refs.total());
    json.field("total_bus_cycles",
               static_cast<std::uint64_t>(bus.totalCycles));
    json.endObject();
}

void
writeOperations(const System& system, JsonWriter& json)
{
    const RefStats& refs = system.refStats();
    json.beginObject();
    json.key("by_op");
    json.beginArray();
    for (int o = 0; o < kNumMemOps; ++o) {
        const MemOp op = static_cast<MemOp>(o);
        const std::uint64_t count = refs.opTotal(op);
        if (count == 0)
            continue;
        json.beginObject();
        json.field("op", memOpName(op));
        json.field("count", count);
        json.field("data_count", count - refs.count(Area::Instruction, op));
        json.endObject();
    }
    json.endArray();
    json.field("total", refs.total());
    json.field("data_total", refs.dataTotal());
    json.endObject();
}

void
writeBusPatterns(const System& system, JsonWriter& json)
{
    const BusStats& bus = system.bus().stats();
    json.beginObject();
    json.key("by_pattern");
    json.beginArray();
    for (int p = 0; p < kNumBusPatterns; ++p) {
        if (bus.transByPattern[p] == 0)
            continue;
        json.beginObject();
        json.field("pattern", busPatternName(static_cast<BusPattern>(p)));
        json.field("transactions", bus.transByPattern[p]);
        json.field("cycles",
                   static_cast<std::uint64_t>(bus.cyclesByPattern[p]));
        json.endObject();
    }
    json.endArray();
    json.field("total_cycles", static_cast<std::uint64_t>(bus.totalCycles));
    json.endObject();
}

void
writeCacheSummary(const System& system, JsonWriter& json)
{
    const CacheStats cache = system.totalCacheStats();
    const BusStats& bus = system.bus().stats();
    json.beginObject();
    json.field("accesses", cache.accesses);
    json.field("misses", cache.misses);
    json.field("miss_ratio", cache.missRatio());
    json.field("evictions", cache.evictions);
    json.field("swap_outs", cache.swapOuts);
    json.field("dw_alloc_no_fetch", cache.dwAllocNoFetch);
    json.field("dw_demoted", cache.dwDemoted);
    json.field("er_as_ri", cache.erAsRi);
    json.field("er_as_rp", cache.erAsRp);
    json.field("purges", cache.purges);
    json.field("memory_busy_cycles",
               static_cast<std::uint64_t>(bus.memoryBusyCycles));
    json.field("memory_reads", bus.memoryReads);
    json.field("memory_writes", bus.memoryWrites);
    json.field("stale_fetches", bus.staleFetches);
    json.endObject();
}

void
writeLocks(const System& system, JsonWriter& json)
{
    const CacheStats cache = system.totalCacheStats();
    const BusStats& bus = system.bus().stats();
    json.beginObject();
    json.field("lr_count", cache.lrCount);
    json.field("lr_hit_ratio",
               ratio(static_cast<double>(cache.lrHit),
                     static_cast<double>(cache.lrCount)));
    json.field("lr_hit_exclusive_ratio",
               ratio(static_cast<double>(cache.lrHitExclusive),
                     static_cast<double>(cache.lrCount)));
    json.field("lr_lock_waits", cache.lrLockWaits);
    json.field("unlocks", cache.unlockCount);
    json.field("unlock_no_waiter_ratio",
               ratio(static_cast<double>(cache.unlockNoWaiter),
                     static_cast<double>(cache.unlockCount)));
    json.field("ul_broadcasts",
               bus.cmdCounts[static_cast<int>(BusCmd::UL)]);
    json.endObject();
}

} // namespace

void
reportAllJson(const System& system, JsonWriter& json,
              const AttributionEngine* attribution)
{
    json.beginObject();
    json.field("num_pes", static_cast<std::uint64_t>(system.numPes()));
    json.field("makespan", static_cast<std::uint64_t>(system.makespan()));
    json.key("areas");
    writeAreas(system, json);
    json.key("operations");
    writeOperations(system, json);
    json.key("bus_patterns");
    writeBusPatterns(system, json);
    json.key("cache_summary");
    writeCacheSummary(system, json);
    json.key("locks");
    writeLocks(system, json);
    if (attribution != nullptr) {
        json.key("attribution");
        attribution->writeJson(json, system.bus().stats());
    }
    json.endObject();
}

std::string
reportAllJson(const System& system, const AttributionEngine* attribution)
{
    std::ostringstream os;
    JsonWriter json(os, /*pretty=*/true);
    reportAllJson(system, json, attribution);
    os << "\n";
    return os.str();
}

bool
reportAllJsonFile(const System& system, const std::string& path,
                  const AttributionEngine* attribution)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << reportAllJson(system, attribution);
    return out.good();
}

} // namespace pim
