/**
 * @file
 * Deterministic per-PE workload for the parallel discrete-event core.
 *
 * Each PE owns an independent xoshiro256** stream (seeded per PE), a
 * private working set sized to fit its cache, and a small probability
 * of touching the shared region or the lock words — the independence
 * structure the paper's PEs exhibit between bus transactions, distilled
 * into a generator the parallel core can pull concurrently
 * (RefSource::independent() == true). Used by pim_perf --par-jobs for
 * the sequential-vs-parallel measurement and by pim_conform --par-fuzz
 * for jobs-invariance fuzzing (including lock and optimized-command
 * mixes on clustered topologies).
 */

#ifndef PIMCACHE_SIM_PAR_WORKLOAD_H_
#define PIMCACHE_SIM_PAR_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/parallel_core.h"

namespace pim {

/** Shape of the per-PE parallel workload. */
struct ParShape {
    /** References generated per PE (lock releases may add a tail). */
    std::uint64_t stepsPerPe = 4096;
    /** Shared region size in words (contended R/W + RI). */
    std::uint32_t sharedWords = 4096;
    /** Per-PE private region size in words (sized to fit the cache). */
    std::uint32_t privateWords = 2048;
    /** Lock words (their own blocks, separate from data regions). */
    std::uint32_t lockWords = 8;
    /** Percent of references into the shared region. */
    std::uint32_t sharedPct = 2;
    /** Percent of data references that write. */
    std::uint32_t writePct = 30;
    /** Percent chance to acquire a lock when holding none. */
    std::uint32_t lockPct = 0;
    /** Percent of private references using DW/DWD/ER/RP. */
    std::uint32_t optPct = 0;
    /** Workload seed (per-PE streams derive from it). */
    std::uint64_t seed = 1;
};

/**
 * RefSource over independent per-PE streams (see file comment).
 *
 * Deadlock-free by construction: a PE acquires a lock only while
 * holding none, so a parked PE never blocks another, and a PE whose
 * stream ends releases its held lock before reporting exhaustion.
 */
class ParWorkloadSource : public RefSource
{
  public:
    ParWorkloadSource(const ParShape& shape, PeId pes,
                      std::uint32_t block_words);

    /** Words of shared memory the workload's address map requires. */
    std::uint64_t memoryWords() const;

    bool next(PeId pe, ParOp* out) override;
    void complete(PeId pe, const ParOp& op, Word data) override;

  private:
    struct PeState {
        Rng rng{0};
        std::uint64_t issued = 0;
        Addr held = kNoAddr; ///< Lock word this PE holds (kNoAddr: none).
    };

    Addr privateBase(PeId pe) const;

    ParShape shape_;
    std::uint32_t blockWords_;
    Addr lockBase_ = 0;
    Addr privBase_ = 0;
    std::vector<PeState> pes_;
};

} // namespace pim

#endif // PIMCACHE_SIM_PAR_WORKLOAD_H_
