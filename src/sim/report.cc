#include "sim/report.h"

#include <sstream>

#include "common/strutil.h"

namespace pim {

namespace {

double
pct(double part, double whole)
{
    return whole == 0.0 ? 0.0 : 100.0 * part / whole;
}

} // namespace

Table
reportAreas(const System& system)
{
    const RefStats& refs = system.refStats();
    const BusStats& bus = system.bus().stats();
    Table table("references and bus cycles by area");
    table.setHeader({"area", "refs", "refs %", "bus cycles", "bus %"});
    const double total_refs = static_cast<double>(refs.total());
    const double total_bus = static_cast<double>(bus.totalCycles);
    for (int a = 0; a < kNumAreas; ++a) {
        const Area area = static_cast<Area>(a);
        table.addRow({areaName(area), fmtCount(refs.areaTotal(area)),
                      fmtFixed(pct(static_cast<double>(
                                       refs.areaTotal(area)),
                                   total_refs), 2),
                      fmtCount(bus.cyclesByArea[a]),
                      fmtFixed(pct(static_cast<double>(
                                       bus.cyclesByArea[a]),
                                   total_bus), 2)});
    }
    table.addRule();
    table.addRow({"total", fmtCount(refs.total()), "100.00",
                  fmtCount(bus.totalCycles), "100.00"});
    return table;
}

Table
reportOperations(const System& system)
{
    const RefStats& refs = system.refStats();
    Table table("references by operation");
    table.setHeader({"op", "count", "% of all", "% of data"});
    const double total = static_cast<double>(refs.total());
    const double data = static_cast<double>(refs.dataTotal());
    for (int o = 0; o < kNumMemOps; ++o) {
        const MemOp op = static_cast<MemOp>(o);
        const std::uint64_t count = refs.opTotal(op);
        if (count == 0)
            continue;
        const std::uint64_t inst =
            refs.count(Area::Instruction, op);
        table.addRow({memOpName(op), fmtCount(count),
                      fmtFixed(pct(static_cast<double>(count), total), 2),
                      fmtFixed(pct(static_cast<double>(count - inst),
                                   data), 2)});
    }
    return table;
}

Table
reportBusPatterns(const System& system)
{
    const BusStats& bus = system.bus().stats();
    Table table("bus transactions by pattern");
    table.setHeader({"pattern", "transactions", "cycles", "cycles %"});
    const double total = static_cast<double>(bus.totalCycles);
    for (int p = 0; p < kNumBusPatterns; ++p) {
        if (bus.transByPattern[p] == 0)
            continue;
        table.addRow({busPatternName(static_cast<BusPattern>(p)),
                      fmtCount(bus.transByPattern[p]),
                      fmtCount(bus.cyclesByPattern[p]),
                      fmtFixed(pct(static_cast<double>(
                                       bus.cyclesByPattern[p]),
                                   total), 2)});
    }
    return table;
}

Table
reportCacheSummary(const System& system)
{
    const CacheStats cache = system.totalCacheStats();
    const BusStats& bus = system.bus().stats();
    Table table("cache summary (all PEs)");
    table.setHeader({"metric", "value"});
    table.addRow({"accesses", fmtCount(cache.accesses)});
    table.addRow({"misses", fmtCount(cache.misses)});
    table.addRow({"miss ratio %", fmtFixed(cache.missRatio() * 100, 2)});
    table.addRow({"evictions", fmtCount(cache.evictions)});
    table.addRow({"swap-outs", fmtCount(cache.swapOuts)});
    table.addRow({"DW no-fetch allocations",
                  fmtCount(cache.dwAllocNoFetch)});
    table.addRow({"DW demoted to W", fmtCount(cache.dwDemoted)});
    table.addRow({"ER as read-invalidate", fmtCount(cache.erAsRi)});
    table.addRow({"ER as read-purge", fmtCount(cache.erAsRp)});
    table.addRow({"purges (no copy-back)", fmtCount(cache.purges)});
    table.addRow({"memory busy cycles",
                  fmtCount(bus.memoryBusyCycles)});
    table.addRow({"memory reads/writes",
                  fmtCount(bus.memoryReads) + " / " +
                      fmtCount(bus.memoryWrites)});
    table.addRow({"stale fetches (contract)",
                  fmtCount(bus.staleFetches)});
    return table;
}

Table
reportLocks(const System& system)
{
    const CacheStats cache = system.totalCacheStats();
    const BusStats& bus = system.bus().stats();
    Table table("lock protocol");
    table.setHeader({"metric", "value"});
    table.addRow({"LR operations", fmtCount(cache.lrCount)});
    table.addRow(
        {"LR hit ratio",
         fmtFixed(cache.lrCount == 0
                      ? 0.0
                      : static_cast<double>(cache.lrHit) /
                            static_cast<double>(cache.lrCount),
                  3)});
    table.addRow(
        {"LR hit-to-exclusive (zero bus)",
         fmtFixed(cache.lrCount == 0
                      ? 0.0
                      : static_cast<double>(cache.lrHitExclusive) /
                            static_cast<double>(cache.lrCount),
                  3)});
    table.addRow({"LR lock-waits (LH)", fmtCount(cache.lrLockWaits)});
    table.addRow({"unlocks", fmtCount(cache.unlockCount)});
    table.addRow(
        {"unlock-to-no-waiter (zero bus)",
         fmtFixed(cache.unlockCount == 0
                      ? 0.0
                      : static_cast<double>(cache.unlockNoWaiter) /
                            static_cast<double>(cache.unlockCount),
                  3)});
    table.addRow({"UL broadcasts",
                  fmtCount(bus.cmdCounts[static_cast<int>(BusCmd::UL)])});
    return table;
}

std::string
reportAll(const System& system)
{
    std::ostringstream os;
    reportAreas(system).print(os);
    os << "\n";
    reportOperations(system).print(os);
    os << "\n";
    reportBusPatterns(system).print(os);
    os << "\n";
    reportCacheSummary(system).print(os);
    os << "\n";
    reportLocks(system).print(os);
    return os.str();
}

} // namespace pim
