/**
 * @file
 * Machine-readable counterparts of the sim/report.h ASCII tables.
 *
 * reportAllJson serializes the same numbers the five standard reports
 * print — references and bus cycles by area, references by operation,
 * bus patterns, cache and lock summaries — as one JSON document, with
 * raw counts instead of formatted strings so downstream tooling never
 * re-parses table text. Ratios that the ASCII tables round (miss ratio,
 * LR hit ratio) are emitted unrounded.
 */

#ifndef PIMCACHE_SIM_REPORT_JSON_H_
#define PIMCACHE_SIM_REPORT_JSON_H_

#include <ostream>
#include <string>

#include "sim/system.h"

namespace pim {

class AttributionEngine;
class JsonWriter;

/**
 * Write all five standard reports as one JSON object to @p json. When
 * @p attribution is non-null an "attribution" section (miss classes,
 * bus-cycle buckets, heat tables) is appended; the default document is
 * byte-identical to before the attribution engine existed.
 */
void reportAllJson(const System& system, JsonWriter& json,
                   const AttributionEngine* attribution = nullptr);

/** reportAllJson as a pretty-printed document string. */
std::string reportAllJson(const System& system,
                          const AttributionEngine* attribution = nullptr);

/** reportAllJson to @p path. @return false if the file cannot open. */
bool reportAllJsonFile(const System& system, const std::string& path,
                       const AttributionEngine* attribution = nullptr);

} // namespace pim

#endif // PIMCACHE_SIM_REPORT_JSON_H_
