/**
 * @file
 * Standard statistic reports over a System: the breakdowns the paper's
 * tables use (references and bus cycles by area, references by
 * operation, bus transaction patterns, cache/lock summaries), rendered
 * as ASCII tables. Shared by the CLI tools and available to library
 * users.
 */

#ifndef PIMCACHE_SIM_REPORT_H_
#define PIMCACHE_SIM_REPORT_H_

#include <string>

#include "common/table.h"
#include "sim/system.h"

namespace pim {

/** References and bus cycles split over the five storage areas. */
Table reportAreas(const System& system);

/** References split by operation (raw, and demoted as in Table 3). */
Table reportOperations(const System& system);

/** Bus transactions and cycles by pattern (swap-in, c2c, ...). */
Table reportBusPatterns(const System& system);

/** Cache hit/miss, replacement and optimized-command summary. */
Table reportCacheSummary(const System& system);

/** Lock-protocol summary (the Table 5 ratios). */
Table reportLocks(const System& system);

/** All of the above concatenated, ready to print. */
std::string reportAll(const System& system);

} // namespace pim

#endif // PIMCACHE_SIM_REPORT_H_
