#include "sim/par_workload.h"

#include "common/xassert.h"

namespace pim {

namespace {

/** Round @p v up to a multiple of @p align (a power of two). */
Addr
roundUp(Addr v, Addr align)
{
    return (v + align - 1) & ~(align - 1);
}

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

ParWorkloadSource::ParWorkloadSource(const ParShape& shape, PeId pes,
                                     std::uint32_t block_words)
    : shape_(shape), blockWords_(block_words), pes_(pes)
{
    PIM_ASSERT(pes >= 1);
    PIM_ASSERT(shape_.sharedWords >= 1 && shape_.privateWords >= 1);
    PIM_ASSERT(shape_.privateWords % block_words == 0,
               "private region must be block-aligned");
    PIM_ASSERT(shape_.lockWords >= 1 || shape_.lockPct == 0);
    // Region boundaries on 64-word alignment so no block straddles two
    // regions for any supported geometry (blockWords <= 64).
    lockBase_ = roundUp(shape_.sharedWords, 64);
    privBase_ = roundUp(lockBase_ + shape_.lockWords, 64);
    for (PeId pe = 0; pe < pes; ++pe)
        pes_[pe].rng = Rng(mix64(shape_.seed) ^ mix64(pe + 1));
}

std::uint64_t
ParWorkloadSource::memoryWords() const
{
    const Addr top =
        privBase_ +
        static_cast<Addr>(pes_.size()) * shape_.privateWords;
    return roundUp(top, 64);
}

Addr
ParWorkloadSource::privateBase(PeId pe) const
{
    return privBase_ + static_cast<Addr>(pe) * shape_.privateWords;
}

bool
ParWorkloadSource::next(PeId pe, ParOp* out)
{
    PeState& st = pes_[pe];
    if (st.issued >= shape_.stepsPerPe) {
        // Drain: release a held lock before ending the stream, so no
        // waiter is left parked forever.
        if (st.held == kNoAddr)
            return false;
        out->op = MemOp::U;
        out->addr = st.held;
        out->area = Area::Heap;
        out->wdata = 0;
        return true;
    }
    st.issued += 1;
    Rng& g = st.rng;

    if (st.held != kNoAddr) {
        // Hold locks for a few references, then release (UW writes the
        // guarded word on the way out half the time).
        if (g.chance(1, 4)) {
            out->op = g.chance(1, 2) ? MemOp::UW : MemOp::U;
            out->addr = st.held;
            out->area = Area::Heap;
            out->wdata = g.next();
            return true;
        }
    } else if (shape_.lockPct != 0 && g.chance(shape_.lockPct, 100)) {
        out->op = MemOp::LR;
        out->addr = lockBase_ + g.below(shape_.lockWords);
        out->area = Area::Heap;
        out->wdata = 0;
        return true;
    }

    if (g.chance(shape_.sharedPct, 100)) {
        // Shared-region reference: the contended traffic that becomes
        // the run's bus transactions (plus an occasional RI taking
        // exclusive ownership, the paper's communication-area command).
        out->addr = g.below(shape_.sharedWords);
        out->area = Area::Comm;
        if (shape_.optPct != 0 && g.chance(shape_.optPct, 100)) {
            out->op = MemOp::RI;
        } else {
            out->op = g.chance(shape_.writePct, 100) ? MemOp::W
                                                     : MemOp::R;
        }
        out->wdata = memOpWrites(out->op) ? g.next() : 0;
        return true;
    }

    // Private reference (hits once warm; the parallel core's payload).
    const Addr base = privateBase(pe);
    const Addr addr = base + g.below(shape_.privateWords);
    if (shape_.optPct != 0 && g.chance(shape_.optPct, 100)) {
        switch (g.below(4)) {
          case 0: // DW at a block's first word (heap allocation)
            out->op = MemOp::DW;
            out->addr = addr - addr % blockWords_;
            out->area = Area::Heap;
            break;
          case 1: // DWD at a block's last word (downward stack)
            out->op = MemOp::DWD;
            out->addr = addr - addr % blockWords_ + blockWords_ - 1;
            out->area = Area::Heap;
            break;
          case 2: // ER (goal-area consume)
            out->op = MemOp::ER;
            out->addr = addr;
            out->area = Area::Goal;
            break;
          default: // RP (goal-area read-purge)
            out->op = MemOp::RP;
            out->addr = addr;
            out->area = Area::Goal;
            break;
        }
        out->wdata = memOpWrites(out->op) ? g.next() : 0;
        return true;
    }
    out->op = g.chance(shape_.writePct, 100) ? MemOp::W : MemOp::R;
    out->addr = addr;
    out->area = Area::Heap;
    out->wdata = memOpWrites(out->op) ? g.next() : 0;
    return true;
}

void
ParWorkloadSource::complete(PeId pe, const ParOp& op, Word data)
{
    (void)data;
    PeState& st = pes_[pe];
    if (op.op == MemOp::LR) {
        PIM_ASSERT(st.held == kNoAddr);
        st.held = op.addr;
    } else if (op.op == MemOp::UW || op.op == MemOp::U) {
        PIM_ASSERT(st.held == op.addr);
        st.held = kNoAddr;
    }
}

} // namespace pim
