#include "sim/stress.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "common/rng.h"
#include "common/strutil.h"
#include "common/thread_pool.h"
#include "fault/fault_injector.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "sim/parallel_core.h"
#include "sim/system.h"
#include "trace/trace_file.h"
#include "verify/coherence_auditor.h"

namespace pim {

namespace {

/** Fingerprint mixer (splitmix64 finalizer over a running hash). */
std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    std::uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** One PE's driver state. */
struct PeState {
    std::deque<Addr> heldLocks; ///< Acquired lock words, oldest first.
};

/**
 * The stress workload as a parallel-core RefSource. Every random
 * decision draws from ONE shared RNG in global simulation order, so
 * independent() is false and the core runs its serialized-epoch mode:
 * next() is called for the (clock, pe)-minimal PE only after selecting
 * it, reproducing the legacy drive loop bit for bit. Lock-rejected
 * operations are retried by the core without a new pull, exactly like
 * the legacy retry slots.
 *
 * Two phases, switched on the global completion counter just as the
 * legacy loop switched between its main and drain loops: the main phase
 * generates traffic until config.steps references completed; the drain
 * phase releases held locks (plain U, no RNG draws) and ends each PE's
 * stream, so every parked PE is woken before teardown. The run
 * fingerprint covers exactly the main-phase completions.
 */
class GlobalStressSource : public RefSource
{
  public:
    GlobalStressSource(const StressConfig& config, const System& system,
                       LockWatchdog& watchdog, Addr span, Addr lock_base,
                       std::uint32_t lock_words, Addr rec_base)
        : config_(config),
          system_(system),
          watchdog_(watchdog),
          span_(span),
          lockBase_(lock_base),
          lockWords_(lock_words),
          rng_(config.seed),
          pes_(config.numPes),
          nextRecord_(rec_base)
    {
    }

    std::uint64_t completedRefs() const { return completed_; }
    std::uint64_t fingerprint() const { return fingerprint_; }

    bool
    next(PeId pe, ParOp* out) override
    {
        PeState& state = pes_[pe];
        out->area = Area::Heap;
        out->wdata = 0;
        if (completed_ >= config_.steps) {
            // Drain phase: release held locks, then end the stream.
            if (state.heldLocks.empty())
                return false;
            out->op = MemOp::U;
            out->addr = state.heldLocks.front();
            return true;
        }
        const std::uint64_t roll = rng_.below(100);
        if (roll < config_.lockPct) {
            // Acquirable words: lock words this PE does not hold.
            std::vector<Addr> candidates;
            if (state.heldLocks.size() <
                system_.config().cache.lockEntries) {
                for (std::uint32_t w = 0; w < lockWords_; ++w) {
                    const Addr word = lockBase_ + w;
                    if (std::find(state.heldLocks.begin(),
                                  state.heldLocks.end(),
                                  word) == state.heldLocks.end()) {
                        candidates.push_back(word);
                    }
                }
            }
            if (candidates.empty() ||
                (!state.heldLocks.empty() && rng_.chance(1, 2))) {
                out->addr = state.heldLocks.front();
                if (rng_.chance(1, 2)) {
                    out->op = MemOp::UW;
                    out->wdata = rng_.next();
                } else {
                    out->op = MemOp::U;
                }
            } else {
                out->op = MemOp::LR;
                out->addr = candidates[rng_.below(candidates.size())];
            }
        } else if (roll < config_.lockPct + config_.optPct) {
            if (!records_.empty() && rng_.chance(1, 2)) {
                out->addr = records_.front();
                records_.pop_front();
                // ER of a non-last word read-invalidates the
                // producer; RP reads then purges.
                out->op = rng_.chance(1, 2) ? MemOp::ER : MemOp::RP;
            } else {
                out->op = MemOp::DW;
                out->addr = nextRecord_;
                nextRecord_ += config_.blockWords;
                out->wdata = rng_.next();
            }
        } else {
            out->addr = rng_.below(span_);
            if (rng_.chance(config_.writePct, 100)) {
                out->op = MemOp::W;
                out->wdata = rng_.next();
            } else {
                out->op = MemOp::R;
            }
        }
        return true;
    }

    void
    complete(PeId pe, const ParOp& op, Word data) override
    {
        PeState& state = pes_[pe];
        if (op.op == MemOp::LR)
            state.heldLocks.push_back(op.addr);
        else if (op.op == MemOp::UW || op.op == MemOp::U)
            state.heldLocks.pop_front();
        if (op.op == MemOp::DW)
            records_.push_back(op.addr);
        if (completed_ < config_.steps) {
            fingerprint_ = mix(fingerprint_,
                               (static_cast<std::uint64_t>(pe) << 8) |
                                   static_cast<std::uint64_t>(op.op));
            fingerprint_ = mix(fingerprint_, op.addr);
            fingerprint_ = mix(fingerprint_, data);
        }
        completed_ += 1;
    }

    bool independent() const override { return false; }

    void onStall() override { watchdog_.reportStall(); }

  private:
    const StressConfig& config_;
    const System& system_;
    LockWatchdog& watchdog_;
    const Addr span_;
    const Addr lockBase_;
    const std::uint32_t lockWords_;
    Rng rng_; ///< The one shared stream, drawn in global order.
    std::vector<PeState> pes_;
    std::deque<Addr> records_; ///< Produced, not yet consumed records.
    Addr nextRecord_;
    std::uint64_t completed_ = 0;
    std::uint64_t fingerprint_ = 0;
};

} // namespace

std::string
StressConfig::geometryString() const
{
    std::ostringstream out;
    out << blockWords << "x" << ways << "x" << sets;
    return out.str();
}

void
StressConfig::setGeometry(const std::string& spec)
{
    const std::vector<std::string> parts = splitString(spec, 'x');
    std::uint64_t values[3];
    if (parts.size() == 3) {
        bool ok = true;
        for (int i = 0; i < 3; ++i) {
            try {
                values[i] = std::stoull(parts[i]);
            } catch (const std::exception&) {
                ok = false;
            }
        }
        if (ok) {
            blockWords = static_cast<std::uint32_t>(values[0]);
            ways = static_cast<std::uint32_t>(values[1]);
            sets = static_cast<std::uint32_t>(values[2]);
            return;
        }
    }
    throw PIM_SIM_FAULT(SimFaultKind::Config, "bad geometry '", spec,
                        "'; expected BLOCKxWAYSxSETS, e.g. 4x2x64");
}

std::string
StressConfig::replayLine() const
{
    std::ostringstream out;
    out << "pim_stress --replay"
        << " --seed=" << seed
        << " --pes=" << numPes
        << " --geometry=" << geometryString()
        << " --steps=" << steps
        << " --span=" << spanWords
        << " --write-pct=" << writePct
        << " --lock-pct=" << lockPct
        << " --opt-pct=" << optPct
        << " --starvation-bound=" << watchdog.starvationBound
        << " --livelock-retries=" << watchdog.livelockRetries;
    if (!planSpec.empty())
        out << " --plan=" << planSpec;
    if (!audit)
        out << " --no-audit";
    if (!snoopFilter)
        out << " --no-snoop-filter";
    if (clusterSize != 0)
        out << " --cluster-size=" << clusterSize
            << " --hop-cycles=" << hopCycles;
    return out.str();
}

StressResult
runStress(const StressConfig& config)
{
    StressResult result;

    // Address map (word addresses): [0, span) shared read/write region;
    // [lockBase, lockBase+lockWords) contended lock words; [recBase, ...)
    // bump-allocated single-use records for the DW -> ER/RP flow.
    const std::uint64_t block = config.blockWords;
    const Addr span =
        std::max<Addr>(block, config.spanWords / block * block);
    const Addr lock_base = span;
    const std::uint32_t lock_words =
        std::max<std::uint32_t>(1, config.numPes / 2);
    const Addr rec_base = (lock_base + lock_words + block - 1) / block * block;
    const std::uint64_t max_records = config.steps + 1;

    SystemConfig sys_config;
    sys_config.numPes = config.numPes;
    sys_config.cache.geometry.blockWords = config.blockWords;
    sys_config.cache.geometry.ways = config.ways;
    sys_config.cache.geometry.sets = config.sets;
    sys_config.memoryWords =
        (rec_base + (max_records + 1) * block + block - 1) / block * block;
    sys_config.snoopFilter = config.snoopFilter;
    sys_config.cluster.clusterSize = config.clusterSize;
    sys_config.cluster.hopCycles = config.hopCycles;
    sys_config.validate();

    const FaultPlan plan = FaultPlan::parse(config.planSpec);
    FaultInjector injector(plan, config.seed);

    System system(sys_config);
    system.setFaultInjector(plan.empty() ? nullptr : &injector);

    // Bounded execution: the guard is polled on every access, so a
    // livelocked or pathologically slow run raises SimFault(Timeout)
    // into the catch below instead of wedging the caller's worker.
    RunGuard guard(config.timeoutSeconds > 0
                       ? Deadline::afterSeconds(config.timeoutSeconds)
                       : Deadline::never(),
                   config.cancel);
    if (config.timeoutSeconds > 0 || config.cancel != nullptr)
        system.setRunGuard(&guard);

    CoherenceAuditor auditor(system);
    if (config.audit)
        system.addAccessObserver(&auditor);
    LockWatchdog watchdog(system, config.watchdog);
    system.addAccessObserver(&watchdog);

    // Observability: the metrics registry always rides along (it is the
    // event-hook cross-check below); the timeline recorder only when a
    // dump could be wanted (it records every event individually).
    MetricsRegistry metrics;
    system.addEventSink(&metrics);
    // The attribution engine always rides along too: its bucket-sum
    // cross-check below is the cycle-level sibling of the transaction
    // count check, and must hold on every run, not only when a dump was
    // requested.
    AttributionEngine attribution(config.numPes, sys_config.timing,
                                  config.blockWords,
                                  config.ways * config.sets);
    system.addEventSink(&attribution);
    TimelineRecorder timeline;
    const bool want_timeline =
        !config.timelineOut.empty() || !config.traceOut.empty();
    if (want_timeline)
        system.addEventSink(&timeline);

    std::vector<MemRef> trace;
    trace.reserve(std::min<std::uint64_t>(config.steps, 1u << 20));
    system.setRefObserver([&trace](const MemRef& ref) {
        trace.push_back(ref);
    });

    GlobalStressSource source(config, system, watchdog, span, lock_base,
                              lock_words, rec_base);

    try {
        // Drive the run through the parallel core. The stress System is
        // observed and the source shares one RNG, so this is always the
        // serialized-epoch path — bit-identical for any parJobs, with
        // fault sites firing at (per-operation) epoch boundaries.
        ParallelCoreOptions core_options;
        core_options.jobs = std::max<std::uint32_t>(1, config.parJobs);
        const ParallelRunResult core =
            runParallelCore(system, source, core_options);
        result.coreSerialized = core.serialized;
        result.completedRefs = source.completedRefs();
        result.fingerprint = source.fingerprint();

        if (config.audit)
            auditor.auditFull();

        // Event-hook cross-check: every bus transaction the stats counted
        // must have been reported to the event sinks exactly once. A
        // mismatch means an emission site was missed (or fired twice) —
        // the observability layer is lying about the run.
        std::uint64_t trans_by_stats = 0;
        for (int p = 0; p < kNumBusPatterns; ++p)
            trans_by_stats += system.bus().stats().transByPattern[p];
        const std::uint64_t trans_by_events =
            metrics.counter("bus.transactions");
        if (trans_by_events != trans_by_stats) {
            throw PIM_SIM_FAULT(
                SimFaultKind::Protocol, "event-hook cross-check: BusStats "
                "counted ", trans_by_stats, " transactions but the event "
                "sink observed ", trans_by_events);
        }

        // Attribution cross-check (the cycle-level sibling): every bus
        // cycle must land in exactly one cause bucket, and every miss in
        // exactly one class. A mismatch means the attribution engine
        // misread the event stream — its reports would be lying.
        const std::string attr_error =
            attribution.crossCheck(system.bus().stats());
        if (!attr_error.empty()) {
            throw PIM_SIM_FAULT(SimFaultKind::Protocol,
                                "attribution cross-check: ", attr_error);
        }
        const std::uint64_t cache_misses = system.totalCacheStats().misses;
        if (attribution.classifiedMisses() != cache_misses) {
            throw PIM_SIM_FAULT(
                SimFaultKind::Protocol, "attribution cross-check: caches "
                "counted ", cache_misses, " misses but the engine "
                "classified ", attribution.classifiedMisses());
        }
    } catch (const SimFault& fault) {
        result.failed = true;
        result.kind = fault.kind();
        result.message = fault.message();
        result.replayLine = config.replayLine();
        result.completedRefs = source.completedRefs();
        result.fingerprint = source.fingerprint();
        system.abandonParkedWaiters();
        if (!config.traceOut.empty()) {
            TraceWriter writer(config.traceOut, config.numPes);
            for (const MemRef& ref : trace)
                writer.append(ref);
            writer.close();
            result.traceRecords = writer.recordsWritten();
        }
    }

    if (want_timeline && (!config.timelineOut.empty() || result.failed)) {
        // Timeline lands where asked, or next to the failure PIMTRACE.
        std::string path = config.timelineOut;
        if (path.empty())
            path = config.traceOut + ".timeline.json";
        result.timelineEvents = timeline.eventCount();
        if (timeline.writeFile(path))
            result.timelinePath = path;
    }

    result.classifiedMisses = attribution.classifiedMisses();
    if (!config.attributionOut.empty() &&
        attribution.writeFile(config.attributionOut, system.bus().stats())) {
        result.attributionPath = config.attributionOut;
    }

    result.auditChecks = auditor.checksRun();
    result.makespan = system.makespan();
    result.injectorSummary = injector.summary();
    result.injectorFires = injector.totalFires();
    return result;
}

std::vector<StressResult>
runStressBatch(const StressConfig& base, std::uint32_t count, unsigned jobs)
{
    std::vector<StressResult> results(count);
    ThreadPool pool(jobs);
    for (std::uint32_t i = 0; i < count; ++i) {
        pool.submit([&base, &results, i] {
            StressConfig config = base;
            config.seed = base.seed + i;
            const std::string suffix =
                ".seed" + std::to_string(config.seed);
            if (!config.traceOut.empty())
                config.traceOut += suffix;
            if (!config.timelineOut.empty())
                config.timelineOut += suffix;
            if (!config.attributionOut.empty())
                config.attributionOut += suffix;
            results[i] = runStress(config);
        });
    }
    pool.wait();
    return results;
}

} // namespace pim
