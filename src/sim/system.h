/**
 * @file
 * The multiprocessor system model: N PEs with private PIM caches and lock
 * directories on one common bus in front of shared memory.
 *
 * Drivers (the KL1 emulator, trace replay) issue memory operations per PE
 * through System::access. Each PE has a local clock; drivers are expected
 * to step the PE with the smallest clock so bus requests are served in
 * global time order — the paper's "cache simulators artificially
 * synchronize at each simulated bus request".
 *
 * Busy-wait locking: an access inhibited by a remote lock (LH) parks the
 * PE on the block; the UL broadcast wakes it and the driver retries the
 * operation (the bus is idle during the wait, as in the paper).
 */

#ifndef PIMCACHE_SIM_SYSTEM_H_
#define PIMCACHE_SIM_SYSTEM_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bus/bus.h"
#include "cache/pim_cache.h"
#include "common/deadline.h"
#include "mem/paged_store.h"
#include "obs/event_sink.h"
#include "sim/opt_policy.h"
#include "trace/ref.h"
#include "trace/ref_stats.h"

namespace pim {

/** Construction parameters for a System. */
struct SystemConfig {
    std::uint32_t numPes = 8;
    CacheConfig cache;
    BusTiming timing;
    OptPolicy policy = OptPolicy::all();
    std::uint64_t memoryWords = 1ull << 26;
    /**
     * Exact bus-side snoop filter (docs/PERFORMANCE.md). Protocol
     * outcomes, statistics and timing are identical either way; off
     * reproduces the pre-filter broadcast for A/B measurement.
     */
    bool snoopFilter = true;
    /**
     * Clustered snooping-bus topology (docs/ARCHITECTURE.md). The
     * default (clusterSize 0) keeps the paper's single shared bus;
     * clusterSize > 0 partitions the PEs into per-cluster buses joined
     * by an interconnect whose crossings cost cluster.hopCycles each
     * way. Protocol outcomes are identical on every topology — only
     * timing changes.
     */
    ClusterConfig cluster;

    /**
     * Check the configuration for construction-time errors (zero PEs,
     * non-power-of-two geometry, memory not covering a block, ...).
     * @throws SimFault (Config) with a descriptive message.
     */
    void validate() const;

    /**
     * validate(), plus: the shared memory must cover @p required_words
     * (e.g. Layout::totalWords() when driving a KL1 address-space map).
     */
    void validate(std::uint64_t required_words) const;
};

/**
 * Observer of every memory operation a System executes. Used by the
 * coherence auditor and the lock watchdog; both hooks default to no-ops.
 * Observers may throw SimFault out of System::access.
 */
class AccessObserver
{
  public:
    virtual ~AccessObserver() = default;

    /** Before the cache sees the (post-policy) operation. */
    virtual void
    beforeAccess(PeId pe, MemOp op, Addr addr, Area area)
    {
        (void)pe; (void)op; (void)addr; (void)area;
    }

    /**
     * After the operation finished or lock-waited. @p data is the value
     * read (reading operations), @p wdata the value written (writing
     * operations), @p lock_wait whether the PE parked instead.
     */
    virtual void
    afterAccess(PeId pe, MemOp op, Addr addr, Area area, Word data,
                Word wdata, bool lock_wait)
    {
        (void)pe; (void)op; (void)addr; (void)area;
        (void)data; (void)wdata; (void)lock_wait;
    }
};

/** N PEs + caches + lock directories + bus + shared memory. */
class System : public UnlockListener
{
  public:
    /** Result of one processor memory operation. */
    struct Access {
        Word data = 0;       ///< Value read (reading operations).
        bool lockWait = false; ///< Parked; retry after the UL wakeup.
    };

    explicit System(const SystemConfig& config);

    /**
     * Panics if any PE is still parked on a lock (the driver dropped a
     * lockWait=true access without retrying it — a protocol leak), unless
     * an exception is already unwinding or abandonParkedWaiters() was
     * called to acknowledge the leak.
     */
    ~System() override;

    System(const System&) = delete;
    System& operator=(const System&) = delete;

    /**
     * Issue one memory operation for @p pe at its current local clock.
     * The optimization policy is applied first; the reference is counted
     * once (on completion, not on lock-rejected attempts).
     *
     * On lockWait the PE is parked: the driver must not step it again
     * until parked(pe) is false, then retry the same operation.
     */
    Access access(PeId pe, MemOp op, Addr addr, Area area, Word wdata = 0);

    /**
     * True iff access(pe, op, addr, area) would, right now, complete as
     * a private cache hit — no bus transaction, no shared-state change
     * (PimCache::opIsPrivateHit after OptPolicy). The parallel core's
     * epoch classifier.
     */
    bool
    accessIsLocal(PeId pe, MemOp op, Addr addr, Area area) const
    {
        return caches_[pe]->opIsPrivateHit(config_.policy.apply(area, op),
                                           addr);
    }

    /**
     * Execute an access that accessIsLocal() classified as a private
     * hit, on the parallel core's concurrent path: touches only @p pe's
     * cache, @p pe's clock and the caller-supplied @p ref_shard (merged
     * into refStats() at the run barrier) — never the run guard,
     * observers, sinks or the global RefStats, so concurrent calls for
     * distinct PEs are race-free by construction. Panics if the
     * operation turns out not to be a private hit (the classifier and
     * the epoch limit make that unreachable).
     */
    Access accessLocalHit(PeId pe, MemOp op, Addr addr, Area area,
                          Word wdata, RefStats& ref_shard);

    /**
     * Snoop version of @p pe's cache (PimCache::snoopVersion): the
     * parallel core's probe-staleness check.
     */
    std::uint64_t
    cacheSnoopVersion(PeId pe) const
    {
        return caches_[pe]->snoopVersion();
    }

    // -- Attachment introspection (parallel core mode selection) ----------

    /**
     * True when any hook that must see every access in global order is
     * attached (access observers, event sinks, a reference observer or
     * a fault injector). The parallel core degrades to its serialized-
     * epoch mode in that case so hook callbacks fire in exactly the
     * sequential order (docs/ARCHITECTURE.md, "Threading model").
     */
    bool
    observed() const
    {
        return !observers_.empty() || sink_ != nullptr ||
               static_cast<bool>(refObserver_) || injector_ != nullptr;
    }

    /** The attached run guard (nullptr when none). */
    RunGuard* runGuard() const { return guard_; }

    /** True while @p pe is busy-waiting on a remote lock. */
    bool parked(PeId pe) const { return parkedOn_[pe] != kNoAddr; }

    /** Local clock of @p pe. */
    Cycles clock(PeId pe) const { return clock_[pe]; }

    /** Advance @p pe's local clock (idle time, instruction work, ...). */
    void
    advanceClock(PeId pe, Cycles by)
    {
        clock_[pe] += by;
    }

    /** The PE with the smallest clock among non-parked PEs (or kNoPe). */
    PeId earliestRunnable() const;

    /** Largest local clock across PEs (the run's makespan). */
    Cycles makespan() const;

    /**
     * Write back and invalidate every cache without charging bus cycles
     * (used around stop-and-copy GC, which the paper's model excludes).
     */
    void flushAllCaches();

    std::uint32_t numPes() const { return config_.numPes; }
    const SystemConfig& config() const { return config_; }
    PimCache& cache(PeId pe) { return *caches_[pe]; }
    const PimCache& cache(PeId pe) const { return *caches_[pe]; }
    Bus& bus() { return *bus_; }
    const Bus& bus() const { return *bus_; }
    PagedStore& memory() { return memory_; }
    const PagedStore& memory() const { return memory_; }
    RefStats& refStats() { return refStats_; }
    const RefStats& refStats() const { return refStats_; }

    /** Aggregate cache statistics over all PEs. */
    CacheStats totalCacheStats() const;

    /**
     * Observe every completed reference (post-policy). Used to capture
     * traces for later trace-driven replay; pass nullptr to detach.
     */
    void
    setRefObserver(std::function<void(const MemRef&)> observer)
    {
        refObserver_ = std::move(observer);
    }

    /**
     * Register an observer of every access (auditor, watchdog). Observers
     * are called in registration order and stay attached for the System's
     * lifetime; the caller keeps ownership.
     */
    void
    addAccessObserver(AccessObserver* observer)
    {
        observers_.push_back(observer);
    }

    /**
     * Attach a cooperative run guard (nullptr to detach): every access
     * polls it, so a hung or livelocked drive loop raises
     * SimFault(Timeout/Cancelled) out of access() instead of wedging
     * the caller forever (docs/ROBUSTNESS.md). The caller keeps
     * ownership; the guard must outlive its attachment.
     */
    void setRunGuard(RunGuard* guard) { guard_ = guard; }

    /**
     * Attach a fault injector (nullptr to detach), forwarded to the bus,
     * every cache and every lock directory. The System itself consults it
     * at SpuriousWakeup (parked PEs woken without a real UL).
     */
    void setFaultInjector(FaultInjector* injector);

    /**
     * Register an observability sink (timeline recorder, metrics
     * registry; docs/OBSERVABILITY.md). Events from the bus, every cache,
     * every lock directory and the System itself fan out to all
     * registered sinks, in registration order. Sinks stay attached for
     * the System's lifetime; the caller keeps ownership. Until the first
     * sink is registered, no component holds a sink pointer, so an
     * unobserved run pays one null compare per hook site.
     */
    void addEventSink(EventSink* sink);

    /** PEs currently parked on a lock, in PE order. */
    std::vector<PeId> pendingWaiters() const;

    /** The block address @p pe is parked on (kNoAddr when not parked). */
    Addr parkedOnBlock(PeId pe) const { return parkedOn_[pe]; }

    /**
     * Canonical protocol state over the address range [@p lo, @p hi):
     * shared-memory words, every cache's blocks/locks, the bus's purge
     * marks and which block each PE is parked on. Everything that can
     * influence *future protocol behavior* is included; local clocks,
     * bus occupancy and statistics are not — two runs reaching the same
     * protocol situation along different schedules snapshot equal, which
     * is exactly the state-merging the exhaustive explorer (src/model)
     * needs to terminate.
     */
    std::vector<std::uint64_t> protocolSnapshot(Addr lo, Addr hi) const;

    /** 64-bit mix of protocolSnapshot (splitmix64-style). */
    std::uint64_t protocolHash(Addr lo, Addr hi) const;

    /**
     * Un-park every waiting PE without a wakeup, acknowledging that their
     * lock waits will never be retried. For error paths only (e.g. a
     * stress harness tearing down after a watchdog fault); silences the
     * destructor's parked-PE leak check.
     */
    void abandonParkedWaiters();

    // UnlockListener ------------------------------------------------------
    void onUnlockBroadcast(Addr word_addr, Cycles when) override;

  private:
    /** Park @p pe on @p block (updates the block -> waiters index). */
    void park(PeId pe, Addr block, Cycles when);

    /** Wake @p pe (the caller removes it from the waiters index). */
    void wake(PeId pe, Addr block, Cycles at_least);

    SystemConfig config_;
    PagedStore memory_;
    std::unique_ptr<Bus> bus_;
    std::vector<std::unique_ptr<PimCache>> caches_;
    std::vector<Cycles> clock_;
    std::vector<Addr> parkedOn_; ///< Block a PE busy-waits on (kNoAddr).
    /**
     * Inverse of parkedOn_: block -> parked PEs in ascending id order,
     * so an UL broadcast wakes its waiters in O(waiters) instead of
     * scanning every PE (and wakes them in the same order the old scan
     * did). Kept exactly in sync with parkedOn_.
     */
    std::unordered_map<Addr, std::vector<PeId>> waitersByBlock_;
    RefStats refStats_;
    std::function<void(const MemRef&)> refObserver_;
    std::vector<AccessObserver*> observers_;
    FaultInjector* injector_ = nullptr;
    RunGuard* guard_ = nullptr; ///< Deadline/cancel poll (may be null).
    MultiSink sinkMux_;
    EventSink* sink_ = nullptr; ///< &sinkMux_ once a sink registered.
};

} // namespace pim

#endif // PIMCACHE_SIM_SYSTEM_H_
