#include "kl1/lexer.h"

#include <cctype>

#include "common/sim_fault.h"

namespace pim::kl1 {

namespace {

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character operators, longest first.
const char* const kOperators[] = {
    "=:=", "=\\=", ":-", "=<", ">=", "==", ":=", "\\=", "//", "||",
};

} // namespace

std::vector<Token>
tokenize(const std::string& source, const std::string& filename)
{
    std::vector<Token> out;
    std::size_t i = 0;
    int line = 1;
    std::size_t line_start = 0;
    const std::size_t n = source.size();

    auto peek = [&](std::size_t k) -> char {
        return i + k < n ? source[i + k] : '\0';
    };
    auto column = [&]() -> int {
        return static_cast<int>(i - line_start) + 1;
    };
    auto fail = [&](const std::string& what) {
        const std::string where = filename.empty() ? "input" : filename;
        throw PIM_SIM_FAULT(SimFaultKind::Parse, where, ":", line, ":",
                            column(), ": ", what);
    };

    while (i < n) {
        const char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            line_start = i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '%') { // line comment
            while (i < n && source[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && peek(1) == '*') { // block comment
            i += 2;
            while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
                if (source[i] == '\n') {
                    ++line;
                    line_start = i + 1;
                }
                ++i;
            }
            if (i + 1 >= n)
                fail("unterminated block comment");
            i += 2;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            Token tok;
            tok.line = line;
            tok.column = column();
            std::int64_t value = 0;
            while (i < n &&
                   std::isdigit(static_cast<unsigned char>(source[i]))) {
                const int digit = source[i] - '0';
                if (value > (INT64_MAX - digit) / 10)
                    fail("integer literal too large");
                value = value * 10 + digit;
                ++i;
            }
            tok.kind = TokKind::Int;
            tok.value = value;
            out.push_back(tok);
            continue;
        }
        if (std::islower(static_cast<unsigned char>(c))) {
            Token tok;
            tok.line = line;
            tok.column = column();
            std::string text;
            while (i < n && isIdentChar(source[i]))
                text.push_back(source[i++]);
            tok.kind = TokKind::Atom;
            tok.text = std::move(text);
            out.push_back(tok);
            continue;
        }
        if (std::isupper(static_cast<unsigned char>(c)) || c == '_') {
            Token tok;
            tok.line = line;
            tok.column = column();
            std::string text;
            while (i < n && isIdentChar(source[i]))
                text.push_back(source[i++]);
            tok.kind = TokKind::Var;
            tok.text = std::move(text);
            out.push_back(tok);
            continue;
        }
        if (c == '\'') { // quoted atom
            Token tok;
            tok.line = line;
            tok.column = column();
            ++i;
            std::string text;
            while (i < n && source[i] != '\'') {
                if (source[i] == '\n') {
                    ++line;
                    line_start = i + 1;
                }
                text.push_back(source[i++]);
            }
            if (i >= n)
                fail("unterminated quoted atom");
            ++i;
            tok.kind = TokKind::Atom;
            tok.text = std::move(text);
            out.push_back(tok);
            continue;
        }
        // Multi-character operators.
        bool matched = false;
        for (const char* oper : kOperators) {
            const std::size_t len = std::string(oper).size();
            if (source.compare(i, len, oper) == 0) {
                Token tok;
                tok.kind = TokKind::Punct;
                tok.text = oper;
                tok.line = line;
                tok.column = column();
                out.push_back(tok);
                i += len;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        // Single-character punctuation.
        static const std::string kSingles = "()[]{}|,.<>=+-*/";
        if (kSingles.find(c) != std::string::npos) {
            Token tok;
            tok.kind = TokKind::Punct;
            tok.text = std::string(1, c);
            tok.line = line;
            tok.column = column();
            out.push_back(tok);
            ++i;
            continue;
        }
        fail("illegal character '" + std::string(1, c) + "'");
    }

    Token end;
    end.kind = TokKind::End;
    end.line = line;
    end.column = column();
    out.push_back(end);
    return out;
}

} // namespace pim::kl1
