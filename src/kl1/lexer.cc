#include "kl1/lexer.h"

#include <cctype>

#include "common/xassert.h"

namespace pim::kl1 {

namespace {

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character operators, longest first.
const char* const kOperators[] = {
    "=:=", "=\\=", ":-", "=<", ">=", "==", ":=", "\\=", "//", "||",
};

} // namespace

std::vector<Token>
tokenize(const std::string& source)
{
    std::vector<Token> out;
    std::size_t i = 0;
    int line = 1;
    const std::size_t n = source.size();

    auto peek = [&](std::size_t k) -> char {
        return i + k < n ? source[i + k] : '\0';
    };

    while (i < n) {
        const char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '%') { // line comment
            while (i < n && source[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && peek(1) == '*') { // block comment
            i += 2;
            while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
                if (source[i] == '\n')
                    ++line;
                ++i;
            }
            if (i + 1 >= n)
                PIM_FATAL("unterminated block comment at line ", line);
            i += 2;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::int64_t value = 0;
            while (i < n &&
                   std::isdigit(static_cast<unsigned char>(source[i]))) {
                value = value * 10 + (source[i] - '0');
                ++i;
            }
            Token tok;
            tok.kind = TokKind::Int;
            tok.value = value;
            tok.line = line;
            out.push_back(tok);
            continue;
        }
        if (std::islower(static_cast<unsigned char>(c))) {
            std::string text;
            while (i < n && isIdentChar(source[i]))
                text.push_back(source[i++]);
            Token tok;
            tok.kind = TokKind::Atom;
            tok.text = std::move(text);
            tok.line = line;
            out.push_back(tok);
            continue;
        }
        if (std::isupper(static_cast<unsigned char>(c)) || c == '_') {
            std::string text;
            while (i < n && isIdentChar(source[i]))
                text.push_back(source[i++]);
            Token tok;
            tok.kind = TokKind::Var;
            tok.text = std::move(text);
            tok.line = line;
            out.push_back(tok);
            continue;
        }
        if (c == '\'') { // quoted atom
            ++i;
            std::string text;
            while (i < n && source[i] != '\'') {
                if (source[i] == '\n')
                    ++line;
                text.push_back(source[i++]);
            }
            if (i >= n)
                PIM_FATAL("unterminated quoted atom at line ", line);
            ++i;
            Token tok;
            tok.kind = TokKind::Atom;
            tok.text = std::move(text);
            tok.line = line;
            out.push_back(tok);
            continue;
        }
        // Multi-character operators.
        bool matched = false;
        for (const char* oper : kOperators) {
            const std::size_t len = std::string(oper).size();
            if (source.compare(i, len, oper) == 0) {
                Token tok;
                tok.kind = TokKind::Punct;
                tok.text = oper;
                tok.line = line;
                out.push_back(tok);
                i += len;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        // Single-character punctuation.
        static const std::string kSingles = "()[]{}|,.<>=+-*/";
        if (kSingles.find(c) != std::string::npos) {
            Token tok;
            tok.kind = TokKind::Punct;
            tok.text = std::string(1, c);
            tok.line = line;
            out.push_back(tok);
            ++i;
            continue;
        }
        PIM_FATAL("illegal character '", std::string(1, c), "' at line ",
                  line);
    }

    Token end;
    end.kind = TokKind::End;
    end.line = line;
    out.push_back(end);
    return out;
}

} // namespace pim::kl1
