/**
 * @file
 * Tokenizer for FGHC source text.
 */

#ifndef PIMCACHE_KL1_LEXER_H_
#define PIMCACHE_KL1_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pim::kl1 {

/** Token kinds. */
enum class TokKind : std::uint8_t {
    Atom,    ///< lowercase identifier or 'quoted atom'
    Var,     ///< Uppercase / underscore identifier
    Int,     ///< integer literal
    Punct,   ///< punctuation or operator, in `text`
    End,     ///< end of input
};

/** One token. */
struct Token {
    TokKind kind = TokKind::End;
    std::string text;
    std::int64_t value = 0;
    int line = 1;
    int column = 1;

    bool
    is(TokKind k, const char* t = nullptr) const
    {
        return kind == k && (t == nullptr || text == t);
    }
};

/**
 * Tokenize FGHC source. Understands %-to-end-of-line and C-style block
 * comments, multi-character operators (:-, =<, >=, ==, =:=, =\=, :=,
 * \=, //), and negative integer literals are left to the parser.
 *
 * @param filename Used in error messages ("<filename>:line:column").
 * @throws SimFault (Parse) on illegal characters, unterminated comments
 * or unterminated quoted atoms — never terminates the process.
 */
std::vector<Token> tokenize(const std::string& source,
                            const std::string& filename = "");

} // namespace pim::kl1

#endif // PIMCACHE_KL1_LEXER_H_
