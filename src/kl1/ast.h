/**
 * @file
 * Abstract syntax for Flat Guarded Horn Clauses (paper Section 2.1).
 *
 * A program is a set of procedures; a procedure is the clauses sharing
 * one name/arity; a clause is  H :- G1,...,Gm | B1,...,Bn.  with
 * builtin-only guards. A clause without ':-' is  H :- true | true.  and
 * a clause without '|' has an empty guard.
 */

#ifndef PIMCACHE_KL1_AST_H_
#define PIMCACHE_KL1_AST_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pim::kl1 {

/** A parsed source term. */
struct PTerm {
    enum class Kind {
        Var,    ///< Variable (name; "_" is anonymous and never shared).
        Atom,   ///< Constant, including '[]'.
        Int,    ///< Integer literal.
        List,   ///< Cons cell [head | tail].
        Struct, ///< name(args...).
    };

    Kind kind = Kind::Atom;
    std::string name;            ///< Var / Atom / Struct name.
    std::int64_t value = 0;      ///< Int value.
    std::vector<PTerm> args;     ///< List: {head, tail}; Struct: args.

    static PTerm
    var(std::string n)
    {
        PTerm t;
        t.kind = Kind::Var;
        t.name = std::move(n);
        return t;
    }

    static PTerm
    atom(std::string n)
    {
        PTerm t;
        t.kind = Kind::Atom;
        t.name = std::move(n);
        return t;
    }

    static PTerm
    integer(std::int64_t v)
    {
        PTerm t;
        t.kind = Kind::Int;
        t.value = v;
        return t;
    }

    static PTerm
    nil()
    {
        return atom("[]");
    }

    static PTerm
    list(PTerm head, PTerm tail)
    {
        PTerm t;
        t.kind = Kind::List;
        t.args.push_back(std::move(head));
        t.args.push_back(std::move(tail));
        return t;
    }

    static PTerm
    structure(std::string n, std::vector<PTerm> a)
    {
        PTerm t;
        t.kind = Kind::Struct;
        t.name = std::move(n);
        t.args = std::move(a);
        return t;
    }

    bool isAnonymousVar() const { return kind == Kind::Var && name == "_"; }

    /** Render for diagnostics. */
    std::string toString() const;
};

/** One goal in a guard or body: an atom or a structure call. */
using Goal = PTerm;

/** One clause. */
struct Clause {
    PTerm head;               ///< Atom (arity 0) or Struct.
    std::vector<Goal> guards; ///< Builtin-only tests.
    std::vector<Goal> body;   ///< Body goals and builtins.
    int line = 0;             ///< Source line of the head.
};

/** One procedure: all clauses of the same name/arity, in source order. */
struct Procedure {
    std::string name;
    std::uint32_t arity = 0;
    std::vector<Clause> clauses;
};

/** A parsed program. */
struct Program {
    std::vector<Procedure> procedures;
    std::map<std::string, std::size_t> index; ///< "name/arity" -> slot.

    /** Find a procedure (nullptr if absent). */
    const Procedure*
    find(const std::string& name, std::uint32_t arity) const
    {
        const auto it = index.find(name + "/" + std::to_string(arity));
        return it == index.end() ? nullptr : &procedures[it->second];
    }
};

} // namespace pim::kl1

#endif // PIMCACHE_KL1_AST_H_
