/**
 * @file
 * The multi-PE KL1 emulator: couples N reduction engines to the
 * multiprocessor cache/bus model (paper Section 4: "Each PE runs a
 * reduction engine for the abstract machine, dynamically feeding memory
 * requests to a local cache simulator").
 *
 * The run loop always steps the PE with the smallest local clock among
 * PEs that are not busy-waiting on a lock, so bus requests are served in
 * global time order.
 */

#ifndef PIMCACHE_KL1_EMULATOR_H_
#define PIMCACHE_KL1_EMULATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "kl1/ast.h"
#include "kl1/gc.h"
#include "kl1/machine.h"
#include "kl1/module.h"
#include "mem/layout.h"
#include "sim/system.h"

namespace pim::kl1 {

/** Emulator configuration. */
struct Kl1Config {
    std::uint32_t numPes = 8;
    CacheConfig cache;              ///< Paper base: 4Kw, 4-way, 4w blocks.
    BusTiming timing;               ///< Paper base: 1-word bus, 8-cycle mem.
    OptPolicy policy = OptPolicy::all();
    /** Clustered bus topology (docs/ARCHITECTURE.md); 0 = single bus. */
    ClusterConfig cluster;
    LayoutConfig layout;            ///< Area sizes (numPes is overridden).
    std::uint64_t maxSteps = 0;     ///< Step limit; exceeding it raises
                                    ///< SimFault(Timeout). 0 = unlimited.
    /**
     * Wall-clock budget in seconds (0 = unlimited). Checked cheaply in
     * the run loop and on every memory reference (System's RunGuard);
     * exceeding it raises SimFault(Timeout), so a non-terminating or
     * pathologically slow program becomes a classified, recoverable
     * fault instead of a wedged worker (docs/ROBUSTNESS.md).
     */
    double timeoutSeconds = 0;
    /** Optional cooperative cancel (not owned; may be tripped remotely). */
    const CancelToken* cancel = nullptr;
    std::uint32_t donateThreshold = 2; ///< Min goals kept when donating.
    std::uint32_t idleSpinCycles = 16; ///< Clock advance per idle poll.
    bool failOnDeadlock = true;     ///< Fatal when goals suspend forever.
    /**
     * Stop-and-copy heap GC: each PE's heap segment becomes two
     * semispaces and a global collection runs when a segment's active
     * half fills to within gcSlackWords of its end. GC references are
     * not charged to the caches (the paper's measurement model), but
     * every cache is flushed cold around a collection.
     */
    bool enableGc = false;
    std::uint32_t gcSlackWords = 2048;
};

/** Aggregated run statistics (the rows of the paper's Table 1). */
struct RunStats {
    std::uint64_t reductions = 0;
    std::uint64_t suspensions = 0;
    std::uint64_t resumptions = 0;
    std::uint64_t instructions = 0;
    std::uint64_t memoryRefs = 0;
    std::uint64_t steals = 0;
    Cycles makespan = 0;
    std::uint64_t deadlockedGoals = 0;
    GcStats gc;
};

/** The whole simulated machine: engines + caches + bus + memory. */
class Emulator : public TermReader
{
  public:
    Emulator(Module module, const Kl1Config& config);
    ~Emulator() override;

    /**
     * Run a query goal, e.g. "main(12,R)". Blocks until the program
     * terminates (or deadlocks / exceeds maxSteps). Returns statistics.
     */
    RunStats run(const std::string& query);

    /** Results recorded by kl1_result/1, formatted, in emission order. */
    const std::vector<std::string>& results() const { return results_; }

    /** Bindings of the named query variables after the run. */
    std::vector<std::pair<std::string, std::string>> queryBindings() const;

    System& system() { return *sys_; }
    const System& system() const { return *sys_; }
    const Module& module() const { return module_; }
    const Layout& layout() const { return layout_; }
    const Kl1Config& config() const { return config_; }
    Machine& machine(PeId pe) { return *machines_[pe]; }

    // TermReader: coherent, side-effect-free memory peek.
    Word peek(Addr addr) const override;

    /** Format a term for humans (used by tests and the result builtin). */
    std::string format(Word w) const;

    /** Garbage-collection statistics of the last run. */
    const GcStats& gcStats() const { return gcStats_; }

  private:
    friend class Machine;
    friend class GcCollector;

    /** True when a collection can run (no PE parked, no lock held). */
    bool gcQuiescent() const;

    /** Build a parsed query term directly into memory (pre-run). */
    Word buildQueryTerm(const PTerm& term,
                        std::vector<std::pair<std::string, Addr>>& vars);

    Kl1Config config_;
    Module module_;
    Layout layout_;
    std::unique_ptr<System> sys_;
    std::vector<std::unique_ptr<Machine>> machines_;

    // Global schedule/termination state (host-side bookkeeping).
    std::int64_t floatingGoals_ = 0;
    std::int64_t goalsInTransit_ = 0;
    bool gcRequested_ = false;
    GcStats gcStats_;

    std::vector<std::string> results_;
    std::vector<std::pair<std::string, Addr>> queryVars_;
};

} // namespace pim::kl1

#endif // PIMCACHE_KL1_EMULATOR_H_
