#include "kl1/parser.h"

#include <sstream>

#include "common/sim_fault.h"
#include "kl1/lexer.h"

namespace pim::kl1 {

namespace {

/** Token cursor with error helpers. */
class Parser
{
  public:
    Parser(std::vector<Token> tokens, std::string filename)
        : tokens_(std::move(tokens)), filename_(std::move(filename))
    {
    }

    Program
    parseProgram()
    {
        Program program;
        while (!peek().is(TokKind::End)) {
            Clause clause = parseClause();
            addClause(program, std::move(clause));
        }
        return program;
    }

    PTerm
    parseSingleTerm()
    {
        PTerm term = parseTerm();
        expectPunct(".", "after goal term");
        if (!peek().is(TokKind::End))
            fail("trailing input after goal term");
        return term;
    }

  private:
    const Token&
    peek(std::size_t k = 0) const
    {
        const std::size_t i = pos_ + k;
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }

    Token
    advance()
    {
        return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_];
    }

    [[noreturn]] void
    fail(const std::string& what) const
    {
        const std::string where = filename_.empty() ? "input" : filename_;
        throw PIM_SIM_FAULT(SimFaultKind::Parse, where, ":", peek().line,
                            ":", peek().column, ": FGHC syntax error: ",
                            what, " (got '",
                            peek().kind == TokKind::End ? "<eof>"
                                                        : peek().text,
                            "')");
    }

    void
    expectPunct(const char* text, const char* context)
    {
        if (!peek().is(TokKind::Punct, text))
            fail(std::string("expected '") + text + "' " + context);
        advance();
    }

    bool
    acceptPunct(const char* text)
    {
        if (peek().is(TokKind::Punct, text)) {
            advance();
            return true;
        }
        return false;
    }

    Clause
    parseClause()
    {
        Clause clause;
        clause.line = peek().line;
        clause.head = parseTerm();
        if (clause.head.kind != PTerm::Kind::Atom &&
            clause.head.kind != PTerm::Kind::Struct) {
            fail("clause head must be an atom or a structure");
        }
        if (acceptPunct(":-")) {
            std::vector<Goal> goals;
            bool committed = false;
            for (;;) {
                goals.push_back(parseTerm());
                if (acceptPunct(","))
                    continue;
                if (!committed && acceptPunct("|")) {
                    clause.guards = std::move(goals);
                    goals.clear();
                    committed = true;
                    continue;
                }
                break;
            }
            clause.body = std::move(goals);
        }
        expectPunct(".", "at end of clause");
        return clause;
    }

    // Precedence-climbing expression parser.
    PTerm
    parseTerm()
    {
        return parseCompare();
    }

    PTerm
    parseCompare()
    {
        PTerm left = parseAdditive();
        static const char* const kOps[] = {"=",  "\\=", "==", "<",
                                           ">",  "=<",  ">=", "=:=",
                                           "=\\=", ":="};
        for (const char* oper : kOps) {
            if (peek().is(TokKind::Punct, oper)) {
                advance();
                PTerm right = parseAdditive();
                return PTerm::structure(oper,
                                        {std::move(left), std::move(right)});
            }
        }
        return left;
    }

    PTerm
    parseAdditive()
    {
        PTerm left = parseMultiplicative();
        for (;;) {
            if (acceptPunct("+")) {
                left = PTerm::structure(
                    "+", {std::move(left), parseMultiplicative()});
            } else if (acceptPunct("-")) {
                left = PTerm::structure(
                    "-", {std::move(left), parseMultiplicative()});
            } else {
                return left;
            }
        }
    }

    PTerm
    parseMultiplicative()
    {
        PTerm left = parsePrimary();
        for (;;) {
            if (acceptPunct("*")) {
                left = PTerm::structure("*",
                                        {std::move(left), parsePrimary()});
            } else if (acceptPunct("//") || acceptPunct("/")) {
                left = PTerm::structure("//",
                                        {std::move(left), parsePrimary()});
            } else if (peek().is(TokKind::Atom, "mod") &&
                       // `mod` is an operator only between operands.
                       !peek(1).is(TokKind::Punct, "(")) {
                advance();
                left = PTerm::structure("mod",
                                        {std::move(left), parsePrimary()});
            } else {
                return left;
            }
        }
    }

    PTerm
    parsePrimary()
    {
        const Token& tok = peek();
        if (tok.is(TokKind::Int)) {
            advance();
            return PTerm::integer(tok.value);
        }
        if (tok.is(TokKind::Punct, "-") && peek(1).is(TokKind::Int)) {
            advance();
            return PTerm::integer(-advance().value);
        }
        if (tok.is(TokKind::Var)) {
            advance();
            return PTerm::var(tok.text);
        }
        if (tok.is(TokKind::Atom)) {
            const std::string name = advance().text;
            if (acceptPunct("(")) {
                std::vector<PTerm> args;
                if (!peek().is(TokKind::Punct, ")")) {
                    args.push_back(parseTerm());
                    while (acceptPunct(","))
                        args.push_back(parseTerm());
                }
                expectPunct(")", "closing argument list");
                return PTerm::structure(name, std::move(args));
            }
            return PTerm::atom(name);
        }
        if (acceptPunct("[")) {
            if (acceptPunct("]"))
                return PTerm::nil();
            std::vector<PTerm> elems;
            elems.push_back(parseTerm());
            while (acceptPunct(","))
                elems.push_back(parseTerm());
            PTerm tail = PTerm::nil();
            if (acceptPunct("|"))
                tail = parseTerm();
            expectPunct("]", "closing list");
            for (auto it = elems.rbegin(); it != elems.rend(); ++it)
                tail = PTerm::list(std::move(*it), std::move(tail));
            return tail;
        }
        if (acceptPunct("(")) {
            PTerm inner = parseTerm();
            expectPunct(")", "closing parenthesis");
            return inner;
        }
        fail("expected a term");
    }

    void
    addClause(Program& program, Clause clause)
    {
        const std::string name =
            clause.head.kind == PTerm::Kind::Atom ? clause.head.name
                                                  : clause.head.name;
        const std::uint32_t arity =
            clause.head.kind == PTerm::Kind::Struct
                ? static_cast<std::uint32_t>(clause.head.args.size())
                : 0;
        const std::string key = name + "/" + std::to_string(arity);
        auto it = program.index.find(key);
        if (it == program.index.end()) {
            Procedure proc;
            proc.name = name;
            proc.arity = arity;
            program.index.emplace(key, program.procedures.size());
            program.procedures.push_back(std::move(proc));
            it = program.index.find(key);
        }
        program.procedures[it->second].clauses.push_back(std::move(clause));
    }

    std::vector<Token> tokens_;
    std::string filename_;
    std::size_t pos_ = 0;
};

} // namespace

Program
parseProgram(const std::string& source, const std::string& filename)
{
    Parser parser(tokenize(source, filename), filename);
    return parser.parseProgram();
}

PTerm
parseGoalTerm(const std::string& source, const std::string& filename)
{
    Parser parser(tokenize(source, filename), filename);
    return parser.parseSingleTerm();
}

std::string
PTerm::toString() const
{
    std::ostringstream os;
    switch (kind) {
      case Kind::Var:
        os << name;
        break;
      case Kind::Atom:
        os << name;
        break;
      case Kind::Int:
        os << value;
        break;
      case Kind::List:
        os << "[" << args[0].toString() << "|" << args[1].toString() << "]";
        break;
      case Kind::Struct:
        os << name << "(";
        for (std::size_t i = 0; i < args.size(); ++i) {
            if (i > 0)
                os << ",";
            os << args[i].toString();
        }
        os << ")";
        break;
    }
    return os.str();
}

} // namespace pim::kl1
