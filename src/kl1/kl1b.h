/**
 * @file
 * The KL1-B-style abstract instruction set (after Kimura & Chikayama,
 * "An Abstract KL1 Machine and its Instruction Set", cited as [8] in the
 * paper).
 *
 * Compiled code lives in the instruction area of shared memory; executing
 * an instruction costs one (or two, when it carries a wide immediate)
 * instruction-area reads, which is what makes instruction fetch ~43% of
 * all memory references in Table 2 of the paper.
 *
 * Registers are a per-PE register file X0..X63 (goal arguments arrive in
 * X0..Xn-1). Register traffic is not counted as memory references — the
 * paper's "very liberal correspondence of architecture state to
 * registers".
 */

#ifndef PIMCACHE_KL1_KL1B_H_
#define PIMCACHE_KL1_KL1B_H_

#include <cstdint>
#include <string>

namespace pim::kl1 {

/** Number of abstract-machine registers. */
inline constexpr int kNumRegs = 64;

/** Abstract-machine opcodes. */
enum class Op : std::uint8_t {
    // -- control ---------------------------------------------------------
    TryClause,  ///< a = pc of the next clause / epilogue on failure.
    Commit,     ///< End of the passive part; the reduction commits.
    Proceed,    ///< Body finished: fetch the next goal.
    Execute,    ///< Tail call: a=proc, b=nargs, c=first arg register.
    Spawn,      ///< Create a body goal: a=proc, b=nargs, c=first arg reg.
    SuspendOrFail, ///< Epilogue: suspend on collected vars, or fail.

    // -- passive part (head unification and guards) -----------------------
    WaitInt,    ///< a=reg, imm=value.
    WaitAtom,   ///< a=reg, imm=atom id.
    WaitList,   ///< a=reg, b=dst car reg, c=dst cdr reg.
    WaitStruct, ///< a=reg, imm=functor, b=first dst reg (arity regs).
    WaitSame,   ///< a=reg, b=reg: passive unification of two operands.
    GuardCmp,   ///< a=lhs reg, b=rhs reg, d=CmpKind.
    GuardCmpInt,///< a=lhs reg, imm=rhs value, d=CmpKind.
    GuardInteger, ///< a=reg: integer(X) type test.
    GuardWait,  ///< a=reg: wait(X) — suspend until bound.
    GuardOtherwise, ///< True iff all preceding clauses failed
                    ///< definitely (suspends the call otherwise).
    GuardFail,  ///< Constant-folded guard that can never succeed.
    GuardDiff,  ///< a,b = regs: X \= Y (fails on equal, suspends if
                ///< undecidable).
    GArith,     ///< Guard arithmetic: a=dst, b=lhs reg, c=rhs reg,
                ///< d=ArithKind. Suspends on unbound, fails on non-int.
    GArithInt,  ///< Guard arithmetic with immediate rhs (imm).

    // -- active part (body) ------------------------------------------------
    PutInt,     ///< a=dst reg, imm=value.
    PutAtom,    ///< a=dst reg, imm=atom id.
    PutVar,     ///< a=dst reg: allocate a fresh unbound heap cell.
    PutList,    ///< a=dst, b=car reg, c=cdr reg: allocate a cons cell.
    PutStruct,  ///< a=dst, imm=functor, b=first arg reg.
    Move,       ///< a=dst reg, b=src reg.
    Unify,      ///< a,b = regs: active unification (binds under lock).
    Arith,      ///< a=dst, b=lhs reg, c=rhs reg, d=ArithKind.
    ArithInt,   ///< a=dst, b=lhs reg, imm=rhs value, d=ArithKind.
    BuiltinResult, ///< a=reg: record the term as a program result.

    // -- vectors (KL1 system builtins) --------------------------------------
    VecNew,     ///< a=dst, b=size reg, c=init reg: fresh vector.
    VecGet,     ///< a=elem dst unified, b=vec reg, c=index reg.
    VecSet,     ///< a=new-vec dst, b=vec, c=index, d=elem reg: pure
                ///< (copying) update — single-assignment semantics.
    VecSetD,    ///< Like VecSet but destructive in place (MRB-style
                ///< single-reference optimization; see ablation_mrb).
};

/** Comparison kinds for GuardCmp*. */
enum class CmpKind : std::uint8_t {
    Lt,   ///< <
    Le,   ///< =<
    Gt,   ///< >
    Ge,   ///< >=
    NumEq,///< =:=
    NumNe,///< =\=
};

/** Arithmetic kinds. */
enum class ArithKind : std::uint8_t {
    Add,
    Sub,
    Mul,
    Div, ///< // (truncating)
    Mod,
};

/** One decoded instruction (stored host-side; sized in words for the
 *  instruction area via Instr::words()). */
struct Instr {
    Op op = Op::Proceed;
    std::int32_t a = 0;
    std::int32_t b = 0;
    std::int32_t c = 0;
    std::int32_t d = 0;
    std::int64_t imm = 0;

    /** True when the opcode carries the wide immediate operand. */
    static bool
    hasImm(Op op)
    {
        switch (op) {
          case Op::WaitInt:
          case Op::WaitAtom:
          case Op::WaitStruct:
          case Op::GuardCmpInt:
          case Op::GArithInt:
          case Op::PutInt:
          case Op::PutAtom:
          case Op::PutStruct:
          case Op::ArithInt:
            return true;
          default:
            return false;
        }
    }

    /** Size of this instruction in instruction-area words. */
    std::uint32_t words() const { return hasImm(op) ? 2 : 1; }
};

/** Opcode mnemonic for disassembly. */
const char* opName(Op op);

} // namespace pim::kl1

#endif // PIMCACHE_KL1_KL1B_H_
