/**
 * @file
 * The per-PE KL1 reduction engine (paper Section 2.2).
 *
 * Each Machine executes compiled KL1-B instructions, driving every load
 * and store through the coherent cache of its PE. One step() performs one
 * unit of work: one instruction, one scheduler action, or one pending
 * micro-operation (suspension hooking / resumption), possibly issuing
 * several memory references.
 *
 * Busy-wait locking: any memory access may be inhibited by a remote lock
 * (LH). The engine then leaves its state intact and returns; the System
 * parks the PE until the UL broadcast, after which step() retries the
 * same unit of work. Units are written to be restartable: pure reads are
 * simply re-issued, allocations are cached across retries
 * (retryGoalRec_), the heap top is rolled back (heapSnapshot_), and
 * already-performed variable bindings re-verify as bound-equal.
 *
 * Storage protocol summary:
 *  - heap: per-PE bump allocation; structure creation uses DW.
 *  - goal records (goal area): block-aligned; created with DW, consumed
 *    with ER/RP (write-once/read-once); doubly linked per-PE goal list.
 *  - suspension records (susp area): 3 words {next, goal, seq}.
 *  - communication area: per-PE mailbox; request slot at +0 guarded by
 *    LR/UW, reply slot at +4 polled with RI (it is rewritten right after
 *    being read — the paper's motivation for read-invalidate).
 */

#ifndef PIMCACHE_KL1_MACHINE_H_
#define PIMCACHE_KL1_MACHINE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"
#include "kl1/module.h"
#include "kl1/term.h"
#include "mem/free_list.h"
#include "trace/ref.h"

namespace pim::kl1 {

class Emulator;

/** Goal-record state tags (stored in the record's state word). */
enum class GoalState : std::uint8_t {
    Queued = 1,   ///< On some PE's goal list (or in transit).
    Floating = 2, ///< Suspended; hooked on one or more variables.
};

/** Per-machine statistics (Table 1 of the paper). */
struct MachineStats {
    std::uint64_t reductions = 0;
    std::uint64_t suspensions = 0;
    std::uint64_t resumptions = 0;
    std::uint64_t instructions = 0;
    std::uint64_t steals = 0;
    std::uint64_t donations = 0;
    std::uint64_t declines = 0;
    std::uint64_t heapWords = 0;
    std::uint64_t goalsSpawned = 0;
};

/** One PE's reduction engine. */
class Machine
{
  public:
    friend class GcCollector;

    Machine(PeId pe, Emulator& emu);

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    /**
     * Perform one unit of work at this PE's local clock.
     * May leave the PE parked on a lock (System::parked).
     */
    void step();

    /** True when this PE has no work at all (for termination detection). */
    bool quiescent() const;

    const MachineStats& stats() const { return stats_; }
    PeId pe() const { return pe_; }

    /** Number of goals on the local goal list. */
    std::size_t goalListLength() const { return goalList_.size(); }

    /** Seed the initial goal record (used by the Emulator at startup). */
    void seedGoal(Addr record);

    /** Direct heap allocation for query construction (no cache refs). */
    Addr rawHeapAlloc(std::uint32_t nwords);

    /** Goal-record allocation helpers (shared with the Emulator). */
    Addr goalRecAlloc(std::uint32_t arity);
    void goalRecFree(Addr rec, std::uint32_t arity);
    std::uint32_t goalRecWords(std::uint32_t arity) const;

  private:
    // -- pending micro-operations -----------------------------------------
    struct MicroOp {
        enum class Kind {
            ResumeWalk, ///< Walk a suspension list: addr = susp record.
            ResumeGoal, ///< Try to requeue a floating goal: addr = record.
            HookVars,   ///< Hook a freshly suspended goal onto its vars.
        };
        Kind kind;
        Addr addr = 0;
        std::uint64_t seq = 0;
        // HookVars only:
        std::vector<Addr> vars;
        std::size_t varIndex = 0;
        std::uint32_t hooked = 0;
        bool anyBound = false;
    };

    enum class Mode { FetchWork, Run };

    // -- memory helpers ----------------------------------------------------
    /** Issue one access; sets stalled_ (and returns 0) on lock-wait. */
    Word mem(MemOp op, Addr addr, Area area, Word wdata = 0);

    /** Read @p addr holding our own lock if we have it, else LR. */
    bool lockCell(Addr addr, Word& value);
    void unlockCell(Addr addr, bool write, Word value);

    /** Classify a heap/goal/susp/comm address (cached layout queries). */
    Area areaOf(Addr addr) const;

    Addr heapAlloc(std::uint32_t nwords);

    // -- dereferencing and unification --------------------------------------
    struct Deref {
        Word value = 0;      ///< Final word (value, or the unbound cell's
                             ///< own content).
        Addr cell = kNoAddr; ///< Unbound cell address, kNoAddr if bound.
        bool unbound() const { return cell != kNoAddr; }
    };
    Deref deref(Word w);

    enum class PassiveResult { Ok, Fail, Suspend };
    PassiveResult passiveUnify(Word a, Word b);

    /** Active unification; true on success, false when stalled. */
    bool activeUnify(Word a, Word b);

    /** Bind locked unbound cell (old content @p old_value) to @p value,
     *  scheduling the resumption walk for any hooked suspensions. */
    void bindLockedCell(Addr cell, Word old_value, Word value);

    // -- instruction execution ----------------------------------------------
    void runInstr();
    void failToAlternative();
    void noteSuspendCandidate(Addr cell);
    void startGoal(std::uint32_t proc, const Word* args,
                   std::uint32_t nargs);
    void doSpawn(const Instr& ins);
    void doExecute(const Instr& ins);
    void doSuspendOrFail();
    bool doUnifyInstr(const Instr& ins);
    void doWaitList(const Instr& ins);
    void doWaitStruct(const Instr& ins);
    void doPutList(const Instr& ins);
    void doPutStruct(const Instr& ins);
    void doArith(const Instr& ins, bool has_imm);
    void doVecNew(const Instr& ins);
    void doVecGet(const Instr& ins);
    void doVecSet(const Instr& ins, bool destructive);

    /** Deref a register to a bound vector + integer index; fatal with a
     *  clear message otherwise. Returns false when stalled. */
    bool vecOperands(const Instr& ins, Addr& base, std::int64_t& size,
                     std::int64_t& index);

    // -- scheduler / FetchWork ----------------------------------------------
    void stepFetchWork();
    bool processMicroOp();
    bool doDonation();
    bool pollRequests();
    bool dequeueLocal();
    void stepIdle();
    bool readGoalRecord(Addr rec, PeId owner, bool remote);
    void finishGoalFetch();

    /** Goal-record state word encoding. */
    static Word
    packState(GoalState state, std::uint32_t proc, std::uint64_t seq)
    {
        return (seq << 20) | (static_cast<Word>(proc) << 4) |
               static_cast<Word>(state);
    }

    static GoalState
    stateTag(Word w)
    {
        return static_cast<GoalState>(w & 0xf);
    }

    static std::uint32_t procOf(Word w) { return (w >> 4) & 0xffff; }
    static std::uint64_t seqOf(Word w) { return w >> 20; }

    PeId pe_;
    Emulator& emu_;

    // Register file and current-goal context.
    Word regs_[kNumRegs] = {};
    std::uint32_t curProc_ = 0;
    std::vector<Word> curArgs_;
    std::vector<Addr> suspendCands_;
    std::uint32_t pc_ = 0;
    std::uint32_t failTarget_ = 0;
    Mode mode_ = Mode::FetchWork;
    bool stalled_ = false;
    bool resumeRun_ = false;
    std::uint32_t tailPolls_ = 0;

    /**
     * Goal records are aligned to cache blocks. The record's first block
     * holds the state word, which stale resumptions may read long after
     * the record was consumed and recycled: that block must stay under
     * the normal coherence protocol (plain W/R — never DW-allocated or
     * purged, or a stale "Floating" value could surface from memory).
     * Only the argument words beyond goalOptCutoff_ are strict
     * write-once/read-once and use DW / ER / RP.
     */
    std::uint32_t goalAlign_ = 4;
    std::uint32_t goalOptCutoff_ = 4;

    /** Memory operation for writing goal-record word at @p offset. */
    MemOp
    goalWriteOp(std::uint32_t offset) const
    {
        return offset < goalOptCutoff_ ? MemOp::W : MemOp::DW;
    }

    // Goal management.
    std::deque<Addr> goalList_; ///< Host mirror of the memory list.
    FreeList goalArea_;
    FreeList suspArea_;
    Addr heapTop_;
    Addr heapEnd_;
    bool heapLowHalf_ = true; ///< Which semispace is active (GC mode).
    Addr heapSnapshot_ = kNoAddr; ///< Roll-back point on lock-stall.
    Addr retryGoalRec_ = kNoAddr; ///< Allocation cached across retries.
    std::uint64_t nextSeq_ = 1;

    // Pending micro-operations (resumptions, hooking).
    std::deque<MicroOp> pendingWork_;

    // Scheduler state.
    Addr commBase_;
    PeId donationRequester_ = kNoPe;
    Addr donationRec_ = kNoAddr;
    bool stealOutstanding_ = false;
    PeId nextVictim_;
    /** Exponential backoff after declined steal requests, so idle PEs do
     *  not saturate the common bus with request traffic. */
    Cycles nextRequestAt_ = 0;
    Cycles stealBackoff_ = 64;
    std::uint32_t idlePollGate_ = 0;
    // In-progress goal-record read (local dequeue or remote steal).
    Addr fetchRec_ = kNoAddr;
    PeId fetchOwner_ = 0;
    bool fetchRemote_ = false;
    std::uint32_t fetchIdx_ = 0;
    std::uint32_t fetchArity_ = 0;
    Word fetchState_ = 0;
    std::vector<Word> fetchArgs_;

    MachineStats stats_;
};

} // namespace pim::kl1

#endif // PIMCACHE_KL1_MACHINE_H_
