#include "kl1/emulator.h"

#include <algorithm>

#include "common/log.h"
#include "common/sim_fault.h"
#include "common/xassert.h"
#include "kl1/gc.h"
#include "kl1/parser.h"

namespace pim::kl1 {

namespace {

LayoutConfig
layoutFor(const Kl1Config& config)
{
    LayoutConfig layout = config.layout;
    layout.numPes = config.numPes;
    return layout;
}

SystemConfig
systemFor(const Kl1Config& config, const Layout& layout)
{
    SystemConfig sys;
    sys.numPes = config.numPes;
    sys.cache = config.cache;
    sys.timing = config.timing;
    sys.policy = config.policy;
    sys.cluster = config.cluster;
    // Cover every layout area, rounded up to whole cache blocks (the
    // max() guards the division; validate() rejects blockWords == 0).
    const std::uint64_t block =
        std::max<std::uint64_t>(1, sys.cache.geometry.blockWords);
    sys.memoryWords = (layout.totalWords() + block - 1) / block * block;
    sys.validate(layout.totalWords());
    return sys;
}

} // namespace

Emulator::Emulator(Module module, const Kl1Config& config)
    : config_(config),
      module_(std::move(module)),
      layout_(layoutFor(config)),
      sys_(std::make_unique<System>(systemFor(config, layout_)))
{
    PIM_ASSERT(module_.totalWords() > 0 || module_.code.empty(),
               "module not finalized");
    if (module_.totalWords() > layout_.instrRange().size) {
        PIM_FATAL("compiled code (", module_.totalWords(),
                  " words) does not fit the instruction area (",
                  layout_.instrRange().size,
                  " words); increase LayoutConfig::instrWords");
    }
    machines_.reserve(config_.numPes);
    for (PeId pe = 0; pe < config_.numPes; ++pe)
        machines_.push_back(std::make_unique<Machine>(pe, *this));
}

Emulator::~Emulator() = default;

Word
Emulator::peek(Addr addr) const
{
    // Any valid cached copy carries the current value (copies of a block
    // are identical under the protocol invariants); fall back to memory.
    for (PeId pe = 0; pe < config_.numPes; ++pe) {
        if (sys_->cache(pe).present(addr))
            return sys_->cache(pe).loadValue(addr);
    }
    return sys_->memory().read(addr);
}

std::string
Emulator::format(Word w) const
{
    return formatTerm(w, *this, module_.symbols);
}

Word
Emulator::buildQueryTerm(const PTerm& term,
                         std::vector<std::pair<std::string, Addr>>& vars)
{
    Machine& m0 = *machines_[0];
    PagedStore& memory = sys_->memory();
    switch (term.kind) {
      case PTerm::Kind::Int:
        return makeInt(term.value);
      case PTerm::Kind::Atom:
        return makeAtom(module_.symbols.intern(term.name));
      case PTerm::Kind::Var: {
        if (!term.isAnonymousVar()) {
            for (const auto& [name, addr] : vars) {
                if (name == term.name)
                    return makeRef(addr);
            }
        }
        const Addr cell = m0.rawHeapAlloc(1);
        memory.write(cell, makeRef(cell));
        if (!term.isAnonymousVar())
            vars.emplace_back(term.name, cell);
        return makeRef(cell);
      }
      case PTerm::Kind::List: {
        const Word car = buildQueryTerm(term.args[0], vars);
        const Word cdr = buildQueryTerm(term.args[1], vars);
        const Addr cons = m0.rawHeapAlloc(2);
        memory.write(cons, car);
        memory.write(cons + 1, cdr);
        return makeList(cons);
      }
      case PTerm::Kind::Struct: {
        std::vector<Word> args;
        args.reserve(term.args.size());
        for (const PTerm& arg : term.args)
            args.push_back(buildQueryTerm(arg, vars));
        const Addr base = m0.rawHeapAlloc(
            1 + static_cast<std::uint32_t>(args.size()));
        memory.write(base, makeFun(SymbolTable::functor(
                               module_.symbols.intern(term.name),
                               static_cast<std::uint32_t>(args.size()))));
        for (std::size_t i = 0; i < args.size(); ++i)
            memory.write(base + 1 + i, args[i]);
        return makeStr(base);
      }
    }
    PIM_PANIC("unreachable query term kind");
}

RunStats
Emulator::run(const std::string& query)
{
    // Parse the query and seed PE0's goal list with it (direct memory
    // writes: the caches are still empty, so this is setup, not traffic).
    const PTerm goal = parseGoalTerm(query);
    if (goal.kind != PTerm::Kind::Atom && goal.kind != PTerm::Kind::Struct)
        PIM_FATAL("query must be a goal, e.g. \"main(10,R)\": ", query);
    const std::uint32_t arity =
        static_cast<std::uint32_t>(goal.args.size());
    const std::uint32_t proc = module_.procId(goal.name, arity);

    queryVars_.clear();
    std::vector<Word> args;
    for (const PTerm& arg : goal.args)
        args.push_back(buildQueryTerm(arg, queryVars_));

    Machine& m0 = *machines_[0];
    const Addr rec = m0.goalRecAlloc(arity);
    PagedStore& memory = sys_->memory();
    memory.write(rec + 0, 0);
    memory.write(rec + 1, 0);
    memory.write(rec + 2, (0ull << 20) |
                              (static_cast<Word>(proc) << 4) |
                              static_cast<Word>(GoalState::Queued));
    for (std::uint32_t i = 0; i < arity; ++i)
        memory.write(rec + 3 + i, args[i]);
    m0.seedGoal(rec);

    // Bounded execution: the guard is polled here every step and inside
    // System::access on every memory reference, so a non-terminating
    // program raises SimFault(Timeout) instead of spinning forever. The
    // attach is scoped — the guard is a local and must not outlive run().
    RunGuard guard(config_.timeoutSeconds > 0
                       ? Deadline::afterSeconds(config_.timeoutSeconds)
                       : Deadline::never(),
                   config_.cancel);
    struct GuardDetach {
        System& sys;
        ~GuardDetach() { sys.setRunGuard(nullptr); }
    } detach{*sys_};
    if (config_.timeoutSeconds > 0 || config_.cancel != nullptr)
        sys_->setRunGuard(&guard);

    // The run loop: always step the earliest non-parked PE.
    std::uint64_t steps = 0;
    for (;;) {
        guard.poll();
        if (gcRequested_ && gcQuiescent()) {
            gcRequested_ = false;
            GcCollector(*this).collect();
        }
        // Quiescent: no runnable or in-flight work anywhere. Suspended
        // (floating) goals with no producer left are a program deadlock,
        // reported after the loop.
        bool quiet = goalsInTransit_ == 0;
        if (quiet) {
            for (const auto& machine : machines_) {
                if (!machine->quiescent()) {
                    quiet = false;
                    break;
                }
            }
        }
        if (quiet)
            break;

        const PeId pe = sys_->earliestRunnable();
        if (pe == kNoPe) {
            PIM_PANIC("all PEs are busy-waiting on locks: "
                      "simulation deadlock");
        }
        machines_[pe]->step();
        ++steps;
        if (config_.maxSteps != 0 && steps > config_.maxSteps) {
            // A recoverable, classified fault (not a process abort): the
            // sweep runner records the point as failed and the grid
            // keeps draining.
            throw PIM_SIM_FAULT(SimFaultKind::Timeout,
                                "emulation exceeded maxSteps (",
                                config_.maxSteps,
                                "); the program may not terminate");
        }
    }

    RunStats stats;
    for (const auto& machine : machines_) {
        stats.reductions += machine->stats().reductions;
        stats.suspensions += machine->stats().suspensions;
        stats.resumptions += machine->stats().resumptions;
        stats.instructions += machine->stats().instructions;
        stats.steals += machine->stats().steals;
    }
    stats.memoryRefs = sys_->refStats().total();
    stats.makespan = sys_->makespan();
    stats.deadlockedGoals = static_cast<std::uint64_t>(
        std::max<std::int64_t>(floatingGoals_, 0));
    stats.gc = gcStats_;
    if (stats.deadlockedGoals > 0 && config_.failOnDeadlock) {
        PIM_FATAL("program deadlock: ", stats.deadlockedGoals,
                  " goal(s) remain suspended with no producer left");
    }
    if (stats.deadlockedGoals > 0) {
        PIM_WARN("program ended with " << stats.deadlockedGoals
                                       << " suspended goal(s)");
    }
    return stats;
}

bool
Emulator::gcQuiescent() const
{
    // No PE parked implies no lock held mid-operation *except* a lock
    // retained across a just-delivered UL wakeup; check both.
    for (PeId pe = 0; pe < config_.numPes; ++pe) {
        if (sys_->parked(pe))
            return false;
        if (sys_->cache(pe).lockDirectory().heldCount() != 0)
            return false;
    }
    return true;
}

std::vector<std::pair<std::string, std::string>>
Emulator::queryBindings() const
{
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(queryVars_.size());
    for (const auto& [name, addr] : queryVars_)
        out.emplace_back(name, format(makeRef(addr)));
    return out;
}

} // namespace pim::kl1
