#include "kl1/gc.h"

#include "common/log.h"
#include "common/xassert.h"
#include "kl1/emulator.h"

namespace pim::kl1 {

GcCollector::GcCollector(Emulator& emu)
    : emu_(emu)
{
    segments_.resize(emu_.config().numPes);
    for (PeId pe = 0; pe < emu_.config().numPes; ++pe) {
        const Range seg = emu_.layout().segment(Area::Heap, pe);
        const std::uint64_t half = seg.size / 2;
        Machine& machine = *emu_.machines_[pe];
        Segment& s = segments_[pe];
        if (machine.heapLowHalf_) {
            s.fromBase = seg.base;
            s.fromEnd = seg.base + half;
            s.toBase = seg.base + half;
        } else {
            s.fromBase = seg.base + half;
            s.fromEnd = seg.base + half + half;
            s.toBase = seg.base;
        }
        s.toCursor = s.toBase;
        s.toEnd = s.toBase + half;
    }
}

bool
GcCollector::inFromSpace(Addr addr) const
{
    if (emu_.layout().areaOf(addr) != Area::Heap)
        return false;
    const PeId owner = emu_.layout().peOf(addr);
    const Segment& s = segments_[owner];
    return addr >= s.fromBase && addr < s.fromEnd;
}

PeId
GcCollector::segmentOwner(Addr addr) const
{
    return emu_.layout().peOf(addr);
}

Addr
GcCollector::copyObject(Addr addr, std::uint32_t nwords)
{
    PagedStore& memory = emu_.sys_->memory();
    const Word first = memory.read(addr);
    if (tagOf(first) == Tag::Fwd)
        return ptrOf(first);

    Segment& s = segments_[segmentOwner(addr)];
    if (s.toCursor + nwords > s.toEnd) {
        PIM_FATAL("GC to-space exhausted on pe", segmentOwner(addr),
                  "; increase LayoutConfig::heapWordsPerPe");
    }
    const Addr dst = s.toCursor;
    s.toCursor += nwords;
    for (std::uint32_t i = 0; i < nwords; ++i)
        memory.write(dst + i, memory.read(addr + i));
    memory.write(addr, makeFwd(dst));
    worklist_.emplace_back(dst, nwords);
    copiedWords_ += nwords;
    copiedObjects_ += 1;
    return dst;
}

Word
GcCollector::relocate(Word w)
{
    PagedStore& memory = emu_.sys_->memory();
    switch (tagOf(w)) {
      case Tag::Int:
      case Tag::Atom:
      case Tag::Fun:
        return w;
      case Tag::Fwd:
        PIM_PANIC("forwarding word escaped from-space");
      case Tag::Hook:
        // Suspension records do not move, but the floating goals hooked
        // through them are live and their arguments must be traced.
        scanHookList(ptrOf(w));
        return w;
      case Tag::Ref: {
        const Addr cell = ptrOf(w);
        if (!inFromSpace(cell))
            return w;
        return makeRef(copyObject(cell, 1));
      }
      case Tag::List: {
        const Addr cons = ptrOf(w);
        if (!inFromSpace(cons))
            return w;
        return makeList(copyObject(cons, 2));
      }
      case Tag::Vec: {
        const Addr base = ptrOf(w);
        if (!inFromSpace(base))
            return w;
        const Word header = memory.read(base);
        if (tagOf(header) == Tag::Fwd)
            return makeVec(ptrOf(header));
        if (tagOf(header) != Tag::Int || intOf(header) < 0)
            return w; // garbage word, leave untouched
        const std::uint32_t nwords =
            1 + static_cast<std::uint32_t>(intOf(header));
        const Segment& s = segments_[segmentOwner(base)];
        if (base + nwords > s.fromEnd)
            return w;
        return makeVec(copyObject(base, nwords));
      }
      case Tag::Str: {
        const Addr base = ptrOf(w);
        if (!inFromSpace(base))
            return w;
        const Word fun = memory.read(base);
        if (tagOf(fun) == Tag::Fwd)
            return makeStr(ptrOf(fun));
        if (tagOf(fun) != Tag::Fun)
            return w; // conservative: garbage word, leave untouched
        const std::uint32_t nwords =
            1 + SymbolTable::functorArity(funOf(fun));
        const Segment& s = segments_[segmentOwner(base)];
        if (base + nwords > s.fromEnd)
            return w; // garbage structure running past the semispace
        return makeStr(copyObject(base, nwords));
      }
    }
    return w;
}

void
GcCollector::scanRange(Addr base, std::uint32_t nwords)
{
    PagedStore& memory = emu_.sys_->memory();
    for (std::uint32_t i = 0; i < nwords; ++i) {
        const Word w = memory.read(base + i);
        const Word relocated = relocate(w);
        if (relocated != w)
            memory.write(base + i, relocated);
    }
}

void
GcCollector::scanHookList(Addr susp_head)
{
    PagedStore& memory = emu_.sys_->memory();
    Addr rec = susp_head;
    int guard = 1 << 22;
    while (rec != 0 && guard-- > 0) {
        const Word goal = memory.read(rec + 1);
        const Word seq = memory.read(rec + 2);
        scanIfFloatingMatch(static_cast<Addr>(goal), seq);
        rec = static_cast<Addr>(memory.read(rec));
    }
    PIM_ASSERT(guard > 0, "suspension list cycle during GC");
}

void
GcCollector::scanIfFloatingMatch(Addr rec, std::uint64_t seq)
{
    const Word state = emu_.sys_->memory().read(rec + 2);
    if (Machine::stateTag(state) == GoalState::Floating &&
        Machine::seqOf(state) == seq) {
        scanGoalRecord(rec);
    }
}

void
GcCollector::scanGoalRecord(Addr rec)
{
    if (!scannedGoals_.insert(rec).second)
        return;
    PagedStore& memory = emu_.sys_->memory();
    const Word state = memory.read(rec + 2);
    const std::uint32_t proc = Machine::procOf(state);
    if (proc >= emu_.module().procs.size())
        return; // stale/garbage record reached through a dead hook
    const std::uint32_t arity = emu_.module().procs[proc].arity;
    for (std::uint32_t i = 0; i < arity; ++i) {
        const Word w = memory.read(rec + 3 + i);
        const Word relocated = relocate(w);
        if (relocated != w)
            memory.write(rec + 3 + i, relocated);
    }
}

void
GcCollector::collect()
{
    // Make shared memory authoritative and start every cache cold.
    emu_.sys_->flushAllCaches();

    std::uint64_t live_before = 0;
    for (PeId pe = 0; pe < emu_.config().numPes; ++pe) {
        live_before +=
            emu_.machines_[pe]->heapTop_ - segments_[pe].fromBase;
    }

    // -- Roots -------------------------------------------------------------
    for (PeId pe = 0; pe < emu_.config().numPes; ++pe) {
        Machine& m = *emu_.machines_[pe];
        PIM_ASSERT(emu_.sys_->cache(pe).lockDirectory().heldCount() == 0,
                   "GC at a non-quiescent point: pe holds a lock");
        for (Word& reg : m.regs_)
            reg = relocate(reg);
        for (Word& w : m.curArgs_)
            w = relocate(w);
        for (Word& w : m.fetchArgs_)
            w = relocate(w);
        for (Addr& cell : m.suspendCands_) {
            const Word moved = relocate(makeRef(cell));
            cell = ptrOf(moved);
        }
        for (Machine::MicroOp& op : m.pendingWork_) {
            switch (op.kind) {
              case Machine::MicroOp::Kind::HookVars:
                for (Addr& var : op.vars) {
                    const Word moved = relocate(makeRef(var));
                    var = ptrOf(moved);
                }
                scanIfFloatingMatch(op.addr, op.seq);
                break;
              case Machine::MicroOp::Kind::ResumeGoal:
                scanIfFloatingMatch(op.addr, op.seq);
                break;
              case Machine::MicroOp::Kind::ResumeWalk:
                scanHookList(op.addr);
                break;
            }
        }
        for (Addr rec : m.goalList_)
            scanGoalRecord(rec);
        if (m.donationRec_ != kNoAddr)
            scanGoalRecord(m.donationRec_);
        if (m.fetchRec_ != kNoAddr)
            scanGoalRecord(m.fetchRec_);
        // A goal in this PE's reply slot is in transit: trace it.
        const Word reply =
            emu_.sys_->memory().read(m.commBase_ + 4);
        if (reply > 1 && (reply & 3) == 2)
            scanGoalRecord(static_cast<Addr>(reply >> 2));
    }
    for (auto& [name, addr] : emu_.queryVars_) {
        const Word moved = relocate(makeRef(addr));
        addr = ptrOf(moved);
    }

    // -- Cheney scan ---------------------------------------------------------
    while (!worklist_.empty()) {
        const auto [base, nwords] = worklist_.back();
        worklist_.pop_back();
        scanRange(base, nwords);
    }

    // -- Flip ------------------------------------------------------------
    for (PeId pe = 0; pe < emu_.config().numPes; ++pe) {
        Machine& m = *emu_.machines_[pe];
        m.heapTop_ = segments_[pe].toCursor;
        m.heapEnd_ = segments_[pe].toEnd;
        m.heapLowHalf_ = !m.heapLowHalf_;
    }

    emu_.gcStats_.collections += 1;
    emu_.gcStats_.wordsCopied += copiedWords_;
    emu_.gcStats_.cellsCopied += copiedObjects_;
    emu_.gcStats_.wordsReclaimed += live_before - copiedWords_;
    PIM_INFO("GC #" << emu_.gcStats_.collections << ": copied "
                    << copiedWords_ << " words, reclaimed "
                    << live_before - copiedWords_);
}

} // namespace pim::kl1
