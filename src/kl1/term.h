/**
 * @file
 * Tagged-word term representation (paper Section 2.2).
 *
 * KL1 data lives in simulated shared memory as 64-bit tagged words:
 *
 *   REF   pointer to a variable cell; an unbound cell points to itself
 *   HOOK  an unbound cell with a list of suspension records hooked on it
 *   INT   small integer (signed, 59 bits)
 *   ATOM  interned constant ('[]' is the nil atom)
 *   LIST  pointer to a two-word cons cell [car, cdr]
 *   STR   pointer to a structure: [FUN word, arg0 ... argN-1]
 *   FUN   functor word at the head of a structure
 *
 * The tag sits in the low 4 bits; payloads (addresses, atom ids) occupy
 * the upper bits; integers are stored shifted with sign preserved.
 */

#ifndef PIMCACHE_KL1_TERM_H_
#define PIMCACHE_KL1_TERM_H_

#include <cstdint>
#include <string>

#include "common/types.h"
#include "common/xassert.h"
#include "kl1/symtab.h"

namespace pim::kl1 {

/** Term word tags. */
enum class Tag : std::uint8_t {
    Ref = 0,
    Hook = 1,
    Int = 2,
    Atom = 3,
    List = 4,
    Str = 5,
    Fun = 6,
    Fwd = 7, ///< GC forwarding word (from-space only, never a value).
    Vec = 8, ///< Pointer to a vector: [size (Int word), elem0 ...].
};

inline constexpr int kTagBits = 4;
inline constexpr Word kTagMask = (Word{1} << kTagBits) - 1;

/** Extract the tag of a term word. */
inline Tag
tagOf(Word w)
{
    return static_cast<Tag>(w & kTagMask);
}

/** Pointer payload (REF/HOOK/LIST/STR). */
inline Addr
ptrOf(Word w)
{
    return w >> kTagBits;
}

/** Build a pointer-carrying term word. */
inline Word
makePtr(Tag tag, Addr addr)
{
    return (static_cast<Word>(addr) << kTagBits) |
           static_cast<Word>(tag);
}

inline Word makeRef(Addr a) { return makePtr(Tag::Ref, a); }
inline Word makeHook(Addr susp) { return makePtr(Tag::Hook, susp); }
inline Word makeList(Addr cons) { return makePtr(Tag::List, cons); }
inline Word makeStr(Addr str) { return makePtr(Tag::Str, str); }
inline Word makeVec(Addr vec) { return makePtr(Tag::Vec, vec); }

/** Build/inspect integers. */
inline Word
makeInt(std::int64_t v)
{
    return (static_cast<Word>(v) << kTagBits) |
           static_cast<Word>(Tag::Int);
}

inline std::int64_t
intOf(Word w)
{
    return static_cast<std::int64_t>(w) >> kTagBits;
}

/** Build/inspect atoms. */
inline Word
makeAtom(AtomId id)
{
    return (static_cast<Word>(id) << kTagBits) |
           static_cast<Word>(Tag::Atom);
}

inline AtomId
atomOf(Word w)
{
    return static_cast<AtomId>(w >> kTagBits);
}

/** GC forwarding word pointing at the object's to-space copy. */
inline Word
makeFwd(Addr addr)
{
    return makePtr(Tag::Fwd, addr);
}

/** The nil atom '[]'. */
inline Word
makeNil()
{
    return makeAtom(SymbolTable::kNil);
}

/** Build/inspect functor words. */
inline Word
makeFun(FunctorId f)
{
    return (static_cast<Word>(f) << kTagBits) |
           static_cast<Word>(Tag::Fun);
}

inline FunctorId
funOf(Word w)
{
    return static_cast<FunctorId>(w >> kTagBits);
}

/** True for an unbound variable cell at @p addr holding word @p w. */
inline bool
isUnboundAt(Word w, Addr addr)
{
    return tagOf(w) == Tag::Ref && ptrOf(w) == addr;
}

/** True for words that are values (not variable indirections). */
inline bool
isValueWord(Word w)
{
    const Tag t = tagOf(w);
    return t == Tag::Int || t == Tag::Atom || t == Tag::List ||
           t == Tag::Str || t == Tag::Vec;
}

/** Host-side structural rendering of a term (for tests and results). */
class TermReader
{
  public:
    virtual ~TermReader() = default;
    /** Read one word of simulated memory without timing side effects. */
    virtual Word peek(Addr addr) const = 0;
};

/**
 * Render a term to text ("[1,2|X]", "f(a,B)") by following pointers via
 * @p reader. Unbound variables render as "_<addr>". Depth limited.
 */
std::string formatTerm(Word w, const TermReader& reader,
                       const SymbolTable& symbols, int depth = 24);

} // namespace pim::kl1

#endif // PIMCACHE_KL1_TERM_H_
