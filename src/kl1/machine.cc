#include "kl1/machine.h"

#include <algorithm>

#include "common/xassert.h"
#include "kl1/emulator.h"

namespace pim::kl1 {

Machine::Machine(PeId pe, Emulator& emu)
    : pe_(pe),
      emu_(emu),
      goalArea_(emu.layout().segment(Area::Goal, pe)),
      suspArea_(emu.layout().segment(Area::Susp, pe)),
      heapTop_(emu.layout().segment(Area::Heap, pe).base),
      heapEnd_(emu.config().enableGc
                   ? emu.layout().segment(Area::Heap, pe).base +
                         emu.layout().segment(Area::Heap, pe).size / 2
                   : emu.layout().segment(Area::Heap, pe).end()),
      commBase_(emu.layout().segment(Area::Comm, pe).base),
      nextVictim_((pe + 1) % emu.config().numPes)
{
    const std::uint32_t block_words =
        emu.config().cache.geometry.blockWords;
    // Records never share a cache block (so consuming one record never
    // purges a neighbour's), and the state word's block — the first
    // `goalOptCutoff_` words — stays unoptimized (see machine.h).
    goalAlign_ = std::max<std::uint32_t>(4, block_words);
    goalOptCutoff_ = (3 + block_words - 1) / block_words * block_words;
}

// ---------------------------------------------------------------------
// Memory plumbing
// ---------------------------------------------------------------------

Word
Machine::mem(MemOp op, Addr addr, Area area, Word wdata)
{
    PIM_ASSERT(!stalled_, "memory access while already stalled");
    const System::Access result =
        emu_.sys_->access(pe_, op, addr, area, wdata);
    if (result.lockWait) {
        stalled_ = true;
        return 0;
    }
    return result.data;
}

bool
Machine::lockCell(Addr addr, Word& value)
{
    // Across a lock-stall retry we may already hold this lock; re-locking
    // would be a protocol error, so read the (exclusively held) word.
    if (emu_.sys_->cache(pe_).lockDirectory().holds(addr)) {
        value = mem(MemOp::R, addr, areaOf(addr));
        return !stalled_;
    }
    value = mem(MemOp::LR, addr, areaOf(addr));
    return !stalled_;
}

void
Machine::unlockCell(Addr addr, bool write, Word value)
{
    if (write) {
        mem(MemOp::UW, addr, areaOf(addr), value);
    } else {
        mem(MemOp::U, addr, areaOf(addr));
    }
    PIM_ASSERT(!stalled_, "unlock operations cannot be inhibited");
}

Area
Machine::areaOf(Addr addr) const
{
    return emu_.layout().areaOf(addr);
}

Addr
Machine::heapAlloc(std::uint32_t nwords)
{
    if (heapTop_ + nwords > heapEnd_) {
        PIM_FATAL("pe", pe_, ": heap semispace exhausted; increase "
                  "LayoutConfig::heapWordsPerPe",
                  emu_.config().enableGc
                      ? " (the last GC could not reclaim enough)"
                      : " or set Kl1Config::enableGc");
    }
    const Addr addr = heapTop_;
    heapTop_ += nwords;
    stats_.heapWords += nwords;
    if (emu_.config().enableGc &&
        heapTop_ + emu_.config().gcSlackWords > heapEnd_) {
        emu_.gcRequested_ = true;
    }
    return addr;
}

Addr
Machine::rawHeapAlloc(std::uint32_t nwords)
{
    return heapAlloc(nwords);
}

std::uint32_t
Machine::goalRecWords(std::uint32_t arity) const
{
    const std::uint32_t need = 3 + arity;
    return (need + goalAlign_ - 1) / goalAlign_ * goalAlign_;
}

Addr
Machine::goalRecAlloc(std::uint32_t arity)
{
    const Addr rec = goalArea_.allocate(goalRecWords(arity));
    if (rec == kNoAddr) {
        PIM_FATAL("pe", pe_, ": goal area exhausted; increase "
                  "LayoutConfig::goalWordsPerPe");
    }
    return rec;
}

void
Machine::goalRecFree(Addr rec, std::uint32_t arity)
{
    goalArea_.free(rec, goalRecWords(arity));
}

void
Machine::seedGoal(Addr record)
{
    goalList_.push_back(record);
}

// ---------------------------------------------------------------------
// Dereferencing / unification
// ---------------------------------------------------------------------

Machine::Deref
Machine::deref(Word w)
{
    int guard = 1 << 20;
    while (tagOf(w) == Tag::Ref && guard-- > 0) {
        const Addr cell = ptrOf(w);
        const Word content = mem(MemOp::R, cell, areaOf(cell));
        if (stalled_)
            return {};
        if (isUnboundAt(content, cell) || tagOf(content) == Tag::Hook)
            return {content, cell};
        w = content;
    }
    PIM_ASSERT(guard > 0, "reference cycle while dereferencing");
    return {w, kNoAddr};
}

Machine::PassiveResult
Machine::passiveUnify(Word a, Word b)
{
    std::vector<std::pair<Word, Word>> stack{{a, b}};
    while (!stack.empty()) {
        auto [wa, wb] = stack.back();
        stack.pop_back();
        const Deref da = deref(wa);
        if (stalled_)
            return PassiveResult::Fail; // caller checks stalled_ first
        const Deref db = deref(wb);
        if (stalled_)
            return PassiveResult::Fail;

        if (da.unbound() && db.unbound()) {
            if (da.cell == db.cell)
                continue;
            // Binding is forbidden in the passive part: suspend on both.
            noteSuspendCandidate(da.cell);
            noteSuspendCandidate(db.cell);
            return PassiveResult::Suspend;
        }
        if (da.unbound() || db.unbound()) {
            noteSuspendCandidate(da.unbound() ? da.cell : db.cell);
            return PassiveResult::Suspend;
        }

        const Word va = da.value;
        const Word vb = db.value;
        if (tagOf(va) != tagOf(vb))
            return PassiveResult::Fail;
        switch (tagOf(va)) {
          case Tag::Int:
          case Tag::Atom:
            if (va != vb)
                return PassiveResult::Fail;
            break;
          case Tag::List: {
            const Addr pa = ptrOf(va);
            const Addr pb = ptrOf(vb);
            if (pa == pb)
                break;
            const Word ca = mem(MemOp::R, pa, areaOf(pa));
            if (stalled_)
                return PassiveResult::Fail;
            const Word cb = mem(MemOp::R, pb, areaOf(pb));
            if (stalled_)
                return PassiveResult::Fail;
            const Word ta = mem(MemOp::R, pa + 1, areaOf(pa));
            if (stalled_)
                return PassiveResult::Fail;
            const Word tb = mem(MemOp::R, pb + 1, areaOf(pb));
            if (stalled_)
                return PassiveResult::Fail;
            stack.push_back({ta, tb});
            stack.push_back({ca, cb});
            break;
          }
          case Tag::Str:
          case Tag::Vec: {
            const Addr pa = ptrOf(va);
            const Addr pb = ptrOf(vb);
            if (pa == pb)
                break;
            // Word 0 is the functor (Str) or the size (Vec); equal word
            // 0 implies equal argument/element counts.
            const Word fa = mem(MemOp::R, pa, areaOf(pa));
            if (stalled_)
                return PassiveResult::Fail;
            const Word fb = mem(MemOp::R, pb, areaOf(pb));
            if (stalled_)
                return PassiveResult::Fail;
            if (fa != fb)
                return PassiveResult::Fail;
            const std::uint32_t count =
                tagOf(va) == Tag::Str
                    ? SymbolTable::functorArity(funOf(fa))
                    : static_cast<std::uint32_t>(intOf(fa));
            for (std::uint32_t i = 0; i < count; ++i) {
                const Word xa = mem(MemOp::R, pa + 1 + i, areaOf(pa));
                if (stalled_)
                    return PassiveResult::Fail;
                const Word xb = mem(MemOp::R, pb + 1 + i, areaOf(pb));
                if (stalled_)
                    return PassiveResult::Fail;
                stack.push_back({xa, xb});
            }
            break;
          }
          default:
            PIM_PANIC("bad term word in passive unification");
        }
    }
    return PassiveResult::Ok;
}

void
Machine::bindLockedCell(Addr cell, Word old_value, Word value)
{
    unlockCell(cell, true, value);
    if (tagOf(old_value) == Tag::Hook) {
        MicroOp op;
        op.kind = MicroOp::Kind::ResumeWalk;
        op.addr = ptrOf(old_value);
        pendingWork_.push_back(std::move(op));
    }
}

bool
Machine::activeUnify(Word a, Word b)
{
    std::vector<std::pair<Word, Word>> stack{{a, b}};
    while (!stack.empty()) {
        auto [wa, wb] = stack.back();
        stack.pop_back();
        const Deref da = deref(wa);
        if (stalled_)
            return false;
        const Deref db = deref(wb);
        if (stalled_)
            return false;

        if (da.unbound() && db.unbound()) {
            if (da.cell == db.cell)
                continue;
            const Addr lo = std::min(da.cell, db.cell);
            const Addr hi = std::max(da.cell, db.cell);
            Word lo_val = 0;
            Word hi_val = 0;
            // Address-ordered locking prevents deadlock between PEs.
            if (!lockCell(lo, lo_val))
                return false;
            if (!lockCell(hi, hi_val))
                return false; // parked holding lo; retry resumes safely
            const bool lo_unbound =
                isUnboundAt(lo_val, lo) || tagOf(lo_val) == Tag::Hook;
            const bool hi_unbound =
                isUnboundAt(hi_val, hi) || tagOf(hi_val) == Tag::Hook;
            if (!lo_unbound || !hi_unbound) {
                // Raced with another binder; release and re-examine.
                unlockCell(lo, false, 0);
                unlockCell(hi, false, 0);
                stack.push_back({makeRef(lo), makeRef(hi)});
                continue;
            }
            // Bind hi -> lo. Suspensions hooked on hi migrate to lo.
            if (tagOf(hi_val) == Tag::Hook) {
                const Addr h2 = ptrOf(hi_val);
                Addr tail = h2;
                for (;;) {
                    const Word next = mem(MemOp::R, tail, Area::Susp);
                    PIM_ASSERT(!stalled_,
                               "suspension records are never locked");
                    if (next == 0)
                        break;
                    tail = static_cast<Addr>(next);
                }
                const Addr lo_head =
                    tagOf(lo_val) == Tag::Hook ? ptrOf(lo_val) : 0;
                mem(MemOp::W, tail, Area::Susp,
                    static_cast<Word>(lo_head));
                PIM_ASSERT(!stalled_);
                unlockCell(lo, true, makeHook(h2));
            } else {
                unlockCell(lo, false, 0);
            }
            unlockCell(hi, true, makeRef(lo));
            continue;
        }

        if (da.unbound() || db.unbound()) {
            const Addr cell = da.unbound() ? da.cell : db.cell;
            const Word value = da.unbound() ? db.value : da.value;
            Word current = 0;
            if (!lockCell(cell, current))
                return false;
            if (!(isUnboundAt(current, cell) ||
                  tagOf(current) == Tag::Hook)) {
                // Bound by another PE meanwhile; re-examine.
                unlockCell(cell, false, 0);
                stack.push_back({makeRef(cell), value});
                continue;
            }
            bindLockedCell(cell, current, value);
            continue;
        }

        // Both bound: structural unification.
        const Word va = da.value;
        const Word vb = db.value;
        auto failure = [&]() {
            PIM_FATAL("pe", pe_, ": unification failure: ",
                      emu_.format(va), " = ", emu_.format(vb),
                      " (FGHC body unification must not fail)");
        };
        if (tagOf(va) != tagOf(vb))
            failure();
        switch (tagOf(va)) {
          case Tag::Int:
          case Tag::Atom:
            if (va != vb)
                failure();
            break;
          case Tag::List: {
            const Addr pa = ptrOf(va);
            const Addr pb = ptrOf(vb);
            if (pa == pb)
                break;
            const Word ca = mem(MemOp::R, pa, areaOf(pa));
            if (stalled_)
                return false;
            const Word cb = mem(MemOp::R, pb, areaOf(pb));
            if (stalled_)
                return false;
            const Word ta = mem(MemOp::R, pa + 1, areaOf(pa));
            if (stalled_)
                return false;
            const Word tb = mem(MemOp::R, pb + 1, areaOf(pb));
            if (stalled_)
                return false;
            stack.push_back({ta, tb});
            stack.push_back({ca, cb});
            break;
          }
          case Tag::Str:
          case Tag::Vec: {
            const Addr pa = ptrOf(va);
            const Addr pb = ptrOf(vb);
            if (pa == pb)
                break;
            const Word fa = mem(MemOp::R, pa, areaOf(pa));
            if (stalled_)
                return false;
            const Word fb = mem(MemOp::R, pb, areaOf(pb));
            if (stalled_)
                return false;
            if (fa != fb)
                failure();
            const std::uint32_t count =
                tagOf(va) == Tag::Str
                    ? SymbolTable::functorArity(funOf(fa))
                    : static_cast<std::uint32_t>(intOf(fa));
            for (std::uint32_t i = 0; i < count; ++i) {
                const Word xa = mem(MemOp::R, pa + 1 + i, areaOf(pa));
                if (stalled_)
                    return false;
                const Word xb = mem(MemOp::R, pb + 1 + i, areaOf(pb));
                if (stalled_)
                    return false;
                stack.push_back({xa, xb});
            }
            break;
          }
          default:
            PIM_PANIC("bad term word in active unification");
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// Stepping
// ---------------------------------------------------------------------

void
Machine::step()
{
    PIM_ASSERT(!emu_.sys_->parked(pe_), "stepping a parked PE");
    stalled_ = false;
    if (mode_ == Mode::Run) {
        runInstr();
    } else {
        stepFetchWork();
    }
}

bool
Machine::quiescent() const
{
    return mode_ == Mode::FetchWork && goalList_.empty() &&
           pendingWork_.empty() && donationRequester_ == kNoPe &&
           donationRec_ == kNoAddr && fetchRec_ == kNoAddr && !resumeRun_;
}

void
Machine::stepFetchWork()
{
    if (!pendingWork_.empty()) {
        processMicroOp();
        return;
    }
    if (donationRequester_ != kNoPe) {
        doDonation();
        return;
    }
    // An idle PE has nothing to donate: it polls its request slot only
    // occasionally (to decline promptly enough), not on every idle spin,
    // so idle machines do not flood the reference stream with polls.
    const bool idle_now = goalList_.empty() && fetchRec_ == kNoAddr &&
                          !resumeRun_;
    if (emu_.config().numPes > 1 &&
        (!idle_now || (++idlePollGate_ & 7) == 0)) {
        if (!pollRequests())
            return; // stalled (or a request was claimed; donate next)
    }
    if (donationRequester_ != kNoPe)
        return;
    if (resumeRun_) {
        resumeRun_ = false;
        mode_ = Mode::Run;
        return;
    }
    if (fetchRec_ != kNoAddr || !goalList_.empty()) {
        if (dequeueLocal())
            finishGoalFetch();
        return;
    }
    stepIdle();
}

bool
Machine::pollRequests()
{
    const Word value = mem(MemOp::RI, commBase_ + 0, Area::Comm);
    if (stalled_)
        return false;
    if (value == 0)
        return true;
    mem(MemOp::W, commBase_ + 0, Area::Comm, 0);
    if (stalled_)
        return false;
    donationRequester_ = static_cast<PeId>(value - 1);
    return true;
}

bool
Machine::doDonation()
{
    const Addr reply = emu_.layout().segment(Area::Comm,
                                             donationRequester_).base + 4;
    if (donationRec_ == kNoAddr) {
        if (goalList_.size() < std::max(emu_.config().donateThreshold,
                                        1u)) {
            // Decline: write sender id first, then the flag word the
            // requester polls (issue order is completion order here).
            mem(MemOp::W, reply + 1, Area::Comm, pe_);
            if (stalled_)
                return false;
            mem(MemOp::W, reply, Area::Comm, 1);
            if (stalled_)
                return false;
            stats_.declines += 1;
            donationRequester_ = kNoPe;
            return true;
        }
        donationRec_ = goalList_.back();
        goalList_.pop_back();
    }
    // The real machine walks tail->prev to detach; emit that read.
    mem(MemOp::R, donationRec_ + 1, Area::Goal);
    if (stalled_)
        return false;
    if (!goalList_.empty()) {
        mem(MemOp::W, goalList_.back() + 0, Area::Goal, 0);
        if (stalled_)
            return false;
    }
    mem(MemOp::W, reply + 1, Area::Comm, pe_);
    if (stalled_)
        return false;
    mem(MemOp::W, reply, Area::Comm,
        (static_cast<Word>(donationRec_) << 2) | 2);
    if (stalled_)
        return false;
    emu_.goalsInTransit_ += 1;
    stats_.donations += 1;
    donationRequester_ = kNoPe;
    donationRec_ = kNoAddr;
    return true;
}

void
Machine::stepIdle()
{
    const std::uint32_t spin = emu_.config().idleSpinCycles;
    if (emu_.config().numPes <= 1) {
        emu_.sys_->advanceClock(pe_, spin);
        return;
    }
    if (stealOutstanding_) {
        const Word value = mem(MemOp::RI, commBase_ + 4, Area::Comm);
        if (stalled_)
            return;
        if (value == 0) {
            emu_.sys_->advanceClock(pe_, spin);
            return;
        }
        if (value == 1) { // declined
            mem(MemOp::W, commBase_ + 4, Area::Comm, 0);
            if (stalled_)
                return;
            stealOutstanding_ = false;
            nextVictim_ = (nextVictim_ + 1) % emu_.config().numPes;
            if (nextVictim_ == pe_)
                nextVictim_ = (nextVictim_ + 1) % emu_.config().numPes;
            // Back off so a starved machine does not flood the bus with
            // request/decline traffic.
            nextRequestAt_ = emu_.sys_->clock(pe_) + stealBackoff_;
            stealBackoff_ = std::min<Cycles>(stealBackoff_ * 2, 4096);
            emu_.sys_->advanceClock(pe_, spin);
            return;
        }
        // A goal arrived: read the sender id and start consuming it.
        const Word sender = mem(MemOp::R, commBase_ + 5, Area::Comm);
        if (stalled_)
            return;
        mem(MemOp::W, commBase_ + 4, Area::Comm, 0);
        if (stalled_)
            return;
        stealOutstanding_ = false;
        stealBackoff_ = 64; // work found: reset the request backoff
        fetchRec_ = static_cast<Addr>(value >> 2);
        fetchOwner_ = static_cast<PeId>(sender);
        fetchRemote_ = true;
        fetchIdx_ = 0;
        fetchArgs_.clear();
        if (readGoalRecord(fetchRec_, fetchOwner_, true))
            finishGoalFetch();
        return;
    }
    // Send a work request to the next victim (unless backing off).
    if (emu_.sys_->clock(pe_) < nextRequestAt_) {
        emu_.sys_->advanceClock(pe_, spin);
        return;
    }
    const Addr victim_req =
        emu_.layout().segment(Area::Comm, nextVictim_).base;
    Word current = 0;
    if (!lockCell(victim_req, current))
        return;
    if (current == 0) {
        unlockCell(victim_req, true, pe_ + 1);
        stealOutstanding_ = true;
    } else {
        unlockCell(victim_req, false, 0);
        nextVictim_ = (nextVictim_ + 1) % emu_.config().numPes;
        if (nextVictim_ == pe_)
            nextVictim_ = (nextVictim_ + 1) % emu_.config().numPes;
    }
    emu_.sys_->advanceClock(pe_, spin);
}

bool
Machine::dequeueLocal()
{
    if (fetchRec_ == kNoAddr) {
        fetchRec_ = goalList_.front();
        goalList_.pop_front();
        fetchOwner_ = pe_;
        fetchRemote_ = false;
        fetchIdx_ = 0;
        fetchArgs_.clear();
    }
    if (!readGoalRecord(fetchRec_, fetchOwner_, fetchRemote_))
        return false;
    if (!fetchRemote_ && !goalList_.empty()) {
        // The new list head has no predecessor any more.
        mem(MemOp::W, goalList_.front() + 1, Area::Goal, 0);
        if (stalled_)
            return false;
    }
    return true;
}

bool
Machine::readGoalRecord(Addr rec, PeId owner, bool remote)
{
    (void)owner;
    (void)remote;
    for (;;) {
        std::uint32_t total = 2 + fetchArity_;
        const bool arity_known = fetchIdx_ >= 1;
        Addr addr = 0;
        if (fetchIdx_ == 0) {
            addr = rec + 2; // state word first: it names the procedure
        } else if (fetchIdx_ == 1) {
            addr = rec + 0; // list link
        } else {
            addr = rec + 3 + (fetchIdx_ - 2);
        }
        const bool last = arity_known && fetchIdx_ + 1 == total;
        // The record's first block (holding the state word) is read with
        // plain R and never purged (see machine.h); only the pure
        // write-once/read-once argument words use ER/RP. Per the paper's
        // rule, RP (not ER) reads the last word of the reading area and
        // any word that is the last of its cache block: an ER that
        // misses on a block-last word degrades to a plain read (case
        // iii), which would leave live copies behind and break the
        // recycling DW's no-remote-copy precondition.
        const std::uint32_t offset =
            static_cast<std::uint32_t>(addr - rec);
        MemOp op = MemOp::R;
        if (offset >= goalOptCutoff_) {
            const std::uint32_t bw =
                emu_.config().cache.geometry.blockWords;
            const bool block_last = offset % bw == bw - 1;
            op = (last || block_last) ? MemOp::RP : MemOp::ER;
        }
        const Word value = mem(op, addr, Area::Goal);
        if (stalled_)
            return false;
        if (fetchIdx_ == 0) {
            fetchState_ = value;
            PIM_ASSERT(stateTag(value) == GoalState::Queued,
                       "dequeued a goal record that is not queued");
            fetchArity_ = emu_.module().procs[procOf(value)].arity;
        } else if (fetchIdx_ >= 2) {
            fetchArgs_.push_back(value);
        }
        ++fetchIdx_;
        total = 2 + fetchArity_;
        if (fetchIdx_ >= total)
            return true;
    }
}

void
Machine::finishGoalFetch()
{
    const std::uint32_t proc = procOf(fetchState_);
    stealBackoff_ = 64; // running again: reset the request backoff
    // A record is freed to its creator's segment allocator: resumption
    // and donation can move a goal to any PE's list, but the record
    // itself stays where the suspending/spawning PE allocated it.
    const PeId region_owner = emu_.layout().peOf(fetchRec_);
    emu_.machines_[region_owner]->goalRecFree(fetchRec_, fetchArity_);
    if (fetchRemote_) {
        emu_.goalsInTransit_ -= 1;
        stats_.steals += 1;
    }
    fetchRec_ = kNoAddr;
    startGoal(proc, fetchArgs_.data(),
              static_cast<std::uint32_t>(fetchArgs_.size()));
}

void
Machine::startGoal(std::uint32_t proc, const Word* args,
                   std::uint32_t nargs)
{
    PIM_ASSERT(nargs == emu_.module().procs[proc].arity);
    for (std::uint32_t i = 0; i < nargs; ++i)
        regs_[i] = args[i];
    curProc_ = proc;
    curArgs_.assign(args, args + nargs);
    suspendCands_.clear();
    pc_ = emu_.module().procs[proc].entryPc;
    failTarget_ = pc_;
    tailPolls_ = 0;
    mode_ = Mode::Run;
}

// ---------------------------------------------------------------------
// Micro-operations (suspension / resumption)
// ---------------------------------------------------------------------

bool
Machine::processMicroOp()
{
    MicroOp& op = pendingWork_.front();
    switch (op.kind) {
      case MicroOp::Kind::ResumeWalk: {
        const Addr srec = op.addr;
        const Word next = mem(MemOp::R, srec, Area::Susp);
        if (stalled_)
            return false;
        const Word goal = mem(MemOp::R, srec + 1, Area::Susp);
        if (stalled_)
            return false;
        const Word seq = mem(MemOp::R, srec + 2, Area::Susp);
        if (stalled_)
            return false;
        const PeId owner = emu_.layout().peOf(srec);
        emu_.machines_[owner]->suspArea_.free(srec, 3);
        pendingWork_.pop_front();
        MicroOp resume;
        resume.kind = MicroOp::Kind::ResumeGoal;
        resume.addr = static_cast<Addr>(goal);
        resume.seq = seq;
        pendingWork_.push_back(std::move(resume));
        if (next != 0) {
            MicroOp walk;
            walk.kind = MicroOp::Kind::ResumeWalk;
            walk.addr = static_cast<Addr>(next);
            pendingWork_.push_back(std::move(walk));
        }
        return true;
      }
      case MicroOp::Kind::ResumeGoal: {
        // Fix the prospective old head's back link before taking the
        // state lock, so this engine never busy-waits while holding a
        // lock on a stall-able path (deadlock hygiene). If the resume
        // turns out to be stale the write is harmless: back links are
        // only consumed as a fidelity read during donation.
        if (!goalList_.empty()) {
            mem(MemOp::W, goalList_.front() + 1, Area::Goal, op.addr);
            if (stalled_)
                return false;
        }
        const Addr state_addr = op.addr + 2;
        Word state = 0;
        if (!lockCell(state_addr, state))
            return false;
        if (stateTag(state) != GoalState::Floating ||
            seqOf(state) != op.seq) {
            // Already resumed by someone else (or recycled): nothing to do.
            unlockCell(state_addr, false, 0);
            pendingWork_.pop_front();
            return true;
        }
        const std::uint32_t proc = procOf(state);
        // The record's own link words can never be remotely locked: with
        // blocks of >= 4 words they sit in the block we just took
        // exclusively; with smaller blocks their blocks hold link words
        // only, which no engine ever locks.
        mem(MemOp::W, op.addr + 0, Area::Goal,
            goalList_.empty() ? 0 : goalList_.front());
        PIM_ASSERT(!stalled_);
        mem(MemOp::W, op.addr + 1, Area::Goal, 0);
        PIM_ASSERT(!stalled_);
        unlockCell(state_addr, true, packState(GoalState::Queued, proc, 0));
        goalList_.push_front(op.addr);
        emu_.floatingGoals_ -= 1;
        stats_.resumptions += 1;
        pendingWork_.pop_front();
        return true;
      }
      case MicroOp::Kind::HookVars: {
        if (op.varIndex >= op.vars.size()) {
            if (op.anyBound || op.hooked == 0) {
                // Some watched variable is already bound: the goal can
                // run; requeue it through the normal resume path.
                op.kind = MicroOp::Kind::ResumeGoal;
                return true;
            }
            pendingWork_.pop_front();
            return true;
        }
        const Addr var = op.vars[op.varIndex];
        Word current = 0;
        if (!lockCell(var, current))
            return false;
        if (isUnboundAt(current, var) || tagOf(current) == Tag::Hook) {
            const Addr srec = suspArea_.allocate(3);
            if (srec == kNoAddr) {
                PIM_FATAL("pe", pe_, ": suspension area exhausted; "
                          "increase LayoutConfig::suspWordsPerPe");
            }
            const Addr next =
                tagOf(current) == Tag::Hook ? ptrOf(current) : 0;
            mem(MemOp::W, srec, Area::Susp, static_cast<Word>(next));
            PIM_ASSERT(!stalled_);
            mem(MemOp::W, srec + 1, Area::Susp,
                static_cast<Word>(op.addr));
            PIM_ASSERT(!stalled_);
            mem(MemOp::W, srec + 2, Area::Susp, op.seq);
            PIM_ASSERT(!stalled_);
            unlockCell(var, true, makeHook(srec));
            op.hooked += 1;
        } else {
            unlockCell(var, false, 0);
            op.anyBound = true;
        }
        op.varIndex += 1;
        return true;
      }
    }
    PIM_PANIC("unknown micro-operation");
}

// ---------------------------------------------------------------------
// Instruction execution
// ---------------------------------------------------------------------

void
Machine::noteSuspendCandidate(Addr cell)
{
    if (std::find(suspendCands_.begin(), suspendCands_.end(), cell) ==
        suspendCands_.end()) {
        suspendCands_.push_back(cell);
    }
}

void
Machine::failToAlternative()
{
    pc_ = failTarget_;
}

void
Machine::runInstr()
{
    const Instr& ins = emu_.module().code[pc_];

    // Instruction fetch (re-issued on busy-wait retries, as hardware
    // re-fetches when a stalled operation restarts).
    const Addr iaddr = emu_.layout().instrRange().base +
                       emu_.module().wordOffset(pc_);
    mem(MemOp::R, iaddr, Area::Instruction);
    PIM_ASSERT(!stalled_, "instruction fetch cannot be lock-inhibited");
    if (ins.words() == 2) {
        mem(MemOp::R, iaddr + 1, Area::Instruction);
        PIM_ASSERT(!stalled_);
    }

    const Addr heap_snapshot = heapTop_;
    const std::uint32_t entry_pc = pc_;
    const bool ok = [&]() -> bool {
        switch (ins.op) {
          case Op::TryClause:
            failTarget_ = static_cast<std::uint32_t>(ins.a);
            ++pc_;
            return true;
          case Op::Commit:
            stats_.reductions += 1;
            ++pc_;
            return true;
          case Op::Proceed:
            mode_ = Mode::FetchWork;
            resumeRun_ = false;
            return true;
          case Op::Execute:
            doExecute(ins);
            return true;
          case Op::Spawn:
            doSpawn(ins);
            return !stalled_;
          case Op::SuspendOrFail:
            doSuspendOrFail();
            return !stalled_;
          case Op::WaitInt: {
            const Deref d = deref(regs_[ins.a]);
            if (stalled_)
                return false;
            if (d.unbound()) {
                noteSuspendCandidate(d.cell);
                failToAlternative();
            } else if (tagOf(d.value) == Tag::Int &&
                       intOf(d.value) == ins.imm) {
                ++pc_;
            } else {
                failToAlternative();
            }
            return true;
          }
          case Op::WaitAtom: {
            const Deref d = deref(regs_[ins.a]);
            if (stalled_)
                return false;
            if (d.unbound()) {
                noteSuspendCandidate(d.cell);
                failToAlternative();
            } else if (tagOf(d.value) == Tag::Atom &&
                       atomOf(d.value) ==
                           static_cast<AtomId>(ins.imm)) {
                ++pc_;
            } else {
                failToAlternative();
            }
            return true;
          }
          case Op::WaitList:
            doWaitList(ins);
            return !stalled_;
          case Op::WaitStruct:
            doWaitStruct(ins);
            return !stalled_;
          case Op::WaitSame: {
            const PassiveResult r =
                passiveUnify(regs_[ins.a], regs_[ins.b]);
            if (stalled_)
                return false;
            if (r == PassiveResult::Ok) {
                ++pc_;
            } else {
                failToAlternative();
            }
            return true;
          }
          case Op::GuardDiff: {
            const PassiveResult r =
                passiveUnify(regs_[ins.a], regs_[ins.b]);
            if (stalled_)
                return false;
            if (r == PassiveResult::Fail) {
                ++pc_; // definitely different: \= succeeds
            } else {
                failToAlternative(); // equal or undecidable
            }
            return true;
          }
          case Op::GuardCmp:
          case Op::GuardCmpInt: {
            const Deref dl = deref(regs_[ins.a]);
            if (stalled_)
                return false;
            if (dl.unbound()) {
                noteSuspendCandidate(dl.cell);
                failToAlternative();
                return true;
            }
            std::int64_t rhs = ins.imm;
            if (ins.op == Op::GuardCmp) {
                const Deref dr = deref(regs_[ins.b]);
                if (stalled_)
                    return false;
                if (dr.unbound()) {
                    noteSuspendCandidate(dr.cell);
                    failToAlternative();
                    return true;
                }
                if (tagOf(dr.value) != Tag::Int) {
                    failToAlternative();
                    return true;
                }
                rhs = intOf(dr.value);
            }
            if (tagOf(dl.value) != Tag::Int) {
                failToAlternative();
                return true;
            }
            const std::int64_t lhs = intOf(dl.value);
            bool holds = false;
            switch (static_cast<CmpKind>(ins.d)) {
              case CmpKind::Lt:    holds = lhs < rhs; break;
              case CmpKind::Le:    holds = lhs <= rhs; break;
              case CmpKind::Gt:    holds = lhs > rhs; break;
              case CmpKind::Ge:    holds = lhs >= rhs; break;
              case CmpKind::NumEq: holds = lhs == rhs; break;
              case CmpKind::NumNe: holds = lhs != rhs; break;
            }
            if (holds) {
                ++pc_;
            } else {
                failToAlternative();
            }
            return true;
          }
          case Op::GuardInteger: {
            const Deref d = deref(regs_[ins.a]);
            if (stalled_)
                return false;
            if (d.unbound()) {
                noteSuspendCandidate(d.cell);
                failToAlternative();
            } else if (tagOf(d.value) == Tag::Int) {
                ++pc_;
            } else {
                failToAlternative();
            }
            return true;
          }
          case Op::GuardWait: {
            const Deref d = deref(regs_[ins.a]);
            if (stalled_)
                return false;
            if (d.unbound()) {
                noteSuspendCandidate(d.cell);
                failToAlternative();
            } else {
                ++pc_;
            }
            return true;
          }
          case Op::GuardOtherwise:
            // `otherwise` commits only when every preceding clause
            // failed *definitely*. If some earlier clause met an unbound
            // variable (a suspend candidate exists), this clause must
            // not commit yet: fall through so the goal suspends and the
            // call is retried once the variable is bound.
            if (suspendCands_.empty()) {
                ++pc_;
            } else {
                failToAlternative();
            }
            return true;
          case Op::GuardFail:
            failToAlternative();
            return true;
          case Op::GArith:
          case Op::GArithInt: {
            const Deref dl = deref(regs_[ins.b]);
            if (stalled_)
                return false;
            if (dl.unbound()) {
                noteSuspendCandidate(dl.cell);
                failToAlternative();
                return true;
            }
            if (tagOf(dl.value) != Tag::Int) {
                failToAlternative();
                return true;
            }
            std::int64_t rhs = ins.imm;
            if (ins.op == Op::GArith) {
                const Deref dr = deref(regs_[ins.c]);
                if (stalled_)
                    return false;
                if (dr.unbound()) {
                    noteSuspendCandidate(dr.cell);
                    failToAlternative();
                    return true;
                }
                if (tagOf(dr.value) != Tag::Int) {
                    failToAlternative();
                    return true;
                }
                rhs = intOf(dr.value);
            }
            const std::int64_t lhs = intOf(dl.value);
            std::int64_t result = 0;
            switch (static_cast<ArithKind>(ins.d)) {
              case ArithKind::Add: result = lhs + rhs; break;
              case ArithKind::Sub: result = lhs - rhs; break;
              case ArithKind::Mul: result = lhs * rhs; break;
              case ArithKind::Div:
                if (rhs == 0) { // guard arithmetic fails, never aborts
                    failToAlternative();
                    return true;
                }
                result = lhs / rhs;
                break;
              case ArithKind::Mod:
                if (rhs == 0) {
                    failToAlternative();
                    return true;
                }
                result = lhs % rhs;
                break;
            }
            regs_[ins.a] = makeInt(result);
            ++pc_;
            return true;
          }
          case Op::PutInt:
            regs_[ins.a] = makeInt(ins.imm);
            ++pc_;
            return true;
          case Op::PutAtom:
            regs_[ins.a] = makeAtom(static_cast<AtomId>(ins.imm));
            ++pc_;
            return true;
          case Op::PutVar: {
            const Addr cell = heapAlloc(1);
            mem(MemOp::DW, cell, Area::Heap, makeRef(cell));
            if (stalled_)
                return false;
            regs_[ins.a] = makeRef(cell);
            ++pc_;
            return true;
          }
          case Op::PutList:
            doPutList(ins);
            return !stalled_;
          case Op::PutStruct:
            doPutStruct(ins);
            return !stalled_;
          case Op::Move:
            regs_[ins.a] = regs_[ins.b];
            ++pc_;
            return true;
          case Op::Unify:
            if (!activeUnify(regs_[ins.a], regs_[ins.b]))
                return false;
            ++pc_;
            return true;
          case Op::Arith:
            doArith(ins, false);
            return !stalled_;
          case Op::ArithInt:
            doArith(ins, true);
            return !stalled_;
          case Op::BuiltinResult: {
            emu_.results_.push_back(emu_.format(regs_[ins.a]));
            ++pc_;
            return true;
          }
          case Op::VecNew:
            doVecNew(ins);
            return !stalled_;
          case Op::VecGet:
            doVecGet(ins);
            return !stalled_;
          case Op::VecSet:
            doVecSet(ins, false);
            return !stalled_;
          case Op::VecSetD:
            doVecSet(ins, true);
            return !stalled_;
        }
        PIM_PANIC("unknown opcode");
    }();

    if (!ok) {
        // Lock-stalled: roll back this instruction's heap allocations and
        // retry the whole instruction after the UL wakeup.
        PIM_ASSERT(stalled_);
        heapTop_ = heap_snapshot;
        pc_ = entry_pc;
        return;
    }
    stats_.instructions += 1;
}

void
Machine::doWaitList(const Instr& ins)
{
    const Deref d = deref(regs_[ins.a]);
    if (stalled_)
        return;
    if (d.unbound()) {
        noteSuspendCandidate(d.cell);
        failToAlternative();
        return;
    }
    if (tagOf(d.value) != Tag::List) {
        failToAlternative();
        return;
    }
    const Addr cons = ptrOf(d.value);
    const Word car = mem(MemOp::R, cons, areaOf(cons));
    if (stalled_)
        return;
    const Word cdr = mem(MemOp::R, cons + 1, areaOf(cons));
    if (stalled_)
        return;
    regs_[ins.b] = car;
    regs_[ins.c] = cdr;
    ++pc_;
}

void
Machine::doWaitStruct(const Instr& ins)
{
    const Deref d = deref(regs_[ins.a]);
    if (stalled_)
        return;
    if (d.unbound()) {
        noteSuspendCandidate(d.cell);
        failToAlternative();
        return;
    }
    if (tagOf(d.value) != Tag::Str) {
        failToAlternative();
        return;
    }
    const Addr base = ptrOf(d.value);
    const Word fun = mem(MemOp::R, base, areaOf(base));
    if (stalled_)
        return;
    if (funOf(fun) != static_cast<FunctorId>(ins.imm)) {
        failToAlternative();
        return;
    }
    const std::uint32_t arity = SymbolTable::functorArity(funOf(fun));
    for (std::uint32_t i = 0; i < arity; ++i) {
        const Word arg = mem(MemOp::R, base + 1 + i, areaOf(base));
        if (stalled_)
            return;
        regs_[ins.b + i] = arg;
    }
    ++pc_;
}

void
Machine::doPutList(const Instr& ins)
{
    const Addr cons = heapAlloc(2);
    mem(MemOp::DW, cons, Area::Heap, regs_[ins.b]);
    if (stalled_)
        return;
    mem(MemOp::DW, cons + 1, Area::Heap, regs_[ins.c]);
    if (stalled_)
        return;
    regs_[ins.a] = makeList(cons);
    ++pc_;
}

void
Machine::doPutStruct(const Instr& ins)
{
    const FunctorId functor = static_cast<FunctorId>(ins.imm);
    const std::uint32_t arity = SymbolTable::functorArity(functor);
    const Addr base = heapAlloc(1 + arity);
    mem(MemOp::DW, base, Area::Heap, makeFun(functor));
    if (stalled_)
        return;
    for (std::uint32_t i = 0; i < arity; ++i) {
        mem(MemOp::DW, base + 1 + i, Area::Heap, regs_[ins.b + i]);
        if (stalled_)
            return;
    }
    regs_[ins.a] = makeStr(base);
    ++pc_;
}

void
Machine::doArith(const Instr& ins, bool has_imm)
{
    const Deref dl = deref(regs_[ins.b]);
    if (stalled_)
        return;
    if (dl.unbound() || tagOf(dl.value) != Tag::Int) {
        PIM_FATAL("pe", pe_, ": arithmetic on a non-integer operand (",
                  emu_.format(regs_[ins.b]),
                  "); KL1 body arithmetic requires bound integers");
    }
    std::int64_t rhs = ins.imm;
    if (!has_imm) {
        const Deref dr = deref(regs_[ins.c]);
        if (stalled_)
            return;
        if (dr.unbound() || tagOf(dr.value) != Tag::Int) {
            PIM_FATAL("pe", pe_,
                      ": arithmetic on a non-integer operand (",
                      emu_.format(regs_[ins.c]), ")");
        }
        rhs = intOf(dr.value);
    }
    const std::int64_t lhs = intOf(dl.value);
    std::int64_t result = 0;
    switch (static_cast<ArithKind>(ins.d)) {
      case ArithKind::Add: result = lhs + rhs; break;
      case ArithKind::Sub: result = lhs - rhs; break;
      case ArithKind::Mul: result = lhs * rhs; break;
      case ArithKind::Div:
        if (rhs == 0)
            PIM_FATAL("pe", pe_, ": division by zero");
        result = lhs / rhs;
        break;
      case ArithKind::Mod:
        if (rhs == 0)
            PIM_FATAL("pe", pe_, ": mod by zero");
        result = lhs % rhs;
        break;
    }
    regs_[ins.a] = makeInt(result);
    ++pc_;
}

bool
Machine::vecOperands(const Instr& ins, Addr& base, std::int64_t& size,
                     std::int64_t& index)
{
    const Deref vec = deref(regs_[ins.a]);
    if (stalled_)
        return false;
    if (vec.unbound() || tagOf(vec.value) != Tag::Vec) {
        PIM_FATAL("pe", pe_, ": vector builtin applied to ",
                  emu_.format(regs_[ins.a]),
                  " (synchronize with a guard before the call)");
    }
    const Deref idx = deref(regs_[ins.b]);
    if (stalled_)
        return false;
    if (idx.unbound() || tagOf(idx.value) != Tag::Int) {
        PIM_FATAL("pe", pe_, ": vector index is not a bound integer: ",
                  emu_.format(regs_[ins.b]));
    }
    base = ptrOf(vec.value);
    const Word header = mem(MemOp::R, base, Area::Heap);
    if (stalled_)
        return false;
    size = intOf(header);
    index = intOf(idx.value);
    if (index < 0 || index >= size) {
        PIM_FATAL("pe", pe_, ": vector index ", index,
                  " out of range [0, ", size, ")");
    }
    return true;
}

void
Machine::doVecNew(const Instr& ins)
{
    const Deref size_arg = deref(regs_[ins.a]);
    if (stalled_)
        return;
    if (size_arg.unbound() || tagOf(size_arg.value) != Tag::Int ||
        intOf(size_arg.value) < 0 ||
        intOf(size_arg.value) > (1 << 22)) {
        PIM_FATAL("pe", pe_, ": new_vector size must be a small bound "
                  "integer, got ", emu_.format(regs_[ins.a]));
    }
    const std::uint32_t size =
        static_cast<std::uint32_t>(intOf(size_arg.value));
    const Word init = regs_[ins.b];
    const Addr base = heapAlloc(1 + size);
    mem(MemOp::DW, base, Area::Heap, makeInt(size));
    if (stalled_)
        return;
    for (std::uint32_t i = 0; i < size; ++i) {
        mem(MemOp::DW, base + 1 + i, Area::Heap, init);
        if (stalled_)
            return;
    }
    if (!activeUnify(regs_[ins.c], makeVec(base)))
        return;
    ++pc_;
}

void
Machine::doVecGet(const Instr& ins)
{
    Addr base = 0;
    std::int64_t size = 0;
    std::int64_t index = 0;
    if (!vecOperands(ins, base, size, index))
        return;
    const Word elem = mem(MemOp::R, base + 1 + index, Area::Heap);
    if (stalled_)
        return;
    if (!activeUnify(regs_[ins.c], elem))
        return;
    ++pc_;
}

void
Machine::doVecSet(const Instr& ins, bool destructive)
{
    Addr base = 0;
    std::int64_t size = 0;
    std::int64_t index = 0;
    if (!vecOperands(ins, base, size, index))
        return;
    if (destructive) {
        // MRB-style single-reference update: overwrite in place. The
        // caller asserts (by using the _d builtin) that no other
        // process still references the old vector value.
        mem(MemOp::W, base + 1 + index, Area::Heap, regs_[ins.c]);
        if (stalled_)
            return;
        if (!activeUnify(regs_[ins.d], makeVec(base)))
            return;
        ++pc_;
        return;
    }
    // Pure single-assignment semantics: copy the whole vector.
    const Addr copy = heapAlloc(1 + static_cast<std::uint32_t>(size));
    mem(MemOp::DW, copy, Area::Heap, makeInt(size));
    if (stalled_)
        return;
    for (std::int64_t i = 0; i < size; ++i) {
        Word w;
        if (i == index) {
            w = regs_[ins.c];
        } else {
            w = mem(MemOp::R, base + 1 + i, Area::Heap);
            if (stalled_)
                return;
        }
        mem(MemOp::DW, copy + 1 + i, Area::Heap, w);
        if (stalled_)
            return;
    }
    if (!activeUnify(regs_[ins.d], makeVec(copy)))
        return;
    ++pc_;
}

void
Machine::doSpawn(const Instr& ins)
{
    const std::uint32_t proc = static_cast<std::uint32_t>(ins.a);
    const std::uint32_t nargs = static_cast<std::uint32_t>(ins.b);
    if (retryGoalRec_ == kNoAddr)
        retryGoalRec_ = goalRecAlloc(nargs);
    const Addr rec = retryGoalRec_;
    const Addr old_head = goalList_.empty() ? 0 : goalList_.front();

    mem(goalWriteOp(0), rec + 0, Area::Goal, static_cast<Word>(old_head));
    if (stalled_)
        return;
    mem(goalWriteOp(1), rec + 1, Area::Goal, 0);
    if (stalled_)
        return;
    mem(goalWriteOp(2), rec + 2, Area::Goal,
        packState(GoalState::Queued, proc, 0));
    if (stalled_)
        return;
    for (std::uint32_t i = 0; i < nargs; ++i) {
        mem(goalWriteOp(3 + i), rec + 3 + i, Area::Goal,
            regs_[ins.c + i]);
        if (stalled_)
            return;
    }
    if (old_head != 0) {
        mem(MemOp::W, old_head + 1, Area::Goal, static_cast<Word>(rec));
        if (stalled_)
            return;
    }
    goalList_.push_front(rec);
    retryGoalRec_ = kNoAddr;
    stats_.goalsSpawned += 1;
    ++pc_;
}

void
Machine::doExecute(const Instr& ins)
{
    const std::uint32_t nargs = static_cast<std::uint32_t>(ins.b);
    for (std::uint32_t i = 0; i < nargs; ++i)
        regs_[i] = regs_[ins.c + i];
    curProc_ = static_cast<std::uint32_t>(ins.a);
    curArgs_.assign(regs_, regs_ + nargs);
    suspendCands_.clear();
    pc_ = emu_.module().procs[curProc_].entryPc;
    failTarget_ = pc_;
    // Periodically drop back to FetchWork so long tail-recursive chains
    // still poll for work requests and service resumptions.
    if (++tailPolls_ >= 4) {
        tailPolls_ = 0;
        mode_ = Mode::FetchWork;
        resumeRun_ = true;
    }
}

void
Machine::doSuspendOrFail()
{
    if (suspendCands_.empty()) {
        PIM_FATAL("pe", pe_, ": goal failed: ",
                  emu_.module().procs[curProc_].name, "/",
                  emu_.module().procs[curProc_].arity,
                  " — no clause commits and no clause can suspend");
    }
    const std::uint32_t nargs =
        static_cast<std::uint32_t>(curArgs_.size());
    if (retryGoalRec_ == kNoAddr)
        retryGoalRec_ = goalRecAlloc(nargs);
    const Addr rec = retryGoalRec_;
    const std::uint64_t seq =
        nextSeq_ * emu_.config().numPes + pe_;

    mem(goalWriteOp(0), rec + 0, Area::Goal, 0);
    if (stalled_)
        return;
    mem(goalWriteOp(1), rec + 1, Area::Goal, 0);
    if (stalled_)
        return;
    mem(goalWriteOp(2), rec + 2, Area::Goal,
        packState(GoalState::Floating, curProc_, seq));
    if (stalled_)
        return;
    for (std::uint32_t i = 0; i < nargs; ++i) {
        mem(goalWriteOp(3 + i), rec + 3 + i, Area::Goal, curArgs_[i]);
        if (stalled_)
            return;
    }

    MicroOp hook;
    hook.kind = MicroOp::Kind::HookVars;
    hook.addr = rec;
    hook.seq = seq;
    hook.vars = suspendCands_;
    pendingWork_.push_back(std::move(hook));

    retryGoalRec_ = kNoAddr;
    nextSeq_ += 1;
    stats_.suspensions += 1;
    emu_.floatingGoals_ += 1;
    suspendCands_.clear();
    mode_ = Mode::FetchWork;
    resumeRun_ = false;
}

} // namespace pim::kl1
