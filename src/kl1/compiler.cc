#include "kl1/compiler.h"

#include <map>
#include <set>

#include "common/xassert.h"

namespace pim::kl1 {

namespace {

const std::set<std::string> kGuardBuiltins = {
    "true/0",    "otherwise/0", "integer/1", "wait/1",  "</2",
    ">/2",       "=</2",        ">=/2",      "=:=/2",   "=\\=/2",
    "==/2",      "\\=/2",
};

const std::set<std::string> kBodyBuiltins = {
    "true/0", "=/2", ":=/2", "kl1_result/1",
    "new_vector/3", "vector_element/3", "set_vector_element/4",
    "set_vector_element_d/4",
};

std::string
key(const std::string& name, std::uint32_t arity)
{
    return name + "/" + std::to_string(arity);
}

std::string
goalKey(const PTerm& goal)
{
    const std::uint32_t arity =
        goal.kind == PTerm::Kind::Struct
            ? static_cast<std::uint32_t>(goal.args.size())
            : 0;
    return key(goal.name, arity);
}

/** Compiles one clause into @p out. */
class ClauseCompiler
{
  public:
    ClauseCompiler(Module& module, const Program& program,
                   const Procedure& proc, const Clause& clause)
        : module_(module),
          program_(program),
          proc_(proc),
          clause_(clause)
    {
    }

    /** Emit the clause block (without TryClause, added by the caller). */
    void
    compile()
    {
        nextPersistent_ = proc_.arity;

        // Head matching binds pattern variables to registers.
        if (clause_.head.kind == PTerm::Kind::Struct) {
            for (std::uint32_t i = 0; i < proc_.arity; ++i)
                matchReg(static_cast<int>(i), clause_.head.args[i]);
        }
        for (const Goal& guard : clause_.guards)
            compileGuard(guard);
        emit({Op::Commit});

        // Pre-assign persistent registers to body-only named variables so
        // construction temporaries never collide with them.
        preassignBodyVars();
        tempBase_ = nextPersistent_;

        compileBody();
    }

  private:
    [[noreturn]] void
    err(const std::string& what) const
    {
        PIM_FATAL("KL1 compile error in ", proc_.name, "/", proc_.arity,
                  " (clause at line ", clause_.line, "): ", what);
    }

    void
    emit(Instr ins)
    {
        module_.code.push_back(ins);
    }

    int
    allocPersistent()
    {
        if (nextPersistent_ >= kNumRegs)
            err("clause needs too many persistent registers");
        return nextPersistent_++;
    }

    int
    allocTemp()
    {
        if (nextTemp_ >= kNumRegs)
            err("clause needs too many temporary registers");
        return nextTemp_++;
    }

    void
    resetTemps()
    {
        nextTemp_ = tempBase_;
    }

    AtomId
    atom(const std::string& name)
    {
        return module_.symbols.intern(name);
    }

    FunctorId
    functorOf(const PTerm& t)
    {
        return SymbolTable::functor(
            atom(t.name), static_cast<std::uint32_t>(t.args.size()));
    }

    // ------------------------------------------------------------ head --

    void
    matchReg(int reg, const PTerm& pattern)
    {
        switch (pattern.kind) {
          case PTerm::Kind::Var: {
            if (pattern.isAnonymousVar())
                return;
            const auto it = regMap_.find(pattern.name);
            if (it == regMap_.end()) {
                regMap_[pattern.name] = reg;
                materialized_.insert(pattern.name);
            } else {
                Instr ins{Op::WaitSame};
                ins.a = reg;
                ins.b = it->second;
                emit(ins);
            }
            return;
          }
          case PTerm::Kind::Int: {
            Instr ins{Op::WaitInt};
            ins.a = reg;
            ins.imm = pattern.value;
            emit(ins);
            return;
          }
          case PTerm::Kind::Atom: {
            Instr ins{Op::WaitAtom};
            ins.a = reg;
            ins.imm = atom(pattern.name);
            emit(ins);
            return;
          }
          case PTerm::Kind::List: {
            const int car = allocPersistent();
            const int cdr = allocPersistent();
            Instr ins{Op::WaitList};
            ins.a = reg;
            ins.b = car;
            ins.c = cdr;
            emit(ins);
            matchReg(car, pattern.args[0]);
            matchReg(cdr, pattern.args[1]);
            return;
          }
          case PTerm::Kind::Struct: {
            const std::uint32_t arity =
                static_cast<std::uint32_t>(pattern.args.size());
            if (nextPersistent_ + static_cast<int>(arity) > kNumRegs)
                err("structure pattern exceeds the register file");
            const int base = nextPersistent_;
            nextPersistent_ += static_cast<int>(arity);
            Instr ins{Op::WaitStruct};
            ins.a = reg;
            ins.b = base;
            ins.imm = functorOf(pattern);
            emit(ins);
            for (std::uint32_t i = 0; i < arity; ++i)
                matchReg(base + static_cast<int>(i), pattern.args[i]);
            return;
          }
        }
    }

    // ----------------------------------------------------------- guards --

    /** Register of a guard operand (mapped variable required). */
    int
    guardReg(const PTerm& operand)
    {
        if (operand.kind != PTerm::Kind::Var)
            err("guard operand must be a variable or an integer: " +
                operand.toString());
        const auto it = regMap_.find(operand.name);
        if (it == regMap_.end())
            err("guard variable not bound by the head: " + operand.name);
        return it->second;
    }

    void
    compileGuard(const Goal& guard)
    {
        const std::string gk = goalKey(guard);
        if (!kGuardBuiltins.count(gk))
            err("not a guard builtin: " + gk);
        if (gk == "true/0")
            return;
        if (gk == "otherwise/0") {
            emit({Op::GuardOtherwise});
            return;
        }
        if (gk == "integer/1") {
            Instr ins{Op::GuardInteger};
            ins.a = guardReg(guard.args[0]);
            emit(ins);
            return;
        }
        if (gk == "wait/1") {
            Instr ins{Op::GuardWait};
            ins.a = guardReg(guard.args[0]);
            emit(ins);
            return;
        }
        if (gk == "==/2") {
            Instr ins{Op::WaitSame};
            ins.a = guardReg(guard.args[0]);
            ins.b = guardReg(guard.args[1]);
            emit(ins);
            return;
        }
        if (gk == "\\=/2") {
            Instr ins{Op::GuardDiff};
            ins.a = guardReg(guard.args[0]);
            ins.b = guardReg(guard.args[1]);
            emit(ins);
            return;
        }
        compileComparison(guard);
    }

    /** Evaluate a guard-side arithmetic expression into a register using
     *  the suspending GArith instructions. */
    int
    evalGuardExpr(const PTerm& t)
    {
        static const std::map<std::string, ArithKind> kKinds = {
            {"+", ArithKind::Add},  {"-", ArithKind::Sub},
            {"*", ArithKind::Mul},  {"//", ArithKind::Div},
            {"mod", ArithKind::Mod},
        };
        switch (t.kind) {
          case PTerm::Kind::Var:
            return guardReg(t);
          case PTerm::Kind::Int: {
            const int reg = allocPersistent();
            Instr ins{Op::PutInt};
            ins.a = reg;
            ins.imm = t.value;
            emit(ins);
            return reg;
          }
          case PTerm::Kind::Struct: {
            const auto kind = kKinds.find(t.name);
            if (kind == kKinds.end() || t.args.size() != 2)
                err("not a guard arithmetic expression: " + t.toString());
            const int lhs = evalGuardExpr(t.args[0]);
            const int dst = allocPersistent();
            if (t.args[1].kind == PTerm::Kind::Int) {
                Instr ins{Op::GArithInt};
                ins.a = dst;
                ins.b = lhs;
                ins.imm = t.args[1].value;
                ins.d = static_cast<int>(kind->second);
                emit(ins);
                return dst;
            }
            const int rhs = evalGuardExpr(t.args[1]);
            Instr ins{Op::GArith};
            ins.a = dst;
            ins.b = lhs;
            ins.c = rhs;
            ins.d = static_cast<int>(kind->second);
            emit(ins);
            return dst;
          }
          default:
            err("not a guard arithmetic expression: " + t.toString());
        }
    }

    void
    compileComparison(const Goal& guard)
    {
        static const std::map<std::string, CmpKind> kKinds = {
            {"<", CmpKind::Lt},    {"=<", CmpKind::Le},
            {">", CmpKind::Gt},    {">=", CmpKind::Ge},
            {"=:=", CmpKind::NumEq}, {"=\\=", CmpKind::NumNe},
        };
        static const std::map<std::string, std::string> kSwap = {
            {"<", ">"},   {">", "<"},   {"=<", ">="},
            {">=", "=<"}, {"=:=", "=:="}, {"=\\=", "=\\="},
        };
        const PTerm& lhs = guard.args[0];
        const PTerm& rhs = guard.args[1];
        const std::string& oper = guard.name;

        if (lhs.kind == PTerm::Kind::Int && rhs.kind == PTerm::Kind::Int) {
            // Constant fold.
            bool holds = false;
            switch (kKinds.at(oper)) {
              case CmpKind::Lt:    holds = lhs.value < rhs.value; break;
              case CmpKind::Le:    holds = lhs.value <= rhs.value; break;
              case CmpKind::Gt:    holds = lhs.value > rhs.value; break;
              case CmpKind::Ge:    holds = lhs.value >= rhs.value; break;
              case CmpKind::NumEq: holds = lhs.value == rhs.value; break;
              case CmpKind::NumNe: holds = lhs.value != rhs.value; break;
            }
            if (!holds)
                emit({Op::GuardFail});
            return;
        }
        if (rhs.kind == PTerm::Kind::Int) {
            Instr ins{Op::GuardCmpInt};
            ins.a = evalGuardExpr(lhs);
            ins.imm = rhs.value;
            ins.d = static_cast<int>(kKinds.at(oper));
            emit(ins);
            return;
        }
        if (lhs.kind == PTerm::Kind::Int) {
            Instr ins{Op::GuardCmpInt};
            ins.a = evalGuardExpr(rhs);
            ins.imm = lhs.value;
            ins.d = static_cast<int>(kKinds.at(kSwap.at(oper)));
            emit(ins);
            return;
        }
        Instr ins{Op::GuardCmp};
        ins.a = evalGuardExpr(lhs);
        ins.b = evalGuardExpr(rhs);
        ins.d = static_cast<int>(kKinds.at(oper));
        emit(ins);
    }

    // ------------------------------------------------------------- body --

    void
    collectVars(const PTerm& t, std::set<std::string>& out) const
    {
        if (t.kind == PTerm::Kind::Var) {
            if (!t.isAnonymousVar())
                out.insert(t.name);
            return;
        }
        for (const PTerm& arg : t.args)
            collectVars(arg, out);
    }

    void
    preassignBodyVars()
    {
        std::set<std::string> vars;
        for (const Goal& goal : clause_.body)
            collectVars(goal, vars);
        for (const std::string& name : vars) {
            if (!regMap_.count(name))
                regMap_[name] = allocPersistent();
        }
    }

    /** Materialize a named variable's heap cell if not yet done. */
    void
    materialize(const std::string& name)
    {
        if (materialized_.count(name))
            return;
        materialized_.insert(name);
        Instr ins{Op::PutVar};
        ins.a = regMap_.at(name);
        emit(ins);
    }

    /** Build @p t into a register and return it. */
    int
    buildTerm(const PTerm& t)
    {
        switch (t.kind) {
          case PTerm::Kind::Var: {
            if (t.isAnonymousVar()) {
                const int reg = allocTemp();
                Instr ins{Op::PutVar};
                ins.a = reg;
                emit(ins);
                return reg;
            }
            materialize(t.name);
            return regMap_.at(t.name);
          }
          case PTerm::Kind::Int: {
            const int reg = allocTemp();
            Instr ins{Op::PutInt};
            ins.a = reg;
            ins.imm = t.value;
            emit(ins);
            return reg;
          }
          case PTerm::Kind::Atom: {
            const int reg = allocTemp();
            Instr ins{Op::PutAtom};
            ins.a = reg;
            ins.imm = atom(t.name);
            emit(ins);
            return reg;
          }
          case PTerm::Kind::List: {
            const int car = buildTerm(t.args[0]);
            const int cdr = buildTerm(t.args[1]);
            const int reg = allocTemp();
            Instr ins{Op::PutList};
            ins.a = reg;
            ins.b = car;
            ins.c = cdr;
            emit(ins);
            return reg;
          }
          case PTerm::Kind::Struct: {
            std::vector<int> arg_regs;
            arg_regs.reserve(t.args.size());
            for (const PTerm& arg : t.args)
                arg_regs.push_back(buildTerm(arg));
            // PutStruct reads consecutive registers; pack them.
            const int base = packRegs(arg_regs);
            const int reg = allocTemp();
            Instr ins{Op::PutStruct};
            ins.a = reg;
            ins.b = base;
            ins.imm = functorOf(t);
            emit(ins);
            return reg;
          }
        }
        err("unreachable term kind");
    }

    /** Copy @p regs into a fresh consecutive block; return its base. */
    int
    packRegs(const std::vector<int>& regs)
    {
        // If they are already consecutive, reuse them in place.
        bool consecutive = true;
        for (std::size_t i = 1; i < regs.size(); ++i)
            consecutive &= regs[i] == regs[i - 1] + 1;
        if (consecutive && !regs.empty())
            return regs.front();
        if (regs.empty())
            return 0;
        const int base = nextTemp_;
        for (int reg : regs) {
            const int dst = allocTemp();
            if (dst != reg) {
                Instr ins{Op::Move};
                ins.a = dst;
                ins.b = reg;
                emit(ins);
            }
        }
        return base;
    }

    /** Evaluate an arithmetic expression into a register. */
    int
    evalArith(const PTerm& t)
    {
        static const std::map<std::string, ArithKind> kKinds = {
            {"+", ArithKind::Add},  {"-", ArithKind::Sub},
            {"*", ArithKind::Mul},  {"//", ArithKind::Div},
            {"mod", ArithKind::Mod},
        };
        switch (t.kind) {
          case PTerm::Kind::Var: {
            const auto it = regMap_.find(t.name);
            if (it == regMap_.end() || !materialized_.count(t.name))
                err("arithmetic on an unbound variable: " + t.name);
            return it->second;
          }
          case PTerm::Kind::Int: {
            const int reg = allocTemp();
            Instr ins{Op::PutInt};
            ins.a = reg;
            ins.imm = t.value;
            emit(ins);
            return reg;
          }
          case PTerm::Kind::Struct: {
            const auto kind = kKinds.find(t.name);
            if (kind == kKinds.end() || t.args.size() != 2)
                err("not an arithmetic expression: " + t.toString());
            const int lhs = evalArith(t.args[0]);
            if (t.args[1].kind == PTerm::Kind::Int) {
                const int dst = allocTemp();
                Instr ins{Op::ArithInt};
                ins.a = dst;
                ins.b = lhs;
                ins.imm = t.args[1].value;
                ins.d = static_cast<int>(kind->second);
                emit(ins);
                return dst;
            }
            const int rhs = evalArith(t.args[1]);
            const int dst = allocTemp();
            Instr ins{Op::Arith};
            ins.a = dst;
            ins.b = lhs;
            ins.c = rhs;
            ins.d = static_cast<int>(kind->second);
            emit(ins);
            return dst;
          }
          default:
            err("not an arithmetic expression: " + t.toString());
        }
    }

    void
    compileAssign(const Goal& goal)
    {
        const PTerm& lhs = goal.args[0];
        if (lhs.kind != PTerm::Kind::Var || lhs.isAnonymousVar())
            err("target of := must be a variable: " + goal.toString());
        if (materialized_.count(lhs.name)) {
            // The variable already has a cell (or head binding): unify.
            const int value = evalArith(goal.args[1]);
            Instr ins{Op::Unify};
            ins.a = regMap_.at(lhs.name);
            ins.b = value;
            emit(ins);
            return;
        }
        // Register-valued result: no heap cell needed.
        const int value = evalArith(goal.args[1]);
        const int dst = regMap_.at(lhs.name);
        if (dst != value) {
            Instr ins{Op::Move};
            ins.a = dst;
            ins.b = value;
            emit(ins);
        }
        materialized_.insert(lhs.name);
    }

    void
    compileBody()
    {
        // Only the final body goal may become a tail call (Execute ends
        // the clause, so anything after it would never run).
        std::size_t last_user = clause_.body.size();
        if (!clause_.body.empty() &&
            !kBodyBuiltins.count(goalKey(clause_.body.back()))) {
            last_user = clause_.body.size() - 1;
        }

        for (std::size_t i = 0; i < clause_.body.size(); ++i) {
            const Goal& goal = clause_.body[i];
            resetTemps();
            const std::string gk = goalKey(goal);
            if (gk == "true/0")
                continue;
            if (gk == "=/2") {
                const int a = buildTerm(goal.args[0]);
                const int b = buildTerm(goal.args[1]);
                Instr ins{Op::Unify};
                ins.a = a;
                ins.b = b;
                emit(ins);
                continue;
            }
            if (gk == ":=/2") {
                compileAssign(goal);
                continue;
            }
            if (gk == "kl1_result/1") {
                const int reg = buildTerm(goal.args[0]);
                Instr ins{Op::BuiltinResult};
                ins.a = reg;
                emit(ins);
                continue;
            }
            if (gk == "new_vector/3") {
                // new_vector(Size, Init, V)
                Instr ins{Op::VecNew};
                ins.a = buildTerm(goal.args[0]);
                ins.b = buildTerm(goal.args[1]);
                ins.c = buildTerm(goal.args[2]);
                emit(ins);
                continue;
            }
            if (gk == "vector_element/3") {
                // vector_element(V, I, X)
                Instr ins{Op::VecGet};
                ins.a = buildTerm(goal.args[0]);
                ins.b = buildTerm(goal.args[1]);
                ins.c = buildTerm(goal.args[2]);
                emit(ins);
                continue;
            }
            if (gk == "set_vector_element/4" ||
                gk == "set_vector_element_d/4") {
                // set_vector_element[_d](V, I, X, V1)
                Instr ins{gk == "set_vector_element/4" ? Op::VecSet
                                                       : Op::VecSetD};
                ins.a = buildTerm(goal.args[0]);
                ins.b = buildTerm(goal.args[1]);
                ins.c = buildTerm(goal.args[2]);
                ins.d = buildTerm(goal.args[3]);
                emit(ins);
                continue;
            }
            if (kGuardBuiltins.count(gk))
                err("guard builtin used in a body: " + gk);

            // User goal.
            const std::uint32_t arity =
                goal.kind == PTerm::Kind::Struct
                    ? static_cast<std::uint32_t>(goal.args.size())
                    : 0;
            if (program_.find(goal.name, arity) == nullptr)
                err("call to undefined procedure " + gk);

            std::vector<int> arg_regs;
            for (const PTerm& arg : goal.args)
                arg_regs.push_back(buildTerm(arg));
            const int base = packRegs(arg_regs);
            Instr ins{i == last_user ? Op::Execute : Op::Spawn};
            ins.a = static_cast<int>(
                module_.procIndex.at(key(goal.name, arity)));
            ins.b = static_cast<int>(arity);
            ins.c = base;
            emit(ins);
            if (i == last_user)
                return; // Execute ends the block.
        }
        emit({Op::Proceed});
    }

    Module& module_;
    const Program& program_;
    const Procedure& proc_;
    const Clause& clause_;

    std::map<std::string, int> regMap_;
    std::set<std::string> materialized_;
    int nextPersistent_ = 0;
    int tempBase_ = 0;
    int nextTemp_ = 0;
};

} // namespace

bool
isBodyBuiltin(const std::string& name, std::uint32_t arity)
{
    return kBodyBuiltins.count(key(name, arity)) != 0;
}

bool
isGuardBuiltin(const std::string& name, std::uint32_t arity)
{
    return kGuardBuiltins.count(key(name, arity)) != 0;
}

Module
compileProgram(const Program& program)
{
    Module module;

    // Pass 1: assign procedure ids (so calls can reference them).
    for (const Procedure& proc : program.procedures) {
        ProcInfo info;
        info.name = proc.name;
        info.arity = proc.arity;
        module.procIndex.emplace(key(proc.name, proc.arity),
                                 static_cast<std::uint32_t>(
                                     module.procs.size()));
        module.procs.push_back(info);
    }

    // Pass 2: compile clause chains.
    for (std::size_t p = 0; p < program.procedures.size(); ++p) {
        const Procedure& proc = program.procedures[p];
        module.procs[p].entryPc =
            static_cast<std::uint32_t>(module.code.size());
        std::vector<std::size_t> try_slots;
        for (const Clause& clause : proc.clauses) {
            try_slots.push_back(module.code.size());
            module.code.push_back({Op::TryClause});
            ClauseCompiler(module, program, proc, clause).compile();
            // Patch this clause's TryClause to point at the next block.
            module.code[try_slots.back()].a =
                static_cast<int>(module.code.size());
        }
        module.code.push_back({Op::SuspendOrFail});
    }

    module.finalize();
    return module;
}

} // namespace pim::kl1
