#include "kl1/term.h"

#include <sstream>

namespace pim::kl1 {

namespace {

Word
derefPeek(Word w, const TermReader& reader, int limit = 1000)
{
    while (tagOf(w) == Tag::Ref && limit-- > 0) {
        const Addr addr = ptrOf(w);
        const Word next = reader.peek(addr);
        if (isUnboundAt(next, addr) || next == w)
            return next;
        w = next;
    }
    return w;
}

void
formatInto(std::ostream& os, Word w, const TermReader& reader,
           const SymbolTable& symbols, int depth)
{
    if (depth <= 0) {
        os << "...";
        return;
    }
    w = derefPeek(w, reader);
    switch (tagOf(w)) {
      case Tag::Ref:
        os << "_" << ptrOf(w);
        return;
      case Tag::Hook:
        os << "_susp" << ptrOf(w);
        return;
      case Tag::Int:
        os << intOf(w);
        return;
      case Tag::Atom:
        os << symbols.name(atomOf(w));
        return;
      case Tag::Fun:
        os << "<fun:" << symbols.functorString(funOf(w)) << ">";
        return;
      case Tag::List: {
        os << "[";
        Word cur = w;
        bool first = true;
        int elems = 64;
        while (tagOf(cur) == Tag::List && elems-- > 0) {
            if (!first)
                os << ",";
            first = false;
            const Addr cons = ptrOf(cur);
            formatInto(os, reader.peek(cons), reader, symbols, depth - 1);
            cur = derefPeek(reader.peek(cons + 1), reader);
        }
        if (!(tagOf(cur) == Tag::Atom && atomOf(cur) == SymbolTable::kNil)) {
            os << "|";
            formatInto(os, cur, reader, symbols, depth - 1);
        }
        os << "]";
        return;
      }
      case Tag::Vec: {
        const Addr base = ptrOf(w);
        const Word size_word = reader.peek(base);
        const std::int64_t size = intOf(size_word);
        os << "{";
        for (std::int64_t i = 0; i < size && i < 64; ++i) {
            if (i > 0)
                os << ",";
            formatInto(os, reader.peek(base + 1 + i), reader, symbols,
                       depth - 1);
        }
        if (size > 64)
            os << ",...";
        os << "}";
        return;
      }
      case Tag::Str: {
        const Addr base = ptrOf(w);
        const Word fun = reader.peek(base);
        const FunctorId f = funOf(fun);
        os << symbols.name(SymbolTable::functorName(f)) << "(";
        const std::uint32_t arity = SymbolTable::functorArity(f);
        for (std::uint32_t i = 0; i < arity; ++i) {
            if (i > 0)
                os << ",";
            formatInto(os, reader.peek(base + 1 + i), reader, symbols,
                       depth - 1);
        }
        os << ")";
        return;
      }
    }
    os << "?";
}

} // namespace

std::string
formatTerm(Word w, const TermReader& reader, const SymbolTable& symbols,
           int depth)
{
    std::ostringstream os;
    formatInto(os, w, reader, symbols, depth);
    return os.str();
}

} // namespace pim::kl1
