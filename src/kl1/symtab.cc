#include "kl1/symtab.h"

#include "common/xassert.h"

namespace pim::kl1 {

SymbolTable::SymbolTable()
{
    const AtomId nil = intern("[]");
    PIM_ASSERT(nil == kNil);
}

AtomId
SymbolTable::intern(const std::string& name)
{
    const auto it = index_.find(name);
    if (it != index_.end())
        return it->second;
    const AtomId id = static_cast<AtomId>(names_.size());
    names_.push_back(name);
    index_.emplace(name, id);
    return id;
}

const std::string&
SymbolTable::name(AtomId id) const
{
    PIM_ASSERT(id < names_.size(), "unknown atom id ", id);
    return names_[id];
}

std::string
SymbolTable::functorString(FunctorId f) const
{
    return name(functorName(f)) + "/" + std::to_string(functorArity(f));
}

} // namespace pim::kl1
