/**
 * @file
 * Stop-and-copy garbage collection for the KL1 heap.
 *
 * The paper's system "uses stop-and-copy GC" (Section 4), and notes that
 * GC-related references are excluded from the measurements; accordingly
 * the collector here operates directly on shared memory (no cache
 * traffic is charged), with every cache flushed before the collection
 * and left cold afterwards — the honest cost a stop-and-copy collector
 * imposes on the cache statistics.
 *
 * Design: each PE's heap segment is split into two semispaces. A
 * collection copies every live heap object (variable cells, cons cells,
 * structures) into the to-space of the segment-owning PE, Cheney-style,
 * with forwarding words (tag Fwd) left in from-space. Roots:
 *
 *  - every machine's register file, current goal arguments and suspend
 *    candidates;
 *  - every queued goal record (goal lists, donations in flight, reply
 *    slots) — their argument words are rewritten in place;
 *  - floating goal records, reached through HOOK words (suspension
 *    lists) or through pending resumption micro-operations whose
 *    sequence numbers still match;
 *  - the named query variables.
 *
 * A collection may only run at a quiescent point: no PE parked on a
 * lock (hence no lock held) and no goal-record fetch in progress. The
 * Emulator defers requested collections until that holds.
 */

#ifndef PIMCACHE_KL1_GC_H_
#define PIMCACHE_KL1_GC_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace pim::kl1 {

class Emulator;

/** Statistics of all collections in a run. */
struct GcStats {
    std::uint64_t collections = 0;
    std::uint64_t wordsCopied = 0;
    std::uint64_t cellsCopied = 0;   ///< Objects (cells/conses/structs).
    std::uint64_t wordsReclaimed = 0;
};

/** One stop-and-copy collection over all PE heaps. */
class GcCollector
{
  public:
    explicit GcCollector(Emulator& emu);

    /** Run the collection. Caller guarantees quiescence. */
    void collect();

  private:
    struct Segment {
        Addr fromBase = 0;
        Addr fromEnd = 0;
        Addr toBase = 0;
        Addr toCursor = 0;
        Addr toEnd = 0;
    };

    bool inFromSpace(Addr addr) const;
    PeId segmentOwner(Addr addr) const;

    /** Relocate one term word (copying its target if needed). */
    Word relocate(Word w);

    /** Copy an object of @p nwords at @p addr; return the new address. */
    Addr copyObject(Addr addr, std::uint32_t nwords);

    /** Scan a to-space range, relocating every word in it. */
    void scanRange(Addr base, std::uint32_t nwords);

    /** Scan a suspension list: relocate nothing (suspension records do
     *  not move) but reach the floating goal records hooked on it. */
    void scanHookList(Addr susp_head);

    /** Scan a goal record's argument words in place (deduplicated). */
    void scanGoalRecord(Addr rec);

    /** Scan a floating record only if its state still matches @p seq. */
    void scanIfFloatingMatch(Addr rec, std::uint64_t seq);

    Emulator& emu_;
    std::vector<Segment> segments_;
    std::vector<std::pair<Addr, std::uint32_t>> worklist_;
    std::unordered_set<Addr> scannedGoals_;
    std::uint64_t copiedWords_ = 0;
    std::uint64_t copiedObjects_ = 0;
};

} // namespace pim::kl1

#endif // PIMCACHE_KL1_GC_H_
