#include "kl1/module.h"

#include <sstream>

#include "common/xassert.h"

namespace pim::kl1 {

const char*
opName(Op op)
{
    switch (op) {
      case Op::TryClause:      return "try_clause";
      case Op::Commit:         return "commit";
      case Op::Proceed:        return "proceed";
      case Op::Execute:        return "execute";
      case Op::Spawn:          return "spawn";
      case Op::SuspendOrFail:  return "suspend_or_fail";
      case Op::WaitInt:        return "wait_int";
      case Op::WaitAtom:       return "wait_atom";
      case Op::WaitList:       return "wait_list";
      case Op::WaitStruct:     return "wait_struct";
      case Op::WaitSame:       return "wait_same";
      case Op::GuardCmp:       return "guard_cmp";
      case Op::GuardCmpInt:    return "guard_cmp_int";
      case Op::GuardInteger:   return "guard_integer";
      case Op::GuardWait:      return "guard_wait";
      case Op::GuardOtherwise: return "guard_otherwise";
      case Op::GuardFail:      return "guard_fail";
      case Op::GuardDiff:      return "guard_diff";
      case Op::GArith:         return "guard_arith";
      case Op::GArithInt:      return "guard_arith_int";
      case Op::PutInt:         return "put_int";
      case Op::PutAtom:        return "put_atom";
      case Op::PutVar:         return "put_var";
      case Op::PutList:        return "put_list";
      case Op::PutStruct:      return "put_struct";
      case Op::Move:           return "move";
      case Op::Unify:          return "unify";
      case Op::Arith:          return "arith";
      case Op::ArithInt:       return "arith_int";
      case Op::BuiltinResult:  return "builtin_result";
      case Op::VecNew:         return "vector_new";
      case Op::VecGet:         return "vector_get";
      case Op::VecSet:         return "vector_set";
      case Op::VecSetD:        return "vector_set_d";
    }
    return "?";
}

void
Module::finalize()
{
    wordOffsets_.resize(code.size());
    std::uint32_t offset = 0;
    for (std::size_t pc = 0; pc < code.size(); ++pc) {
        wordOffsets_[pc] = offset;
        offset += code[pc].words();
    }
    totalWords_ = offset;
}

std::uint32_t
Module::procId(const std::string& name, std::uint32_t arity) const
{
    const std::string key = name + "/" + std::to_string(arity);
    const auto it = procIndex.find(key);
    if (it == procIndex.end())
        PIM_FATAL("undefined procedure ", key);
    return it->second;
}

std::string
Module::disassemble(std::uint32_t pc) const
{
    const Instr& ins = code[pc];
    std::ostringstream os;
    os << pc << "\t" << opName(ins.op) << " a=" << ins.a << " b=" << ins.b
       << " c=" << ins.c << " d=" << ins.d;
    if (Instr::hasImm(ins.op))
        os << " imm=" << ins.imm;
    return os.str();
}

std::string
Module::disassembleAll() const
{
    std::ostringstream os;
    for (const ProcInfo& proc : procs) {
        os << proc.name << "/" << proc.arity << ":\n";
        const std::uint32_t end =
            &proc == &procs.back()
                ? static_cast<std::uint32_t>(code.size())
                : (&proc + 1)->entryPc;
        for (std::uint32_t pc = proc.entryPc; pc < end; ++pc)
            os << "  " << disassemble(pc) << "\n";
    }
    return os.str();
}

} // namespace pim::kl1
