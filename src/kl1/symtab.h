/**
 * @file
 * Interned symbols (atoms) and functors for the KL1 system.
 */

#ifndef PIMCACHE_KL1_SYMTAB_H_
#define PIMCACHE_KL1_SYMTAB_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace pim::kl1 {

/** Interned atom identifier. */
using AtomId = std::uint32_t;

/** Functor = atom name + arity packed into one value. */
using FunctorId = std::uint32_t;

/** Atom interning table; id 0 is always '[]' (nil). */
class SymbolTable
{
  public:
    SymbolTable();

    /** Intern @p name, returning a stable id. */
    AtomId intern(const std::string& name);

    /** Name of an interned atom. */
    const std::string& name(AtomId id) const;

    /** Number of interned atoms. */
    std::size_t size() const { return names_.size(); }

    /** Pack a functor. Arity must fit in 8 bits. */
    static FunctorId
    functor(AtomId name, std::uint32_t arity)
    {
        return (name << 8) | (arity & 0xff);
    }

    static AtomId functorName(FunctorId f) { return f >> 8; }
    static std::uint32_t functorArity(FunctorId f) { return f & 0xff; }

    /** Render "name/arity". */
    std::string functorString(FunctorId f) const;

    /** The id of '[]'. */
    static constexpr AtomId kNil = 0;

  private:
    std::vector<std::string> names_;
    std::unordered_map<std::string, AtomId> index_;
};

} // namespace pim::kl1

#endif // PIMCACHE_KL1_SYMTAB_H_
