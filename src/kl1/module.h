/**
 * @file
 * A compiled KL1 module: instruction stream, procedure table, symbols.
 */

#ifndef PIMCACHE_KL1_MODULE_H_
#define PIMCACHE_KL1_MODULE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kl1/kl1b.h"
#include "kl1/symtab.h"

namespace pim::kl1 {

/** One compiled procedure. */
struct ProcInfo {
    std::string name;
    std::uint32_t arity = 0;
    std::uint32_t entryPc = 0; ///< Index into Module::code.
};

/** Compiled program image. */
class Module
{
  public:
    std::vector<Instr> code;
    std::vector<ProcInfo> procs;
    std::map<std::string, std::uint32_t> procIndex; ///< "name/arity" -> id.
    SymbolTable symbols;

    /** Compute word offsets of each instruction in the instruction area. */
    void finalize();

    /** Instruction-area word offset of instruction @p pc. */
    std::uint32_t
    wordOffset(std::uint32_t pc) const
    {
        return wordOffsets_[pc];
    }

    /** Total code size in instruction-area words. */
    std::uint32_t totalWords() const { return totalWords_; }

    /** Look up a procedure id; fatal when undefined. */
    std::uint32_t procId(const std::string& name,
                         std::uint32_t arity) const;

    /** Render a one-line disassembly of instruction @p pc. */
    std::string disassemble(std::uint32_t pc) const;

    /** Render the whole module's disassembly. */
    std::string disassembleAll() const;

  private:
    std::vector<std::uint32_t> wordOffsets_;
    std::uint32_t totalWords_ = 0;
};

} // namespace pim::kl1

#endif // PIMCACHE_KL1_MODULE_H_
