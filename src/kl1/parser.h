/**
 * @file
 * Recursive-descent parser for FGHC source.
 *
 * Syntax:
 *   clause  :=  head [ ':-' goal, ... [ '|' goal, ... ] ] '.'
 *   term    :=  infix expressions over =, \=, ==, <, >, =<, >=, =:=,
 *               =\=, := (700); +, - (500); *, //, mod (400); and the
 *               primaries: integers, variables, atoms, f(args), lists
 *               [a,b|T], and parenthesized terms.
 *
 * A clause without ':-' has an empty guard and body; a clause with ':-'
 * but no '|' has an empty guard (the commit is immediate).
 */

#ifndef PIMCACHE_KL1_PARSER_H_
#define PIMCACHE_KL1_PARSER_H_

#include <string>

#include "kl1/ast.h"

namespace pim::kl1 {

/** Parse FGHC source text into a Program. Fatal on syntax errors. */
Program parseProgram(const std::string& source);

/** Parse one goal term, e.g. a query like "main(10, R)". */
PTerm parseGoalTerm(const std::string& source);

} // namespace pim::kl1

#endif // PIMCACHE_KL1_PARSER_H_
