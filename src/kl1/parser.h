/**
 * @file
 * Recursive-descent parser for FGHC source.
 *
 * Syntax:
 *   clause  :=  head [ ':-' goal, ... [ '|' goal, ... ] ] '.'
 *   term    :=  infix expressions over =, \=, ==, <, >, =<, >=, =:=,
 *               =\=, := (700); +, - (500); *, //, mod (400); and the
 *               primaries: integers, variables, atoms, f(args), lists
 *               [a,b|T], and parenthesized terms.
 *
 * A clause without ':-' has an empty guard and body; a clause with ':-'
 * but no '|' has an empty guard (the commit is immediate).
 */

#ifndef PIMCACHE_KL1_PARSER_H_
#define PIMCACHE_KL1_PARSER_H_

#include <string>

#include "kl1/ast.h"

namespace pim::kl1 {

/**
 * Parse FGHC source text into a Program.
 * @param filename Used in error messages ("<filename>:line:column").
 * @throws SimFault (Parse) on malformed input — never terminates the
 * process, so drivers can report the error and keep going.
 */
Program parseProgram(const std::string& source,
                     const std::string& filename = "");

/**
 * Parse one goal term, e.g. a query like "main(10, R)".
 * @throws SimFault (Parse) on malformed input.
 */
PTerm parseGoalTerm(const std::string& source,
                    const std::string& filename = "");

} // namespace pim::kl1

#endif // PIMCACHE_KL1_PARSER_H_
