/**
 * @file
 * Compiler from FGHC clauses to the KL1-B-style instruction set.
 *
 * Each procedure compiles to a chain of clause blocks:
 *
 *   TryClause(next)  <head waits>  <guards>  Commit  <body>  Proceed/Execute
 *
 * terminated by a SuspendOrFail epilogue: if any clause's passive part
 * met an unbound variable it needed, the goal suspends on those
 * variables; otherwise the program fails (a fatal error in KL1).
 *
 * Register discipline: goal arguments arrive in X0..Xn-1; registers bound
 * during head matching and named body variables are persistent for the
 * clause; construction temporaries are recycled per body goal.
 */

#ifndef PIMCACHE_KL1_COMPILER_H_
#define PIMCACHE_KL1_COMPILER_H_

#include "kl1/ast.h"
#include "kl1/module.h"

namespace pim::kl1 {

/** Compile a parsed program. Fatal on semantic errors (undefined
 *  procedures, malformed guards, register overflow). */
Module compileProgram(const Program& program);

/** True if name/arity is a body builtin handled inline by the compiler. */
bool isBodyBuiltin(const std::string& name, std::uint32_t arity);

/** True if name/arity is a legal guard builtin. */
bool isGuardBuiltin(const std::string& name, std::uint32_t arity);

} // namespace pim::kl1

#endif // PIMCACHE_KL1_COMPILER_H_
