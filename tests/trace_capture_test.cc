/**
 * @file
 * Emulator <-> trace-replay consistency: a KL1 run's reference stream,
 * captured through System::setRefObserver, must replay through an
 * identically configured System with exactly the same reference counts
 * and closely matching traffic (replay issues references in trace order
 * rather than under engine/lock dynamics, so bus cycles are near but
 * not bit-equal).
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "kl1_test_util.h"
#include "trace/trace_file.h"
#include "sim/trace_replay.h"

namespace pim::kl1 {
namespace {

TEST(TraceCapture, CapturedRunReplaysWithIdenticalRefCounts)
{
    const char* src =
        "tree(0, R) :- true | R = 1.\n"
        "tree(N, R) :- N > 0 | N1 := N - 1, tree(N1, A), tree(N1, B),\n"
        "              add(A, B, R).\n"
        "add(A, B, R) :- integer(A), integer(B) | R := A + B.\n";

    const Kl1Config config = testutil::smallConfig(4);
    Module module = compileProgram(parseProgram(src));
    Emulator emu(std::move(module), config);
    std::vector<MemRef> trace;
    emu.system().setRefObserver(
        [&](const MemRef& ref) { trace.push_back(ref); });
    emu.run("tree(7, R).");
    const RefStats& live = emu.system().refStats();
    ASSERT_EQ(trace.size(), live.total());

    // Replay the capture through a fresh system of the same shape. The
    // policy must be pass-through: the captured operations are already
    // post-policy.
    SystemConfig sys_config;
    sys_config.numPes = config.numPes;
    sys_config.cache = config.cache;
    sys_config.memoryWords = emu.layout().totalWords();
    System replay_sys(sys_config);
    TraceReplay replay(replay_sys, trace);
    replay.run();

    EXPECT_EQ(replay.completed(), trace.size());
    const RefStats& replayed = replay_sys.refStats();
    for (int a = 0; a < kNumAreaSlots; ++a) {
        for (int o = 0; o < kNumMemOps; ++o) {
            EXPECT_EQ(replayed.count(static_cast<Area>(a),
                                     static_cast<MemOp>(o)),
                      live.count(static_cast<Area>(a),
                                 static_cast<MemOp>(o)))
                << areaName(static_cast<Area>(a)) << "/"
                << memOpName(static_cast<MemOp>(o));
        }
    }

    // Traffic agreement: trace-driven replay lacks the engine's clock
    // coupling, so allow a generous band around the live run.
    const double live_cycles =
        static_cast<double>(emu.system().bus().stats().totalCycles);
    const double replay_cycles =
        static_cast<double>(replay_sys.bus().stats().totalCycles);
    EXPECT_GT(replay_cycles, live_cycles * 0.5);
    EXPECT_LT(replay_cycles, live_cycles * 2.0);
}

TEST(TraceCapture, FileRoundTripPreservesTheRun)
{
    const char* src =
        "count(0, A, R) :- true | R = A.\n"
        "count(N, A, R) :- N > 0 | N1 := N - 1, A1 := A + N,\n"
        "    count(N1, A1, R).\n";
    const std::string path = ::testing::TempDir() + "/capture.pimtrace";

    std::uint64_t live_total = 0;
    {
        Module module = compileProgram(parseProgram(src));
        Emulator emu(std::move(module), testutil::smallConfig(2));
        TraceWriter writer(path, 2);
        emu.system().setRefObserver(
            [&](const MemRef& ref) { writer.append(ref); });
        emu.run("count(200, 0, R).");
        live_total = emu.system().refStats().total();
        writer.close();
    }

    TraceReader reader(path);
    std::vector<MemRef> loaded;
    MemRef ref;
    while (reader.next(ref))
        loaded.push_back(ref);
    EXPECT_EQ(loaded.size(), live_total);

    SystemConfig sys_config;
    sys_config.numPes = 2;
    sys_config.memoryWords = 1ull << 26;
    System sys(sys_config);
    TraceReplay replay(sys, loaded);
    replay.run();
    EXPECT_EQ(replay.completed(), loaded.size());
    std::remove(path.c_str());
}

} // namespace
} // namespace pim::kl1
