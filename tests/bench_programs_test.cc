/**
 * @file
 * Tests for the four synthesized benchmark programs: correct answers
 * (checked against host-side mirror computations) and the qualitative
 * workload shapes the paper attributes to each benchmark.
 */

#include <gtest/gtest.h>

#include "bench_kl1/programs.h"
#include "bench_kl1/workload.h"

namespace pim::kl1::bench {
namespace {

Kl1Config
testConfig(std::uint32_t pes = 8)
{
    Kl1Config config = paperConfig(pes);
    // Keep the test heaps small so the fixture stays light.
    config.layout.heapWordsPerPe = 1 << 21;
    return config;
}

TEST(BenchPrograms, AllFourHaveDistinctSources)
{
    const auto& all = allBenchmarks();
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all[0].name, "Tri");
    EXPECT_EQ(all[1].name, "Semi");
    EXPECT_EQ(all[2].name, "Puzzle");
    EXPECT_EQ(all[3].name, "Pascal");
    for (const auto& bench : all) {
        EXPECT_FALSE(bench.source.empty());
        EXPECT_FALSE(bench.query(1).empty());
    }
}

TEST(BenchPrograms, ByNameLookup)
{
    EXPECT_EQ(benchmarkByName("Semi").name, "Semi");
    EXPECT_EXIT(benchmarkByName("Nope"), ::testing::ExitedWithCode(1),
                "unknown benchmark");
}

TEST(BenchPrograms, TriMatchesMirrorAtSmallScale)
{
    const BenchResult result =
        runBenchmark(benchmarkByName("Tri"), 1, testConfig());
    EXPECT_EQ(result.answer, result.expected); // runBenchmark enforces too
    EXPECT_GT(result.run.reductions, 1000u);
    // A wide irregular tree: work must actually be distributed.
    EXPECT_GT(result.run.steals, 0u);
}

TEST(BenchPrograms, SemiMatchesMirrorAndSuspends)
{
    const BenchResult result =
        runBenchmark(benchmarkByName("Semi"), 1, testConfig());
    EXPECT_EQ(result.answer, result.expected);
    // The stream-merge manager suspends pervasively (paper: Semi has the
    // largest suspension count relative to its size).
    EXPECT_GT(result.run.suspensions, 50u);
}

TEST(BenchPrograms, PuzzleMatchesMirror)
{
    const BenchResult result =
        runBenchmark(benchmarkByName("Puzzle"), 1, testConfig());
    EXPECT_EQ(result.answer, result.expected);
    EXPECT_EQ(result.answer, "95"); // domino tilings of the 4x5 board
    // Heavy dynamic structure creation: plentiful heap writes.
    EXPECT_GT(result.refs.count(Area::Heap, MemOp::DW) +
                  result.refs.count(Area::Heap, MemOp::W),
              result.run.reductions / 2);
}

TEST(BenchPrograms, PascalMatchesMirrorAndPipelines)
{
    const BenchResult result =
        runBenchmark(benchmarkByName("Pascal"), 1, testConfig());
    EXPECT_EQ(result.answer, result.expected);
    // Producer/consumer pipeline: many suspensions.
    EXPECT_GT(result.run.suspensions, 20u);
}

TEST(BenchPrograms, ScaleGrowsWork)
{
    const BenchResult small =
        runBenchmark(benchmarkByName("Puzzle"), 1, testConfig());
    const BenchResult large =
        runBenchmark(benchmarkByName("Puzzle"), 2, testConfig());
    EXPECT_GT(large.run.reductions, small.run.reductions * 2);
}

TEST(BenchPrograms, AnswersIndependentOfPeCount)
{
    for (const BenchProgram& bench : allBenchmarks()) {
        const BenchResult one = runBenchmark(bench, 1, testConfig(1));
        const BenchResult eight = runBenchmark(bench, 1, testConfig(8));
        EXPECT_EQ(one.answer, eight.answer) << bench.name;
        // Semi's nondeterministic stream merge makes the candidate order
        // (and hence membership-scan lengths) scheduling-dependent; only
        // the result is confluent. The other three reduce identically.
        if (bench.name != "Semi") {
            EXPECT_EQ(one.run.reductions, eight.run.reductions)
                << bench.name;
        }
    }
}

TEST(BenchPrograms, AnswersIndependentOfPolicy)
{
    for (const BenchProgram& bench : allBenchmarks()) {
        const BenchResult all_opt = runBenchmark(
            bench, 1, testConfig());
        Kl1Config none = testConfig();
        none.policy = OptPolicy::none();
        const BenchResult no_opt = runBenchmark(bench, 1, none);
        EXPECT_EQ(all_opt.answer, no_opt.answer) << bench.name;
        // And the optimizations must not cost traffic.
        EXPECT_LE(all_opt.bus.totalCycles, no_opt.bus.totalCycles)
            << bench.name;
    }
}

TEST(BenchPrograms, ContractHolds)
{
    for (const BenchProgram& bench : allBenchmarks()) {
        const BenchResult result = runBenchmark(bench, 1, testConfig());
        EXPECT_EQ(result.bus.staleFetches, 0u) << bench.name;
    }
}

} // namespace
} // namespace pim::kl1::bench
