# End-to-end regression-ledger acceptance (ctest `obs` label,
# docs/OBSERVABILITY.md): pim_report over a real pim_perf smoke document
# must seed a ledger, gate an identical re-run clean, and fail (exit 3)
# on a synthetically degraded refs/sec.
#
# Usage:
#   cmake -DREPORT=<pim_report path> -DCHECK=<json_check path>
#         -DPERF_JSON=<perf smoke BENCH_perf.json> -DWORK=<scratch dir>
#         -P report_gate.cmake
#
# Flow:
#   1. seed:    pim_report PERF_JSON --history=WORK/H.jsonl  (exit 0)
#   2. repeat:  same inputs again — appends record 2, 0 regressions
#   3. degrade: PERF_JSON with refs_per_sec cut to ~1/100 must exit 3
#   4. exact:   PERF_JSON with cycles_per_ref drifted must exit 3, and
#               pass with --update-golden
#   5. schema:  the ledger satisfies `json_check --schema=history`
#               and the trend markdown was written.

foreach(var REPORT CHECK PERF_JSON WORK)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "report_gate.cmake: ${var} is required")
    endif()
endforeach()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})
set(HISTORY ${WORK}/BENCH_HISTORY.jsonl)

execute_process(COMMAND ${REPORT} ${PERF_JSON} --history=${HISTORY}
                        --stamp=seed --label=gate-test
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "gate: seeding run exited with ${rc}:\n${out}")
endif()

execute_process(COMMAND ${REPORT} ${PERF_JSON} --history=${HISTORY}
                        --stamp=repeat --label=gate-test
                        --out=${WORK}/TREND.md
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "gate: identical re-run must pass, exited ${rc}:\n${out}")
endif()
if(out MATCHES "REGRESSION")
    message(FATAL_ERROR "gate: identical re-run reported a regression:\n${out}")
endif()
if(NOT EXISTS ${WORK}/TREND.md)
    message(FATAL_ERROR "gate: trend markdown was not written")
endif()

# Two identical runs => exactly two ledger records.
file(STRINGS ${HISTORY} ledger_lines)
list(LENGTH ledger_lines ledger_count)
if(NOT ledger_count EQUAL 2)
    message(FATAL_ERROR
            "gate: expected 2 ledger records after 2 runs, found "
            "${ledger_count}")
endif()

# Synthetically degrade the throughput: every refs_per_sec becomes 1.0
# (any real simulator moves far more than 1.25 refs/sec, so this is
# always a >20% drop against the seeded baseline).
file(READ ${PERF_JSON} perf_text)
string(REGEX REPLACE "\"refs_per_sec\": [0-9.eE+-]+"
       "\"refs_per_sec\": 1.0" degraded_text "${perf_text}")
if(degraded_text STREQUAL perf_text)
    message(FATAL_ERROR "gate: could not synthesize a refs/sec drop")
endif()
file(WRITE ${WORK}/degraded.json "${degraded_text}")
execute_process(COMMAND ${REPORT} ${WORK}/degraded.json
                        --history=${HISTORY} --stamp=degraded
                        --label=gate-test --no-append
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 3)
    message(FATAL_ERROR
            "gate: degraded refs/sec must exit 3, got ${rc}:\n${out}")
endif()
if(NOT out MATCHES "REGRESSION: perf[.]p[0-9]+[.]refs_per_sec")
    message(FATAL_ERROR
            "gate: degraded run did not name the refs/sec metric:\n${out}")
endif()

# Exact-metric drift: bump cycles_per_ref; must fail without
# --update-golden and pass with it.
string(REGEX REPLACE "(\"cycles_per_ref\": )([0-9]+)" "\\19\\2"
       drifted_text "${perf_text}")
if(drifted_text STREQUAL perf_text)
    message(FATAL_ERROR "gate: could not synthesize cycles_per_ref drift")
endif()
file(WRITE ${WORK}/drifted.json "${drifted_text}")
execute_process(COMMAND ${REPORT} ${WORK}/drifted.json
                        --history=${HISTORY} --stamp=drift
                        --label=gate-test --no-append
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 3)
    message(FATAL_ERROR
            "gate: exact drift must exit 3, got ${rc}:\n${out}")
endif()
execute_process(COMMAND ${REPORT} ${WORK}/drifted.json
                        --history=${HISTORY} --stamp=golden
                        --label=gate-test --no-append --update-golden
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "gate: --update-golden must accept the drift, got ${rc}:\n${out}")
endif()

execute_process(COMMAND ${CHECK} --schema=history ${HISTORY}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "gate: ledger failed the history schema:\n${out}")
endif()
message(STATUS "gate: seed/repeat/degrade/drift/golden paths all correct")
