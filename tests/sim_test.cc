/**
 * @file
 * System-level tests: clock bookkeeping, optimization-policy demotion,
 * trace replay (order, parking, determinism), and aggregate statistics.
 */

#include <gtest/gtest.h>

#include "sim/system.h"
#include "sim/trace_replay.h"
#include "trace/synth.h"

namespace pim {
namespace {

SystemConfig
smallSystem(std::uint32_t pes = 4)
{
    SystemConfig config;
    config.numPes = pes;
    config.cache.geometry = {4, 2, 8};
    config.memoryWords = 1 << 20;
    return config;
}

TEST(OptPolicy, Presets)
{
    EXPECT_EQ(OptPolicy::none().name(), "None");
    EXPECT_EQ(OptPolicy::heapOnly().name(), "Heap");
    EXPECT_EQ(OptPolicy::goalOnly().name(), "Goal");
    EXPECT_EQ(OptPolicy::commOnly().name(), "Comm");
    EXPECT_EQ(OptPolicy::all().name(), "All");
}

TEST(OptPolicy, DemotionRules)
{
    const OptPolicy none = OptPolicy::none();
    EXPECT_EQ(none.apply(Area::Heap, MemOp::DW), MemOp::W);
    EXPECT_EQ(none.apply(Area::Goal, MemOp::ER), MemOp::R);
    EXPECT_EQ(none.apply(Area::Goal, MemOp::RP), MemOp::R);
    EXPECT_EQ(none.apply(Area::Goal, MemOp::DW), MemOp::W);
    EXPECT_EQ(none.apply(Area::Comm, MemOp::RI), MemOp::R);
    EXPECT_EQ(none.apply(Area::Heap, MemOp::LR), MemOp::LR);

    const OptPolicy heap = OptPolicy::heapOnly();
    EXPECT_EQ(heap.apply(Area::Heap, MemOp::DW), MemOp::DW);
    EXPECT_EQ(heap.apply(Area::Goal, MemOp::DW), MemOp::W);
    EXPECT_EQ(heap.apply(Area::Comm, MemOp::RI), MemOp::R);

    const OptPolicy all = OptPolicy::all();
    EXPECT_EQ(all.apply(Area::Goal, MemOp::ER), MemOp::ER);
    // No optimized commands are defined outside heap/goal/comm.
    EXPECT_EQ(all.apply(Area::Susp, MemOp::DW), MemOp::W);
    EXPECT_EQ(all.apply(Area::Instruction, MemOp::ER), MemOp::R);
}

TEST(System, ClocksAdvanceIndependently)
{
    System sys(smallSystem());
    sys.access(0, MemOp::R, 100, Area::Heap, 0); // miss: 13 cycles
    EXPECT_EQ(sys.clock(0), 13u);
    EXPECT_EQ(sys.clock(1), 0u);
    sys.access(0, MemOp::R, 101, Area::Heap, 0); // hit: 1 cycle
    EXPECT_EQ(sys.clock(0), 14u);
    EXPECT_EQ(sys.makespan(), 14u);
}

TEST(System, EarliestRunnablePicksMinClock)
{
    System sys(smallSystem());
    sys.access(0, MemOp::R, 100, Area::Heap, 0);
    sys.access(1, MemOp::R, 200, Area::Heap, 0);
    EXPECT_EQ(sys.earliestRunnable(), 2u); // untouched PEs at clock 0
    sys.advanceClock(2, 100);
    sys.advanceClock(3, 100);
    EXPECT_EQ(sys.earliestRunnable(), 0u);
}

TEST(System, EarliestRunnableSkipsParked)
{
    System sys(smallSystem(2));
    sys.access(0, MemOp::LR, 100, Area::Heap, 0);
    sys.access(1, MemOp::R, 100, Area::Heap, 0); // parks pe1
    ASSERT_TRUE(sys.parked(1));
    EXPECT_EQ(sys.earliestRunnable(), 0u);
    sys.access(0, MemOp::U, 100, Area::Heap, 0); // wake pe1
    sys.access(1, MemOp::R, 100, Area::Heap, 0); // retry completes
}

TEST(System, RefStatsCountCompletedOnly)
{
    System sys(smallSystem(2));
    sys.access(0, MemOp::LR, 100, Area::Heap, 0);
    sys.access(1, MemOp::R, 100, Area::Heap, 0); // rejected: not counted
    EXPECT_EQ(sys.refStats().total(), 1u);
    sys.access(0, MemOp::UW, 100, Area::Heap, 1);
    sys.access(1, MemOp::R, 100, Area::Heap, 0); // retry completes
    EXPECT_EQ(sys.refStats().total(), 3u);
    EXPECT_EQ(sys.refStats().opTotal(MemOp::LR), 1u);
    EXPECT_EQ(sys.refStats().opTotal(MemOp::UW), 1u);
    EXPECT_EQ(sys.refStats().opTotal(MemOp::R), 1u);
}

TEST(System, PolicyDemotionVisibleInRefStats)
{
    SystemConfig config = smallSystem(1);
    config.policy = OptPolicy::none();
    System sys(config);
    sys.access(0, MemOp::DW, 100, Area::Heap, 1);
    sys.access(0, MemOp::ER, 100, Area::Goal, 0);
    EXPECT_EQ(sys.refStats().opTotal(MemOp::DW), 0u);
    EXPECT_EQ(sys.refStats().opTotal(MemOp::W), 1u);
    EXPECT_EQ(sys.refStats().opTotal(MemOp::R), 1u);
}

TEST(System, FlushAllCachesReachesMemory)
{
    System sys(smallSystem());
    sys.access(0, MemOp::W, 100, Area::Heap, 42);
    sys.access(1, MemOp::W, 200, Area::Heap, 43);
    sys.flushAllCaches();
    EXPECT_EQ(sys.memory().read(100), 42u);
    EXPECT_EQ(sys.memory().read(200), 43u);
    EXPECT_FALSE(sys.cache(0).present(100));
}

TEST(System, TotalCacheStatsAggregates)
{
    System sys(smallSystem(2));
    sys.access(0, MemOp::R, 100, Area::Heap, 0);
    sys.access(1, MemOp::R, 200, Area::Heap, 0);
    const CacheStats total = sys.totalCacheStats();
    EXPECT_EQ(total.accesses, 2u);
    EXPECT_EQ(total.misses, 2u);
}

TEST(TraceReplay, CompletesAllRefs)
{
    System sys(smallSystem());
    RandomTrafficConfig config;
    config.numPes = 4;
    config.refsPerPe = 500;
    config.spanWords = 256;
    const std::vector<MemRef> trace = makeRandomTraffic(config);
    TraceReplay replay(sys, trace);
    replay.run();
    EXPECT_EQ(replay.completed(), trace.size());
    EXPECT_EQ(sys.refStats().total(), trace.size());
}

TEST(TraceReplay, DeterministicAcrossRuns)
{
    RandomTrafficConfig config;
    config.numPes = 4;
    config.refsPerPe = 1000;
    config.lockPctX100 = 500;
    config.spanWords = 128;
    const std::vector<MemRef> trace = makeRandomTraffic(config);

    Cycles cycles[2];
    for (int run = 0; run < 2; ++run) {
        System sys(smallSystem());
        TraceReplay replay(sys, trace);
        replay.run();
        cycles[run] = sys.bus().stats().totalCycles;
    }
    EXPECT_EQ(cycles[0], cycles[1]);
}

TEST(TraceReplay, LockPairsReplayWithContention)
{
    System sys(smallSystem());
    // Four PEs all lock the same hot word: heavy LWAIT traffic.
    const std::vector<MemRef> trace =
        makeLockTraffic(4, 100, 200, 50, 10000, 7);
    TraceReplay replay(sys, trace);
    replay.run();
    EXPECT_EQ(replay.completed(), trace.size());
    EXPECT_GT(replay.lockRejects(), 0u);
    // Everyone unlocked at the end.
    for (PeId pe = 0; pe < 4; ++pe)
        EXPECT_EQ(sys.cache(pe).lockDirectory().heldCount(), 0u);
}

TEST(TraceReplay, ProducerConsumerOptimizedCheaperThanPlain)
{
    const std::vector<MemRef> optimized =
        makeProducerConsumer(0, 1, 4, 4096, 4096, 8, 200, true);
    const std::vector<MemRef> plain =
        makeProducerConsumer(0, 1, 4, 4096, 4096, 8, 200, false);

    System sys_opt(smallSystem());
    TraceReplay(sys_opt, optimized).run();
    System sys_plain(smallSystem());
    TraceReplay(sys_plain, plain).run();

    EXPECT_LT(sys_opt.bus().stats().totalCycles,
              sys_plain.bus().stats().totalCycles);
    // The optimized handoff avoids all copy-backs to memory.
    EXPECT_EQ(sys_opt.bus().stats().memoryWrites, 0u);
    EXPECT_GT(sys_plain.bus().stats().memoryWrites, 0u);
}

TEST(TraceReplayDeath, UnreleasedLockIsFatal)
{
    System sys(smallSystem(2));
    std::vector<MemRef> trace;
    trace.push_back({100, MemOp::LR, Area::Heap, 0});
    trace.push_back({100, MemOp::R, Area::Heap, 1}); // waits forever
    TraceReplay replay(sys, trace);
    EXPECT_EXIT(replay.run(), ::testing::ExitedWithCode(1), "deadlock");
}

TEST(TraceReplayDeath, BadPeIsFatal)
{
    System sys(smallSystem(2));
    std::vector<MemRef> trace;
    trace.push_back({100, MemOp::R, Area::Heap, 5});
    EXPECT_DEATH(TraceReplay(sys, trace).run(), "pe");
}

} // namespace
} // namespace pim
