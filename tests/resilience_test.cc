// Resilient sweep execution (docs/ROBUSTNESS.md): retry/backoff
// accounting, the config hash gating checkpoints, checkpoint/resume
// byte-identity of the SWEEP document, and timeout rows draining
// instead of wedging the grid.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/sim_fault.h"
#include "sweep/sweep_runner.h"

namespace pim::sweep {
namespace {

namespace fs = std::filesystem;

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::string
tempDir(const char* leaf)
{
    const fs::path dir = fs::path(::testing::TempDir()) / leaf;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

// ------------------------------------------------------------ retry --

TEST(RetryBackoff, DoublesFromBaseAndCaps)
{
    RetryPolicy policy;
    policy.backoffBaseMs = 100;
    policy.backoffCapMs = 5000;
    EXPECT_EQ(retryBackoffMs(policy, 0), 0u);
    EXPECT_EQ(retryBackoffMs(policy, 1), 100u);
    EXPECT_EQ(retryBackoffMs(policy, 2), 200u);
    EXPECT_EQ(retryBackoffMs(policy, 3), 400u);
    EXPECT_EQ(retryBackoffMs(policy, 7), 5000u); // 6400 capped
    EXPECT_EQ(retryBackoffMs(policy, 30), 5000u);
}

TEST(RunWithRetry, SuccessRunsOnce)
{
    RetryPolicy policy;
    policy.retries = 5;
    RetryAccounting accounting;
    int calls = 0;
    runWithRetry(
        policy,
        [&] {
            ++calls;
            return false; // success / non-transient
        },
        &accounting, [](std::uint32_t) { FAIL() << "no sleep expected"; });
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(accounting.attempts, 1u);
    EXPECT_TRUE(accounting.backoffsMs.empty());
}

TEST(RunWithRetry, TransientFailureRetriesWithBackoffThenSucceeds)
{
    RetryPolicy policy;
    policy.retries = 4;
    policy.backoffBaseMs = 10;
    RetryAccounting accounting;
    std::vector<std::uint32_t> slept;
    int calls = 0;
    runWithRetry(
        policy,
        [&] {
            ++calls;
            return calls < 3; // transient twice, then success
        },
        &accounting, [&](std::uint32_t ms) { slept.push_back(ms); });
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(accounting.attempts, 3u);
    ASSERT_EQ(accounting.backoffsMs.size(), 2u);
    EXPECT_EQ(accounting.backoffsMs[0], 10u);
    EXPECT_EQ(accounting.backoffsMs[1], 20u);
    EXPECT_EQ(slept, accounting.backoffsMs);
}

TEST(RunWithRetry, AttemptsAreBounded)
{
    RetryPolicy policy;
    policy.retries = 2;
    policy.backoffBaseMs = 1;
    RetryAccounting accounting;
    int calls = 0;
    runWithRetry(
        policy,
        [&] {
            ++calls;
            return true; // transient forever
        },
        &accounting, [](std::uint32_t) {});
    EXPECT_EQ(calls, 3); // first attempt + 2 retries
    EXPECT_EQ(accounting.attempts, 3u);
    EXPECT_EQ(accounting.backoffsMs.size(), 2u);
}

// ------------------------------------------------------ config hash --

TEST(ConfigHash, StableAndSensitiveToDeterministicInputsOnly)
{
    const SweepSpec spec = SweepSpec::smokeGrid();
    SweepOptions options;
    const std::string base = sweepConfigHash(spec, options);
    EXPECT_EQ(base.size(), 16u);
    EXPECT_EQ(base, sweepConfigHash(spec, options));

    // Execution knobs do not change the hash (same grid, same results).
    SweepOptions execution = options;
    execution.jobs = 7;
    execution.timeoutSeconds = 3;
    execution.retry.retries = 9;
    execution.maxTasks = 1;
    execution.resume = true;
    EXPECT_EQ(base, sweepConfigHash(spec, execution));

    // The scale override changes the kl1 grid, so it changes the hash.
    SweepOptions scaled = options;
    scaled.scale = 3;
    EXPECT_NE(base, sweepConfigHash(spec, scaled));

    // So does any spec change.
    SweepSpec reseeded = spec;
    reseeded.seed = 2;
    EXPECT_NE(base, sweepConfigHash(reseeded, options));
}

// -------------------------------------------------- interrupt/resume --

TEST(Resume, InterruptedThenResumedSweepIsByteIdentical)
{
    const SweepSpec spec = SweepSpec::smokeGrid();

    SweepOptions uninterrupted;
    uninterrupted.jobs = 2;
    uninterrupted.outDir = tempDir("resume_full");
    const SweepOutcome full = runSweep(spec, uninterrupted);
    ASSERT_TRUE(full.complete);
    ASSERT_TRUE(writeSweepFiles(spec, full, uninterrupted));

    // Interrupt after 2 of 4 tasks: no SWEEP.json, a checkpoint instead.
    SweepOptions sliced;
    sliced.jobs = 2;
    sliced.outDir = tempDir("resume_sliced");
    sliced.maxTasks = 2;
    const SweepOutcome partial = runSweep(spec, sliced);
    EXPECT_FALSE(partial.complete);
    EXPECT_EQ(partial.completedRows, 2u);
    EXPECT_TRUE(partial.sweepJson.empty());
    ASSERT_TRUE(writeSweepFiles(spec, partial, sliced));
    const fs::path ckpt = fs::path(sliced.outDir) / sweepCheckpointName();
    ASSERT_TRUE(fs::exists(ckpt));
    EXPECT_FALSE(
        fs::exists(fs::path(sliced.outDir) / "SWEEP.json"));

    // Resume: restores the 2 checkpointed slots, runs the other 2.
    SweepOptions resumed = sliced;
    resumed.maxTasks = 0;
    resumed.resume = true;
    const SweepOutcome rest = runSweep(spec, resumed);
    EXPECT_TRUE(rest.complete);
    EXPECT_EQ(rest.resumedRows, 2u);
    ASSERT_TRUE(writeSweepFiles(spec, rest, resumed));

    // The acceptance bar: byte-identical SWEEP.json, and the checkpoint
    // cleaned up after publication.
    EXPECT_EQ(rest.sweepJson, full.sweepJson);
    EXPECT_EQ(readFile(sliced.outDir + "/SWEEP.json"),
              readFile(uninterrupted.outDir + "/SWEEP.json"));
    EXPECT_EQ(rest.fingerprint, full.fingerprint);
    EXPECT_FALSE(fs::exists(ckpt));
}

TEST(Resume, ForeignCheckpointIsRejectedAsConfigFault)
{
    const SweepSpec spec = SweepSpec::smokeGrid();
    SweepOptions options;
    options.outDir = tempDir("resume_foreign");
    options.maxTasks = 1;
    const SweepOutcome partial = runSweep(spec, options);
    ASSERT_FALSE(partial.complete);

    // Same checkpoint, different grid (scale override): must refuse.
    SweepOptions other = options;
    other.maxTasks = 0;
    other.resume = true;
    other.scale = 3;
    try {
        runSweep(spec, other);
        FAIL() << "expected SimFault(Config)";
    } catch (const SimFault& fault) {
        EXPECT_EQ(fault.kind(), SimFaultKind::Config);
    }
}

TEST(Resume, MissingCheckpointMeansFreshRun)
{
    const SweepSpec spec = SweepSpec::smokeGrid();
    SweepOptions options;
    options.outDir = tempDir("resume_fresh");
    options.resume = true;
    const SweepOutcome outcome = runSweep(spec, options);
    EXPECT_TRUE(outcome.complete);
    EXPECT_EQ(outcome.resumedRows, 0u);
}

TEST(Resume, CheckpointRoundTripsFailedRows)
{
    // A grid whose stress points all detect an injected deadlock: the
    // failed rows (kind + message) must survive the checkpoint so the
    // resumed SWEEP.json is still byte-identical.
    SweepSpec spec;
    spec.name = "faulty";
    spec.seed = 5;
    SweepExperiment stress;
    stress.id = "lost_ul";
    stress.kind = TaskKind::Stress;
    stress.seeds = 2;
    stress.base.set("steps", ParamValue::ofNumber(5000));
    stress.base.set("pes", ParamValue::ofNumber(4));
    stress.base.set("lockPct", ParamValue::ofNumber(40));
    stress.base.set("plan", ParamValue::ofText("lost_ul:p=1"));
    spec.experiments.push_back(std::move(stress));

    SweepOptions full_options;
    full_options.outDir = tempDir("resume_faulty_full");
    const SweepOutcome full = runSweep(spec, full_options);
    ASSERT_TRUE(full.complete);
    EXPECT_EQ(full.failedRows, 2u);

    SweepOptions sliced = full_options;
    sliced.outDir = tempDir("resume_faulty_sliced");
    sliced.maxTasks = 1;
    const SweepOutcome partial = runSweep(spec, sliced);
    ASSERT_FALSE(partial.complete);

    SweepOptions resumed = sliced;
    resumed.maxTasks = 0;
    resumed.resume = true;
    const SweepOutcome rest = runSweep(spec, resumed);
    ASSERT_TRUE(rest.complete);
    EXPECT_EQ(rest.resumedRows, 1u);
    EXPECT_EQ(rest.failedRows, 2u);
    EXPECT_EQ(rest.sweepJson, full.sweepJson);
}

// ----------------------------------------------------------- timeout --

TEST(Timeout, HungPointBecomesTimeoutRowAndGridDrains)
{
    // An unreachable wall-clock budget turns every point into a
    // SimFault(Timeout) result row; the grid still completes and the
    // rows carry the retry accounting (attempts = retries + 1).
    const SweepSpec spec = SweepSpec::smokeGrid();
    SweepOptions options;
    options.jobs = 2;
    options.timeoutSeconds = 1e-9;
    options.retry.retries = 1;
    options.retry.backoffBaseMs = 1;
    const SweepOutcome outcome = runSweep(spec, options);
    ASSERT_TRUE(outcome.complete);
    EXPECT_EQ(outcome.failedRows, outcome.rows.size());
    EXPECT_EQ(outcome.retriedRows, outcome.rows.size());
    for (const SweepRow& row : outcome.rows) {
        EXPECT_TRUE(row.failed);
        EXPECT_EQ(row.faultKind,
                  simFaultKindName(SimFaultKind::Timeout));
        EXPECT_EQ(row.attempts, 2u);
        ASSERT_EQ(row.retriedKinds.size(), 1u);
        EXPECT_EQ(row.retriedKinds[0],
                  simFaultKindName(SimFaultKind::Timeout));
    }
}

TEST(Timeout, DeterministicFaultsAreNotRetried)
{
    // Injected deadlocks are deterministic: re-running reproduces the
    // identical fault, so the runner must not waste attempts on them.
    SweepSpec spec;
    spec.name = "deterministic";
    spec.seed = 5;
    SweepExperiment stress;
    stress.id = "lost_ul";
    stress.kind = TaskKind::Stress;
    stress.seeds = 1;
    stress.base.set("steps", ParamValue::ofNumber(5000));
    stress.base.set("pes", ParamValue::ofNumber(4));
    stress.base.set("lockPct", ParamValue::ofNumber(40));
    stress.base.set("plan", ParamValue::ofText("lost_ul:p=1"));
    spec.experiments.push_back(std::move(stress));

    SweepOptions options;
    options.retry.retries = 3;
    const SweepOutcome outcome = runSweep(spec, options);
    ASSERT_TRUE(outcome.complete);
    ASSERT_EQ(outcome.failedRows, 1u);
    EXPECT_EQ(outcome.retriedRows, 0u);
    EXPECT_EQ(outcome.rows[0].attempts, 1u);
}

} // namespace
} // namespace pim::sweep
