/**
 * @file
 * Shared helpers for KL1 tests: compile source, run a query on a small
 * simulated machine, return results and statistics.
 */

#ifndef PIMCACHE_TESTS_KL1_TEST_UTIL_H_
#define PIMCACHE_TESTS_KL1_TEST_UTIL_H_

#include <map>
#include <string>
#include <vector>

#include "kl1/compiler.h"
#include "kl1/emulator.h"
#include "kl1/parser.h"

namespace pim::kl1::testutil {

/** Outcome of a test run. */
struct Outcome {
    RunStats stats;
    std::vector<std::string> results;
    std::map<std::string, std::string> bindings;
    CacheStats cache;
    BusStats bus;
    RefStats refs;
};

/** A small test configuration: @p pes PEs, modest areas. */
inline Kl1Config
smallConfig(std::uint32_t pes = 4)
{
    Kl1Config config;
    config.numPes = pes;
    config.cache.geometry = {4, 4, 64}; // 1 Kword per PE
    config.layout.instrWords = 1 << 14;
    config.layout.heapWordsPerPe = 1 << 20;
    config.layout.goalWordsPerPe = 1 << 16;
    config.layout.suspWordsPerPe = 1 << 14;
    config.layout.commWordsPerPe = 1 << 12;
    config.maxSteps = 100'000'000;
    return config;
}

/** Compile @p source and run @p query; fatal on program errors. */
inline Outcome
run(const std::string& source, const std::string& query,
    const Kl1Config& config = smallConfig())
{
    Module module = compileProgram(parseProgram(source));
    Emulator emu(std::move(module), config);
    Outcome out;
    out.stats = emu.run(query);
    out.results = emu.results();
    for (const auto& [name, value] : emu.queryBindings())
        out.bindings[name] = value;
    out.cache = emu.system().totalCacheStats();
    out.bus = emu.system().bus().stats();
    out.refs = emu.system().refStats();
    return out;
}

} // namespace pim::kl1::testutil

#endif // PIMCACHE_TESTS_KL1_TEST_UTIL_H_
