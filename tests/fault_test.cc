/**
 * @file
 * Fault-plan spec language and injector determinism tests.
 */

#include <gtest/gtest.h>

#include "common/sim_fault.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"

namespace pim {
namespace {

// ---------------------------------------------------------- the plan --

TEST(FaultPlan, ParsesSitesAndParameters)
{
    const FaultPlan plan = FaultPlan::parse(
        "drop_snoop:p=0.001,corrupt_word:p=1e-4,spurious_inv:after=5000");
    ASSERT_EQ(plan.rules.size(), 3u);
    EXPECT_EQ(plan.rules[0].site, FaultSite::DropSnoop);
    EXPECT_DOUBLE_EQ(plan.rules[0].probability, 0.001);
    EXPECT_EQ(plan.rules[1].site, FaultSite::CorruptWord);
    EXPECT_DOUBLE_EQ(plan.rules[1].probability, 1e-4);
    EXPECT_EQ(plan.rules[2].site, FaultSite::SpuriousInv);
    EXPECT_EQ(plan.rules[2].after, 5000u);
    // A pure after-rule fires once by default.
    EXPECT_EQ(plan.rules[2].maxFires, 1u);
}

TEST(FaultPlan, EmptySpecIsEmptyPlan)
{
    EXPECT_TRUE(FaultPlan::parse("").empty());
    EXPECT_TRUE(FaultPlan::parse("  ").empty());
}

TEST(FaultPlan, RoundTripsThroughToString)
{
    const char* const specs[] = {
        "lost_ul:p=1",
        "bit_flip:p=0.25:after=100:n=3",
        "stuck_lwait:after=7",
        "drop_snoop:p=0.001,dup_snoop:p=0.002,forced_miss:after=10",
        "spurious_wakeup:p=0.125",
    };
    for (const char* spec : specs) {
        const FaultPlan plan = FaultPlan::parse(spec);
        const std::string canonical = plan.toString();
        const FaultPlan reparsed = FaultPlan::parse(canonical);
        EXPECT_EQ(reparsed.toString(), canonical) << spec;
        ASSERT_EQ(reparsed.rules.size(), plan.rules.size()) << spec;
        for (std::size_t i = 0; i < plan.rules.size(); ++i) {
            EXPECT_EQ(reparsed.rules[i].site, plan.rules[i].site);
            EXPECT_DOUBLE_EQ(reparsed.rules[i].probability,
                             plan.rules[i].probability);
            EXPECT_EQ(reparsed.rules[i].after, plan.rules[i].after);
            EXPECT_EQ(reparsed.rules[i].maxFires, plan.rules[i].maxFires);
        }
    }
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    const char* const bad[] = {
        "no_such_site:p=0.5", "drop_snoop:p=1.5", "drop_snoop:p=-0.1",
        "drop_snoop:p=abc",   "drop_snoop",       "corrupt_word:q=3",
        "lost_ul:after=x",
    };
    for (const char* spec : bad) {
        EXPECT_THROW(FaultPlan::parse(spec), SimFault) << spec;
        try {
            FaultPlan::parse(spec);
        } catch (const SimFault& fault) {
            EXPECT_EQ(fault.kind(), SimFaultKind::Config) << spec;
        }
    }
}

TEST(FaultPlan, EverySiteNameParses)
{
    for (int i = 0; i < kNumFaultSites; ++i) {
        const FaultSite site = static_cast<FaultSite>(i);
        const std::string spec = std::string(faultSiteName(site)) + ":p=1";
        const FaultPlan plan = FaultPlan::parse(spec);
        ASSERT_EQ(plan.rules.size(), 1u) << spec;
        EXPECT_EQ(plan.rules[0].site, site);
    }
}

// ------------------------------------------------------ the injector --

TEST(FaultInjector, SameSeedSameDecisions)
{
    const FaultPlan plan = FaultPlan::parse("drop_snoop:p=0.3");
    FaultInjector a(plan, 42);
    FaultInjector b(plan, 42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.fire(FaultSite::DropSnoop), b.fire(FaultSite::DropSnoop));
    EXPECT_EQ(a.totalFires(), b.totalFires());
    EXPECT_GT(a.totalFires(), 0u);
    EXPECT_LT(a.totalFires(), 1000u);
}

TEST(FaultInjector, AfterRuleFiresExactlyOnceAtThreshold)
{
    const FaultPlan plan = FaultPlan::parse("lost_ul:after=5");
    FaultInjector injector(plan, 1);
    int fired_at = -1;
    for (int i = 1; i <= 20; ++i) {
        if (injector.fire(FaultSite::LostUnlock)) {
            EXPECT_EQ(fired_at, -1) << "fired more than once";
            fired_at = i;
        }
    }
    EXPECT_EQ(fired_at, 6); // Armed after the 5th opportunity.
    EXPECT_EQ(injector.stats(FaultSite::LostUnlock).opportunities, 20u);
    EXPECT_EQ(injector.stats(FaultSite::LostUnlock).fires, 1u);
}

TEST(FaultInjector, MaxFiresBoundsProbabilisticRules)
{
    const FaultPlan plan = FaultPlan::parse("bit_flip:p=1:n=3");
    FaultInjector injector(plan, 9);
    int fires = 0;
    for (int i = 0; i < 50; ++i) {
        if (injector.fire(FaultSite::BitFlipFill))
            ++fires;
    }
    EXPECT_EQ(fires, 3);
}

TEST(FaultInjector, SitesAreIndependent)
{
    const FaultPlan plan = FaultPlan::parse("dup_snoop:p=1");
    FaultInjector injector(plan, 3);
    EXPECT_FALSE(injector.fire(FaultSite::DropSnoop));
    EXPECT_TRUE(injector.fire(FaultSite::DupSnoop));
    EXPECT_FALSE(injector.fire(FaultSite::CorruptWord));
    EXPECT_EQ(injector.stats(FaultSite::CorruptWord).opportunities, 1u);
}

TEST(FaultInjector, FlipBitChangesExactlyOneBit)
{
    FaultInjector injector(FaultPlan::parse("corrupt_word:p=1"), 5);
    Word words[4] = {0, 0, 0, 0};
    injector.flipBit(words, 4);
    int bits = 0;
    for (Word w : words) {
        for (int b = 0; b < 64; ++b)
            bits += (w >> b) & 1;
    }
    EXPECT_EQ(bits, 1);
}

} // namespace
} // namespace pim
