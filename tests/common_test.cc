/**
 * @file
 * Unit tests for the common utilities.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/options.h"
#include "common/rng.h"
#include "common/strutil.h"
#include "common/table.h"

namespace pim {
namespace {

TEST(StrUtil, FmtFixed)
{
    EXPECT_EQ(fmtFixed(3.14159, 2), "3.14");
    EXPECT_EQ(fmtFixed(0.5, 0), "0");  // round-half-even via printf
    EXPECT_EQ(fmtFixed(-1.005, 1), "-1.0");
    EXPECT_EQ(fmtFixed(42.0, 3), "42.000");
}

TEST(StrUtil, FmtPct)
{
    EXPECT_EQ(fmtPct(0.4287), "42.87");
    EXPECT_EQ(fmtPct(1.0, 0), "100");
    EXPECT_EQ(fmtPct(0.0), "0.00");
}

TEST(StrUtil, FmtCount)
{
    EXPECT_EQ(fmtCount(0), "0");
    EXPECT_EQ(fmtCount(999), "999");
    EXPECT_EQ(fmtCount(1000), "1,000");
    EXPECT_EQ(fmtCount(1234567), "1,234,567");
    EXPECT_EQ(fmtCount(666233), "666,233");
}

TEST(StrUtil, FmtEng)
{
    EXPECT_EQ(fmtEng(13.0e6), "13.0M");
    EXPECT_EQ(fmtEng(28.9e6), "28.9M");
    EXPECT_EQ(fmtEng(4800), "4.8K");
    EXPECT_EQ(fmtEng(12), "12.0");
    EXPECT_EQ(fmtEng(2.5e9), "2.5G");
}

TEST(StrUtil, SplitAndTrim)
{
    const auto parts = splitString("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(trimString("  hi \t"), "hi");
    EXPECT_EQ(trimString(""), "");
    EXPECT_EQ(trimString("   "), "");
    EXPECT_TRUE(startsWith("--flag", "--"));
    EXPECT_FALSE(startsWith("-", "--"));
}

TEST(Rng, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Options, ParseForms)
{
    // Note: "--flag value" is greedy, so positional arguments go before
    // trailing boolean flags (or use --flag=value).
    const char* argv[] = {"prog", "--pes", "8", "--scale=2",
                          "input.fghc", "--verbose"};
    const Options opts = Options::parse(6, argv);
    EXPECT_EQ(opts.getInt("pes", 0), 8);
    EXPECT_EQ(opts.getInt("scale", 0), 2);
    EXPECT_TRUE(opts.getBool("verbose"));
    EXPECT_FALSE(opts.getBool("quiet"));
    ASSERT_EQ(opts.positional().size(), 1u);
    EXPECT_EQ(opts.positional()[0], "input.fghc");
}

TEST(Options, Defaults)
{
    const char* argv[] = {"prog"};
    const Options opts = Options::parse(1, argv);
    EXPECT_EQ(opts.getInt("missing", 42), 42);
    EXPECT_EQ(opts.getString("missing", "x"), "x");
    EXPECT_DOUBLE_EQ(opts.getDouble("missing", 1.5), 1.5);
}

TEST(Options, SetOverrides)
{
    Options opts;
    opts.set("a", "3");
    EXPECT_EQ(opts.getInt("a", 0), 3);
    opts.set("a", "4");
    EXPECT_EQ(opts.getInt("a", 0), 4);
}

TEST(Table, RendersAligned)
{
    Table table("T");
    table.setHeader({"bench", "value"});
    table.addRow({"Tri", "1.00"});
    table.addRow({"Semi", "0.62"});
    const std::string out = table.toString();
    EXPECT_NE(out.find("| bench |"), std::string::npos);
    EXPECT_NE(out.find("|  1.00 |"), std::string::npos);
    EXPECT_NE(out.find("Semi"), std::string::npos);
}

TEST(Table, RuleSeparators)
{
    Table table;
    table.setHeader({"a"});
    table.addRow({"1"});
    table.addRule();
    table.addRow({"2"});
    const std::string out = table.toString();
    // Header rule + added rule + top + bottom = 4 separator lines.
    int rules = 0;
    for (std::size_t pos = 0; (pos = out.find("+--", pos)) !=
                              std::string::npos; ++pos) {
        ++rules;
    }
    EXPECT_EQ(rules, 4);
}

} // namespace
} // namespace pim
