/**
 * @file
 * Tests for the four software-controlled commands of paper Section 3.2:
 * direct write (DW), exclusive read (ER), read purge (RP) and read
 * invalidate (RI), including the full write-once/read-once goal-record
 * handoff that motivates them.
 */

#include <gtest/gtest.h>

#include "sim/system.h"

namespace pim {
namespace {

SystemConfig
smallSystem()
{
    SystemConfig config;
    config.numPes = 4;
    config.cache.geometry = {4, 2, 8};
    config.memoryWords = 1 << 20;
    return config;
}

class Optimized : public ::testing::Test
{
  protected:
    Optimized() : sys_(smallSystem()) {}

    Word
    op(PeId pe, MemOp memop, Addr addr, Word wdata = 0,
       Area area = Area::Goal)
    {
        const System::Access result =
            sys_.access(pe, memop, addr, area, wdata);
        EXPECT_FALSE(result.lockWait);
        return result.data;
    }

    System sys_;
};

// ---------------------------------------------------------------- DW --

TEST_F(Optimized, DwOnBlockBoundaryAllocatesWithoutFetch)
{
    sys_.memory().write(100, 0xdead); // must NOT be fetched
    op(0, MemOp::DW, 100, 7);
    EXPECT_EQ(sys_.cache(0).stateOf(100), CacheState::EM);
    EXPECT_EQ(sys_.cache(0).stats().dwAllocNoFetch, 1u);
    EXPECT_EQ(sys_.bus().stats().totalCycles, 0u); // zero bus cycles
    EXPECT_EQ(op(0, MemOp::R, 100), 7u);
    EXPECT_EQ(sys_.cache(0).loadValue(101), 0u); // not 0xdead leftovers
}

TEST_F(Optimized, DwOffBoundaryBecomesWrite)
{
    op(0, MemOp::DW, 101, 7);
    EXPECT_EQ(sys_.cache(0).stats().dwDemoted, 1u);
    EXPECT_EQ(sys_.cache(0).stats().dwAllocNoFetch, 0u);
    // The demoted W fetched on write: a real FI went out.
    EXPECT_EQ(sys_.bus().stats().cmdCounts[static_cast<int>(BusCmd::FI)],
              1u);
}

TEST_F(Optimized, DwOnHitBecomesWrite)
{
    op(0, MemOp::R, 100);
    op(0, MemOp::DW, 100, 3);
    EXPECT_EQ(sys_.cache(0).stats().dwDemoted, 1u);
    EXPECT_EQ(op(0, MemOp::R, 100), 3u);
}

TEST_F(Optimized, DwSequenceFillsRecord)
{
    for (Addr a = 100; a < 108; ++a)
        op(0, MemOp::DW, a, a);
    EXPECT_EQ(sys_.cache(0).stats().dwAllocNoFetch, 2u); // two boundaries
    EXPECT_EQ(sys_.cache(0).stats().dwDemoted, 6u);
    for (Addr a = 100; a < 108; ++a)
        EXPECT_EQ(op(0, MemOp::R, a), a);
    // The six demoted DWs all hit the freshly allocated blocks: the only
    // bus traffic is zero (no dirty victims, no fetches).
    EXPECT_EQ(sys_.bus().stats().totalCycles, 0u);
}

TEST_F(Optimized, DwDirtyVictimUsesSwapOutOnly)
{
    // Fill set 0 of pe0's 2-way cache with dirty blocks, then DW a third.
    op(0, MemOp::W, 0, 1, Area::Heap);
    op(0, MemOp::W, 128, 2, Area::Heap);
    const Cycles before = sys_.bus().stats().totalCycles;
    op(0, MemOp::DW, 256, 3, Area::Heap);
    EXPECT_EQ(sys_.bus().stats().totalCycles - before, 5u);
    EXPECT_EQ(sys_.cache(0).stats().dwSwapOutOnly, 1u);
    EXPECT_EQ(sys_.memory().read(0), 1u); // victim written back
}

TEST_F(Optimized, DwdAllocatesAtBlockEnd)
{
    // DWD: the downward-stack twin of DW (paper: "to optimize both, two
    // commands are necessary"). Writing the LAST word of a block
    // allocates without fetch; other offsets demote to W.
    sys_.memory().write(100, 0xdead);
    op(0, MemOp::DWD, 103, 9, Area::Heap); // last word of block [100,104)
    EXPECT_EQ(sys_.cache(0).stateOf(103), CacheState::EM);
    EXPECT_EQ(sys_.cache(0).stats().dwAllocNoFetch, 1u);
    EXPECT_EQ(sys_.bus().stats().totalCycles, 0u);
    EXPECT_EQ(op(0, MemOp::R, 103), 9u);
    EXPECT_EQ(sys_.cache(0).loadValue(100), 0u); // not fetched
}

TEST_F(Optimized, DwdOffBoundaryBecomesWrite)
{
    op(0, MemOp::DWD, 100, 9, Area::Heap); // first word: not a DWD point
    EXPECT_EQ(sys_.cache(0).stats().dwDemoted, 1u);
    EXPECT_EQ(sys_.cache(0).stats().dwAllocNoFetch, 0u);
}

TEST_F(Optimized, DwdDownwardStackPattern)
{
    // A stack growing downward from 199: every block is entered at its
    // last word, so each block costs zero bus cycles to allocate.
    for (Addr a = 199; a >= 180; --a)
        op(0, MemOp::DWD, a, a, Area::Heap);
    EXPECT_EQ(sys_.cache(0).stats().dwAllocNoFetch, 5u);
    EXPECT_EQ(sys_.bus().stats().totalCycles, 0u);
    for (Addr a = 199; a >= 180; --a)
        EXPECT_EQ(op(0, MemOp::R, a), a);
}

// ---------------------------------------------------------------- ER --

TEST_F(Optimized, ErMissNotLastWordInvalidatesSupplier)
{
    op(0, MemOp::W, 100, 11);
    op(1, MemOp::ER, 100);
    // Case (i): read-invalidate; supplier loses its copy, the receiver
    // becomes the exclusive dirty owner, memory untouched.
    EXPECT_EQ(sys_.cache(0).stateOf(100), CacheState::INV);
    EXPECT_EQ(sys_.cache(1).stateOf(100), CacheState::EM);
    EXPECT_EQ(sys_.cache(1).stats().erAsRi, 1u);
    EXPECT_EQ(sys_.bus().stats().memoryWrites, 0u);
}

TEST_F(Optimized, ErHitLastWordPurges)
{
    op(0, MemOp::W, 100, 1);
    op(0, MemOp::W, 103, 2);
    EXPECT_EQ(op(0, MemOp::ER, 103), 2u);
    // Case (ii): read then purge own copy, without copy-back.
    EXPECT_FALSE(sys_.cache(0).present(100));
    EXPECT_EQ(sys_.cache(0).stats().erAsRp, 1u);
    EXPECT_EQ(sys_.cache(0).stats().purgedDirty, 1u);
    EXPECT_EQ(sys_.bus().stats().memoryWrites, 0u);
}

TEST_F(Optimized, ErHitNotLastWordIsPlainRead)
{
    op(0, MemOp::W, 100, 1);
    EXPECT_EQ(op(0, MemOp::ER, 101), 0u);
    EXPECT_TRUE(sys_.cache(0).present(100));
    EXPECT_EQ(sys_.cache(0).stats().erAsR, 1u);
}

TEST_F(Optimized, ErMissLastWordIsPlainRead)
{
    sys_.memory().write(103, 5);
    EXPECT_EQ(op(0, MemOp::ER, 103), 5u);
    EXPECT_TRUE(sys_.cache(0).present(103)); // installed, not purged
    EXPECT_EQ(sys_.cache(0).stats().erAsR, 1u);
}

// ---------------------------------------------------------------- RP --

TEST_F(Optimized, RpHitPurgesOwnCopy)
{
    op(0, MemOp::W, 100, 9);
    EXPECT_EQ(op(0, MemOp::RP, 101), 0u);
    EXPECT_FALSE(sys_.cache(0).present(100));
    EXPECT_EQ(sys_.cache(0).stats().purgedDirty, 1u);
    EXPECT_EQ(sys_.bus().stats().memoryWrites, 0u);
}

TEST_F(Optimized, RpMissFetchesWithoutInstalling)
{
    op(0, MemOp::W, 100, 9);
    EXPECT_EQ(op(1, MemOp::RP, 100), 9u);
    // Supplier invalidated, receiver never keeps a copy.
    EXPECT_EQ(sys_.cache(0).stateOf(100), CacheState::INV);
    EXPECT_FALSE(sys_.cache(1).present(100));
    EXPECT_EQ(sys_.bus().stats().memoryWrites, 0u);
}

TEST_F(Optimized, RpMissFromMemory)
{
    sys_.memory().write(100, 4);
    EXPECT_EQ(op(0, MemOp::RP, 100), 4u);
    EXPECT_FALSE(sys_.cache(0).present(100));
}

// ---------------------------------------------------------------- RI --

TEST_F(Optimized, RiMissTakesExclusiveAndAvoidsLaterInvalidate)
{
    op(0, MemOp::W, 100, 1, Area::Comm);
    op(1, MemOp::RI, 100, 0, Area::Comm);
    EXPECT_EQ(sys_.cache(1).stateOf(100), CacheState::EM);
    const std::uint64_t inv_before =
        sys_.bus().stats().cmdCounts[static_cast<int>(BusCmd::I)];
    op(1, MemOp::W, 100, 2, Area::Comm); // rewrite: silent, no I command
    EXPECT_EQ(sys_.bus().stats().cmdCounts[static_cast<int>(BusCmd::I)],
              inv_before);
}

TEST_F(Optimized, PlainReadThenWriteNeedsInvalidate)
{
    // Contrast case for RI: with plain R the rewrite costs an I command.
    op(0, MemOp::W, 100, 1, Area::Comm);
    op(1, MemOp::R, 100, 0, Area::Comm);
    const std::uint64_t inv_before =
        sys_.bus().stats().cmdCounts[static_cast<int>(BusCmd::I)];
    op(1, MemOp::W, 100, 2, Area::Comm);
    EXPECT_EQ(sys_.bus().stats().cmdCounts[static_cast<int>(BusCmd::I)],
              inv_before + 1);
}

TEST_F(Optimized, RiHitIsPlainRead)
{
    op(0, MemOp::R, 100, 0, Area::Comm);
    op(0, MemOp::RI, 100, 0, Area::Comm);
    EXPECT_EQ(sys_.cache(0).stats().riCount, 1u);
    EXPECT_EQ(sys_.cache(0).stats().riExclusive, 0u);
}

// ------------------------------------------------- full handoff -------

TEST_F(Optimized, GoalRecordHandoffLeavesNoResidue)
{
    // pe0 creates an 8-word goal record with DW; pe1 consumes it with
    // ER/RP. Afterwards: no cached copies, no memory writes, and the bus
    // carried exactly two cache-to-cache transfers.
    for (Addr a = 400; a < 408; ++a)
        op(0, MemOp::DW, a, a * 10);
    const Cycles before = sys_.bus().stats().totalCycles;
    for (Addr a = 400; a < 407; ++a)
        EXPECT_EQ(op(1, MemOp::ER, a), a * 10);
    EXPECT_EQ(op(1, MemOp::RP, 407), 4070u);
    EXPECT_FALSE(sys_.cache(0).present(400));
    EXPECT_FALSE(sys_.cache(0).present(404));
    EXPECT_FALSE(sys_.cache(1).present(400));
    EXPECT_FALSE(sys_.cache(1).present(404));
    EXPECT_EQ(sys_.bus().stats().memoryWrites, 0u);
    // Two FI cache-to-cache transfers at 7 cycles each.
    EXPECT_EQ(sys_.bus().stats().totalCycles - before, 14u);
}

TEST_F(Optimized, UnoptimizedHandoffCostsMore)
{
    // The same handoff through a policy-None system: fetch-on-write
    // misses and eventual swap-outs make the bus busier.
    SystemConfig config = smallSystem();
    config.policy = OptPolicy::none();
    System plain(config);
    System optimized(smallSystem());
    for (Addr a = 400; a < 408; ++a) {
        plain.access(0, MemOp::DW, a, Area::Goal, a * 10);
        optimized.access(0, MemOp::DW, a, Area::Goal, a * 10);
    }
    for (Addr a = 400; a < 408; ++a) {
        const MemOp op = a == 407 ? MemOp::RP : MemOp::ER;
        // Both systems observe the same values (functional equivalence).
        EXPECT_EQ(plain.access(1, op, a, Area::Goal, 0).data,
                  optimized.access(1, op, a, Area::Goal, 0).data);
    }
    EXPECT_GT(plain.bus().stats().totalCycles,
              optimized.bus().stats().totalCycles);
}

TEST_F(Optimized, StaleFetchCounterCatchesContractViolation)
{
    op(0, MemOp::W, 100, 55);
    op(0, MemOp::RP, 100); // purge dirty: value 55 is dropped
    // Violation: re-reading after the purge fetches stale memory.
    EXPECT_EQ(op(0, MemOp::R, 100), 0u);
    EXPECT_EQ(sys_.bus().stats().staleFetches, 1u);
}

} // namespace
} // namespace pim
