/**
 * @file
 * Clustered snooping-bus topology tests (docs/ARCHITECTURE.md).
 *
 * Three layers: unit tests of ClusterConfig/ClusterTopology (partition
 * arithmetic and per-bus reservation timing), the InterClusterDirectory
 * (cluster-residency sets maintained from the residency filter), and
 * system-level behavior — protocol outcomes identical to the single
 * bus, hop cycles accounted exactly (totalCycles = pattern sum +
 * interClusterCycles), zero hops for cluster-local traffic, and the
 * attribution engine's cross-check holding with clustering on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bus/cluster_bus.h"
#include "bus/intercluster_directory.h"
#include "bus/residency_filter.h"
#include "common/rng.h"
#include "obs/attribution.h"
#include "sim/system.h"

namespace pim {
namespace {

// ---------------------------------------------------------------------
// ClusterConfig / ClusterTopology units.
// ---------------------------------------------------------------------

TEST(ClusterConfigUnit, PartitionArithmetic)
{
    ClusterConfig config;
    EXPECT_FALSE(config.clustered());
    EXPECT_EQ(config.clusterOf(17), 0u);
    EXPECT_EQ(config.clustersFor(64), 1u);

    config.clusterSize = 4;
    EXPECT_TRUE(config.clustered());
    EXPECT_EQ(config.clusterOf(0), 0u);
    EXPECT_EQ(config.clusterOf(3), 0u);
    EXPECT_EQ(config.clusterOf(4), 1u);
    EXPECT_EQ(config.clusterOf(17), 4u);
    EXPECT_EQ(config.clustersFor(16), 4u);
    EXPECT_EQ(config.clustersFor(17), 5u);
    EXPECT_EQ(config.clustersFor(0), 1u);
}

TEST(ClusterTopologyUnit, EnabledNeedsTwoClusters)
{
    ClusterConfig config;
    config.clusterSize = 4;
    ClusterTopology topo(config);
    for (PeId pe = 0; pe < 4; ++pe)
        topo.registerPe(pe);
    // All four PEs share cluster 0: still effectively a single bus.
    EXPECT_FALSE(topo.enabled());
    topo.registerPe(4);
    EXPECT_TRUE(topo.enabled());
    EXPECT_EQ(topo.numClusters(), 2u);
    EXPECT_EQ(topo.allRemote(0), 0b10ull);
    EXPECT_EQ(topo.allRemote(1), 0b01ull);
}

TEST(ClusterTopologyUnit, DisjointRoutesOverlapSharedRoutesSerialize)
{
    ClusterConfig config;
    config.clusterSize = 1; // One PE per cluster: 4 buses.
    ClusterTopology topo(config);
    for (PeId pe = 0; pe < 4; ++pe)
        topo.registerPe(pe);

    // Cluster 0 busy until 100.
    topo.occupy(0, 0, 100);
    // A transaction on clusters {1, 2} is independent: starts on time.
    EXPECT_EQ(topo.arbitrate(1, 0b100, 10), 10u);
    topo.occupy(1, 0b100, 60);
    // A route touching cluster 2 now waits for it...
    EXPECT_EQ(topo.arbitrate(3, 0b100, 10), 60u);
    // ...and one touching cluster 0 waits for the longest reserved bus.
    EXPECT_EQ(topo.arbitrate(3, 0b001, 10), 100u);
    // Cluster 3 itself is still free.
    EXPECT_EQ(topo.arbitrate(3, 0, 10), 10u);
    EXPECT_EQ(topo.clusterFreeAt(2), 60u);
}

// ---------------------------------------------------------------------
// InterClusterDirectory units.
// ---------------------------------------------------------------------

TEST(InterClusterDirectoryUnit, TracksClusterResidencySets)
{
    ClusterConfig config;
    config.clusterSize = 2;
    ResidencyFilter filter;
    filter.setBlockWords(4);
    for (PeId pe = 0; pe < 6; ++pe)
        filter.registerPe(pe);
    InterClusterDirectory dir;
    dir.configure(config, 4);
    ASSERT_TRUE(dir.tracking());

    // PEs 0 (cluster 0) and 5 (cluster 2) take copies of block 8.
    filter.addCopy(0, 8);
    dir.noteCopy(0, 8, true, filter);
    filter.addCopy(5, 8);
    dir.noteCopy(5, 8, true, filter);
    EXPECT_EQ(dir.copyClusters(8), 0b101ull);
    EXPECT_EQ(dir.lockClusters(8), 0u);

    // PE 4 shares cluster 2 with PE 5: the bit is already set, and it
    // must survive PE 5's departure while PE 4 still holds a copy.
    filter.addCopy(4, 8);
    dir.noteCopy(4, 8, true, filter);
    filter.removeCopy(5, 8);
    dir.noteCopy(5, 8, false, filter);
    EXPECT_EQ(dir.copyClusters(8), 0b101ull);

    // Last departure from cluster 2 clears its bit.
    filter.removeCopy(4, 8);
    dir.noteCopy(4, 8, false, filter);
    EXPECT_EQ(dir.copyClusters(8), 0b001ull);

    // Locks are tracked independently of copies.
    filter.setLockResident(3, 8, true);
    dir.noteLock(3, 8, true, filter);
    EXPECT_EQ(dir.lockClusters(8), 0b010ull);
    EXPECT_EQ(dir.copyClusters(8), 0b001ull);
    filter.setLockResident(3, 8, false);
    dir.noteLock(3, 8, false, filter);
    EXPECT_EQ(dir.lockClusters(8), 0u);
}

TEST(InterClusterDirectoryUnit, DisabledOnSingleBus)
{
    InterClusterDirectory dir;
    dir.configure(ClusterConfig{}, 4);
    EXPECT_FALSE(dir.tracking());
    EXPECT_EQ(dir.copyClusters(8), 0u);
    EXPECT_EQ(dir.lockClusters(8), 0u);
}

// ---------------------------------------------------------------------
// System-level behavior.
// ---------------------------------------------------------------------

SystemConfig
clusteredConfig(std::uint32_t pes, std::uint32_t cluster_size,
                std::uint32_t hop_cycles = 4)
{
    SystemConfig config;
    config.numPes = pes;
    config.cache.geometry.blockWords = 4;
    config.cache.geometry.sets = 4;
    config.cache.geometry.ways = 2;
    config.memoryWords = 1 << 16;
    config.cluster.clusterSize = cluster_size;
    config.cluster.hopCycles = hop_cycles;
    config.validate();
    return config;
}

/** The hop-accounting invariant the conformance harness also asserts. */
void
expectHopAccountingExact(const BusStats& stats)
{
    Cycles pattern_sum = 0;
    for (int p = 0; p < kNumBusPatterns; ++p)
        pattern_sum += stats.cyclesByPattern[p];
    EXPECT_EQ(stats.totalCycles, pattern_sum + stats.interClusterCycles);
}

TEST(ClusteredSystem, ProtocolOutcomesMatchSingleBus)
{
    // The same reference stream on a single bus and on a 2-PE-per-
    // cluster topology: timing differs, protocol content must not.
    System single(clusteredConfig(6, 0));
    System clustered(clusteredConfig(6, 2));
    Rng rng(99);
    for (int step = 0; step < 3000; ++step) {
        const PeId pe = static_cast<PeId>(rng.below(6));
        const Addr addr = rng.below(512);
        const MemOp op = (rng.next() & 1) != 0 ? MemOp::W : MemOp::R;
        const Word data = rng.next();
        const Word got_single =
            single.access(pe, op, addr, Area::Heap, data).data;
        const Word got_clustered =
            clustered.access(pe, op, addr, Area::Heap, data).data;
        EXPECT_EQ(got_single, got_clustered) << "step " << step;
    }
    EXPECT_EQ(single.protocolHash(0, 512), clustered.protocolHash(0, 512));
    // Same transactions, same per-pattern costs; only hops differ.
    for (int p = 0; p < kNumBusPatterns; ++p) {
        EXPECT_EQ(single.bus().stats().transByPattern[p],
                  clustered.bus().stats().transByPattern[p]);
        EXPECT_EQ(single.bus().stats().cyclesByPattern[p],
                  clustered.bus().stats().cyclesByPattern[p]);
    }
    EXPECT_EQ(single.bus().stats().interClusterCycles, 0u);
    expectHopAccountingExact(single.bus().stats());
    expectHopAccountingExact(clustered.bus().stats());
}

TEST(ClusteredSystem, ClusterLocalTrafficPaysNoHops)
{
    // PEs 0 and 1 share cluster 0 of a 2-cluster machine; all their
    // read/write sharing stays on their own bus and bank port.
    System system(clusteredConfig(4, 2));
    ASSERT_TRUE(system.bus().clusters().enabled());
    Rng rng(7);
    for (int step = 0; step < 500; ++step) {
        const PeId pe = static_cast<PeId>(rng.below(2));
        const Addr addr = rng.below(256);
        const MemOp op = (rng.next() & 1) != 0 ? MemOp::W : MemOp::R;
        system.access(pe, op, addr, Area::Heap, rng.next());
    }
    EXPECT_NE(system.bus().stats().totalCycles, 0u);
    EXPECT_EQ(system.bus().stats().interClusterCycles, 0u);
    EXPECT_EQ(system.bus().stats().interClusterHops, 0u);
}

TEST(ClusteredSystem, CrossClusterSharingPaysRoundTrips)
{
    const std::uint32_t hop = 3;
    System system(clusteredConfig(4, 2, hop));

    // PE 0 (cluster 0) writes a block; PE 2 (cluster 1) reads it: the
    // fetch must consult cluster 0 — one round trip of 2*hop cycles.
    system.access(0, MemOp::W, 16, Area::Heap, 42);
    const BusStats before = system.bus().stats();
    system.access(2, MemOp::R, 16, Area::Heap, 0);
    const BusStats after = system.bus().stats();
    EXPECT_EQ(after.interClusterCycles - before.interClusterCycles,
              2 * hop);
    EXPECT_EQ(after.interClusterHops - before.interClusterHops, 1u);
    expectHopAccountingExact(after);

    // A write hit in shared state broadcasts an invalidate, which now
    // must reach the remote sharer's cluster: another round trip.
    system.access(0, MemOp::W, 16, Area::Heap, 43);
    const BusStats inv = system.bus().stats();
    EXPECT_EQ(inv.interClusterCycles - after.interClusterCycles, 2 * hop);
    expectHopAccountingExact(inv);
}

TEST(ClusteredSystem, AttributionCrossCheckHoldsWithClustering)
{
    SystemConfig config = clusteredConfig(8, 2);
    System system(config);
    AttributionEngine attribution(
        config.numPes, config.timing, config.cache.geometry.blockWords,
        config.cache.geometry.ways * config.cache.geometry.sets);
    system.addEventSink(&attribution);

    // Hold-at-most-one lock discipline; a rejected LR parks the PE, so
    // every step drives the earliest runnable PE (as the emulator does)
    // and a parked PE's pending LR retries after its wakeup.
    Rng rng(13);
    std::vector<bool> holds(8, false);
    std::vector<Addr> held(8, 0);
    std::vector<bool> retry(8, false);
    std::vector<Addr> retryAddr(8, 0);
    for (int step = 0; step < 4000; ++step) {
        const PeId pe = system.earliestRunnable();
        ASSERT_NE(pe, kNoPe);
        if (retry[pe]) {
            retry[pe] = !holds[pe] &&
                        system.access(pe, MemOp::LR, retryAddr[pe],
                                      Area::Heap, 0)
                            .lockWait;
            if (!retry[pe]) {
                holds[pe] = true;
                held[pe] = retryAddr[pe];
            }
            continue;
        }
        const std::uint64_t roll = rng.below(100);
        if (roll < 10) {
            // Lock traffic exercises LockReject and Unlock hop paths:
            // one contended word shared by all, one private per PE.
            if (holds[pe]) {
                system.access(pe, MemOp::U, held[pe], Area::Heap, 0);
                holds[pe] = false;
            } else {
                const Addr addr =
                    (rng.next() & 1) != 0 ? 1024 + 4 * pe : 1024;
                if (system.access(pe, MemOp::LR, addr, Area::Heap, 0)
                        .lockWait) {
                    retry[pe] = true;
                    retryAddr[pe] = addr;
                } else {
                    holds[pe] = true;
                    held[pe] = addr;
                }
            }
        } else {
            const Addr addr = rng.below(512);
            const MemOp op = roll < 60 ? MemOp::W : MemOp::R;
            system.access(pe, op, addr, Area::Heap, rng.next());
        }
    }
    // Drain: release held locks so no PE ends the run parked.
    for (PeId pe = 0; pe < 8; ++pe) {
        if (holds[pe])
            system.access(pe, MemOp::U, held[pe], Area::Heap, 0);
    }
    EXPECT_NE(system.bus().stats().interClusterCycles, 0u);
    expectHopAccountingExact(system.bus().stats());
    EXPECT_EQ(attribution.crossCheck(system.bus().stats()), "");
}

TEST(ClusteredSystem, WideClusteredMachineStaysExact)
{
    // 128 PEs in 16 clusters: multi-word masks and the directory work
    // together; protocol content still matches the single bus.
    System single(clusteredConfig(128, 0));
    System clustered(clusteredConfig(128, 8, 2));
    Rng rng(5);
    for (int step = 0; step < 4000; ++step) {
        const PeId pe = static_cast<PeId>(rng.below(128));
        const Addr addr = rng.below(1024);
        const MemOp op = (rng.next() & 1) != 0 ? MemOp::W : MemOp::R;
        const Word data = rng.next();
        const Word a = single.access(pe, op, addr, Area::Heap, data).data;
        const Word b =
            clustered.access(pe, op, addr, Area::Heap, data).data;
        EXPECT_EQ(a, b) << "step " << step;
    }
    EXPECT_EQ(single.protocolHash(0, 1024),
              clustered.protocolHash(0, 1024));
    EXPECT_NE(clustered.bus().stats().interClusterCycles, 0u);
    expectHopAccountingExact(clustered.bus().stats());
}

} // namespace
} // namespace pim
