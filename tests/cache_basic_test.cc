/**
 * @file
 * Single-cache behaviour: hits, misses, state transitions local to one
 * PE, LRU replacement, write-back of dirty victims, data correctness.
 */

#include <gtest/gtest.h>

#include "bus/bus.h"
#include "cache/pim_cache.h"
#include "mem/paged_store.h"

namespace pim {
namespace {

class SingleCache : public ::testing::Test
{
  protected:
    SingleCache() : memory_(1 << 20), bus_(BusTiming{}, memory_)
    {
        CacheConfig config;
        config.geometry = {4, 2, 4}; // 4-word blocks, 2 ways, 4 sets
        cache_ = std::make_unique<PimCache>(0, config, bus_);
    }

    PimCache::AccessResult
    op(MemOp memop, Addr addr, Word wdata = 0, Cycles now = 0)
    {
        return cache_->access({addr, memop, Area::Heap, 0}, wdata, now);
    }

    PagedStore memory_;
    Bus bus_;
    std::unique_ptr<PimCache> cache_;
};

TEST_F(SingleCache, ReadMissInstallsExclusiveClean)
{
    memory_.write(17, 99);
    const auto result = op(MemOp::R, 17);
    EXPECT_EQ(result.data, 99u);
    EXPECT_EQ(cache_->stateOf(17), CacheState::EC);
    EXPECT_EQ(cache_->stats().misses, 1u);
    EXPECT_EQ(result.doneAt, 13u);
}

TEST_F(SingleCache, ReadHitCostsOneCycle)
{
    op(MemOp::R, 20);
    const auto hit = op(MemOp::R, 22, 0, 100);
    EXPECT_EQ(hit.doneAt, 101u);
    EXPECT_EQ(cache_->stats().misses, 1u);
    EXPECT_EQ(cache_->stats().accesses, 2u);
}

TEST_F(SingleCache, WriteHitOnExclusiveCleanSilentlyUpgrades)
{
    op(MemOp::R, 8);
    EXPECT_EQ(cache_->stateOf(8), CacheState::EC);
    op(MemOp::W, 8, 5);
    EXPECT_EQ(cache_->stateOf(8), CacheState::EM);
    EXPECT_EQ(bus_.stats().cmdCounts[static_cast<int>(BusCmd::I)], 0u);
    EXPECT_EQ(op(MemOp::R, 8).data, 5u);
}

TEST_F(SingleCache, WriteMissFetchesWithInvalidate)
{
    op(MemOp::W, 40, 7);
    EXPECT_EQ(cache_->stateOf(40), CacheState::EM);
    EXPECT_EQ(bus_.stats().cmdCounts[static_cast<int>(BusCmd::FI)], 1u);
    EXPECT_EQ(memory_.read(40), 0u); // copy-back only on eviction
}

TEST_F(SingleCache, DirtyVictimWritesBack)
{
    // Three blocks mapping to set 0 in a 2-way cache: 0, 64, 128
    // (block number % 4 == 0).
    op(MemOp::W, 0, 11);
    op(MemOp::R, 64);
    op(MemOp::R, 128); // evicts block 0 (LRU), which is dirty
    EXPECT_EQ(memory_.read(0), 11u);
    EXPECT_EQ(cache_->stats().swapOuts, 1u);
    EXPECT_EQ(cache_->stateOf(0), CacheState::INV);
}

TEST_F(SingleCache, CleanVictimDropsSilently)
{
    op(MemOp::R, 0);
    op(MemOp::R, 64);
    const std::uint64_t writes_before = bus_.stats().memoryWrites;
    op(MemOp::R, 128);
    EXPECT_EQ(bus_.stats().memoryWrites, writes_before);
    EXPECT_EQ(cache_->stats().evictions, 1u);
    EXPECT_EQ(cache_->stats().swapOuts, 0u);
}

TEST_F(SingleCache, LruPrefersRecentlyTouched)
{
    op(MemOp::R, 0);
    op(MemOp::R, 64);
    op(MemOp::R, 0);   // touch block 0 again
    op(MemOp::R, 128); // must evict block 64
    EXPECT_TRUE(cache_->present(0));
    EXPECT_FALSE(cache_->present(64));
    EXPECT_TRUE(cache_->present(128));
}

TEST_F(SingleCache, DataSurvivesEvictionRoundTrip)
{
    op(MemOp::W, 1, 0xaa);
    op(MemOp::W, 2, 0xbb);
    op(MemOp::R, 64);
    op(MemOp::R, 128); // evict block 0
    EXPECT_FALSE(cache_->present(1));
    EXPECT_EQ(op(MemOp::R, 1).data, 0xaau); // refetched from memory
    EXPECT_EQ(op(MemOp::R, 2).data, 0xbbu);
}

TEST_F(SingleCache, SeparateSetsDoNotConflict)
{
    op(MemOp::W, 0, 1);   // set 0
    op(MemOp::W, 4, 2);   // set 1
    op(MemOp::W, 8, 3);   // set 2
    op(MemOp::W, 12, 4);  // set 3
    EXPECT_TRUE(cache_->present(0));
    EXPECT_TRUE(cache_->present(4));
    EXPECT_TRUE(cache_->present(8));
    EXPECT_TRUE(cache_->present(12));
    EXPECT_EQ(cache_->stats().evictions, 0u);
}

TEST_F(SingleCache, FlushAllWritesDirtyAndInvalidates)
{
    op(MemOp::W, 0, 77);
    op(MemOp::R, 4);
    const Cycles bus_before = bus_.stats().totalCycles;
    cache_->flushAll();
    EXPECT_EQ(memory_.read(0), 77u);
    EXPECT_FALSE(cache_->present(0));
    EXPECT_FALSE(cache_->present(4));
    EXPECT_EQ(bus_.stats().totalCycles, bus_before); // free of bus cycles
}

TEST_F(SingleCache, LoadValueFallsBackToMemory)
{
    memory_.write(300, 123);
    EXPECT_EQ(cache_->loadValue(300), 123u);
    op(MemOp::W, 300, 124);
    EXPECT_EQ(cache_->loadValue(300), 124u);
    EXPECT_EQ(memory_.read(300), 123u); // not yet copied back
}

TEST_F(SingleCache, MissRatioComputation)
{
    op(MemOp::R, 0);
    op(MemOp::R, 1);
    op(MemOp::R, 2);
    op(MemOp::R, 3);
    EXPECT_DOUBLE_EQ(cache_->stats().missRatio(), 0.25);
}

TEST(CacheGeometry, CapacityAndBits)
{
    const CacheGeometry base; // 4 words x 4 ways x 256 sets
    EXPECT_EQ(base.capacityWords(), 4096u);
    // The paper: a four-Kword cache is about 190000 bits.
    EXPECT_NEAR(static_cast<double>(base.storageBits()), 190000.0, 5000.0);
}

TEST(CacheGeometry, ForCapacity)
{
    const CacheGeometry geom = CacheGeometry::forCapacity(8192, 4, 4);
    EXPECT_EQ(geom.sets, 512u);
    EXPECT_EQ(geom.capacityWords(), 8192u);
}

TEST(CacheGeometryDeath, RejectsNonPowerOfTwo)
{
    CacheGeometry geom;
    geom.sets = 3;
    EXPECT_DEATH(geom.validate(), "power of two");
}

} // namespace
} // namespace pim
