/**
 * @file
 * KL1 front-end tests: lexer, parser, term representation, and the
 * clause compiler's instruction selection.
 */

#include <gtest/gtest.h>

#include "common/sim_fault.h"
#include "kl1/compiler.h"
#include "kl1/lexer.h"
#include "kl1/parser.h"
#include "kl1/term.h"

namespace pim::kl1 {
namespace {

// ------------------------------------------------------------- lexer --

TEST(Lexer, BasicTokens)
{
    const auto toks = tokenize("foo(X, 42) :- X > 0 | bar.");
    ASSERT_GE(toks.size(), 13u);
    EXPECT_TRUE(toks[0].is(TokKind::Atom, "foo"));
    EXPECT_TRUE(toks[1].is(TokKind::Punct, "("));
    EXPECT_TRUE(toks[2].is(TokKind::Var, "X"));
    EXPECT_TRUE(toks[4].is(TokKind::Int));
    EXPECT_EQ(toks[4].value, 42);
    EXPECT_TRUE(toks[6].is(TokKind::Punct, ":-"));
    EXPECT_TRUE(toks.back().is(TokKind::End));
}

TEST(Lexer, MultiCharOperators)
{
    const auto toks = tokenize("=:= =\\= =< >= == := \\= // :-");
    EXPECT_TRUE(toks[0].is(TokKind::Punct, "=:="));
    EXPECT_TRUE(toks[1].is(TokKind::Punct, "=\\="));
    EXPECT_TRUE(toks[2].is(TokKind::Punct, "=<"));
    EXPECT_TRUE(toks[3].is(TokKind::Punct, ">="));
    EXPECT_TRUE(toks[4].is(TokKind::Punct, "=="));
    EXPECT_TRUE(toks[5].is(TokKind::Punct, ":="));
    EXPECT_TRUE(toks[6].is(TokKind::Punct, "\\="));
    EXPECT_TRUE(toks[7].is(TokKind::Punct, "//"));
    EXPECT_TRUE(toks[8].is(TokKind::Punct, ":-"));
}

TEST(Lexer, CommentsAndLines)
{
    const auto toks = tokenize("a. % comment\n/* block\ncomment */ b.");
    ASSERT_EQ(toks.size(), 5u); // a . b . End
    EXPECT_TRUE(toks[2].is(TokKind::Atom, "b"));
    EXPECT_EQ(toks[2].line, 3);
}

TEST(Lexer, QuotedAtomsAndUnderscoreVars)
{
    const auto toks = tokenize("'Hello World' _Foo _");
    EXPECT_TRUE(toks[0].is(TokKind::Atom, "Hello World"));
    EXPECT_TRUE(toks[1].is(TokKind::Var, "_Foo"));
    EXPECT_TRUE(toks[2].is(TokKind::Var, "_"));
}

TEST(Lexer, IllegalCharacterThrowsWithPosition)
{
    try {
        tokenize("foo @ bar", "bad.fghc");
        FAIL() << "expected SimFault";
    } catch (const SimFault& fault) {
        EXPECT_EQ(fault.kind(), SimFaultKind::Parse);
        EXPECT_NE(std::string(fault.what()).find("bad.fghc:1:5"),
                  std::string::npos)
            << fault.what();
        EXPECT_NE(std::string(fault.what()).find("illegal character"),
                  std::string::npos)
            << fault.what();
    }
}

// ------------------------------------------------------------ parser --

TEST(Parser, FactAndRule)
{
    const Program prog = parseProgram(
        "p(1).\n"
        "p(X) :- X > 1 | q(X).\n"
        "q(_).\n");
    ASSERT_EQ(prog.procedures.size(), 2u);
    const Procedure* p = prog.find("p", 1);
    ASSERT_NE(p, nullptr);
    ASSERT_EQ(p->clauses.size(), 2u);
    EXPECT_TRUE(p->clauses[0].guards.empty());
    EXPECT_TRUE(p->clauses[0].body.empty());
    ASSERT_EQ(p->clauses[1].guards.size(), 1u);
    EXPECT_EQ(p->clauses[1].guards[0].name, ">");
    ASSERT_EQ(p->clauses[1].body.size(), 1u);
}

TEST(Parser, CommitWithoutGuardIsEmptyGuard)
{
    const Program prog = parseProgram("p(X) :- q(X), r(X).\nq(_).\nr(_).\n");
    const Procedure* p = prog.find("p", 1);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(p->clauses[0].guards.empty());
    EXPECT_EQ(p->clauses[0].body.size(), 2u);
}

TEST(Parser, ListSyntax)
{
    const PTerm t = parseGoalTerm("p([1,2|T]).");
    ASSERT_EQ(t.args.size(), 1u);
    const PTerm& list = t.args[0];
    EXPECT_EQ(list.kind, PTerm::Kind::List);
    EXPECT_EQ(list.args[0].value, 1);
    EXPECT_EQ(list.args[1].args[0].value, 2);
    EXPECT_EQ(list.args[1].args[1].name, "T");
    EXPECT_EQ(t.toString(), "p([1|[2|T]])");
}

TEST(Parser, EmptyListAndNested)
{
    const PTerm t = parseGoalTerm("p([], [[a]], f(g(1), X)).");
    EXPECT_EQ(t.args[0].name, "[]");
    EXPECT_EQ(t.args[1].kind, PTerm::Kind::List);
    EXPECT_EQ(t.args[2].kind, PTerm::Kind::Struct);
    EXPECT_EQ(t.args[2].args[0].name, "g");
}

TEST(Parser, ArithmeticPrecedence)
{
    const PTerm t = parseGoalTerm("p(X := 1 + 2 * 3 - 4).");
    const PTerm& assign = t.args[0];
    EXPECT_EQ(assign.name, ":=");
    // 1 + 2*3 - 4 parses as (1 + (2*3)) - 4.
    const PTerm& expr = assign.args[1];
    EXPECT_EQ(expr.name, "-");
    EXPECT_EQ(expr.args[0].name, "+");
    EXPECT_EQ(expr.args[0].args[1].name, "*");
}

TEST(Parser, NegativeIntegers)
{
    const PTerm t = parseGoalTerm("p(-5, X > -1).");
    EXPECT_EQ(t.args[0].value, -5);
    EXPECT_EQ(t.args[1].args[1].value, -1);
}

TEST(Parser, ModOperator)
{
    const PTerm t = parseGoalTerm("p(X mod 3 =:= 0).");
    EXPECT_EQ(t.args[0].name, "=:=");
    EXPECT_EQ(t.args[0].args[0].name, "mod");
}

TEST(Parser, SyntaxErrorThrowsWithPosition)
{
    try {
        parseProgram("p(X :- q.\n", "prog.fghc");
        FAIL() << "expected SimFault";
    } catch (const SimFault& fault) {
        EXPECT_EQ(fault.kind(), SimFaultKind::Parse);
        const std::string what = fault.what();
        EXPECT_NE(what.find("prog.fghc:1:"), std::string::npos) << what;
        EXPECT_NE(what.find("syntax error"), std::string::npos) << what;
    }
}

// ------------------------------------------------------------- terms --

TEST(Term, TagRoundTrips)
{
    EXPECT_EQ(tagOf(makeInt(-17)), Tag::Int);
    EXPECT_EQ(intOf(makeInt(-17)), -17);
    EXPECT_EQ(intOf(makeInt(1ll << 40)), 1ll << 40);
    EXPECT_EQ(tagOf(makeAtom(7)), Tag::Atom);
    EXPECT_EQ(atomOf(makeAtom(7)), 7u);
    EXPECT_EQ(tagOf(makeRef(123)), Tag::Ref);
    EXPECT_EQ(ptrOf(makeRef(123)), 123u);
    EXPECT_EQ(tagOf(makeList(88)), Tag::List);
    EXPECT_EQ(tagOf(makeStr(99)), Tag::Str);
    EXPECT_TRUE(isUnboundAt(makeRef(5), 5));
    EXPECT_FALSE(isUnboundAt(makeRef(5), 6));
}

TEST(Term, FunctorPacking)
{
    const FunctorId f = SymbolTable::functor(42, 3);
    EXPECT_EQ(SymbolTable::functorName(f), 42u);
    EXPECT_EQ(SymbolTable::functorArity(f), 3u);
    EXPECT_EQ(funOf(makeFun(f)), f);
}

TEST(SymbolTableTest, InternIsStable)
{
    SymbolTable syms;
    EXPECT_EQ(syms.intern("[]"), SymbolTable::kNil);
    const AtomId a = syms.intern("foo");
    EXPECT_EQ(syms.intern("foo"), a);
    EXPECT_NE(syms.intern("bar"), a);
    EXPECT_EQ(syms.name(a), "foo");
}

// ---------------------------------------------------------- compiler --

Module
compile(const std::string& source)
{
    return compileProgram(parseProgram(source));
}

/** Count instructions with opcode @p op in @p module. */
int
countOps(const Module& module, Op op)
{
    int count = 0;
    for (const Instr& ins : module.code)
        count += ins.op == op;
    return count;
}

TEST(Compiler, FactCompilesToProceed)
{
    const Module m = compile("p(_).\n");
    // TryClause, Commit, Proceed, SuspendOrFail.
    ASSERT_EQ(m.code.size(), 4u);
    EXPECT_EQ(m.code[0].op, Op::TryClause);
    EXPECT_EQ(m.code[1].op, Op::Commit);
    EXPECT_EQ(m.code[2].op, Op::Proceed);
    EXPECT_EQ(m.code[3].op, Op::SuspendOrFail);
}

TEST(Compiler, TryClauseChainsToNextAlternative)
{
    const Module m = compile("p(1).\np(2).\n");
    EXPECT_EQ(m.code[0].op, Op::TryClause);
    // First clause's failure target is the second TryClause.
    const int target = m.code[0].a;
    EXPECT_EQ(m.code[target].op, Op::TryClause);
    // Second clause's failure target is the epilogue.
    EXPECT_EQ(m.code[m.code[target].a].op, Op::SuspendOrFail);
}

TEST(Compiler, HeadPatternsSelectWaitInstructions)
{
    const Module m = compile("p([], 0, a, f(X), [H|T]) :- true | q(H,T,X).\n"
                             "q(_,_,_).\n");
    EXPECT_EQ(countOps(m, Op::WaitAtom), 2); // [] and a
    EXPECT_EQ(countOps(m, Op::WaitInt), 1);
    EXPECT_EQ(countOps(m, Op::WaitStruct), 1);
    EXPECT_EQ(countOps(m, Op::WaitList), 1);
}

TEST(Compiler, RepeatedHeadVarUsesWaitSame)
{
    const Module m = compile("p(X, X).\n");
    EXPECT_EQ(countOps(m, Op::WaitSame), 1);
}

TEST(Compiler, LastGoalIsTailCall)
{
    const Module m = compile("p(X) :- true | q(X), r(X).\n"
                             "q(_).\nr(_).\n");
    EXPECT_EQ(countOps(m, Op::Spawn), 1);   // q
    EXPECT_EQ(countOps(m, Op::Execute), 1); // r (tail)
    // Execute ends the clause: no Proceed in p's block.
    EXPECT_EQ(countOps(m, Op::Proceed), 2); // facts q and r only
}

TEST(Compiler, BuiltinsAfterLastUserGoalKeepProceed)
{
    const Module m = compile("p(X) :- true | q(X), X = 1.\nq(_).\n");
    EXPECT_EQ(countOps(m, Op::Spawn), 1);   // q is not last: spawned
    EXPECT_EQ(countOps(m, Op::Execute), 0);
    EXPECT_EQ(countOps(m, Op::Unify), 1);
}

TEST(Compiler, GuardArithmeticUsesSuspendingOps)
{
    const Module m = compile("p(X) :- X mod 3 =:= 0 | true.\n"
                             "p(X) :- X mod 3 =\\= 0 | true.\n");
    EXPECT_EQ(countOps(m, Op::GArithInt), 2);
    EXPECT_EQ(countOps(m, Op::GuardCmpInt), 2);
}

TEST(Compiler, ConstantGuardFolds)
{
    const Module m = compile("p :- 1 < 2 | true.\nq :- 2 < 1 | true.\n");
    EXPECT_EQ(countOps(m, Op::GuardFail), 1);
    EXPECT_EQ(countOps(m, Op::GuardCmpInt), 0);
}

TEST(Compiler, AssignTargetStaysInRegister)
{
    const Module m = compile("p(X, Y) :- true | Y1 := X + 1, q(Y1, Y).\n"
                             "q(_,_).\n");
    // Y1 is register-valued: no PutVar for it (Y needs none either: it is
    // a head variable).
    EXPECT_EQ(countOps(m, Op::PutVar), 0);
    EXPECT_EQ(countOps(m, Op::ArithInt), 1);
}

TEST(Compiler, SharedBodyVarGetsOneCell)
{
    const Module m = compile("p :- true | q(X), r(X).\nq(_).\nr(_).\n");
    EXPECT_EQ(countOps(m, Op::PutVar), 1);
}

TEST(Compiler, WordOffsetsAccountForImmediates)
{
    const Module m = compile("p(0).\n");
    // TryClause(1 word), WaitInt(2 words), Commit(1), Proceed(1), SoF(1).
    EXPECT_EQ(m.wordOffset(0), 0u);
    EXPECT_EQ(m.wordOffset(1), 1u);
    EXPECT_EQ(m.wordOffset(2), 3u);
    EXPECT_EQ(m.totalWords(), 6u);
}

TEST(CompilerDeath, UndefinedProcedure)
{
    EXPECT_EXIT(compile("p :- true | nosuch(1).\n"),
                ::testing::ExitedWithCode(1), "undefined procedure");
}

TEST(CompilerDeath, GuardMustBeBuiltin)
{
    EXPECT_EXIT(compile("p(X) :- myguard(X) | true.\n"),
                ::testing::ExitedWithCode(1), "not a guard builtin");
}

TEST(CompilerDeath, BodyComparisonRejected)
{
    EXPECT_EXIT(compile("p(X) :- true | X > 1.\n"),
                ::testing::ExitedWithCode(1), "guard builtin used in a body");
}

TEST(Compiler, Disassembly)
{
    const Module m = compile("p(0).\n");
    const std::string text = m.disassembleAll();
    EXPECT_NE(text.find("p/1:"), std::string::npos);
    EXPECT_NE(text.find("wait_int"), std::string::npos);
    EXPECT_NE(text.find("commit"), std::string::npos);
}

} // namespace
} // namespace pim::kl1
