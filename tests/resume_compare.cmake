# End-to-end checkpoint/resume acceptance (ctest `soak` label,
# docs/ROBUSTNESS.md): an interrupted-then-resumed pim_sweep run must
# produce a SWEEP.json byte-identical to an uninterrupted run of the
# same spec.
#
# Usage:
#   cmake -DSWEEP=<pim_sweep path> -DWORK=<scratch dir>
#         -P resume_compare.cmake
#
# Flow:
#   1. uninterrupted: --spec=smoke --out=WORK/full
#   2. interrupted:   --spec=smoke --out=WORK/sliced --max-tasks=2
#      (leaves SWEEP.ckpt.json, must NOT leave a SWEEP.json)
#   3. resumed:       --spec=smoke --out=WORK/sliced --resume
#      (restores the checkpoint, finishes the grid, removes the ckpt)
#   4. byte-compare the two SWEEP.json documents.

foreach(var SWEEP WORK)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "resume_compare.cmake: ${var} is required")
    endif()
endforeach()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

execute_process(COMMAND ${SWEEP} --spec=smoke --jobs=2 --out=${WORK}/full
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "resume: uninterrupted run exited with ${rc}")
endif()

execute_process(COMMAND ${SWEEP} --spec=smoke --jobs=2
                        --out=${WORK}/sliced --max-tasks=2
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "resume: interrupted run exited with ${rc}")
endif()
if(EXISTS ${WORK}/sliced/SWEEP.json)
    message(FATAL_ERROR
            "resume: interrupted run published a partial SWEEP.json")
endif()
if(NOT EXISTS ${WORK}/sliced/SWEEP.ckpt.json)
    message(FATAL_ERROR "resume: interrupted run left no checkpoint")
endif()

execute_process(COMMAND ${SWEEP} --spec=smoke --jobs=2
                        --out=${WORK}/sliced --resume
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "resume: resumed run exited with ${rc}")
endif()
if(EXISTS ${WORK}/sliced/SWEEP.ckpt.json)
    message(FATAL_ERROR
            "resume: checkpoint not cleaned up after publication")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORK}/full/SWEEP.json ${WORK}/sliced/SWEEP.json
                RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
    find_program(DIFF_TOOL diff)
    if(DIFF_TOOL)
        execute_process(COMMAND ${DIFF_TOOL} -u ${WORK}/full/SWEEP.json
                                ${WORK}/sliced/SWEEP.json
                        OUTPUT_VARIABLE diff_text)
        message(STATUS "diff (uninterrupted vs resumed):\n${diff_text}")
    endif()
    message(FATAL_ERROR
            "resume: interrupted-then-resumed SWEEP.json is NOT "
            "byte-identical to the uninterrupted run")
endif()
message(STATUS "resume: SWEEP.json byte-identical across interrupt/resume")
