/**
 * @file
 * Sweep engine tests (ctest label `sweep`): grid expansion order, spec
 * parsing, cross---jobs byte-identity of the SWEEP document, and
 * SimFault-throwing tasks landing as failed rows without tearing the
 * pool down.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/sim_fault.h"
#include "sweep/sweep_runner.h"
#include "sweep/sweep_spec.h"

using namespace pim;
using namespace pim::sweep;

namespace {

TEST(SweepSpecTest, ExpandIsCartesianLastAxisFastest)
{
    SweepExperiment exp;
    exp.id = "grid";
    exp.base.set("pes", ParamValue::ofNumber(8));
    exp.axes.push_back({"block", {ParamValue::ofNumber(2),
                                  ParamValue::ofNumber(4)}});
    exp.axes.push_back({"bench", {ParamValue::ofText("Tri"),
                                  ParamValue::ofText("Pascal"),
                                  ParamValue::ofText("Primes")}});

    EXPECT_EQ(exp.pointCount(), 6u);
    auto points = exp.expand();
    ASSERT_EQ(points.size(), 6u);
    // Document order: first axis slowest, last axis fastest.
    EXPECT_EQ(points[0].toString(), "pes=8 block=2 bench=Tri");
    EXPECT_EQ(points[1].toString(), "pes=8 block=2 bench=Pascal");
    EXPECT_EQ(points[2].toString(), "pes=8 block=2 bench=Primes");
    EXPECT_EQ(points[3].toString(), "pes=8 block=4 bench=Tri");
    EXPECT_EQ(points[5].toString(), "pes=8 block=4 bench=Primes");
}

TEST(SweepSpecTest, ExpandWithNoAxesIsTheBasePoint)
{
    SweepExperiment exp;
    exp.base.set("steps", ParamValue::ofNumber(100));
    auto points = exp.expand();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].toString(), "steps=100");
}

TEST(SweepSpecTest, StressSeedsAreAnImplicitSlowestAxis)
{
    SweepExperiment exp;
    exp.kind = TaskKind::Stress;
    exp.seeds = 3;
    exp.axes.push_back({"pes", {ParamValue::ofNumber(2),
                                ParamValue::ofNumber(4)}});
    EXPECT_EQ(exp.pointCount(), 6u);
    auto points = exp.expand();
    ASSERT_EQ(points.size(), 6u);
    // The implicit seed axis is the slowest of all.
    EXPECT_EQ(points[0].toString(), "seed_slot=0 pes=2");
    EXPECT_EQ(points[1].toString(), "seed_slot=0 pes=4");
    EXPECT_EQ(points[2].toString(), "seed_slot=1 pes=2");
    EXPECT_EQ(points[5].toString(), "seed_slot=2 pes=4");
}

TEST(SweepSpecTest, DerivedSeedsFitIn32BitsAndDiffer)
{
    // 32-bit fit is what lets a seed round-trip exactly through the
    // JSON double representation and `pim_stress --seed=` replay.
    std::uint64_t a = deriveSeed(1, 0);
    std::uint64_t b = deriveSeed(1, 1);
    std::uint64_t c = deriveSeed(2, 0);
    EXPECT_LE(a, 0xffffffffULL);
    EXPECT_LE(b, 0xffffffffULL);
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(a, deriveSeed(1, 0)) << "must be a pure function";
}

TEST(SweepSpecTest, ParsesAJsonSpec)
{
    const std::string text = R"({
        "name": "mini",
        "seed": 42,
        "experiments": [
            {
                "id": "cap",
                "kind": "kl1",
                "base": {"benchmark": "Tri", "scale": 1},
                "axes": {"capacityWords": [512, 1024]},
                "paper": {"miss_pct": 12.5}
            },
            {
                "id": "st",
                "kind": "stress",
                "seeds": 4,
                "base": {"steps": 1000}
            }
        ]
    })";
    SweepSpec spec = SweepSpec::parse(JsonValue::parse(text));
    EXPECT_EQ(spec.name, "mini");
    EXPECT_EQ(spec.seed, 42u);
    ASSERT_EQ(spec.experiments.size(), 2u);
    EXPECT_EQ(spec.experiments[0].id, "cap");
    EXPECT_EQ(spec.experiments[0].kind, TaskKind::Kl1);
    EXPECT_EQ(spec.experiments[0].pointCount(), 2u);
    ASSERT_EQ(spec.experiments[0].paper.size(), 1u);
    EXPECT_EQ(spec.experiments[0].paper[0].first, "miss_pct");
    EXPECT_EQ(spec.experiments[1].kind, TaskKind::Stress);
    EXPECT_EQ(spec.experiments[1].seeds, 4u);
    EXPECT_EQ(spec.totalTasks(), 6u);
}

TEST(SweepSpecTest, RejectsBadSpecs)
{
    auto parse = [](const std::string& text) {
        return SweepSpec::parse(JsonValue::parse(text));
    };
    // Unknown kind.
    EXPECT_THROW(parse(R"({"experiments":[{"id":"x","kind":"bogus"}]})"),
                 SimFault);
    // Duplicate experiment ids.
    EXPECT_THROW(parse(R"({"experiments":[
        {"id":"x","kind":"kl1","base":{"benchmark":"Tri"}},
        {"id":"x","kind":"kl1","base":{"benchmark":"Tri"}}]})"),
                 SimFault);
    // seeds only makes sense for stress experiments.
    EXPECT_THROW(parse(R"({"experiments":[
        {"id":"x","kind":"kl1","seeds":2,
         "base":{"benchmark":"Tri"}}]})"),
                 SimFault);
    // An axis must be a non-empty array.
    EXPECT_THROW(parse(R"({"experiments":[
        {"id":"x","kind":"kl1","base":{"benchmark":"Tri"},
         "axes":{"pes":[]}}]})"),
                 SimFault);
}

TEST(SweepSpecTest, BuiltInGridsExpand)
{
    SweepSpec paper = SweepSpec::paperGrid();
    EXPECT_GE(paper.experiments.size(), 8u);
    EXPECT_GT(paper.totalTasks(), 50u);
    SweepSpec smoke = SweepSpec::smokeGrid();
    EXPECT_EQ(smoke.totalTasks(), 4u);
}

/** A small deterministic spec used by the runner tests below. */
SweepSpec
miniSpec()
{
    SweepSpec spec;
    spec.name = "mini";
    spec.seed = 7;

    SweepExperiment kl1;
    kl1.id = "kl1_pair";
    kl1.kind = TaskKind::Kl1;
    kl1.base.set("scale", ParamValue::ofNumber(1));
    kl1.base.set("pes", ParamValue::ofNumber(2));
    kl1.axes.push_back({"benchmark", {ParamValue::ofText("Tri"),
                                      ParamValue::ofText("Pascal")}});
    kl1.paper.push_back({"miss_pct", 10.0});
    spec.experiments.push_back(kl1);

    SweepExperiment st;
    st.id = "stress_pair";
    st.kind = TaskKind::Stress;
    st.seeds = 2;
    st.base.set("steps", ParamValue::ofNumber(2000));
    st.base.set("pes", ParamValue::ofNumber(4));
    spec.experiments.push_back(st);
    return spec;
}

TEST(SweepRunnerTest, SweepDocumentIsByteIdenticalAcrossJobs)
{
    SweepSpec spec = miniSpec();
    SweepOptions serial;
    serial.jobs = 1;
    SweepOptions wide;
    wide.jobs = 8;

    SweepOutcome a = runSweep(spec, serial);
    SweepOutcome b = runSweep(spec, wide);

    EXPECT_EQ(a.rows.size(), 4u);
    EXPECT_EQ(a.failedRows, 0u);
    EXPECT_EQ(b.failedRows, 0u);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.sweepJson, b.sweepJson) << "--jobs must not leak into "
                                           "the deterministic document";
    EXPECT_EQ(b.jobs, 8u);
}

TEST(SweepRunnerTest, SweepDocumentIsWellFormedJson)
{
    SweepOptions options;
    options.jobs = 2;
    SweepOutcome outcome = runSweep(miniSpec(), options);
    JsonValue doc = JsonValue::parse(outcome.sweepJson);
    EXPECT_EQ(doc.at("name").asString(), "mini");
    EXPECT_EQ(doc.at("tasks").asNumber(), 4);
    EXPECT_EQ(doc.at("failed_rows").asNumber(), 0);
    ASSERT_EQ(doc.at("experiments").size(), 2u);

    const JsonValue& kl1 = doc.at("experiments").at(std::size_t{0});
    EXPECT_EQ(kl1.at("id").asString(), "kl1_pair");
    ASSERT_EQ(kl1.at("rows").size(), 2u);
    const JsonValue& row = kl1.at("rows").at(std::size_t{0});
    EXPECT_EQ(row.at("benchmark").asString(), "Tri");
    EXPECT_TRUE(row.has("miss_pct"));
    EXPECT_FALSE(row.at("failed").asBool());
    // Paper reference produces an aggregate with a delta.
    ASSERT_TRUE(kl1.at("aggregate").has("miss_pct"));
    EXPECT_TRUE(kl1.at("aggregate").at("miss_pct").has("paper"));
    EXPECT_TRUE(kl1.at("aggregate").at("miss_pct").has("delta_pct"));

    // Stress rows carry exact integral replay seeds.
    const JsonValue& st = doc.at("experiments").at(std::size_t{1});
    ASSERT_EQ(st.at("rows").size(), 2u);
    double seed = st.at("rows").at(std::size_t{0}).at("seed").asNumber();
    EXPECT_EQ(seed, static_cast<double>(static_cast<std::uint32_t>(seed)))
        << "seeds must survive the JSON double round-trip";

    // No wall-clock contamination anywhere in the deterministic doc.
    EXPECT_EQ(outcome.sweepJson.find("seconds"), std::string::npos);
    EXPECT_FALSE(doc.has("perf"));
}

TEST(SweepRunnerTest, FaultingTaskBecomesFailedRowWithoutPoolTeardown)
{
    SweepSpec spec;
    spec.name = "faulty";
    SweepExperiment exp;
    exp.id = "mixed";
    exp.kind = TaskKind::Kl1;
    exp.base.set("benchmark", ParamValue::ofText("Tri"));
    exp.base.set("scale", ParamValue::ofNumber(1));
    exp.base.set("pes", ParamValue::ofNumber(2));
    // "Bogus" is not an OptPolicy: that task throws SimFault(Config).
    exp.axes.push_back({"policy", {ParamValue::ofText("None"),
                                   ParamValue::ofText("Bogus"),
                                   ParamValue::ofText("All")}});
    spec.experiments.push_back(exp);

    SweepOptions options;
    options.jobs = 4;
    SweepOutcome outcome = runSweep(spec, options);

    ASSERT_EQ(outcome.rows.size(), 3u);
    EXPECT_EQ(outcome.failedRows, 1u);
    EXPECT_FALSE(outcome.rows[0].failed);
    EXPECT_TRUE(outcome.rows[1].failed);
    EXPECT_EQ(outcome.rows[1].faultKind, "config");
    EXPECT_FALSE(outcome.rows[1].message.empty());
    // The pool survived: the task after the fault still produced metrics.
    EXPECT_FALSE(outcome.rows[2].failed);
    EXPECT_FALSE(outcome.rows[2].metrics.empty());

    JsonValue doc = JsonValue::parse(outcome.sweepJson);
    const JsonValue& row =
        doc.at("experiments").at(std::size_t{0}).at("rows")
           .at(std::size_t{1});
    EXPECT_TRUE(row.at("failed").asBool());
    EXPECT_EQ(row.at("fault_kind").asString(), "config");
}

TEST(SweepRunnerTest, ScaleOverrideAppliesToKl1Tasks)
{
    SweepSpec spec = miniSpec();
    SweepOptions one;
    one.jobs = 1;
    SweepOptions big = one;
    big.scale = 2;
    SweepOutcome a = runSweep(spec, one);
    SweepOutcome b = runSweep(spec, big);
    // A larger scale changes the KL1 rows (more reductions), so the
    // fingerprints must differ.
    EXPECT_NE(a.fingerprint, b.fingerprint);
    EXPECT_EQ(b.rows[0].params.number("scale", 0), 2);
}

} // namespace
