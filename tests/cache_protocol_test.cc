/**
 * @file
 * Multi-PE protocol tests: the five-state transitions, cache-to-cache
 * transfer without copy-back (the SM state), invalidation, and the
 * Illinois-style copy-back baseline.
 */

#include <gtest/gtest.h>

#include "sim/system.h"

namespace pim {
namespace {

SystemConfig
smallSystem(std::uint32_t pes = 4)
{
    SystemConfig config;
    config.numPes = pes;
    config.cache.geometry = {4, 2, 8};
    config.memoryWords = 1 << 20;
    return config;
}

class Protocol : public ::testing::Test
{
  protected:
    Protocol() : sys_(smallSystem()) {}

    Word
    op(PeId pe, MemOp memop, Addr addr, Word wdata = 0,
       Area area = Area::Heap)
    {
        const System::Access result =
            sys_.access(pe, memop, addr, area, wdata);
        EXPECT_FALSE(result.lockWait);
        return result.data;
    }

    System sys_;
};

TEST_F(Protocol, ReadMissFromMemoryIsExclusiveClean)
{
    op(0, MemOp::R, 100);
    EXPECT_EQ(sys_.cache(0).stateOf(100), CacheState::EC);
}

TEST_F(Protocol, CleanSupplierSharesBothWays)
{
    op(0, MemOp::R, 100);
    op(1, MemOp::R, 100);
    EXPECT_EQ(sys_.cache(0).stateOf(100), CacheState::S);
    EXPECT_EQ(sys_.cache(1).stateOf(100), CacheState::S);
}

TEST_F(Protocol, DirtySupplierYieldsSharedModified)
{
    op(0, MemOp::W, 100, 42);
    EXPECT_EQ(sys_.cache(0).stateOf(100), CacheState::EM);
    const Word value = op(1, MemOp::R, 100);
    EXPECT_EQ(value, 42u);
    // Ownership (the swap-out obligation) migrates to the receiver; the
    // supplier keeps a clean shared copy; memory is NOT updated.
    EXPECT_EQ(sys_.cache(1).stateOf(100), CacheState::SM);
    EXPECT_EQ(sys_.cache(0).stateOf(100), CacheState::S);
    EXPECT_EQ(sys_.memory().read(100), 0u);
    EXPECT_EQ(sys_.bus().stats().memoryWrites, 0u);
}

TEST_F(Protocol, WriteToSharedBlockInvalidatesOthers)
{
    op(0, MemOp::R, 100);
    op(1, MemOp::R, 100);
    op(0, MemOp::W, 100, 9);
    EXPECT_EQ(sys_.cache(0).stateOf(100), CacheState::EM);
    EXPECT_EQ(sys_.cache(1).stateOf(100), CacheState::INV);
    EXPECT_EQ(sys_.bus().stats().cmdCounts[static_cast<int>(BusCmd::I)],
              1u);
    EXPECT_EQ(op(1, MemOp::R, 100), 9u);
}

TEST_F(Protocol, WriteMissWithRemoteDirtyTransfersOwnership)
{
    op(0, MemOp::W, 100, 5);
    op(1, MemOp::W, 101, 6); // same block, write miss -> FI
    EXPECT_EQ(sys_.cache(0).stateOf(100), CacheState::INV);
    EXPECT_EQ(sys_.cache(1).stateOf(101), CacheState::EM);
    EXPECT_EQ(sys_.cache(1).loadValue(100), 5u); // transferred data kept
    EXPECT_EQ(sys_.bus().stats().memoryWrites, 0u);
}

TEST_F(Protocol, SmEvictionWritesBack)
{
    op(0, MemOp::W, 0, 77);
    op(1, MemOp::R, 0); // pe1 now SM
    EXPECT_EQ(sys_.cache(1).stateOf(0), CacheState::SM);
    // Force eviction of set 0 in pe1's 2-way cache: blocks 0, 128, 256.
    op(1, MemOp::R, 128);
    op(1, MemOp::R, 256);
    EXPECT_EQ(sys_.memory().read(0), 77u);
    EXPECT_FALSE(sys_.cache(1).present(0));
    // pe0's S copy still serves reads cache-to-cache.
    EXPECT_EQ(sys_.cache(0).stateOf(0), CacheState::S);
}

TEST_F(Protocol, SSupplierKeepsDirtyOwnershipElsewhere)
{
    // pe0 -> S (clean), pe1 -> SM (dirty owner).
    op(0, MemOp::W, 100, 3);
    op(1, MemOp::R, 100);
    ASSERT_EQ(sys_.cache(0).stateOf(100), CacheState::S);
    ASSERT_EQ(sys_.cache(1).stateOf(100), CacheState::SM);
    // pe2 read: the clean S copy in pe0 answers first, but pe1 keeps SM.
    op(2, MemOp::R, 100);
    EXPECT_EQ(sys_.cache(1).stateOf(100), CacheState::SM);
    EXPECT_EQ(sys_.memory().read(100), 0u);
}

TEST_F(Protocol, FiPreservesDirtinessFromNonSupplier)
{
    // pe0 S (clean, answers first), pe1 SM (dirty owner).
    op(0, MemOp::W, 100, 3);
    op(1, MemOp::R, 100);
    // pe2 RI miss -> FI; the dropped dirty pe1 copy must make pe2 the
    // dirty owner (EM), not EC, or the value 3 would be lost.
    op(2, MemOp::RI, 100, 0, Area::Comm);
    EXPECT_EQ(sys_.cache(2).stateOf(100), CacheState::EM);
    EXPECT_EQ(sys_.cache(0).stateOf(100), CacheState::INV);
    EXPECT_EQ(sys_.cache(1).stateOf(100), CacheState::INV);
    // Evict pe2's block; the value must reach memory.
    op(2, MemOp::R, 228);
    op(2, MemOp::R, 356);
    EXPECT_EQ(sys_.memory().read(100), 3u);
}

TEST_F(Protocol, CacheToCacheCyclesMatchPaper)
{
    op(0, MemOp::W, 100, 1);
    const Cycles before = sys_.bus().stats().totalCycles;
    op(1, MemOp::R, 100); // c2c without swap-out: 7 cycles
    EXPECT_EQ(sys_.bus().stats().totalCycles - before, 7u);
}

TEST_F(Protocol, ValuesPropagateThroughChainOfPes)
{
    op(0, MemOp::W, 200, 10);
    op(1, MemOp::W, 200, 20);
    op(2, MemOp::W, 200, 30);
    EXPECT_EQ(op(3, MemOp::R, 200), 30u);
    EXPECT_EQ(op(0, MemOp::R, 200), 30u);
}

TEST_F(Protocol, AtMostOneExclusiveHolder)
{
    op(0, MemOp::W, 100, 1);
    op(1, MemOp::R, 100);
    op(2, MemOp::R, 100);
    int exclusive = 0;
    for (PeId pe = 0; pe < 4; ++pe) {
        if (cacheStateExclusive(sys_.cache(pe).stateOf(100)))
            ++exclusive;
    }
    EXPECT_EQ(exclusive, 0); // all shared now
    op(3, MemOp::W, 100, 2);
    for (PeId pe = 0; pe < 3; ++pe)
        EXPECT_EQ(sys_.cache(pe).stateOf(100), CacheState::INV);
    EXPECT_EQ(sys_.cache(3).stateOf(100), CacheState::EM);
}

class IllinoisBaseline : public ::testing::Test
{
  protected:
    IllinoisBaseline()
    {
        SystemConfig config = smallSystem();
        config.cache.copybackOnShare = true;
        sys_ = std::make_unique<System>(config);
    }

    Word
    op(PeId pe, MemOp memop, Addr addr, Word wdata = 0)
    {
        return sys_->access(pe, memop, addr, Area::Heap, wdata).data;
    }

    std::unique_ptr<System> sys_;
};

TEST_F(IllinoisBaseline, DirtyTransferCopiesBackToMemory)
{
    op(0, MemOp::W, 100, 42);
    op(1, MemOp::R, 100);
    // Illinois: memory snarfs the transfer; both copies clean S.
    EXPECT_EQ(sys_->memory().read(100), 42u);
    EXPECT_EQ(sys_->cache(0).stateOf(100), CacheState::S);
    EXPECT_EQ(sys_->cache(1).stateOf(100), CacheState::S);
    EXPECT_GE(sys_->bus().stats().memoryWrites, 1u);
}

TEST_F(IllinoisBaseline, MemoryBusierThanPimProtocol)
{
    // The same migratory pattern on both protocols: Illinois keeps the
    // memory modules busier (the paper's argument for SM).
    System pim(smallSystem());
    for (int round = 0; round < 8; ++round) {
        for (PeId pe = 0; pe < 4; ++pe) {
            op(pe, MemOp::R, 0);
            op(pe, MemOp::W, 0, pe);
            pim.access(pe, MemOp::R, 0, Area::Heap, 0);
            pim.access(pe, MemOp::W, 0, Area::Heap, pe);
        }
    }
    EXPECT_GT(sys_->bus().stats().memoryBusyCycles,
              pim.bus().stats().memoryBusyCycles);
}

} // namespace
} // namespace pim
