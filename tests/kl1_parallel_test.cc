/**
 * @file
 * Multi-PE KL1 tests: on-demand goal stealing through the communication
 * area, cross-PE suspension/resumption through shared logical variables,
 * and functional invariance — program results must not depend on the PE
 * count, the cache geometry, or the optimization policy (only traffic
 * and timing may change).
 */

#include <gtest/gtest.h>

#include "kl1_test_util.h"

namespace pim::kl1 {
namespace {

using testutil::Outcome;
using testutil::run;
using testutil::smallConfig;

/** Fork-join tree: 2^N leaves summed through suspending sum/3 joins. */
const char* kTreeSrc =
    "tree(0, R) :- true | R = 1.\n"
    "tree(N, R) :- N > 0 | N1 := N - 1, tree(N1, A), tree(N1, B),\n"
    "              sum(A, B, R).\n"
    "sum(A, B, R) :- integer(A), integer(B) | R := A + B.\n";

const char* kPrimesSrc =
    "primes(N, Ps) :- true | gen(2, N, S), sift(S, Ps).\n"
    "gen(I, N, S) :- I > N | S = [].\n"
    "gen(I, N, S) :- I =< N | S = [I|T], I1 := I + 1, gen(I1, N, T).\n"
    "sift([], Ps) :- true | Ps = [].\n"
    "sift([P|Xs], Ps) :- true | Ps = [P|Ps1], filter(P, Xs, Ys),\n"
    "                    sift(Ys, Ps1).\n"
    "filter(_, [], Ys) :- true | Ys = [].\n"
    "filter(P, [X|Xs], Ys) :- X mod P =:= 0 | filter(P, Xs, Ys).\n"
    "filter(P, [X|Xs], Ys) :- X mod P =\\= 0 | Ys = [X|Ys1],\n"
    "                         filter(P, Xs, Ys1).\n";

TEST(Kl1Parallel, TreeSumCorrectOnEveryPeCount)
{
    for (std::uint32_t pes : {1u, 2u, 3u, 4u, 8u}) {
        const Outcome out =
            run(kTreeSrc, "tree(7, R).", smallConfig(pes));
        EXPECT_EQ(out.bindings.at("R"), "128") << pes << " PEs";
    }
}

TEST(Kl1Parallel, WorkIsActuallyStolen)
{
    const Outcome out = run(kTreeSrc, "tree(8, R).", smallConfig(4));
    EXPECT_EQ(out.bindings.at("R"), "256");
    EXPECT_GT(out.stats.steals, 0u);
}

TEST(Kl1Parallel, ParallelRunIsFaster)
{
    const Outcome seq = run(kTreeSrc, "tree(9, R).", smallConfig(1));
    const Outcome par = run(kTreeSrc, "tree(9, R).", smallConfig(8));
    EXPECT_EQ(seq.bindings.at("R"), par.bindings.at("R"));
    EXPECT_LT(par.stats.makespan, seq.stats.makespan);
    // A real speedup, not a rounding artifact.
    EXPECT_LT(par.stats.makespan, seq.stats.makespan * 3 / 4);
}

TEST(Kl1Parallel, ReductionCountIndependentOfPes)
{
    const Outcome a = run(kTreeSrc, "tree(6, R).", smallConfig(1));
    const Outcome b = run(kTreeSrc, "tree(6, R).", smallConfig(4));
    EXPECT_EQ(a.stats.reductions, b.stats.reductions);
}

TEST(Kl1Parallel, PrimesAcrossPeCounts)
{
    for (std::uint32_t pes : {1u, 4u}) {
        const Outcome out =
            run(kPrimesSrc, "primes(50, R).", smallConfig(pes));
        EXPECT_EQ(out.bindings.at("R"),
                  "[2,3,5,7,11,13,17,19,23,29,31,37,41,43,47]")
            << pes << " PEs";
    }
}

TEST(Kl1Parallel, InvarianceAcrossOptimizationPolicies)
{
    std::string expected;
    for (const OptPolicy& policy :
         {OptPolicy::all(), OptPolicy::none(), OptPolicy::heapOnly(),
          OptPolicy::goalOnly(), OptPolicy::commOnly()}) {
        Kl1Config config = smallConfig(4);
        config.policy = policy;
        const Outcome out = run(kTreeSrc, "tree(7, R).", config);
        if (expected.empty()) {
            expected = out.bindings.at("R");
        } else {
            EXPECT_EQ(out.bindings.at("R"), expected)
                << "policy " << policy.name();
        }
    }
    EXPECT_EQ(expected, "128");
}

TEST(Kl1Parallel, InvarianceAcrossCacheGeometry)
{
    for (const CacheGeometry geom :
         {CacheGeometry{4, 4, 64}, CacheGeometry{4, 1, 16},
          CacheGeometry{8, 2, 16}, CacheGeometry{2, 4, 32},
          CacheGeometry{16, 2, 4}}) {
        Kl1Config config = smallConfig(4);
        config.cache.geometry = geom;
        const Outcome out = run(kPrimesSrc, "primes(30, R).", config);
        EXPECT_EQ(out.bindings.at("R"), "[2,3,5,7,11,13,17,19,23,29]")
            << geom.blockWords << "w blocks";
    }
}

TEST(Kl1Parallel, InvarianceUnderIllinoisBaseline)
{
    Kl1Config config = smallConfig(4);
    config.cache.copybackOnShare = true;
    const Outcome out = run(kTreeSrc, "tree(7, R).", config);
    EXPECT_EQ(out.bindings.at("R"), "128");
}

TEST(Kl1Parallel, OptimizedPolicyReducesBusTraffic)
{
    Kl1Config all = smallConfig(4);
    Kl1Config none = smallConfig(4);
    none.policy = OptPolicy::none();
    const Outcome with_opt = run(kTreeSrc, "tree(9, R).", all);
    const Outcome without = run(kTreeSrc, "tree(9, R).", none);
    EXPECT_EQ(with_opt.bindings.at("R"), without.bindings.at("R"));
    EXPECT_LT(with_opt.bus.totalCycles, without.bus.totalCycles);
}

TEST(Kl1Parallel, OptimizedCommandsAppearInRefStream)
{
    Module module = compileProgram(parseProgram(kTreeSrc));
    Emulator emu(std::move(module), smallConfig(4));
    emu.run("tree(7, R).");
    const RefStats& refs = emu.system().refStats();
    EXPECT_GT(refs.count(Area::Heap, MemOp::DW), 0u);  // heap allocation
    EXPECT_GT(refs.count(Area::Goal, MemOp::DW), 0u);  // goal creation
    EXPECT_GT(refs.count(Area::Goal, MemOp::ER), 0u);  // goal consumption
    EXPECT_GT(refs.count(Area::Goal, MemOp::RP), 0u);
    EXPECT_GT(refs.count(Area::Comm, MemOp::RI), 0u);  // mailbox polling
    EXPECT_GT(refs.opTotal(MemOp::LR), 0u);            // variable binding
    EXPECT_EQ(refs.opTotal(MemOp::LR),
              refs.opTotal(MemOp::UW) + refs.opTotal(MemOp::U));
    EXPECT_GT(refs.areaTotal(Area::Instruction), 0u);
    EXPECT_GT(refs.areaTotal(Area::Susp), 0u);         // suspensions
}

TEST(Kl1Parallel, NonePolicyStreamHasNoOptimizedOps)
{
    Module module = compileProgram(parseProgram(kTreeSrc));
    Kl1Config config = smallConfig(4);
    config.policy = OptPolicy::none();
    Emulator emu(std::move(module), config);
    emu.run("tree(7, R).");
    const RefStats& refs = emu.system().refStats();
    EXPECT_EQ(refs.opTotal(MemOp::DW), 0u);
    EXPECT_EQ(refs.opTotal(MemOp::ER), 0u);
    EXPECT_EQ(refs.opTotal(MemOp::RP), 0u);
    EXPECT_EQ(refs.opTotal(MemOp::RI), 0u);
}

TEST(Kl1Parallel, CrossPeStreamPipeline)
{
    // Producer/consumer with enough work that the consumer is usually
    // stolen to another PE and synchronizes through the shared stream.
    const std::string src =
        "main(R) :- true | produce(1, 300, S), consume(S, 0, R).\n"
        "produce(I, N, S) :- I > N | S = [].\n"
        "produce(I, N, S) :- I =< N | S = [I|S1], I1 := I + 1,\n"
        "                    produce(I1, N, S1).\n"
        "consume([], Acc, R) :- true | R = Acc.\n"
        "consume([X|Xs], Acc, R) :- true | Acc1 := Acc + X,\n"
        "                           consume(Xs, Acc1, R).\n";
    const Outcome out = run(src, "main(R).", smallConfig(2));
    EXPECT_EQ(out.bindings.at("R"), "45150");
}

TEST(Kl1Parallel, GoalRecordsFullyRecycled)
{
    // After a run every goal record must have been freed: live goal-area
    // words return to zero on all PEs.
    Module module = compileProgram(parseProgram(kTreeSrc));
    Emulator emu(std::move(module), smallConfig(4));
    emu.run("tree(6, R).");
    // All work done: no goals left anywhere.
    for (PeId pe = 0; pe < 4; ++pe)
        EXPECT_EQ(emu.machine(pe).goalListLength(), 0u);
}

TEST(Kl1Parallel, LockContractNoStaleFetches)
{
    // The write-once/read-once contract must hold for the engine's own
    // use of DW/ER/RP: zero stale fetches in a full parallel run.
    Module module = compileProgram(parseProgram(kPrimesSrc));
    Emulator emu(std::move(module), smallConfig(8));
    emu.run("primes(80, R).");
    EXPECT_EQ(emu.system().bus().stats().staleFetches, 0u);
    // And no lock is left held.
    for (PeId pe = 0; pe < 8; ++pe)
        EXPECT_EQ(emu.system().cache(pe).lockDirectory().heldCount(), 0u);
}

TEST(Kl1Parallel, DeterministicAcrossIdenticalRuns)
{
    Cycles spans[2];
    for (int i = 0; i < 2; ++i) {
        Module module = compileProgram(parseProgram(kTreeSrc));
        Emulator emu(std::move(module), smallConfig(4));
        const RunStats stats = emu.run("tree(8, R).");
        spans[i] = stats.makespan;
    }
    EXPECT_EQ(spans[0], spans[1]);
}

} // namespace
} // namespace pim::kl1
