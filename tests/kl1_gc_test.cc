/**
 * @file
 * Stop-and-copy GC tests: collections trigger under heap pressure, live
 * data (including data held across many collections, suspended goals'
 * arguments, and query variables) survives relocation, garbage is
 * reclaimed, and programs compute identical answers with GC on and off.
 */

#include <gtest/gtest.h>

#include "bench_kl1/programs.h"
#include "bench_kl1/workload.h"
#include "kl1_test_util.h"

namespace pim::kl1 {
namespace {

using testutil::Outcome;
using testutil::run;
using testutil::smallConfig;

/** A small heap so collections actually happen. */
Kl1Config
gcConfig(std::uint32_t pes = 2, std::uint32_t heap_words_log2 = 14)
{
    Kl1Config config = smallConfig(pes);
    config.enableGc = true;
    config.layout.heapWordsPerPe = 1u << heap_words_log2;
    config.gcSlackWords = 1024;
    return config;
}

/** Churn: builds and sums a fresh N-element list per iteration; all of
 *  it is garbage by the next iteration. */
const char* kChurnSrc =
    "build(0, L) :- true | L = [].\n"
    "build(N, L) :- N > 0 | N1 := N - 1, L = [N|T], build(N1, T).\n"
    "sum([], A, R) :- true | R = A.\n"
    "sum([X|Xs], A, R) :- true | A1 := A + X, sum(Xs, A1, R).\n"
    "loop(0, Acc, R) :- true | R = Acc.\n"
    "loop(K, Acc, R) :- K > 0 | build(120, L), sum(L, 0, S),\n"
    "    step(S, K, Acc, R).\n"
    "step(S, K, Acc, R) :- integer(S) | K1 := K - 1,\n"
    "    A1 := Acc + S, loop(K1, A1, R).\n";

TEST(Kl1Gc, CollectsAndComputesCorrectly)
{
    Module module = compileProgram(parseProgram(kChurnSrc));
    Emulator emu(std::move(module), gcConfig(1));
    const RunStats stats = emu.run("loop(400, 0, R).");
    // 400 iterations x sum(1..120)=7260.
    for (const auto& [name, value] : emu.queryBindings())
        EXPECT_EQ(value, "2904000") << name;
    EXPECT_GT(stats.gc.collections, 0u);
    EXPECT_GT(stats.gc.wordsReclaimed, stats.gc.wordsCopied);
}

TEST(Kl1Gc, SameAnswerWithAndWithoutGc)
{
    const Outcome without =
        run(kChurnSrc, "loop(200, 0, R).", smallConfig(2));
    Module module = compileProgram(parseProgram(kChurnSrc));
    Emulator emu(std::move(module), gcConfig(2));
    emu.run("loop(200, 0, R).");
    for (const auto& [name, value] : emu.queryBindings()) {
        if (name == "R") {
            EXPECT_EQ(value, without.bindings.at("R"));
        }
    }
}

TEST(Kl1Gc, LiveDataSurvivesManyCollections)
{
    // Build a list once, keep it live through heavy churn, then check
    // its contents were relocated intact.
    const std::string src = std::string(kChurnSrc) +
        "main(R) :- true | build(40, Keep), loop(300, 0, X),\n"
        "    done(X, Keep, R).\n"
        "done(X, Keep, R) :- integer(X) | sum(Keep, 0, R).\n";
    Module module = compileProgram(parseProgram(src));
    Emulator emu(std::move(module), gcConfig(1));
    const RunStats stats = emu.run("main(R).");
    EXPECT_GT(stats.gc.collections, 1u);
    for (const auto& [name, value] : emu.queryBindings())
        EXPECT_EQ(value, "820") << name; // sum 1..40
}

TEST(Kl1Gc, SuspendedGoalsSurviveCollection)
{
    // The consumer suspends on a stream whose producer churns enough
    // garbage to force collections while suspensions are outstanding.
    const std::string src = std::string(kChurnSrc) +
        "main(R) :- true | consume(S, 0, R), feed(60, S).\n"
        "feed(0, S) :- true | S = [].\n"
        "feed(K, S) :- K > 0 | build(100, L), sum(L, 0, V),\n"
        "    put(V, K, S).\n"
        "put(V, K, S) :- integer(V) | S = [V|S1], K1 := K - 1,\n"
        "    feed(K1, S1).\n"
        "consume([], Acc, R) :- true | R = Acc.\n"
        "consume([X|Xs], Acc, R) :- true | A1 := Acc + X,\n"
        "    consume(Xs, A1, R).\n";
    Module module = compileProgram(parseProgram(src));
    Emulator emu(std::move(module), gcConfig(1));
    const RunStats stats = emu.run("main(R).");
    EXPECT_GT(stats.gc.collections, 0u);
    EXPECT_GT(stats.suspensions, 0u);
    for (const auto& [name, value] : emu.queryBindings())
        EXPECT_EQ(value, "303000") << name; // 60 x sum(1..100)
}

TEST(Kl1Gc, MultiPeCollection)
{
    const std::string src = std::string(kChurnSrc) +
        "tree(0, R) :- true | build(60, L), sum(L, 0, R).\n"
        "tree(N, R) :- N > 0 | N1 := N - 1, tree(N1, A), tree(N1, B),\n"
        "    add(A, B, R).\n"
        "add(A, B, R) :- integer(A), integer(B) | R := A + B.\n";
    Module module = compileProgram(parseProgram(src));
    Emulator emu(std::move(module), gcConfig(4, 13));
    const RunStats stats = emu.run("tree(9, R).");
    EXPECT_GT(stats.gc.collections, 0u);
    for (const auto& [name, value] : emu.queryBindings())
        EXPECT_EQ(value, "936960") << name; // 512 x sum(1..60)
}

TEST(Kl1Gc, BenchmarksRunUnderGc)
{
    using namespace bench;
    Kl1Config config = paperConfig(4);
    config.enableGc = true;
    config.layout.heapWordsPerPe = 1 << 16;
    config.gcSlackWords = 2048;
    for (const char* name : {"Puzzle", "Pascal"}) {
        const BenchResult result =
            runBenchmark(benchmarkByName(name), 1, config);
        EXPECT_EQ(result.answer, result.expected) << name;
    }
}

TEST(Kl1Gc, SoakTriUnderGcOnEightPes)
{
    // The full Tri benchmark with a tight heap on 8 PEs: collections,
    // stealing, suspensions and locks all interleave; the answer must
    // still match the host mirror (checked inside runBenchmark).
    using namespace bench;
    Kl1Config config = paperConfig(8);
    config.enableGc = true;
    config.layout.heapWordsPerPe = 1 << 15;
    config.gcSlackWords = 2048;
    const BenchResult result =
        runBenchmark(benchmarkByName("Tri"), 2, config);
    EXPECT_EQ(result.answer, result.expected);
    EXPECT_EQ(result.bus.staleFetches, 0u);
}

TEST(Kl1GcDeath, ExhaustionWithoutGcIsFatal)
{
    Kl1Config config = smallConfig(1);
    config.layout.heapWordsPerPe = 1 << 12;
    Module module = compileProgram(parseProgram(kChurnSrc));
    Emulator emu(std::move(module), config);
    EXPECT_EXIT(emu.run("loop(400, 0, R)."),
                ::testing::ExitedWithCode(1), "heap semispace exhausted");
}

TEST(Kl1Gc, StatsAccumulateAcrossCollections)
{
    Module module = compileProgram(parseProgram(kChurnSrc));
    Emulator emu(std::move(module), gcConfig(1, 13));
    const RunStats stats = emu.run("loop(500, 0, R).");
    EXPECT_GT(stats.gc.collections, 2u);
    EXPECT_GT(stats.gc.wordsCopied, 0u);
    EXPECT_GT(stats.gc.cellsCopied, 0u);
}

} // namespace
} // namespace pim::kl1
