/**
 * @file
 * Perf regression ledger tests (docs/OBSERVABILITY.md): metric
 * extraction per document shape, JSONL record round-trip, ledger
 * load/append, every gate path (throughput drop, exact drift, golden
 * update, new/disappeared metrics) and the markdown trend report.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/sim_fault.h"
#include "obs/perf_ledger.h"

namespace pim {
namespace {

std::string
tmpPath(const std::string& leaf)
{
    return ::testing::TempDir() + "/" + leaf;
}

LedgerRecord
makeRecord(std::uint64_t seq, double refs_per_sec, double cycles)
{
    LedgerRecord rec;
    rec.seq = seq;
    rec.stamp = "2026-08-09T00:00:00Z";
    rec.label = "test";
    rec.inputs = {"BENCH_perf.json"};
    rec.metrics["perf.p8.refs_per_sec"] = {refs_per_sec, false};
    rec.metrics["perf.p8.cycles_per_ref"] = {cycles, true};
    return rec;
}

// ---------------------------------------------------- extraction

TEST(Extract, PerfDocTakesFilteredRowsOnly)
{
    const JsonValue doc = JsonValue::parse(R"({
        "name": "perf",
        "rows": [
            {"mode": "unfiltered", "pes_point": 8,
             "refs_per_sec": 1.0, "cycles_per_ref": 9.0},
            {"mode": "filtered", "pes_point": 8,
             "refs_per_sec": 123456.0, "cycles_per_ref": 4.5,
             "bus_transactions": 42}
        ]})");
    const auto metrics = extractLedgerMetrics(doc);
    ASSERT_EQ(metrics.size(), 3u);
    EXPECT_EQ(metrics.at("perf.p8.refs_per_sec").value, 123456.0);
    EXPECT_FALSE(metrics.at("perf.p8.refs_per_sec").exact);
    EXPECT_TRUE(metrics.at("perf.p8.cycles_per_ref").exact);
    EXPECT_TRUE(metrics.at("perf.p8.bus_transactions").exact);
}

TEST(Extract, BenchRowsTakeMeasuredFieldsAsExact)
{
    const JsonValue doc = JsonValue::parse(R"({
        "name": "table1",
        "rows": [
            {"bench": "Puzzle", "measured_cycles": 100,
             "measured_hit_rate": 0.95, "paper_cycles": 99}
        ]})");
    const auto metrics = extractLedgerMetrics(doc);
    ASSERT_EQ(metrics.size(), 2u);
    EXPECT_TRUE(metrics.at("table1.r0.measured_cycles").exact);
    EXPECT_TRUE(metrics.at("table1.r0.measured_hit_rate").exact);
    EXPECT_EQ(metrics.count("table1.r0.paper_cycles"), 0u);
}

TEST(Extract, SweepDocSumsBusCyclesPerExperiment)
{
    const JsonValue doc = JsonValue::parse(R"({
        "name": "sweep", "failed_rows": 1,
        "experiments": [
            {"id": "capacity",
             "aggregate": {"makespan": {"mean": 5000.5}},
             "rows": [{"bus_cycles": 10}, {"bus_cycles": 32}]}
        ]})");
    const auto metrics = extractLedgerMetrics(doc);
    EXPECT_EQ(metrics.at("sweep.failed_rows").value, 1.0);
    EXPECT_EQ(metrics.at("sweep.capacity.makespan_mean").value, 5000.5);
    EXPECT_EQ(metrics.at("sweep.capacity.bus_cycles").value, 42.0);
    EXPECT_TRUE(metrics.at("sweep.capacity.bus_cycles").exact);
}

TEST(Extract, SweepPerfAndCampaignAndAttribution)
{
    const auto perf = extractLedgerMetrics(JsonValue::parse(
        R"({"sims_per_sec": 12.5, "speedup_vs_serial": 3.1})"));
    EXPECT_FALSE(perf.at("sweep_perf.sims_per_sec").exact);
    EXPECT_FALSE(perf.at("sweep_perf.speedup_vs_serial").exact);

    const auto campaign = extractLedgerMetrics(
        JsonValue::parse(R"({"totals": {"escaped": 0}, "escaped": 0})"));
    EXPECT_TRUE(campaign.at("campaign.escaped").exact);
    EXPECT_EQ(campaign.at("campaign.escaped").value, 0.0);

    const auto attr = extractLedgerMetrics(JsonValue::parse(R"({
        "name": "attribution",
        "miss_classes": {"total": 7, "cold": 5},
        "buckets": [{"bucket": "memory_fill", "cycles": 90}]})"));
    EXPECT_EQ(attr.at("attr.miss.total").value, 7.0);
    EXPECT_EQ(attr.at("attr.bucket.memory_fill").value, 90.0);
    EXPECT_TRUE(attr.at("attr.bucket.memory_fill").exact);
}

TEST(Extract, UnknownShapeYieldsNothing)
{
    EXPECT_TRUE(extractLedgerMetrics(JsonValue::parse("{}")).empty());
    EXPECT_TRUE(
        extractLedgerMetrics(JsonValue::parse(R"({"x": [1, 2]})")).empty());
    EXPECT_TRUE(extractLedgerMetrics(JsonValue::parse("[1]")).empty());
}

// ------------------------------------------------- record round-trip

TEST(LedgerRecordIo, LineRoundTripsEveryField)
{
    const LedgerRecord rec = makeRecord(3, 1000.0, 4.25);
    const std::string line = ledgerRecordLine(rec);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    const LedgerRecord back = parseLedgerRecord(line);
    EXPECT_EQ(back.seq, 3u);
    EXPECT_EQ(back.stamp, rec.stamp);
    EXPECT_EQ(back.label, rec.label);
    EXPECT_EQ(back.inputs, rec.inputs);
    ASSERT_EQ(back.metrics.size(), 2u);
    EXPECT_EQ(back.metrics.at("perf.p8.refs_per_sec").value, 1000.0);
    EXPECT_FALSE(back.metrics.at("perf.p8.refs_per_sec").exact);
    EXPECT_TRUE(back.metrics.at("perf.p8.cycles_per_ref").exact);
}

TEST(LedgerRecordIo, MalformedLinesThrowParseFaults)
{
    EXPECT_THROW(parseLedgerRecord("{}"), SimFault);
    EXPECT_THROW(parseLedgerRecord(R"({"seq": 1})"), SimFault);
    EXPECT_THROW(
        parseLedgerRecord(R"({"seq": 1, "metrics": {"m": {}}})"),
        SimFault);
}

// ------------------------------------------------------ file I/O

TEST(LedgerFile, MissingLedgerIsEmptyHistory)
{
    EXPECT_TRUE(loadLedger(tmpPath("no_such_ledger.jsonl")).empty());
}

TEST(LedgerFile, AppendThenLoadPreservesOrder)
{
    const std::string path = tmpPath("ledger_roundtrip.jsonl");
    std::remove(path.c_str());
    appendLedger(path, makeRecord(1, 100.0, 4.0));
    appendLedger(path, makeRecord(2, 110.0, 4.0));
    const std::vector<LedgerRecord> history = loadLedger(path);
    ASSERT_EQ(history.size(), 2u);
    EXPECT_EQ(history[0].seq, 1u);
    EXPECT_EQ(history[1].seq, 2u);
    EXPECT_EQ(history[1].metrics.at("perf.p8.refs_per_sec").value, 110.0);
}

TEST(LedgerFile, BlankLinesSkippedBadLinesNameTheLineNumber)
{
    const std::string path = tmpPath("ledger_bad.jsonl");
    {
        std::ofstream out(path, std::ios::binary);
        out << ledgerRecordLine(makeRecord(1, 1.0, 1.0)) << "\n\n"
            << "not json\n";
    }
    try {
        loadLedger(path);
        FAIL() << "expected a parse fault";
    } catch (const SimFault& fault) {
        EXPECT_NE(std::string(fault.what()).find(":3:"),
                  std::string::npos);
    }
}

// ------------------------------------------------------- the gate

TEST(Gate, SmallThroughputDipPassesBigDropFails)
{
    const GateConfig config; // 20% drop allowed.
    const LedgerRecord base = makeRecord(1, 1000.0, 4.0);
    const GateResult ok =
        gateRecords(base, makeRecord(2, 850.0, 4.0), config);
    EXPECT_FALSE(ok.failed());
    EXPECT_EQ(ok.compared, 2u);

    const GateResult bad =
        gateRecords(base, makeRecord(2, 700.0, 4.0), config);
    ASSERT_TRUE(bad.failed());
    EXPECT_EQ(bad.regressions[0].metric, "perf.p8.refs_per_sec");
    EXPECT_FALSE(bad.regressions[0].exact);
    EXPECT_LT(bad.regressions[0].deltaPct, -20.0);
}

TEST(Gate, BigThroughputGainIsANoteNotARegression)
{
    const GateResult res = gateRecords(makeRecord(1, 1000.0, 4.0),
                                       makeRecord(2, 2000.0, 4.0),
                                       GateConfig{});
    EXPECT_FALSE(res.failed());
    ASSERT_EQ(res.notes.size(), 1u);
    EXPECT_NE(res.notes[0].find("improved"), std::string::npos);
}

TEST(Gate, ExactDriftFailsEitherDirectionUnlessGoldenUpdated)
{
    const LedgerRecord base = makeRecord(1, 1000.0, 4.0);
    for (const double drift : {4.0001, 3.9999}) {
        const GateResult res =
            gateRecords(base, makeRecord(2, 1000.0, drift), GateConfig{});
        ASSERT_TRUE(res.failed());
        EXPECT_EQ(res.regressions[0].metric, "perf.p8.cycles_per_ref");
        EXPECT_TRUE(res.regressions[0].exact);
    }
    GateConfig golden;
    golden.updateGolden = true;
    const GateResult updated =
        gateRecords(base, makeRecord(2, 1000.0, 5.0), golden);
    EXPECT_FALSE(updated.failed());
    ASSERT_EQ(updated.notes.size(), 1u);
    EXPECT_NE(updated.notes[0].find("golden updated"), std::string::npos);
}

TEST(Gate, ExactToleranceAllowsTinyDrift)
{
    GateConfig config;
    config.exactTolPct = 1.0;
    const GateResult res = gateRecords(makeRecord(1, 1000.0, 400.0),
                                       makeRecord(2, 1000.0, 402.0),
                                       config);
    EXPECT_FALSE(res.failed()); // 0.5% < 1% tolerance.
}

TEST(Gate, NewAndDisappearedMetricsAreNotes)
{
    LedgerRecord base = makeRecord(1, 1000.0, 4.0);
    LedgerRecord cur = makeRecord(2, 1000.0, 4.0);
    base.metrics["sweep.failed_rows"] = {0.0, true};
    cur.metrics["campaign.escaped"] = {0.0, true};
    const GateResult res = gateRecords(base, cur, GateConfig{});
    EXPECT_FALSE(res.failed());
    EXPECT_EQ(res.compared, 2u);
    bool saw_new = false;
    bool saw_gone = false;
    for (const std::string& note : res.notes) {
        saw_new |= note.find("new metric: campaign.escaped") !=
                   std::string::npos;
        saw_gone |= note.find("metric disappeared: sweep.failed_rows") !=
                    std::string::npos;
    }
    EXPECT_TRUE(saw_new);
    EXPECT_TRUE(saw_gone);
}

TEST(Gate, ExactRegressionsSortBeforeThroughputDrops)
{
    const GateResult res = gateRecords(makeRecord(1, 1000.0, 4.0),
                                       makeRecord(2, 10.0, 5.0),
                                       GateConfig{});
    ASSERT_EQ(res.regressions.size(), 2u);
    EXPECT_TRUE(res.regressions[0].exact);
    EXPECT_FALSE(res.regressions[1].exact);
}

TEST(Gate, ZeroBaselineDoesNotDivide)
{
    LedgerRecord base = makeRecord(1, 0.0, 0.0);
    const GateResult res =
        gateRecords(base, makeRecord(2, 10.0, 1.0), GateConfig{});
    // Exact 0 -> 1 is a 100% drift regression; throughput 0 -> 10 is a
    // gain, not a drop.
    ASSERT_EQ(res.regressions.size(), 1u);
    EXPECT_TRUE(res.regressions[0].exact);
}

// ---------------------------------------------------------- trend

TEST(Trend, MarkdownListsThroughputSeriesAndGoldenGuard)
{
    std::vector<LedgerRecord> history = {makeRecord(1, 1000.0, 4.0),
                                         makeRecord(2, 1100.0, 4.0),
                                         makeRecord(3, 990.0, 4.0)};
    const std::string md = trendMarkdown(history, 2);
    EXPECT_NE(md.find("# Performance trend"), std::string::npos);
    EXPECT_NE(md.find("## perf.p8.refs_per_sec"), std::string::npos);
    // last_n=2 clips seq 1 from the table.
    EXPECT_EQ(md.find("| 1 | 2026"), std::string::npos);
    EXPECT_NE(md.find("| 3 | 2026"), std::string::npos);
    EXPECT_NE(md.find("-10.0%"), std::string::npos); // 1100 -> 990.
    EXPECT_NE(md.find("## Golden guard"), std::string::npos);
    EXPECT_EQ(md.find("## perf.p8.cycles_per_ref"), std::string::npos);
    EXPECT_NE(trendMarkdown({}).find("empty"), std::string::npos);
}

} // namespace
} // namespace pim
