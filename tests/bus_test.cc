/**
 * @file
 * Bus timing tests: the six access patterns of paper Section 4.2 must
 * cost exactly the paper's cycle counts under the paper's assumptions,
 * and scale sensibly when bus width / memory latency change.
 */

#include <gtest/gtest.h>

#include "bus/bus.h"
#include "bus/timing.h"
#include "mem/paged_store.h"

namespace pim {
namespace {

TEST(BusTiming, PaperDefaults)
{
    const BusTiming t; // 1-word bus, 8-cycle memory, 4-word blocks
    EXPECT_EQ(t.swapInCycles(false), 13u);
    EXPECT_EQ(t.swapInCycles(true), 13u); // swap-out hidden by mem access
    EXPECT_EQ(t.cacheToCacheCycles(false), 7u);
    EXPECT_EQ(t.cacheToCacheCycles(true), 10u);
    EXPECT_EQ(t.swapOutOnlyCycles(), 5u);
    EXPECT_EQ(t.invalidateCycles(), 2u);
}

TEST(BusTiming, TwoWordBus)
{
    BusTiming t;
    t.widthWords = 2;
    EXPECT_EQ(t.blockTransferCycles(), 2u);
    EXPECT_EQ(t.swapInCycles(false), 11u);
    EXPECT_EQ(t.cacheToCacheCycles(false), 5u);
    EXPECT_EQ(t.cacheToCacheCycles(true), 6u);
    EXPECT_EQ(t.swapOutOnlyCycles(), 3u);
}

TEST(BusTiming, WideBlocks)
{
    BusTiming t;
    t.blockWords = 8;
    EXPECT_EQ(t.blockTransferCycles(), 8u);
    EXPECT_EQ(t.swapInCycles(false), 17u);
    // Victim transfer (9) exceeds the 8-cycle memory wait: partly exposed.
    EXPECT_EQ(t.swapInCycles(true), 18u);
    EXPECT_EQ(t.cacheToCacheCycles(false), 11u);
    EXPECT_EQ(t.cacheToCacheCycles(true), 18u);
}

TEST(BusTiming, SlowMemoryDoesNotChangeC2c)
{
    BusTiming t;
    t.memAccessCycles = 20;
    EXPECT_EQ(t.swapInCycles(false), 25u);
    EXPECT_EQ(t.cacheToCacheCycles(false), 7u); // insensitive, as in paper
}

class BusFixture : public ::testing::Test
{
  protected:
    BusFixture() : memory_(1 << 20), bus_(BusTiming{}, memory_) {}

    PagedStore memory_;
    Bus bus_;
    Word buffer_[4] = {};
};

TEST_F(BusFixture, FetchFromMemoryReadsData)
{
    memory_.write(100, 7);
    memory_.write(103, 9);
    const FetchResult result =
        bus_.fetch(0, 100, false, false, 0, false, buffer_, 0, Area::Heap);
    EXPECT_FALSE(result.lockHit);
    EXPECT_FALSE(result.supplied);
    EXPECT_EQ(result.completeAt, 13u);
    EXPECT_EQ(buffer_[0], 7u);
    EXPECT_EQ(buffer_[3], 9u);
    EXPECT_EQ(bus_.stats().totalCycles, 13u);
    EXPECT_EQ(bus_.stats().memoryReads, 1u);
}

TEST_F(BusFixture, BusSerializesRequests)
{
    bus_.fetch(0, 0, false, false, 0, false, buffer_, 0, Area::Heap);
    // Second request at time 3 must wait until the bus frees at 13.
    const FetchResult second =
        bus_.fetch(1, 64, false, false, 0, false, buffer_, 3, Area::Heap);
    EXPECT_EQ(second.completeAt, 26u);
}

TEST_F(BusFixture, IdleBusStartsAtRequestTime)
{
    bus_.fetch(0, 0, false, false, 0, false, buffer_, 0, Area::Heap);
    const FetchResult second =
        bus_.fetch(1, 64, false, false, 0, false, buffer_, 100, Area::Heap);
    EXPECT_EQ(second.completeAt, 113u);
}

TEST_F(BusFixture, InvalidateCostsTwoCycles)
{
    const InvalidateResult result =
        bus_.invalidate(0, 0, false, 0, 5, Area::Goal);
    EXPECT_EQ(result.completeAt, 7u);
    EXPECT_EQ(bus_.stats().cmdCounts[static_cast<int>(BusCmd::I)], 1u);
}

TEST_F(BusFixture, AreaAccounting)
{
    bus_.fetch(0, 0, false, false, 0, false, buffer_, 0, Area::Comm);
    bus_.invalidate(0, 64, false, 0, 0, Area::Goal);
    EXPECT_EQ(bus_.stats().cyclesByArea[static_cast<int>(Area::Comm)], 13u);
    EXPECT_EQ(bus_.stats().cyclesByArea[static_cast<int>(Area::Goal)], 2u);
}

TEST_F(BusFixture, SwapOutOnlyWritesMemory)
{
    const Word data[4] = {1, 2, 3, 4};
    const Cycles done = bus_.swapOutOnly(0, 200, data, 0, Area::Heap);
    EXPECT_EQ(done, 5u);
    EXPECT_EQ(memory_.read(201), 2u);
    EXPECT_EQ(bus_.stats().memoryWrites, 1u);
}

TEST_F(BusFixture, StaleFetchDetection)
{
    bus_.markPurgedDirty(100);
    bus_.fetch(0, 100, false, false, 0, false, buffer_, 0, Area::Goal);
    EXPECT_EQ(bus_.stats().staleFetches, 1u);
    // A write-back clears the mark.
    const Word data[4] = {};
    bus_.writeBackData(100, data);
    bus_.fetch(1, 100, false, false, 0, false, buffer_, 50, Area::Goal);
    EXPECT_EQ(bus_.stats().staleFetches, 1u);
}

TEST_F(BusFixture, FreshAllocationClearsPurgeMark)
{
    bus_.markPurgedDirty(100);
    bus_.noteFreshAllocation(100);
    bus_.fetch(0, 100, false, false, 0, false, buffer_, 0, Area::Goal);
    EXPECT_EQ(bus_.stats().staleFetches, 0u);
}

TEST_F(BusFixture, UnlockBroadcastNotifiesListener)
{
    struct Listener : UnlockListener {
        Addr addr = 0;
        Cycles when = 0;
        void
        onUnlockBroadcast(Addr a, Cycles w) override
        {
            addr = a;
            when = w;
        }
    } listener;
    bus_.setUnlockListener(&listener);
    const Cycles done = bus_.unlockBroadcast(0, 42, 10, Area::Heap);
    EXPECT_EQ(done, 12u);
    EXPECT_EQ(listener.addr, 42u);
    EXPECT_EQ(listener.when, 12u);
}

TEST_F(BusFixture, UnalignedFetchAsserts)
{
    EXPECT_DEATH(bus_.fetch(0, 101, false, false, 0, false, buffer_, 0,
                            Area::Heap),
                 "unaligned");
}

} // namespace
} // namespace pim
