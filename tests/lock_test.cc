/**
 * @file
 * Lock protocol tests: the LR / UW / U operations, the LCK / LWAIT / EMP
 * directory states, zero-bus-cycle fast paths, LH inhibition and the UL
 * wakeup (paper Sections 3.1 and 4.7).
 */

#include <gtest/gtest.h>

#include "sim/system.h"

namespace pim {
namespace {

SystemConfig
smallSystem()
{
    SystemConfig config;
    config.numPes = 4;
    config.cache.geometry = {4, 2, 8};
    config.memoryWords = 1 << 20;
    return config;
}

class Locks : public ::testing::Test
{
  protected:
    Locks() : sys_(smallSystem()) {}

    System::Access
    op(PeId pe, MemOp memop, Addr addr, Word wdata = 0)
    {
        return sys_.access(pe, memop, addr, Area::Heap, wdata);
    }

    System sys_;
};

TEST_F(Locks, LrHitExclusiveCostsNoBusCycles)
{
    op(0, MemOp::R, 100); // EC
    const Cycles before = sys_.bus().stats().totalCycles;
    op(0, MemOp::LR, 100);
    EXPECT_EQ(sys_.bus().stats().totalCycles, before);
    EXPECT_EQ(sys_.cache(0).lockDirectory().stateOf(100), LockState::LCK);
    EXPECT_EQ(sys_.cache(0).stats().lrHitExclusive, 1u);
    op(0, MemOp::U, 100);
}

TEST_F(Locks, LrSharedHitUsesInvalidateWithLock)
{
    op(0, MemOp::R, 100);
    op(1, MemOp::R, 100); // both S
    const Cycles before = sys_.bus().stats().totalCycles;
    op(0, MemOp::LR, 100);
    EXPECT_EQ(sys_.bus().stats().totalCycles - before, 2u); // I+LK
    EXPECT_EQ(sys_.cache(0).stateOf(100), CacheState::EC);
    EXPECT_EQ(sys_.cache(1).stateOf(100), CacheState::INV);
    EXPECT_EQ(sys_.bus().stats().cmdCounts[static_cast<int>(BusCmd::LK)],
              1u);
    op(0, MemOp::U, 100);
}

TEST_F(Locks, LrSharedModifiedHitBecomesExclusiveModified)
{
    op(0, MemOp::W, 100, 5);
    op(1, MemOp::R, 100); // pe1 SM
    ASSERT_EQ(sys_.cache(1).stateOf(100), CacheState::SM);
    op(1, MemOp::LR, 100);
    EXPECT_EQ(sys_.cache(1).stateOf(100), CacheState::EM);
    op(1, MemOp::U, 100);
}

TEST_F(Locks, LrMissUsesFetchInvalidateWithLock)
{
    const auto result = op(0, MemOp::LR, 100);
    EXPECT_FALSE(result.lockWait);
    EXPECT_EQ(sys_.cache(0).stateOf(100), CacheState::EC);
    EXPECT_EQ(sys_.bus().stats().cmdCounts[static_cast<int>(BusCmd::FI)],
              1u);
    EXPECT_EQ(sys_.bus().stats().cmdCounts[static_cast<int>(BusCmd::LK)],
              1u);
    op(0, MemOp::U, 100);
}

TEST_F(Locks, LrReadsCurrentValue)
{
    op(0, MemOp::W, 100, 31);
    EXPECT_EQ(op(1, MemOp::LR, 100).data, 31u);
    op(1, MemOp::UW, 100, 32);
    EXPECT_EQ(op(0, MemOp::R, 100).data, 32u);
}

TEST_F(Locks, UnlockWithoutWaiterIsFree)
{
    op(0, MemOp::LR, 100);
    const Cycles before = sys_.bus().stats().totalCycles;
    op(0, MemOp::UW, 100, 9);
    EXPECT_EQ(sys_.bus().stats().totalCycles, before); // no UL broadcast
    EXPECT_EQ(sys_.cache(0).stats().unlockNoWaiter, 1u);
    EXPECT_EQ(sys_.cache(0).lockDirectory().stateOf(100), LockState::EMP);
}

TEST_F(Locks, ConflictParksAndUlWakes)
{
    op(0, MemOp::LR, 100);
    // pe1 tries to lock the same word: LH -> parked.
    const auto rejected = op(1, MemOp::LR, 100);
    EXPECT_TRUE(rejected.lockWait);
    EXPECT_TRUE(sys_.parked(1));
    EXPECT_EQ(sys_.cache(0).lockDirectory().stateOf(100),
              LockState::LWAIT);
    // Owner unlocks: UL broadcast required, waiter woken.
    const std::uint64_t ul_before =
        sys_.bus().stats().cmdCounts[static_cast<int>(BusCmd::UL)];
    op(0, MemOp::UW, 100, 1);
    EXPECT_EQ(sys_.bus().stats().cmdCounts[static_cast<int>(BusCmd::UL)],
              ul_before + 1);
    EXPECT_FALSE(sys_.parked(1));
    // Retry now succeeds and sees the owner's write.
    const auto retry = op(1, MemOp::LR, 100);
    EXPECT_FALSE(retry.lockWait);
    EXPECT_EQ(retry.data, 1u);
    op(1, MemOp::U, 100);
}

TEST_F(Locks, PlainReadOfLockedBlockIsInhibited)
{
    op(0, MemOp::LR, 100);
    const auto read = op(1, MemOp::R, 100);
    EXPECT_TRUE(read.lockWait);
    EXPECT_TRUE(sys_.parked(1));
    op(0, MemOp::U, 100);
    EXPECT_FALSE(sys_.parked(1));
    EXPECT_FALSE(op(1, MemOp::R, 100).lockWait);
}

TEST_F(Locks, LockSurvivesSwapOut)
{
    op(0, MemOp::LR, 0);
    // Evict block 0 from pe0's set 0 (2 ways).
    op(0, MemOp::R, 128);
    op(0, MemOp::R, 256);
    ASSERT_FALSE(sys_.cache(0).present(0));
    // The lock directory still inhibits remote access.
    EXPECT_TRUE(op(1, MemOp::R, 0).lockWait);
    // UW refetches the block, writes, and unlocks with UL.
    op(0, MemOp::UW, 0, 42);
    EXPECT_FALSE(sys_.parked(1));
    EXPECT_EQ(op(1, MemOp::R, 0).data, 42u);
}

TEST_F(Locks, TwoLocksInDifferentWordsOfDifferentBlocks)
{
    op(0, MemOp::LR, 100);
    op(0, MemOp::LR, 200);
    EXPECT_EQ(sys_.cache(0).lockDirectory().heldCount(), 2u);
    op(0, MemOp::UW, 200, 2);
    op(0, MemOp::UW, 100, 1);
    EXPECT_EQ(sys_.cache(0).lockDirectory().heldCount(), 0u);
}

TEST_F(Locks, LockOnOneWordInhibitsWholeBlock)
{
    op(0, MemOp::LR, 100);
    // A different word of the same block: the block-granular snoop of
    // the lock directory inhibits it too.
    EXPECT_TRUE(op(1, MemOp::LR, 101).lockWait);
    op(0, MemOp::U, 100);
    EXPECT_FALSE(op(1, MemOp::LR, 101).lockWait);
    op(1, MemOp::U, 101);
}

TEST_F(Locks, DifferentBlocksDoNotInterfere)
{
    op(0, MemOp::LR, 100);
    EXPECT_FALSE(op(1, MemOp::LR, 200).lockWait);
    op(0, MemOp::U, 100);
    op(1, MemOp::U, 200);
}

TEST_F(Locks, MultipleWaitersAllWake)
{
    op(0, MemOp::LR, 100);
    EXPECT_TRUE(op(1, MemOp::R, 100).lockWait);
    EXPECT_TRUE(op(2, MemOp::R, 100).lockWait);
    op(0, MemOp::U, 100);
    EXPECT_FALSE(sys_.parked(1));
    EXPECT_FALSE(sys_.parked(2));
    EXPECT_FALSE(op(1, MemOp::R, 100).lockWait);
    EXPECT_FALSE(op(2, MemOp::R, 100).lockWait);
}

TEST_F(Locks, WaiterWakeTimeFollowsUnlock)
{
    op(0, MemOp::LR, 100);
    op(1, MemOp::R, 100); // parked
    const Cycles parked_at = sys_.clock(1);
    op(0, MemOp::UW, 100, 1);
    EXPECT_GE(sys_.clock(1), parked_at);
    EXPECT_GE(sys_.clock(1), sys_.clock(0) > 2 ? sys_.clock(0) - 2 : 0u);
}

TEST_F(Locks, Table5StyleStatistics)
{
    // Uncontended lock/unlock pairs on private, pre-owned data should be
    // nearly all zero-cost, as the paper's Table 5 reports.
    for (int round = 0; round < 50; ++round) {
        op(0, MemOp::W, 100, round); // keeps the block EM
        op(0, MemOp::LR, 100);
        op(0, MemOp::UW, 100, round + 1);
    }
    const CacheStats& stats = sys_.cache(0).stats();
    EXPECT_EQ(stats.lrCount, 50u);
    EXPECT_EQ(stats.lrHitExclusive, 50u);
    EXPECT_EQ(stats.unlockNoWaiter, 50u);
}

TEST_F(Locks, SequentialOwnershipHandoff)
{
    // A lock word bouncing between PEs: each LR misses (FI+LK), each
    // unlock is waiter-free because the next PE arrives afterwards.
    Word value = 0;
    for (PeId pe = 0; pe < 4; ++pe) {
        const auto lr = op(pe, MemOp::LR, 500);
        ASSERT_FALSE(lr.lockWait);
        EXPECT_EQ(lr.data, value);
        value += pe + 1;
        op(pe, MemOp::UW, 500, value);
    }
    EXPECT_EQ(op(0, MemOp::R, 500).data, 1u + 2u + 3u + 4u);
}

TEST_F(Locks, LwaitChainOfThreeWaiters)
{
    // Three PEs pile up behind one lock (two more LRs and a plain read,
    // one on a different word of the same block). A single UL wakes the
    // whole chain; the retries then re-serialize behind the new holder.
    op(0, MemOp::LR, 100);
    EXPECT_TRUE(op(1, MemOp::LR, 100).lockWait);
    EXPECT_TRUE(op(2, MemOp::R, 100).lockWait);
    EXPECT_TRUE(op(3, MemOp::LR, 101).lockWait);
    EXPECT_EQ(sys_.pendingWaiters(), (std::vector<PeId>{1, 2, 3}));
    EXPECT_EQ(sys_.cache(0).lockDirectory().stateOf(100),
              LockState::LWAIT);

    const std::uint64_t ul_before =
        sys_.bus().stats().cmdCounts[static_cast<int>(BusCmd::UL)];
    op(0, MemOp::UW, 100, 7);
    EXPECT_EQ(sys_.bus().stats().cmdCounts[static_cast<int>(BusCmd::UL)],
              ul_before + 1); // one broadcast wakes all three
    EXPECT_TRUE(sys_.pendingWaiters().empty());

    // First retry wins the lock; the other two park behind it again.
    EXPECT_FALSE(op(1, MemOp::LR, 100).lockWait);
    EXPECT_TRUE(op(2, MemOp::R, 100).lockWait);
    EXPECT_TRUE(op(3, MemOp::LR, 101).lockWait);
    op(1, MemOp::UW, 100, 8);
    EXPECT_EQ(op(2, MemOp::R, 100).data, 8u);
    EXPECT_FALSE(op(3, MemOp::LR, 101).lockWait);
    op(3, MemOp::U, 101);
}

TEST_F(Locks, UnlockAfterEvictionWithNoWaiterIsFree)
{
    // The locked block is swapped out while held; a plain U with no
    // waiter must neither refetch the block nor touch the bus — the
    // directory entry alone carries the release.
    op(0, MemOp::LR, 0);
    op(0, MemOp::R, 128);
    op(0, MemOp::R, 256); // evicts block 0 (2 ways in its set)
    ASSERT_FALSE(sys_.cache(0).present(0));

    const Cycles before = sys_.bus().stats().totalCycles;
    op(0, MemOp::U, 0);
    EXPECT_EQ(sys_.bus().stats().totalCycles, before);
    EXPECT_FALSE(sys_.cache(0).present(0)); // no refetch
    EXPECT_EQ(sys_.cache(0).stats().unlockNoWaiter, 1u);
    EXPECT_EQ(sys_.cache(0).lockDirectory().stateOf(0), LockState::EMP);
    EXPECT_FALSE(op(1, MemOp::R, 0).lockWait);
}

TEST_F(Locks, LrOnErPurgedBlockRefetchesStaleData)
{
    // ER through the last word of a dirty block purges it without
    // copy-back; a later LR on a word of that block must still acquire
    // the lock, at the price of a stale memory fetch.
    op(0, MemOp::W, 100, 55); // EM, dirty
    for (Addr a = 100; a < 104; ++a)
        op(0, MemOp::ER, a); // last word purges, no swap-out
    ASSERT_FALSE(sys_.cache(0).present(100));
    ASSERT_EQ(sys_.cache(0).stats().purgedDirty, 1u);

    const auto lr = op(1, MemOp::LR, 101);
    EXPECT_FALSE(lr.lockWait);
    EXPECT_EQ(sys_.bus().stats().staleFetches, 1u);
    EXPECT_EQ(sys_.cache(1).lockDirectory().stateOf(101), LockState::LCK);
    // Memory never saw the purged write: the contract says the data was
    // single-use, so the refetched copy is the stale 0.
    EXPECT_EQ(lr.data, 0u);
    op(1, MemOp::U, 101);
}

TEST(LockDirectoryUnit, SnoopTransitionsToLwait)
{
    LockDirectory dir(0, 2);
    dir.acquire(100);
    EXPECT_EQ(dir.stateOf(100), LockState::LCK);
    EXPECT_TRUE(dir.snoopLockCheck(100, 4, 0));
    EXPECT_EQ(dir.stateOf(100), LockState::LWAIT);
    EXPECT_TRUE(dir.release(100));
}

TEST(LockDirectoryUnit, SnoopMissesOtherBlocks)
{
    LockDirectory dir(0, 2);
    dir.acquire(100);
    EXPECT_FALSE(dir.snoopLockCheck(104, 4, 0));
    EXPECT_EQ(dir.stateOf(100), LockState::LCK);
    EXPECT_FALSE(dir.release(100));
}

TEST(LockDirectoryUnit, BlockRangeCheck)
{
    LockDirectory dir(0, 2);
    dir.acquire(103);
    EXPECT_TRUE(dir.snoopLockCheck(100, 4, 0));  // 103 in [100,104)
    EXPECT_FALSE(dir.snoopLockCheck(96, 4, 0));  // 103 not in [96,100)
}

TEST(LockDirectoryUnitDeath, OverflowIsFatal)
{
    LockDirectory dir(0, 1);
    dir.acquire(1);
    EXPECT_EXIT(dir.acquire(2), ::testing::ExitedWithCode(1), "full");
}

TEST(LockDirectoryUnitDeath, DoubleLockPanics)
{
    LockDirectory dir(0, 2);
    dir.acquire(1);
    EXPECT_DEATH(dir.acquire(1), "re-locking");
}

TEST(LockDirectoryUnitDeath, ReleaseWithoutHoldPanics)
{
    LockDirectory dir(0, 2);
    EXPECT_DEATH(dir.release(7), "does not hold");
}

// ---------------------------------------------- parked-PE accounting --

TEST_F(Locks, PendingWaitersTracksParkedPes)
{
    EXPECT_TRUE(sys_.pendingWaiters().empty());
    op(0, MemOp::LR, 100);
    EXPECT_TRUE(op(1, MemOp::LR, 100).lockWait);
    EXPECT_TRUE(op(2, MemOp::R, 101).lockWait);
    EXPECT_EQ(sys_.pendingWaiters(), (std::vector<PeId>{1, 2}));
    op(0, MemOp::U, 100); // UL wakes both.
    EXPECT_TRUE(sys_.pendingWaiters().empty());
    op(1, MemOp::LR, 100);
    op(1, MemOp::U, 100);
}

TEST(ParkedLeak, DestructorPanicsOnLeakedLockWait)
{
    EXPECT_DEATH(
        {
            System sys(smallSystem());
            sys.access(0, MemOp::LR, 100, Area::Heap);
            // Driver bug under test: pe1's lock wait is never retried
            // and pe0 never unlocks; the System goes out of scope with
            // pe1 still parked.
            sys.access(1, MemOp::LR, 100, Area::Heap);
        },
        "still parked");
}

TEST(ParkedLeak, AbandonParkedWaitersSilencesTheCheck)
{
    System sys(smallSystem());
    sys.access(0, MemOp::LR, 100, Area::Heap);
    EXPECT_TRUE(sys.access(1, MemOp::LR, 100, Area::Heap).lockWait);
    ASSERT_EQ(sys.pendingWaiters().size(), 1u);
    sys.abandonParkedWaiters();
    EXPECT_TRUE(sys.pendingWaiters().empty());
    // Destructor runs clean; the abandoned wait is acknowledged.
}

} // namespace
} // namespace pim
