/**
 * @file
 * Attribution engine tests (docs/OBSERVABILITY.md): hand-built access
 * sequences that provably produce each miss class — cold, conflict,
 * capacity, coherence invalidation, lock-purge, flush — plus the
 * exactness invariants (bucket cycles sum to BusStats::totalCycles,
 * classified misses equal the cache miss count), the bucket/pattern
 * mapping, the heat analytics, and the JSON document shape.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/json.h"
#include "obs/attribution.h"
#include "sim/report_json.h"
#include "sim/system.h"

namespace pim {
namespace {

/**
 * The smallest geometry whose miss classes are all reachable:
 * direct-mapped (1 way) x 2 sets x 4-word blocks. Total capacity is 2
 * blocks, so the fully associative shadow holds 2 blocks too; block
 * addresses 0, 16, 32 all map to set 0 while 4 maps to set 1.
 */
struct Rig {
    SystemConfig config;
    std::unique_ptr<System> sys;
    std::unique_ptr<AttributionEngine> attr;

    explicit Rig(std::uint32_t pes = 2)
    {
        config.numPes = pes;
        config.cache.geometry = {4, 1, 2};
        config.memoryWords = 1 << 16;
        config.validate();
        sys = std::make_unique<System>(config);
        attr = std::make_unique<AttributionEngine>(
            pes, config.timing, config.cache.geometry.blockWords,
            config.cache.geometry.ways * config.cache.geometry.sets);
        sys->addEventSink(attr.get());
    }

    Word
    access(PeId pe, MemOp op, Addr addr, Word wdata = 0)
    {
        return sys->access(pe, op, addr, Area::Heap, wdata).data;
    }

    /** The always-on invariants every scenario must close with. */
    void
    checkExact() const
    {
        EXPECT_EQ(attr->crossCheck(sys->bus().stats()), "");
        EXPECT_EQ(attr->classifiedMisses(),
                  sys->totalCacheStats().misses);
    }
};

// ------------------------------------------------------- miss classes

TEST(MissClass, FirstTouchIsCold)
{
    Rig rig;
    rig.access(0, MemOp::R, 0);
    EXPECT_EQ(rig.attr->missCount(MissClass::Cold), 1u);
    EXPECT_EQ(rig.attr->classifiedMisses(), 1u);
    rig.checkExact();
}

TEST(MissClass, HitsAreNotClassified)
{
    Rig rig;
    rig.access(0, MemOp::R, 0);
    rig.access(0, MemOp::R, 1);
    rig.access(0, MemOp::R, 2);
    EXPECT_EQ(rig.attr->classifiedMisses(), 1u);
    rig.checkExact();
}

TEST(MissClass, SetCollisionWithinCapacityIsConflict)
{
    Rig rig;
    // Blocks 0 and 16 both map to set 0 of the direct-mapped cache, but
    // a fully associative cache of the same total size (2 blocks) holds
    // both — so re-reading block 0 is a conflict miss by definition.
    rig.access(0, MemOp::R, 0);
    rig.access(0, MemOp::R, 16);
    rig.access(0, MemOp::R, 0);
    EXPECT_EQ(rig.attr->missCount(MissClass::Cold), 2u);
    EXPECT_EQ(rig.attr->missCount(MissClass::Conflict), 1u);
    EXPECT_EQ(rig.attr->missCount(MissClass::Capacity), 0u);
    rig.checkExact();
}

TEST(MissClass, WorkingSetBeyondCapacityIsCapacity)
{
    Rig rig;
    // Three distinct blocks through a 2-block cache: by the time block
    // 0 is re-read, even the fully associative shadow (LRU over 16, 32)
    // has evicted it — a true capacity miss, not a mapping artifact.
    rig.access(0, MemOp::R, 0);
    rig.access(0, MemOp::R, 16);
    rig.access(0, MemOp::R, 32);
    rig.access(0, MemOp::R, 0);
    EXPECT_EQ(rig.attr->missCount(MissClass::Cold), 3u);
    EXPECT_EQ(rig.attr->missCount(MissClass::Capacity), 1u);
    EXPECT_EQ(rig.attr->missCount(MissClass::Conflict), 0u);
    rig.checkExact();
}

TEST(MissClass, RemoteWriteMakesInvalidationMiss)
{
    Rig rig;
    rig.access(0, MemOp::R, 0);
    rig.access(1, MemOp::W, 0, 7); // I command removes pe0's copy.
    rig.access(0, MemOp::R, 0);
    EXPECT_EQ(rig.attr->missCount(MissClass::Cold), 2u);
    EXPECT_EQ(rig.attr->missCount(MissClass::Invalidation), 1u);
    rig.checkExact();
}

TEST(MissClass, ReadPurgeMakesLockPurgeMiss)
{
    Rig rig;
    rig.access(0, MemOp::W, 0, 5);
    EXPECT_EQ(rig.access(0, MemOp::RP, 0), 5u); // Purges the own copy.
    rig.access(0, MemOp::R, 0);
    EXPECT_EQ(rig.attr->missCount(MissClass::LockPurge), 1u);
    EXPECT_EQ(rig.attr->missCount(MissClass::Invalidation), 0u);
    rig.checkExact();
}

TEST(MissClass, ErOfLastWordPurgesSupplierCopy)
{
    Rig rig;
    // The consumer's ER of the last word read-purges its own copy; the
    // next read of that block is a lock-purge miss, not invalidation.
    for (Addr a = 0; a < 4; ++a)
        rig.access(0, MemOp::DW, a, a + 1);
    for (Addr a = 0; a < 4; ++a)
        EXPECT_EQ(rig.access(1, MemOp::ER, a), a + 1);
    rig.access(1, MemOp::R, 0);
    EXPECT_EQ(rig.attr->missCount(MissClass::LockPurge), 1u);
    rig.checkExact();
}

TEST(MissClass, GcFlushMakesFlushMiss)
{
    Rig rig;
    rig.access(0, MemOp::W, 0, 3);
    rig.sys->flushAllCaches();
    rig.access(0, MemOp::R, 0);
    EXPECT_EQ(rig.access(0, MemOp::R, 0), 3u); // Write-back survived.
    EXPECT_EQ(rig.attr->missCount(MissClass::Flush), 1u);
    rig.checkExact();
}

// ------------------------------------------------ bus-cycle buckets

TEST(BusBuckets, MemoryFillMatchesPatternCycles)
{
    Rig rig;
    rig.access(0, MemOp::R, 0);
    const BusStats& stats = rig.sys->bus().stats();
    EXPECT_EQ(rig.attr->bucketCycles(BusBucket::MemoryFill),
              stats.cyclesByPattern[static_cast<int>(
                  BusPattern::MemFetch)]);
    EXPECT_EQ(rig.attr->attributedCycles(), stats.totalCycles);
    rig.checkExact();
}

TEST(BusBuckets, CacheSupplyAndInvalidationSplit)
{
    Rig rig;
    rig.access(0, MemOp::W, 0, 9); // pe0 holds the block dirty (EM).
    rig.access(1, MemOp::R, 0);    // C2C supply from pe0.
    rig.access(1, MemOp::W, 0, 4); // Invalidate broadcast to pe0.
    const BusStats& stats = rig.sys->bus().stats();
    EXPECT_GT(rig.attr->bucketCycles(BusBucket::CacheSupply), 0u);
    EXPECT_EQ(rig.attr->bucketCycles(BusBucket::Invalidation),
              stats.cyclesByPattern[static_cast<int>(
                  BusPattern::Invalidate)]);
    EXPECT_EQ(rig.attr->attributedCycles(), stats.totalCycles);
    rig.checkExact();
}

TEST(BusBuckets, DirtyVictimExcessLandsInCopyBack)
{
    Rig rig;
    // Dirty block 0 in set 0, then fetch block 16 into the same set:
    // the MemFetchVictim occupancy beyond the clean swap-in base cost
    // is attributable copy-back traffic. With the paper's default
    // timing the victim transfer hides entirely under the memory wait,
    // so the visible copy-back share must be zero — not negative, not
    // double-charged.
    rig.access(0, MemOp::W, 0, 1);
    rig.access(0, MemOp::R, 16);
    const BusStats& stats = rig.sys->bus().stats();
    const Cycles victim_occ = stats.cyclesByPattern[static_cast<int>(
        BusPattern::MemFetchVictim)];
    const Cycles clean_base = rig.config.timing.swapInCycles(false);
    EXPECT_EQ(rig.attr->bucketCycles(BusBucket::CopyBack),
              victim_occ > clean_base ? victim_occ - clean_base : 0);
    EXPECT_EQ(rig.attr->attributedCycles(), stats.totalCycles);
    rig.checkExact();
}

TEST(BusBuckets, LockTrafficCoversUnlockAndRejects)
{
    Rig rig;
    ASSERT_FALSE(rig.sys->access(0, MemOp::LR, 8, Area::Heap, 0).lockWait);
    ASSERT_TRUE(rig.sys->access(1, MemOp::LR, 8, Area::Heap, 0).lockWait);
    rig.access(0, MemOp::UW, 8, 2); // UL broadcast wakes pe1.
    ASSERT_FALSE(rig.sys->access(1, MemOp::LR, 8, Area::Heap, 0).lockWait);
    rig.access(1, MemOp::U, 8);
    const BusStats& stats = rig.sys->bus().stats();
    const Cycles expected =
        stats.cyclesByPattern[static_cast<int>(BusPattern::Unlock)] +
        stats.cyclesByPattern[static_cast<int>(BusPattern::LockReject)];
    EXPECT_EQ(rig.attr->bucketCycles(BusBucket::LockTraffic), expected);
    rig.checkExact();
}

// ------------------------------------------------------ heat tables

TEST(Heat, PingPongChainTracksAlternatingWriters)
{
    Rig rig;
    for (int round = 0; round < 4; ++round) {
        rig.access(0, MemOp::W, 0, round);
        rig.access(1, MemOp::W, 0, round);
    }
    const auto hot = rig.attr->hottestBlocks(1);
    ASSERT_EQ(hot.size(), 1u);
    EXPECT_EQ(hot[0].block, 0u);
    EXPECT_GE(hot[0].invMisses, 6u);
    EXPECT_GE(hot[0].maxPingPong, 3u);
    rig.checkExact();
}

TEST(Heat, LockContentionAndWaitTables)
{
    Rig rig;
    ASSERT_FALSE(rig.sys->access(0, MemOp::LR, 8, Area::Heap, 0).lockWait);
    ASSERT_TRUE(rig.sys->access(1, MemOp::LR, 8, Area::Heap, 0).lockWait);
    rig.access(0, MemOp::UW, 8, 1);
    ASSERT_FALSE(rig.sys->access(1, MemOp::LR, 8, Area::Heap, 0).lockWait);
    rig.access(1, MemOp::U, 8);
    const auto locks = rig.attr->hottestLocks(4);
    ASSERT_FALSE(locks.empty());
    EXPECT_EQ(locks[0].word, 8u);
    EXPECT_EQ(locks[0].acquires, 2u);
    EXPECT_GE(locks[0].contended, 1u);
    const auto waits = rig.attr->longestWaits(4);
    ASSERT_FALSE(waits.empty());
    EXPECT_EQ(waits[0].parks, 1u);
    EXPECT_EQ(waits[0].wakes, 1u);
    rig.checkExact();
}

// ------------------------------------------------- report and JSON

TEST(AttributionJson, DocumentShapeAndCrossCheck)
{
    Rig rig;
    rig.access(0, MemOp::W, 0, 1);
    rig.access(1, MemOp::R, 0);
    rig.access(1, MemOp::W, 16, 2);
    const std::string doc =
        rig.attr->jsonDocument(rig.sys->bus().stats());
    const JsonValue parsed = JsonValue::parse(doc);
    EXPECT_EQ(parsed.at("name").asString(), "attribution");
    EXPECT_EQ(parsed.findPath("cross_check.match")->asBool(), true);
    EXPECT_EQ(static_cast<std::uint64_t>(
                  parsed.findPath("miss_classes.total")->asNumber()),
              rig.attr->classifiedMisses());
    ASSERT_NE(parsed.findPath("buckets.0.cycles"), nullptr);
    ASSERT_NE(parsed.findPath("by_pe.0.pe"), nullptr);
    // The ASCII report renders every table without blowing up.
    const std::string report = rig.attr->report();
    EXPECT_NE(report.find("miss classification"), std::string::npos);
    EXPECT_NE(report.find("bus cycles by cause"), std::string::npos);
}

TEST(AttributionJson, ReportAllJsonEmbedsSectionOnlyWhenAsked)
{
    Rig rig;
    rig.access(0, MemOp::R, 0);
    const JsonValue without = JsonValue::parse(reportAllJson(*rig.sys));
    EXPECT_FALSE(without.has("attribution"));
    const std::string with = reportAllJson(*rig.sys, rig.attr.get());
    const JsonValue parsed = JsonValue::parse(with);
    ASSERT_TRUE(parsed.has("attribution"));
    EXPECT_EQ(parsed.findPath("attribution.cross_check.match")->asBool(),
              true);
}

TEST(AttributionJson, CrossCheckReportsDoctoredStats)
{
    Rig rig;
    rig.access(0, MemOp::R, 0);
    BusStats doctored = rig.sys->bus().stats();
    doctored.totalCycles += 1;
    EXPECT_NE(rig.attr->crossCheck(doctored), "");
}

} // namespace
} // namespace pim
