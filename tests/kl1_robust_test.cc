/**
 * @file
 * Front-end robustness: malformed .fghc input must produce a SimFault
 * (Parse) with file/line/column — never terminate the process. The whole
 * point is that these tests run in-process: an abort() anywhere kills
 * the test binary and fails the suite.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "common/sim_fault.h"
#include "kl1/lexer.h"
#include "kl1/parser.h"

namespace pim::kl1 {
namespace {

const char kGood[] =
    "append([], Ys, Zs) :- Zs = Ys.\n"
    "append([X|Xs], Ys, Zs) :- Zs = [X|Zs1], append(Xs, Ys, Zs1).\n"
    "main(R) :- append([1,2], [3], R).\n";

/** parseProgram either succeeds or throws SimFault(Parse); no aborts. */
bool
parseSurvives(const std::string& source)
{
    try {
        parseProgram(source, "fuzz.fghc");
        return true;
    } catch (const SimFault& fault) {
        EXPECT_EQ(fault.kind(), SimFaultKind::Parse);
        EXPECT_NE(std::string(fault.what()).find("fuzz.fghc:"),
                  std::string::npos)
            << fault.what();
        return false;
    }
}

TEST(Kl1Robust, EveryTruncationIsHandled)
{
    const std::string good(kGood);
    int parsed = 0;
    for (std::size_t len = 0; len <= good.size(); ++len) {
        if (parseSurvives(good.substr(0, len)))
            ++parsed;
    }
    // The empty prefix and the full program parse; most cuts must not.
    EXPECT_GE(parsed, 2);
    EXPECT_LT(parsed, static_cast<int>(good.size()));
}

TEST(Kl1Robust, GarbageBytesNeverAbort)
{
    Rng rng(2026);
    for (int round = 0; round < 200; ++round) {
        std::string garbage;
        const std::size_t len = rng.below(64);
        for (std::size_t i = 0; i < len; ++i)
            garbage.push_back(static_cast<char>(rng.range(1, 255)));
        parseSurvives(garbage);
    }
}

TEST(Kl1Robust, MutatedProgramNeverAborts)
{
    Rng rng(7);
    const std::string good(kGood);
    for (int round = 0; round < 200; ++round) {
        std::string mutated = good;
        const std::size_t pos = rng.below(mutated.size());
        mutated[pos] = static_cast<char>(rng.range(1, 127));
        parseSurvives(mutated);
    }
}

TEST(Kl1Robust, UnterminatedCommentReportsPosition)
{
    try {
        tokenize("a.\n/* never closed", "c.fghc");
        FAIL() << "expected SimFault";
    } catch (const SimFault& fault) {
        EXPECT_EQ(fault.kind(), SimFaultKind::Parse);
        EXPECT_NE(std::string(fault.what()).find("c.fghc:2:"),
                  std::string::npos)
            << fault.what();
    }
}

TEST(Kl1Robust, UnterminatedAtomReportsPosition)
{
    EXPECT_THROW(tokenize("x = 'oops"), SimFault);
}

TEST(Kl1Robust, ColumnNumbersAreTracked)
{
    const auto toks = tokenize("ab cd\n  ef");
    ASSERT_GE(toks.size(), 3u);
    EXPECT_EQ(toks[0].column, 1);
    EXPECT_EQ(toks[1].column, 4);
    EXPECT_EQ(toks[2].line, 2);
    EXPECT_EQ(toks[2].column, 3);
}

} // namespace
} // namespace pim::kl1
