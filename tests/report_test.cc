/**
 * @file
 * Tests for the standard report tables over a System.
 */

#include <gtest/gtest.h>

#include "sim/report.h"
#include "sim/trace_replay.h"
#include "trace/synth.h"

namespace pim {
namespace {

class Reports : public ::testing::Test
{
  protected:
    Reports()
    {
        SystemConfig config;
        config.numPes = 2;
        config.memoryWords = 1 << 20;
        sys_ = std::make_unique<System>(config);
        // Mixed traffic touching several areas and operations.
        sys_->access(0, MemOp::DW, 0, Area::Goal, 1);
        sys_->access(0, MemOp::W, 100, Area::Heap, 2);
        sys_->access(1, MemOp::R, 100, Area::Heap, 0);
        sys_->access(1, MemOp::LR, 200, Area::Heap, 0);
        sys_->access(1, MemOp::UW, 200, Area::Heap, 3);
        sys_->access(0, MemOp::RI, 300, Area::Comm, 0);
        sys_->access(0, MemOp::RP, 0, Area::Goal, 0);
    }

    std::unique_ptr<System> sys_;
};

TEST_F(Reports, AreasContainsEveryAreaAndTotals)
{
    const std::string out = reportAreas(*sys_).toString();
    for (const char* area : {"inst", "heap", "goal", "susp", "comm"})
        EXPECT_NE(out.find(area), std::string::npos) << area;
    EXPECT_NE(out.find("total"), std::string::npos);
    EXPECT_NE(out.find("100.00"), std::string::npos);
}

TEST_F(Reports, OperationsListsOnlyUsedOps)
{
    const std::string out = reportOperations(*sys_).toString();
    EXPECT_NE(out.find("| DW "), std::string::npos);
    EXPECT_NE(out.find("| LR "), std::string::npos);
    EXPECT_NE(out.find("| RI "), std::string::npos);
    EXPECT_EQ(out.find("| ER "), std::string::npos); // never issued
}

TEST_F(Reports, BusPatternsReflectTraffic)
{
    const std::string out = reportBusPatterns(*sys_).toString();
    EXPECT_NE(out.find("mem-fetch"), std::string::npos);
    EXPECT_NE(out.find("c2c"), std::string::npos);
}

TEST_F(Reports, CacheSummaryTracksOptimizedCommands)
{
    const std::string out = reportCacheSummary(*sys_).toString();
    EXPECT_NE(out.find("DW no-fetch allocations"), std::string::npos);
    EXPECT_NE(out.find("purges (no copy-back)"), std::string::npos);
    EXPECT_NE(out.find("stale fetches"), std::string::npos);
}

TEST_F(Reports, LocksShowRatios)
{
    const std::string out = reportLocks(*sys_).toString();
    EXPECT_NE(out.find("LR hit-to-exclusive"), std::string::npos);
    EXPECT_NE(out.find("unlock-to-no-waiter"), std::string::npos);
}

TEST_F(Reports, ReportAllConcatenatesEverything)
{
    const std::string out = reportAll(*sys_);
    EXPECT_NE(out.find("references and bus cycles by area"),
              std::string::npos);
    EXPECT_NE(out.find("references by operation"), std::string::npos);
    EXPECT_NE(out.find("bus transactions by pattern"),
              std::string::npos);
    EXPECT_NE(out.find("cache summary"), std::string::npos);
    EXPECT_NE(out.find("lock protocol"), std::string::npos);
}

TEST(ReportsReplay, WorksAfterTraceReplay)
{
    SystemConfig config;
    config.numPes = 4;
    config.memoryWords = 1 << 22;
    System sys(config);
    const auto trace = makeOrParallel(4, 0, 1 << 10, 1 << 16, 1 << 16,
                                      3000, 200, 5);
    TraceReplay(sys, trace).run();
    const std::string out = reportAll(sys);
    EXPECT_NE(out.find("DWD") != std::string::npos ||
                  out.find("DW") != std::string::npos,
              false);
}

} // namespace
} // namespace pim
