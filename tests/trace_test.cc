/**
 * @file
 * Tests for memory-reference records, statistics, the binary trace file
 * format, and the synthetic trace generators.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sim/system.h"
#include "sim/trace_replay.h"
#include "trace/ref.h"
#include "trace/ref_stats.h"
#include "trace/synth.h"
#include "trace/trace_file.h"

namespace pim {
namespace {

TEST(MemOp, Classification)
{
    EXPECT_TRUE(memOpReads(MemOp::R));
    EXPECT_TRUE(memOpReads(MemOp::LR));
    EXPECT_TRUE(memOpReads(MemOp::ER));
    EXPECT_TRUE(memOpReads(MemOp::RP));
    EXPECT_TRUE(memOpReads(MemOp::RI));
    EXPECT_FALSE(memOpReads(MemOp::W));
    EXPECT_TRUE(memOpWrites(MemOp::W));
    EXPECT_TRUE(memOpWrites(MemOp::UW));
    EXPECT_TRUE(memOpWrites(MemOp::DW));
    EXPECT_FALSE(memOpWrites(MemOp::U));
    EXPECT_TRUE(memOpLocks(MemOp::LR));
    EXPECT_TRUE(memOpLocks(MemOp::UW));
    EXPECT_TRUE(memOpLocks(MemOp::U));
    EXPECT_FALSE(memOpLocks(MemOp::DW));
}

TEST(MemOp, Demotion)
{
    EXPECT_EQ(demoteMemOp(MemOp::DW), MemOp::W);
    EXPECT_EQ(demoteMemOp(MemOp::ER), MemOp::R);
    EXPECT_EQ(demoteMemOp(MemOp::RP), MemOp::R);
    EXPECT_EQ(demoteMemOp(MemOp::RI), MemOp::R);
    EXPECT_EQ(demoteMemOp(MemOp::LR), MemOp::LR);
    EXPECT_EQ(demoteMemOp(MemOp::W), MemOp::W);
}

TEST(MemOp, Names)
{
    EXPECT_STREQ(memOpName(MemOp::LR), "LR");
    EXPECT_STREQ(memOpName(MemOp::DW), "DW");
    EXPECT_STREQ(areaName(Area::Comm), "comm");
}

TEST(RefStats, CountsByAreaAndOp)
{
    RefStats stats;
    stats.record({0, MemOp::R, Area::Heap, 0});
    stats.record({1, MemOp::W, Area::Heap, 0});
    stats.record({2, MemOp::R, Area::Instruction, 1});
    stats.record({3, MemOp::LR, Area::Heap, 1});
    EXPECT_EQ(stats.total(), 4u);
    EXPECT_EQ(stats.areaTotal(Area::Heap), 3u);
    EXPECT_EQ(stats.dataTotal(), 3u);
    EXPECT_EQ(stats.opTotal(MemOp::R), 2u);
    EXPECT_EQ(stats.count(Area::Heap, MemOp::W), 1u);
}

TEST(RefStats, DemotedTotalsFoldOptimizedOps)
{
    RefStats stats;
    stats.record({0, MemOp::DW, Area::Heap, 0});
    stats.record({1, MemOp::ER, Area::Goal, 0});
    stats.record({2, MemOp::RP, Area::Goal, 0});
    stats.record({3, MemOp::RI, Area::Comm, 0});
    stats.record({4, MemOp::R, Area::Heap, 0});
    EXPECT_EQ(stats.opTotalDemoted(MemOp::R), 4u);
    EXPECT_EQ(stats.opTotalDemoted(MemOp::W), 1u);
    EXPECT_EQ(stats.opTotalDemoted(Area::Goal, MemOp::R), 2u);
}

TEST(RefStats, MergeAndClear)
{
    RefStats a;
    RefStats b;
    a.record({0, MemOp::R, Area::Heap, 0});
    b.record({0, MemOp::W, Area::Goal, 1});
    a.merge(b);
    EXPECT_EQ(a.total(), 2u);
    a.clear();
    EXPECT_EQ(a.total(), 0u);
}

TEST(TraceFile, RoundTrip)
{
    const std::string path = ::testing::TempDir() + "/roundtrip.pimtrace";
    std::vector<MemRef> refs = {
        {12345, MemOp::R, Area::Heap, 0},
        {0xffffffffffULL, MemOp::DW, Area::Goal, 7},
        {0, MemOp::UW, Area::Comm, 3},
    };
    {
        TraceWriter writer(path, 8);
        for (const MemRef& ref : refs)
            writer.append(ref);
        EXPECT_EQ(writer.recordsWritten(), 3u);
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.numPes(), 8u);
    MemRef ref;
    for (const MemRef& expected : refs) {
        ASSERT_TRUE(reader.next(ref));
        EXPECT_EQ(ref.addr, expected.addr);
        EXPECT_EQ(ref.op, expected.op);
        EXPECT_EQ(ref.area, expected.area);
        EXPECT_EQ(ref.pe, expected.pe);
    }
    EXPECT_FALSE(reader.next(ref));
    std::remove(path.c_str());
}

TEST(TraceFileDeath, BadMagicIsFatal)
{
    const std::string path = ::testing::TempDir() + "/bad.pimtrace";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fwrite("NOTATRACE123456", 1, 15, f);
    std::fclose(f);
    EXPECT_EXIT(TraceReader reader(path), ::testing::ExitedWithCode(1),
                "not a PIMTRACE");
    std::remove(path.c_str());
}

TEST(Synth, RandomTrafficShape)
{
    RandomTrafficConfig config;
    config.numPes = 3;
    config.refsPerPe = 100;
    config.writePctX100 = 5000;
    const auto trace = makeRandomTraffic(config);
    EXPECT_EQ(trace.size(), 300u);
    std::uint64_t writes = 0;
    std::uint64_t by_pe[3] = {};
    for (const MemRef& ref : trace) {
        ASSERT_LT(ref.pe, 3u);
        ASSERT_LT(ref.addr, config.spanWords);
        by_pe[ref.pe] += 1;
        writes += ref.op == MemOp::W;
    }
    EXPECT_EQ(by_pe[0], 100u);
    EXPECT_EQ(by_pe[2], 100u);
    EXPECT_NEAR(static_cast<double>(writes), 150.0, 40.0);
}

TEST(Synth, RandomTrafficLockPairsBalanced)
{
    RandomTrafficConfig config;
    config.numPes = 2;
    config.refsPerPe = 400;
    config.lockPctX100 = 2000;
    const auto trace = makeRandomTraffic(config);
    std::uint64_t lr = 0;
    std::uint64_t uw = 0;
    for (const MemRef& ref : trace) {
        lr += ref.op == MemOp::LR;
        uw += ref.op == MemOp::UW;
    }
    EXPECT_EQ(lr, uw);
    EXPECT_GT(lr, 0u);
}

TEST(Synth, ProducerConsumerWriteOnceReadOnce)
{
    const auto trace = makeProducerConsumer(0, 1, 2, 1000, 64, 8, 4, true);
    EXPECT_EQ(trace.size(), 4u * 16u);
    // Per message: 8 producer DWs then 7 ERs and one final RP.
    for (int msg = 0; msg < 4; ++msg) {
        for (int w = 0; w < 8; ++w) {
            EXPECT_EQ(trace[msg * 16 + w].op, MemOp::DW);
            EXPECT_EQ(trace[msg * 16 + w].pe, 0u);
        }
        for (int w = 0; w < 7; ++w)
            EXPECT_EQ(trace[msg * 16 + 8 + w].op, MemOp::ER);
        EXPECT_EQ(trace[msg * 16 + 15].op, MemOp::RP);
        EXPECT_EQ(trace[msg * 16 + 15].pe, 1u);
    }
}

TEST(Synth, ProducerConsumerPoolRecycles)
{
    // 64-word pool, 8-word messages: message 8 reuses address 1000.
    const auto trace =
        makeProducerConsumer(0, 1, 2, 1000, 64, 8, 9, false);
    EXPECT_EQ(trace[8 * 16].addr, 1000u);
}

TEST(Synth, MigratoryTouchesEachPeInTurn)
{
    const auto trace = makeMigratory(3, 0, 2, 4, 1);
    ASSERT_EQ(trace.size(), 3u * 2u * 2u);
    EXPECT_EQ(trace[0].pe, 0u);
    EXPECT_EQ(trace[0].op, MemOp::R);
    EXPECT_EQ(trace[1].op, MemOp::W);
    EXPECT_EQ(trace[4].pe, 1u);
}

TEST(Synth, OrParallelShape)
{
    const auto trace = makeOrParallel(4, 0, 1 << 10, 1 << 16, 1 << 16,
                                      2000, 300, 9);
    std::uint64_t shared_reads = 0;
    std::uint64_t binding_writes = 0;
    std::uint64_t grabs = 0;
    for (const MemRef& ref : trace) {
        if (ref.area == Area::Instruction) {
            EXPECT_EQ(ref.op, MemOp::R);
            EXPECT_LT(ref.addr, 1u << 10);
            ++shared_reads;
        } else if (ref.area == Area::Heap && ref.op == MemOp::DW) {
            // Binding writes stay in the PE's own private region.
            EXPECT_EQ((ref.addr - (1 << 16)) / (1 << 16), ref.pe);
            ++binding_writes;
        } else if (ref.area == Area::Comm) {
            ++grabs;
        }
    }
    EXPECT_GT(shared_reads, 1000u);
    EXPECT_GT(binding_writes, 1000u);
    EXPECT_GT(grabs, 0u);
}

TEST(Synth, OrParallelReplaysCleanly)
{
    const auto trace = makeOrParallel(4, 0, 1 << 10, 1 << 16, 1 << 16,
                                      4000, 300, 9);
    SystemConfig config;
    config.numPes = 4;
    config.memoryWords = 1 << 20;
    System sys(config);
    TraceReplay replay(sys, trace);
    replay.run();
    EXPECT_EQ(replay.completed(), trace.size());
    // Shared program reads become cheap after warm-up; private binding
    // writes allocate without fetch (DW).
    EXPECT_GT(sys.totalCacheStats().dwAllocNoFetch, 0u);
}

TEST(Synth, HeapGrowthMonotoneAllocation)
{
    const auto trace = makeHeapGrowth(2, 0, 10000, 50, 4, true, 3);
    // Every DW address within a PE's segment must be >= previous ones.
    Addr last[2] = {0, 0};
    for (const MemRef& ref : trace) {
        if (ref.op != MemOp::DW)
            continue;
        EXPECT_GE(ref.addr, last[ref.pe]);
        last[ref.pe] = ref.addr;
    }
    // Unoptimized variant uses plain W.
    const auto plain = makeHeapGrowth(2, 0, 10000, 5, 4, false, 3);
    for (const MemRef& ref : plain)
        EXPECT_NE(ref.op, MemOp::DW);
}

} // namespace
} // namespace pim
